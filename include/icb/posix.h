/*===- icb/posix.h - pthread-compatible shim over the ICB runtime -*- C -*-===//
 *
 * Part of the ICB project (PLDI'07 reproduction).
 *
 *===----------------------------------------------------------------------===//
 *
 * The POSIX frontend: a pthread-compatible API surface implemented on the
 * icb::rt controlled scheduler, so ordinary pthreads test programs run
 * under systematic exploration (the CHESS model: intercept the platform's
 * thread/sync API; the paper used Win32, this is the pthreads analogue).
 *
 * A test is a shared object exporting
 *
 *     void icb_test_main(void);
 *
 * driven by tools/icb_run. The test reaches the controlled primitives one
 * of two ways:
 *
 *  1. Header shim: include this header (or compile with
 *     `-include icb/posix.h`). Function-like macros redirect every
 *     supported pthreads/semaphore call site to its icb_* twin. The
 *     native types (pthread_mutex_t, sem_t, ...) are kept as opaque
 *     keys — the frontend never reads or writes their storage, so
 *     PTHREAD_*_INITIALIZER static initialization works unchanged.
 *
 *  2. Linker wrap: compile the unmodified source and link the module with
 *     `-Wl,--wrap,pthread_create,...` (the full flag list is exported by
 *     CMake as ICB_POSIX_WRAP_LINK_OPTIONS). src/posix/Wrap.cpp provides
 *     the __wrap_* forwarders, resolved from the icb_run executable at
 *     dlopen time.
 *
 * Semantics notes (the full table is in DESIGN.md §8):
 *  - Every call is a scheduling point of the systematic scheduler except
 *    TLS get/set, attribute ops, and recursive re-lock/unlock.
 *  - pthread_cond_timedwait is a schedule point whose timeout is modeled:
 *    the waiter stays enabled, and scheduling it before a signal arrives
 *    IS the timeout (equivalently a spurious wakeup) — both outcomes of
 *    every signal/expiry race are explored, no wall clock involved.
 *  - sched_yield/usleep/sleep/nanosleep are yield points (Sleep(0) in the
 *    paper's terms): scheduling points where switching away is free.
 *  - Misuse that POSIX defines as an error returns the documented errno
 *    (EBUSY, EDEADLK, ETIMEDOUT, EPERM, EAGAIN, ...); misuse that POSIX
 *    leaves undefined ends the execution as a reported bug.
 *
 * Plain memory accesses are invisible to the frontend; a test that wants
 * data-race checking annotates them with icb_posix_shared_read/write.
 *
 *===----------------------------------------------------------------------===*/

#ifndef ICB_POSIX_H
#define ICB_POSIX_H

#include <errno.h>
#include <fcntl.h>
#include <poll.h>
#include <pthread.h>
#include <sched.h>
#include <semaphore.h>
#include <stdlib.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/select.h>
#include <sys/socket.h>
#include <time.h>
#include <unistd.h>

/* C11 <threads.h> is shimmed too (thrd_*, mtx_*, cnd_*, tss_*, call_once)
 * when the libc provides it; the aliases reuse the pthread translation —
 * mtx_t/cnd_t/tss_t/once_flag are opaque address keys exactly like their
 * pthread twins. */
#if defined(__has_include)
#if __has_include(<threads.h>)
#define ICB_POSIX_HAS_THREADS_H 1
#include <threads.h>
#endif
#endif

#ifdef __cplusplus
extern "C" {
#endif

/* --- Threads ---------------------------------------------------------- */

int icb_pthread_create(pthread_t *Thread, const pthread_attr_t *Attr,
                       void *(*Start)(void *), void *Arg);
int icb_pthread_join(pthread_t Thread, void **Ret);
int icb_pthread_detach(pthread_t Thread);
pthread_t icb_pthread_self(void);
int icb_pthread_equal(pthread_t A, pthread_t B);
void icb_pthread_exit(void *Ret);

int icb_pthread_attr_init(pthread_attr_t *Attr);
int icb_pthread_attr_destroy(pthread_attr_t *Attr);
int icb_pthread_attr_setdetachstate(pthread_attr_t *Attr, int State);
int icb_pthread_attr_getdetachstate(const pthread_attr_t *Attr, int *State);

/* --- Mutexes ---------------------------------------------------------- */

int icb_pthread_mutex_init(pthread_mutex_t *M, const pthread_mutexattr_t *A);
int icb_pthread_mutex_destroy(pthread_mutex_t *M);
int icb_pthread_mutex_lock(pthread_mutex_t *M);
/* Modeled timeout, like pthread_cond_timedwait: the acquirer stays
 * enabled, and scheduling it while the mutex is still held IS the expiry
 * (glibc-faithful ETIMEDOUT) — both outcomes of every release/deadline
 * race are explored, no wall clock involved. */
int icb_pthread_mutex_timedlock(pthread_mutex_t *M,
                                const struct timespec *AbsTime);
int icb_pthread_mutex_trylock(pthread_mutex_t *M);
int icb_pthread_mutex_unlock(pthread_mutex_t *M);

int icb_pthread_mutexattr_init(pthread_mutexattr_t *A);
int icb_pthread_mutexattr_destroy(pthread_mutexattr_t *A);
int icb_pthread_mutexattr_settype(pthread_mutexattr_t *A, int Type);
int icb_pthread_mutexattr_gettype(const pthread_mutexattr_t *A, int *Type);

/* --- Condition variables ---------------------------------------------- */

int icb_pthread_cond_init(pthread_cond_t *C, const pthread_condattr_t *A);
int icb_pthread_cond_destroy(pthread_cond_t *C);
int icb_pthread_cond_wait(pthread_cond_t *C, pthread_mutex_t *M);
int icb_pthread_cond_timedwait(pthread_cond_t *C, pthread_mutex_t *M,
                               const struct timespec *AbsTime);
int icb_pthread_cond_signal(pthread_cond_t *C);
int icb_pthread_cond_broadcast(pthread_cond_t *C);

/* --- Reader-writer locks ---------------------------------------------- */

int icb_pthread_rwlock_init(pthread_rwlock_t *RW,
                            const pthread_rwlockattr_t *A);
int icb_pthread_rwlock_destroy(pthread_rwlock_t *RW);
int icb_pthread_rwlock_rdlock(pthread_rwlock_t *RW);
int icb_pthread_rwlock_tryrdlock(pthread_rwlock_t *RW);
int icb_pthread_rwlock_wrlock(pthread_rwlock_t *RW);
int icb_pthread_rwlock_trywrlock(pthread_rwlock_t *RW);
int icb_pthread_rwlock_unlock(pthread_rwlock_t *RW);

/* --- Barriers ---------------------------------------------------------- */

int icb_pthread_barrier_init(pthread_barrier_t *B,
                             const pthread_barrierattr_t *A, unsigned Count);
int icb_pthread_barrier_destroy(pthread_barrier_t *B);
/* Returns PTHREAD_BARRIER_SERIAL_THREAD for the releasing arrival and 0
 * for the others, like the real primitive. */
int icb_pthread_barrier_wait(pthread_barrier_t *B);

int icb_pthread_barrierattr_init(pthread_barrierattr_t *A);
int icb_pthread_barrierattr_destroy(pthread_barrierattr_t *A);

/* --- Spinlocks ----------------------------------------------------------
 * Under a model scheduler a spinning acquire and a blocking acquire are
 * the same thing: the scheduler simply never runs the spinner until the
 * lock is free. A self-relock therefore spins forever and is reported as
 * the deadlock it is (POSIX leaves it undefined / optional EDEADLK). */

int icb_pthread_spin_init(pthread_spinlock_t *S, int PShared);
int icb_pthread_spin_destroy(pthread_spinlock_t *S);
int icb_pthread_spin_lock(pthread_spinlock_t *S);
int icb_pthread_spin_trylock(pthread_spinlock_t *S);
int icb_pthread_spin_unlock(pthread_spinlock_t *S);

/* --- Semaphores (return -1 and set errno on failure, like the real
 *     sem_* family) ----------------------------------------------------- */

int icb_sem_init(sem_t *S, int PShared, unsigned Value);
int icb_sem_destroy(sem_t *S);
int icb_sem_wait(sem_t *S);
/* Modeled timeout: waking with the count still zero IS the expiry
 * (returns -1 / ETIMEDOUT). */
int icb_sem_timedwait(sem_t *S, const struct timespec *AbsTime);
int icb_sem_trywait(sem_t *S);
int icb_sem_post(sem_t *S);
int icb_sem_getvalue(sem_t *S, int *Out);

/* --- Once + TLS keys --------------------------------------------------- */

int icb_pthread_once(pthread_once_t *Control, void (*Routine)(void));

int icb_pthread_key_create(pthread_key_t *Key, void (*Dtor)(void *));
int icb_pthread_key_delete(pthread_key_t Key);
int icb_pthread_setspecific(pthread_key_t Key, const void *Value);
void *icb_pthread_getspecific(pthread_key_t Key);

/* --- Yield points ------------------------------------------------------ */

int icb_sched_yield(void);
int icb_usleep(unsigned Usec);
unsigned icb_sleep(unsigned Seconds);
int icb_nanosleep(const struct timespec *Req, struct timespec *Rem);

/* --- C11 threads (aliases over the same translation) ------------------- */

#ifdef ICB_POSIX_HAS_THREADS_H

int icb_thrd_create(thrd_t *Thr, thrd_start_t Fn, void *Arg);
int icb_thrd_join(thrd_t Thr, int *Res);
int icb_thrd_detach(thrd_t Thr);
thrd_t icb_thrd_current(void);
int icb_thrd_equal(thrd_t A, thrd_t B);
#if defined(__GNUC__) || defined(__clang__)
__attribute__((noreturn))
#endif
void icb_thrd_exit(int Res);
void icb_thrd_yield(void);
int icb_thrd_sleep(const struct timespec *Dur, struct timespec *Rem);

int icb_mtx_init(mtx_t *M, int Type);
void icb_mtx_destroy(mtx_t *M);
int icb_mtx_lock(mtx_t *M);
/* Modeled timeout via the pthread_mutex_timedlock translation: waking
 * with the mutex still held IS the expiry (thrd_timedout). */
int icb_mtx_timedlock(mtx_t *M, const struct timespec *Deadline);
int icb_mtx_trylock(mtx_t *M);
int icb_mtx_unlock(mtx_t *M);

int icb_cnd_init(cnd_t *C);
void icb_cnd_destroy(cnd_t *C);
int icb_cnd_wait(cnd_t *C, mtx_t *M);
/* Modeled timeout, like pthread_cond_timedwait: waking unsignaled IS the
 * expiry, so both outcomes of every signal/timeout race are explored. */
int icb_cnd_timedwait(cnd_t *C, mtx_t *M, const struct timespec *Deadline);
int icb_cnd_signal(cnd_t *C);
int icb_cnd_broadcast(cnd_t *C);

void icb_call_once(once_flag *Flag, void (*Fn)(void));

int icb_tss_create(tss_t *Key, tss_dtor_t Dtor);
void icb_tss_delete(tss_t Key);
int icb_tss_set(tss_t Key, void *Value);
void *icb_tss_get(tss_t Key);

#endif /* ICB_POSIX_HAS_THREADS_H */

/* --- Modeled io ---------------------------------------------------------
 * A deterministic per-execution fd table: pipes, AF_UNIX stream socket
 * pairs, eventfds, and epoll instances, numbered upward from a base far
 * above any real fd the harness holds. read() on an empty modeled fd
 * parks the thread exactly like a condvar wait; the peer's write() is the
 * wakeup edge; O_NONBLOCK turns the park into an explorable EAGAIN
 * branch; epoll_wait/poll/select are first-class blocking scheduling
 * points (with modeled timeouts when a timeout is supplied). Calls on
 * fds below the modeled range pass through to the real syscalls, so
 * ordinary stdio keeps working under test. Full semantics table in
 * DESIGN.md §11. */

int icb_pipe(int Fds[2]);
int icb_pipe2(int Fds[2], int Flags);
int icb_socketpair(int Domain, int Type, int Protocol, int Fds[2]);
int icb_eventfd(unsigned Initial, int Flags);
int icb_epoll_create(int Size);
int icb_epoll_create1(int Flags);
int icb_epoll_ctl(int Ep, int Op, int Fd, struct epoll_event *Ev);
int icb_epoll_wait(int Ep, struct epoll_event *Evs, int MaxEvents,
                   int TimeoutMs);
ssize_t icb_read(int Fd, void *Buf, size_t N);
ssize_t icb_write(int Fd, const void *Buf, size_t N);
int icb_close(int Fd);
int icb_fcntl(int Fd, int Cmd, ...);
int icb_poll(struct pollfd *Fds, nfds_t N, int TimeoutMs);
int icb_select(int Nfds, fd_set *R, fd_set *W, fd_set *X, struct timeval *T);

/* --- Managed heap -------------------------------------------------------
 * While an execution is live, the malloc family is served from a
 * quarantine-and-poison arena: freed blocks are poisoned and kept until
 * the execution ends, so use-after-free and double free surface as
 * reported (and replayable) bugs instead of silent corruption. Pointers
 * allocated outside the execution pass through to the real allocator. */

void *icb_malloc(size_t N);
void *icb_calloc(size_t Count, size_t Size);
void *icb_realloc(void *P, size_t N);
void icb_free(void *P);

/* --- Checker surface (no pthreads equivalent) -------------------------- */

/* Annotate a plain shared-memory access so the execution's data-race
 * detector sees it. `What` names the variable in bug reports (may be
 * NULL). For stable cross-execution identity, perform the first annotated
 * access to each location from its creating thread. */
void icb_posix_shared_read(const void *Addr, const char *What);
void icb_posix_shared_write(void *Addr, const char *What);

/* Assert inside test code; failure ends the execution as a reported bug. */
void icb_posix_assert(int Cond, const char *What);

#ifdef __cplusplus
} /* extern "C" */
#endif

/* --- Macro redirection -------------------------------------------------
 * Function-like macros so only call sites are rewritten; declarations in
 * system headers are untouched. Define ICB_POSIX_NO_RENAME to get the
 * icb_* declarations without the redirection. */
#ifndef ICB_POSIX_NO_RENAME

#define pthread_create(t, a, f, g) icb_pthread_create(t, a, f, g)
#define pthread_join(t, r) icb_pthread_join(t, r)
#define pthread_detach(t) icb_pthread_detach(t)
#define pthread_self() icb_pthread_self()
#define pthread_equal(a, b) icb_pthread_equal(a, b)
#define pthread_exit(r) icb_pthread_exit(r)

#define pthread_attr_init(a) icb_pthread_attr_init(a)
#define pthread_attr_destroy(a) icb_pthread_attr_destroy(a)
#define pthread_attr_setdetachstate(a, s) icb_pthread_attr_setdetachstate(a, s)
#define pthread_attr_getdetachstate(a, s) icb_pthread_attr_getdetachstate(a, s)

#define pthread_mutex_init(m, a) icb_pthread_mutex_init(m, a)
#define pthread_mutex_destroy(m) icb_pthread_mutex_destroy(m)
#define pthread_mutex_lock(m) icb_pthread_mutex_lock(m)
#define pthread_mutex_timedlock(m, t) icb_pthread_mutex_timedlock(m, t)
#define pthread_mutex_trylock(m) icb_pthread_mutex_trylock(m)
#define pthread_mutex_unlock(m) icb_pthread_mutex_unlock(m)

#define pthread_mutexattr_init(a) icb_pthread_mutexattr_init(a)
#define pthread_mutexattr_destroy(a) icb_pthread_mutexattr_destroy(a)
#define pthread_mutexattr_settype(a, t) icb_pthread_mutexattr_settype(a, t)
#define pthread_mutexattr_gettype(a, t) icb_pthread_mutexattr_gettype(a, t)

#define pthread_cond_init(c, a) icb_pthread_cond_init(c, a)
#define pthread_cond_destroy(c) icb_pthread_cond_destroy(c)
#define pthread_cond_wait(c, m) icb_pthread_cond_wait(c, m)
#define pthread_cond_timedwait(c, m, t) icb_pthread_cond_timedwait(c, m, t)
#define pthread_cond_signal(c) icb_pthread_cond_signal(c)
#define pthread_cond_broadcast(c) icb_pthread_cond_broadcast(c)

#define pthread_rwlock_init(l, a) icb_pthread_rwlock_init(l, a)
#define pthread_rwlock_destroy(l) icb_pthread_rwlock_destroy(l)
#define pthread_rwlock_rdlock(l) icb_pthread_rwlock_rdlock(l)
#define pthread_rwlock_tryrdlock(l) icb_pthread_rwlock_tryrdlock(l)
#define pthread_rwlock_wrlock(l) icb_pthread_rwlock_wrlock(l)
#define pthread_rwlock_trywrlock(l) icb_pthread_rwlock_trywrlock(l)
#define pthread_rwlock_unlock(l) icb_pthread_rwlock_unlock(l)

#define pthread_barrier_init(b, a, n) icb_pthread_barrier_init(b, a, n)
#define pthread_barrier_destroy(b) icb_pthread_barrier_destroy(b)
#define pthread_barrier_wait(b) icb_pthread_barrier_wait(b)
#define pthread_barrierattr_init(a) icb_pthread_barrierattr_init(a)
#define pthread_barrierattr_destroy(a) icb_pthread_barrierattr_destroy(a)

#define pthread_spin_init(s, p) icb_pthread_spin_init(s, p)
#define pthread_spin_destroy(s) icb_pthread_spin_destroy(s)
#define pthread_spin_lock(s) icb_pthread_spin_lock(s)
#define pthread_spin_trylock(s) icb_pthread_spin_trylock(s)
#define pthread_spin_unlock(s) icb_pthread_spin_unlock(s)

#define sem_init(s, p, v) icb_sem_init(s, p, v)
#define sem_destroy(s) icb_sem_destroy(s)
#define sem_wait(s) icb_sem_wait(s)
#define sem_timedwait(s, t) icb_sem_timedwait(s, t)
#define sem_trywait(s) icb_sem_trywait(s)
#define sem_post(s) icb_sem_post(s)
#define sem_getvalue(s, o) icb_sem_getvalue(s, o)

#define pthread_once(o, f) icb_pthread_once(o, f)

#define pthread_key_create(k, d) icb_pthread_key_create(k, d)
#define pthread_key_delete(k) icb_pthread_key_delete(k)
#define pthread_setspecific(k, v) icb_pthread_setspecific(k, v)
#define pthread_getspecific(k) icb_pthread_getspecific(k)

#define sched_yield() icb_sched_yield()
#define usleep(us) icb_usleep(us)
#define sleep(s) icb_sleep(s)
#define nanosleep(rq, rm) icb_nanosleep(rq, rm)

/* Modeled io + managed heap. read/write/close are function-like macros,
 * so C++ member calls spelled `x.read(a, b, c)` with exactly these
 * arities are rewritten too — the shim targets C-style POSIX modules;
 * use the --wrap delivery for sources where that bites. */
#define pipe(f) icb_pipe(f)
#define pipe2(f, fl) icb_pipe2(f, fl)
#define socketpair(d, t, p, f) icb_socketpair(d, t, p, f)
#define eventfd(i, fl) icb_eventfd(i, fl)
#define epoll_create(n) icb_epoll_create(n)
#define epoll_create1(fl) icb_epoll_create1(fl)
#define epoll_ctl(e, o, f, ev) icb_epoll_ctl(e, o, f, ev)
#define epoll_wait(e, ev, n, t) icb_epoll_wait(e, ev, n, t)
#define read(f, b, n) icb_read(f, b, n)
#define write(f, b, n) icb_write(f, b, n)
#define close(f) icb_close(f)
#define fcntl(...) icb_fcntl(__VA_ARGS__)
#define poll(f, n, t) icb_poll(f, n, t)
#define select(n, r, w, x, t) icb_select(n, r, w, x, t)

#define malloc(n) icb_malloc(n)
#define calloc(c, s) icb_calloc(c, s)
#define realloc(p, n) icb_realloc(p, n)
#define free(p) icb_free(p)

#ifdef ICB_POSIX_HAS_THREADS_H

#define thrd_create(t, f, a) icb_thrd_create(t, f, a)
#define thrd_join(t, r) icb_thrd_join(t, r)
#define thrd_detach(t) icb_thrd_detach(t)
#define thrd_current() icb_thrd_current()
#define thrd_equal(a, b) icb_thrd_equal(a, b)
#define thrd_exit(r) icb_thrd_exit(r)
#define thrd_yield() icb_thrd_yield()
#define thrd_sleep(d, r) icb_thrd_sleep(d, r)

#define mtx_init(m, t) icb_mtx_init(m, t)
#define mtx_destroy(m) icb_mtx_destroy(m)
#define mtx_lock(m) icb_mtx_lock(m)
#define mtx_timedlock(m, d) icb_mtx_timedlock(m, d)
#define mtx_trylock(m) icb_mtx_trylock(m)
#define mtx_unlock(m) icb_mtx_unlock(m)

#define cnd_init(c) icb_cnd_init(c)
#define cnd_destroy(c) icb_cnd_destroy(c)
#define cnd_wait(c, m) icb_cnd_wait(c, m)
#define cnd_timedwait(c, m, d) icb_cnd_timedwait(c, m, d)
#define cnd_signal(c) icb_cnd_signal(c)
#define cnd_broadcast(c) icb_cnd_broadcast(c)

#define call_once(o, f) icb_call_once(o, f)

#define tss_create(k, d) icb_tss_create(k, d)
#define tss_delete(k) icb_tss_delete(k)
#define tss_set(k, v) icb_tss_set(k, v)
#define tss_get(k) icb_tss_get(k)

#endif /* ICB_POSIX_HAS_THREADS_H */

#endif /* ICB_POSIX_NO_RENAME */

#endif /* ICB_POSIX_H */
