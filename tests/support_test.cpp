//===- tests/support_test.cpp - Support library unit tests -----------------===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/CommandLine.h"
#include "support/Csv.h"
#include "support/Format.h"
#include "support/Hashing.h"
#include "support/Prng.h"
#include "support/Stats.h"
#include <gtest/gtest.h>
#include <sstream>

using namespace icb;

namespace {

TEST(Hashing, MixIsDeterministicAndSpreads) {
  EXPECT_EQ(hashMix(1), hashMix(1));
  EXPECT_NE(hashMix(1), hashMix(2));
  // hashMix is a bijection fixing 0; nonzero inputs spread.
  EXPECT_NE(hashMix(3), 3u);
}

TEST(Hashing, CombineIsOrderSensitive) {
  uint64_t A = hashCombine(hashCombine(0, 1), 2);
  uint64_t B = hashCombine(hashCombine(0, 2), 1);
  EXPECT_NE(A, B);
}

TEST(Hashing, StableHasherUnorderedIsOrderInsensitive) {
  StableHasher H1;
  H1.addUnordered(10);
  H1.addUnordered(20);
  H1.addUnordered(30);
  StableHasher H2;
  H2.addUnordered(30);
  H2.addUnordered(10);
  H2.addUnordered(20);
  EXPECT_EQ(H1.digest(), H2.digest());
}

TEST(Hashing, StableHasherUnorderedCountsMultiplicity) {
  StableHasher H1;
  H1.addUnordered(10);
  StableHasher H2;
  H2.addUnordered(10);
  H2.addUnordered(10);
  EXPECT_NE(H1.digest(), H2.digest());
}

TEST(Hashing, StringHashing) {
  EXPECT_EQ(hashString("abc"), hashString("abc"));
  EXPECT_NE(hashString("abc"), hashString("abd"));
  EXPECT_NE(hashString(""), hashString("a"));
}

TEST(Prng, SplitMixIsReproducible) {
  SplitMix64 A(7);
  SplitMix64 B(7);
  for (int I = 0; I != 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(Prng, BoundedStaysInRange) {
  Xoshiro256 Rng(123);
  for (int I = 0; I != 1000; ++I) {
    uint64_t V = Rng.nextBounded(7);
    EXPECT_LT(V, 7u);
  }
}

TEST(Prng, BoundedCoversRange) {
  Xoshiro256 Rng(9);
  bool Seen[5] = {};
  for (int I = 0; I != 1000; ++I)
    Seen[Rng.nextBounded(5)] = true;
  for (bool S : Seen)
    EXPECT_TRUE(S);
}

TEST(Prng, ShuffleIsAPermutation) {
  Xoshiro256 Rng(5);
  std::vector<int> V = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> Orig = V;
  Rng.shuffle(V);
  std::sort(V.begin(), V.end());
  EXPECT_EQ(V, Orig);
}

TEST(Format, BasicFormatting) {
  EXPECT_EQ(strFormat("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(strFormat("%05d", 7), "00007");
}

TEST(Format, LongStringsDoNotTruncate) {
  std::string Long(5000, 'a');
  EXPECT_EQ(strFormat("%s", Long.c_str()).size(), 5000u);
}

TEST(Format, Padding) {
  EXPECT_EQ(padLeft("ab", 5), "   ab");
  EXPECT_EQ(padRight("ab", 5), "ab   ");
  EXPECT_EQ(padLeft("abcdef", 3), "abcdef");
}

TEST(Format, WithCommas) {
  EXPECT_EQ(withCommas(0), "0");
  EXPECT_EQ(withCommas(999), "999");
  EXPECT_EQ(withCommas(1000), "1,000");
  EXPECT_EQ(withCommas(1234567), "1,234,567");
}

TEST(Csv, WritesHeaderAndRows) {
  std::ostringstream Out;
  CsvWriter Csv(Out, {"a", "b"});
  Csv.writeRow(std::vector<std::string>{"1", "x,y"});
  Csv.writeRow(std::vector<double>{2.5, 3});
  EXPECT_EQ(Out.str(), "a,b\n1,\"x,y\"\n2.5,3\n");
  EXPECT_EQ(Csv.rowCount(), 2u);
}

TEST(Csv, EscapesQuotes) {
  std::ostringstream Out;
  CsvWriter Csv(Out, {"a"});
  Csv.writeRow(std::vector<std::string>{"say \"hi\""});
  EXPECT_EQ(Out.str(), "a\n\"say \"\"hi\"\"\"\n");
}

TEST(CommandLine, ParsesAllKinds) {
  FlagSet Flags("test");
  Flags.addInt("count", 3, "a count");
  Flags.addBool("verbose", false, "talk more");
  Flags.addString("name", "def", "a name");
  const char *Argv[] = {"prog", "--count=9", "--verbose", "--name", "zed",
                        "extra"};
  std::string Error;
  ASSERT_TRUE(Flags.parse(6, Argv, &Error)) << Error;
  EXPECT_EQ(Flags.getInt("count"), 9);
  EXPECT_TRUE(Flags.getBool("verbose"));
  EXPECT_EQ(Flags.getString("name"), "zed");
  ASSERT_EQ(Flags.positional().size(), 1u);
  EXPECT_EQ(Flags.positional()[0], "extra");
}

TEST(CommandLine, RejectsUnknownFlag) {
  FlagSet Flags("test");
  const char *Argv[] = {"prog", "--nope=1"};
  std::string Error;
  EXPECT_FALSE(Flags.parse(2, Argv, &Error));
  EXPECT_NE(Error.find("unknown flag"), std::string::npos);
}

TEST(CommandLine, RejectsMalformedInt) {
  FlagSet Flags("test");
  Flags.addInt("n", 0, "num");
  const char *Argv[] = {"prog", "--n=abc"};
  std::string Error;
  EXPECT_FALSE(Flags.parse(2, Argv, &Error));
}

TEST(CommandLine, BoolAcceptsExplicitValues) {
  FlagSet Flags("test");
  Flags.addBool("flag", true, "a flag");
  const char *Argv[] = {"prog", "--flag=false"};
  std::string Error;
  ASSERT_TRUE(Flags.parse(2, Argv, &Error));
  EXPECT_FALSE(Flags.getBool("flag"));
}

TEST(Stats, MinMaxTracksExtremes) {
  MinMax M;
  EXPECT_TRUE(M.empty());
  M.observe(5);
  M.observe(2);
  M.observe(9);
  EXPECT_EQ(M.min(), 2u);
  EXPECT_EQ(M.max(), 9u);
  EXPECT_EQ(M.sum(), 16u);
  EXPECT_EQ(M.count(), 3u);
  EXPECT_NEAR(M.mean(), 16.0 / 3.0, 1e-9);
}

TEST(Stats, HistogramGrowsOnDemand) {
  Histogram H;
  H.increment(0);
  H.increment(3, 4);
  EXPECT_EQ(H.at(0), 1u);
  EXPECT_EQ(H.at(1), 0u);
  EXPECT_EQ(H.at(3), 4u);
  EXPECT_EQ(H.at(17), 0u);
  EXPECT_EQ(H.size(), 4u);
  EXPECT_EQ(H.total(), 5u);
}

} // namespace
