//===- tests/obs_test.cpp - Observability subsystem tests -----------------===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The observability subsystem: shard merging, snapshot/restore algebra,
/// scaled-integer means, phase timers, the progress meter, the metrics
/// JSON dialect, and — the property everything above exists to protect —
/// byte-identical work-derived metrics between `--jobs 1` and `--jobs N`
/// runs of both executors.
///
//===----------------------------------------------------------------------===//

#include "benchmarks/Bluetooth.h"
#include "benchmarks/WorkStealingQueue.h"
#include "benchmarks/WsqModel.h"
#include "obs/Metrics.h"
#include "obs/PhaseTimer.h"
#include "obs/Progress.h"
#include "obs/TraceLog.h"
#include "rt/Explore.h"
#include "search/IcbSearch.h"
#include "search/ParallelIcb.h"
#include "session/Json.h"
#include "session/Serial.h"
#include "testutil/ResultChecks.h"
#include "vm/Interp.h"
#include <cstdio>
#include <cstring>
#include <gtest/gtest.h>
#include <limits>
#include <set>
#include <string>

using namespace icb;
using namespace icb::bench;
using icb::testutil::expectSameDeterministicMetrics;
using icb::testutil::expectSameHistogram;

namespace {

[[maybe_unused]] uint64_t counterOf(const obs::MetricsSnapshot &Snap,
                                    obs::Counter C) {
  size_t I = static_cast<size_t>(C);
  return I < Snap.Counters.size() ? Snap.Counters[I] : 0;
}

//===----------------------------------------------------------------------===//
// MinMax::meanMilli
//===----------------------------------------------------------------------===//

TEST(MeanMilli, RoundsToNearest) {
  MinMax M;
  M.observe(1);
  M.observe(2);
  EXPECT_EQ(M.meanMilli(), 1500u); // 1.5 exactly.
  M.observe(2);
  EXPECT_EQ(M.meanMilli(), 1667u); // 5/3 = 1.666... rounds up.
  MinMax Down;
  Down.observe(1);
  Down.observe(1);
  Down.observe(2);
  EXPECT_EQ(Down.meanMilli(), 1333u); // 4/3 = 1.333... rounds down.
}

TEST(MeanMilli, EmptyIsZero) { EXPECT_EQ(MinMax().meanMilli(), 0u); }

TEST(MeanMilli, ExactBeyondDoublePrecision) {
  // Sum * 1000 overflows uint64 and Sum itself exceeds 2^53, where a
  // double-based mean would already be lossy; the widened multiply must
  // stay exact.
  // Odd and above 2^53 (doubles are lossy), with Sum * 1000 above 2^64
  // (the naive unwidened multiply would wrap) while the result still
  // fits a uint64.
  uint64_t Big = (uint64_t(1) << 54) + 1;
  MinMax M = MinMax::restore(Big, Big, /*Sum=*/Big * 3, /*Count=*/3);
  EXPECT_EQ(M.meanMilli(), Big * 1000);
  // A non-exact division at the same magnitude still rounds to nearest.
  MinMax N = MinMax::restore(1, Big, /*Sum=*/Big * 3 + 2, /*Count=*/3);
  EXPECT_EQ(N.meanMilli(), Big * 1000 + 667);
}

TEST(MeanMilli, RoundingStableAcrossEquivalentSplits) {
  // The same observations merged in any grouping give the same mean.
  MinMax A, B, All;
  for (uint64_t V : {7u, 11u, 13u}) {
    A.observe(V);
    All.observe(V);
  }
  for (uint64_t V : {17u, 19u}) {
    B.observe(V);
    All.observe(V);
  }
  A.merge(B);
  EXPECT_EQ(A.meanMilli(), All.meanMilli());
  EXPECT_EQ(A.meanMilli(), 13400u); // 67/5 = 13.4.
}

//===----------------------------------------------------------------------===//
// Shard and snapshot algebra
//===----------------------------------------------------------------------===//

TEST(MetricShard, MergeIsElementWise) {
  obs::MetricShard A, B;
  A.Counters[static_cast<size_t>(obs::Counter::SeenHit)] = 3;
  B.Counters[static_cast<size_t>(obs::Counter::SeenHit)] = 4;
  B.Counters[static_cast<size_t>(obs::Counter::Chains)] = 9;
  A.Phases[static_cast<size_t>(obs::Phase::Execute)].observe(100);
  B.Phases[static_cast<size_t>(obs::Phase::Execute)].observe(50);
  A.ReplayDepth.observe(2);
  B.ReplayDepth.observe(8);
  A.ExecutionsPerBound.increment(0, 5);
  B.ExecutionsPerBound.increment(2, 7);
  A.Worker.BusyNanos = 10;
  B.Worker.BusyNanos = 20;
  B.Worker.IdleNanos = 30;

  A.merge(B);
  EXPECT_EQ(A.Counters[static_cast<size_t>(obs::Counter::SeenHit)], 7u);
  EXPECT_EQ(A.Counters[static_cast<size_t>(obs::Counter::Chains)], 9u);
  const MinMax &Exec = A.Phases[static_cast<size_t>(obs::Phase::Execute)];
  EXPECT_EQ(Exec.count(), 2u);
  EXPECT_EQ(Exec.min(), 50u);
  EXPECT_EQ(Exec.max(), 100u);
  EXPECT_EQ(A.ReplayDepth.sum(), 10u);
  EXPECT_EQ(A.ExecutionsPerBound.at(0), 5u);
  EXPECT_EQ(A.ExecutionsPerBound.at(2), 7u);
  EXPECT_EQ(A.Worker.BusyNanos, 30u);
  EXPECT_EQ(A.Worker.IdleNanos, 30u);

  A.reset();
  EXPECT_EQ(A.Counters[static_cast<size_t>(obs::Counter::SeenHit)], 0u);
  EXPECT_TRUE(A.ReplayDepth.empty());
  EXPECT_EQ(A.ExecutionsPerBound.total(), 0u);
  EXPECT_EQ(A.Worker.BusyNanos, 0u);
}

TEST(MetricsRegistry, SnapshotMergesAllShardsCommutatively) {
  obs::MetricsRegistry Reg(3);
  ASSERT_EQ(Reg.shards(), 3u);
  for (unsigned I = 0; I != 3; ++I) {
    obs::count(&Reg.shard(I), obs::Counter::Chains, I + 1);
    Reg.shard(I).ReplayDepth.observe(10 * (I + 1));
    Reg.shard(I).ExecutionsPerBound.increment(I, 2);
    Reg.shard(I).Worker.BusyNanos = 100 * (I + 1);
  }
  obs::MetricsSnapshot Snap = Reg.snapshot();
#ifndef ICB_NO_METRICS
  EXPECT_EQ(counterOf(Snap, obs::Counter::Chains), 6u);
#endif
  EXPECT_EQ(Snap.ReplayDepth.count(), 3u);
  EXPECT_EQ(Snap.ReplayDepth.min(), 10u);
  EXPECT_EQ(Snap.ReplayDepth.max(), 30u);
  EXPECT_EQ(Snap.ExecutionsPerBound.total(), 6u);
  // Per-worker accounting is per shard, not summed into one.
  ASSERT_EQ(Snap.Workers.size(), 3u);
  EXPECT_EQ(Snap.Workers[1].BusyNanos, 200u);
}

TEST(MetricsRegistry, RestoreSeedsTheNextSnapshot) {
  obs::MetricsRegistry First(2);
  obs::count(&First.shard(0), obs::Counter::SeenMiss, 5);
  obs::count(&First.shard(1), obs::Counter::SeenMiss, 7);
  First.shard(0).ExecutionsPerBound.increment(1, 4);
  First.shard(0).Worker.BusyNanos = 50;
  obs::MetricsSnapshot Mid = First.snapshot();

  // A "resumed" registry continues from the checkpointed image; the
  // merged result equals one uninterrupted run's.
  obs::MetricsRegistry Second(2);
  Second.restore(Mid);
  obs::count(&Second.shard(0), obs::Counter::SeenMiss, 10);
  Second.shard(0).ExecutionsPerBound.increment(2, 1);
  Second.shard(1).Worker.IdleNanos = 9;
  obs::MetricsSnapshot End = Second.snapshot();
#ifndef ICB_NO_METRICS
  EXPECT_EQ(counterOf(End, obs::Counter::SeenMiss), 22u);
  EXPECT_EQ(End.ExecutionsPerBound.at(1), 4u);
  EXPECT_EQ(End.ExecutionsPerBound.at(2), 1u);
  ASSERT_EQ(End.Workers.size(), 2u);
  EXPECT_EQ(End.Workers[0].BusyNanos, 50u);
  EXPECT_EQ(End.Workers[1].IdleNanos, 9u);
#else
  (void)End;
#endif
}

TEST(MetricsSnapshot, EmptyDetectsAnyContent) {
  obs::MetricsSnapshot S;
  EXPECT_TRUE(S.empty());
  S.Workers.push_back({0, 0});
  EXPECT_TRUE(S.empty()) << "all-zero workers carry no information";
  S.Workers[0].IdleNanos = 1;
  EXPECT_FALSE(S.empty());
  obs::MetricsSnapshot C;
  C.Counters.assign(obs::NumCounters, 0);
  C.Counters[0] = 1;
  EXPECT_FALSE(C.empty());
}

//===----------------------------------------------------------------------===//
// ScopedPhase
//===----------------------------------------------------------------------===//

TEST(ScopedPhase, ObservesShardAndAccumulator) {
  obs::MetricShard Shard;
  uint64_t Also = 0;
  {
    obs::ScopedPhase Timer(&Shard, obs::Phase::Hash, &Also);
  }
  {
    obs::ScopedPhase Timer(&Shard, obs::Phase::Hash);
  }
#ifndef ICB_NO_METRICS
  const MinMax &Hash = Shard.Phases[static_cast<size_t>(obs::Phase::Hash)];
  EXPECT_EQ(Hash.count(), 2u);
  EXPECT_GE(Also, Hash.min());
#else
  EXPECT_TRUE(
      Shard.Phases[static_cast<size_t>(obs::Phase::Hash)].empty());
  EXPECT_EQ(Also, 0u);
#endif
}

TEST(ScopedPhase, NullShardIsSafeAndAccumulatorOnlyWorks) {
  uint64_t Idle = 0;
  {
    obs::ScopedPhase Wait(nullptr, obs::Phase::Execute, &Idle);
  }
  {
    obs::ScopedPhase Nothing(nullptr, obs::Phase::Execute);
  }
  SUCCEED(); // No crash; Idle may be 0 or tiny — both fine.
  (void)Idle;
}

#ifdef ICB_NO_METRICS
TEST(NoMetricsBuild, CountIsANoOp) {
  obs::MetricShard Shard;
  obs::count(&Shard, obs::Counter::Chains, 100);
  EXPECT_EQ(Shard.Counters[static_cast<size_t>(obs::Counter::Chains)], 0u);
  ICB_OBS(&Shard, Shard.ReplayDepth.observe(5));
  EXPECT_TRUE(Shard.ReplayDepth.empty());
}
#endif

//===----------------------------------------------------------------------===//
// TraceBuf ring and intern table
//===----------------------------------------------------------------------===//

TEST(TraceBuf, RingKeepsTheNewestWindow) {
  obs::TraceBuf Buf(4);
  EXPECT_EQ(Buf.capacity(), 4u);
  EXPECT_EQ(Buf.size(), 0u);
  for (uint64_t I = 0; I != 6; ++I) {
    obs::TraceEvent E;
    E.Nanos = I;
    E.Kind = obs::TraceEventKind::ExecBegin;
    Buf.append(E);
  }
  EXPECT_EQ(Buf.size(), 4u);
  EXPECT_EQ(Buf.dropped(), 2u) << "the two oldest events were overwritten";
  for (size_t I = 0; I != 4; ++I)
    EXPECT_EQ(Buf.at(I).Nanos, I + 2) << "at() is chronological from oldest";
}

TEST(TraceBuf, InternIdsAreStableAndZeroIsEmpty) {
  obs::TraceBuf Buf(1);
  EXPECT_EQ(Buf.intern(""), 0u);
  uint32_t Lock = Buf.intern("lock m_baseCS");
  EXPECT_NE(Lock, 0u);
  EXPECT_EQ(Buf.intern("lock m_baseCS"), Lock) << "repeat intern reuses";
  uint32_t Free = Buf.intern("free conn");
  EXPECT_NE(Free, Lock);
  EXPECT_EQ(Buf.string(Lock), "lock m_baseCS");
  EXPECT_EQ(Buf.string(0), "");
  EXPECT_EQ(Buf.string(9999), "") << "unknown ids read as the empty string";
}

TEST(TraceBuf, ZeroCapacityDropsSilently) {
  obs::TraceBuf Buf(0);
  Buf.append(obs::TraceEvent{});
  EXPECT_EQ(Buf.size(), 0u);
  EXPECT_EQ(Buf.dropped(), 0u);
}

//===----------------------------------------------------------------------===//
// ProgressMeter
//===----------------------------------------------------------------------===//

TEST(ProgressMeter, FirstDeadlineIsImmediateAndClaimedOnce) {
  FILE *Out = tmpfile();
  ASSERT_NE(Out, nullptr);
  obs::ProgressMeter Meter(/*PeriodMillis=*/3600 * 1000, Out);
  EXPECT_TRUE(Meter.due()) << "construction arms an immediate first tick";
  EXPECT_FALSE(Meter.due()) << "the next deadline is a period away";
  obs::ProgressSample S;
  S.Bound = 1;
  S.MaxBound = 2;
  S.Executions = 10;
  Meter.tick(S);
  Meter.finish(S);
  long Size = std::ftell(Out);
  EXPECT_GT(Size, 0) << "tick and finish render lines";
  std::fclose(Out);
}

TEST(ProgressMeter, RendersEstimatorColumnsWhenMassCredited) {
  FILE *Out = tmpfile();
  ASSERT_NE(Out, nullptr);
  obs::ProgressMeter Meter(/*PeriodMillis=*/3600 * 1000, Out);
  obs::ProgressSample S;
  S.Bound = 1;
  S.MaxBound = 4;
  S.Executions = 25;
  S.EstMass = obs::EstimateOne / 4; // 25% explored -> 100 projected total.
  Meter.finish(S);
  long Size = std::ftell(Out);
  ASSERT_GT(Size, 0);
  std::rewind(Out);
  std::string Text(static_cast<size_t>(Size), '\0');
  ASSERT_EQ(std::fread(Text.data(), 1, Text.size(), Out), Text.size());
  std::fclose(Out);
  EXPECT_NE(Text.find("est 100"), std::string::npos) << Text;
  EXPECT_NE(Text.find("25.00%"), std::string::npos) << Text;
}

TEST(ProgressMeter, OmitsEstimateWhileUncredited) {
  FILE *Out = tmpfile();
  ASSERT_NE(Out, nullptr);
  obs::ProgressMeter Meter(/*PeriodMillis=*/3600 * 1000, Out);
  obs::ProgressSample S;
  S.Bound = 0;
  S.Executions = 3; // EstMass = 0: estimator dark, no est column.
  Meter.finish(S);
  long Size = std::ftell(Out);
  ASSERT_GT(Size, 0);
  std::rewind(Out);
  std::string Text(static_cast<size_t>(Size), '\0');
  ASSERT_EQ(std::fread(Text.data(), 1, Text.size(), Out), Text.size());
  std::fclose(Out);
  EXPECT_EQ(Text.find("est "), std::string::npos) << Text;
}

//===----------------------------------------------------------------------===//
// JSON round trip
//===----------------------------------------------------------------------===//

obs::MetricsSnapshot sampleSnapshot() {
  obs::MetricsRegistry Reg(2);
  for (size_t I = 0; I != obs::NumCounters; ++I)
    Reg.shard(0).Counters[I] = 100 + I;
  Reg.shard(1).Counters[0] = 1;
  Reg.shard(0).Phases[static_cast<size_t>(obs::Phase::Replay)].observe(42);
  Reg.shard(1).Phases[static_cast<size_t>(obs::Phase::Execute)].observe(7);
  Reg.shard(0).ReplayDepth.observe(3);
  Reg.shard(0).ReplayDepth.observe(5);
  Reg.shard(1).ExecutionsPerBound.increment(0, 2);
  Reg.shard(1).ExecutionsPerBound.increment(3, 1);
  Reg.shard(0).SleepSavedPerBound.increment(1, 6);
  Reg.shard(0).EstMassPerBound.increment(0, obs::EstimateOne / 2);
  Reg.shard(1).EstMassPerBound.increment(1, obs::EstimateOne / 4);
  obs::SiteStat &Site = Reg.shard(0).Sites["lock m_baseCS"];
  Site.Taken.increment(1, 4);
  Site.Execs.increment(1, 3);
  Site.Bugs.increment(1, 1);
  Site.NewStates.increment(1, 2);
  // A NewStates-only site: tree-empty, so it travels in the timing half.
  Reg.shard(1).Sites["free conn"].NewStates.increment(2, 5);
  Reg.shard(0).Worker = {123456, 789};
  Reg.shard(1).Worker = {42, 0};
  return Reg.snapshot();
}

TEST(MetricsJson, RoundTripsExactly) {
  obs::MetricsSnapshot In = sampleSnapshot();
  session::JsonValue V = session::metricsToJson(In);
  obs::MetricsSnapshot Out;
  ASSERT_TRUE(session::metricsFromJson(V, Out));
  ASSERT_EQ(Out.Counters.size(), obs::NumCounters);
  for (size_t I = 0; I != obs::NumCounters; ++I)
    EXPECT_EQ(Out.Counters[I], In.Counters[I])
        << obs::counterName(static_cast<obs::Counter>(I));
  ASSERT_EQ(Out.Phases.size(), obs::NumPhases);
  for (size_t I = 0; I != obs::NumPhases; ++I) {
    EXPECT_EQ(Out.Phases[I].count(), In.Phases[I].count());
    EXPECT_EQ(Out.Phases[I].sum(), In.Phases[I].sum());
  }
  EXPECT_EQ(Out.ReplayDepth.sum(), In.ReplayDepth.sum());
  EXPECT_EQ(Out.ExecutionsPerBound.at(0), In.ExecutionsPerBound.at(0));
  EXPECT_EQ(Out.ExecutionsPerBound.at(3), In.ExecutionsPerBound.at(3));
  EXPECT_EQ(Out.SleepSavedPerBound.at(1), 6u);
  EXPECT_EQ(Out.EstMassPerBound.at(0), obs::EstimateOne / 2);
  EXPECT_EQ(Out.EstMassPerBound.at(1), obs::EstimateOne / 4);
  EXPECT_EQ(Out.estMassTotal(), In.estMassTotal());
  ASSERT_TRUE(Out.Sites.count("lock m_baseCS"));
  const obs::SiteStat &Site = Out.Sites.at("lock m_baseCS");
  EXPECT_EQ(Site.Taken.at(1), 4u);
  EXPECT_EQ(Site.Execs.at(1), 3u);
  EXPECT_EQ(Site.Bugs.at(1), 1u);
  EXPECT_EQ(Site.NewStates.at(1), 2u);
  // The tree-empty site still round-trips its NewStates through the
  // timing half.
  ASSERT_TRUE(Out.Sites.count("free conn"));
  EXPECT_EQ(Out.Sites.at("free conn").NewStates.at(2), 5u);
  EXPECT_EQ(Out.Sites.at("free conn").Taken.total(), 0u);
  ASSERT_EQ(Out.Workers.size(), In.Workers.size());
  for (size_t I = 0; I != Out.Workers.size(); ++I) {
    EXPECT_EQ(Out.Workers[I].BusyNanos, In.Workers[I].BusyNanos);
    EXPECT_EQ(Out.Workers[I].IdleNanos, In.Workers[I].IdleNanos);
  }
}

TEST(MetricsJson, SectionsSortCountersByClass) {
  session::JsonValue V = session::metricsToJson(sampleSnapshot());
  const session::JsonValue *Det = V.find("counters");
  const session::JsonValue *Timing = V.find("timing");
  ASSERT_NE(Det, nullptr);
  ASSERT_NE(Timing, nullptr);
  EXPECT_NE(Det->find("seen_hit"), nullptr);
  EXPECT_EQ(Det->find("steal_attempts"), nullptr)
      << "timing-class counters must not pollute the deterministic section";
  const session::JsonValue *TCounters = Timing->find("counters");
  ASSERT_NE(TCounters, nullptr);
  EXPECT_NE(TCounters->find("steal_attempts"), nullptr);
  // Site profiles split the same way: Taken/Execs are tree-derived and
  // deterministic; Bugs and NewStates attribution is timing-class (the
  // claim winner observes them), and a site with only timing-class data
  // must not surface in the deterministic section at all.
  const session::JsonValue *Sites = V.find("sites");
  ASSERT_NE(Sites, nullptr);
  const session::JsonValue *LockRow = Sites->find("lock m_baseCS");
  ASSERT_NE(LockRow, nullptr);
  EXPECT_NE(LockRow->find("taken"), nullptr);
  EXPECT_NE(LockRow->find("execs"), nullptr);
  EXPECT_EQ(LockRow->find("bugs"), nullptr)
      << "bug attribution is timing-class and must not pollute the "
         "deterministic site rows";
  EXPECT_EQ(Sites->find("free conn"), nullptr)
      << "NewStates-only sites are attribution-dependent";
  const session::JsonValue *SiteNew = Timing->find("site_new_states");
  ASSERT_NE(SiteNew, nullptr);
  EXPECT_NE(SiteNew->find("free conn"), nullptr);
  const session::JsonValue *SiteBugs = Timing->find("site_bugs");
  ASSERT_NE(SiteBugs, nullptr);
  EXPECT_NE(SiteBugs->find("lock m_baseCS"), nullptr);
  // Every minmax export carries the scaled mean for generic readers.
  const session::JsonValue *Depth = V.find("replay_depth");
  ASSERT_NE(Depth, nullptr);
  uint64_t MeanMilli = 0;
  EXPECT_TRUE(Depth->getU64("mean_milli", MeanMilli));
  EXPECT_EQ(MeanMilli, 4000u); // (3 + 5) / 2 = 4.
}

TEST(MetricsJson, StrictParseRejectsMissingPieces) {
  session::JsonValue V = session::metricsToJson(sampleSnapshot());
  obs::MetricsSnapshot Out;
  session::JsonValue NoDepth = V;
  NoDepth.set("replay_depth", session::JsonValue::null());
  EXPECT_FALSE(session::metricsFromJson(NoDepth, Out));
  session::JsonValue NoTiming = V;
  NoTiming.set("timing", session::JsonValue::null());
  EXPECT_FALSE(session::metricsFromJson(NoTiming, Out));
  EXPECT_FALSE(session::metricsFromJson(session::JsonValue::null(), Out));
}

//===----------------------------------------------------------------------===//
// Determinism across worker counts, both executors
//===----------------------------------------------------------------------===//

#ifndef ICB_NO_METRICS

obs::MetricsSnapshot runVmIcb(const vm::Program &Prog, unsigned Jobs,
                              bool UseCache) {
  obs::MetricsRegistry Reg;
  vm::Interp VM(Prog);
  if (Jobs == 1) {
    search::IcbSearch::Options Opts;
    Opts.UseStateCache = UseCache;
    Opts.Limits.MaxPreemptionBound = 2;
    Opts.Limits.StopAtFirstBug = false;
    Opts.Metrics = &Reg;
    search::IcbSearch(Opts).run(VM);
  } else {
    search::ParallelIcbSearch::Options Opts;
    Opts.Jobs = Jobs;
    Opts.UseStateCache = UseCache;
    Opts.Limits.MaxPreemptionBound = 2;
    Opts.Limits.StopAtFirstBug = false;
    Opts.Metrics = &Reg;
    search::ParallelIcbSearch(Opts).run(VM);
  }
  return Reg.snapshot();
}

TEST(MetricsDeterminism, VmExecutorJobsOneVsN) {
  for (bool UseCache : {false, true}) {
    SCOPED_TRACE(UseCache ? "state cache on" : "state cache off");
    vm::Program Prog = wsqModel({2, WsqBug::PopCheckThenAct});
    obs::MetricsSnapshot Seq = runVmIcb(Prog, 1, UseCache);
    EXPECT_GT(counterOf(Seq, obs::Counter::Chains), 0u);
    if (UseCache) {
      EXPECT_GT(counterOf(Seq, obs::Counter::ItemMiss), 0u);
    }
    for (unsigned Jobs : {2u, 4u}) {
      SCOPED_TRACE("jobs " + std::to_string(Jobs));
      expectSameDeterministicMetrics(Seq, runVmIcb(Prog, Jobs, UseCache));
    }
  }
}

obs::MetricsSnapshot runRtIcb(const rt::TestCase &Test, unsigned Jobs) {
  obs::MetricsRegistry Reg;
  rt::ExploreOptions Opts;
  Opts.Limits.MaxPreemptionBound = 2;
  Opts.Limits.StopAtFirstBug = false;
  Opts.Jobs = Jobs;
  Opts.Metrics = &Reg;
  rt::IcbExplorer(Opts).explore(Test);
  return Reg.snapshot();
}

TEST(MetricsDeterminism, RtExecutorJobsOneVsN) {
  rt::TestCase Test = workStealingTest({3, 4, WsqBug::PopRetryNoLock});
  obs::MetricsSnapshot Seq = runRtIcb(Test, 1);
  EXPECT_GT(counterOf(Seq, obs::Counter::Chains), 0u);
  EXPECT_GT(counterOf(Seq, obs::Counter::ReplaySteps), 0u);
  EXPECT_GT(counterOf(Seq, obs::Counter::TerminalMiss), 0u);
  for (unsigned Jobs : {2u, 4u}) {
    SCOPED_TRACE("jobs " + std::to_string(Jobs));
    expectSameDeterministicMetrics(Seq, runRtIcb(Test, Jobs));
  }
}

TEST(MetricsDeterminism, RtCleanTestToo) {
  rt::TestCase Test = bluetoothTest({2, /*WithBug=*/false});
  obs::MetricsSnapshot Seq = runRtIcb(Test, 1);
  expectSameDeterministicMetrics(Seq, runRtIcb(Test, 3));
}

//===----------------------------------------------------------------------===//
// Schedule-space estimator
//===----------------------------------------------------------------------===//

// Pruned configurations (state cache + sleep sets) keep the full spaces
// small enough to exhaust; the estimator must conserve mass under pruning
// too, since skipped subtrees credit their mass on the chain that skips.
search::SearchResult runVmBounded(const vm::Program &Prog, unsigned MaxBound,
                                  obs::MetricsRegistry *Reg) {
  vm::Interp VM(Prog);
  search::IcbSearch::Options Opts;
  Opts.UseStateCache = true;
  Opts.UseSleepSets = true;
  Opts.Limits.MaxPreemptionBound = MaxBound;
  Opts.Limits.StopAtFirstBug = false;
  Opts.Metrics = Reg;
  return search::IcbSearch(Opts).run(VM);
}

rt::ExploreResult runRtBounded(const rt::TestCase &Test, unsigned MaxBound,
                               obs::MetricsRegistry *Reg, unsigned Jobs = 1) {
  rt::ExploreOptions Opts;
  Opts.Por = true;
  Opts.Limits.MaxPreemptionBound = MaxBound;
  Opts.Limits.StopAtFirstBug = false;
  Opts.Jobs = Jobs;
  Opts.Metrics = Reg;
  return rt::IcbExplorer(Opts).explore(Test);
}

TEST(ScheduleEstimator, CompletedVmSearchCreditsAllMassExactly) {
  obs::MetricsRegistry Reg;
  search::SearchResult R =
      runVmBounded(wsqModel({2, WsqBug::PopCheckThenAct}), 64, &Reg);
  ASSERT_TRUE(R.Stats.Completed) << "space must be exhausted for exactness";
  obs::MetricsSnapshot Snap = Reg.snapshot();
  EXPECT_EQ(Snap.estMassTotal(), obs::EstimateOne);
  EXPECT_EQ(Snap.estimatedTotalExecutions(R.Stats.Executions),
            R.Stats.Executions);
  EXPECT_EQ(Snap.exploredPpm(), 1000000u);
}

TEST(ScheduleEstimator, CompletedRtSearchCreditsAllMassExactly) {
  obs::MetricsRegistry Reg;
  rt::ExploreResult R = runRtBounded(
      workStealingTest({2, 2, WsqBug::PopRetryNoLock}), 64, &Reg);
  ASSERT_TRUE(R.Stats.Completed);
  obs::MetricsSnapshot Snap = Reg.snapshot();
  EXPECT_EQ(Snap.estMassTotal(), obs::EstimateOne);
  EXPECT_EQ(Snap.estimatedTotalExecutions(R.Stats.Executions),
            R.Stats.Executions);
}

TEST(ScheduleEstimator, ParallelMassHistogramMatchesSequentialExactly) {
  rt::TestCase Test = workStealingTest({2, 2, WsqBug::PopRetryNoLock});
  obs::MetricsRegistry Seq, Par;
  rt::ExploreResult RS = runRtBounded(Test, 64, &Seq);
  rt::ExploreResult RP = runRtBounded(Test, 64, &Par, /*Jobs=*/4);
  ASSERT_TRUE(RS.Stats.Completed);
  ASSERT_TRUE(RP.Stats.Completed);
  obs::MetricsSnapshot S = Seq.snapshot();
  obs::MetricsSnapshot P = Par.snapshot();
  EXPECT_EQ(P.estMassTotal(), obs::EstimateOne);
  expectSameHistogram("estimator mass", S.EstMassPerBound, P.EstMassPerBound);
}

/// Exhausts \p Run's space for the true count, then walks bounds 1..
/// until a bound covers the space, checking the Knuth-style estimate at
/// each truncated bound. A uniform-split estimator systematically
/// undershoots at shallow preemption bounds — a deferred subtree is far
/// larger than an even share of its parent's mass — so the honest
/// contract is: estimates are positive, never more than 2x above the
/// truth, converge monotonically from below as the bound deepens, and
/// every truncated estimate is within \p Factor of the truth — with the
/// shallowest bound the worst case (measured per-model ratios that
/// EXPERIMENTS.md records).
template <typename Runner>
void checkTruncatedEstimateAccuracy(Runner Run, uint64_t Factor) {
  obs::MetricsRegistry FullReg;
  auto Full = Run(64u, &FullReg, 1u);
  ASSERT_TRUE(Full.Stats.Completed);
  uint64_t Truth = Full.Stats.Executions;
  uint64_t Prev = 0;
  bool Checked = false;
  for (unsigned Bound = 1; Bound <= 8; ++Bound) {
    SCOPED_TRACE("bound " + std::to_string(Bound));
    obs::MetricsRegistry Reg;
    auto R = Run(Bound, &Reg, 1u);
    if (R.Stats.Completed) {
      // The bound covers the whole space; the estimate is exact there
      // (CompletedSearchCreditsAllMassExactly) and no longer truncated.
      EXPECT_EQ(Reg.snapshot().estimatedTotalExecutions(R.Stats.Executions),
                Truth);
      break;
    }
    uint64_t Est = Reg.snapshot().estimatedTotalExecutions(R.Stats.Executions);
    std::printf("  [estimator] bound %u: estimate %llu, truth %llu "
                "(%.1f%% of space explored)\n",
                Bound, static_cast<unsigned long long>(Est),
                static_cast<unsigned long long>(Truth),
                1e-4 * Reg.snapshot().exploredPpm());
    ASSERT_GT(Est, 0u);
    EXPECT_LE(Est, Truth * 2) << "estimate " << Est << " vs truth " << Truth;
    EXPECT_GE(Est, Prev) << "a deeper bound must not lose estimate mass";
    EXPECT_GE(Est * Factor, Truth)
        << "estimate " << Est << " vs truth " << Truth;
    Prev = Est;
    Checked = true;
  }
  EXPECT_TRUE(Checked) << "space trivially exhausted; pick a deeper model";
}

TEST(ScheduleEstimator, TruncatedVmEstimateConvergesFromBelow) {
  vm::Program Prog = wsqModel({2, WsqBug::PopCheckThenAct});
  checkTruncatedEstimateAccuracy(
      [&](unsigned Bound, obs::MetricsRegistry *Reg, unsigned) {
        return runVmBounded(Prog, Bound, Reg);
      },
      /*Factor=*/8);
}

TEST(ScheduleEstimator, TruncatedRtEstimateConvergesFromBelow) {
  rt::TestCase Test = workStealingTest({2, 2, WsqBug::PopRetryNoLock});
  checkTruncatedEstimateAccuracy(
      [&](unsigned Bound, obs::MetricsRegistry *Reg, unsigned Jobs) {
        return runRtBounded(Test, Bound, Reg, Jobs);
      },
      /*Factor=*/512);
}

TEST(ScheduleEstimator, TruncatedBluetoothEstimateConvergesFromBelow) {
  rt::TestCase Test = bluetoothTest({1, /*WithBug=*/true});
  checkTruncatedEstimateAccuracy(
      [&](unsigned Bound, obs::MetricsRegistry *Reg, unsigned Jobs) {
        return runRtBounded(Test, Bound, Reg, Jobs);
      },
      /*Factor=*/8);
}

//===----------------------------------------------------------------------===//
// Preemption-site profiles
//===----------------------------------------------------------------------===//

TEST(PreemptionSites, BuggyRunAttributesBugsToConcreteSites) {
  obs::MetricsRegistry Reg;
  rt::ExploreResult R =
      runRtBounded(bluetoothTest({2, /*WithBug=*/true}), 2, &Reg);
  ASSERT_FALSE(R.Bugs.empty());
  obs::MetricsSnapshot Snap = Reg.snapshot();
  ASSERT_FALSE(Snap.Sites.empty());
  uint64_t Taken = 0, Execs = 0, BugHits = 0;
  size_t Concrete = 0;
  for (const auto &[Name, S] : Snap.Sites) {
    EXPECT_FALSE(Name.empty());
    Taken += S.Taken.total();
    Execs += S.Execs.total();
    BugHits += S.Bugs.total();
    // Bound-0 chains descend from the pseudo-site "root"; every concrete
    // site is born from a deferred preemption, which executes at >= 1.
    if (Name == "root")
      continue;
    ++Concrete;
    EXPECT_EQ(S.Execs.at(0), 0u) << Name;
    EXPECT_EQ(S.Bugs.at(0), 0u) << Name;
  }
  EXPECT_GT(Concrete, 0u) << "a bounded run must name concrete sites";
  EXPECT_GT(Taken, 0u);
  EXPECT_GT(Execs, 0u);
  EXPECT_LE(Execs, R.Stats.Executions)
      << "every chain is owned by exactly one seeding site";
  EXPECT_GT(BugHits, 0u)
      << "the seeded bug needs a preemption, so its chain names a site";
}

//===----------------------------------------------------------------------===//
// Perfetto trace export
//===----------------------------------------------------------------------===//

TEST(PerfettoTrace, ExportIsSchemaConsistent) {
  obs::MetricsRegistry Reg;
  Reg.enableTracing(1 << 16);
  ASSERT_TRUE(Reg.tracingEnabled());
  rt::TestCase Test = workStealingTest({2, 2, WsqBug::PopRetryNoLock});
  runRtBounded(Test, 2, &Reg, /*Jobs=*/2);
  ASSERT_EQ(Reg.traceBufs(), 2u);

  std::string Path = testing::TempDir() + "icb_obs_trace_test.json";
  std::string Error;
  ASSERT_TRUE(obs::writePerfettoTrace(Reg, Path, &Error)) << Error;
  std::string Text;
  ASSERT_TRUE(session::readFile(Path, Text, &Error)) << Error;
  std::remove(Path.c_str());

  ASSERT_EQ(Text.rfind("{\"traceEvents\":[", 0), 0u) << "envelope";
  // One event object per line. The flow invariant ui.perfetto.dev needs:
  // every flow finish ("f") id was emitted by some flow start ("s").
  auto FieldOf = [](const std::string &Line, const char *Key) {
    size_t P = Line.find(Key);
    if (P == std::string::npos)
      return std::string();
    P += std::strlen(Key);
    return Line.substr(P, Line.find('"', P) - P);
  };
  std::set<std::string> Starts, Finishes;
  size_t Slices = 0, Instants = 0, Metas = 0;
  for (size_t At = 0; At < Text.size();) {
    size_t End = Text.find('\n', At);
    if (End == std::string::npos)
      End = Text.size();
    std::string Line = Text.substr(At, End - At);
    At = End + 1;
    std::string Ph = FieldOf(Line, "\"ph\":\"");
    if (Ph == "X") {
      ++Slices;
      EXPECT_NE(Line.find("\"dur\":"), std::string::npos) << Line;
    } else if (Ph == "i") {
      ++Instants;
    } else if (Ph == "M") {
      ++Metas;
    } else if (Ph == "s") {
      Starts.insert(FieldOf(Line, "\"id\":\""));
    } else if (Ph == "f") {
      Finishes.insert(FieldOf(Line, "\"id\":\""));
    } else {
      EXPECT_TRUE(Ph.empty()) << "unexpected event kind: " << Line;
    }
  }
  EXPECT_GT(Slices, 0u) << "phase slices";
  EXPECT_GT(Instants, 0u) << "exec/branch instants";
  EXPECT_EQ(Metas, 2u) << "one thread_name record per worker track";
  EXPECT_FALSE(Starts.empty());
  EXPECT_FALSE(Finishes.empty());
  for (const std::string &Id : Finishes)
    EXPECT_TRUE(Starts.count(Id)) << "flow finish without a start: " << Id;
}

#endif // !ICB_NO_METRICS

} // namespace
