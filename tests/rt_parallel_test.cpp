//===- tests/rt_parallel_test.cpp - Parallel stateless ICB tests ----------===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Determinism of the parallel stateless (CHESS-side) ICB driver: a Jobs=N
/// run replays schedule prefixes on N fiber schedulers concurrently, yet
/// must produce exactly the Jobs=1 result — same aggregate statistics,
/// same per-bound coverage snapshots, and byte-identical canonical bug
/// reports. Kept out of the TSan suite: the fiber runtime switches stacks
/// in ways ThreadSanitizer cannot track (the lock-free engine internals
/// are TSan-covered via the model-VM form in parallel_test).
///
//===----------------------------------------------------------------------===//

#include "benchmarks/Bluetooth.h"
#include "benchmarks/WorkStealingQueue.h"
#include "rt/Explore.h"
#include "testutil/ResultChecks.h"
#include <gtest/gtest.h>
#include <string>
#include <vector>

using namespace icb;
using namespace icb::bench;
using icb::testutil::expectIdenticalResults;

namespace {

rt::ExploreResult runIcb(const rt::TestCase &Test, unsigned MaxBound,
                         unsigned Jobs, bool KeepGoing = true,
                         bool Por = false) {
  rt::ExploreOptions Opts;
  Opts.Limits.MaxPreemptionBound = MaxBound;
  Opts.Limits.StopAtFirstBug = !KeepGoing;
  Opts.Jobs = Jobs;
  Opts.Por = Por;
  rt::IcbExplorer Icb(Opts);
  return Icb.explore(Test);
}

TEST(RtParallelIcb, WsqBugReportsMatchSequential) {
  for (WsqBug Bug : {WsqBug::PopCheckThenAct, WsqBug::PopRetryNoLock}) {
    SCOPED_TRACE(wsqBugName(Bug));
    rt::TestCase Test = workStealingTest({3, 4, Bug});
    rt::ExploreResult Seq = runIcb(Test, 2, /*Jobs=*/1);
    ASSERT_TRUE(Seq.foundBug());
    for (unsigned Jobs : {2u, 4u}) {
      rt::ExploreResult Par = runIcb(Test, 2, Jobs);
      expectIdenticalResults(Seq, Par);
    }
  }
}

TEST(RtParallelIcb, BluetoothMatchesSequential) {
  rt::TestCase Test = bluetoothTest({2, /*WithBug=*/true});
  rt::ExploreResult Seq = runIcb(Test, 2, /*Jobs=*/1);
  ASSERT_TRUE(Seq.foundBug());
  EXPECT_EQ(Seq.simplestBug()->Preemptions, 1u);
  expectIdenticalResults(Seq, runIcb(Test, 2, /*Jobs=*/4));
}

TEST(RtParallelIcb, CleanTestStaysCleanAndExhaustsSpace) {
  rt::TestCase Test = bluetoothTest({2, /*WithBug=*/false});
  rt::ExploreResult Seq = runIcb(Test, 2, /*Jobs=*/1);
  EXPECT_FALSE(Seq.foundBug());
  expectIdenticalResults(Seq, runIcb(Test, 2, /*Jobs=*/3));
}

TEST(RtParallelIcb, JobsZeroPicksHardwareConcurrency) {
  rt::TestCase Test = workStealingTest({3, 4, WsqBug::PopCheckThenAct});
  rt::ExploreResult Seq = runIcb(Test, 1, /*Jobs=*/1);
  rt::ExploreResult Auto = runIcb(Test, 1, /*Jobs=*/0);
  expectIdenticalResults(Seq, Auto);
}

TEST(RtParallelIcb, PorBugReportsMatchSequential) {
  // Sleep sets ride inside work items, so the pruning decisions — and
  // therefore the full result, bug reports included — cannot depend on
  // which worker drains which item.
  for (WsqBug Bug : {WsqBug::PopCheckThenAct, WsqBug::PopRetryNoLock}) {
    SCOPED_TRACE(wsqBugName(Bug));
    rt::TestCase Test = workStealingTest({3, 4, Bug});
    rt::ExploreResult Seq =
        runIcb(Test, 2, /*Jobs=*/1, /*KeepGoing=*/true, /*Por=*/true);
    ASSERT_TRUE(Seq.foundBug());
    for (unsigned Jobs : {2u, 4u}) {
      rt::ExploreResult Par = runIcb(Test, 2, Jobs, true, true);
      expectIdenticalResults(Seq, Par);
    }
  }
}

TEST(RtParallelIcb, PorCleanTestStaysCleanAndExhaustsSpace) {
  rt::TestCase Test = bluetoothTest({2, /*WithBug=*/false});
  rt::ExploreResult Seq = runIcb(Test, 2, /*Jobs=*/1, true, /*Por=*/true);
  EXPECT_FALSE(Seq.foundBug());
  rt::ExploreResult Off = runIcb(Test, 2, /*Jobs=*/1);
  EXPECT_LT(Seq.Stats.Executions, Off.Stats.Executions)
      << "POR should prune part of the clean Bluetooth space";
  expectIdenticalResults(Seq, runIcb(Test, 2, /*Jobs=*/3, true, true));
}

TEST(RtParallelIcb, StopAtFirstBugStillReportsMinimalBound) {
  // Bounds are drained in order even in parallel, so the first bug found
  // is found during the minimal bound's round.
  rt::TestCase Test = workStealingTest({3, 4, WsqBug::PopCheckThenAct});
  rt::ExploreResult R = runIcb(Test, 2, /*Jobs=*/4, /*KeepGoing=*/false);
  ASSERT_TRUE(R.foundBug());
  EXPECT_EQ(R.simplestBug()->Preemptions, 1u);
}

} // namespace
