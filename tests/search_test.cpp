//===- tests/search_test.cpp - Search strategy unit tests ------------------===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Validates the central claims the search layer must uphold:
///   * ICB enumerates executions in nondecreasing preemption order and
///     reports bugs with their minimal preemption count;
///   * bound-0 search already reaches terminating executions (depth is
///     never bounded);
///   * the strategies agree on which programs are buggy;
///   * statistics and coverage logs behave.
///
//===----------------------------------------------------------------------===//

#include "search/Checker.h"
#include "search/Dfs.h"
#include "search/IcbSearch.h"
#include "search/RandomWalk.h"
#include "testutil/TestPrograms.h"
#include <gtest/gtest.h>

using namespace icb;
using namespace icb::search;
using namespace icb::vm;

namespace {

SearchResult runIcb(const Program &Prog, bool Cache = false,
                    unsigned MaxBound = 100, bool StopAtFirst = false) {
  SearchOptions Opts;
  Opts.Kind = StrategyKind::Icb;
  Opts.UseStateCache = Cache;
  Opts.Limits.MaxPreemptionBound = MaxBound;
  Opts.Limits.StopAtFirstBug = StopAtFirst;
  return checkProgram(Prog, Opts);
}

TEST(IcbSearch, FindsRacyCounterBugAtBoundOne) {
  SearchResult R = runIcb(testutil::racyCounter(2), /*Cache=*/false,
                          /*MaxBound=*/3, /*StopAtFirst=*/true);
  ASSERT_TRUE(R.foundBug());
  EXPECT_EQ(R.Bugs[0].Kind, BugKind::AssertFailure);
  EXPECT_EQ(R.Bugs[0].Preemptions, 1u);
}

TEST(IcbSearch, BoundZeroFindsNoRacyCounterBug) {
  SearchResult R = runIcb(testutil::racyCounter(2), /*Cache=*/false,
                          /*MaxBound=*/0);
  EXPECT_FALSE(R.foundBug());
  EXPECT_GT(R.Stats.Executions, 0u);
  // Bound 0 still drives every execution to completion: each explored
  // execution runs all 2 worker increments plus the main thread's joins.
  EXPECT_GE(R.Stats.StepsPerExecution.min(), 1u);
}

TEST(IcbSearch, AtomicCounterHasNoBugExhaustively) {
  SearchResult R = runIcb(testutil::atomicCounter(3));
  EXPECT_FALSE(R.foundBug());
  EXPECT_TRUE(R.Stats.Completed);
}

TEST(IcbSearch, FindsLockOrderDeadlockAtBoundOne) {
  SearchResult R = runIcb(testutil::lockOrderDeadlock());
  ASSERT_TRUE(R.foundBug());
  EXPECT_EQ(R.Bugs[0].Kind, BugKind::Deadlock);
  EXPECT_EQ(R.Bugs[0].Preemptions, 1u);
}

TEST(IcbSearch, LadderBugNeedsExactlyOnePreemption) {
  SearchResult R = runIcb(testutil::preemptionLadder(1));
  ASSERT_TRUE(R.foundBug());
  EXPECT_EQ(R.Bugs[0].Preemptions, 1u);
}

TEST(IcbSearch, LadderBugNeedsExactlyThreePreemptions) {
  SearchResult R = runIcb(testutil::preemptionLadder(3));
  ASSERT_TRUE(R.foundBug());
  EXPECT_EQ(R.Bugs[0].Preemptions, 3u);
  // And bounds below three find nothing.
  SearchResult Below = runIcb(testutil::preemptionLadder(3), false, 2);
  EXPECT_FALSE(Below.foundBug());
}

TEST(IcbSearch, PerBoundCoverageIsMonotone) {
  SearchResult R = runIcb(testutil::racyCounter(2));
  ASSERT_GE(R.Stats.PerBound.size(), 2u);
  for (size_t I = 1; I < R.Stats.PerBound.size(); ++I) {
    EXPECT_EQ(R.Stats.PerBound[I].Bound, R.Stats.PerBound[I - 1].Bound + 1);
    EXPECT_GE(R.Stats.PerBound[I].States, R.Stats.PerBound[I - 1].States);
    EXPECT_GE(R.Stats.PerBound[I].Executions,
              R.Stats.PerBound[I - 1].Executions);
  }
}

TEST(IcbSearch, EventPingPongTerminatesCleanly) {
  SearchResult R = runIcb(testutil::eventPingPong(3));
  EXPECT_FALSE(R.foundBug());
  EXPECT_TRUE(R.Stats.Completed);
}

TEST(IcbSearch, SemaphoreBufferHasNoBug) {
  SearchResult R = runIcb(testutil::semaphoreBuffer(2, 3));
  EXPECT_FALSE(R.foundBug());
  EXPECT_TRUE(R.Stats.Completed);
}

TEST(IcbSearch, StateCacheReducesExecutionsButKeepsBugs) {
  SearchResult NoCache = runIcb(testutil::racyCounter(2), /*Cache=*/false);
  SearchResult Cache = runIcb(testutil::racyCounter(2), /*Cache=*/true);
  ASSERT_TRUE(NoCache.foundBug());
  ASSERT_TRUE(Cache.foundBug());
  EXPECT_EQ(NoCache.Bugs[0].Preemptions, Cache.Bugs[0].Preemptions);
  EXPECT_LE(Cache.Stats.Executions, NoCache.Stats.Executions);
  // Both observe the same set of distinct states.
  EXPECT_EQ(Cache.Stats.DistinctStates, NoCache.Stats.DistinctStates);
}

TEST(IcbSearch, ScheduleReplaysToTheBug) {
  SearchResult R = runIcb(testutil::racyCounter(2), false, 100, true);
  ASSERT_TRUE(R.foundBug());
  const Bug &B = R.Bugs[0];
  ASSERT_FALSE(B.Schedule.empty());
  // Replaying the recorded schedule reproduces the assert failure at the
  // final step.
  Program Prog = testutil::racyCounter(2);
  Interp VM(Prog);
  State S = VM.initialState();
  for (size_t I = 0; I + 1 < B.Schedule.size(); ++I) {
    ASSERT_TRUE(VM.isEnabled(S, B.Schedule[I]));
    StepResult Step = VM.step(S, B.Schedule[I]);
    ASSERT_NE(Step.Status, StepStatus::AssertFailed);
  }
  StepResult Last = VM.step(S, B.Schedule.back());
  EXPECT_EQ(Last.Status, StepStatus::AssertFailed);
}

TEST(IcbSearch, DeterministicAcrossRuns) {
  SearchResult A = runIcb(testutil::racyCounter(2));
  SearchResult B = runIcb(testutil::racyCounter(2));
  EXPECT_EQ(A.Stats.Executions, B.Stats.Executions);
  EXPECT_EQ(A.Stats.TotalSteps, B.Stats.TotalSteps);
  EXPECT_EQ(A.Stats.DistinctStates, B.Stats.DistinctStates);
  ASSERT_EQ(A.Bugs.size(), B.Bugs.size());
  for (size_t I = 0; I != A.Bugs.size(); ++I)
    EXPECT_EQ(A.Bugs[I].Schedule, B.Bugs[I].Schedule);
}

TEST(Dfs, FindsRacyCounterBug) {
  SearchOptions Opts;
  Opts.Kind = StrategyKind::Dfs;
  SearchResult R = checkProgram(testutil::racyCounter(2), Opts);
  ASSERT_TRUE(R.foundBug());
  EXPECT_TRUE(R.Stats.Completed);
}

TEST(Dfs, IcbBugIsNeverDeeperInPreemptionsThanDfsBug) {
  // ICB guarantees minimality; DFS does not. On the ladder the DFS-found
  // exposure may use more preemptions, never fewer.
  Program Prog = testutil::preemptionLadder(3);
  SearchOptions DfsOpts;
  DfsOpts.Kind = StrategyKind::Dfs;
  SearchResult DfsR = checkProgram(Prog, DfsOpts);
  SearchResult IcbR = runIcb(Prog);
  ASSERT_TRUE(DfsR.foundBug());
  ASSERT_TRUE(IcbR.foundBug());
  EXPECT_GE(DfsR.Bugs[0].Preemptions, IcbR.Bugs[0].Preemptions);
}

TEST(Dfs, StateCacheExhaustsSameStates) {
  SearchOptions Plain;
  Plain.Kind = StrategyKind::Dfs;
  SearchOptions Cached = Plain;
  Cached.UseStateCache = true;
  SearchResult A = checkProgram(testutil::eventPingPong(2), Plain);
  SearchResult B = checkProgram(testutil::eventPingPong(2), Cached);
  EXPECT_EQ(A.Stats.DistinctStates, B.Stats.DistinctStates);
  EXPECT_LE(B.Stats.TotalSteps, A.Stats.TotalSteps);
}

TEST(Dfs, DepthBoundTruncates) {
  SearchOptions Opts;
  Opts.Kind = StrategyKind::DepthBoundedDfs;
  Opts.DepthBound = 3;
  SearchResult R = checkProgram(testutil::racyCounter(2), Opts);
  EXPECT_FALSE(R.Stats.Completed);
  EXPECT_LE(R.Stats.StepsPerExecution.max(), 3u);
}

TEST(Dfs, DepthBoundCanMissDeepBugs) {
  // The racy-counter assert fires only after the joins, deeper than 3
  // steps; a db:3 search cannot see it while ICB at bound 1 can.
  SearchOptions Opts;
  Opts.Kind = StrategyKind::DepthBoundedDfs;
  Opts.DepthBound = 3;
  SearchResult R = checkProgram(testutil::racyCounter(2), Opts);
  EXPECT_FALSE(R.foundBug());
}

TEST(IterativeDfs, EventuallyFindsDeepBug) {
  SearchOptions Opts;
  Opts.Kind = StrategyKind::IterativeDfs;
  Opts.DepthBound = 2; // Rounds at depth 2, 4, 6, ...
  SearchResult R = checkProgram(testutil::racyCounter(2), Opts);
  ASSERT_TRUE(R.foundBug());
  EXPECT_TRUE(R.Stats.Completed);
}

TEST(RandomWalk, IsSeedDeterministic) {
  SearchOptions Opts;
  Opts.Kind = StrategyKind::Random;
  Opts.Seed = 42;
  Opts.RandomExecutions = 200;
  SearchResult A = checkProgram(testutil::racyCounter(2), Opts);
  SearchResult B = checkProgram(testutil::racyCounter(2), Opts);
  EXPECT_EQ(A.Stats.DistinctStates, B.Stats.DistinctStates);
  EXPECT_EQ(A.Stats.TotalSteps, B.Stats.TotalSteps);
  Opts.Seed = 43;
  SearchResult C = checkProgram(testutil::racyCounter(2), Opts);
  // A different seed explores a different sample (with high probability);
  // compare the whole coverage growth curves, not just the totals.
  auto Curve = [](const SearchResult &R) {
    std::vector<uint64_t> States;
    for (const CoveragePoint &P : R.Stats.Coverage)
      States.push_back(P.States);
    return States;
  };
  EXPECT_EQ(Curve(A), Curve(B));
  EXPECT_NE(Curve(A), Curve(C));
}

TEST(RandomWalk, ExecutesRequestedNumber) {
  SearchOptions Opts;
  Opts.Kind = StrategyKind::Random;
  Opts.RandomExecutions = 57;
  SearchResult R = checkProgram(testutil::eventPingPong(2), Opts);
  EXPECT_EQ(R.Stats.Executions, 57u);
  EXPECT_EQ(R.Stats.Coverage.size(), 57u);
}

TEST(Limits, MaxExecutionsStopsSearch) {
  SearchOptions Opts;
  Opts.Kind = StrategyKind::Icb;
  Opts.Limits.MaxExecutions = 5;
  SearchResult R = checkProgram(testutil::racyCounter(3), Opts);
  EXPECT_EQ(R.Stats.Executions, 5u);
  EXPECT_FALSE(R.Stats.Completed);
}

TEST(Limits, StopAtFirstBugStopsEarly) {
  SearchResult All = runIcb(testutil::racyCounter(2));
  SearchResult First = runIcb(testutil::racyCounter(2), false, 100, true);
  EXPECT_LE(First.Stats.Executions, All.Stats.Executions);
  ASSERT_TRUE(First.foundBug());
}

TEST(BugCollector, KeepsMinimalPreemptionExposure) {
  BugCollector C;
  Bug B1;
  B1.Kind = BugKind::AssertFailure;
  B1.Message = "m";
  B1.Preemptions = 5;
  EXPECT_TRUE(C.add(B1));
  Bug B2 = B1;
  B2.Preemptions = 2;
  EXPECT_FALSE(C.add(B2));
  ASSERT_EQ(C.bugs().size(), 1u);
  EXPECT_EQ(C.bugs()[0].Preemptions, 2u);
  Bug B3 = B1;
  B3.Message = "other";
  EXPECT_TRUE(C.add(B3));
  EXPECT_EQ(C.bugs().size(), 2u);
}

TEST(Coverage, DfsAndIcbAgreeOnTotalStates) {
  // Exhaustive searches must agree on the reachable state count.
  Program Prog = testutil::racyCounter(2);
  SearchOptions DfsOpts;
  DfsOpts.Kind = StrategyKind::Dfs;
  DfsOpts.UseStateCache = true;
  SearchResult DfsR = checkProgram(Prog, DfsOpts);
  SearchResult IcbR = runIcb(Prog);
  ASSERT_TRUE(DfsR.Stats.Completed);
  ASSERT_TRUE(IcbR.Stats.Completed);
  EXPECT_EQ(DfsR.Stats.DistinctStates, IcbR.Stats.DistinctStates);
}

TEST(Coverage, BoundZeroReachesTerminatingExecutions) {
  // "it is possible to get a complete terminating execution even with a
  // bound of zero" — every bound-0 execution of a deadlock-free program
  // ends with all threads Done, so steps-per-execution equals the full
  // program length.
  SearchResult R = runIcb(testutil::atomicCounter(2), false, /*MaxBound=*/0);
  EXPECT_GT(R.Stats.Executions, 0u);
  // Each worker: 1 shared step (addG); main: 2 joins + 1 load = 3.
  EXPECT_EQ(R.Stats.StepsPerExecution.min(), 5u);
  EXPECT_EQ(R.Stats.StepsPerExecution.max(), 5u);
}

} // namespace

namespace {

TEST(SleepSets, PreserveBugsWithFewerExecutions) {
  // Sleep-set POR must keep every assertion failure and deadlock while
  // exploring no more (usually far fewer) executions.
  struct Case {
    const char *Name;
    Program Prog;
  };
  std::vector<Case> Cases;
  Cases.push_back({"racy", testutil::racyCounter(3)});
  Cases.push_back({"deadlock", testutil::lockOrderDeadlock()});
  Cases.push_back({"ladder", testutil::preemptionLadder(3)});
  Cases.push_back({"clean", testutil::atomicCounter(3)});
  for (Case &C : Cases) {
    DfsSearch::Options Plain;
    DfsSearch PlainDfs(Plain);
    DfsSearch::Options Por;
    Por.UseSleepSets = true;
    DfsSearch PorDfs(Por);
    Interp VM(C.Prog);
    SearchResult A = PlainDfs.run(VM);
    SearchResult B = PorDfs.run(VM);
    ASSERT_TRUE(A.Stats.Completed) << C.Name;
    ASSERT_TRUE(B.Stats.Completed) << C.Name;
    EXPECT_LE(B.Stats.Executions, A.Stats.Executions) << C.Name;
    ASSERT_EQ(A.Bugs.size(), B.Bugs.size()) << C.Name;
    for (const Bug &Want : A.Bugs) {
      bool Found = false;
      for (const Bug &Got : B.Bugs)
        Found |= Got.Message == Want.Message && Got.Kind == Want.Kind;
      EXPECT_TRUE(Found) << C.Name << ": POR lost bug " << Want.Message;
    }
  }
}

/// Threads touching disjoint globals commute completely: POR's best case.
Program disjointProgram(int Threads) {
  ProgramBuilder PB("disjoint");
  std::vector<GlobalVar> Gs;
  for (int I = 0; I != Threads; ++I) {
    std::string GName("g");
    GName += static_cast<char>('0' + I);
    Gs.push_back(PB.addGlobal(GName, 0));
  }
  for (int I = 0; I != Threads; ++I) {
    std::string TName("t");
    TName += static_cast<char>('0' + I);
    ThreadBuilder &T = PB.addThread(TName);
    T.imm(Reg{0}, 1);
    T.storeG(Gs[static_cast<size_t>(I)], Reg{0});
    T.storeG(Gs[static_cast<size_t>(I)], Reg{0});
    T.halt();
  }
  return PB.build();
}

TEST(SleepSets, ActuallyReduceOnIndependentWork) {
  // Sleep sets should collapse the factorial blowup dramatically.
  Program Prog = disjointProgram(3);
  Interp VM(Prog);
  DfsSearch Plain(DfsSearch::Options{});
  DfsSearch::Options PorOpts;
  PorOpts.UseSleepSets = true;
  DfsSearch Por(PorOpts);
  SearchResult A = Plain.run(VM);
  SearchResult B = Por.run(VM);
  ASSERT_TRUE(A.Stats.Completed);
  ASSERT_TRUE(B.Stats.Completed);
  // 6 independent steps over 3 threads: 6!/(2!2!2!) = 90 interleavings,
  // all equivalent; sleep sets keep exactly one.
  EXPECT_EQ(A.Stats.Executions, 90u);
  EXPECT_EQ(B.Stats.Executions, 1u);
  EXPECT_FALSE(A.foundBug());
  EXPECT_FALSE(B.foundBug());
}

TEST(IcbSleepSets, ReduceOnIndependentWork) {
  // Bounded POR composed with ICB: within each preemption bound, later
  // same-budget siblings sleep earlier ones, so commuting interleavings
  // of independent steps collapse. The full 90-interleaving space of the
  // 3-thread disjoint program must shrink substantially while the search
  // still completes (covers every bound).
  Program Prog = disjointProgram(3);

  SearchOptions Plain;
  Plain.Kind = StrategyKind::Icb;
  SearchResult A = checkProgram(Prog, Plain);
  ASSERT_TRUE(A.Stats.Completed);

  SearchOptions Por = Plain;
  Por.UseSleepSets = true;
  SearchResult B = checkProgram(Prog, Por);
  ASSERT_TRUE(B.Stats.Completed);

  EXPECT_EQ(A.Stats.Executions, 90u);
  EXPECT_LE(B.Stats.Executions * 2, A.Stats.Executions)
      << "bounded POR should prune at least half the interleavings";
  EXPECT_FALSE(A.foundBug());
  EXPECT_FALSE(B.foundBug());
}

//===----------------------------------------------------------------------===//
// Bound policies
//===----------------------------------------------------------------------===//

TEST(BoundPolicy, ParseSpecAcceptsTheGrammar) {
  struct Case {
    const char *Text;
    const char *Name;
    unsigned Bound;
    unsigned VarBound;
  };
  const Case Good[] = {
      {"preemption:2", "preemption", 2, 0},
      {"preemption:0", "preemption", 0, 0},
      {"delay:7", "delay", 7, 0},
      {"thread:3", "thread", 3, 0},
      {"thread:2,variable:5", "thread", 2, 5},
      // A bare family name keeps the default K.
      {"delay", "delay", 4, 0},
  };
  for (const Case &C : Good) {
    SCOPED_TRACE(C.Text);
    BoundSpec Spec;
    std::string Error;
    ASSERT_TRUE(parseBoundSpec(C.Text, Spec, &Error)) << Error;
    EXPECT_EQ(Spec.Name, C.Name);
    EXPECT_EQ(Spec.Bound, C.Bound);
    EXPECT_EQ(Spec.VarBound, C.VarBound);
  }
}

TEST(BoundPolicy, ParseSpecRejectsMalformedText) {
  const char *Bad[] = {
      "",                      // empty
      "bogus:3",               // unknown family
      "preemption:",           // missing value
      "preemption:x",          // non-numeric value
      "preemption:-1",         // negative
      "preemption:2097152",    // over the 2^20 cap
      "delay:3,variable:2",    // variable on a non-thread policy
      "thread:2,bogus:1",      // unknown second component
      "thread:2,variable",     // component without a value
      "thread:2,variable:",    // empty component value
      "thread:2,variable:0",   // meaningless zero cap
  };
  for (const char *Text : Bad) {
    SCOPED_TRACE(Text);
    BoundSpec Spec;
    std::string Error;
    EXPECT_FALSE(parseBoundSpec(Text, Spec, &Error));
    EXPECT_FALSE(Error.empty());
  }
}

TEST(BoundPolicy, SpecFormatRoundTrips) {
  for (const char *Text :
       {"preemption:4", "delay:2", "thread:3", "thread:2,variable:5"}) {
    SCOPED_TRACE(Text);
    BoundSpec Spec;
    ASSERT_TRUE(parseBoundSpec(Text, Spec, nullptr));
    EXPECT_EQ(formatBoundSpec(Spec), Text);
    EXPECT_EQ(makeBoundPolicy(Spec)->spec(), Text);
  }
}

TEST(BoundPolicy, PreemptionChargesOnlyPreemptions) {
  PreemptionBoundPolicy P(3);
  EXPECT_EQ(P.frontierBound(), 3u);
  BoundState Out;
  EXPECT_EQ(P.chargeFor({DecisionKind::FreeSwitch, 0, 0}, {}, Out),
            ChargeOutcome::SameBound);
  EXPECT_EQ(P.chargeFor({DecisionKind::Preemption, 1, 0}, {}, Out),
            ChargeOutcome::NextBound);
  // No carried state: the successor budget stays empty (hash 0), so item
  // digests match the pre-seam engine byte for byte.
  EXPECT_TRUE(Out.empty());
  EXPECT_EQ(Out.hash(), 0u);
}

TEST(BoundPolicy, DelayChargesEveryDeviation) {
  DelayBoundPolicy P(5);
  BoundState Out;
  EXPECT_EQ(P.chargeFor({DecisionKind::FreeSwitch, 0, 0}, {}, Out),
            ChargeOutcome::NextBound);
  EXPECT_EQ(P.chargeFor({DecisionKind::Preemption, 2, 0}, {}, Out),
            ChargeOutcome::NextBound);
  EXPECT_TRUE(Out.empty());
}

TEST(BoundPolicy, ThreadVariableBudgetsDistinctResources) {
  ThreadVariableBoundPolicy P(/*MaxThreads=*/2, /*VarBound=*/2);
  BoundState S;
  BoundState Out;
  // First preemption of thread 1 consumes a thread-budget unit...
  ASSERT_EQ(P.chargeFor({DecisionKind::Preemption, 1, 10}, S, Out),
            ChargeOutcome::NextBound);
  S = Out;
  EXPECT_EQ(S.Threads, (std::vector<uint32_t>{1}));
  EXPECT_EQ(S.Vars, (std::vector<uint64_t>{10}));
  // ...but preempting the same thread again is free, whatever the order
  // of budget checks.
  EXPECT_EQ(P.chargeFor({DecisionKind::Preemption, 1, 10}, S, Out),
            ChargeOutcome::SameBound);
  // A second thread and a second variable still fit.
  ASSERT_EQ(P.chargeFor({DecisionKind::Preemption, 2, 11}, S, Out),
            ChargeOutcome::NextBound);
  S = Out;
  // A third distinct variable breaches the variable cap: prune outright.
  EXPECT_EQ(P.chargeFor({DecisionKind::Preemption, 1, 12}, S, Out),
            ChargeOutcome::Prune);
  // Free switches never touch either budget.
  EXPECT_EQ(P.chargeFor({DecisionKind::FreeSwitch, 0, 99}, S, Out),
            ChargeOutcome::SameBound);
  EXPECT_EQ(Out, S);
}

TEST(BoundPolicy, BoundStateHashContract) {
  BoundState Empty;
  EXPECT_EQ(Empty.hash(), 0u);
  BoundState A;
  A.Threads = {1, 2};
  BoundState B;
  B.Threads = {1, 2};
  EXPECT_NE(A.hash(), 0u);
  EXPECT_EQ(A.hash(), B.hash());
  // The separator keeps thread and variable sets from aliasing.
  BoundState C;
  C.Vars = {1, 2};
  EXPECT_NE(A.hash(), C.hash());
  B.Threads = {1, 3};
  EXPECT_NE(A.hash(), B.hash());
}

TEST(BoundPolicy, ConservativeWakeFollowsBudgetAndPreemption) {
  PreemptionBoundPolicy P(4);
  Decision Free{DecisionKind::FreeSwitch, 0, 0};
  Decision Preempt{DecisionKind::Preemption, 1, 0};
  // Same-budget free switches keep the sleep sets; everything else wakes.
  EXPECT_FALSE(P.conservativeWake(Free, ChargeOutcome::SameBound));
  EXPECT_TRUE(P.conservativeWake(Free, ChargeOutcome::NextBound));
  EXPECT_TRUE(P.conservativeWake(Preempt, ChargeOutcome::SameBound));
  EXPECT_TRUE(P.conservativeWake(Preempt, ChargeOutcome::NextBound));
}

TEST(BoundPolicy, ExplicitPreemptionPolicyMatchesDefault) {
  // The seam's byte-compat claim in miniature: an explicit preemption
  // policy must reproduce the default engine's results exactly.
  Program Prog = testutil::racyCounter(2);
  SearchResult Default = runIcb(Prog, /*Cache=*/false, /*MaxBound=*/3);

  PreemptionBoundPolicy Policy(3);
  SearchOptions Opts;
  Opts.Kind = StrategyKind::Icb;
  Opts.Limits.MaxPreemptionBound = 3;
  Opts.Policy = &Policy;
  SearchResult Explicit = checkProgram(Prog, Opts);

  EXPECT_EQ(Default.Stats.Executions, Explicit.Stats.Executions);
  EXPECT_EQ(Default.Stats.TotalSteps, Explicit.Stats.TotalSteps);
  EXPECT_EQ(Default.Stats.DistinctStates, Explicit.Stats.DistinctStates);
  ASSERT_EQ(Default.Bugs.size(), Explicit.Bugs.size());
  for (size_t I = 0; I != Default.Bugs.size(); ++I) {
    EXPECT_EQ(Default.Bugs[I].Message, Explicit.Bugs[I].Message);
    EXPECT_EQ(Default.Bugs[I].Preemptions, Explicit.Bugs[I].Preemptions);
    EXPECT_EQ(Default.Bugs[I].Schedule, Explicit.Bugs[I].Schedule);
  }
}

SearchResult runWithPolicy(const Program &Prog, const BoundPolicy &Policy) {
  SearchOptions Opts;
  Opts.Kind = StrategyKind::Icb;
  Opts.Limits.MaxPreemptionBound = Policy.frontierBound();
  Opts.Policy = &Policy;
  return checkProgram(Prog, Opts);
}

TEST(BoundPolicy, DelayBoundingFindsTheLadderBug) {
  // The ladder bug needs one preemption; under delay bounding that same
  // schedule costs a handful of delays (every deviation is charged), so a
  // generous delay budget must still expose it.
  DelayBoundPolicy Policy(8);
  SearchResult R = runWithPolicy(testutil::preemptionLadder(1), Policy);
  ASSERT_TRUE(R.foundBug());
  EXPECT_EQ(R.Bugs[0].Kind, BugKind::AssertFailure);
}

TEST(BoundPolicy, ThreadBoundingFindsTheLadderBug) {
  // One preemption of one thread: a thread budget of 1 is enough, and the
  // executor-measured preemption count on the bug must stay exact even
  // though the policy's bound indices now count budgeted threads.
  ThreadVariableBoundPolicy Policy(/*MaxThreads=*/1, /*VarBound=*/0);
  SearchResult R = runWithPolicy(testutil::preemptionLadder(1), Policy);
  ASSERT_TRUE(R.foundBug());
  EXPECT_EQ(R.Bugs[0].Preemptions, 1u);
}

TEST(BoundPolicy, DelayBoundZeroExploresOnlyTheDefaultSchedule) {
  // With zero delays the search runs exactly one execution: the default
  // continuation at every scheduling point.
  DelayBoundPolicy Policy(0);
  SearchResult R = runWithPolicy(testutil::racyCounter(2), Policy);
  EXPECT_EQ(R.Stats.Executions, 1u);
  EXPECT_FALSE(R.foundBug());
}

} // namespace
