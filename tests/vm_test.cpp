//===- tests/vm_test.cpp - Model VM unit tests -----------------------------===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//

#include "testutil/TestPrograms.h"
#include "vm/Builder.h"
#include "vm/Disassembler.h"
#include "vm/Interp.h"
#include <gtest/gtest.h>

using namespace icb;
using namespace icb::vm;

namespace {

TEST(ProgramBuilder, BuildsValidProgram) {
  Program Prog = testutil::racyCounter(2);
  EXPECT_EQ(Prog.validate(), "");
  EXPECT_EQ(Prog.numThreads(), 3u);
  EXPECT_EQ(Prog.Globals.size(), 1u);
  EXPECT_GT(Prog.totalInstructions(), 0u);
}

TEST(ProgramBuilder, InternsAssertMessages) {
  ProgramBuilder PB("msg-intern");
  ThreadBuilder &T = PB.addThread("t");
  T.imm(Reg{0}, 1);
  T.assertTrue(Reg{0}, "same message");
  T.assertTrue(Reg{0}, "same message");
  T.assertTrue(Reg{0}, "different message");
  T.halt();
  Program Prog = PB.build();
  EXPECT_EQ(Prog.Messages.size(), 2u);
}

TEST(ProgramValidate, RejectsMissingHalt) {
  Program Prog;
  Prog.Name = "no-halt";
  Prog.Threads.push_back({"t", {Instruction{Op::Nop, 0, 0, 0, 0, 0}}});
  EXPECT_NE(Prog.validate(), "");
}

TEST(ProgramValidate, RejectsBadRegister) {
  Program Prog;
  Prog.Name = "bad-reg";
  Prog.Threads.push_back(
      {"t",
       {Instruction{Op::Imm, 99, 0, 0, 0, 0},
        Instruction{Op::Halt, 0, 0, 0, 0, 0}}});
  EXPECT_NE(Prog.validate(), "");
}

TEST(ProgramValidate, RejectsBadGlobalIndex) {
  Program Prog;
  Prog.Name = "bad-global";
  Prog.Threads.push_back(
      {"t",
       {Instruction{Op::LoadG, 0, 5, 0, 0, 0},
        Instruction{Op::Halt, 0, 0, 0, 0, 0}}});
  EXPECT_NE(Prog.validate(), "");
}

TEST(ProgramValidate, RejectsBadBranchTarget) {
  Program Prog;
  Prog.Name = "bad-branch";
  Prog.Threads.push_back(
      {"t",
       {Instruction{Op::Jmp, 17, 0, 0, 0, 0},
        Instruction{Op::Halt, 0, 0, 0, 0, 0}}});
  EXPECT_NE(Prog.validate(), "");
}

TEST(Interp, InitialStateParksThreadsAtSharedAccess) {
  Program Prog = testutil::racyCounter(2);
  Interp VM(Prog);
  State S = VM.initialState();
  // Workers are parked at their first LoadG; main at its first Join.
  for (ThreadId Tid = 0; Tid != S.Threads.size(); ++Tid)
    EXPECT_EQ(S.Threads[Tid].Status, ThreadStatus::Runnable);
  // Main (thread 0) waits on worker joins and is disabled initially.
  EXPECT_FALSE(VM.isEnabled(S, 0));
  EXPECT_TRUE(VM.isEnabled(S, 1));
  EXPECT_TRUE(VM.isEnabled(S, 2));
}

TEST(Interp, StepExecutesOneSharedAccess) {
  Program Prog = testutil::racyCounter(1);
  Interp VM(Prog);
  State S = VM.initialState();
  // Worker (thread 1): LoadG then StoreG.
  StepResult R1 = VM.step(S, 1);
  EXPECT_EQ(R1.Status, StepStatus::Ok);
  EXPECT_EQ(R1.Var.Kind, VarKind::Global);
  StepResult R2 = VM.step(S, 1);
  EXPECT_EQ(R2.Status, StepStatus::ThreadDone);
  EXPECT_EQ(S.Globals[0], 1);
  EXPECT_EQ(S.Threads[1].Status, ThreadStatus::Done);
}

TEST(Interp, JoinBlocksUntilTargetDone) {
  Program Prog = testutil::racyCounter(1);
  Interp VM(Prog);
  State S = VM.initialState();
  EXPECT_FALSE(VM.isEnabled(S, 0));
  VM.step(S, 1);
  VM.step(S, 1); // Worker halts.
  EXPECT_TRUE(VM.isEnabled(S, 0));
  StepResult R = VM.step(S, 0); // Join executes; then load+assert succeed.
  EXPECT_TRUE(R.WasBlockingOp);
}

TEST(Interp, AssertFailureSurfacesMessage) {
  Program Prog = testutil::racyCounter(2);
  Interp VM(Prog);
  State S = VM.initialState();
  // Force the lost update: w1 loads, w2 runs fully, w1 stores stale value.
  VM.step(S, 1);                       // w1: load 0.
  VM.step(S, 2);                       // w2: load 0.
  EXPECT_EQ(VM.step(S, 2).Status, StepStatus::ThreadDone); // w2: store 1.
  EXPECT_EQ(VM.step(S, 1).Status, StepStatus::ThreadDone); // w1: store 1.
  EXPECT_EQ(S.Globals[0], 1);
  VM.step(S, 0);                       // main: join w1.
  VM.step(S, 0);                       // main: join w2.
  StepResult R = VM.step(S, 0);        // main: load counter, assert.
  // The final shared access is the counter load; the assert fails in the
  // local run-on.
  EXPECT_EQ(R.Status, StepStatus::AssertFailed);
  EXPECT_EQ(Prog.Messages[R.MsgId],
            "lost update: counter != number of workers");
}

TEST(Interp, LockEnabledness) {
  Program Prog = testutil::lockOrderDeadlock();
  Interp VM(Prog);
  State S = VM.initialState();
  EXPECT_TRUE(VM.isEnabled(S, 0));
  EXPECT_TRUE(VM.isEnabled(S, 1));
  VM.step(S, 0); // t1: lock A; parks at lock B.
  VM.step(S, 1); // t2: lock B; parks at lock A.
  EXPECT_FALSE(VM.isEnabled(S, 0));
  EXPECT_FALSE(VM.isEnabled(S, 1));
  EXPECT_TRUE(VM.enabledThreads(S).empty());
  EXPECT_FALSE(S.allDone()); // Deadlock, not termination.
}

TEST(Interp, UnlockNotHeldIsModelError) {
  ProgramBuilder PB("bad-unlock");
  LockVar A = PB.addLock("A");
  ThreadBuilder &T = PB.addThread("t");
  T.unlock(A);
  T.halt();
  Program Prog = PB.build();
  Interp VM(Prog);
  State S = VM.initialState();
  StepResult R = VM.step(S, 0);
  EXPECT_EQ(R.Status, StepStatus::ModelError);
  EXPECT_NE(R.ModelErrorText.find("unlock"), std::string::npos);
}

TEST(Interp, AutoResetEventIsConsumed) {
  ProgramBuilder PB("auto-reset");
  EventVar E = PB.addEvent("e", /*ManualReset=*/false, /*InitiallySet=*/true);
  ThreadBuilder &T1 = PB.addThread("t1");
  T1.waitE(E);
  T1.halt();
  ThreadBuilder &T2 = PB.addThread("t2");
  T2.waitE(E);
  T2.halt();
  Program Prog = PB.build();
  Interp VM(Prog);
  State S = VM.initialState();
  EXPECT_TRUE(VM.isEnabled(S, 0));
  EXPECT_TRUE(VM.isEnabled(S, 1));
  VM.step(S, 0); // Consumes the event.
  EXPECT_FALSE(VM.isEnabled(S, 1));
}

TEST(Interp, ManualResetEventStaysSet) {
  ProgramBuilder PB("manual-reset");
  EventVar E = PB.addEvent("e", /*ManualReset=*/true, /*InitiallySet=*/true);
  ThreadBuilder &T1 = PB.addThread("t1");
  T1.waitE(E);
  T1.halt();
  ThreadBuilder &T2 = PB.addThread("t2");
  T2.waitE(E);
  T2.halt();
  Program Prog = PB.build();
  Interp VM(Prog);
  State S = VM.initialState();
  VM.step(S, 0);
  EXPECT_TRUE(VM.isEnabled(S, 1));
}

TEST(Interp, SemaphoreCounts) {
  Program Prog = testutil::semaphoreBuffer(1, 2);
  Interp VM(Prog);
  State S = VM.initialState();
  // Producer can P(empty); consumer cannot P(full) yet.
  EXPECT_TRUE(VM.isEnabled(S, 0));
  EXPECT_FALSE(VM.isEnabled(S, 1));
  VM.step(S, 0); // P(empty): empty 1 -> 0.
  VM.step(S, 0); // V(full):  full 0 -> 1.
  EXPECT_TRUE(VM.isEnabled(S, 1));
  // Producer's next P(empty) blocks until the consumer V(empty)s.
  EXPECT_FALSE(VM.isEnabled(S, 0));
}

TEST(Interp, CasSemantics) {
  ProgramBuilder PB("cas");
  GlobalVar G = PB.addGlobal("g", 7);
  ThreadBuilder &T = PB.addThread("t");
  T.imm(Reg{1}, 7);   // expected
  T.imm(Reg{2}, 42);  // replacement
  T.casG(Reg{0}, G, Reg{1}, Reg{2});
  T.assertTrue(Reg{0}, "first cas must succeed");
  T.casG(Reg{3}, G, Reg{1}, Reg{2});
  T.logicalNot(Reg{3}, Reg{3});
  T.assertTrue(Reg{3}, "second cas must fail");
  T.halt();
  Program Prog = PB.build();
  Interp VM(Prog);
  State S = VM.initialState();
  VM.step(S, 0);
  StepResult R = VM.step(S, 0);
  EXPECT_EQ(R.Status, StepStatus::ThreadDone);
  EXPECT_EQ(S.Globals[0], 42);
}

TEST(Interp, XchgSemantics) {
  ProgramBuilder PB("xchg");
  GlobalVar G = PB.addGlobal("g", 5);
  ThreadBuilder &T = PB.addThread("t");
  T.imm(Reg{1}, 9);
  T.xchgG(Reg{0}, G, Reg{1});
  T.imm(Reg{2}, 5);
  T.eq(Reg{0}, Reg{0}, Reg{2});
  T.assertTrue(Reg{0}, "xchg must return the old value");
  T.halt();
  Program Prog = PB.build();
  Interp VM(Prog);
  State S = VM.initialState();
  StepResult R = VM.step(S, 0);
  EXPECT_EQ(R.Status, StepStatus::ThreadDone);
  EXPECT_EQ(S.Globals[0], 9);
}

TEST(Interp, RunawayLocalLoopIsModelError) {
  Program Prog;
  Prog.Name = "runaway";
  // A thread that spins forever in local code: jmp to itself.
  Prog.Threads.push_back(
      {"t",
       {Instruction{Op::LoadG, 0, 0, 0, 0, 0},
        Instruction{Op::Jmp, 1, 0, 0, 0, 0},
        Instruction{Op::Halt, 0, 0, 0, 0, 0}}});
  Prog.Globals.push_back({"g", 0});
  ASSERT_EQ(Prog.validate(), "");
  Interp VM(Prog);
  State S = VM.initialState();
  StepResult R = VM.step(S, 0);
  EXPECT_EQ(R.Status, StepStatus::ModelError);
  EXPECT_NE(R.ModelErrorText.find("runaway"), std::string::npos);
}

TEST(State, HashDistinguishesDifferentStates) {
  Program Prog = testutil::racyCounter(2);
  Interp VM(Prog);
  State S1 = VM.initialState();
  State S2 = S1;
  EXPECT_EQ(S1.hash(), S2.hash());
  EXPECT_TRUE(S1 == S2);
  VM.step(S2, 1);
  EXPECT_NE(S1.hash(), S2.hash());
  EXPECT_FALSE(S1 == S2);
}

TEST(State, HashCanonicalizesDeadRegisters) {
  // Two different interleavings that leave identical shared state and
  // terminated threads must hash identically even though the workers'
  // registers held different intermediate values along the way.
  Program Prog = testutil::atomicCounter(2);
  Interp VM(Prog);
  State A = VM.initialState();
  State B = VM.initialState();
  // Order 1-2 vs 2-1; atomic adds commute (each worker is one step).
  VM.step(A, 1);
  VM.step(A, 2);
  VM.step(B, 2);
  VM.step(B, 1);
  EXPECT_EQ(A.hash(), B.hash());
}

TEST(Disassembler, RendersProgram) {
  Program Prog = testutil::lockOrderDeadlock();
  std::string Text = disassembleProgram(Prog);
  EXPECT_NE(Text.find("lock A"), std::string::npos);
  EXPECT_NE(Text.find("unlock B"), std::string::npos);
  EXPECT_NE(Text.find("thread 0 't1'"), std::string::npos);
}

TEST(Disassembler, RendersAssertsAndBranches) {
  Program Prog = testutil::eventPingPong(2);
  std::string Text = disassembleThread(Prog, 0);
  EXPECT_NE(Text.find("waite ping"), std::string::npos);
  EXPECT_NE(Text.find("sete pong"), std::string::npos);
  EXPECT_NE(Text.find("jmp @"), std::string::npos);
}

} // namespace
