//===- tests/property_test.cpp - Cross-engine property sweeps --------------===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Property-style sweeps across programs and parameters:
///
///   * **Histogram equivalence** — uncached ICB and uncached DFS both
///     enumerate every execution of a terminating program exactly once,
///     so their executions-per-preemption-count histograms must be
///     identical. This cross-validates Algorithm 1's work-queue structure
///     against an independently implemented search, on both engines (the
///     model VM and the stateless runtime).
///   * **Order invariance** — ICB's per-bound execution counts equal the
///     DFS histogram prefix sums, i.e. ICB really enumerates in
///     nondecreasing preemption order.
///   * **Coverage equivalence** — exhaustive searches agree on distinct
///     state counts regardless of strategy.
///
//===----------------------------------------------------------------------===//

#include "benchmarks/Ape.h"
#include "benchmarks/Bluetooth.h"
#include "benchmarks/TxnManagerModel.h"
#include "benchmarks/WorkStealingQueue.h"
#include "rt/Explore.h"
#include "search/Checker.h"
#include "testutil/TestPrograms.h"
#include <gtest/gtest.h>

using namespace icb;

namespace {

//===----------------------------------------------------------------------===//
// VM engine: ICB vs DFS histograms
//===----------------------------------------------------------------------===//

struct VmProgramCase {
  std::string Name;
  std::function<vm::Program()> Make;
};

std::vector<VmProgramCase> vmPrograms() {
  return {
      {"racy_counter_2", [] { return testutil::racyCounter(2); }},
      {"racy_counter_3", [] { return testutil::racyCounter(3); }},
      {"atomic_counter_3", [] { return testutil::atomicCounter(3); }},
      {"ping_pong_2", [] { return testutil::eventPingPong(2); }},
      {"sem_buffer_2_2", [] { return testutil::semaphoreBuffer(2, 2); }},
      {"lock_deadlock", [] { return testutil::lockOrderDeadlock(); }},
      {"ladder_3", [] { return testutil::preemptionLadder(3); }},
      {"txnmgr_1round",
       [] { return bench::txnManagerModel({1, bench::TxnBug::None}); }},
  };
}

std::string vmCaseName(const ::testing::TestParamInfo<VmProgramCase> &Info) {
  return Info.param.Name;
}

class VmHistogramTest : public ::testing::TestWithParam<VmProgramCase> {};

TEST_P(VmHistogramTest, IcbAndDfsEnumerateTheSameExecutionMultiset) {
  vm::Program Prog = GetParam().Make();

  search::SearchOptions DfsOpts;
  DfsOpts.Kind = search::StrategyKind::Dfs;
  DfsOpts.Limits.MaxExecutions = 500000;
  search::SearchResult Dfs = search::checkProgram(Prog, DfsOpts);
  ASSERT_TRUE(Dfs.Stats.Completed) << "program too large for this sweep";

  search::SearchOptions IcbOpts;
  IcbOpts.Kind = search::StrategyKind::Icb;
  IcbOpts.Limits.MaxExecutions = 500000;
  search::SearchResult Icb = search::checkProgram(Prog, IcbOpts);
  ASSERT_TRUE(Icb.Stats.Completed);

  // Same number of executions, same per-preemption distribution, same
  // total steps, same distinct states.
  EXPECT_EQ(Dfs.Stats.Executions, Icb.Stats.Executions);
  EXPECT_EQ(Dfs.Stats.TotalSteps, Icb.Stats.TotalSteps);
  EXPECT_EQ(Dfs.Stats.DistinctStates, Icb.Stats.DistinctStates);
  size_t Buckets = std::max(Dfs.Stats.PreemptionHistogram.size(),
                            Icb.Stats.PreemptionHistogram.size());
  for (size_t C = 0; C != Buckets; ++C)
    EXPECT_EQ(Dfs.Stats.PreemptionHistogram.at(C),
              Icb.Stats.PreemptionHistogram.at(C))
        << "preemption count " << C;

  // ICB's per-bound cumulative executions are the histogram prefix sums:
  // the enumeration really is ordered by preemptions.
  uint64_t Cumulative = 0;
  for (const search::BoundCoverage &B : Icb.Stats.PerBound) {
    Cumulative += Dfs.Stats.PreemptionHistogram.at(B.Bound);
    EXPECT_EQ(B.Executions, Cumulative) << "bound " << B.Bound;
  }

  // And the same bugs (if any), with ICB's exposure minimal.
  ASSERT_EQ(Dfs.Bugs.size(), Icb.Bugs.size());
  for (const search::Bug &IcbBug : Icb.Bugs) {
    bool Matched = false;
    for (const search::Bug &DfsBug : Dfs.Bugs)
      if (DfsBug.Message == IcbBug.Message) {
        Matched = true;
        EXPECT_GE(DfsBug.Preemptions, IcbBug.Preemptions);
      }
    EXPECT_TRUE(Matched) << IcbBug.Message;
  }
}

INSTANTIATE_TEST_SUITE_P(VmPrograms, VmHistogramTest,
                         ::testing::ValuesIn(vmPrograms()), vmCaseName);

//===----------------------------------------------------------------------===//
// Runtime engine: ICB vs DFS histograms
//===----------------------------------------------------------------------===//

struct RtProgramCase {
  std::string Name;
  std::function<rt::TestCase()> Make;
};

std::vector<RtProgramCase> rtPrograms() {
  return {
      {"bluetooth_1w_fixed",
       [] { return bench::bluetoothTest({1, false}); }},
      {"bluetooth_1w_bug", [] { return bench::bluetoothTest({1, true}); }},
      {"wsq_1item",
       [] { return bench::workStealingTest({1, 2, bench::WsqBug::None}); }},
      {"ape_1w_1i",
       [] { return bench::apeTest({1, 1, bench::ApeBug::None}); }},
  };
}

std::string rtCaseName(const ::testing::TestParamInfo<RtProgramCase> &Info) {
  return Info.param.Name;
}

class RtHistogramTest : public ::testing::TestWithParam<RtProgramCase> {};

TEST_P(RtHistogramTest, IcbAndDfsEnumerateTheSameExecutionMultiset) {
  rt::ExploreOptions Opts;
  Opts.Limits.MaxExecutions = 500000;

  rt::DfsExplorer Dfs(Opts);
  rt::ExploreResult DfsR = Dfs.explore(GetParam().Make());
  ASSERT_TRUE(DfsR.Stats.Completed) << "program too large for this sweep";

  rt::IcbExplorer Icb(Opts);
  rt::ExploreResult IcbR = Icb.explore(GetParam().Make());
  ASSERT_TRUE(IcbR.Stats.Completed);

  EXPECT_EQ(DfsR.Stats.Executions, IcbR.Stats.Executions);
  EXPECT_EQ(DfsR.Stats.TotalSteps, IcbR.Stats.TotalSteps);
  EXPECT_EQ(DfsR.Stats.DistinctStates, IcbR.Stats.DistinctStates);
  EXPECT_EQ(DfsR.Stats.DistinctTerminalStates,
            IcbR.Stats.DistinctTerminalStates);
  size_t Buckets = std::max(DfsR.Stats.PreemptionHistogram.size(),
                            IcbR.Stats.PreemptionHistogram.size());
  for (size_t C = 0; C != Buckets; ++C)
    EXPECT_EQ(DfsR.Stats.PreemptionHistogram.at(C),
              IcbR.Stats.PreemptionHistogram.at(C))
        << "preemption count " << C;

  uint64_t Cumulative = 0;
  for (const rt::BoundCoverage &B : IcbR.Stats.PerBound) {
    Cumulative += DfsR.Stats.PreemptionHistogram.at(B.Bound);
    EXPECT_EQ(B.Executions, Cumulative) << "bound " << B.Bound;
  }
}

INSTANTIATE_TEST_SUITE_P(RtPrograms, RtHistogramTest,
                         ::testing::ValuesIn(rtPrograms()), rtCaseName);

//===----------------------------------------------------------------------===//
// WSQ parameter sweep: the correct queue is clean at every size
//===----------------------------------------------------------------------===//

struct WsqParams {
  unsigned Items;
  unsigned Capacity;
};

class WsqSweepTest : public ::testing::TestWithParam<WsqParams> {};

TEST_P(WsqSweepTest, CorrectQueueCleanWithinBoundTwo) {
  rt::ExploreOptions Opts;
  Opts.Limits.MaxExecutions = 40000;
  Opts.Limits.StopAtFirstBug = true;
  Opts.Limits.MaxPreemptionBound = 2;
  rt::IcbExplorer Icb(Opts);
  rt::ExploreResult R = Icb.explore(bench::workStealingTest(
      {GetParam().Items, GetParam().Capacity, bench::WsqBug::None}));
  EXPECT_FALSE(R.foundBug()) << R.Bugs[0].str();
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, WsqSweepTest,
    ::testing::Values(WsqParams{1, 2}, WsqParams{2, 2}, WsqParams{2, 4},
                      WsqParams{3, 4}, WsqParams{4, 4}, WsqParams{4, 8}),
    [](const ::testing::TestParamInfo<WsqParams> &Info) {
      return "items" + std::to_string(Info.param.Items) + "_cap" +
             std::to_string(Info.param.Capacity);
    });

//===----------------------------------------------------------------------===//
// Ladder sweep: minimal preemption counts scale as constructed
//===----------------------------------------------------------------------===//

class LadderSweepTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(LadderSweepTest, MinimalBoundMatchesConstruction) {
  unsigned Needed = GetParam();
  search::SearchOptions Opts;
  Opts.Kind = search::StrategyKind::Icb;
  Opts.Limits.StopAtFirstBug = true;
  Opts.Limits.MaxPreemptionBound = Needed + 1;
  search::SearchResult R =
      search::checkProgram(testutil::preemptionLadder(Needed), Opts);
  ASSERT_TRUE(R.foundBug());
  EXPECT_EQ(R.simplestBug()->Preemptions, Needed);
}

INSTANTIATE_TEST_SUITE_P(Depths, LadderSweepTest,
                         ::testing::Values(1u, 3u, 5u),
                         [](const ::testing::TestParamInfo<unsigned> &Info) {
                           std::string Name("p");
                           Name += std::to_string(Info.param);
                           return Name;
                         });

} // namespace
