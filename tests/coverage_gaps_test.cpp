//===- tests/coverage_gaps_test.cpp - Remaining corner coverage ------------===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Precision tests for corners the module suites do not reach: arithmetic
/// and error paths of the VM interpreter, disassembler formats, scheduler
/// step-text collection, strategy naming, cache behaviour, and the
/// smaller support types.
///
//===----------------------------------------------------------------------===//

#include "rt/Atomic.h"
#include "rt/Explore.h"
#include "rt/Managed.h"
#include "rt/Scheduler.h"
#include "rt/Sync.h"
#include "rt/Thread.h"
#include "search/Checker.h"
#include "search/Dfs.h"
#include "search/StateCache.h"
#include "support/CommandLine.h"
#include "vm/Builder.h"
#include "vm/Disassembler.h"
#include "vm/Interp.h"
#include <gtest/gtest.h>

using namespace icb;
using namespace icb::vm;

namespace {

//===----------------------------------------------------------------------===//
// VM arithmetic and error paths
//===----------------------------------------------------------------------===//

/// Runs a single-thread program to completion and returns its final state.
State runToEnd(const Program &Prog) {
  Interp VM(Prog);
  State S = VM.initialState();
  while (!VM.enabledThreads(S).empty())
    VM.step(S, VM.enabledThreads(S).front());
  return S;
}

TEST(VmArithmetic, MulModAndComparisons) {
  ProgramBuilder PB("arith");
  GlobalVar Out = PB.addGlobal("out", 0);
  ThreadBuilder &T = PB.addThread("t");
  T.imm(Reg{1}, 7);
  T.imm(Reg{2}, 3);
  T.mul(Reg{3}, Reg{1}, Reg{2});  // 21
  T.mod(Reg{4}, Reg{3}, Reg{2});  // 0
  T.le(Reg{5}, Reg{2}, Reg{1});   // 1
  T.lt(Reg{6}, Reg{1}, Reg{2});   // 0
  T.ne(Reg{7}, Reg{1}, Reg{2});   // 1
  T.bitOr(Reg{8}, Reg{4}, Reg{5}); // 1
  T.bitAnd(Reg{9}, Reg{7}, Reg{8}); // 1
  T.sub(Reg{10}, Reg{3}, Reg{9});  // 20
  T.storeG(Out, Reg{10});
  T.halt();
  State S = runToEnd(PB.build());
  EXPECT_EQ(S.Globals[0], 20);
}

TEST(VmArithmetic, ModByZeroIsModelError) {
  ProgramBuilder PB("modzero");
  GlobalVar G = PB.addGlobal("g", 0);
  ThreadBuilder &T = PB.addThread("t");
  T.loadG(Reg{1}, G); // Shared access so the error occurs inside step().
  T.imm(Reg{2}, 0);
  T.mod(Reg{3}, Reg{1}, Reg{2});
  T.halt();
  Program Prog = PB.build();
  Interp VM(Prog);
  State S = VM.initialState();
  StepResult R = VM.step(S, 0);
  EXPECT_EQ(R.Status, StepStatus::ModelError);
  EXPECT_NE(R.ModelErrorText.find("mod by zero"), std::string::npos);
}

TEST(VmValidate, RejectsBadAssertMessageId) {
  Program Prog;
  Prog.Name = "bad-msg";
  Instruction Assert{Op::Assert, 0, 0, 0, 0, /*MsgId=*/5};
  Prog.Threads.push_back(
      {"t", {Assert, Instruction{Op::Halt, 0, 0, 0, 0, 0}}});
  EXPECT_NE(Prog.validate(), "");
}

TEST(VmValidate, RejectsBadJoinTarget) {
  Program Prog;
  Prog.Name = "bad-join";
  Prog.Threads.push_back(
      {"t",
       {Instruction{Op::Join, 7, 0, 0, 0, 0},
        Instruction{Op::Halt, 0, 0, 0, 0, 0}}});
  EXPECT_NE(Prog.validate(), "");
}

TEST(VmValidate, RejectsEmptyProgram) {
  Program Prog;
  Prog.Name = "empty";
  EXPECT_NE(Prog.validate(), "");
}

TEST(VmDisassembler, RendersAtomicsAndEvents) {
  ProgramBuilder PB("disasm");
  GlobalVar G = PB.addGlobal("g", 0);
  EventVar E = PB.addEvent("evt", /*ManualReset=*/true, /*InitiallySet=*/true);
  SemVar Sem = PB.addSemaphore("sem", 2);
  ThreadBuilder &T = PB.addThread("t");
  T.imm(Reg{1}, 1);
  T.casG(Reg{0}, G, Reg{1}, Reg{2});
  T.xchgG(Reg{3}, G, Reg{1});
  T.addG(Reg{4}, G, Reg{1});
  T.resetE(E);
  T.semV(Sem);
  T.halt();
  Program Prog = PB.build();
  std::string Text = disassembleProgram(Prog);
  EXPECT_NE(Text.find("casg r0, g, r1, r2"), std::string::npos);
  EXPECT_NE(Text.find("xchgg r3, g, r1"), std::string::npos);
  EXPECT_NE(Text.find("addg r4, g, r1"), std::string::npos);
  EXPECT_NE(Text.find("resete evt"), std::string::npos);
  EXPECT_NE(Text.find("semv sem"), std::string::npos);
  EXPECT_NE(Text.find("event evt manual-reset (initially set)"),
            std::string::npos);
  EXPECT_NE(Text.find("semaphore sem = 2"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Search odds and ends
//===----------------------------------------------------------------------===//

TEST(StrategyNames, AreStable) {
  using namespace icb::search;
  SearchOptions Opts;
  Opts.Kind = StrategyKind::Icb;
  EXPECT_EQ(makeStrategy(Opts)->name(), "icb");
  Opts.Kind = StrategyKind::Dfs;
  EXPECT_EQ(makeStrategy(Opts)->name(), "dfs");
  Opts.Kind = StrategyKind::DepthBoundedDfs;
  Opts.DepthBound = 17;
  EXPECT_EQ(makeStrategy(Opts)->name(), "db:17");
  Opts.Kind = StrategyKind::IterativeDfs;
  EXPECT_EQ(makeStrategy(Opts)->name(), "idfs-17");
  Opts.Kind = StrategyKind::Random;
  EXPECT_EQ(makeStrategy(Opts)->name(), "random");
}

TEST(StateCacheTest, InsertAndWorkItems) {
  using icb::search::StateCache;
  StateCache Cache;
  EXPECT_TRUE(Cache.insert(42));
  EXPECT_FALSE(Cache.insert(42));
  EXPECT_TRUE(Cache.contains(42));
  EXPECT_FALSE(Cache.contains(43));
  EXPECT_TRUE(Cache.insertWorkItem(42, 1));
  EXPECT_FALSE(Cache.insertWorkItem(42, 1));
  EXPECT_TRUE(Cache.insertWorkItem(42, 2)); // Different thread: new item.
  EXPECT_EQ(Cache.size(), 3u);
  Cache.clear();
  EXPECT_EQ(Cache.size(), 0u);
}

//===----------------------------------------------------------------------===//
// Runtime odds and ends
//===----------------------------------------------------------------------===//

TEST(RtStepText, CollectedWhenRequested) {
  using namespace icb::rt;
  Scheduler::Options Opts;
  Opts.CollectStepText = true;
  TestCase Test{"steptext", [] {
    Mutex M("protectMe");
    M.lock();
    M.unlock();
  }};
  Scheduler S(Opts);
  NonPreemptivePolicy Policy;
  ExecutionResult R = S.run(Test, Policy);
  ASSERT_EQ(R.Status, RunStatus::Terminated);
  ASSERT_EQ(R.StepText.size(), R.Steps);
  bool SawLock = false;
  for (const std::string &Text : R.StepText)
    SawLock |= Text == "lock protectMe";
  EXPECT_TRUE(SawLock);
  EXPECT_EQ(R.StepThreadNames.front(), "main");
}

TEST(RtTryLock, FailsWhenHeldByAnotherThread) {
  using namespace icb::rt;
  TestCase Test{"trylock-contended", [] {
    Mutex M("m");
    Event Locked("locked");
    Event Done("done");
    Thread Holder(
        [&] {
          M.lock();
          Locked.set();
          Done.wait();
          M.unlock();
        },
        "holder");
    Locked.wait();
    testAssert(!M.tryLock(), "tryLock must fail while held elsewhere");
    Done.set();
    Holder.join();
  }};
  Scheduler S{Scheduler::Options{}};
  NonPreemptivePolicy Policy;
  EXPECT_EQ(S.run(Test, Policy).Status, RunStatus::Terminated);
}

TEST(RtManaged, AliveReflectsDestroy) {
  using namespace icb::rt;
  TestCase Test{"alive", [] {
    ManagedPtr<int> P = makeManaged<int>("int", 7);
    testAssert(P.alive(), "fresh object is alive");
    testAssert(*P == 7, "value accessible");
    P.destroy();
    testAssert(!P.alive(), "destroyed object is dead");
  }};
  Scheduler S{Scheduler::Options{}};
  NonPreemptivePolicy Policy;
  EXPECT_EQ(S.run(Test, Policy).Status, RunStatus::Terminated);
}

TEST(RtEvents, ManualResetReleasesEveryWaiter) {
  using namespace icb::rt;
  rt::ExploreOptions Opts;
  Opts.Limits.MaxExecutions = 60000;
  Opts.Limits.StopAtFirstBug = true;
  Opts.Limits.MaxPreemptionBound = 2;
  TestCase Test{"manual-reset", [] {
    Event Gate("gate", /*ManualReset=*/true);
    Atomic<int> Through("through", 0);
    auto WaiterBody = [&] {
      Gate.wait();
      Through.fetchAdd(1);
    };
    Thread W1(WaiterBody, "w1");
    Thread W2(WaiterBody, "w2");
    Gate.set();
    W1.join();
    W2.join();
    testAssert(Through.load() == 2, "both waiters pass a manual gate");
  }};
  rt::IcbExplorer Icb(Opts);
  rt::ExploreResult R = Icb.explore(Test);
  EXPECT_FALSE(R.foundBug()) << R.Bugs[0].str();
}

//===----------------------------------------------------------------------===//
// Support odds and ends
//===----------------------------------------------------------------------===//

TEST(CommandLineUsage, MentionsEveryFlagAndDefault) {
  FlagSet Flags("desc line");
  Flags.addInt("num", 5, "a number");
  Flags.addBool("flag", true, "a flag");
  Flags.addString("name", "dflt", "a name");
  std::string Text = Flags.usage("prog");
  EXPECT_NE(Text.find("desc line"), std::string::npos);
  EXPECT_NE(Text.find("--num"), std::string::npos);
  EXPECT_NE(Text.find("default: 5"), std::string::npos);
  EXPECT_NE(Text.find("default: true"), std::string::npos);
  EXPECT_NE(Text.find("default: dflt"), std::string::npos);
}

TEST(CommandLineHelp, ReturnsUsageViaError) {
  FlagSet Flags("helpful");
  const char *Argv[] = {"prog", "--help"};
  std::string Error;
  EXPECT_FALSE(Flags.parse(2, Argv, &Error));
  EXPECT_NE(Error.find("usage:"), std::string::npos);
}

} // namespace
