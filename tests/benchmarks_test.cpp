//===- tests/benchmarks_test.cpp - Benchmark suite tests -------------------===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Validates the benchmark suite against the paper:
///   * every seeded bug is exposed by ICB at *exactly* the preemption
///     bound Table 2 reports for it (parameterized over the registry);
///   * no bug is exposed below that bound;
///   * the correct variants survive a bounded exhaustive search;
///   * benchmark-specific behaviours (Figure 3's trace shape, the race
///     report for Dryad's statistics, ...).
///
//===----------------------------------------------------------------------===//

#include "benchmarks/Ape.h"
#include "benchmarks/Bluetooth.h"
#include "benchmarks/BluetoothModel.h"
#include "benchmarks/DryadChannels.h"
#include "benchmarks/FileSystemModel.h"
#include "benchmarks/Registry.h"
#include "benchmarks/TxnManagerModel.h"
#include "benchmarks/WorkStealingQueue.h"
#include "rt/Explore.h"
#include "search/Checker.h"
#include <gtest/gtest.h>
#include <cctype>
#include <optional>

using namespace icb;
using namespace icb::bench;

namespace {

struct BugCase {
  std::string Benchmark;
  std::string Label;
  unsigned PaperBound;
  std::function<rt::TestCase()> MakeRt;
  std::function<vm::Program()> MakeVm;
};

std::vector<BugCase> allBugCases() {
  std::vector<BugCase> Cases;
  for (const BenchmarkEntry &E : allBenchmarks())
    for (const BugVariant &B : E.Bugs)
      Cases.push_back({E.Name, B.Label, B.PaperBound, B.MakeRt, B.MakeVm});
  return Cases;
}

std::string bugCaseName(const ::testing::TestParamInfo<BugCase> &Info) {
  std::string Name = Info.param.Benchmark + "_" + Info.param.Label;
  for (char &C : Name)
    if (!std::isalnum(static_cast<unsigned char>(C)))
      C = '_';
  return Name;
}

/// Finds the bug with ICB and returns its minimal preemption count, or
/// nullopt when no bug exists within the bound.
std::optional<unsigned> icbBugBound(const BugCase &Case, unsigned MaxBound,
                                    bool StopAtFirst = true) {
  if (Case.MakeRt) {
    rt::ExploreOptions Opts;
    Opts.Limits.MaxExecutions = 2000000;
    Opts.Limits.StopAtFirstBug = StopAtFirst;
    Opts.Limits.MaxPreemptionBound = MaxBound;
    rt::IcbExplorer Icb(Opts);
    rt::ExploreResult R = Icb.explore(Case.MakeRt());
    if (!R.foundBug())
      return std::nullopt;
    return R.simplestBug()->Preemptions;
  }
  search::SearchOptions Opts;
  Opts.Kind = search::StrategyKind::Icb;
  Opts.Limits.MaxExecutions = 2000000;
  Opts.Limits.StopAtFirstBug = StopAtFirst;
  Opts.Limits.MaxPreemptionBound = MaxBound;
  search::SearchResult R = search::checkProgram(Case.MakeVm(), Opts);
  if (!R.foundBug())
    return std::nullopt;
  return R.simplestBug()->Preemptions;
}

class BugBoundTest : public ::testing::TestWithParam<BugCase> {};

TEST_P(BugBoundTest, ExposedAtExactlyThePaperBound) {
  const BugCase &Case = GetParam();
  std::optional<unsigned> Bound = icbBugBound(Case, Case.PaperBound + 1);
  ASSERT_TRUE(Bound.has_value())
      << Case.Benchmark << "/" << Case.Label << ": bug not found";
  EXPECT_EQ(*Bound, Case.PaperBound)
      << Case.Benchmark << "/" << Case.Label;
}

TEST_P(BugBoundTest, NotExposedBelowThePaperBound) {
  const BugCase &Case = GetParam();
  if (Case.PaperBound == 0)
    GTEST_SKIP() << "bound-0 bugs have no lower bound to check";
  std::optional<unsigned> Bound =
      icbBugBound(Case, Case.PaperBound - 1, /*StopAtFirst=*/true);
  EXPECT_FALSE(Bound.has_value())
      << Case.Benchmark << "/" << Case.Label << ": found below paper bound";
}

INSTANTIATE_TEST_SUITE_P(AllTable2Bugs, BugBoundTest,
                         ::testing::ValuesIn(allBugCases()), bugCaseName);

//===----------------------------------------------------------------------===//
// Correct variants stay clean
//===----------------------------------------------------------------------===//

struct CleanCase {
  std::string Benchmark;
  std::function<rt::TestCase()> MakeRt;
  std::function<vm::Program()> MakeVm;
};

std::vector<CleanCase> allCleanCases() {
  std::vector<CleanCase> Cases;
  for (const BenchmarkEntry &E : allBenchmarks())
    Cases.push_back({E.Name, E.MakeDefaultRt, E.MakeDefaultVm});
  return Cases;
}

std::string cleanCaseName(const ::testing::TestParamInfo<CleanCase> &Info) {
  std::string Name = Info.param.Benchmark;
  for (char &C : Name)
    if (!std::isalnum(static_cast<unsigned char>(C)))
      C = '_';
  return Name;
}

class CleanBenchmarkTest : public ::testing::TestWithParam<CleanCase> {};

TEST_P(CleanBenchmarkTest, NoBugWithinBoundTwo) {
  const CleanCase &Case = GetParam();
  if (Case.MakeRt) {
    rt::ExploreOptions Opts;
    Opts.Limits.MaxExecutions = 30000;
    Opts.Limits.StopAtFirstBug = true;
    Opts.Limits.MaxPreemptionBound = 2;
    rt::IcbExplorer Icb(Opts);
    rt::ExploreResult R = Icb.explore(Case.MakeRt());
    EXPECT_FALSE(R.foundBug())
        << Case.Benchmark << ": " << R.Bugs[0].str();
    return;
  }
  search::SearchOptions Opts;
  Opts.Kind = search::StrategyKind::Icb;
  Opts.Limits.MaxExecutions = 30000;
  Opts.Limits.StopAtFirstBug = true;
  Opts.Limits.MaxPreemptionBound = 2;
  search::SearchResult R = search::checkProgram(Case.MakeVm(), Opts);
  EXPECT_FALSE(R.foundBug()) << Case.Benchmark << ": " << R.Bugs[0].str();
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, CleanBenchmarkTest,
                         ::testing::ValuesIn(allCleanCases()), cleanCaseName);

//===----------------------------------------------------------------------===//
// Registry shape
//===----------------------------------------------------------------------===//

TEST(Registry, MatchesThePaperStructure) {
  // Five Table 1 rows, five Table 2 rows, and Table 2's per-bound bug
  // distribution: 3 bugs at bound 0, 7 at 1, 5 at 2, 1 at 3. (The table's
  // rows sum to 16 even though the paper's text says "a total of 14 bugs"
  // — a known internal inconsistency of the paper; we reproduce the rows.)
  unsigned Table1Rows = 0, Table2Rows = 0, Bugs = 0;
  unsigned PerBound[4] = {0, 0, 0, 0};
  for (const BenchmarkEntry &E : allBenchmarks()) {
    Table1Rows += E.InTable1 ? 1 : 0;
    Table2Rows += E.InTable2 ? 1 : 0;
    for (const BugVariant &B : E.Bugs) {
      ++Bugs;
      ASSERT_LE(B.PaperBound, 3u);
      ++PerBound[B.PaperBound];
    }
  }
  EXPECT_EQ(Table1Rows, 5u);
  EXPECT_EQ(Table2Rows, 5u);
  EXPECT_EQ(Bugs, 16u);
  EXPECT_EQ(PerBound[0], 3u);
  EXPECT_EQ(PerBound[1], 7u);
  EXPECT_EQ(PerBound[2], 5u);
  EXPECT_EQ(PerBound[3], 1u);
}

TEST(Registry, FindByNameWorks) {
  EXPECT_NE(findBenchmark("Bluetooth"), nullptr);
  EXPECT_NE(findBenchmark("Dryad Channels"), nullptr);
  EXPECT_EQ(findBenchmark("No Such Benchmark"), nullptr);
}

//===----------------------------------------------------------------------===//
// Benchmark-specific behaviours
//===----------------------------------------------------------------------===//

TEST(Fig3Trace, HasOnePreemptionAndSeveralNonpreemptingSwitches) {
  // Section 4.2: "an error that requires only one preempting context
  // switch, but 6 nonpreempting context switches."
  const BenchmarkEntry *Dryad = findBenchmark("Dryad Channels");
  ASSERT_NE(Dryad, nullptr);
  const BugVariant *Fig3 = nullptr;
  for (const BugVariant &B : Dryad->Bugs)
    if (B.Label == "fig3-use-after-free")
      Fig3 = &B;
  ASSERT_NE(Fig3, nullptr);

  rt::ExploreOptions Opts;
  Opts.Limits.StopAtFirstBug = true;
  Opts.Limits.MaxPreemptionBound = 1;
  rt::IcbExplorer Icb(Opts);
  rt::ExploreResult R = Icb.explore(Fig3->MakeRt());
  ASSERT_TRUE(R.foundBug());
  const rt::RtBug &Bug = *R.simplestBug();
  EXPECT_EQ(Bug.Kind, search::BugKind::UseAfterFree);
  EXPECT_EQ(Bug.Preemptions, 1u);
  EXPECT_GE(Bug.ContextSwitches - Bug.Preemptions, 5u)
      << "the Figure 3 trace involves many nonpreempting switches";
}

TEST(WsqHarness, CorrectQueueNeverLosesOrDuplicates) {
  // Push counts other than the default, exhaustive within bound 2.
  for (unsigned Items : {1u, 2u, 4u}) {
    rt::ExploreOptions Opts;
    Opts.Limits.MaxExecutions = 60000;
    Opts.Limits.StopAtFirstBug = true;
    Opts.Limits.MaxPreemptionBound = 2;
    rt::IcbExplorer Icb(Opts);
    rt::ExploreResult R =
        Icb.explore(workStealingTest({Items, 8, WsqBug::None}));
    EXPECT_FALSE(R.foundBug()) << "items=" << Items << ": "
                               << R.Bugs[0].str();
  }
}

TEST(BluetoothHarness, FixedProtocolSurvivesDeepBounds) {
  rt::ExploreOptions Opts;
  Opts.Limits.MaxExecutions = 60000;
  Opts.Limits.StopAtFirstBug = true;
  Opts.Limits.MaxPreemptionBound = 3;
  rt::IcbExplorer Icb(Opts);
  rt::ExploreResult R = Icb.explore(bluetoothTest({2, false}));
  EXPECT_FALSE(R.foundBug()) << R.Bugs[0].str();
}

TEST(FileSystemHarness, CompletesExhaustivelyAtSmallScale) {
  rt::ExploreOptions Opts;
  Opts.Limits.MaxExecutions = 2000000;
  rt::DfsExplorer Dfs(Opts);
  rt::ExploreResult R = Dfs.explore(fileSystemTest({2, 2, 2}));
  EXPECT_FALSE(R.foundBug());
  EXPECT_TRUE(R.Stats.Completed);
  EXPECT_GT(R.Stats.DistinctStates, 0u);
}

TEST(TxnModel, ValidatesAndDisassembles) {
  for (TxnBug Bug : {TxnBug::None, TxnBug::CommitStomp,
                     TxnBug::ReapCollision, TxnBug::CommitUpsert}) {
    vm::Program Prog = txnManagerModel({2, Bug});
    EXPECT_EQ(Prog.validate(), "") << txnBugName(Bug);
    EXPECT_EQ(Prog.numThreads(), 2u);
  }
}

TEST(DryadStatsRace, ReportsARaceNotAnAssert) {
  rt::ExploreOptions Opts;
  Opts.Limits.StopAtFirstBug = true;
  Opts.Limits.MaxPreemptionBound = 0;
  rt::IcbExplorer Icb(Opts);
  rt::ExploreResult R = Icb.explore(dryadTest({3, 2, DryadBug::StatsRace}));
  ASSERT_TRUE(R.foundBug());
  EXPECT_EQ(R.Bugs[0].Kind, search::BugKind::DataRace);
  EXPECT_NE(R.Bugs[0].Message.find("itemsWritten"), std::string::npos);
}

TEST(ApeEagerTeardown, ReportsUseAfterFree) {
  rt::ExploreOptions Opts;
  Opts.Limits.StopAtFirstBug = true;
  Opts.Limits.MaxPreemptionBound = 0;
  rt::IcbExplorer Icb(Opts);
  rt::ExploreResult R = Icb.explore(apeTest({2, 2, ApeBug::EagerTeardown}));
  ASSERT_TRUE(R.foundBug());
  EXPECT_EQ(R.Bugs[0].Kind, search::BugKind::UseAfterFree);
}

} // namespace

namespace {

//===----------------------------------------------------------------------===//
// Cross-checker validation: the two engines agree on Bluetooth
//===----------------------------------------------------------------------===//

TEST(CrossChecker, BothEnginesExposeBluetoothAtBoundOne) {
  // Stateless runtime form.
  rt::ExploreOptions RtOpts;
  RtOpts.Limits.StopAtFirstBug = true;
  RtOpts.Limits.MaxPreemptionBound = 2;
  rt::IcbExplorer RtIcb(RtOpts);
  rt::ExploreResult RtR = RtIcb.explore(bluetoothTest({2, true}));
  ASSERT_TRUE(RtR.foundBug());
  EXPECT_EQ(RtR.simplestBug()->Preemptions, 1u);

  // Explicit-state model form.
  search::SearchOptions VmOpts;
  VmOpts.Kind = search::StrategyKind::Icb;
  VmOpts.Limits.StopAtFirstBug = true;
  VmOpts.Limits.MaxPreemptionBound = 2;
  search::SearchResult VmR =
      search::checkProgram(bluetoothModel(2, true), VmOpts);
  ASSERT_TRUE(VmR.foundBug());
  EXPECT_EQ(VmR.simplestBug()->Preemptions, 1u);
  EXPECT_NE(VmR.simplestBug()->Message.find("after stop"),
            std::string::npos);
}

TEST(CrossChecker, BothEnginesCertifyTheFixedProtocol) {
  rt::ExploreOptions RtOpts;
  RtOpts.Limits.MaxExecutions = 60000;
  RtOpts.Limits.StopAtFirstBug = true;
  RtOpts.Limits.MaxPreemptionBound = 2;
  rt::IcbExplorer RtIcb(RtOpts);
  rt::ExploreResult RtR = RtIcb.explore(bluetoothTest({2, false}));
  EXPECT_FALSE(RtR.foundBug()) << RtR.Bugs[0].str();

  search::SearchOptions VmOpts;
  VmOpts.Kind = search::StrategyKind::Icb;
  VmOpts.Limits.MaxExecutions = 60000;
  VmOpts.Limits.StopAtFirstBug = true;
  VmOpts.Limits.MaxPreemptionBound = 2;
  search::SearchResult VmR =
      search::checkProgram(bluetoothModel(2, false), VmOpts);
  EXPECT_FALSE(VmR.foundBug()) << VmR.Bugs[0].str();
}

TEST(CrossChecker, VmModelCompletesExhaustively) {
  // The explicit-state form with one worker is small enough to exhaust;
  // ICB with the state cache completes and certifies it bug-free.
  search::SearchOptions Opts;
  Opts.Kind = search::StrategyKind::Icb;
  Opts.UseStateCache = true;
  Opts.Limits.MaxExecutions = 2000000;
  search::SearchResult R =
      search::checkProgram(bluetoothModel(1, false), Opts);
  EXPECT_FALSE(R.foundBug());
  EXPECT_TRUE(R.Stats.Completed);
  EXPECT_GT(R.Stats.DistinctStates, 0u);
}

} // namespace
