//===- tests/session_test.cpp - Session subsystem tests -------------------===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The session subsystem end to end: the strict JSON layer (round-trips
/// and adversarial rejects), the manifest writer, checkpoint save/load,
/// interrupted-run resume determinism for both executors' sequential and
/// parallel drivers, `.icbrepro` round-trip + strict replay, and
/// delta-debugging schedule minimization. The resume tests are the
/// subsystem's acceptance criterion in miniature: a run cut short at an
/// arbitrary safe point and resumed from the serialized checkpoint must be
/// indistinguishable from an uninterrupted run.
///
//===----------------------------------------------------------------------===//

#include "benchmarks/WorkStealingQueue.h"
#include "benchmarks/WsqModel.h"
#include "rt/Explore.h"
#include "search/IcbSearch.h"
#include "search/ParallelIcb.h"
#include "session/Checkpoint.h"
#include "session/DirLock.h"
#include "session/Manifest.h"
#include "session/Minimize.h"
#include "session/Repro.h"
#include "testutil/ResultChecks.h"
#include "vm/Interp.h"
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <gtest/gtest.h>
#include <unistd.h>
#include <string>
#include <vector>

using namespace icb;
using namespace icb::bench;
using namespace icb::session;
using icb::testutil::expectIdenticalResults;

namespace {

//===----------------------------------------------------------------------===//
// JSON layer
//===----------------------------------------------------------------------===//

TEST(SessionJson, WriteParseRoundTrip) {
  JsonValue Doc = JsonValue::object();
  Doc.set("zero", JsonValue::number(0));
  Doc.set("max", JsonValue::number(UINT64_MAX));
  Doc.set("past_double", JsonValue::number((1ull << 53) + 1));
  Doc.set("yes", JsonValue::boolean(true));
  Doc.set("no", JsonValue::boolean(false));
  Doc.set("nil", JsonValue::null());
  Doc.set("text", JsonValue::str("quote \" backslash \\ tab \t ctrl \x01"));
  JsonValue Arr = JsonValue::array();
  Arr.Arr.push_back(JsonValue::number(7));
  JsonValue Inner = JsonValue::object();
  Inner.set("k", JsonValue::str(""));
  Arr.Arr.push_back(std::move(Inner));
  Doc.set("arr", std::move(Arr));

  std::string Text = jsonWrite(Doc);
  JsonValue Back;
  std::string Error;
  ASSERT_TRUE(jsonParse(Text, Back, &Error)) << Error;
  // The writer is deterministic and objects preserve insertion order, so
  // a round-trip reproduces the exact bytes.
  EXPECT_EQ(Text, jsonWrite(Back));

  uint64_t U = 0;
  EXPECT_TRUE(Back.getU64("max", U));
  EXPECT_EQ(U, UINT64_MAX);
  std::string S;
  EXPECT_TRUE(Back.getString("text", S));
  EXPECT_EQ(S, "quote \" backslash \\ tab \t ctrl \x01");
}

TEST(SessionJson, ParserRejectsMalformedInput) {
  const char *Bad[] = {
      "",                         // empty
      "{",                        // unterminated object
      "[1,]",                     // trailing comma
      "{\"a\":}",                 // missing value
      "{\"a\":1,}",               // trailing comma in object
      "[1 2]",                    // missing comma
      "{\"a\" 1}",                // missing colon
      "1.5",                      // float
      "-1",                       // negative
      "1e3",                      // exponent
      "tru",                      // bad literal
      "\"abc",                    // unterminated string
      "\"\\q\"",                  // unknown escape
      "\"\\u12G4\"",              // bad \u digit
      "\"\\u12\"",                // truncated \u escape
      "{} garbage",               // trailing garbage
      "18446744073709551616",     // uint64 overflow
      "{1: 2}",                   // non-string key
  };
  for (const char *Text : Bad) {
    SCOPED_TRACE(Text);
    JsonValue V;
    std::string Error;
    EXPECT_FALSE(jsonParse(Text, V, &Error));
    EXPECT_FALSE(Error.empty());
  }
}

TEST(SessionJson, DigestHexRoundTrip) {
  std::vector<uint64_t> Digests = {0, 1, 0xdeadbeef, UINT64_MAX,
                                   (1ull << 53) + 1};
  std::vector<uint64_t> Back;
  ASSERT_TRUE(digestsFromHex(digestsToHex(Digests), Back));
  EXPECT_EQ(Digests, Back);
  EXPECT_FALSE(digestsFromHex("12 xyz", Back));
}

TEST(SessionJson, DigestHexCompactRoundTrip) {
  // Digest sets are order-free, so the writer normalizes every set to
  // sorted-unique before choosing an encoding; above the threshold it
  // switches to the delta form ("*" prefix).
  std::vector<uint64_t> Digests = {0xdeadbeef, 3, UINT64_MAX, 3,
                                   (1ull << 53) + 1, 0};
  std::vector<uint64_t> Unique = Digests;
  std::sort(Unique.begin(), Unique.end());
  Unique.erase(std::unique(Unique.begin(), Unique.end()), Unique.end());

  std::string Compact = digestsToHexCompact(Digests, /*CompactThreshold=*/4);
  ASSERT_FALSE(Compact.empty());
  EXPECT_EQ(Compact[0], '*');
  std::vector<uint64_t> Back;
  ASSERT_TRUE(digestsFromHex(Compact, Back));
  EXPECT_EQ(Back, Unique);

  // Below the threshold the plain hex form is kept, but the set is still
  // written sorted and deduplicated.
  EXPECT_EQ(digestsToHexCompact(Digests, /*CompactThreshold=*/100),
            digestsToHex(Unique));

  // The compact form is what makes huge digest sets affordable: deltas of
  // a dense sorted set are short, so the encoding shrinks accordingly.
  std::vector<uint64_t> Dense;
  for (uint64_t I = 0; I != 8192; ++I)
    Dense.push_back(I * 7);
  std::string Plain = digestsToHex(Dense);
  std::string Small = digestsToHexCompact(Dense, 4096);
  EXPECT_LT(Small.size() * 2, Plain.size());
  ASSERT_TRUE(digestsFromHex(Small, Back));
  EXPECT_EQ(Back, Dense);
}

TEST(SessionJson, AtomicWriteThenRead) {
  std::string Path = testing::TempDir() + "icb_session_json_test.tmp";
  std::string Error;
  ASSERT_TRUE(atomicWriteFile(Path, "payload", &Error)) << Error;
  std::string Back;
  ASSERT_TRUE(readFile(Path, Back, &Error)) << Error;
  EXPECT_EQ(Back, "payload");
  std::remove(Path.c_str());
  EXPECT_FALSE(readFile(Path, Back, &Error));
  EXPECT_FALSE(Error.empty());
}

//===----------------------------------------------------------------------===//
// Manifest
//===----------------------------------------------------------------------===//

TEST(SessionManifest, RecordsConfigAndRuns) {
  search::SearchResult R;
  R.Stats.Executions = 3;
  search::Bug B;
  B.Kind = search::BugKind::AssertFailure;
  B.Message = "boom";
  B.Preemptions = 1;
  R.Bugs.push_back(B);

  Manifest M("session_test");
  JsonValue Config = JsonValue::object();
  Config.set("strategy", JsonValue::str("icb"));
  M.setConfig(std::move(Config));
  size_t Index = M.addRun(
      runRecord("wsq", "pop-check-then-act", "rt", "icb", 1, R, 12));
  R.Stats.Executions = 4;
  M.updateRun(Index,
              runRecord("wsq", "pop-check-then-act", "rt", "icb", 1, R, 15));

  JsonValue Doc;
  std::string Error;
  ASSERT_TRUE(jsonParse(M.str(), Doc, &Error)) << Error;
  std::string Tool;
  ASSERT_TRUE(Doc.getString("tool", Tool));
  EXPECT_EQ(Tool, "session_test");
  const JsonValue *Runs = Doc.find("runs");
  ASSERT_NE(Runs, nullptr);
  ASSERT_EQ(Runs->Arr.size(), 1u);
  const JsonValue &Run = Runs->Arr[0];
  uint64_t U = 0;
  EXPECT_TRUE(Run.getU64("wall_ms", U));
  EXPECT_EQ(U, 15u);
  const JsonValue *Stats = Run.find("stats");
  ASSERT_NE(Stats, nullptr);
  EXPECT_TRUE(Stats->getU64("executions", U));
  EXPECT_EQ(U, 4u);
  const JsonValue *Bugs = Run.find("bugs");
  ASSERT_NE(Bugs, nullptr);
  EXPECT_EQ(Bugs->Arr.size(), 1u);
}

//===----------------------------------------------------------------------===//
// Checkpoint + resume determinism
//===----------------------------------------------------------------------===//

/// Test observer: cooperatively stops the run after a fixed number of
/// stopRequested() polls (0 = never stop), optionally requests periodic
/// snapshots every \p Every executions, and keeps every resumable
/// (non-final) snapshot the driver emits.
class SnapshotProbe final : public search::EngineObserver {
public:
  explicit SnapshotProbe(uint64_t StopAfterPolls, uint64_t Every = 0)
      : StopAfterPolls(StopAfterPolls), Every(Every) {}

  bool checkpointDue(uint64_t Executions) override {
    return Every != 0 && Executions >= LastSnap.load() + Every;
  }

  bool stopRequested() override {
    return StopAfterPolls != 0 && Polls.fetch_add(1) + 1 >= StopAfterPolls;
  }

  void onCheckpoint(const search::EngineSnapshot &Snap) override {
    LastSnap.store(Snap.Stats.Executions);
    if (!Snap.Final)
      Resumable.push_back(Snap);
  }

  std::vector<search::EngineSnapshot> Resumable;

private:
  uint64_t StopAfterPolls;
  uint64_t Every;
  std::atomic<uint64_t> Polls{0};
  std::atomic<uint64_t> LastSnap{0};
};

rt::ExploreResult runRtIcb(const rt::TestCase &Test, unsigned Jobs,
                           search::EngineObserver *Obs = nullptr,
                           const search::EngineSnapshot *Resume = nullptr,
                           bool Por = false,
                           obs::MetricsRegistry *Metrics = nullptr) {
  rt::ExploreOptions Opts;
  Opts.Limits.MaxPreemptionBound = 2;
  Opts.Limits.StopAtFirstBug = false;
  Opts.Jobs = Jobs;
  Opts.Por = Por;
  Opts.Observer = Obs;
  Opts.Resume = Resume;
  Opts.Metrics = Metrics;
  rt::IcbExplorer Icb(Opts);
  return Icb.explore(Test);
}

search::SearchResult runVmIcb(const vm::Program &Prog, unsigned Jobs,
                              search::EngineObserver *Obs = nullptr,
                              const search::EngineSnapshot *Resume = nullptr,
                              bool Por = false) {
  vm::Interp VM(Prog);
  if (Jobs == 1) {
    search::IcbSearch::Options Opts;
    Opts.UseStateCache = false;
    Opts.UseSleepSets = Por;
    Opts.Limits.MaxPreemptionBound = 2;
    Opts.Limits.StopAtFirstBug = false;
    Opts.Observer = Obs;
    Opts.Resume = Resume;
    return search::IcbSearch(Opts).run(VM);
  }
  search::ParallelIcbSearch::Options Opts;
  Opts.Jobs = Jobs;
  Opts.UseStateCache = false;
  Opts.UseSleepSets = Por;
  Opts.Limits.MaxPreemptionBound = 2;
  Opts.Limits.StopAtFirstBug = false;
  Opts.Observer = Obs;
  Opts.Resume = Resume;
  return search::ParallelIcbSearch(Opts).run(VM);
}

/// Interrupt a run mid-flight, resume from the emitted snapshot, and
/// demand results identical to the uninterrupted reference. With POR on,
/// the sleep sets serialized inside work items must survive the trip —
/// dropping them would make the resumed run explore *more* than the
/// reference; inventing them would lose executions.
void checkRtResume(unsigned Jobs, bool Por = false) {
  rt::TestCase Test = workStealingTest({3, 4, WsqBug::PopCheckThenAct});
  rt::ExploreResult Reference = runRtIcb(Test, Jobs, nullptr, nullptr, Por);
  ASSERT_TRUE(Reference.foundBug());

  SnapshotProbe Probe(/*StopAfterPolls=*/40);
  rt::ExploreResult Cut = runRtIcb(Test, Jobs, &Probe, nullptr, Por);
  ASSERT_TRUE(Cut.Interrupted);
  ASSERT_FALSE(Probe.Resumable.empty());
  EXPECT_LT(Cut.Stats.Executions, Reference.Stats.Executions);

  rt::ExploreResult Resumed =
      runRtIcb(Test, Jobs, nullptr, &Probe.Resumable.back(), Por);
  EXPECT_FALSE(Resumed.Interrupted);
  expectIdenticalResults(Reference, Resumed);
}

void checkVmResume(unsigned Jobs, bool Por = false) {
  vm::Program Prog = wsqModel({3, WsqBug::PopCheckThenAct});
  search::SearchResult Reference = runVmIcb(Prog, Jobs, nullptr, nullptr, Por);
  ASSERT_TRUE(Reference.foundBug());

  SnapshotProbe Probe(/*StopAfterPolls=*/40);
  search::SearchResult Cut = runVmIcb(Prog, Jobs, &Probe, nullptr, Por);
  ASSERT_TRUE(Cut.Interrupted);
  ASSERT_FALSE(Probe.Resumable.empty());

  search::SearchResult Resumed =
      runVmIcb(Prog, Jobs, nullptr, &Probe.Resumable.back(), Por);
  EXPECT_FALSE(Resumed.Interrupted);
  expectIdenticalResults(Reference, Resumed);
}

TEST(SessionResume, RtSequentialMatchesUninterrupted) { checkRtResume(1); }
TEST(SessionResume, RtParallelMatchesUninterrupted) { checkRtResume(3); }
TEST(SessionResume, VmSequentialMatchesUninterrupted) { checkVmResume(1); }
TEST(SessionResume, VmParallelMatchesUninterrupted) { checkVmResume(3); }
TEST(SessionResume, RtPorSequentialMatchesUninterrupted) {
  checkRtResume(1, /*Por=*/true);
}
TEST(SessionResume, RtPorParallelMatchesUninterrupted) {
  checkRtResume(3, /*Por=*/true);
}
TEST(SessionResume, VmPorSequentialMatchesUninterrupted) {
  checkVmResume(1, /*Por=*/true);
}
TEST(SessionResume, VmPorParallelMatchesUninterrupted) {
  checkVmResume(3, /*Por=*/true);
}

TEST(SessionResume, PeriodicSnapshotResumesToSameResults) {
  // A completed run's periodic mid-run snapshots are just as resumable as
  // a stop-triggered one: resuming from any of them reproduces the full
  // run exactly.
  rt::TestCase Test = workStealingTest({3, 4, WsqBug::PopCheckThenAct});
  SnapshotProbe Probe(/*StopAfterPolls=*/0, /*Every=*/200);
  rt::ExploreResult Reference = runRtIcb(Test, 1, &Probe);
  ASSERT_FALSE(Reference.Interrupted);
  ASSERT_GE(Probe.Resumable.size(), 2u);

  for (size_t I : {size_t(0), Probe.Resumable.size() / 2}) {
    SCOPED_TRACE(I);
    rt::ExploreResult Resumed =
        runRtIcb(Test, 1, nullptr, &Probe.Resumable[I]);
    expectIdenticalResults(Reference, Resumed);
  }
}

TEST(SessionCheckpoint, SerializedSnapshotResumesIdentically) {
  // The full durability path: interrupt, serialize the snapshot to disk,
  // load it back, resume from the *loaded* copy.
  rt::TestCase Test = workStealingTest({3, 4, WsqBug::PopCheckThenAct});
  rt::ExploreResult Reference = runRtIcb(Test, 1);

  SnapshotProbe Probe(/*StopAfterPolls=*/60);
  rt::ExploreResult Cut = runRtIcb(Test, 1, &Probe);
  ASSERT_TRUE(Cut.Interrupted);
  ASSERT_FALSE(Probe.Resumable.empty());

  CheckpointData Data;
  Data.Meta.Benchmark = "Work-Stealing Queue";
  Data.Meta.Bug = "pop-check-then-act";
  Data.Meta.Form = "rt";
  Data.Meta.Strategy = "icb";
  Data.Meta.Jobs = 1;
  Data.Meta.Detector = "vc";
  Data.Meta.Limits.MaxPreemptionBound = 2;
  Data.Snap = Probe.Resumable.back();
  Data.WallMillis = 42;

  std::string Path = checkpointPath(testing::TempDir());
  std::string Error;
  ASSERT_TRUE(saveCheckpoint(Path, Data, &Error)) << Error;
  CheckpointData Loaded;
  ASSERT_TRUE(loadCheckpoint(Path, Loaded, &Error)) << Error;
  std::remove(Path.c_str());

  EXPECT_EQ(Loaded.Meta.Benchmark, Data.Meta.Benchmark);
  EXPECT_EQ(Loaded.Meta.Bug, Data.Meta.Bug);
  EXPECT_EQ(Loaded.Meta.Form, Data.Meta.Form);
  EXPECT_EQ(Loaded.Meta.Jobs, Data.Meta.Jobs);
  EXPECT_EQ(Loaded.Meta.Limits.MaxPreemptionBound,
            Data.Meta.Limits.MaxPreemptionBound);
  EXPECT_EQ(Loaded.WallMillis, 42u);
  EXPECT_EQ(Loaded.Snap.Bound, Data.Snap.Bound);
  EXPECT_FALSE(Loaded.Snap.Final);
  EXPECT_EQ(Loaded.Snap.CurrentQueue.size(), Data.Snap.CurrentQueue.size());
  EXPECT_EQ(Loaded.Snap.NextQueue.size(), Data.Snap.NextQueue.size());
  // Digest sets are compacted (sorted, deduplicated) on write, so compare
  // them as sets; the engine only ever membership-tests them.
  std::vector<uint64_t> WantDigests = Data.Snap.SeenDigests;
  std::sort(WantDigests.begin(), WantDigests.end());
  WantDigests.erase(std::unique(WantDigests.begin(), WantDigests.end()),
                    WantDigests.end());
  EXPECT_EQ(Loaded.Snap.SeenDigests, WantDigests);
  EXPECT_EQ(Loaded.Snap.Stats.Executions, Data.Snap.Stats.Executions);

  rt::ExploreResult Resumed = runRtIcb(Test, 1, nullptr, &Loaded.Snap);
  expectIdenticalResults(Reference, Resumed);
}

TEST(SessionCheckpoint, PorSnapshotRoundTripsThroughDisk) {
  // Same durability path with bounded POR on: the sleep sets inside saved
  // work items must survive serialization, or the resumed run diverges.
  rt::TestCase Test = workStealingTest({3, 4, WsqBug::PopCheckThenAct});
  rt::ExploreResult Reference =
      runRtIcb(Test, 1, nullptr, nullptr, /*Por=*/true);

  SnapshotProbe Probe(/*StopAfterPolls=*/60);
  rt::ExploreResult Cut = runRtIcb(Test, 1, &Probe, nullptr, /*Por=*/true);
  ASSERT_TRUE(Cut.Interrupted);
  ASSERT_FALSE(Probe.Resumable.empty());

  CheckpointData Data;
  Data.Meta.Form = "rt";
  Data.Meta.Strategy = "icb";
  Data.Meta.Por = true;
  Data.Meta.Limits.MaxPreemptionBound = 2;
  Data.Snap = Probe.Resumable.back();

  std::string Path = checkpointPath(testing::TempDir());
  std::string Error;
  ASSERT_TRUE(saveCheckpoint(Path, Data, &Error)) << Error;
  CheckpointData Loaded;
  ASSERT_TRUE(loadCheckpoint(Path, Loaded, &Error)) << Error;
  std::remove(Path.c_str());

  EXPECT_TRUE(Loaded.Meta.Por);
  rt::ExploreResult Resumed =
      runRtIcb(Test, 1, nullptr, &Loaded.Snap, /*Por=*/true);
  expectIdenticalResults(Reference, Resumed);
}

#ifndef ICB_NO_METRICS
TEST(SessionCheckpoint, EstimatorAndSitesSurviveDiskRoundTrip) {
  // The schedule-space estimator's split masses and site provenance ride
  // on work items (checkpoint format v5); dropping either on the disk
  // round trip would make the resumed run's credited mass or its site
  // profiles diverge from an uninterrupted run's.
  rt::TestCase Test = workStealingTest({3, 4, WsqBug::PopCheckThenAct});
  obs::MetricsRegistry RefReg;
  rt::ExploreResult Reference =
      runRtIcb(Test, 1, nullptr, nullptr, false, &RefReg);
  obs::MetricsSnapshot Ref = RefReg.snapshot();
  ASSERT_GT(Ref.estMassTotal(), 0u);

  SnapshotProbe Probe(/*StopAfterPolls=*/60);
  obs::MetricsRegistry CutReg;
  rt::ExploreResult Cut = runRtIcb(Test, 1, &Probe, nullptr, false, &CutReg);
  ASSERT_TRUE(Cut.Interrupted);
  ASSERT_FALSE(Probe.Resumable.empty());

  CheckpointData Data;
  Data.Meta.Form = "rt";
  Data.Meta.Strategy = "icb";
  Data.Meta.Limits.MaxPreemptionBound = 2;
  Data.Snap = Probe.Resumable.back();

  std::string Path = checkpointPath(testing::TempDir());
  std::string Error;
  ASSERT_TRUE(saveCheckpoint(Path, Data, &Error)) << Error;
  CheckpointData Loaded;
  ASSERT_TRUE(loadCheckpoint(Path, Loaded, &Error)) << Error;
  std::remove(Path.c_str());

  // Safe points conserve estimator mass exactly: every unit of the
  // schedule space is either credited by a finished execution (in the
  // metrics image) or still queued on a frontier item.
  uint64_t Queued = 0;
  for (const auto *Q : {&Loaded.Snap.CurrentQueue, &Loaded.Snap.NextQueue})
    for (const search::SavedWorkItem &Item : *Q)
      Queued += Item.EstMass;
  EXPECT_EQ(Queued + Loaded.Snap.Metrics.estMassTotal(), obs::EstimateOne);

  obs::MetricsRegistry ResReg;
  rt::ExploreResult Resumed =
      runRtIcb(Test, 1, nullptr, &Loaded.Snap, false, &ResReg);
  expectIdenticalResults(Reference, Resumed);
  icb::testutil::expectSameDeterministicMetrics(Ref, ResReg.snapshot());
}
#endif // !ICB_NO_METRICS

TEST(SessionCheckpoint, LoadsFormatVersionTwoFiles) {
  // Bounded POR bumped the checkpoint format to v3; files written by
  // pre-POR builds (v2: no `por` meta field, no `sleep` on work items,
  // plain digest encoding) must keep loading with POR defaulted off.
  rt::TestCase Test = workStealingTest({3, 4, WsqBug::PopCheckThenAct});
  rt::ExploreResult Reference = runRtIcb(Test, 1);

  SnapshotProbe Probe(/*StopAfterPolls=*/60);
  rt::ExploreResult Cut = runRtIcb(Test, 1, &Probe);
  ASSERT_TRUE(Cut.Interrupted);
  ASSERT_FALSE(Probe.Resumable.empty());

  CheckpointData Data;
  Data.Meta.Form = "rt";
  Data.Meta.Strategy = "icb";
  Data.Meta.Limits.MaxPreemptionBound = 2;
  Data.Snap = Probe.Resumable.back();

  std::string Path = checkpointPath(testing::TempDir());
  std::string Error;
  ASSERT_TRUE(saveCheckpoint(Path, Data, &Error)) << Error;
  std::string Text;
  ASSERT_TRUE(readFile(Path, Text, &Error)) << Error;

  // Regress the file to what a v2 writer produced: version 2 and no
  // `por` member. (A POR-off v3 writer emits no `sleep` members and this
  // snapshot is far below the digest-compaction threshold, so the rest of
  // the bytes already match the v2 shape.)
  JsonValue Doc;
  ASSERT_TRUE(jsonParse(Text, Doc, &Error)) << Error;
  Doc.set("icb_checkpoint", JsonValue::number(2));
  JsonValue *Meta = nullptr;
  for (JsonValue::Member &M : Doc.Obj)
    if (M.first == "meta")
      Meta = &M.second;
  ASSERT_NE(Meta, nullptr);
  for (size_t I = 0; I != Meta->Obj.size(); ++I)
    if (Meta->Obj[I].first == "por") {
      Meta->Obj.erase(Meta->Obj.begin() + I);
      break;
    }
  EXPECT_EQ(Meta->find("por"), nullptr);
  ASSERT_TRUE(atomicWriteFile(Path, jsonWrite(Doc) + "\n", &Error)) << Error;

  CheckpointData Loaded;
  ASSERT_TRUE(loadCheckpoint(Path, Loaded, &Error)) << Error;
  std::remove(Path.c_str());
  EXPECT_FALSE(Loaded.Meta.Por);

  rt::ExploreResult Resumed = runRtIcb(Test, 1, nullptr, &Loaded.Snap);
  expectIdenticalResults(Reference, Resumed);
}

/// Recursively erases every member named \p Name from \p V.
void eraseMembersNamed(JsonValue &V, const char *Name) {
  if (V.isObject()) {
    for (size_t I = 0; I < V.Obj.size();) {
      if (V.Obj[I].first == Name) {
        V.Obj.erase(V.Obj.begin() + I);
      } else {
        eraseMembersNamed(V.Obj[I].second, Name);
        ++I;
      }
    }
  } else if (V.isArray()) {
    for (JsonValue &E : V.Arr)
      eraseMembersNamed(E, Name);
  }
}

TEST(SessionCheckpoint, LoadsAllOlderFormatVersions) {
  // The bound-policy seam bumped the format to v4; files written by v1,
  // v2, and v3 builds must keep loading, with every missing field
  // defaulting to the hard-wired behavior of its era (POR off,
  // preemption bounding, no metrics), and must resume to results
  // identical to an uninterrupted run.
  rt::TestCase Test = workStealingTest({3, 4, WsqBug::PopCheckThenAct});
  rt::ExploreResult Reference = runRtIcb(Test, 1);

  SnapshotProbe Probe(/*StopAfterPolls=*/60);
  rt::ExploreResult Cut = runRtIcb(Test, 1, &Probe);
  ASSERT_TRUE(Cut.Interrupted);
  ASSERT_FALSE(Probe.Resumable.empty());

  CheckpointData Data;
  Data.Meta.Form = "rt";
  Data.Meta.Strategy = "icb";
  Data.Meta.Limits.MaxPreemptionBound = 2;
  Data.Snap = Probe.Resumable.back();

  std::string Path = checkpointPath(testing::TempDir());
  std::string Error;
  ASSERT_TRUE(saveCheckpoint(Path, Data, &Error)) << Error;
  std::string Text;
  ASSERT_TRUE(readFile(Path, Text, &Error)) << Error;

  for (uint64_t Version : {uint64_t(3), uint64_t(2), uint64_t(1)}) {
    SCOPED_TRACE(Version);
    JsonValue Doc;
    ASSERT_TRUE(jsonParse(Text, Doc, &Error)) << Error;
    Doc.set("icb_checkpoint", JsonValue::number(Version));
    JsonValue *Meta = nullptr;
    for (JsonValue::Member &M : Doc.Obj)
      if (M.first == "meta")
        Meta = &M.second;
    ASSERT_NE(Meta, nullptr);
    // v4 additions: the policy meta fields, per-item budget sets, and the
    // phase latency histograms. The snapshot's own "bound" member (the
    // frontier index) predates v4, so only the meta object loses the
    // member of that name.
    for (size_t I = 0; I < Meta->Obj.size();)
      if (Meta->Obj[I].first == "bound" || Meta->Obj[I].first == "var_bound")
        Meta->Obj.erase(Meta->Obj.begin() + I);
      else
        ++I;
    eraseMembersNamed(Doc, "bound_threads");
    eraseMembersNamed(Doc, "bound_vars");
    eraseMembersNamed(Doc, "phase_hist_log2");
    if (Version <= 2) {
      // v3 additions: the POR meta field and per-item sleep sets.
      for (size_t I = 0; I < Meta->Obj.size();)
        if (Meta->Obj[I].first == "por")
          Meta->Obj.erase(Meta->Obj.begin() + I);
        else
          ++I;
      eraseMembersNamed(Doc, "sleep");
    }
    if (Version <= 1) {
      // v2 additions: the metrics block and the derived MinMax mean.
      eraseMembersNamed(Doc, "metrics");
      eraseMembersNamed(Doc, "mean_milli");
    }
    ASSERT_TRUE(atomicWriteFile(Path, jsonWrite(Doc) + "\n", &Error)) << Error;

    CheckpointData Loaded;
    ASSERT_TRUE(loadCheckpoint(Path, Loaded, &Error)) << Error;
    EXPECT_FALSE(Loaded.Meta.Por);
    EXPECT_EQ(Loaded.Meta.Bound, "preemption");
    EXPECT_EQ(Loaded.Meta.VarBound, 0u);

    rt::ExploreResult Resumed = runRtIcb(Test, 1, nullptr, &Loaded.Snap);
    expectIdenticalResults(Reference, Resumed);
  }

  // And forward again: a v4 file records a non-default policy in full.
  Data.Meta.Bound = "thread";
  Data.Meta.VarBound = 3;
  ASSERT_TRUE(saveCheckpoint(Path, Data, &Error)) << Error;
  CheckpointData V4;
  ASSERT_TRUE(loadCheckpoint(Path, V4, &Error)) << Error;
  std::remove(Path.c_str());
  EXPECT_EQ(V4.Meta.Bound, "thread");
  EXPECT_EQ(V4.Meta.VarBound, 3u);
}

TEST(SessionCheckpoint, LoadRejectsCorruptFiles) {
  std::string Path = testing::TempDir() + "icb_corrupt_checkpoint.json";
  std::string Error;
  CheckpointData Out;

  EXPECT_FALSE(loadCheckpoint(Path + ".missing", Out, &Error));

  ASSERT_TRUE(atomicWriteFile(Path, "{ not json", &Error)) << Error;
  EXPECT_FALSE(loadCheckpoint(Path, Out, &Error));
  EXPECT_FALSE(Error.empty());

  ASSERT_TRUE(atomicWriteFile(Path, "{\"icb_checkpoint\": 99}", &Error))
      << Error;
  EXPECT_FALSE(loadCheckpoint(Path, Out, &Error));
  std::remove(Path.c_str());
}

//===----------------------------------------------------------------------===//
// Repro artifacts
//===----------------------------------------------------------------------===//

ReproArtifact rtArtifactFor(const rt::ExploreResult &R) {
  ReproArtifact A;
  A.Benchmark = "Work-Stealing Queue";
  A.Bug = "pop-check-then-act";
  A.Form = "rt";
  A.Detector = "vc";
  A.Found = *R.simplestBug();
  return A;
}

TEST(SessionRepro, RoundTripAndStrictReplay) {
  rt::TestCase Test = workStealingTest({3, 4, WsqBug::PopCheckThenAct});
  rt::ExploreResult R = runRtIcb(Test, 1);
  ASSERT_TRUE(R.foundBug());

  ReproArtifact A = rtArtifactFor(R);
  std::string Name = reproFileName(A);
  EXPECT_NE(Name.find(".icbrepro"), std::string::npos);
  for (char C : Name)
    EXPECT_TRUE((C >= 'a' && C <= 'z') || (C >= '0' && C <= '9') ||
                C == '-' || C == '.')
        << "unsanitized character '" << C << "' in " << Name;

  std::string Path = testing::TempDir() + Name;
  std::string Error;
  ASSERT_TRUE(saveRepro(Path, A, &Error)) << Error;
  ReproArtifact Loaded;
  ASSERT_TRUE(loadRepro(Path, Loaded, &Error)) << Error;
  std::remove(Path.c_str());
  EXPECT_EQ(Loaded.Benchmark, A.Benchmark);
  EXPECT_EQ(Loaded.Form, "rt");
  EXPECT_EQ(Loaded.Found.Message, A.Found.Message);
  EXPECT_TRUE(Loaded.Found.Sched == A.Found.Sched);

  ReplayOutcome Outcome = replayArtifactRt(Loaded, Test);
  EXPECT_TRUE(Outcome.Reproduced) << Outcome.Detail;
  EXPECT_TRUE(Outcome.BugFired);

  // Strictness: same schedule, doctored expectation -> divergence report,
  // not a silent pass.
  ReproArtifact Tampered = Loaded;
  Tampered.Found.Message = "some other bug";
  ReplayOutcome Diverged = replayArtifactRt(Tampered, Test);
  EXPECT_FALSE(Diverged.Reproduced);
  EXPECT_TRUE(Diverged.BugFired);
  EXPECT_FALSE(Diverged.Detail.empty());
}

TEST(SessionRepro, VmArtifactReplays) {
  vm::Program Prog = wsqModel({3, WsqBug::PopCheckThenAct});
  search::SearchResult R = runVmIcb(Prog, 1);
  ASSERT_TRUE(R.foundBug());

  ReproArtifact A;
  A.Benchmark = "Work-Stealing Queue";
  A.Bug = "pop-check-then-act";
  A.Form = "vm";
  A.Found = *R.simplestBug();
  ASSERT_FALSE(A.Found.Schedule.empty());

  ReplayOutcome Outcome = replayArtifactVm(A, Prog);
  EXPECT_TRUE(Outcome.Reproduced) << Outcome.Detail;

  // Replaying against the wrong program diverges loudly.
  vm::Program Clean = wsqModel({3, WsqBug::None});
  ReplayOutcome Wrong = replayArtifactVm(A, Clean);
  EXPECT_FALSE(Wrong.Reproduced);
  EXPECT_FALSE(Wrong.Detail.empty());
}

TEST(SessionRepro, LoadRejectsCorruptArtifacts) {
  std::string Path = testing::TempDir() + "icb_corrupt.icbrepro";
  std::string Error;
  ReproArtifact Out;
  ASSERT_TRUE(atomicWriteFile(Path, "{\"icb_repro\": 1}", &Error)) << Error;
  EXPECT_FALSE(loadRepro(Path, Out, &Error));
  EXPECT_FALSE(Error.empty());
  std::remove(Path.c_str());
}

TEST(SessionRepro, BoundFieldRoundTripsAndGatesReplay) {
  rt::TestCase Test = workStealingTest({3, 4, WsqBug::PopCheckThenAct});
  rt::ExploreResult R = runRtIcb(Test, 1);
  ASSERT_TRUE(R.foundBug());
  ReproArtifact A = rtArtifactFor(R);

  // Default preemption artifacts carry no bound field at all, so the
  // bytes of every pre-existing artifact are unchanged; they stay
  // compatible with an explicit preemption request and refuse any other
  // policy family.
  std::string Path = testing::TempDir() + reproFileName(A);
  std::string Error;
  ASSERT_TRUE(saveRepro(Path, A, &Error)) << Error;
  std::string Text;
  ASSERT_TRUE(readFile(Path, Text, &Error)) << Error;
  EXPECT_EQ(Text.find("\"bound\""), std::string::npos);
  ReproArtifact Loaded;
  ASSERT_TRUE(loadRepro(Path, Loaded, &Error)) << Error;
  EXPECT_TRUE(Loaded.Bound.empty());
  EXPECT_TRUE(reproBoundCompatible(Loaded, "", nullptr));
  EXPECT_TRUE(reproBoundCompatible(Loaded, "preemption", nullptr));
  std::string Why;
  EXPECT_FALSE(reproBoundCompatible(Loaded, "delay", &Why));
  EXPECT_FALSE(Why.empty());

  // A non-default policy records its full spec; compatibility compares
  // the family only (the K under which the bug was found is advisory).
  A.Bound = "delay:8";
  ASSERT_TRUE(saveRepro(Path, A, &Error)) << Error;
  ASSERT_TRUE(loadRepro(Path, Loaded, &Error)) << Error;
  std::remove(Path.c_str());
  EXPECT_EQ(Loaded.Bound, "delay:8");
  EXPECT_TRUE(reproBoundCompatible(Loaded, "", nullptr));
  EXPECT_TRUE(reproBoundCompatible(Loaded, "delay", nullptr));
  EXPECT_FALSE(reproBoundCompatible(Loaded, "preemption", &Why));
  EXPECT_FALSE(Why.empty());
}

//===----------------------------------------------------------------------===//
// Minimization
//===----------------------------------------------------------------------===//

TEST(SessionMinimize, RtReachesPaperPreemptionBound) {
  rt::TestCase Test = workStealingTest({3, 4, WsqBug::PopCheckThenAct});
  rt::ExploreResult R = runRtIcb(Test, 1);
  ASSERT_TRUE(R.foundBug());

  ReproArtifact A = rtArtifactFor(R);
  MinimizeResult M = minimizeRt(A, Test);
  ASSERT_TRUE(M.Reproduced);
  EXPECT_GT(M.Replays, 0u);
  EXPECT_LE(M.DirectivesAfter, M.DirectivesBefore);
  EXPECT_LE(M.PreemptionsAfter, M.PreemptionsBefore);
  // ICB already guarantees the minimal preemption count (paper bound 1
  // for this bug); minimization must never lose that.
  EXPECT_EQ(M.PreemptionsAfter, 1u);
  EXPECT_EQ(M.Minimized.Kind, A.Found.Kind);
  EXPECT_EQ(M.Minimized.Message, A.Found.Message);

  // The minimized schedule is still a faithful repro.
  ReproArtifact Shrunk = A;
  Shrunk.Found = M.Minimized;
  EXPECT_TRUE(replayArtifactRt(Shrunk, Test).Reproduced);
}

TEST(SessionMinimize, VmShrinksToSamePreemptionCount) {
  vm::Program Prog = wsqModel({3, WsqBug::PopCheckThenAct});
  search::SearchResult R = runVmIcb(Prog, 1);
  ASSERT_TRUE(R.foundBug());

  ReproArtifact A;
  A.Benchmark = "Work-Stealing Queue";
  A.Bug = "pop-check-then-act";
  A.Form = "vm";
  A.Found = *R.simplestBug();

  MinimizeResult M = minimizeVm(A, Prog);
  ASSERT_TRUE(M.Reproduced);
  EXPECT_LE(M.PreemptionsAfter, M.PreemptionsBefore);
  EXPECT_EQ(M.Minimized.Message, A.Found.Message);

  ReproArtifact Shrunk = A;
  Shrunk.Found = M.Minimized;
  EXPECT_TRUE(replayArtifactVm(Shrunk, Prog).Reproduced);
}

//===----------------------------------------------------------------------===//
// Checkpoint-directory locking and robustness
//===----------------------------------------------------------------------===//

TEST(SessionDirLock, SecondAcquirerLosesUntilRelease) {
  std::string Dir = testing::TempDir() + "icb_dirlock_test";
  std::string Error;
  ASSERT_TRUE(ensureDir(Dir, &Error)) << Error;

  DirLock First;
  ASSERT_TRUE(First.acquire(Dir, &Error)) << Error;
  EXPECT_TRUE(First.held());

  // flock is per open file description, so a second open of the same
  // .lock conflicts even within one process — exactly the two-runs-on-
  // one---checkpoint-dir collision the CLI reports as exit 4.
  DirLock Second;
  EXPECT_FALSE(Second.acquire(Dir, &Error));
  EXPECT_FALSE(Second.held());
  EXPECT_FALSE(Error.empty());

  First.release();
  EXPECT_FALSE(First.held());
  EXPECT_TRUE(Second.acquire(Dir, &Error)) << Error;
  Second.release();
}

TEST(SessionDirLock, AcquireFailsOnMissingDirectory) {
  std::string Dir = testing::TempDir() + "icb_dirlock_never_created";
  std::string Error;
  DirLock Lock;
  EXPECT_FALSE(Lock.acquire(Dir, &Error));
  EXPECT_FALSE(Lock.held());
  EXPECT_FALSE(Error.empty());
}

TEST(SessionCheckpoint, SinkSurvivesVanishingDirectory) {
  // A checkpoint directory removed mid-run (operator cleanup, tmpfs
  // reaper) must surface as a sticky sink error — the CLI maps it to
  // exit 4 — never a crash or a silent no-op.
  std::string Dir = testing::TempDir() + "icb_vanishing_ckpt_dir";
  std::string Error;
  ASSERT_TRUE(ensureDir(Dir, &Error)) << Error;

  CheckpointMeta Meta;
  Meta.Benchmark = "racy";
  Meta.Form = "vm";
  Meta.Strategy = "icb";
  CheckpointSink Sink(Dir, /*Every=*/1, Meta);

  search::EngineSnapshot Snap;
  Snap.Bound = 0;
  Snap.CurrentQueue.push_back({});
  Sink.onCheckpoint(Snap);
  ASSERT_TRUE(Sink.ok()) << Sink.error();

  std::remove(checkpointPath(Dir).c_str());
  std::remove((Dir + "/.lock").c_str());
  ASSERT_EQ(::rmdir(Dir.c_str()), 0);

  Sink.onCheckpoint(Snap);
  EXPECT_FALSE(Sink.ok());
  EXPECT_FALSE(Sink.error().empty());

  // The first failure sticks even if the directory reappears.
  ASSERT_TRUE(ensureDir(Dir, &Error)) << Error;
  Sink.onCheckpoint(Snap);
  EXPECT_FALSE(Sink.ok());
}

} // namespace
