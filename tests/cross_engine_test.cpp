//===- tests/cross_engine_test.cpp - Stateless vs model-VM agreement ------===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cross-engine agreement: the paper runs the same Algorithm 1 inside the
/// explicit-state ZING checker and the stateless CHESS checker, and both
/// expose each seeded bug at the same minimal preemption bound (Table 2).
/// Our reproduction has the same split — ReplayExecutor over the fiber
/// runtime, VmExecutor over the model VM — driven by one shared engine.
///
/// For every registry bug variant that exists in both forms this test
/// asserts the Table 2 signature: both engines expose the bug with exactly
/// the paper's preemption count and neither exposes it below that bound.
/// Raw per-bound execution counts are *not* comparable across forms (the
/// model VM is a coarser abstraction with fewer scheduling points), but
/// within each form they are exact: with state caching off, the sequential
/// and parallel drivers of either executor must report identical per-bound
/// execution and coverage counts.
///
//===----------------------------------------------------------------------===//

#include "benchmarks/Registry.h"
#include "rt/Explore.h"
#include "search/IcbSearch.h"
#include "search/ParallelIcb.h"
#include "testutil/ResultChecks.h"
#include "vm/Interp.h"
#include <gtest/gtest.h>
#include <vector>

using namespace icb;
using namespace icb::bench;
using icb::testutil::expectSamePerBound;

namespace {

/// Registry bug variants present in both the runtime and model-VM form.
std::vector<const BugVariant *> bothFormVariants() {
  std::vector<const BugVariant *> Variants;
  for (const BenchmarkEntry &E : allBenchmarks())
    for (const BugVariant &B : E.Bugs)
      if (B.MakeRt && B.MakeVm)
        Variants.push_back(&B);
  return Variants;
}

rt::ExploreResult runRtIcb(const rt::TestCase &Test, unsigned MaxBound,
                           unsigned Jobs) {
  rt::ExploreOptions Opts;
  Opts.Limits.MaxPreemptionBound = MaxBound;
  Opts.Limits.StopAtFirstBug = false;
  Opts.Jobs = Jobs;
  rt::IcbExplorer Icb(Opts);
  return Icb.explore(Test);
}

search::SearchResult runVmIcb(const vm::Program &Prog, unsigned MaxBound) {
  search::IcbSearch::Options Opts;
  Opts.UseStateCache = false;
  Opts.Limits.MaxPreemptionBound = MaxBound;
  Opts.Limits.StopAtFirstBug = false;
  search::IcbSearch Search(Opts);
  vm::Interp VM(Prog);
  return Search.run(VM);
}

search::SearchResult runVmIcbParallel(const vm::Program &Prog,
                                      unsigned MaxBound, unsigned Jobs) {
  search::ParallelIcbSearch::Options Opts;
  Opts.Jobs = Jobs;
  Opts.UseStateCache = false;
  Opts.Limits.MaxPreemptionBound = MaxBound;
  Opts.Limits.StopAtFirstBug = false;
  search::ParallelIcbSearch Search(Opts);
  vm::Interp VM(Prog);
  return Search.run(VM);
}

TEST(CrossEngine, RegistryHasBothFormVariants) {
  // Bluetooth and the work-stealing queue carry both forms; if this
  // shrinks, the agreement tests below silently lose their subjects.
  EXPECT_GE(bothFormVariants().size(), 4u);
}

TEST(CrossEngine, SameMinimalPreemptionBound) {
  for (const BugVariant *B : bothFormVariants()) {
    SCOPED_TRACE(B->Label);
    rt::ExploreResult Rt = runRtIcb(B->MakeRt(), B->PaperBound, /*Jobs=*/1);
    search::SearchResult Vm = runVmIcb(B->MakeVm(), B->PaperBound);
    ASSERT_TRUE(Rt.foundBug());
    ASSERT_TRUE(Vm.foundBug());
    EXPECT_EQ(Rt.simplestBug()->Preemptions, B->PaperBound);
    EXPECT_EQ(Vm.simplestBug()->Preemptions, B->PaperBound);
  }
}

TEST(CrossEngine, NoExposureBelowPaperBound) {
  for (const BugVariant *B : bothFormVariants()) {
    if (B->PaperBound == 0)
      continue;
    SCOPED_TRACE(B->Label);
    EXPECT_FALSE(runRtIcb(B->MakeRt(), B->PaperBound - 1, 1).foundBug());
    EXPECT_FALSE(runVmIcb(B->MakeVm(), B->PaperBound - 1).foundBug());
  }
}

TEST(CrossEngine, RtPerBoundCountsInvariantAcrossJobs) {
  // The stateless executor caches no states, so sequential and parallel
  // drivers enumerate exactly the same executions per bound.
  for (const BugVariant *B : bothFormVariants()) {
    SCOPED_TRACE(B->Label);
    rt::ExploreResult Seq = runRtIcb(B->MakeRt(), B->PaperBound, 1);
    rt::ExploreResult Par = runRtIcb(B->MakeRt(), B->PaperBound, 3);
    expectSamePerBound(Seq.Stats.PerBound, Par.Stats.PerBound);
    EXPECT_EQ(Seq.Stats.Executions, Par.Stats.Executions);
    EXPECT_EQ(Seq.Stats.DistinctStates, Par.Stats.DistinctStates);
  }
}

TEST(CrossEngine, VmPerBoundCountsInvariantAcrossJobs) {
  for (const BugVariant *B : bothFormVariants()) {
    SCOPED_TRACE(B->Label);
    search::SearchResult Seq = runVmIcb(B->MakeVm(), B->PaperBound);
    search::SearchResult Par =
        runVmIcbParallel(B->MakeVm(), B->PaperBound, 3);
    expectSamePerBound(Seq.Stats.PerBound, Par.Stats.PerBound);
    EXPECT_EQ(Seq.Stats.Executions, Par.Stats.Executions);
    EXPECT_EQ(Seq.Stats.DistinctStates, Par.Stats.DistinctStates);
  }
}

} // namespace
