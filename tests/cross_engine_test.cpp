//===- tests/cross_engine_test.cpp - Stateless vs model-VM agreement ------===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cross-engine agreement: the paper runs the same Algorithm 1 inside the
/// explicit-state ZING checker and the stateless CHESS checker, and both
/// expose each seeded bug at the same minimal preemption bound (Table 2).
/// Our reproduction has the same split — ReplayExecutor over the fiber
/// runtime, VmExecutor over the model VM — driven by one shared engine.
///
/// For every registry bug variant that exists in both forms this test
/// asserts the Table 2 signature: both engines expose the bug with exactly
/// the paper's preemption count and neither exposes it below that bound.
/// Raw per-bound execution counts are *not* comparable across forms (the
/// model VM is a coarser abstraction with fewer scheduling points), but
/// within each form they are exact: with state caching off, the sequential
/// and parallel drivers of either executor must report identical per-bound
/// execution and coverage counts.
///
//===----------------------------------------------------------------------===//

#include "benchmarks/Registry.h"
#include "rt/Explore.h"
#include "search/IcbSearch.h"
#include "search/ParallelIcb.h"
#include "testutil/ResultChecks.h"
#include "vm/Interp.h"
#include <gtest/gtest.h>
#include <map>
#include <string>
#include <utility>
#include <vector>

using namespace icb;
using namespace icb::bench;
using icb::testutil::expectSamePerBound;

namespace {

/// Registry bug variants present in both the runtime and model-VM form.
std::vector<const BugVariant *> bothFormVariants() {
  std::vector<const BugVariant *> Variants;
  for (const BenchmarkEntry &E : allBenchmarks())
    for (const BugVariant &B : E.Bugs)
      if (B.MakeRt && B.MakeVm)
        Variants.push_back(&B);
  return Variants;
}

rt::ExploreResult runRtIcb(const rt::TestCase &Test, unsigned MaxBound,
                           unsigned Jobs, bool Por = false) {
  rt::ExploreOptions Opts;
  Opts.Limits.MaxPreemptionBound = MaxBound;
  Opts.Limits.StopAtFirstBug = false;
  Opts.Jobs = Jobs;
  Opts.Por = Por;
  rt::IcbExplorer Icb(Opts);
  return Icb.explore(Test);
}

search::SearchResult runVmIcb(const vm::Program &Prog, unsigned MaxBound,
                              bool Por = false) {
  search::IcbSearch::Options Opts;
  Opts.UseStateCache = false;
  Opts.UseSleepSets = Por;
  Opts.Limits.MaxPreemptionBound = MaxBound;
  Opts.Limits.StopAtFirstBug = false;
  search::IcbSearch Search(Opts);
  vm::Interp VM(Prog);
  return Search.run(VM);
}

search::SearchResult runVmIcbParallel(const vm::Program &Prog,
                                      unsigned MaxBound, unsigned Jobs,
                                      bool Por = false) {
  search::ParallelIcbSearch::Options Opts;
  Opts.Jobs = Jobs;
  Opts.UseStateCache = false;
  Opts.UseSleepSets = Por;
  Opts.Limits.MaxPreemptionBound = MaxBound;
  Opts.Limits.StopAtFirstBug = false;
  search::ParallelIcbSearch Search(Opts);
  vm::Interp VM(Prog);
  return Search.run(VM);
}

/// Canonical (kind, message) -> minimal preemption count map of a bug
/// list, the signature bounded POR must preserve exactly.
template <typename BugList>
std::map<std::pair<int, std::string>, unsigned> bugSignature(const BugList &Bugs) {
  std::map<std::pair<int, std::string>, unsigned> Sig;
  for (const auto &B : Bugs) {
    std::pair<int, std::string> Key{static_cast<int>(B.Kind), B.Message};
    auto It = Sig.find(Key);
    if (It == Sig.end() || B.Preemptions < It->second)
      Sig[Key] = B.Preemptions;
  }
  return Sig;
}

TEST(CrossEngine, RegistryHasBothFormVariants) {
  // Bluetooth and the work-stealing queue carry both forms; if this
  // shrinks, the agreement tests below silently lose their subjects.
  EXPECT_GE(bothFormVariants().size(), 4u);
}

TEST(CrossEngine, SameMinimalPreemptionBound) {
  for (const BugVariant *B : bothFormVariants()) {
    SCOPED_TRACE(B->Label);
    rt::ExploreResult Rt = runRtIcb(B->MakeRt(), B->PaperBound, /*Jobs=*/1);
    search::SearchResult Vm = runVmIcb(B->MakeVm(), B->PaperBound);
    ASSERT_TRUE(Rt.foundBug());
    ASSERT_TRUE(Vm.foundBug());
    EXPECT_EQ(Rt.simplestBug()->Preemptions, B->PaperBound);
    EXPECT_EQ(Vm.simplestBug()->Preemptions, B->PaperBound);
  }
}

TEST(CrossEngine, NoExposureBelowPaperBound) {
  for (const BugVariant *B : bothFormVariants()) {
    if (B->PaperBound == 0)
      continue;
    SCOPED_TRACE(B->Label);
    EXPECT_FALSE(runRtIcb(B->MakeRt(), B->PaperBound - 1, 1).foundBug());
    EXPECT_FALSE(runVmIcb(B->MakeVm(), B->PaperBound - 1).foundBug());
  }
}

TEST(CrossEngine, RtPerBoundCountsInvariantAcrossJobs) {
  // The stateless executor caches no states, so sequential and parallel
  // drivers enumerate exactly the same executions per bound.
  for (const BugVariant *B : bothFormVariants()) {
    SCOPED_TRACE(B->Label);
    rt::ExploreResult Seq = runRtIcb(B->MakeRt(), B->PaperBound, 1);
    rt::ExploreResult Par = runRtIcb(B->MakeRt(), B->PaperBound, 3);
    expectSamePerBound(Seq.Stats.PerBound, Par.Stats.PerBound);
    EXPECT_EQ(Seq.Stats.Executions, Par.Stats.Executions);
    EXPECT_EQ(Seq.Stats.DistinctStates, Par.Stats.DistinctStates);
  }
}

TEST(CrossEngine, VmPerBoundCountsInvariantAcrossJobs) {
  for (const BugVariant *B : bothFormVariants()) {
    SCOPED_TRACE(B->Label);
    search::SearchResult Seq = runVmIcb(B->MakeVm(), B->PaperBound);
    search::SearchResult Par =
        runVmIcbParallel(B->MakeVm(), B->PaperBound, 3);
    expectSamePerBound(Seq.Stats.PerBound, Par.Stats.PerBound);
    EXPECT_EQ(Seq.Stats.Executions, Par.Stats.Executions);
    EXPECT_EQ(Seq.Stats.DistinctStates, Par.Stats.DistinctStates);
  }
}

// --- Bounded POR regressions -------------------------------------------
//
// Sleep sets must be *bound-exact*: pruning an interleaving is sound only
// if a covering interleaving with no more preemptions survives. The tests
// below assert the observable half of that contract over the whole seed
// registry: with POR on, every bug variant is still found, with the same
// (kind, message) set, each at the same minimal preemption count — on both
// executors — while never exploring more executions than POR off.

rt::ExploreResult runRtIcbFirstBug(const rt::TestCase &Test,
                                   unsigned MaxBound, bool Por) {
  rt::ExploreOptions Opts;
  Opts.Limits.MaxPreemptionBound = MaxBound;
  Opts.Limits.StopAtFirstBug = true;
  Opts.Jobs = 1;
  Opts.Por = Por;
  rt::IcbExplorer Icb(Opts);
  return Icb.explore(Test);
}

TEST(CrossEngine, PorFindsSameBugsAtSameMinimalBoundEverywhere) {
  // Every registry bug variant, both forms. Narrow benchmarks get the
  // strong check — identical (kind, message) -> minimal-preemptions map
  // over a full keep-going sweep of the paper bound. The 5-thread Dryad
  // harness is too wide to sweep exhaustively in a unit test; there ICB's
  // bound-ordering guarantee lets a stop-at-first run stand in: the first
  // exposure *is* a minimal one, so POR must reproduce its kind and count.
  for (const BenchmarkEntry &E : allBenchmarks()) {
    bool Sweep = E.DriverThreads <= 3;
    for (const BugVariant &B : E.Bugs) {
      SCOPED_TRACE(B.Label);
      if (B.MakeRt && Sweep) {
        rt::ExploreResult Off = runRtIcb(B.MakeRt(), B.PaperBound, 1);
        rt::ExploreResult On =
            runRtIcb(B.MakeRt(), B.PaperBound, 1, /*Por=*/true);
        EXPECT_EQ(bugSignature(Off.Bugs), bugSignature(On.Bugs))
            << "rt form: POR changed the bug set or a minimal bound";
        EXPECT_LE(On.Stats.Executions, Off.Stats.Executions);
      } else if (B.MakeRt) {
        rt::ExploreResult Off =
            runRtIcbFirstBug(B.MakeRt(), B.PaperBound, false);
        rt::ExploreResult On =
            runRtIcbFirstBug(B.MakeRt(), B.PaperBound, true);
        ASSERT_TRUE(Off.foundBug());
        ASSERT_TRUE(On.foundBug()) << "rt form: POR lost the bug";
        EXPECT_EQ(Off.simplestBug()->Kind, On.simplestBug()->Kind);
        EXPECT_EQ(Off.simplestBug()->Preemptions, B.PaperBound);
        EXPECT_EQ(On.simplestBug()->Preemptions, B.PaperBound)
            << "rt form: POR moved the minimal preemption bound";
      }
      if (B.MakeVm) {
        search::SearchResult Off = runVmIcb(B.MakeVm(), B.PaperBound);
        search::SearchResult On =
            runVmIcb(B.MakeVm(), B.PaperBound, /*Por=*/true);
        EXPECT_EQ(bugSignature(Off.Bugs), bugSignature(On.Bugs))
            << "vm form: POR changed the bug set or a minimal bound";
        EXPECT_LE(On.Stats.Executions, Off.Stats.Executions);
      }
    }
  }
}

TEST(CrossEngine, PorNoExposureBelowPaperBound) {
  // Waking slept threads too late could also push a bug *above* its bound;
  // sleeping too aggressively must never surface one *below* it.
  for (const BugVariant *B : bothFormVariants()) {
    if (B->PaperBound == 0)
      continue;
    SCOPED_TRACE(B->Label);
    EXPECT_FALSE(runRtIcb(B->MakeRt(), B->PaperBound - 1, 1, true).foundBug());
    EXPECT_FALSE(runVmIcb(B->MakeVm(), B->PaperBound - 1, true).foundBug());
  }
}

TEST(CrossEngine, RtPerBoundCountsInvariantAcrossJobsWithPor) {
  // Sleep sets travel inside work items, so the parallel driver prunes
  // exactly what the sequential one does.
  for (const BugVariant *B : bothFormVariants()) {
    SCOPED_TRACE(B->Label);
    rt::ExploreResult Seq = runRtIcb(B->MakeRt(), B->PaperBound, 1, true);
    rt::ExploreResult Par = runRtIcb(B->MakeRt(), B->PaperBound, 3, true);
    expectSamePerBound(Seq.Stats.PerBound, Par.Stats.PerBound);
    EXPECT_EQ(Seq.Stats.Executions, Par.Stats.Executions);
    EXPECT_EQ(Seq.Stats.DistinctStates, Par.Stats.DistinctStates);
    EXPECT_EQ(bugSignature(Seq.Bugs), bugSignature(Par.Bugs));
  }
}

TEST(CrossEngine, VmPerBoundCountsInvariantAcrossJobsWithPor) {
  for (const BugVariant *B : bothFormVariants()) {
    SCOPED_TRACE(B->Label);
    search::SearchResult Seq = runVmIcb(B->MakeVm(), B->PaperBound, true);
    search::SearchResult Par =
        runVmIcbParallel(B->MakeVm(), B->PaperBound, 3, true);
    expectSamePerBound(Seq.Stats.PerBound, Par.Stats.PerBound);
    EXPECT_EQ(Seq.Stats.Executions, Par.Stats.Executions);
    EXPECT_EQ(Seq.Stats.DistinctStates, Par.Stats.DistinctStates);
    EXPECT_EQ(bugSignature(Seq.Bugs), bugSignature(Par.Bugs));
  }
}

} // namespace
