//===- tests/dist_test.cpp - Distributed checking service tests -----------===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The distributed frontier-exchange subsystem (src/dist/), bottom up:
/// wire framing (including the adversarial decode table — a coordinator
/// accepts bytes from the network, so truncated, oversized, and garbage
/// frames must fail closed), protocol frame round-trips, and in-process
/// loopback coordinator/joiner runs whose merged results are asserted
/// identical to a local sequential run — including under joiner death,
/// heartbeat-timeout revocation, and a stop/resume split.
///
//===----------------------------------------------------------------------===//

#include "dist/Coordinator.h"
#include "dist/Net.h"
#include "dist/Protocol.h"
#include "dist/Wire.h"
#include "dist/Worker.h"
#include "search/BoundPolicy.h"
#include "search/Checker.h"
#include "session/Checkpoint.h"
#include "testutil/ResultChecks.h"
#include "testutil/TestPrograms.h"
#include <atomic>
#include <gtest/gtest.h>
#include <string>
#include <thread>
#include <vector>

using namespace icb;
using namespace icb::dist;
using icb::testutil::expectIdenticalResults;
using icb::testutil::expectSameDeterministicMetrics;
using icb::testutil::preemptionLadder;
using icb::testutil::racyCounter;
using session::JsonValue;

//===----------------------------------------------------------------------===//
// Wire framing
//===----------------------------------------------------------------------===//

namespace {

JsonValue sampleObject() {
  JsonValue V = JsonValue::object();
  V.set("kind", JsonValue::str("need_work"));
  V.set("n", JsonValue::number(42));
  return V;
}

/// A frame whose length prefix claims \p Len over \p Payload bytes.
std::string rawFrame(uint32_t Len, const std::string &Payload) {
  std::string Bytes;
  for (int I = 0; I != 4; ++I)
    Bytes.push_back(static_cast<char>((Len >> (8 * I)) & 0xff));
  Bytes += Payload;
  return Bytes;
}

} // namespace

TEST(Wire, EncodeDecodeRoundTrip) {
  std::string Bytes = encodeFrame(sampleObject());
  size_t Off = 0;
  JsonValue Out;
  std::string Error;
  ASSERT_EQ(decodeFrame(Bytes, Off, Out, &Error), DecodeStatus::Ok) << Error;
  EXPECT_EQ(Off, Bytes.size());
  EXPECT_EQ(frameKind(Out), "need_work");
  uint64_t N = 0;
  EXPECT_TRUE(Out.getU64("n", N));
  EXPECT_EQ(N, 42u);
}

TEST(Wire, TruncatedFramesNeedMore) {
  // Every strict prefix of a valid frame — mid-length-prefix and
  // mid-payload alike — is incomplete, never an error.
  std::string Bytes = encodeFrame(sampleObject());
  for (size_t Cut = 0; Cut != Bytes.size(); ++Cut) {
    std::string Partial = Bytes.substr(0, Cut);
    size_t Off = 0;
    JsonValue Out;
    EXPECT_EQ(decodeFrame(Partial, Off, Out, nullptr),
              DecodeStatus::NeedMore)
        << "cut at " << Cut;
    EXPECT_EQ(Off, 0u) << "cut at " << Cut;
  }
}

TEST(Wire, AdversarialFramesFailClosed) {
  struct Row {
    const char *Label;
    std::string Bytes;
  };
  const Row Table[] = {
      {"oversized length", rawFrame(MaxFrameBytes + 1, "")},
      {"huge length", rawFrame(0xffffffffu, "")},
      {"garbage payload", rawFrame(4, "\x01\x02\x03\x04")},
      {"truncating JSON", rawFrame(8, "{\"kind\":\"x\"}")},
      {"bare value payload", rawFrame(4, "true")},
      {"empty payload", rawFrame(0, "")},
  };
  for (const Row &R : Table) {
    size_t Off = 0;
    JsonValue Out;
    std::string Error;
    EXPECT_EQ(decodeFrame(R.Bytes, Off, Out, &Error), DecodeStatus::Error)
        << R.Label;
  }
}

TEST(Wire, FrameReaderReassemblesByteByByte) {
  std::string Bytes = encodeFrame(sampleObject()) +
                      encodeFrame(heartbeatFrame());
  FrameReader Reader;
  std::vector<std::string> Kinds;
  for (char C : Bytes) {
    Reader.feed(&C, 1);
    JsonValue Out;
    while (Reader.next(Out, nullptr) == DecodeStatus::Ok)
      Kinds.push_back(frameKind(Out));
  }
  ASSERT_EQ(Kinds.size(), 2u);
  EXPECT_EQ(Kinds[0], "need_work");
  EXPECT_EQ(Kinds[1], "heartbeat");
}

TEST(Wire, FrameReaderPoisonsOnError) {
  FrameReader Reader;
  std::string Bad = rawFrame(4, "\x01\x02\x03\x04");
  Reader.feed(Bad.data(), Bad.size());
  JsonValue Out;
  EXPECT_EQ(Reader.next(Out, nullptr), DecodeStatus::Error);
  // Feeding a perfectly valid frame afterwards must not resynchronize.
  std::string Good = encodeFrame(heartbeatFrame());
  Reader.feed(Good.data(), Good.size());
  EXPECT_EQ(Reader.next(Out, nullptr), DecodeStatus::Error);
}

//===----------------------------------------------------------------------===//
// Protocol frames
//===----------------------------------------------------------------------===//

namespace {

session::CheckpointMeta sampleMeta() {
  session::CheckpointMeta Meta;
  Meta.Benchmark = "racy";
  Meta.Bug = "default";
  Meta.Form = "vm";
  Meta.Strategy = "icb";
  Meta.Bound = "preemption";
  Meta.Limits.MaxPreemptionBound = 2;
  return Meta;
}

void removeKey(JsonValue &V, const std::string &Key) {
  for (auto It = V.Obj.begin(); It != V.Obj.end(); ++It) {
    if (It->first == Key) {
      V.Obj.erase(It);
      return;
    }
  }
}

search::SavedWorkItem sampleItem(uint32_t Tag) {
  search::SavedWorkItem It;
  It.Prefix = {0, Tag, 1};
  It.Next = Tag % 3;
  return It;
}

} // namespace

TEST(Protocol, HelloRoundTrip) {
  JsonValue V = helloFrame(ProtocolVersion,
                           session::checkpointFormatVersion(),
                           /*Reconnect=*/true);
  EXPECT_EQ(frameKind(V), "hello");
  uint64_t Protocol = 0, Format = 0;
  ASSERT_TRUE(helloFromJson(V, Protocol, Format));
  EXPECT_EQ(Protocol, ProtocolVersion);
  EXPECT_EQ(Format, session::checkpointFormatVersion());
  bool Reconnect = false;
  EXPECT_TRUE(V.getBool("reconnect", Reconnect));
  EXPECT_TRUE(Reconnect);
}

TEST(Protocol, HelloOkRoundTrip) {
  JsonValue V = helloOkFrame(sampleMeta(), 250, 1250);
  EXPECT_EQ(frameKind(V), "hello_ok");
  session::CheckpointMeta Meta;
  uint64_t Heartbeat = 0, Revoke = 0;
  ASSERT_TRUE(helloOkFromJson(V, Meta, Heartbeat, Revoke));
  EXPECT_EQ(Meta.Benchmark, "racy");
  EXPECT_EQ(Meta.Form, "vm");
  EXPECT_EQ(Meta.Strategy, "icb");
  EXPECT_EQ(Meta.Bound, "preemption");
  EXPECT_EQ(Meta.Limits.MaxPreemptionBound, 2u);
  EXPECT_EQ(Heartbeat, 250u);
  EXPECT_EQ(Revoke, 1250u);
}

TEST(Protocol, RefuseRoundTrip) {
  JsonValue V = refuseFrame("version mismatch: want 1");
  EXPECT_EQ(frameKind(V), "refuse");
  std::string Reason;
  ASSERT_TRUE(refuseFromJson(V, Reason));
  EXPECT_EQ(Reason, "version mismatch: want 1");
}

TEST(Protocol, LeaseRoundTrip) {
  LeaseRequest Req;
  Req.Bound = 3;
  Req.Items = {sampleItem(7), sampleItem(8)};
  JsonValue V = leaseFrame(11, Req);
  EXPECT_EQ(frameKind(V), "lease");
  uint64_t Id = 0;
  LeaseRequest Out;
  ASSERT_TRUE(leaseFromJson(V, Id, Out));
  EXPECT_EQ(Id, 11u);
  EXPECT_FALSE(Out.Roots);
  EXPECT_EQ(Out.Bound, 3u);
  ASSERT_EQ(Out.Items.size(), 2u);
  EXPECT_EQ(Out.Items[0].Prefix, Req.Items[0].Prefix);
  EXPECT_EQ(Out.Items[1].Next, Req.Items[1].Next);

  LeaseRequest Roots;
  Roots.Roots = true;
  uint64_t RootsId = 0;
  LeaseRequest RootsOut;
  ASSERT_TRUE(leaseFromJson(leaseFrame(1, Roots), RootsId, RootsOut));
  EXPECT_TRUE(RootsOut.Roots);
  EXPECT_TRUE(RootsOut.Items.empty());
}

TEST(Protocol, ResultRoundTrip) {
  LeaseResult Res;
  Res.Completed = true;
  Res.Stats.Executions = 17;
  Res.Stats.TotalSteps = 230;
  Res.Stats.StepsPerExecution.observe(9);
  Res.Stats.PreemptionsPerExecution.observe(1);
  Res.Stats.PreemptionHistogram.increment(1, 17);
  search::Bug B;
  B.Kind = search::BugKind::AssertFailure;
  B.Message = "count == N";
  B.Preemptions = 1;
  B.Steps = 12;
  Res.Bugs.push_back(B);
  Res.Deferred = {sampleItem(3)};
  Res.Remaining = {sampleItem(4), sampleItem(5)};
  Res.SeenDigests = {10, 20, 30};
  Res.TerminalDigests = {40};
  Res.ItemDigests = {50, 60};
  Res.Metrics.Counters.assign(obs::NumCounters, 0);
  Res.Metrics.Counters[static_cast<size_t>(obs::Counter::SeenMiss)] = 3;

  JsonValue V = resultFrame(23, Res);
  EXPECT_EQ(frameKind(V), "result");
  uint64_t Id = 0;
  LeaseResult Out;
  ASSERT_TRUE(resultFromJson(V, Id, Out));
  EXPECT_EQ(Id, 23u);
  EXPECT_TRUE(Out.Completed);
  EXPECT_EQ(Out.Stats.Executions, 17u);
  EXPECT_EQ(Out.Stats.TotalSteps, 230u);
  EXPECT_EQ(Out.Stats.PreemptionHistogram.at(1), 17u);
  ASSERT_EQ(Out.Bugs.size(), 1u);
  EXPECT_EQ(Out.Bugs[0].Kind, search::BugKind::AssertFailure);
  EXPECT_EQ(Out.Bugs[0].Message, "count == N");
  EXPECT_EQ(Out.Deferred.size(), 1u);
  EXPECT_EQ(Out.Remaining.size(), 2u);
  EXPECT_EQ(Out.SeenDigests, Res.SeenDigests);
  EXPECT_EQ(Out.TerminalDigests, Res.TerminalDigests);
  EXPECT_EQ(Out.ItemDigests, Res.ItemDigests);
  EXPECT_EQ(
      Out.Metrics.Counters[static_cast<size_t>(obs::Counter::SeenMiss)], 3u);
}

TEST(Protocol, DecodersRejectMalformedFrames) {
  // The adversarial table for the typed layer: a versioned peer can still
  // send structurally wrong frames; every decoder must refuse rather than
  // default-fill.
  struct Row {
    const char *Label;
    JsonValue Frame;
  };
  std::vector<Row> Table;
  Table.push_back({"no kind at all", JsonValue::object()});
  {
    JsonValue V = JsonValue::object();
    V.set("kind", JsonValue::number(7));
    Table.push_back({"non-string kind", std::move(V)});
  }
  {
    JsonValue V = helloFrame(ProtocolVersion, 5);
    removeKey(V, "protocol");
    Table.push_back({"hello without protocol", std::move(V)});
  }
  {
    JsonValue V = helloFrame(ProtocolVersion, 5);
    V.set("format", JsonValue::str("five"));
    Table.push_back({"hello with string format", std::move(V)});
  }
  {
    JsonValue V = leaseFrame(1, LeaseRequest());
    removeKey(V, "id");
    Table.push_back({"lease without id", std::move(V)});
  }
  {
    JsonValue V = leaseFrame(1, LeaseRequest());
    V.set("items", JsonValue::str("not an array"));
    Table.push_back({"lease with scalar items", std::move(V)});
  }
  {
    JsonValue V = resultFrame(1, LeaseResult());
    removeKey(V, "stats");
    Table.push_back({"result without stats", std::move(V)});
  }
  {
    JsonValue V = resultFrame(1, LeaseResult());
    V.set("id", JsonValue::boolean(true));
    Table.push_back({"result with boolean id", std::move(V)});
  }
  {
    JsonValue V = helloOkFrame(sampleMeta(), 1, 1);
    removeKey(V, "meta");
    Table.push_back({"hello_ok without meta", std::move(V)});
  }
  {
    JsonValue V = JsonValue::object();
    V.set("kind", JsonValue::str("refuse"));
    Table.push_back({"refuse without reason", std::move(V)});
  }

  for (Row &R : Table) {
    uint64_t U1 = 0, U2 = 0;
    std::string S;
    session::CheckpointMeta Meta;
    LeaseRequest Req;
    LeaseResult Res;
    EXPECT_FALSE(helloFromJson(R.Frame, U1, U2) &&
                 frameKind(R.Frame) == "hello")
        << R.Label;
    EXPECT_FALSE(helloOkFromJson(R.Frame, Meta, U1, U2) &&
                 frameKind(R.Frame) == "hello_ok")
        << R.Label;
    EXPECT_FALSE(refuseFromJson(R.Frame, S) &&
                 frameKind(R.Frame) == "refuse")
        << R.Label;
    EXPECT_FALSE(leaseFromJson(R.Frame, U1, Req) &&
                 frameKind(R.Frame) == "lease")
        << R.Label;
    EXPECT_FALSE(resultFromJson(R.Frame, U1, Res) &&
                 frameKind(R.Frame) == "result")
        << R.Label;
  }
}

//===----------------------------------------------------------------------===//
// Loopback coordinator/joiner runs
//===----------------------------------------------------------------------===//

namespace {

/// The test-side lease runner: exactly what tools/common/DistDrive.cpp
/// plugs in for the model-VM form — fresh policy, caches, and metrics
/// registry per lease.
LeaseRunner makeRunner(const vm::Program &Prog,
                       const session::CheckpointMeta &Meta,
                       unsigned Jobs = 1) {
  return [&Prog, Meta, Jobs](const LeaseRequest &Req) {
    obs::MetricsRegistry Reg;
    std::unique_ptr<search::BoundPolicy> Policy = search::makeBoundPolicy(
        {Meta.Bound, Meta.Limits.MaxPreemptionBound, Meta.VarBound});
    search::EngineSnapshot Synth;
    const search::EngineSnapshot *Resume = nullptr;
    if (!Req.Roots) {
      Synth.Bound = Req.Bound;
      Synth.CurrentQueue = Req.Items;
      Resume = &Synth;
    }
    search::SearchOptions O;
    O.Kind = search::StrategyKind::Icb;
    O.Policy = Policy.get();
    O.UseSleepSets = Meta.Por;
    O.Jobs = Req.Roots ? 1 : Jobs;
    O.Limits.StopAtFirstBug = Meta.Limits.StopAtFirstBug;
    O.Resume = Resume;
    O.Metrics = &Reg;
    O.Lease =
        Req.Roots ? search::LeaseMode::Roots : search::LeaseMode::Drain;
    search::SearchResult R = search::checkProgram(Prog, O);

    LeaseResult Res;
    Res.Completed = R.Stats.Completed;
    Res.Stats = std::move(R.Stats);
    Res.Bugs = std::move(R.Bugs);
    Res.Deferred = std::move(R.LeaseDeferred);
    Res.Remaining = std::move(R.LeaseCurrent);
    Res.SeenDigests = std::move(R.LeaseSeen);
    Res.TerminalDigests = std::move(R.LeaseTerminal);
    Res.ItemDigests = std::move(R.LeaseItems);
    Res.Metrics = Reg.snapshot();
    return Res;
  };
}

/// The local sequential reference the distributed result must match.
search::SearchResult runSequential(const vm::Program &Prog,
                                   const session::CheckpointMeta &Meta,
                                   obs::MetricsRegistry *Reg) {
  std::unique_ptr<search::BoundPolicy> Policy = search::makeBoundPolicy(
      {Meta.Bound, Meta.Limits.MaxPreemptionBound, Meta.VarBound});
  search::SearchOptions O;
  O.Kind = search::StrategyKind::Icb;
  O.Policy = Policy.get();
  O.Jobs = 1;
  O.Limits.StopAtFirstBug = Meta.Limits.StopAtFirstBug;
  O.Metrics = Reg;
  return search::checkProgram(Prog, O);
}

/// Both sides canonicalize bug reports (lease mode forces canonical mode
/// in the engines); the sequential reference reports in discovery order,
/// so fold it through the same canonical map before comparing.
void canonicalizeBugs(search::SearchResult &R) {
  search::CanonicalBugMap Map;
  for (search::Bug &B : R.Bugs)
    search::canonicalMergeBug(Map, std::move(B));
  R.Bugs = search::takeCanonicalBugs(std::move(Map));
}

struct DistRun {
  search::SearchResult Result;
  obs::MetricsSnapshot Metrics;
  std::vector<int> WorkerRcs;
};

/// Hosts an in-process coordinator and \p Joiners worker threads over
/// loopback; returns the merged result once the frontier drains.
DistRun runDistributed(
    const vm::Program &Prog, const session::CheckpointMeta &Meta,
    unsigned Joiners, unsigned JobsEach = 1,
    const std::function<void(CoordinatorOptions &)> &Tweak = {},
    const std::function<void(uint16_t)> &BeforeWorkers = {}) {
  obs::MetricsRegistry Reg;
  CoordinatorOptions CO;
  CO.Bind = "127.0.0.1:0";
  CO.Meta = Meta;
  CO.Limits.StopAtFirstBug = Meta.Limits.StopAtFirstBug;
  CO.FrontierBound = Meta.Limits.MaxPreemptionBound;
  CO.LeaseItems = 3; // Small batches: many leases, many merges.
  CO.Metrics = &Reg;
  if (Tweak)
    Tweak(CO);

  Coordinator Coord(CO);
  std::string Err;
  EXPECT_TRUE(Coord.start(&Err)) << Err;
  uint16_t Port = Coord.port();

  DistRun Out;
  Out.WorkerRcs.assign(Joiners, -1);
  std::vector<std::thread> Threads;
  std::thread Serve([&] { Out.Result = Coord.run(); });
  if (BeforeWorkers)
    BeforeWorkers(Port);
  for (unsigned I = 0; I != Joiners; ++I)
    Threads.emplace_back([&, I] {
      WorkerOptions WO;
      WO.Connect = "127.0.0.1:" + std::to_string(Port);
      WO.Runner = makeRunner(Prog, Meta, JobsEach);
      Worker W(WO);
      Out.WorkerRcs[I] = W.run();
    });
  Serve.join();
  for (std::thread &T : Threads)
    T.join();
  Out.Metrics = Reg.snapshot();
  return Out;
}

/// A hand-driven joiner speaking raw frames, for the fault-injection and
/// version tests (the real Worker never misbehaves).
struct RawClient {
  int Fd = -1;
  FrameReader Reader;

  ~RawClient() { close(); }

  bool connect(uint16_t Port) {
    Endpoint Ep;
    Ep.Host = "127.0.0.1";
    Ep.Port = Port;
    std::string Err;
    Fd = connectTo(Ep, &Err);
    return Fd >= 0;
  }

  bool send(const JsonValue &Frame) {
    return sendAll(Fd, encodeFrame(Frame));
  }

  /// Blocking read of the next frame; false on EOF or protocol error.
  bool read(JsonValue &Out) {
    while (true) {
      DecodeStatus S = Reader.next(Out, nullptr);
      if (S == DecodeStatus::Ok)
        return true;
      if (S == DecodeStatus::Error)
        return false;
      std::string Bytes;
      if (!recvSome(Fd, Bytes))
        return false;
      Reader.feed(Bytes.data(), Bytes.size());
    }
  }

  void close() {
    if (Fd >= 0) {
      closeFd(Fd);
      Fd = -1;
    }
  }
};

uint64_t counterOf(const obs::MetricsSnapshot &M, obs::Counter C) {
  size_t I = static_cast<size_t>(C);
  return I < M.Counters.size() ? M.Counters[I] : 0;
}

} // namespace

TEST(DistLoopback, MatchesSequentialSingleJoiner) {
  vm::Program Prog = racyCounter(3);
  session::CheckpointMeta Meta = sampleMeta();
  obs::MetricsRegistry RefReg;
  search::SearchResult Ref = runSequential(Prog, Meta, &RefReg);
  canonicalizeBugs(Ref);
  ASSERT_TRUE(Ref.foundBug());

  DistRun D = runDistributed(Prog, Meta, 1);
  EXPECT_EQ(D.WorkerRcs[0], WorkerDone);
  expectIdenticalResults(Ref, D.Result);
  expectSameDeterministicMetrics(RefReg.snapshot(), D.Metrics);
}

TEST(DistLoopback, MatchesSequentialAcrossJoinerCounts) {
  vm::Program Prog = racyCounter(3);
  session::CheckpointMeta Meta = sampleMeta();
  obs::MetricsRegistry RefReg;
  search::SearchResult Ref = runSequential(Prog, Meta, &RefReg);
  canonicalizeBugs(Ref);

  for (unsigned Joiners : {2u, 4u}) {
    DistRun D = runDistributed(Prog, Meta, Joiners, /*JobsEach=*/2);
    for (int Rc : D.WorkerRcs)
      EXPECT_EQ(Rc, WorkerDone) << Joiners << " joiners";
    expectIdenticalResults(Ref, D.Result);
    expectSameDeterministicMetrics(RefReg.snapshot(), D.Metrics);
  }
}

TEST(DistLoopback, CleanProgramCompletes) {
  vm::Program Prog = preemptionLadder(3); // Needs 3; bound 2 finds nothing.
  session::CheckpointMeta Meta = sampleMeta();
  obs::MetricsRegistry RefReg;
  search::SearchResult Ref = runSequential(Prog, Meta, &RefReg);
  ASSERT_FALSE(Ref.foundBug());

  DistRun D = runDistributed(Prog, Meta, 2);
  EXPECT_FALSE(D.Result.foundBug());
  expectIdenticalResults(Ref, D.Result);
  expectSameDeterministicMetrics(RefReg.snapshot(), D.Metrics);
}

TEST(DistLoopback, StopAtFirstBugStopsLeasing) {
  vm::Program Prog = racyCounter(3);
  session::CheckpointMeta Meta = sampleMeta();
  Meta.Limits.StopAtFirstBug = true;

  DistRun D = runDistributed(Prog, Meta, 2);
  EXPECT_TRUE(D.Result.foundBug());
  EXPECT_FALSE(D.Result.Stats.Completed);
  EXPECT_EQ(D.Result.simplestBug()->Preemptions, 1u);
}

TEST(DistLoopback, ExecutionLimitStopsLeasing) {
  vm::Program Prog = racyCounter(3);
  session::CheckpointMeta Meta = sampleMeta();
  DistRun D = runDistributed(Prog, Meta, 2, 1, [](CoordinatorOptions &CO) {
    CO.Limits.MaxExecutions = 5;
  });
  EXPECT_GE(D.Result.Stats.Executions, 5u);
  EXPECT_FALSE(D.Result.Stats.Completed);
}

TEST(DistFaults, EofMidLeaseRevokesAndLosesNothing) {
  // An "evil" joiner executes the roots lease correctly (so the frontier
  // is seeded), takes the first drain lease, and drops the connection
  // without answering. The coordinator must revoke, requeue the items
  // unmerged, and let an honest joiner finish to the exact sequential
  // result.
  vm::Program Prog = racyCounter(3);
  session::CheckpointMeta Meta = sampleMeta();
  obs::MetricsRegistry RefReg;
  search::SearchResult Ref = runSequential(Prog, Meta, &RefReg);
  canonicalizeBugs(Ref);

  LeaseRunner Runner = makeRunner(Prog, Meta);
  DistRun D = runDistributed(
      Prog, Meta, /*Joiners=*/1, /*JobsEach=*/1, /*Tweak=*/{},
      /*BeforeWorkers=*/[&](uint16_t Port) {
        RawClient Evil;
        ASSERT_TRUE(Evil.connect(Port));
        ASSERT_TRUE(Evil.send(helloFrame(
            ProtocolVersion, session::checkpointFormatVersion())));
        JsonValue Frame;
        ASSERT_TRUE(Evil.read(Frame));
        ASSERT_EQ(frameKind(Frame), "hello_ok");
        // Seed honestly so the next lease is a drain lease.
        ASSERT_TRUE(Evil.send(needWorkFrame()));
        ASSERT_TRUE(Evil.read(Frame));
        uint64_t Id = 0;
        LeaseRequest Req;
        ASSERT_TRUE(leaseFromJson(Frame, Id, Req));
        ASSERT_TRUE(Req.Roots);
        ASSERT_TRUE(Evil.send(resultFrame(Id, Runner(Req))));
        // Take a drain lease and die mid-flight.
        ASSERT_TRUE(Evil.send(needWorkFrame()));
        ASSERT_TRUE(Evil.read(Frame));
        ASSERT_TRUE(leaseFromJson(Frame, Id, Req));
        ASSERT_FALSE(Req.Roots);
        ASSERT_FALSE(Req.Items.empty());
        Evil.close();
      });

  EXPECT_EQ(D.WorkerRcs[0], WorkerDone);
  expectIdenticalResults(Ref, D.Result);
  expectSameDeterministicMetrics(RefReg.snapshot(), D.Metrics);
  EXPECT_GE(counterOf(D.Metrics, obs::Counter::DistLeaseRevoked), 1u);
}

TEST(DistFaults, SilentJoinerIsRevokedByHeartbeatTimeout) {
  // A joiner that takes the roots lease and then goes silent — connection
  // open, no heartbeats — must be revoked after RevokeMillis, the roots
  // lease re-issued, and the run finish exactly.
  vm::Program Prog = racyCounter(2);
  session::CheckpointMeta Meta = sampleMeta();
  obs::MetricsRegistry RefReg;
  search::SearchResult Ref = runSequential(Prog, Meta, &RefReg);
  canonicalizeBugs(Ref);

  RawClient Silent;
  DistRun D = runDistributed(
      Prog, Meta, /*Joiners=*/1, /*JobsEach=*/1,
      [](CoordinatorOptions &CO) {
        CO.HeartbeatMillis = 50;
        CO.RevokeMillis = 200;
      },
      /*BeforeWorkers=*/[&](uint16_t Port) {
        ASSERT_TRUE(Silent.connect(Port));
        ASSERT_TRUE(Silent.send(helloFrame(
            ProtocolVersion, session::checkpointFormatVersion())));
        JsonValue Frame;
        ASSERT_TRUE(Silent.read(Frame));
        ASSERT_EQ(frameKind(Frame), "hello_ok");
        ASSERT_TRUE(Silent.send(needWorkFrame()));
        ASSERT_TRUE(Silent.read(Frame));
        ASSERT_EQ(frameKind(Frame), "lease");
        // ... and say nothing more.
      });

  EXPECT_EQ(D.WorkerRcs[0], WorkerDone);
  expectIdenticalResults(Ref, D.Result);
  expectSameDeterministicMetrics(RefReg.snapshot(), D.Metrics);
  EXPECT_GE(counterOf(D.Metrics, obs::Counter::DistLeaseRevoked), 1u);
}

TEST(DistFaults, VersionMismatchIsRefused) {
  vm::Program Prog = racyCounter(2);
  session::CheckpointMeta Meta = sampleMeta();
  DistRun D = runDistributed(
      Prog, Meta, /*Joiners=*/1, /*JobsEach=*/1, /*Tweak=*/{},
      /*BeforeWorkers=*/[&](uint16_t Port) {
        // Wrong protocol number.
        {
          RawClient C;
          ASSERT_TRUE(C.connect(Port));
          ASSERT_TRUE(C.send(helloFrame(
              ProtocolVersion + 1, session::checkpointFormatVersion())));
          JsonValue Frame;
          ASSERT_TRUE(C.read(Frame));
          EXPECT_EQ(frameKind(Frame), "refuse");
          std::string Reason;
          ASSERT_TRUE(refuseFromJson(Frame, Reason));
          EXPECT_NE(Reason.find("version mismatch"), std::string::npos);
          // The refusal is final: the coordinator hangs up.
          EXPECT_FALSE(C.read(Frame));
        }
        // Wrong checkpoint format number.
        {
          RawClient C;
          ASSERT_TRUE(C.connect(Port));
          ASSERT_TRUE(C.send(helloFrame(
              ProtocolVersion, session::checkpointFormatVersion() + 1)));
          JsonValue Frame;
          ASSERT_TRUE(C.read(Frame));
          EXPECT_EQ(frameKind(Frame), "refuse");
        }
        // A first frame that is not hello at all: dropped without reply.
        {
          RawClient C;
          ASSERT_TRUE(C.connect(Port));
          ASSERT_TRUE(C.send(needWorkFrame()));
          JsonValue Frame;
          EXPECT_FALSE(C.read(Frame));
        }
      });
  // The refused clients must not have disturbed the honest run.
  EXPECT_EQ(D.WorkerRcs[0], WorkerDone);
  EXPECT_TRUE(D.Result.foundBug());
}

TEST(DistFaults, WorkerExhaustsConnectAttempts) {
  // Find a port with nothing listening by binding one and closing it.
  std::string Err;
  Endpoint Ep;
  Ep.Host = "127.0.0.1";
  int Fd = listenOn(Ep, &Err);
  ASSERT_GE(Fd, 0) << Err;
  uint16_t Port = boundPort(Fd);
  closeFd(Fd);

  WorkerOptions WO;
  WO.Connect = "127.0.0.1:" + std::to_string(Port);
  WO.MaxConnectAttempts = 2;
  WO.BackoffBaseMillis = 1;
  WO.Runner = [](const LeaseRequest &) { return LeaseResult(); };
  Worker W(WO);
  EXPECT_EQ(W.run(), WorkerNetFail);
  EXPECT_FALSE(W.error().empty());
}

TEST(DistFaults, WorkerAdoptRefusalExitsTwo) {
  vm::Program Prog = racyCounter(2);
  session::CheckpointMeta Meta = sampleMeta();
  DistRun D = runDistributed(
      Prog, Meta, /*Joiners=*/1, /*JobsEach=*/1, /*Tweak=*/{},
      /*BeforeWorkers=*/[&](uint16_t Port) {
        WorkerOptions WO;
        WO.Connect = "127.0.0.1:" + std::to_string(Port);
        WO.OnAdopt = [](const session::CheckpointMeta &, std::string *E) {
          *E = "benchmark not available on this joiner";
          return false;
        };
        WO.Runner = [](const LeaseRequest &) { return LeaseResult(); };
        Worker W(WO);
        EXPECT_EQ(W.run(), WorkerRefused);
        EXPECT_EQ(W.error(), "benchmark not available on this joiner");
      });
  EXPECT_EQ(D.WorkerRcs[0], WorkerDone);
  EXPECT_TRUE(D.Result.foundBug());
}

//===----------------------------------------------------------------------===//
// Stop / resume
//===----------------------------------------------------------------------===//

namespace {

/// Requests a cooperative stop once the merged execution count reaches a
/// threshold, and keeps the last resumable snapshot.
struct StopCapture : search::EngineObserver {
  uint64_t Threshold;
  std::atomic<bool> Stop{false};
  search::EngineSnapshot Snap;
  bool HaveResumable = false;

  explicit StopCapture(uint64_t Threshold) : Threshold(Threshold) {}

  bool checkpointDue(uint64_t Executions) override {
    if (Executions >= Threshold)
      Stop.store(true);
    return false;
  }
  bool stopRequested() override { return Stop.load(); }
  void onCheckpoint(const search::EngineSnapshot &S) override {
    if (!S.Final) {
      Snap = S;
      HaveResumable = true;
    }
  }
};

} // namespace

TEST(DistResume, StoppedServeResumesToIdenticalResult) {
  vm::Program Prog = racyCounter(3);
  session::CheckpointMeta Meta = sampleMeta();
  obs::MetricsRegistry RefReg;
  search::SearchResult Ref = runSequential(Prog, Meta, &RefReg);
  canonicalizeBugs(Ref);

  // Segment 1: stop after the first merged executions and capture the
  // resumable snapshot (outstanding leases folded back by the
  // coordinator).
  StopCapture Observer(1);
  DistRun First = runDistributed(
      Prog, Meta, /*Joiners=*/2, /*JobsEach=*/1,
      [&](CoordinatorOptions &CO) {
        CO.LeaseItems = 2;
        CO.Observer = &Observer;
      });
  ASSERT_TRUE(First.Result.Interrupted);
  ASSERT_TRUE(Observer.HaveResumable);
  ASSERT_LT(First.Result.Stats.Executions, Ref.Stats.Executions);

  // Segment 2: a fresh coordinator resumes from the snapshot; fresh
  // joiners finish the run.
  DistRun Second = runDistributed(
      Prog, Meta, /*Joiners=*/2, /*JobsEach=*/1,
      [&](CoordinatorOptions &CO) {
        CO.LeaseItems = 2;
        CO.Resume = &Observer.Snap;
      });
  for (int Rc : Second.WorkerRcs)
    EXPECT_EQ(Rc, WorkerDone);
  EXPECT_FALSE(Second.Result.Interrupted);
  expectIdenticalResults(Ref, Second.Result);
  expectSameDeterministicMetrics(RefReg.snapshot(), Second.Metrics);
}
