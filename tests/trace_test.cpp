//===- tests/trace_test.cpp - Trace layer unit tests -----------------------===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//

#include "trace/Fingerprint.h"
#include "trace/Schedule.h"
#include "trace/TraceWriter.h"
#include "trace/VectorClock.h"
#include <gtest/gtest.h>

using namespace icb;
using namespace icb::trace;

namespace {

TEST(VectorClockTest, TickAndGet) {
  VectorClock C(3);
  EXPECT_EQ(C.get(0), 0u);
  C.tick(0);
  C.tick(0);
  C.tick(2);
  EXPECT_EQ(C.get(0), 2u);
  EXPECT_EQ(C.get(1), 0u);
  EXPECT_EQ(C.get(2), 1u);
}

TEST(VectorClockTest, JoinTakesPointwiseMax) {
  VectorClock A(3), B(3);
  A.tick(0);
  A.tick(0);
  B.tick(1);
  A.join(B);
  EXPECT_EQ(A.get(0), 2u);
  EXPECT_EQ(A.get(1), 1u);
}

TEST(VectorClockTest, LeqIsPartialOrder) {
  VectorClock A(2), B(2);
  EXPECT_TRUE(A.leq(B));
  A.tick(0);
  EXPECT_FALSE(A.leq(B));
  EXPECT_TRUE(B.leq(A));
  B.tick(1);
  EXPECT_FALSE(A.leq(B));
  EXPECT_FALSE(B.leq(A)); // Incomparable.
}

TEST(VectorClockTest, HashAndStr) {
  VectorClock A(3), B(3);
  EXPECT_EQ(A.hash(), B.hash());
  A.tick(1);
  EXPECT_NE(A.hash(), B.hash());
  EXPECT_EQ(A.str(), "<0,1,0>");
}

TEST(FingerprintTest, InterleavingInvariance) {
  // Two threads touching different sync vars: both orders equivalent.
  FingerprintBuilder F1(2), F2(2);
  F1.addStep(0, 10, true, 1);
  F1.addStep(1, 20, true, 1);
  F2.addStep(1, 20, true, 1);
  F2.addStep(0, 10, true, 1);
  EXPECT_EQ(F1.digest(), F2.digest());
}

TEST(FingerprintTest, ConflictOrderMatters) {
  // Same sync var: the access order is part of the happens-before.
  FingerprintBuilder F1(2), F2(2);
  F1.addStep(0, 10, true, 1);
  F1.addStep(1, 10, true, 1);
  F2.addStep(1, 10, true, 1);
  F2.addStep(0, 10, true, 1);
  EXPECT_NE(F1.digest(), F2.digest());
}

TEST(FingerprintTest, DataStepsOrderedOnlyByThread) {
  // Data steps on the same variable by different threads do not order
  // each other; swapping them keeps the digest.
  FingerprintBuilder F1(2), F2(2);
  F1.addStep(0, 10, false, 0);
  F1.addStep(1, 10, false, 0);
  F2.addStep(1, 10, false, 0);
  F2.addStep(0, 10, false, 0);
  EXPECT_EQ(F1.digest(), F2.digest());
}

TEST(FingerprintTest, SyncCreatesCrossThreadOrder) {
  // t0: var A; sync M. t1: sync M; var A. Reordering the sync ops changes
  // the partial order and hence the digest.
  FingerprintBuilder F1(2), F2(2);
  F1.addStep(0, 10, true, 1); // t0 syncs M first.
  F1.addStep(1, 10, true, 1);
  F1.addStep(1, 99, true, 2);
  F2.addStep(1, 10, true, 1); // t1 syncs M first.
  F2.addStep(1, 99, true, 2);
  F2.addStep(0, 10, true, 1);
  EXPECT_NE(F1.digest(), F2.digest());
}

TEST(FingerprintTest, StepMultiplicityCounts) {
  FingerprintBuilder F1(1), F2(1);
  F1.addStep(0, 10, true, 1);
  F2.addStep(0, 10, true, 1);
  F2.addStep(0, 10, true, 1);
  EXPECT_NE(F1.digest(), F2.digest());
}

TEST(ScheduleTest, PreemptionCounting) {
  Schedule S;
  S.append(0, false, false);
  S.append(1, true, true);
  S.append(1, false, false);
  S.append(0, false, true);
  EXPECT_EQ(S.length(), 4u);
  EXPECT_EQ(S.preemptions(), 1u);
  EXPECT_EQ(S.contextSwitches(), 2u);
}

TEST(ScheduleTest, StrAndParseRoundTrip) {
  Schedule S;
  S.append(0, false, false);
  S.append(2, true, true);
  S.append(1, false, true);
  std::string Text = S.str();
  EXPECT_EQ(Text, "0 2* 1^");
  Schedule Parsed;
  ASSERT_TRUE(Schedule::parse(Text, Parsed));
  EXPECT_TRUE(S == Parsed);
}

TEST(ScheduleTest, ParseRejectsGarbage) {
  Schedule S;
  EXPECT_FALSE(Schedule::parse("1 x 2", S));
  EXPECT_FALSE(Schedule::parse("*", S));
}

TEST(ScheduleTest, ParseRejectsMalformedTokens) {
  // parse() guards checkpoint and .icbrepro loading, so corrupt tokens
  // must be rejected outright, never silently truncated or wrapped.
  const char *Bad[] = {
      "^",          // bare marker
      "1**",        // doubled marker
      "1^*",        // both markers
      "*1",         // marker before digits
      "+1",         // sign prefix
      "-1",         // negative
      "1.5",        // fraction
      "0x1f",       // hex
      "1 2 3x",     // bad trailing token
      "4294967296", // Tid past UINT32_MAX
      "99999999999999999999", // past UINT64_MAX too
  };
  for (const char *Text : Bad) {
    SCOPED_TRACE(Text);
    Schedule S;
    S.append(7, false, false); // Rejection must also clear stale state.
    EXPECT_FALSE(Schedule::parse(Text, S));
    EXPECT_TRUE(S.empty());
  }
}

TEST(ScheduleTest, ParseAcceptsBoundaryAndWhitespace) {
  Schedule S;
  ASSERT_TRUE(Schedule::parse("  4294967295*   0 \n 1^\t", S));
  ASSERT_EQ(S.length(), 3u);
  EXPECT_EQ(S.entry(0).Tid, 4294967295u);
  EXPECT_TRUE(S.entry(0).Preemption);
  EXPECT_TRUE(S.entry(0).ContextSwitch);
  EXPECT_EQ(S.entry(1).Tid, 0u);
  EXPECT_FALSE(S.entry(1).ContextSwitch);
  EXPECT_TRUE(S.entry(2).ContextSwitch);
  EXPECT_FALSE(S.entry(2).Preemption);

  // The empty schedule round-trips too.
  Schedule Empty;
  ASSERT_TRUE(Schedule::parse("", Empty));
  EXPECT_TRUE(Empty.empty());
  ASSERT_TRUE(Schedule::parse(Schedule().str(), Empty));
  EXPECT_TRUE(Empty.empty());
}

TEST(ScheduleTest, RoundTripPreservesEveryEntry) {
  // Property-style sweep: a pseudo-random mix of runs, nonpreempting
  // switches, and preemptions survives str() -> parse() exactly.
  Schedule S;
  uint32_t Prev = 0;
  uint32_t X = 12345;
  for (int I = 0; I != 200; ++I) {
    X = X * 1664525u + 1013904223u; // LCG; deterministic across platforms.
    uint32_t Tid = (X >> 16) % 5;
    bool Switch = I != 0 && Tid != Prev;
    bool Preempt = Switch && (X & 1);
    S.append(Tid, Preempt, Switch);
    Prev = Tid;
  }
  Schedule Back;
  ASSERT_TRUE(Schedule::parse(S.str(), Back));
  EXPECT_TRUE(S == Back);
}

TEST(ScheduleTest, Truncate) {
  Schedule S;
  for (int I = 0; I != 5; ++I)
    S.append(static_cast<uint32_t>(I), false, false);
  S.truncate(2);
  EXPECT_EQ(S.length(), 2u);
  S.truncate(10); // No-op beyond current length.
  EXPECT_EQ(S.length(), 2u);
}

TEST(TraceWriterTest, RendersCountsAndMarkers) {
  std::vector<TraceStep> Steps;
  Steps.push_back({0, "main", "lock m", false, false, true});
  Steps.push_back({1, "worker", "set e", true, true, false});
  Steps.push_back({0, "main", "wait e", false, true, true});
  std::string Text = TraceWriter::render("assertion failed: boom", Steps);
  EXPECT_NE(Text.find("assertion failed: boom"), std::string::npos);
  EXPECT_NE(Text.find("3 steps"), std::string::npos);
  EXPECT_NE(Text.find("(1 preempting, 1 nonpreempting)"), std::string::npos);
  EXPECT_NE(Text.find(">>>"), std::string::npos);
  EXPECT_NE(Text.find("(blocking)"), std::string::npos);
}

} // namespace
