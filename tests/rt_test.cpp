//===- tests/rt_test.cpp - CHESS-style runtime unit tests ------------------===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Exercises the controlled runtime end to end: fibers, scheduling points,
/// sync primitives, race detection (Section 3.1), use-after-free
/// detection, the stateless ICB/DFS/random explorers, and schedule replay.
///
//===----------------------------------------------------------------------===//

#include "rt/Atomic.h"
#include "rt/Explore.h"
#include "rt/Managed.h"
#include "rt/Scheduler.h"
#include "rt/SharedVar.h"
#include "rt/Sync.h"
#include "rt/Thread.h"
#include <gtest/gtest.h>

using namespace icb;
using namespace icb::rt;

namespace {

ExploreOptions defaultOpts(uint64_t MaxExec = 200000,
                           bool StopAtFirst = false) {
  ExploreOptions Opts;
  Opts.Limits.MaxExecutions = MaxExec;
  Opts.Limits.StopAtFirstBug = StopAtFirst;
  return Opts;
}

//===----------------------------------------------------------------------===//
// Basic scheduler behaviour
//===----------------------------------------------------------------------===//

TEST(Scheduler, RunsSingleThreadedBody) {
  int Calls = 0;
  TestCase Test{"single", [&Calls] { ++Calls; }};
  Scheduler S(Scheduler::Options{});
  NonPreemptivePolicy Policy;
  ExecutionResult R = S.run(Test, Policy);
  EXPECT_EQ(R.Status, RunStatus::Terminated);
  EXPECT_EQ(Calls, 1);
  EXPECT_EQ(R.Preemptions, 0u);
}

TEST(Scheduler, SpawnAndJoinChildren) {
  TestCase Test{"spawn-join", [] {
    SharedVar<int> Done("done", 0);
    Mutex M("m");
    Thread A(
        [&] {
          M.lock();
          Done.set(Done.get() + 1);
          M.unlock();
        },
        "a");
    Thread B(
        [&] {
          M.lock();
          Done.set(Done.get() + 1);
          M.unlock();
        },
        "b");
    A.join();
    B.join();
    testAssert(Done.get() == 2, "both children must have run");
  }};
  Scheduler S(Scheduler::Options{});
  NonPreemptivePolicy Policy;
  ExecutionResult R = S.run(Test, Policy);
  EXPECT_EQ(R.Status, RunStatus::Terminated) << R.Message;
  EXPECT_EQ(R.ThreadsUsed, 3u);
  EXPECT_GT(R.BlockingOps, 0u);
}

TEST(Scheduler, NonPreemptiveRunHasZeroPreemptions) {
  TestCase Test{"np", [] {
    SharedVar<int> X("x", 0);
    Mutex M("m");
    Thread A(
        [&] {
          M.lock();
          X.set(1);
          M.unlock();
        },
        "a");
    A.join();
  }};
  Scheduler S(Scheduler::Options{});
  NonPreemptivePolicy Policy;
  ExecutionResult R = S.run(Test, Policy);
  EXPECT_EQ(R.Status, RunStatus::Terminated) << R.Message;
  EXPECT_EQ(R.Preemptions, 0u);
  // The switches into the child and back when main blocks on join are
  // nonpreempting.
  EXPECT_GT(R.ContextSwitches, 0u);
}

TEST(Scheduler, DetectsDeadlock) {
  TestCase Test{"deadlock", [] {
    Mutex A("A"), B("B");
    Event Ready("ready");
    Thread T(
        [&] {
          B.lock();
          Ready.set();
          A.lock(); // Blocks: main holds A.
          A.unlock();
          B.unlock();
        },
        "t");
    A.lock();
    Ready.wait();
    B.lock(); // Blocks: T holds B. Deadlock.
    B.unlock();
    A.unlock();
    T.join();
  }};
  Scheduler S(Scheduler::Options{});
  NonPreemptivePolicy Policy;
  ExecutionResult R = S.run(Test, Policy);
  EXPECT_EQ(R.Status, RunStatus::Deadlock);
  EXPECT_NE(R.Message.find("blocked"), std::string::npos);
}

TEST(Scheduler, SelfDeadlockOnNonRecursiveMutex) {
  TestCase Test{"self-deadlock", [] {
    Mutex M("m");
    M.lock();
    M.lock(); // Non-recursive: blocks forever.
    M.unlock();
  }};
  Scheduler S(Scheduler::Options{});
  NonPreemptivePolicy Policy;
  ExecutionResult R = S.run(Test, Policy);
  EXPECT_EQ(R.Status, RunStatus::Deadlock);
}

TEST(Scheduler, UnlockByNonOwnerFails) {
  TestCase Test{"bad-unlock", [] {
    Mutex M("m");
    M.unlock();
  }};
  Scheduler S(Scheduler::Options{});
  NonPreemptivePolicy Policy;
  ExecutionResult R = S.run(Test, Policy);
  EXPECT_EQ(R.Status, RunStatus::AssertFailed);
  EXPECT_NE(R.Message.find("unlock"), std::string::npos);
}

TEST(Scheduler, AutoResetEventReleasesOneWaiter) {
  TestCase Test{"auto-reset", [] {
    Event E("e", /*ManualReset=*/false, /*InitiallySet=*/false);
    SharedVar<int> Woken("woken", 0);
    Mutex M("m");
    Thread A(
        [&] {
          E.wait();
          M.lock();
          Woken.set(Woken.get() + 1);
          M.unlock();
        },
        "a");
    E.set();
    A.join();
    testAssert(Woken.get() == 1, "waiter must wake exactly once");
    testAssert(!E.isSet(), "auto-reset event must be consumed");
  }};
  Scheduler S(Scheduler::Options{});
  NonPreemptivePolicy Policy;
  ExecutionResult R = S.run(Test, Policy);
  EXPECT_EQ(R.Status, RunStatus::Terminated) << R.Message;
}

TEST(Scheduler, TryLockNeverBlocks) {
  TestCase Test{"trylock", [] {
    Mutex M("m");
    testAssert(M.tryLock(), "free mutex must be acquirable");
    testAssert(!M.tryLock() || false, "held mutex tryLock must fail");
    M.unlock();
  }};
  Scheduler S(Scheduler::Options{});
  NonPreemptivePolicy Policy;
  // tryLock on a held mutex returns false rather than deadlocking, but
  // tryLock-self-acquire returns false; the assert message distinguishes.
  ExecutionResult R = S.run(Test, Policy);
  EXPECT_EQ(R.Status, RunStatus::Terminated) << R.Message;
}

TEST(Scheduler, StepLimitAbortsRunaways) {
  Scheduler::Options O;
  O.MaxSteps = 50;
  TestCase Test{"runaway", [] {
    Atomic<int> Spin("spin", 0);
    while (true)
      Spin.load();
  }};
  Scheduler S(O);
  NonPreemptivePolicy Policy;
  ExecutionResult R = S.run(Test, Policy);
  EXPECT_EQ(R.Status, RunStatus::Aborted);
}

//===----------------------------------------------------------------------===//
// Race detection (Section 3.1)
//===----------------------------------------------------------------------===//

TestCase unprotectedCounterTest() {
  return {"unprotected-counter", [] {
    SharedVar<int> Counter("counter", 0);
    Thread A([&] { Counter.set(Counter.get() + 1); }, "a");
    Thread B([&] { Counter.set(Counter.get() + 1); }, "b");
    A.join();
    B.join();
  }};
}

TEST(RaceDetection, UnprotectedCounterRacesInFirstExecution) {
  IcbExplorer Icb(defaultOpts(1000, /*StopAtFirst=*/true));
  ExploreResult R = Icb.explore(unprotectedCounterTest());
  ASSERT_TRUE(R.foundBug());
  EXPECT_EQ(R.Bugs[0].Kind, search::BugKind::DataRace);
  // The two unsynchronized accesses race in every schedule, so the very
  // first (0-preemption) execution reports it.
  EXPECT_EQ(R.Bugs[0].Preemptions, 0u);
}

TEST(RaceDetection, LockProtectedCounterIsRaceFree) {
  TestCase Test{"protected-counter", [] {
    SharedVar<int> Counter("counter", 0);
    Mutex M("m");
    auto Work = [&] {
      M.lock();
      Counter.set(Counter.get() + 1);
      M.unlock();
    };
    Thread A(Work, "a");
    Thread B(Work, "b");
    A.join();
    B.join();
    testAssert(Counter.get() == 2, "increments must not be lost");
  }};
  IcbExplorer Icb(defaultOpts());
  ExploreResult R = Icb.explore(Test);
  EXPECT_FALSE(R.foundBug()) << R.Bugs[0].str();
  EXPECT_TRUE(R.Stats.Completed);
}

TEST(RaceDetection, GoldilocksAgreesWithVectorClock) {
  for (bool Racy : {true, false}) {
    TestCase Test = Racy ? unprotectedCounterTest() : TestCase{
        "clean", [] {
          SharedVar<int> X("x", 0);
          Mutex M("m");
          Thread A(
              [&] {
                M.lock();
                X.set(1);
                M.unlock();
              },
              "a");
          A.join();
          testAssert(X.get() == 1, "x set");
        }};
    for (DetectorKind Kind :
         {DetectorKind::VectorClock, DetectorKind::Goldilocks}) {
      ExploreOptions Opts = defaultOpts(500, true);
      Opts.Exec.Detector = Kind;
      IcbExplorer Icb(Opts);
      ExploreResult R = Icb.explore(Test);
      EXPECT_EQ(R.foundBug(), Racy)
          << "detector disagreement for racy=" << Racy;
    }
  }
}

TEST(RaceDetection, EventCreatesHappensBefore) {
  // Writer sets the data then signals; reader waits then reads: ordered,
  // no race.
  TestCase Test{"hb-through-event", [] {
    SharedVar<int> Data("data", 0);
    Event Ready("ready");
    Thread W(
        [&] {
          Data.set(42);
          Ready.set();
        },
        "writer");
    Ready.wait();
    testAssert(Data.get() == 42, "reader sees the published value");
    W.join();
  }};
  IcbExplorer Icb(defaultOpts());
  ExploreResult R = Icb.explore(Test);
  EXPECT_FALSE(R.foundBug()) << R.Bugs[0].str();
}

TEST(RaceDetection, JoinCreatesHappensBefore) {
  TestCase Test{"hb-through-join", [] {
    SharedVar<int> Data("data", 0);
    Thread W([&] { Data.set(7); }, "writer");
    W.join();
    testAssert(Data.get() == 7, "joiner sees the child's writes");
  }};
  IcbExplorer Icb(defaultOpts());
  ExploreResult R = Icb.explore(Test);
  EXPECT_FALSE(R.foundBug()) << R.Bugs[0].str();
}

//===----------------------------------------------------------------------===//
// Atomic variables: racy by design, interleavings explored
//===----------------------------------------------------------------------===//

TestCase atomicLostUpdateTest() {
  return {"atomic-lost-update", [] {
    Atomic<int> Counter("counter", 0);
    auto Work = [&] {
      int V = Counter.load(); // load/store split: not atomic as a whole.
      Counter.store(V + 1);
    };
    Thread A(Work, "a");
    Thread B(Work, "b");
    A.join();
    B.join();
    testAssert(Counter.load() == 2, "lost update on atomic counter");
  }};
}

TEST(AtomicVars, LostUpdateFoundAtBoundOneWithoutRaceReports) {
  IcbExplorer Icb(defaultOpts(100000, /*StopAtFirst=*/true));
  ExploreResult R = Icb.explore(atomicLostUpdateTest());
  ASSERT_TRUE(R.foundBug());
  EXPECT_EQ(R.Bugs[0].Kind, search::BugKind::AssertFailure);
  EXPECT_EQ(R.Bugs[0].Preemptions, 1u);
}

TEST(AtomicVars, FetchAddHasNoLostUpdate) {
  TestCase Test{"fetch-add", [] {
    Atomic<int> Counter("counter", 0);
    auto Work = [&] { Counter.fetchAdd(1); };
    Thread A(Work, "a");
    Thread B(Work, "b");
    A.join();
    B.join();
    testAssert(Counter.load() == 2, "fetch-add must not lose updates");
  }};
  IcbExplorer Icb(defaultOpts());
  ExploreResult R = Icb.explore(Test);
  EXPECT_FALSE(R.foundBug()) << R.Bugs[0].str();
  EXPECT_TRUE(R.Stats.Completed);
}

TEST(AtomicVars, CompareExchangeSemantics) {
  TestCase Test{"cas", [] {
    Atomic<int> X("x", 5);
    testAssert(X.compareExchange(5, 9), "matching cas succeeds");
    testAssert(!X.compareExchange(5, 1), "stale cas fails");
    testAssert(X.exchange(3) == 9, "exchange returns old value");
    testAssert(X.load() == 3, "exchange installed new value");
  }};
  Scheduler S(Scheduler::Options{});
  NonPreemptivePolicy Policy;
  ExecutionResult R = S.run(Test, Policy);
  EXPECT_EQ(R.Status, RunStatus::Terminated) << R.Message;
}

//===----------------------------------------------------------------------===//
// Use-after-free detection
//===----------------------------------------------------------------------===//

namespace uaf {

struct Widget {
  explicit Widget() : Guard("widget-guard") {}
  Mutex Guard;
  int Value = 0;
};

/// Miniature of the Dryad Figure 3 bug: the worker takes the object's
/// lock; main deletes the object concurrently. One preemption (right
/// before the lock) exposes it.
TestCase dryadMiniTest() {
  return {"uaf-mini", [] {
    ManagedPtr<Widget> W = makeManaged<Widget>("Widget");
    Event Started("started");
    Thread Worker(
        [&] {
          Started.set();
          W->Guard.lock(); // XXX: preempt here for the bug.
          W->Value += 1;
          W->Guard.unlock();
        },
        "worker");
    Started.wait();
    W.destroy(); // Wrong assumption: worker already finished.
    Worker.join();
  }};
}

} // namespace uaf

TEST(UseAfterFree, DryadMiniFoundWithOnePreemption) {
  IcbExplorer Icb(defaultOpts(100000, /*StopAtFirst=*/true));
  ExploreResult R = Icb.explore(uaf::dryadMiniTest());
  ASSERT_TRUE(R.foundBug());
  EXPECT_EQ(R.Bugs[0].Kind, search::BugKind::UseAfterFree);
  EXPECT_LE(R.Bugs[0].Preemptions, 1u);
}

TEST(UseAfterFree, DoubleDestroyDetected) {
  TestCase Test{"double-free", [] {
    ManagedPtr<uaf::Widget> W = makeManaged<uaf::Widget>("Widget");
    W.destroy();
    W.destroy();
  }};
  Scheduler S(Scheduler::Options{});
  NonPreemptivePolicy Policy;
  ExecutionResult R = S.run(Test, Policy);
  EXPECT_EQ(R.Status, RunStatus::UseAfterFree);
  EXPECT_NE(R.Message.find("double free"), std::string::npos);
}

TEST(UseAfterFree, CleanLifetimeIsFine) {
  TestCase Test{"clean-lifetime", [] {
    ManagedPtr<uaf::Widget> W = makeManaged<uaf::Widget>("Widget");
    Thread Worker(
        [&] {
          W->Guard.lock();
          W->Value += 1;
          W->Guard.unlock();
        },
        "worker");
    Worker.join(); // Correct: wait before deleting.
    W.destroy();
  }};
  IcbExplorer Icb(defaultOpts());
  ExploreResult R = Icb.explore(Test);
  EXPECT_FALSE(R.foundBug()) << R.Bugs[0].str();
  EXPECT_TRUE(R.Stats.Completed);
}

//===----------------------------------------------------------------------===//
// Explorers
//===----------------------------------------------------------------------===//

TEST(IcbExplorer, PerBoundMonotoneAndComplete) {
  IcbExplorer Icb(defaultOpts());
  ExploreResult R = Icb.explore(atomicLostUpdateTest());
  ASSERT_TRUE(R.foundBug());
  ASSERT_GE(R.Stats.PerBound.size(), 2u);
  for (size_t I = 1; I < R.Stats.PerBound.size(); ++I)
    EXPECT_GE(R.Stats.PerBound[I].States, R.Stats.PerBound[I - 1].States);
}

TEST(IcbExplorer, DeterministicAcrossRuns) {
  IcbExplorer Icb(defaultOpts());
  ExploreResult A = Icb.explore(atomicLostUpdateTest());
  ExploreResult B = Icb.explore(atomicLostUpdateTest());
  EXPECT_EQ(A.Stats.Executions, B.Stats.Executions);
  EXPECT_EQ(A.Stats.TotalSteps, B.Stats.TotalSteps);
  EXPECT_EQ(A.Stats.DistinctStates, B.Stats.DistinctStates);
  ASSERT_EQ(A.Bugs.size(), B.Bugs.size());
  EXPECT_EQ(A.Bugs[0].Sched, B.Bugs[0].Sched);
}

TEST(IcbExplorer, MaxBoundZeroMissesPreemptionBug) {
  ExploreOptions Opts = defaultOpts();
  Opts.Limits.MaxPreemptionBound = 0;
  IcbExplorer Icb(Opts);
  ExploreResult R = Icb.explore(atomicLostUpdateTest());
  EXPECT_FALSE(R.foundBug());
  EXPECT_GT(R.Stats.Executions, 0u);
}

TEST(DfsExplorer, FindsSameBugDeeper) {
  DfsExplorer Dfs(defaultOpts(200000, /*StopAtFirst=*/true));
  ExploreResult DfsR = Dfs.explore(atomicLostUpdateTest());
  IcbExplorer Icb(defaultOpts(200000, /*StopAtFirst=*/true));
  ExploreResult IcbR = Icb.explore(atomicLostUpdateTest());
  ASSERT_TRUE(DfsR.foundBug());
  ASSERT_TRUE(IcbR.foundBug());
  EXPECT_GE(DfsR.Bugs[0].Preemptions, IcbR.Bugs[0].Preemptions);
}

TEST(DfsExplorer, ExhaustiveAgreesWithIcbOnStateCount) {
  DfsExplorer Dfs(defaultOpts());
  IcbExplorer Icb(defaultOpts());
  TestCase Test{"two-writers", [] {
    Atomic<int> X("x", 0);
    Thread A([&] { X.store(1); }, "a");
    Thread B([&] { X.store(2); }, "b");
    A.join();
    B.join();
  }};
  ExploreResult D = Dfs.explore(Test);
  ExploreResult I = Icb.explore(Test);
  ASSERT_TRUE(D.Stats.Completed);
  ASSERT_TRUE(I.Stats.Completed);
  EXPECT_EQ(D.Stats.DistinctStates, I.Stats.DistinctStates);
}

TEST(DfsExplorer, DepthBoundTruncates) {
  DfsExplorer Db(defaultOpts(), /*DepthBound=*/4);
  ExploreResult R = Db.explore(atomicLostUpdateTest());
  EXPECT_FALSE(R.Stats.Completed);
  EXPECT_LE(R.Stats.StepsPerExecution.max(), 4u);
  EXPECT_EQ(Db.name(), "db:4");
}

TEST(IdfsExplorer, EventuallyCompletes) {
  IdfsExplorer Idfs(defaultOpts(), /*InitialBound=*/4, /*Increment=*/4);
  ExploreResult R = Idfs.explore(atomicLostUpdateTest());
  EXPECT_TRUE(R.foundBug());
  EXPECT_TRUE(R.Stats.Completed);
}

TEST(RandomExplorer, SeedDeterminism) {
  RandomExplorer R1(defaultOpts(), 11, 100);
  RandomExplorer R2(defaultOpts(), 11, 100);
  ExploreResult A = R1.explore(atomicLostUpdateTest());
  ExploreResult B = R2.explore(atomicLostUpdateTest());
  EXPECT_EQ(A.Stats.TotalSteps, B.Stats.TotalSteps);
  EXPECT_EQ(A.Stats.DistinctStates, B.Stats.DistinctStates);
}

//===----------------------------------------------------------------------===//
// Replay and traces
//===----------------------------------------------------------------------===//

TEST(Replay, ReproducesTheBug) {
  IcbExplorer Icb(defaultOpts(100000, /*StopAtFirst=*/true));
  ExploreResult R = Icb.explore(atomicLostUpdateTest());
  ASSERT_TRUE(R.foundBug());
  ExecutionResult Replayed = replaySchedule(
      atomicLostUpdateTest(), R.Bugs[0].Sched, Scheduler::Options{});
  EXPECT_EQ(Replayed.Status, RunStatus::AssertFailed);
  EXPECT_EQ(Replayed.Message, R.Bugs[0].Message);
  EXPECT_EQ(Replayed.Preemptions, R.Bugs[0].Preemptions);
}

TEST(Replay, TraceRenderingShowsPreemptions) {
  IcbExplorer Icb(defaultOpts(100000, /*StopAtFirst=*/true));
  ExploreResult R = Icb.explore(atomicLostUpdateTest());
  ASSERT_TRUE(R.foundBug());
  std::string Trace = renderBugTrace(atomicLostUpdateTest(), R.Bugs[0],
                                     Scheduler::Options{});
  EXPECT_NE(Trace.find("1 preempting"), std::string::npos);
  EXPECT_NE(Trace.find(">>>"), std::string::npos);
  EXPECT_NE(Trace.find("lost update"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Section 3.1 modes: sync-only vs every-access, and promotion
//===----------------------------------------------------------------------===//

TEST(Modes, EveryAccessFindsTheAssertInsteadOfTheRace) {
  // With scheduling points at every data access and race detection off,
  // the lost update on the *data* variable is found as the assertion bug.
  ExploreOptions Opts = defaultOpts(500000, /*StopAtFirst=*/true);
  Opts.Exec.Mode = SchedPointMode::EveryAccess;
  Opts.Exec.Detector = DetectorKind::None;
  TestCase Test{"data-lost-update", [] {
    SharedVar<int> Counter("counter", 0);
    auto Work = [&] { Counter.set(Counter.get() + 1); };
    Thread A(Work, "a");
    Thread B(Work, "b");
    A.join();
    B.join();
    testAssert(Counter.get() == 2, "lost update on data counter");
  }};
  IcbExplorer Icb(Opts);
  ExploreResult R = Icb.explore(Test);
  ASSERT_TRUE(R.foundBug());
  EXPECT_EQ(R.Bugs[0].Kind, search::BugKind::AssertFailure);
  EXPECT_EQ(R.Bugs[0].Preemptions, 1u);
}

TEST(Modes, PromotedVariableBehavesLikeSyncVar) {
  // First run: the race is reported. The harness promotes the variable;
  // second run: no race, and the schedule space now includes the lost
  // update, found as an assertion failure.
  race::DynamicPartition Partition;
  uint64_t RacyCode = 0;
  auto MakeTest = [&Partition, &RacyCode]() -> TestCase {
    return {"promotable", [&Partition, &RacyCode] {
      SharedVar<int> Counter("counter", 0);
      RacyCode = Counter.varCode();
      auto Work = [&] { Counter.set(Counter.get() + 1); };
      Thread A(Work, "a");
      Thread B(Work, "b");
      A.join();
      B.join();
      testAssert(Counter.get() == 2, "lost update on promoted counter");
    }};
  };

  ExploreOptions Opts = defaultOpts(500000, /*StopAtFirst=*/true);
  Opts.Exec.Partition = &Partition;
  {
    IcbExplorer Icb(Opts);
    ExploreResult R = Icb.explore(MakeTest());
    ASSERT_TRUE(R.foundBug());
    EXPECT_EQ(R.Bugs[0].Kind, search::BugKind::DataRace);
  }
  Partition.promoteToSync(RacyCode);
  {
    IcbExplorer Icb(Opts);
    ExploreResult R = Icb.explore(MakeTest());
    ASSERT_TRUE(R.foundBug());
    EXPECT_EQ(R.Bugs[0].Kind, search::BugKind::AssertFailure);
    EXPECT_EQ(R.Bugs[0].Preemptions, 1u);
  }
}

//===----------------------------------------------------------------------===//
// Yield semantics
//===----------------------------------------------------------------------===//

TEST(Yield, SwitchAtYieldIsNonpreempting) {
  // A bug reachable only by switching at an explicit yield must be found
  // at bound 0.
  TestCase Test{"yield-bug", [] {
    Atomic<int> Stage("stage", 0);
    Thread A(
        [&] {
          Stage.store(1);
          yield();
          Stage.store(3);
        },
        "a");
    Thread B(
        [&] {
          // Fails only if B observes stage==1, i.e. runs between A's
          // stores, reachable via the yield without preemption.
          testAssert(Stage.load() != 1, "observed intermediate stage");
        },
        "b");
    A.join();
    B.join();
  }};
  ExploreOptions Opts = defaultOpts(100000, /*StopAtFirst=*/true);
  Opts.Limits.MaxPreemptionBound = 0;
  IcbExplorer Icb(Opts);
  ExploreResult R = Icb.explore(Test);
  ASSERT_TRUE(R.foundBug());
  EXPECT_EQ(R.Bugs[0].Preemptions, 0u);
}

//===----------------------------------------------------------------------===//
// Fingerprints as states
//===----------------------------------------------------------------------===//

TEST(Fingerprints, EquivalentExecutionsShareAFingerprint) {
  // Two threads touching disjoint sync vars commute: both orders must
  // produce the same happens-before fingerprint. A shared sync var does
  // not commute: different orders, different fingerprints... except that
  // symmetric operations can still collapse; use distinct operations.
  TestCase Disjoint{"disjoint", [] {
    Atomic<int> X("x", 0), Y("y", 0);
    Thread A([&] { X.store(1); }, "a");
    Thread B([&] { Y.store(1); }, "b");
    A.join();
    B.join();
  }};
  DfsExplorer Dfs(defaultOpts());
  ExploreResult R = Dfs.explore(Disjoint);
  ASSERT_TRUE(R.Stats.Completed);
  // All interleavings of independent steps are equivalent: one terminal
  // state (though the *visited* prefixes differ, since reaching {x} first
  // and {y} first are genuinely different intermediate states).
  EXPECT_EQ(R.Stats.DistinctTerminalStates, 1u);
  EXPECT_GT(R.Stats.DistinctStates, 1u);
}

TEST(Fingerprints, ConflictingExecutionsDiffer) {
  TestCase Conflicting{"conflicting", [] {
    Atomic<int> X("x", 0);
    Thread A([&] { X.store(1); }, "a");
    Thread B([&] { X.store(2); }, "b");
    A.join();
    B.join();
  }};
  DfsExplorer Dfs(defaultOpts());
  ExploreResult R = Dfs.explore(Conflicting);
  ASSERT_TRUE(R.Stats.Completed);
  // The two write orders are inequivalent.
  EXPECT_GE(R.Stats.DistinctTerminalStates, 2u);
}

} // namespace
