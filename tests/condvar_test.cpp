//===- tests/condvar_test.cpp - CondVar and RwLock tests -------------------===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Exercises the condition-variable and reader-writer-lock primitives
/// under full schedule exploration: a monitor-style bounded queue is
/// verified exhaustively; the classic condition-variable misuses (if
/// instead of while, signal outside the lock without re-check, missing
/// signal) are caught at small preemption bounds; readers really do share
/// and writers really do exclude.
///
//===----------------------------------------------------------------------===//

#include "rt/Atomic.h"
#include "rt/CondVar.h"
#include "rt/Explore.h"
#include "rt/RwLock.h"
#include "rt/Scheduler.h"
#include "rt/SharedVar.h"
#include "rt/Sync.h"
#include "rt/Thread.h"
#include <gtest/gtest.h>

using namespace icb;
using namespace icb::rt;

namespace {

ExploreOptions defaultOpts(uint64_t MaxExec = 300000,
                           bool StopAtFirst = false, unsigned MaxBound = 3) {
  ExploreOptions Opts;
  Opts.Limits.MaxExecutions = MaxExec;
  Opts.Limits.StopAtFirstBug = StopAtFirst;
  Opts.Limits.MaxPreemptionBound = MaxBound;
  return Opts;
}

//===----------------------------------------------------------------------===//
// CondVar: a one-slot monitor queue
//===----------------------------------------------------------------------===//

/// Monitor-protected single-slot mailbox. With UseWhile the consumer
/// re-checks the predicate after waking (correct); without it the classic
/// "if instead of while" bug appears once two consumers compete.
struct Mailbox {
  Mailbox() : Lock("mbLock"), NotEmpty("notEmpty"), Full("full", 0) {}

  Mutex Lock;
  CondVar NotEmpty;
  SharedVar<int> Full;

  void put(int) {
    Lock.lock();
    Full.set(Full.get() + 1);
    NotEmpty.signal();
    Lock.unlock();
  }

  bool take(bool UseWhile) {
    Lock.lock();
    if (UseWhile) {
      while (Full.get() == 0)
        NotEmpty.wait(Lock);
    } else if (Full.get() == 0) {
      NotEmpty.wait(Lock); // BUG: a rival may empty the slot first.
    }
    testAssert(Full.get() > 0, "mailbox: woke to an empty slot");
    Full.set(Full.get() - 1);
    Lock.unlock();
    return true;
  }
};

TestCase mailboxTest(bool UseWhile, unsigned Consumers, unsigned Items) {
  return {"mailbox", [UseWhile, Consumers, Items] {
    Mailbox Box;
    std::vector<std::unique_ptr<Thread>> Threads;
    for (unsigned C = 0; C != Consumers; ++C)
      Threads.push_back(std::make_unique<Thread>(
          [&Box, UseWhile] { Box.take(UseWhile); }, "consumer"));
    for (unsigned I = 0; I != Items; ++I)
      Box.put(static_cast<int>(I));
    for (auto &T : Threads)
      T->join();
  }};
}

TEST(CondVar, MonitorMailboxCorrectWithWhile) {
  IcbExplorer Icb(defaultOpts());
  ExploreResult R = Icb.explore(mailboxTest(true, 2, 2));
  EXPECT_FALSE(R.foundBug()) << R.Bugs[0].str();
}

TEST(CondVar, IfInsteadOfWhileCaught) {
  IcbExplorer Icb(defaultOpts(300000, /*StopAtFirst=*/true));
  ExploreResult R = Icb.explore(mailboxTest(false, 2, 2));
  ASSERT_TRUE(R.foundBug());
  EXPECT_EQ(R.Bugs[0].Kind, search::BugKind::AssertFailure);
  EXPECT_NE(R.Bugs[0].Message.find("empty slot"), std::string::npos);
}

TEST(CondVar, MissingSignalDeadlocks) {
  TestCase Test{"no-signal", [] {
    Mutex M("m");
    CondVar Cv("cv");
    SharedVar<int> Ready("ready", 0);
    Thread Waiter(
        [&] {
          M.lock();
          while (Ready.get() == 0)
            Cv.wait(M);
          M.unlock();
        },
        "waiter");
    M.lock();
    Ready.set(1); // BUG: forgot Cv.signal().
    M.unlock();
    Waiter.join();
  }};
  IcbExplorer Icb(defaultOpts(300000, /*StopAtFirst=*/true, 2));
  ExploreResult R = Icb.explore(Test);
  ASSERT_TRUE(R.foundBug());
  EXPECT_EQ(R.Bugs[0].Kind, search::BugKind::Deadlock);
}

TEST(CondVar, WaitWithoutMutexIsAnError) {
  TestCase Test{"bad-wait", [] {
    Mutex M("m");
    CondVar Cv("cv");
    Cv.wait(M); // BUG: mutex not held.
  }};
  Scheduler S{Scheduler::Options{}};
  NonPreemptivePolicy Policy;
  ExecutionResult R = S.run(Test, Policy);
  EXPECT_EQ(R.Status, RunStatus::AssertFailed);
  EXPECT_NE(R.Message.find("without holding"), std::string::npos);
}

TEST(CondVar, SignalBeforeWaitIsLost) {
  // Condition variables have no memory: a signal with no waiter does
  // nothing, so waiting afterwards deadlocks unless the predicate is
  // rechecked — this driver has no predicate at all, so some schedule
  // deadlocks.
  TestCase Test{"lost-signal", [] {
    Mutex M("m");
    CondVar Cv("cv");
    Thread Waker(
        [&] {
          M.lock();
          Cv.signal();
          M.unlock();
        },
        "waker");
    M.lock();
    Cv.wait(M); // BUG: no predicate; the signal may already be gone.
    M.unlock();
    Waker.join();
  }};
  IcbExplorer Icb(defaultOpts(300000, /*StopAtFirst=*/true, 1));
  ExploreResult R = Icb.explore(Test);
  ASSERT_TRUE(R.foundBug());
  EXPECT_EQ(R.Bugs[0].Kind, search::BugKind::Deadlock);
}

TEST(CondVar, BroadcastWakesAllWaiters) {
  TestCase Test{"broadcast", [] {
    Mutex M("m");
    CondVar Cv("cv");
    SharedVar<int> Go("go", 0);
    Atomic<int> Woken("woken", 0);
    auto WaiterBody = [&] {
      M.lock();
      while (Go.get() == 0)
        Cv.wait(M);
      M.unlock();
      Woken.fetchAdd(1);
    };
    Thread W1(WaiterBody, "w1");
    Thread W2(WaiterBody, "w2");
    M.lock();
    Go.set(1);
    Cv.broadcast();
    M.unlock();
    W1.join();
    W2.join();
    testAssert(Woken.load() == 2, "broadcast must wake both waiters");
  }};
  IcbExplorer Icb(defaultOpts(300000, false, 2));
  ExploreResult R = Icb.explore(Test);
  EXPECT_FALSE(R.foundBug()) << R.Bugs[0].str();
}

//===----------------------------------------------------------------------===//
// RwLock
//===----------------------------------------------------------------------===//

TEST(RwLock, ReadersShareWritersExclude) {
  TestCase Test{"rwlock-basic", [] {
    RwLock Rw("rw");
    SharedVar<int> Data("data", 0);
    Atomic<int> ConcurrentReaders("concurrentReaders", 0);
    auto Reader = [&] {
      Rw.lockShared();
      int Now = ConcurrentReaders.fetchAdd(1) + 1;
      testAssert(Now >= 1, "reader accounting");
      (void)Data.get();
      ConcurrentReaders.fetchAdd(-1);
      Rw.unlockShared();
    };
    auto Writer = [&] {
      Rw.lockExclusive();
      testAssert(ConcurrentReaders.load() == 0,
                 "writer overlapped with a reader");
      Data.set(Data.get() + 1);
      Rw.unlockExclusive();
    };
    Thread R1(Reader, "r1");
    Thread R2(Reader, "r2");
    Thread W(Writer, "w");
    R1.join();
    R2.join();
    W.join();
    testAssert(Data.get() == 1, "exactly one write");
  }};
  IcbExplorer Icb(defaultOpts(400000, false, 2));
  ExploreResult R = Icb.explore(Test);
  EXPECT_FALSE(R.foundBug()) << R.Bugs[0].str();
}

TEST(RwLock, ReadersCanActuallyOverlap) {
  // Two readers both inside the read section in some schedule: checked by
  // asserting the *negation* and expecting the checker to refute it.
  TestCase Test{"rw-overlap", [] {
    RwLock Rw("rw");
    Atomic<int> Inside("inside", 0);
    auto Reader = [&] {
      Rw.lockShared();
      int Now = Inside.fetchAdd(1) + 1;
      testAssert(Now < 2, "two readers overlapped (expected!)");
      Inside.fetchAdd(-1);
      Rw.unlockShared();
    };
    Thread R1(Reader, "r1");
    Thread R2(Reader, "r2");
    R1.join();
    R2.join();
  }};
  IcbExplorer Icb(defaultOpts(300000, /*StopAtFirst=*/true, 1));
  ExploreResult R = Icb.explore(Test);
  ASSERT_TRUE(R.foundBug()); // Overlap reachable => assertion refuted.
  EXPECT_NE(R.Bugs[0].Message.find("overlapped (expected!)"),
            std::string::npos);
}

TEST(RwLock, DataRaceUnderSharedLockOnlyIsCaught) {
  // Writing the protected data under a *shared* lock races with a
  // concurrent reader: the detector must flag it.
  TestCase Test{"rw-misuse", [] {
    RwLock Rw("rw");
    SharedVar<int> Data("data", 0);
    auto BadWriter = [&] {
      Rw.lockShared(); // BUG: should be exclusive.
      Data.set(1);
      Rw.unlockShared();
    };
    auto Reader = [&] {
      Rw.lockShared();
      (void)Data.get();
      Rw.unlockShared();
    };
    Thread W(BadWriter, "badWriter");
    Thread R(Reader, "reader");
    W.join();
    R.join();
  }};
  IcbExplorer Icb(defaultOpts(300000, /*StopAtFirst=*/true, 2));
  ExploreResult R = Icb.explore(Test);
  ASSERT_TRUE(R.foundBug());
  EXPECT_EQ(R.Bugs[0].Kind, search::BugKind::DataRace);
}

TEST(RwLock, UnlockErrorsAreReported) {
  {
    TestCase Test{"bad-shared-unlock", [] {
      RwLock Rw("rw");
      Rw.unlockShared();
    }};
    Scheduler S{Scheduler::Options{}};
    NonPreemptivePolicy Policy;
    EXPECT_EQ(S.run(Test, Policy).Status, RunStatus::AssertFailed);
  }
  {
    TestCase Test{"bad-exclusive-unlock", [] {
      RwLock Rw("rw");
      Rw.unlockExclusive();
    }};
    Scheduler S{Scheduler::Options{}};
    NonPreemptivePolicy Policy;
    EXPECT_EQ(S.run(Test, Policy).Status, RunStatus::AssertFailed);
  }
}

TEST(RwLock, WriterSelfDeadlockDetected) {
  TestCase Test{"w-self", [] {
    RwLock Rw("rw");
    Rw.lockExclusive();
    Rw.lockExclusive(); // Non-recursive: blocks forever.
    Rw.unlockExclusive();
  }};
  Scheduler S{Scheduler::Options{}};
  NonPreemptivePolicy Policy;
  EXPECT_EQ(S.run(Test, Policy).Status, RunStatus::Deadlock);
}

} // namespace
