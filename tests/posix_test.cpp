//===- tests/posix_test.cpp - POSIX frontend semantics tests ---------------===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The pthread-compatible shim under full schedule exploration: POSIX
/// errno semantics (EBUSY, EDEADLK, EPERM, ETIMEDOUT, EAGAIN), the modeled
/// timedwait timeout (both outcomes of every signal/expiry race must be
/// explored), pthread_once ordering, TLS destructors, the in-tree replica
/// of the examples/posix lost-wakeup deadlock (clean at bound 1, exposed
/// at bound 2), and jobs-1-vs-N determinism through the shim.
///
/// The icb_* entry points are called directly (ICB_POSIX_NO_RENAME): this
/// translation unit also contains gtest, which owns real pthreads.
///
//===----------------------------------------------------------------------===//

#define ICB_POSIX_NO_RENAME
#include "icb/posix.h"

#include "obs/Metrics.h"
#include "posix/Runtime.h"
#include "rt/Explore.h"
#include "testutil/ResultChecks.h"
#include <gtest/gtest.h>

using namespace icb;
using namespace icb::rt;

namespace {

ExploreResult explorePosix(std::function<void()> Body, unsigned MaxBound,
                           bool StopAtFirst = false, unsigned Jobs = 1,
                           obs::MetricsRegistry *Metrics = nullptr,
                           bool Por = false) {
  ExploreOptions Opts;
  Opts.Limits.MaxExecutions = 200000;
  Opts.Limits.StopAtFirstBug = StopAtFirst;
  Opts.Limits.MaxPreemptionBound = MaxBound;
  Opts.Jobs = Jobs;
  Opts.Metrics = Metrics;
  Opts.Por = Por;
  IcbExplorer E(Opts);
  return E.explore(posix::makeTestCase("posix-test", std::move(Body)));
}

//===----------------------------------------------------------------------===//
// Errno semantics (deterministic: asserted on every explored schedule)
//===----------------------------------------------------------------------===//

void errnoChecksBody() {
  // NORMAL mutex: trylock of a held mutex fails with EBUSY.
  pthread_mutex_t Normal = PTHREAD_MUTEX_INITIALIZER;
  icb_posix_assert(icb_pthread_mutex_lock(&Normal) == 0, "normal lock");
  icb_posix_assert(icb_pthread_mutex_trylock(&Normal) == EBUSY,
                   "trylock of held mutex -> EBUSY");
  icb_posix_assert(icb_pthread_mutex_unlock(&Normal) == 0, "normal unlock");

  // ERRORCHECK mutex: self-relock is EDEADLK, unowned unlock is EPERM.
  pthread_mutexattr_t Attr;
  icb_pthread_mutexattr_init(&Attr);
  icb_pthread_mutexattr_settype(&Attr, PTHREAD_MUTEX_ERRORCHECK);
  pthread_mutex_t Checked;
  icb_pthread_mutex_init(&Checked, &Attr);
  icb_posix_assert(icb_pthread_mutex_unlock(&Checked) == EPERM,
                   "errorcheck unowned unlock -> EPERM");
  icb_posix_assert(icb_pthread_mutex_lock(&Checked) == 0, "errorcheck lock");
  icb_posix_assert(icb_pthread_mutex_lock(&Checked) == EDEADLK,
                   "errorcheck self-relock -> EDEADLK");
  icb_posix_assert(icb_pthread_mutex_unlock(&Checked) == 0,
                   "errorcheck unlock");
  icb_pthread_mutex_destroy(&Checked);

  // RECURSIVE mutex: depth counts; the lock releases only at depth 0.
  icb_pthread_mutexattr_settype(&Attr, PTHREAD_MUTEX_RECURSIVE);
  pthread_mutex_t Rec;
  icb_pthread_mutex_init(&Rec, &Attr);
  icb_posix_assert(icb_pthread_mutex_lock(&Rec) == 0, "recursive lock 1");
  icb_posix_assert(icb_pthread_mutex_lock(&Rec) == 0, "recursive lock 2");
  icb_posix_assert(icb_pthread_mutex_trylock(&Rec) == 0, "recursive trylock");
  icb_posix_assert(icb_pthread_mutex_unlock(&Rec) == 0, "recursive unlock 3");
  icb_posix_assert(icb_pthread_mutex_unlock(&Rec) == 0, "recursive unlock 2");
  // Still held at depth 1: destroy must refuse.
  icb_posix_assert(icb_pthread_mutex_destroy(&Rec) == EBUSY,
                   "destroy of held mutex -> EBUSY");
  icb_posix_assert(icb_pthread_mutex_unlock(&Rec) == 0, "recursive unlock 1");
  icb_posix_assert(icb_pthread_mutex_unlock(&Rec) == EPERM,
                   "recursive over-unlock -> EPERM");
  icb_pthread_mutex_destroy(&Rec);
  icb_pthread_mutexattr_destroy(&Attr);

  // Semaphore at zero: trywait fails with errno EAGAIN.
  sem_t Sem;
  icb_sem_init(&Sem, 0, 0);
  errno = 0;
  icb_posix_assert(icb_sem_trywait(&Sem) == -1 && errno == EAGAIN,
                   "trywait of empty semaphore -> EAGAIN");
  icb_sem_post(&Sem);
  icb_posix_assert(icb_sem_trywait(&Sem) == 0, "trywait after post");
  icb_sem_destroy(&Sem);

  // Rwlock: a reader blocks trywrlock (EBUSY); a writer's own tryrdlock
  // can never succeed (EDEADLK, as glibc detects).
  pthread_rwlock_t RW = PTHREAD_RWLOCK_INITIALIZER;
  icb_posix_assert(icb_pthread_rwlock_rdlock(&RW) == 0, "rdlock");
  icb_posix_assert(icb_pthread_rwlock_tryrdlock(&RW) == 0, "shared rdlock");
  icb_posix_assert(icb_pthread_rwlock_trywrlock(&RW) == EBUSY,
                   "trywrlock under readers -> EBUSY");
  icb_posix_assert(icb_pthread_rwlock_unlock(&RW) == 0, "rd unlock 1");
  icb_posix_assert(icb_pthread_rwlock_unlock(&RW) == 0, "rd unlock 2");
  icb_posix_assert(icb_pthread_rwlock_wrlock(&RW) == 0, "wrlock");
  icb_posix_assert(icb_pthread_rwlock_rdlock(&RW) == EDEADLK,
                   "rdlock under own writer -> EDEADLK");
  icb_posix_assert(icb_pthread_rwlock_tryrdlock(&RW) == EBUSY,
                   "tryrdlock under a writer -> EBUSY");
  icb_posix_assert(icb_pthread_rwlock_unlock(&RW) == 0, "wr unlock");
  icb_pthread_rwlock_destroy(&RW);

  // timedwait with nobody to signal: the modeled timeout is the only
  // outcome.
  pthread_mutex_t M = PTHREAD_MUTEX_INITIALIZER;
  pthread_cond_t C = PTHREAD_COND_INITIALIZER;
  struct timespec Ts = {0, 1000};
  icb_posix_assert(icb_pthread_mutex_lock(&M) == 0, "tw lock");
  icb_posix_assert(icb_pthread_cond_timedwait(&C, &M, &Ts) == ETIMEDOUT,
                   "unsignaled timedwait -> ETIMEDOUT");
  icb_posix_assert(icb_pthread_mutex_unlock(&M) == 0, "tw unlock");
}

TEST(PosixErrno, SemanticsHoldOnEverySchedule) {
  ExploreResult R = explorePosix(errnoChecksBody, /*MaxBound=*/2);
  EXPECT_TRUE(R.Bugs.empty()) << (R.Bugs.empty() ? "" : R.Bugs[0].str());
  EXPECT_GE(R.Stats.Executions, 1u);
}

//===----------------------------------------------------------------------===//
// Modeled timedwait: both outcomes of the signal/expiry race are explored
//===----------------------------------------------------------------------===//

struct TwCtx {
  pthread_mutex_t Lock = PTHREAD_MUTEX_INITIALIZER;
  pthread_cond_t Cond = PTHREAD_COND_INITIALIZER;
  int Ready = 0;
  int *SignaledRuns;
  int *TimedOutRuns;
};

void *twWaiter(void *Arg) {
  TwCtx *Cx = static_cast<TwCtx *>(Arg);
  icb_pthread_mutex_lock(&Cx->Lock);
  if (!Cx->Ready) {
    struct timespec Ts = {0, 1000};
    int Rc = icb_pthread_cond_timedwait(&Cx->Cond, &Cx->Lock, &Ts);
    icb_posix_assert(Rc == 0 || Rc == ETIMEDOUT, "timedwait rc");
    if (Rc == ETIMEDOUT)
      ++*Cx->TimedOutRuns;
    else
      ++*Cx->SignaledRuns;
  }
  icb_pthread_mutex_unlock(&Cx->Lock);
  return nullptr;
}

void *twSignaler(void *Arg) {
  TwCtx *Cx = static_cast<TwCtx *>(Arg);
  icb_pthread_mutex_lock(&Cx->Lock);
  Cx->Ready = 1;
  icb_pthread_cond_signal(&Cx->Cond);
  icb_pthread_mutex_unlock(&Cx->Lock);
  return nullptr;
}

TEST(PosixTimedwait, ExploresBothSignalAndExpiry) {
  int Signaled = 0, TimedOut = 0;
  ExploreResult R = explorePosix(
      [&Signaled, &TimedOut] {
        TwCtx Cx;
        Cx.SignaledRuns = &Signaled;
        Cx.TimedOutRuns = &TimedOut;
        pthread_t W, S;
        icb_pthread_create(&W, nullptr, twWaiter, &Cx);
        icb_pthread_create(&S, nullptr, twSignaler, &Cx);
        icb_pthread_join(W, nullptr);
        icb_pthread_join(S, nullptr);
      },
      /*MaxBound=*/2);
  EXPECT_TRUE(R.Bugs.empty()) << (R.Bugs.empty() ? "" : R.Bugs[0].str());
  // The waiter must have been woken by the signal in some schedules and by
  // the modeled expiry (equivalently a spurious wakeup) in others — a
  // timeout that only ever fires when no signal can arrive would hide
  // every lost-wakeup bug behind it.
  EXPECT_GT(Signaled, 0) << "no schedule delivered the signal";
  EXPECT_GT(TimedOut, 0) << "no schedule expired the wait";
}

//===----------------------------------------------------------------------===//
// Modeled timedlock/sem_timedwait: both outcomes of every release/expiry
// race are explored, glibc-faithful ETIMEDOUT
//===----------------------------------------------------------------------===//

struct TlCtx {
  pthread_mutex_t Lock = PTHREAD_MUTEX_INITIALIZER;
  sem_t Sem;
  int *WonRuns;
  int *TimedOutRuns;
};

void *tlContender(void *Arg) {
  TlCtx *Cx = static_cast<TlCtx *>(Arg);
  struct timespec Ts = {0, 1000};
  int Rc = icb_pthread_mutex_timedlock(&Cx->Lock, &Ts);
  icb_posix_assert(Rc == 0 || Rc == ETIMEDOUT, "timedlock rc");
  if (Rc == ETIMEDOUT) {
    ++*Cx->TimedOutRuns;
  } else {
    ++*Cx->WonRuns;
    icb_pthread_mutex_unlock(&Cx->Lock);
  }
  return nullptr;
}

void *tlHolder(void *Arg) {
  TlCtx *Cx = static_cast<TlCtx *>(Arg);
  icb_pthread_mutex_lock(&Cx->Lock);
  icb_pthread_mutex_unlock(&Cx->Lock);
  return nullptr;
}

TEST(PosixTimedlock, ExploresBothAcquireAndExpiry) {
  int Won = 0, TimedOut = 0;
  ExploreResult R = explorePosix(
      [&Won, &TimedOut] {
        TlCtx Cx;
        Cx.WonRuns = &Won;
        Cx.TimedOutRuns = &TimedOut;
        pthread_t C, H;
        icb_pthread_create(&C, nullptr, tlContender, &Cx);
        icb_pthread_create(&H, nullptr, tlHolder, &Cx);
        icb_pthread_join(C, nullptr);
        icb_pthread_join(H, nullptr);
      },
      /*MaxBound=*/2);
  EXPECT_TRUE(R.Bugs.empty()) << (R.Bugs.empty() ? "" : R.Bugs[0].str());
  EXPECT_GT(Won, 0) << "no schedule acquired the contended timedlock";
  EXPECT_GT(TimedOut, 0) << "no schedule expired the timedlock";
}

void timedlockErrnoBody() {
  // Invalid timespec: EINVAL before any scheduling, like glibc.
  pthread_mutex_t M = PTHREAD_MUTEX_INITIALIZER;
  struct timespec Bad = {0, 1000000000L};
  icb_posix_assert(icb_pthread_mutex_timedlock(&M, &Bad) == EINVAL,
                   "nsec out of range -> EINVAL");
  icb_posix_assert(icb_pthread_mutex_timedlock(&M, nullptr) == EINVAL,
                   "null abstime -> EINVAL");
  struct timespec Ts = {0, 1000};
  // Uncontended timedlock acquires.
  icb_posix_assert(icb_pthread_mutex_timedlock(&M, &Ts) == 0,
                   "free timedlock acquires");
  // ERRORCHECK self-timedlock: EDEADLK beats the modeled expiry.
  pthread_mutexattr_t A;
  icb_pthread_mutexattr_init(&A);
  icb_pthread_mutexattr_settype(&A, PTHREAD_MUTEX_ERRORCHECK);
  pthread_mutex_t E;
  icb_pthread_mutex_init(&E, &A);
  icb_posix_assert(icb_pthread_mutex_lock(&E) == 0, "errorcheck lock");
  icb_posix_assert(icb_pthread_mutex_timedlock(&E, &Ts) == EDEADLK,
                   "errorcheck self-timedlock -> EDEADLK");
  icb_pthread_mutex_unlock(&E);
  icb_pthread_mutex_destroy(&E);
  // RECURSIVE self-timedlock just deepens the hold.
  icb_pthread_mutexattr_settype(&A, PTHREAD_MUTEX_RECURSIVE);
  pthread_mutex_t Rm;
  icb_pthread_mutex_init(&Rm, &A);
  icb_posix_assert(icb_pthread_mutex_timedlock(&Rm, &Ts) == 0, "rec 1");
  icb_posix_assert(icb_pthread_mutex_timedlock(&Rm, &Ts) == 0, "rec 2");
  icb_pthread_mutex_unlock(&Rm);
  icb_pthread_mutex_unlock(&Rm);
  icb_pthread_mutex_destroy(&Rm);
  icb_pthread_mutexattr_destroy(&A);
  icb_pthread_mutex_unlock(&M);
  // NORMAL self-timedlock cannot acquire: the modeled expiry is the only
  // outcome (the real call spins out the clock and times out too).
  icb_pthread_mutex_lock(&M);
  icb_posix_assert(icb_pthread_mutex_timedlock(&M, &Ts) == ETIMEDOUT,
                   "normal self-timedlock -> ETIMEDOUT");
  icb_pthread_mutex_unlock(&M);
}

TEST(PosixTimedlock, ErrnoSemantics) {
  ExploreResult R = explorePosix(timedlockErrnoBody, /*MaxBound=*/1);
  EXPECT_TRUE(R.Bugs.empty()) << (R.Bugs.empty() ? "" : R.Bugs[0].str());
}

void *stContender(void *Arg) {
  TlCtx *Cx = static_cast<TlCtx *>(Arg);
  struct timespec Ts = {0, 1000};
  int Rc = icb_sem_timedwait(&Cx->Sem, &Ts);
  if (Rc == 0)
    ++*Cx->WonRuns;
  else if (errno == ETIMEDOUT)
    ++*Cx->TimedOutRuns;
  else
    icb_posix_assert(0, "sem_timedwait rc");
  return nullptr;
}

void *stPoster(void *Arg) {
  TlCtx *Cx = static_cast<TlCtx *>(Arg);
  icb_posix_assert(icb_sem_post(&Cx->Sem) == 0, "sem_post");
  return nullptr;
}

TEST(PosixSemTimedwait, ExploresBothPostAndExpiry) {
  int Won = 0, TimedOut = 0;
  ExploreResult R = explorePosix(
      [&Won, &TimedOut] {
        TlCtx Cx;
        Cx.WonRuns = &Won;
        Cx.TimedOutRuns = &TimedOut;
        icb_sem_init(&Cx.Sem, 0, 0);
        pthread_t C, P;
        icb_pthread_create(&C, nullptr, stContender, &Cx);
        icb_pthread_create(&P, nullptr, stPoster, &Cx);
        icb_pthread_join(C, nullptr);
        icb_pthread_join(P, nullptr);
        icb_sem_destroy(&Cx.Sem);
      },
      /*MaxBound=*/2);
  EXPECT_TRUE(R.Bugs.empty()) << (R.Bugs.empty() ? "" : R.Bugs[0].str());
  EXPECT_GT(Won, 0) << "no schedule let the post win";
  EXPECT_GT(TimedOut, 0) << "no schedule expired the wait";
}

void semTimedwaitErrnoBody() {
  sem_t S;
  icb_sem_init(&S, 0, 1);
  struct timespec Bad = {0, -1};
  errno = 0;
  icb_posix_assert(icb_sem_timedwait(&S, &Bad) == -1 && errno == EINVAL,
                   "negative nsec -> EINVAL");
  struct timespec Ts = {0, 1000};
  icb_posix_assert(icb_sem_timedwait(&S, &Ts) == 0,
                   "positive count acquires");
  errno = 0;
  icb_posix_assert(icb_sem_timedwait(&S, &Ts) == -1 && errno == ETIMEDOUT,
                   "drained semaphore -> ETIMEDOUT");
  icb_sem_destroy(&S);
}

TEST(PosixSemTimedwait, ErrnoSemantics) {
  ExploreResult R = explorePosix(semTimedwaitErrnoBody, /*MaxBound=*/1);
  EXPECT_TRUE(R.Bugs.empty()) << (R.Bugs.empty() ? "" : R.Bugs[0].str());
}

//===----------------------------------------------------------------------===//
// pthread_once: exactly one invocation on every schedule
//===----------------------------------------------------------------------===//

int *OnceCounter = nullptr;

void onceRoutine() { ++*OnceCounter; }

void *onceCaller(void *Arg) {
  icb_pthread_once(static_cast<pthread_once_t *>(Arg), onceRoutine);
  return nullptr;
}

TEST(PosixOnce, RunsExactlyOnceOnEverySchedule) {
  ExploreResult R = explorePosix(
      [] {
        int Count = 0;
        OnceCounter = &Count;
        pthread_once_t Control = PTHREAD_ONCE_INIT;
        pthread_t T[3];
        for (pthread_t &H : T)
          icb_pthread_create(&H, nullptr, onceCaller, &Control);
        icb_pthread_once(&Control, onceRoutine);
        for (pthread_t &H : T)
          icb_pthread_join(H, nullptr);
        icb_posix_assert(Count == 1, "pthread_once ran exactly once");
      },
      /*MaxBound=*/2);
  EXPECT_TRUE(R.Bugs.empty()) << (R.Bugs.empty() ? "" : R.Bugs[0].str());
  EXPECT_GT(R.Stats.Executions, 1u) << "the schedule space did not branch";
}

//===----------------------------------------------------------------------===//
// TLS destructors run at thread exit with the stored value
//===----------------------------------------------------------------------===//

void tlsDtor(void *P) { ++*static_cast<int *>(P); }

struct TlsCtx {
  pthread_key_t Key;
  int *DtorRuns;
};

void *tlsSetter(void *Arg) {
  TlsCtx *Cx = static_cast<TlsCtx *>(Arg);
  icb_posix_assert(icb_pthread_getspecific(Cx->Key) == nullptr,
                   "fresh thread sees no TLS value");
  icb_posix_assert(icb_pthread_setspecific(Cx->Key, Cx->DtorRuns) == 0,
                   "setspecific");
  icb_posix_assert(icb_pthread_getspecific(Cx->Key) == Cx->DtorRuns,
                   "getspecific reads back");
  return nullptr;
}

TEST(PosixTls, DestructorsRunPerThread) {
  ExploreResult R = explorePosix(
      [] {
        int DtorRuns = 0;
        TlsCtx Cx;
        Cx.DtorRuns = &DtorRuns;
        icb_posix_assert(icb_pthread_key_create(&Cx.Key, tlsDtor) == 0,
                         "key_create");
        pthread_t A, B;
        icb_pthread_create(&A, nullptr, tlsSetter, &Cx);
        icb_pthread_create(&B, nullptr, tlsSetter, &Cx);
        icb_pthread_join(A, nullptr);
        icb_pthread_join(B, nullptr);
        icb_posix_assert(DtorRuns == 2,
                         "one destructor run per exiting thread");
        icb_pthread_key_delete(Cx.Key);
      },
      /*MaxBound=*/1);
  EXPECT_TRUE(R.Bugs.empty()) << (R.Bugs.empty() ? "" : R.Bugs[0].str());
}

//===----------------------------------------------------------------------===//
// Barriers: nobody passes before everyone arrives, on every schedule
//===----------------------------------------------------------------------===//

struct BarCtx {
  pthread_barrier_t Bar;
  int Phase1 = 0;
  int Phase2 = 0;
  int Serial = 0;
};

void *barWorker(void *Arg) {
  BarCtx *Cx = static_cast<BarCtx *>(Arg);
  ++Cx->Phase1;
  int Rc = icb_pthread_barrier_wait(&Cx->Bar);
  icb_posix_assert(Rc == 0 || Rc == PTHREAD_BARRIER_SERIAL_THREAD,
                   "barrier_wait rc");
  if (Rc == PTHREAD_BARRIER_SERIAL_THREAD)
    ++Cx->Serial;
  icb_posix_assert(Cx->Phase1 == 3,
                   "no thread passes the barrier before all arrive");
  ++Cx->Phase2;
  Rc = icb_pthread_barrier_wait(&Cx->Bar);
  if (Rc == PTHREAD_BARRIER_SERIAL_THREAD)
    ++Cx->Serial;
  icb_posix_assert(Cx->Phase2 == 3, "second generation synchronizes too");
  return nullptr;
}

TEST(PosixBarrier, PhaseSynchronizationOnEverySchedule) {
  ExploreResult R = explorePosix(
      [] {
        BarCtx Cx;
        icb_posix_assert(
            icb_pthread_barrier_init(&Cx.Bar, nullptr, 0) == EINVAL,
            "count 0 -> EINVAL");
        icb_posix_assert(icb_pthread_barrier_init(&Cx.Bar, nullptr, 3) == 0,
                         "barrier_init");
        pthread_t T[3];
        for (pthread_t &H : T)
          icb_pthread_create(&H, nullptr, barWorker, &Cx);
        for (pthread_t &H : T)
          icb_pthread_join(H, nullptr);
        icb_posix_assert(Cx.Serial == 2,
                         "SERIAL_THREAD exactly once per generation");
        icb_posix_assert(icb_pthread_barrier_destroy(&Cx.Bar) == 0,
                         "barrier_destroy");
        // No static initializer exists for barriers: use before init (or
        // after destroy) is misuse, reported as EINVAL, never a hang.
        icb_posix_assert(icb_pthread_barrier_wait(&Cx.Bar) == EINVAL,
                         "wait after destroy -> EINVAL");
        pthread_barrier_t Cold;
        icb_posix_assert(icb_pthread_barrier_wait(&Cold) == EINVAL,
                         "wait before init -> EINVAL");
      },
      /*MaxBound=*/1);
  EXPECT_TRUE(R.Bugs.empty()) << (R.Bugs.empty() ? "" : R.Bugs[0].str());
  EXPECT_GT(R.Stats.Executions, 1u) << "the schedule space did not branch";
}

//===----------------------------------------------------------------------===//
// Spinlocks: blocking lock + trylock EBUSY, both outcomes explored
//===----------------------------------------------------------------------===//

struct SpinCtx {
  pthread_spinlock_t Lock;
  int Counter = 0;
  int *Acquired;
  int *Busy;
};

void *spinHolder(void *Arg) {
  SpinCtx *Cx = static_cast<SpinCtx *>(Arg);
  icb_posix_assert(icb_pthread_spin_lock(&Cx->Lock) == 0, "spin_lock");
  icb_sched_yield(); // Hold across a scheduling point.
  ++Cx->Counter;
  icb_posix_assert(icb_pthread_spin_unlock(&Cx->Lock) == 0, "spin_unlock");
  return nullptr;
}

void *spinTrier(void *Arg) {
  SpinCtx *Cx = static_cast<SpinCtx *>(Arg);
  int Rc = icb_pthread_spin_trylock(&Cx->Lock);
  if (Rc == 0) {
    ++Cx->Counter;
    icb_posix_assert(icb_pthread_spin_unlock(&Cx->Lock) == 0, "spin_unlock");
    ++*Cx->Acquired;
  } else {
    icb_posix_assert(Rc == EBUSY, "spin_trylock of held lock -> EBUSY");
    ++*Cx->Busy;
  }
  return nullptr;
}

TEST(PosixSpin, ExclusionAndTrylockBothWays) {
  int Acquired = 0, Busy = 0;
  ExploreResult R = explorePosix(
      [&Acquired, &Busy] {
        SpinCtx Cx;
        Cx.Acquired = &Acquired;
        Cx.Busy = &Busy;
        icb_posix_assert(
            icb_pthread_spin_init(&Cx.Lock, PTHREAD_PROCESS_PRIVATE) == 0,
            "spin_init");
        pthread_t H, T;
        icb_pthread_create(&H, nullptr, spinHolder, &Cx);
        icb_pthread_create(&T, nullptr, spinTrier, &Cx);
        icb_pthread_join(H, nullptr);
        icb_pthread_join(T, nullptr);
        // Destroy of a held lock must refuse.
        icb_posix_assert(icb_pthread_spin_lock(&Cx.Lock) == 0, "relock");
        icb_posix_assert(icb_pthread_spin_destroy(&Cx.Lock) == EBUSY,
                         "destroy of held spinlock -> EBUSY");
        icb_posix_assert(icb_pthread_spin_unlock(&Cx.Lock) == 0, "unlock");
        icb_posix_assert(icb_pthread_spin_destroy(&Cx.Lock) == 0,
                         "spin_destroy");
      },
      /*MaxBound=*/2);
  EXPECT_TRUE(R.Bugs.empty()) << (R.Bugs.empty() ? "" : R.Bugs[0].str());
  EXPECT_GT(Acquired, 0) << "no schedule let trylock win";
  EXPECT_GT(Busy, 0) << "no schedule made trylock observe EBUSY";
}

#ifdef ICB_POSIX_HAS_THREADS_H

//===----------------------------------------------------------------------===//
// C11 <threads.h>: aliases carry the same modeled semantics
//===----------------------------------------------------------------------===//

struct C11Ctx {
  mtx_t Lock;
  cnd_t Cond;
  int Ready = 0;
};

int c11Worker(void *Arg) {
  C11Ctx *Cx = static_cast<C11Ctx *>(Arg);
  icb_posix_assert(icb_mtx_lock(&Cx->Lock) == thrd_success, "mtx_lock");
  Cx->Ready = 1;
  icb_posix_assert(icb_cnd_signal(&Cx->Cond) == thrd_success, "cnd_signal");
  icb_posix_assert(icb_mtx_unlock(&Cx->Lock) == thrd_success, "mtx_unlock");
  return 42;
}

int c11Exiter(void *Arg) {
  (void)Arg;
  icb_thrd_exit(7); // Result must reach thrd_join like a plain return.
}

int *C11OnceCounter = nullptr;

void c11OnceRoutine() { ++*C11OnceCounter; }

void c11Body() {
  C11Ctx Cx;
  icb_posix_assert(icb_mtx_init(&Cx.Lock, mtx_plain) == thrd_success,
                   "mtx_init");
  icb_posix_assert(icb_cnd_init(&Cx.Cond) == thrd_success, "cnd_init");

  thrd_t W;
  icb_posix_assert(icb_thrd_create(&W, c11Worker, &Cx) == thrd_success,
                   "thrd_create");
  icb_posix_assert(!icb_thrd_equal(icb_thrd_current(), W),
                   "worker is not self");
  icb_posix_assert(icb_mtx_lock(&Cx.Lock) == thrd_success, "main mtx_lock");
  while (!Cx.Ready)
    icb_posix_assert(icb_cnd_wait(&Cx.Cond, &Cx.Lock) == thrd_success,
                     "cnd_wait");
  icb_posix_assert(icb_mtx_unlock(&Cx.Lock) == thrd_success,
                   "main mtx_unlock");
  int Res = 0;
  icb_posix_assert(icb_thrd_join(W, &Res) == thrd_success, "thrd_join");
  icb_posix_assert(Res == 42, "thrd_join reads the start routine's result");

  thrd_t E;
  icb_posix_assert(icb_thrd_create(&E, c11Exiter, nullptr) == thrd_success,
                   "thrd_create exiter");
  icb_posix_assert(icb_thrd_join(E, &Res) == thrd_success, "join exiter");
  icb_posix_assert(Res == 7, "thrd_exit result reaches thrd_join");

  // Recursive mutex type flag maps through.
  mtx_t Rec;
  icb_posix_assert(icb_mtx_init(&Rec, mtx_plain | mtx_recursive) ==
                       thrd_success,
                   "recursive mtx_init");
  icb_posix_assert(icb_mtx_lock(&Rec) == thrd_success, "rec lock 1");
  icb_posix_assert(icb_mtx_lock(&Rec) == thrd_success, "rec lock 2");
  icb_posix_assert(icb_mtx_trylock(&Rec) == thrd_success, "rec trylock");
  icb_posix_assert(icb_mtx_unlock(&Rec) == thrd_success, "rec unlock 3");
  icb_posix_assert(icb_mtx_unlock(&Rec) == thrd_success, "rec unlock 2");
  icb_posix_assert(icb_mtx_unlock(&Rec) == thrd_success, "rec unlock 1");
  icb_mtx_destroy(&Rec);

  // Unsignaled cnd_timedwait: the modeled expiry is the only outcome.
  struct timespec Ts = {0, 1000};
  icb_posix_assert(icb_mtx_lock(&Cx.Lock) == thrd_success, "tw lock");
  icb_posix_assert(icb_cnd_timedwait(&Cx.Cond, &Cx.Lock, &Ts) ==
                       thrd_timedout,
                   "unsignaled cnd_timedwait -> thrd_timedout");
  icb_posix_assert(icb_mtx_unlock(&Cx.Lock) == thrd_success, "tw unlock");

  int OnceRuns = 0;
  C11OnceCounter = &OnceRuns;
  once_flag Flag = ONCE_FLAG_INIT;
  icb_call_once(&Flag, c11OnceRoutine);
  icb_call_once(&Flag, c11OnceRoutine);
  icb_posix_assert(OnceRuns == 1, "call_once ran exactly once");

  tss_t Key;
  int Slot = 0;
  icb_posix_assert(icb_tss_create(&Key, nullptr) == thrd_success,
                   "tss_create");
  icb_posix_assert(icb_tss_get(Key) == nullptr, "fresh tss slot is null");
  icb_posix_assert(icb_tss_set(Key, &Slot) == thrd_success, "tss_set");
  icb_posix_assert(icb_tss_get(Key) == &Slot, "tss_get reads back");
  icb_tss_delete(Key);

  icb_cnd_destroy(&Cx.Cond);
  icb_mtx_destroy(&Cx.Lock);
}

TEST(PosixC11, ThreadsMutexesCondOnceTlsOnEverySchedule) {
  ExploreResult R = explorePosix(c11Body, /*MaxBound=*/2);
  EXPECT_TRUE(R.Bugs.empty()) << (R.Bugs.empty() ? "" : R.Bugs[0].str());
  EXPECT_GT(R.Stats.Executions, 1u) << "the schedule space did not branch";
}

#endif // ICB_POSIX_HAS_THREADS_H

//===----------------------------------------------------------------------===//
// The examples/posix lost-wakeup deadlock, in-tree: the bound guarantee
//===----------------------------------------------------------------------===//

struct PcCtx {
  pthread_mutex_t Lock = PTHREAD_MUTEX_INITIALIZER;
  pthread_cond_t Ready = PTHREAD_COND_INITIALIZER;
  sem_t Tick;
  int DataReady = 0;
};

void *pcConsumer(void *Arg) {
  PcCtx *Cx = static_cast<PcCtx *>(Arg);
  icb_sem_post(&Cx->Tick);
  icb_pthread_mutex_lock(&Cx->Lock);
  if (!Cx->DataReady) // BUG: if-not-while + signal outside the lock.
    icb_pthread_cond_wait(&Cx->Ready, &Cx->Lock);
  icb_pthread_mutex_unlock(&Cx->Lock);
  return nullptr;
}

void *pcProducer(void *Arg) {
  PcCtx *Cx = static_cast<PcCtx *>(Arg);
  icb_sem_wait(&Cx->Tick);
  icb_pthread_cond_signal(&Cx->Ready); // Lost if the consumer isn't waiting.
  icb_pthread_mutex_lock(&Cx->Lock);
  Cx->DataReady = 1;
  icb_pthread_mutex_unlock(&Cx->Lock);
  return nullptr;
}

void prodConsBody() {
  PcCtx Cx;
  icb_sem_init(&Cx.Tick, 0, 0);
  pthread_t C, P;
  icb_pthread_create(&C, nullptr, pcConsumer, &Cx);
  icb_pthread_create(&P, nullptr, pcProducer, &Cx);
  icb_pthread_join(C, nullptr);
  icb_pthread_join(P, nullptr);
  icb_sem_destroy(&Cx.Tick);
}

TEST(PosixProdCons, CleanBelowTheBugsBound) {
  ExploreResult R = explorePosix(prodConsBody, /*MaxBound=*/1);
  EXPECT_TRUE(R.Bugs.empty()) << (R.Bugs.empty() ? "" : R.Bugs[0].str());
  // Completed stays false: the preemption bound truncated the space (the
  // bug two preemptions away is exactly what was cut off).
  EXPECT_FALSE(R.Stats.Completed);
}

TEST(PosixProdCons, DeadlockExposedAtBoundTwo) {
  ExploreResult R =
      explorePosix(prodConsBody, /*MaxBound=*/2, /*StopAtFirst=*/true);
  ASSERT_EQ(R.Bugs.size(), 1u);
  EXPECT_EQ(R.Bugs[0].Kind, search::BugKind::Deadlock);
  EXPECT_EQ(R.Bugs[0].Preemptions, 2u)
      << "the lost wakeup needs exactly two preemptions";
}

TEST(PosixProdCons, DeadlockSurvivesPartialOrderReduction) {
  // Regression: a signal must never be treated as independent of a
  // sleeper's upcoming wait — the enqueue runs in the slice behind the
  // waiter's MutexLock point, invisible to var codes, and pruning on it
  // hides exactly this lost-wakeup deadlock.
  ExploreResult Off = explorePosix(prodConsBody, /*MaxBound=*/2);
  ExploreResult On = explorePosix(prodConsBody, /*MaxBound=*/2,
                                  /*StopAtFirst=*/false, /*Jobs=*/1,
                                  /*Metrics=*/nullptr, /*Por=*/true);
  ASSERT_EQ(On.Bugs.size(), Off.Bugs.size());
  ASSERT_FALSE(On.Bugs.empty());
  EXPECT_EQ(On.Bugs[0].Kind, search::BugKind::Deadlock);
  EXPECT_EQ(On.Bugs[0].Preemptions, Off.Bugs[0].Preemptions);
  EXPECT_LT(On.Stats.Executions, Off.Stats.Executions)
      << "POR stopped pruning anything through the shim";
}

//===----------------------------------------------------------------------===//
// Determinism: a jobs-4 run through the shim matches jobs-1 exactly
//===----------------------------------------------------------------------===//

TEST(PosixDeterminism, JobsOneVersusFour) {
  obs::MetricsRegistry M1, M4;
  ExploreResult Seq = explorePosix(prodConsBody, /*MaxBound=*/2,
                                   /*StopAtFirst=*/false, /*Jobs=*/1, &M1);
  ExploreResult Par = explorePosix(prodConsBody, /*MaxBound=*/2,
                                   /*StopAtFirst=*/false, /*Jobs=*/4, &M4);
  testutil::expectIdenticalResults(Seq, Par);
  testutil::expectSameDeterministicMetrics(M1.snapshot(), M4.snapshot());
}

} // namespace
