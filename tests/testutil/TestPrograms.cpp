//===- tests/testutil/TestPrograms.cpp - Shared tiny model programs --------===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//

#include "testutil/TestPrograms.h"
#include "support/Format.h"

using namespace icb;
using namespace icb::vm;

Program icb::testutil::racyCounter(unsigned Workers) {
  ProgramBuilder PB(strFormat("racy-counter-%u", Workers));
  GlobalVar Counter = PB.addGlobal("counter", 0);

  std::vector<ThreadRef> Refs;
  // Declare main first so thread 0 is the driver (cosmetic only).
  ThreadBuilder &Main = PB.addThread("main");
  for (unsigned I = 0; I != Workers; ++I) {
    ThreadBuilder &W = PB.addThread(strFormat("worker%u", I));
    Refs.push_back(W.ref());
    W.incrNonAtomic(Counter, Reg{0});
    W.halt();
  }
  for (ThreadRef R : Refs)
    Main.join(R);
  Main.assertGlobalEq(Counter, Workers, Reg{0}, Reg{1},
                      "lost update: counter != number of workers");
  Main.halt();
  return PB.build();
}

Program icb::testutil::atomicCounter(unsigned Workers) {
  ProgramBuilder PB(strFormat("atomic-counter-%u", Workers));
  GlobalVar Counter = PB.addGlobal("counter", 0);

  ThreadBuilder &Main = PB.addThread("main");
  std::vector<ThreadRef> Refs;
  for (unsigned I = 0; I != Workers; ++I) {
    ThreadBuilder &W = PB.addThread(strFormat("worker%u", I));
    Refs.push_back(W.ref());
    W.imm(Reg{1}, 1);
    W.addG(Reg{0}, Counter, Reg{1});
    W.halt();
  }
  for (ThreadRef R : Refs)
    Main.join(R);
  Main.assertGlobalEq(Counter, Workers, Reg{0}, Reg{1},
                      "atomic counter must equal number of workers");
  Main.halt();
  return PB.build();
}

Program icb::testutil::lockOrderDeadlock() {
  ProgramBuilder PB("lock-order-deadlock");
  LockVar A = PB.addLock("A");
  LockVar B = PB.addLock("B");

  ThreadBuilder &T1 = PB.addThread("t1");
  T1.lock(A);
  T1.lock(B);
  T1.unlock(B);
  T1.unlock(A);
  T1.halt();

  ThreadBuilder &T2 = PB.addThread("t2");
  T2.lock(B);
  T2.lock(A);
  T2.unlock(A);
  T2.unlock(B);
  T2.halt();
  return PB.build();
}

Program icb::testutil::eventPingPong(unsigned Rounds) {
  ProgramBuilder PB(strFormat("event-ping-pong-%u", Rounds));
  EventVar Ping = PB.addEvent("ping", /*ManualReset=*/false,
                              /*InitiallySet=*/true);
  EventVar Pong = PB.addEvent("pong");

  auto EmitLoop = [Rounds](ThreadBuilder &T, EventVar WaitOn, EventVar Set) {
    Label Loop = T.newLabel();
    Label End = T.newLabel();
    T.imm(Reg{0}, Rounds);
    T.bind(Loop);
    T.bz(Reg{0}, End);
    T.waitE(WaitOn);
    T.setE(Set);
    T.imm(Reg{1}, 1);
    T.sub(Reg{0}, Reg{0}, Reg{1});
    T.jmp(Loop);
    T.bind(End);
    T.halt();
  };

  EmitLoop(PB.addThread("pinger"), Ping, Pong);
  EmitLoop(PB.addThread("ponger"), Pong, Ping);
  return PB.build();
}

Program icb::testutil::semaphoreBuffer(unsigned Slots, unsigned Items) {
  ProgramBuilder PB(strFormat("sem-buffer-%u-%u", Slots, Items));
  SemVar Empty = PB.addSemaphore("empty", static_cast<int32_t>(Slots));
  SemVar Full = PB.addSemaphore("full", 0);

  auto EmitLoop = [Items](ThreadBuilder &T, SemVar Take, SemVar Give) {
    Label Loop = T.newLabel();
    Label End = T.newLabel();
    T.imm(Reg{0}, Items);
    T.bind(Loop);
    T.bz(Reg{0}, End);
    T.semP(Take);
    T.semV(Give);
    T.imm(Reg{1}, 1);
    T.sub(Reg{0}, Reg{0}, Reg{1});
    T.jmp(Loop);
    T.bind(End);
    T.halt();
  };

  EmitLoop(PB.addThread("producer"), Empty, Full);
  EmitLoop(PB.addThread("consumer"), Full, Empty);
  return PB.build();
}

Program icb::testutil::preemptionLadder(unsigned NeededPreemptions) {
  // With w observation windows the attacker needs 2w-1 preemptions (switch
  // into the window, switch back to the victim, ... , final switch in).
  // Round the request up to the nearest odd count.
  unsigned Windows = (NeededPreemptions + 1) / 2;
  if (Windows == 0)
    Windows = 1;
  ProgramBuilder PB(strFormat("preemption-ladder-%u", Windows));

  std::vector<GlobalVar> Flags;
  for (unsigned I = 0; I != Windows; ++I)
    Flags.push_back(PB.addGlobal(strFormat("flag%u", I), 0));

  ThreadBuilder &Victim = PB.addThread("victim");
  for (GlobalVar Flag : Flags) {
    Victim.storeImm(Flag, 1, Reg{0}); // Window opens.
    Victim.storeImm(Flag, 0, Reg{0}); // Window closes.
  }
  Victim.halt();

  ThreadBuilder &Attacker = PB.addThread("attacker");
  // Observe every window; r1..rW hold the observations.
  for (unsigned I = 0; I != Windows; ++I)
    Attacker.loadG(Reg{static_cast<uint8_t>(1 + I)}, Flags[I]);
  Attacker.mov(Reg{0}, Reg{1});
  for (unsigned I = 1; I != Windows; ++I)
    Attacker.bitAnd(Reg{0}, Reg{0}, Reg{static_cast<uint8_t>(1 + I)});
  Attacker.logicalNot(Reg{0}, Reg{0});
  Attacker.assertTrue(Reg{0},
                      "attacker observed every window open (ladder bug)");
  Attacker.halt();
  return PB.build();
}
