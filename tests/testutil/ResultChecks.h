//===- tests/testutil/ResultChecks.h - Canonical result comparison -*- C++ -*-//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The canonical "two runs are indistinguishable" assertions, shared by
/// every determinism suite: cross-engine agreement, parallel-vs-sequential
/// drivers, and checkpoint/resume. Both executors report through
/// search::SearchResult (rt::ExploreResult is an alias), so one set of
/// helpers covers them all. Keep additions here rather than growing
/// per-test copies — a comparison the resume tests skip is a divergence
/// the resume tests cannot catch.
///
//===----------------------------------------------------------------------===//

#ifndef ICB_TESTS_TESTUTIL_RESULTCHECKS_H
#define ICB_TESTS_TESTUTIL_RESULTCHECKS_H

#include "obs/Metrics.h"
#include "search/SearchTypes.h"
#include <gtest/gtest.h>
#include <string>
#include <vector>

namespace icb::testutil {

/// Per-bound coverage snapshots must match bound-by-bound.
inline void expectSamePerBound(const std::vector<search::BoundCoverage> &L,
                               const std::vector<search::BoundCoverage> &R) {
  ASSERT_EQ(L.size(), R.size());
  for (size_t I = 0; I != L.size(); ++I) {
    EXPECT_EQ(L[I].Bound, R[I].Bound) << "bound index " << I;
    EXPECT_EQ(L[I].Executions, R[I].Executions) << "bound " << L[I].Bound;
    EXPECT_EQ(L[I].States, R[I].States) << "bound " << L[I].Bound;
  }
}

/// Everything icb_check would print, and then some: aggregate statistics,
/// per-bound coverage, and byte-identical canonical bug reports. Used to
/// assert a parallel run is indistinguishable from a sequential one and a
/// resumed run from an uninterrupted one.
inline void expectIdenticalResults(const search::SearchResult &L,
                                   const search::SearchResult &R) {
  EXPECT_EQ(L.Stats.Executions, R.Stats.Executions);
  EXPECT_EQ(L.Stats.TotalSteps, R.Stats.TotalSteps);
  EXPECT_EQ(L.Stats.DistinctStates, R.Stats.DistinctStates);
  EXPECT_EQ(L.Stats.DistinctTerminalStates, R.Stats.DistinctTerminalStates);
  EXPECT_EQ(L.Stats.Completed, R.Stats.Completed);
  expectSamePerBound(L.Stats.PerBound, R.Stats.PerBound);
  ASSERT_EQ(L.Bugs.size(), R.Bugs.size());
  for (size_t I = 0; I != L.Bugs.size(); ++I) {
    EXPECT_EQ(L.Bugs[I].Kind, R.Bugs[I].Kind);
    EXPECT_EQ(L.Bugs[I].str(), R.Bugs[I].str());
    EXPECT_EQ(L.Bugs[I].Sched.length(), R.Bugs[I].Sched.length());
  }
}

/// Two histograms must agree bucket-by-bucket (missing buckets read 0).
inline void expectSameHistogram(const char *What, const Histogram &L,
                                const Histogram &R) {
  size_t Buckets = std::max(L.size(), R.size());
  for (size_t I = 0; I != Buckets; ++I)
    EXPECT_EQ(L.at(I), R.at(I)) << What << " at bound " << I;
}

/// The work-derived half of two metrics snapshots must agree exactly:
/// deterministic counters, the replay-depth distribution, the per-bound
/// execution and estimator-mass histograms, and the tree-derived columns
/// of every preemption-site profile (Taken at defer time, Execs at every
/// item-start, pruned or not) are all independent of worker count and of
/// checkpoint/resume splits. The timing half (phase durations, steal
/// counters, busy/idle, per-site NewStates and Bugs — the shared
/// work-item cache admits exactly one of several same-digest chains, so
/// which site's chain runs past the claim and observes what lies
/// downstream depends on worker timing) is never compared — it describes
/// one particular run.
inline void
expectSameDeterministicMetrics(const obs::MetricsSnapshot &L,
                               const obs::MetricsSnapshot &R) {
  for (size_t I = 0; I != obs::NumCounters; ++I) {
    auto C = static_cast<obs::Counter>(I);
    if (!obs::counterIsDeterministic(C))
      continue;
    uint64_t LV = I < L.Counters.size() ? L.Counters[I] : 0;
    uint64_t RV = I < R.Counters.size() ? R.Counters[I] : 0;
    EXPECT_EQ(LV, RV) << "counter " << obs::counterName(C);
  }
  EXPECT_EQ(L.ReplayDepth.count(), R.ReplayDepth.count());
  EXPECT_EQ(L.ReplayDepth.min(), R.ReplayDepth.min());
  EXPECT_EQ(L.ReplayDepth.max(), R.ReplayDepth.max());
  EXPECT_EQ(L.ReplayDepth.sum(), R.ReplayDepth.sum());
  expectSameHistogram("executions", L.ExecutionsPerBound,
                      R.ExecutionsPerBound);
  expectSameHistogram("sleep-saved", L.SleepSavedPerBound,
                      R.SleepSavedPerBound);
  expectSameHistogram("estimator mass", L.EstMassPerBound, R.EstMassPerBound);
  // Site profiles: one side may hold sites the other never touched only
  // if all their tree-derived columns are empty (NewStates/Bugs-only
  // entries are timing-class attribution).
  auto TreeEmpty = [](const obs::SiteStat &S) {
    return S.Taken.total() == 0 && S.Execs.total() == 0;
  };
  for (const auto &[Name, LS] : L.Sites) {
    auto It = R.Sites.find(Name);
    if (It == R.Sites.end()) {
      EXPECT_TRUE(TreeEmpty(LS)) << "site '" << Name << "' only on one side";
      continue;
    }
    expectSameHistogram(("site '" + Name + "' taken").c_str(), LS.Taken,
                        It->second.Taken);
    expectSameHistogram(("site '" + Name + "' execs").c_str(), LS.Execs,
                        It->second.Execs);
  }
  for (const auto &[Name, RS] : R.Sites) {
    if (!L.Sites.count(Name)) {
      EXPECT_TRUE(TreeEmpty(RS)) << "site '" << Name << "' only on one side";
    }
  }
}

} // namespace icb::testutil

#endif // ICB_TESTS_TESTUTIL_RESULTCHECKS_H
