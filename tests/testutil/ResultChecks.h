//===- tests/testutil/ResultChecks.h - Canonical result comparison -*- C++ -*-//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The canonical "two runs are indistinguishable" assertions, shared by
/// every determinism suite: cross-engine agreement, parallel-vs-sequential
/// drivers, and checkpoint/resume. Both executors report through
/// search::SearchResult (rt::ExploreResult is an alias), so one set of
/// helpers covers them all. Keep additions here rather than growing
/// per-test copies — a comparison the resume tests skip is a divergence
/// the resume tests cannot catch.
///
//===----------------------------------------------------------------------===//

#ifndef ICB_TESTS_TESTUTIL_RESULTCHECKS_H
#define ICB_TESTS_TESTUTIL_RESULTCHECKS_H

#include "obs/Metrics.h"
#include "search/SearchTypes.h"
#include <gtest/gtest.h>
#include <vector>

namespace icb::testutil {

/// Per-bound coverage snapshots must match bound-by-bound.
inline void expectSamePerBound(const std::vector<search::BoundCoverage> &L,
                               const std::vector<search::BoundCoverage> &R) {
  ASSERT_EQ(L.size(), R.size());
  for (size_t I = 0; I != L.size(); ++I) {
    EXPECT_EQ(L[I].Bound, R[I].Bound) << "bound index " << I;
    EXPECT_EQ(L[I].Executions, R[I].Executions) << "bound " << L[I].Bound;
    EXPECT_EQ(L[I].States, R[I].States) << "bound " << L[I].Bound;
  }
}

/// Everything icb_check would print, and then some: aggregate statistics,
/// per-bound coverage, and byte-identical canonical bug reports. Used to
/// assert a parallel run is indistinguishable from a sequential one and a
/// resumed run from an uninterrupted one.
inline void expectIdenticalResults(const search::SearchResult &L,
                                   const search::SearchResult &R) {
  EXPECT_EQ(L.Stats.Executions, R.Stats.Executions);
  EXPECT_EQ(L.Stats.TotalSteps, R.Stats.TotalSteps);
  EXPECT_EQ(L.Stats.DistinctStates, R.Stats.DistinctStates);
  EXPECT_EQ(L.Stats.DistinctTerminalStates, R.Stats.DistinctTerminalStates);
  EXPECT_EQ(L.Stats.Completed, R.Stats.Completed);
  expectSamePerBound(L.Stats.PerBound, R.Stats.PerBound);
  ASSERT_EQ(L.Bugs.size(), R.Bugs.size());
  for (size_t I = 0; I != L.Bugs.size(); ++I) {
    EXPECT_EQ(L.Bugs[I].Kind, R.Bugs[I].Kind);
    EXPECT_EQ(L.Bugs[I].str(), R.Bugs[I].str());
    EXPECT_EQ(L.Bugs[I].Sched.length(), R.Bugs[I].Sched.length());
  }
}

/// The work-derived half of two metrics snapshots must agree exactly:
/// deterministic counters, the replay-depth distribution, and the
/// per-bound execution histogram are all independent of worker count and
/// of checkpoint/resume splits. The timing half (phase durations, steal
/// counters, busy/idle) is never compared — it describes one particular
/// run.
inline void
expectSameDeterministicMetrics(const obs::MetricsSnapshot &L,
                               const obs::MetricsSnapshot &R) {
  for (size_t I = 0; I != obs::NumCounters; ++I) {
    auto C = static_cast<obs::Counter>(I);
    if (!obs::counterIsDeterministic(C))
      continue;
    uint64_t LV = I < L.Counters.size() ? L.Counters[I] : 0;
    uint64_t RV = I < R.Counters.size() ? R.Counters[I] : 0;
    EXPECT_EQ(LV, RV) << "counter " << obs::counterName(C);
  }
  EXPECT_EQ(L.ReplayDepth.count(), R.ReplayDepth.count());
  EXPECT_EQ(L.ReplayDepth.min(), R.ReplayDepth.min());
  EXPECT_EQ(L.ReplayDepth.max(), R.ReplayDepth.max());
  EXPECT_EQ(L.ReplayDepth.sum(), R.ReplayDepth.sum());
  EXPECT_EQ(L.ExecutionsPerBound.total(), R.ExecutionsPerBound.total());
  size_t Buckets =
      std::max(L.ExecutionsPerBound.size(), R.ExecutionsPerBound.size());
  for (size_t I = 0; I != Buckets; ++I)
    EXPECT_EQ(L.ExecutionsPerBound.at(I), R.ExecutionsPerBound.at(I))
        << "executions at bound " << I;
}

} // namespace icb::testutil

#endif // ICB_TESTS_TESTUTIL_RESULTCHECKS_H
