//===- tests/testutil/ResultChecks.h - Canonical result comparison -*- C++ -*-//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The canonical "two runs are indistinguishable" assertions, shared by
/// every determinism suite: cross-engine agreement, parallel-vs-sequential
/// drivers, and checkpoint/resume. Both executors report through
/// search::SearchResult (rt::ExploreResult is an alias), so one set of
/// helpers covers them all. Keep additions here rather than growing
/// per-test copies — a comparison the resume tests skip is a divergence
/// the resume tests cannot catch.
///
//===----------------------------------------------------------------------===//

#ifndef ICB_TESTS_TESTUTIL_RESULTCHECKS_H
#define ICB_TESTS_TESTUTIL_RESULTCHECKS_H

#include "search/SearchTypes.h"
#include <gtest/gtest.h>
#include <vector>

namespace icb::testutil {

/// Per-bound coverage snapshots must match bound-by-bound.
inline void expectSamePerBound(const std::vector<search::BoundCoverage> &L,
                               const std::vector<search::BoundCoverage> &R) {
  ASSERT_EQ(L.size(), R.size());
  for (size_t I = 0; I != L.size(); ++I) {
    EXPECT_EQ(L[I].Bound, R[I].Bound) << "bound index " << I;
    EXPECT_EQ(L[I].Executions, R[I].Executions) << "bound " << L[I].Bound;
    EXPECT_EQ(L[I].States, R[I].States) << "bound " << L[I].Bound;
  }
}

/// Everything icb_check would print, and then some: aggregate statistics,
/// per-bound coverage, and byte-identical canonical bug reports. Used to
/// assert a parallel run is indistinguishable from a sequential one and a
/// resumed run from an uninterrupted one.
inline void expectIdenticalResults(const search::SearchResult &L,
                                   const search::SearchResult &R) {
  EXPECT_EQ(L.Stats.Executions, R.Stats.Executions);
  EXPECT_EQ(L.Stats.TotalSteps, R.Stats.TotalSteps);
  EXPECT_EQ(L.Stats.DistinctStates, R.Stats.DistinctStates);
  EXPECT_EQ(L.Stats.DistinctTerminalStates, R.Stats.DistinctTerminalStates);
  EXPECT_EQ(L.Stats.Completed, R.Stats.Completed);
  expectSamePerBound(L.Stats.PerBound, R.Stats.PerBound);
  ASSERT_EQ(L.Bugs.size(), R.Bugs.size());
  for (size_t I = 0; I != L.Bugs.size(); ++I) {
    EXPECT_EQ(L.Bugs[I].Kind, R.Bugs[I].Kind);
    EXPECT_EQ(L.Bugs[I].str(), R.Bugs[I].str());
    EXPECT_EQ(L.Bugs[I].Sched.length(), R.Bugs[I].Sched.length());
  }
}

} // namespace icb::testutil

#endif // ICB_TESTS_TESTUTIL_RESULTCHECKS_H
