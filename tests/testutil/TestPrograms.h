//===- tests/testutil/TestPrograms.h - Shared tiny model programs -*- C++ -*-===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small model programs used across the unit tests: a racy counter, its
/// atomic fix, a lock-order deadlock, and event/semaphore ping-pong models.
///
//===----------------------------------------------------------------------===//

#ifndef ICB_TESTS_TESTUTIL_TESTPROGRAMS_H
#define ICB_TESTS_TESTUTIL_TESTPROGRAMS_H

#include "vm/Builder.h"
#include "vm/Program.h"

namespace icb::testutil {

/// N workers each increment a shared counter once, non-atomically; a main
/// thread joins them and asserts the count equals N. The classic lost
/// update: fails with exactly 1 preemption (for N >= 2).
vm::Program racyCounter(unsigned Workers);

/// Same as racyCounter but with atomic increments: no reachable bug.
vm::Program atomicCounter(unsigned Workers);

/// Two threads acquire two locks in opposite orders: a deadlock reachable
/// with exactly 1 preemption.
vm::Program lockOrderDeadlock();

/// Two threads ping-pong over two auto-reset events N times each; always
/// terminates, fully serialized (0 preemptions reach everything).
vm::Program eventPingPong(unsigned Rounds);

/// A bounded-buffer producer/consumer over semaphores; no bug.
vm::Program semaphoreBuffer(unsigned Slots, unsigned Items);

/// A bug that requires at least \p NeededPreemptions preemptions to
/// expose: a chain of flag checks that only fails if the victim thread is
/// preempted inside each of its critical windows.
vm::Program preemptionLadder(unsigned NeededPreemptions);

} // namespace icb::testutil

#endif // ICB_TESTS_TESTUTIL_TESTPROGRAMS_H
