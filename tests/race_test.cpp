//===- tests/race_test.cpp - Race detector unit tests ----------------------===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unit-tests the two race detectors directly on hand-built event streams,
/// then cross-checks them on thousands of randomized executions: Section
/// 3.1's soundness rests on race detection being correct, so the
/// vector-clock and Goldilocks-style detectors must agree exactly.
///
//===----------------------------------------------------------------------===//

#include "race/DynamicPartition.h"
#include "race/Goldilocks.h"
#include "race/VcRaceDetector.h"
#include "support/Prng.h"
#include <gtest/gtest.h>
#include <memory>

using namespace icb;
using namespace icb::race;

namespace {

constexpr uint64_t VarX = 100;
constexpr uint64_t VarY = 101;
constexpr uint64_t LockM = 200;
constexpr uint64_t LockN = 201;

template <typename DetectorT> class RaceDetectorTest : public ::testing::Test {
protected:
  DetectorT Detector{4};
};

using DetectorTypes = ::testing::Types<VcRaceDetector, GoldilocksDetector>;

TYPED_TEST_SUITE(RaceDetectorTest, DetectorTypes, );

TYPED_TEST(RaceDetectorTest, UnorderedWritesRace) {
  auto &D = this->Detector;
  EXPECT_FALSE(D.onDataAccess(0, VarX, /*IsWrite=*/true).has_value());
  auto Race = D.onDataAccess(1, VarX, /*IsWrite=*/true);
  ASSERT_TRUE(Race.has_value());
  EXPECT_EQ(Race->FirstTid, 0u);
  EXPECT_EQ(Race->SecondTid, 1u);
  EXPECT_TRUE(Race->FirstWasWrite);
  EXPECT_TRUE(Race->SecondWasWrite);
}

TYPED_TEST(RaceDetectorTest, LockOrderingPreventsRace) {
  auto &D = this->Detector;
  D.onSyncOp(0, LockM);
  EXPECT_FALSE(D.onDataAccess(0, VarX, true).has_value());
  D.onSyncOp(0, LockM); // Unlock (every sync op releases knowledge).
  D.onSyncOp(1, LockM); // Other thread acquires.
  EXPECT_FALSE(D.onDataAccess(1, VarX, true).has_value());
}

TYPED_TEST(RaceDetectorTest, WrongLockDoesNotOrder) {
  auto &D = this->Detector;
  D.onSyncOp(0, LockM);
  EXPECT_FALSE(D.onDataAccess(0, VarX, true).has_value());
  D.onSyncOp(0, LockM);
  D.onSyncOp(1, LockN); // Different lock: no ordering.
  EXPECT_TRUE(D.onDataAccess(1, VarX, true).has_value());
}

TYPED_TEST(RaceDetectorTest, ConcurrentReadsDoNotRace) {
  auto &D = this->Detector;
  EXPECT_FALSE(D.onDataAccess(0, VarX, false).has_value());
  EXPECT_FALSE(D.onDataAccess(1, VarX, false).has_value());
  EXPECT_FALSE(D.onDataAccess(2, VarX, false).has_value());
}

TYPED_TEST(RaceDetectorTest, WriteAfterUnorderedReadRaces) {
  auto &D = this->Detector;
  EXPECT_FALSE(D.onDataAccess(0, VarX, false).has_value());
  auto Race = D.onDataAccess(1, VarX, true);
  ASSERT_TRUE(Race.has_value());
  EXPECT_FALSE(Race->FirstWasWrite);
  EXPECT_TRUE(Race->SecondWasWrite);
}

TYPED_TEST(RaceDetectorTest, ReadAfterUnorderedWriteRaces) {
  auto &D = this->Detector;
  EXPECT_FALSE(D.onDataAccess(0, VarX, true).has_value());
  auto Race = D.onDataAccess(1, VarX, false);
  ASSERT_TRUE(Race.has_value());
  EXPECT_TRUE(Race->FirstWasWrite);
  EXPECT_FALSE(Race->SecondWasWrite);
}

TYPED_TEST(RaceDetectorTest, SameThreadAlwaysOrdered) {
  auto &D = this->Detector;
  EXPECT_FALSE(D.onDataAccess(0, VarX, true).has_value());
  EXPECT_FALSE(D.onDataAccess(0, VarX, false).has_value());
  EXPECT_FALSE(D.onDataAccess(0, VarX, true).has_value());
}

TYPED_TEST(RaceDetectorTest, TransitiveOrderingThroughChainOfLocks) {
  auto &D = this->Detector;
  EXPECT_FALSE(D.onDataAccess(0, VarX, true).has_value());
  D.onSyncOp(0, LockM);
  D.onSyncOp(1, LockM);
  D.onSyncOp(1, LockN);
  D.onSyncOp(2, LockN);
  // Thread 2 is ordered after thread 0's write via M then N.
  EXPECT_FALSE(D.onDataAccess(2, VarX, true).has_value());
}

TYPED_TEST(RaceDetectorTest, IndependentVariablesDoNotInterfere) {
  auto &D = this->Detector;
  EXPECT_FALSE(D.onDataAccess(0, VarX, true).has_value());
  EXPECT_FALSE(D.onDataAccess(1, VarY, true).has_value());
  // Y was written by thread 1; thread 0's unordered read races, and the
  // write to X never interferes with Y's history.
  EXPECT_TRUE(D.onDataAccess(0, VarY, false).has_value());
}

TYPED_TEST(RaceDetectorTest, SyncAfterAccessPublishes) {
  auto &D = this->Detector;
  // t0: write X; release M. t1: acquire M; write X: ordered.
  // t2 (never synced): write X: races with t1's write.
  EXPECT_FALSE(D.onDataAccess(0, VarX, true).has_value());
  D.onSyncOp(0, LockM);
  D.onSyncOp(1, LockM);
  EXPECT_FALSE(D.onDataAccess(1, VarX, true).has_value());
  EXPECT_TRUE(D.onDataAccess(2, VarX, true).has_value());
}

//===----------------------------------------------------------------------===//
// Randomized cross-check: the two detectors must agree exactly.
//===----------------------------------------------------------------------===//

struct RandomEvent {
  bool IsSync;
  uint32_t Tid;
  uint64_t Var;
  bool IsWrite;
};

std::vector<RandomEvent> randomTrace(Xoshiro256 &Rng, unsigned Length) {
  std::vector<RandomEvent> Trace;
  Trace.reserve(Length);
  for (unsigned I = 0; I != Length; ++I) {
    RandomEvent E;
    E.IsSync = Rng.nextBounded(3) == 0;
    E.Tid = static_cast<uint32_t>(Rng.nextBounded(4));
    E.Var = E.IsSync ? (200 + Rng.nextBounded(3)) : (100 + Rng.nextBounded(3));
    E.IsWrite = Rng.nextBounded(2) == 0;
    Trace.push_back(E);
  }
  return Trace;
}

TEST(DetectorCrossCheck, AgreeOnThousandsOfRandomTraces) {
  Xoshiro256 Rng(2024);
  unsigned Disagreements = 0;
  for (unsigned Iter = 0; Iter != 2000; ++Iter) {
    std::vector<RandomEvent> Trace = randomTrace(Rng, 40);
    VcRaceDetector Vc(4);
    GoldilocksDetector Gl(4);
    for (const RandomEvent &E : Trace) {
      if (E.IsSync) {
        Vc.onSyncOp(E.Tid, E.Var);
        Gl.onSyncOp(E.Tid, E.Var);
        continue;
      }
      auto RVc = Vc.onDataAccess(E.Tid, E.Var, E.IsWrite);
      auto RGl = Gl.onDataAccess(E.Tid, E.Var, E.IsWrite);
      if (RVc.has_value() != RGl.has_value()) {
        ++Disagreements;
        break;
      }
      // Once a race is found on a variable the detectors may diverge in
      // their bookkeeping; stop this trace at the first race, like the
      // runtime does (StopOnRace).
      if (RVc.has_value())
        break;
    }
  }
  EXPECT_EQ(Disagreements, 0u);
}

TEST(DynamicPartitionTest, ClassifiesAndPromotes) {
  DynamicPartition P;
  EXPECT_EQ(P.classify(7), VarClass::Data);
  P.registerSync(7);
  EXPECT_EQ(P.classify(7), VarClass::Sync);
  EXPECT_TRUE(P.isSync(7));
  EXPECT_EQ(P.promotionCount(), 0u);
  P.promoteToSync(9);
  EXPECT_EQ(P.classify(9), VarClass::Sync);
  EXPECT_EQ(P.promotionCount(), 1u);
  EXPECT_EQ(P.syncVarCount(), 2u);
}

TEST(RaceReportTest, FormatsReadably) {
  RaceReport R;
  R.VarCode = 42;
  R.FirstTid = 1;
  R.SecondTid = 2;
  R.FirstWasWrite = true;
  R.SecondWasWrite = false;
  std::string Text = R.str();
  EXPECT_NE(Text.find("write by thread 1"), std::string::npos);
  EXPECT_NE(Text.find("read by thread 2"), std::string::npos);
}

} // namespace
