//===- tests/parallel_test.cpp - Parallel ICB engine tests ----------------===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the parallel ICB search engine and the concurrency
/// infrastructure under it: determinism across worker counts, agreement
/// with the sequential reference engine, the sharded state cache under
/// concurrent inserts, the incremental state digest against a full rescan,
/// and the work-stealing deque / striped queue / worker pool primitives.
///
//===----------------------------------------------------------------------===//

#include "benchmarks/BluetoothModel.h"
#include "benchmarks/TxnManagerModel.h"
#include "benchmarks/WsqModel.h"
#include "search/Checker.h"
#include "search/IcbSearch.h"
#include "search/ParallelIcb.h"
#include "search/ShardedStateCache.h"
#include "support/StripedQueue.h"
#include "support/WorkStealingDeque.h"
#include "support/WorkerPool.h"
#include "testutil/TestPrograms.h"
#include "vm/Interp.h"
#include <algorithm>
#include <atomic>
#include <gtest/gtest.h>
#include <memory>
#include <thread>
#include <vector>

using namespace icb;
using namespace icb::bench;
using namespace icb::search;
using namespace icb::testutil;

namespace {

SearchResult runSequentialIcb(const vm::Program &Prog, unsigned MaxBound,
                              bool UseCache) {
  IcbSearch::Options Opts;
  Opts.UseStateCache = UseCache;
  Opts.Limits.MaxPreemptionBound = MaxBound;
  Opts.Limits.StopAtFirstBug = false;
  IcbSearch Search(Opts);
  vm::Interp VM(Prog);
  return Search.run(VM);
}

SearchResult runParallelIcb(const vm::Program &Prog, unsigned Jobs,
                            unsigned MaxBound, bool UseCache) {
  ParallelIcbSearch::Options Opts;
  Opts.Jobs = Jobs;
  Opts.UseStateCache = UseCache;
  Opts.Limits.MaxPreemptionBound = MaxBound;
  Opts.Limits.StopAtFirstBug = false;
  ParallelIcbSearch Search(Opts);
  vm::Interp VM(Prog);
  return Search.run(VM);
}

std::vector<Bug> sortedBugs(std::vector<Bug> Bugs) {
  std::sort(Bugs.begin(), Bugs.end(), [](const Bug &L, const Bug &R) {
    return std::tie(L.Kind, L.Message, L.Preemptions) <
           std::tie(R.Kind, R.Message, R.Preemptions);
  });
  return Bugs;
}

void expectSameHistogram(const Histogram &L, const Histogram &R) {
  EXPECT_EQ(L.total(), R.total());
  size_t Buckets = std::max(L.size(), R.size());
  for (size_t I = 0; I != Buckets; ++I)
    EXPECT_EQ(L.at(I), R.at(I)) << "bucket " << I;
}

void expectSameMinMax(const MinMax &L, const MinMax &R) {
  EXPECT_EQ(L.count(), R.count());
  EXPECT_EQ(L.min(), R.min());
  EXPECT_EQ(L.max(), R.max());
  EXPECT_EQ(L.sum(), R.sum());
}

/// Compares what the engines guarantee to agree on. With the item cache
/// off, everything is comparable. With the cache on, *which* chain claims
/// a shared (state, thread) node is timing/order-dependent (parallel) or
/// LIFO-order-dependent (sequential), so the per-execution step/blocking
/// distributions and the exposing schedules are attribution-dependent and
/// excluded (PerExecution = false); the aggregate counts, per-bound
/// snapshots, preemption histogram, and bug sets with minimal preemption
/// counts must still match exactly.
void expectSameSearch(const SearchResult &L, const SearchResult &R,
                      bool PerExecution) {
  EXPECT_EQ(L.Stats.Executions, R.Stats.Executions);
  EXPECT_EQ(L.Stats.TotalSteps, R.Stats.TotalSteps);
  EXPECT_EQ(L.Stats.DistinctStates, R.Stats.DistinctStates);
  EXPECT_EQ(L.Stats.Completed, R.Stats.Completed);
  if (PerExecution) {
    expectSameMinMax(L.Stats.StepsPerExecution, R.Stats.StepsPerExecution);
    expectSameMinMax(L.Stats.BlockingPerExecution,
                     R.Stats.BlockingPerExecution);
  }
  expectSameMinMax(L.Stats.PreemptionsPerExecution,
                   R.Stats.PreemptionsPerExecution);
  expectSameHistogram(L.Stats.PreemptionHistogram,
                      R.Stats.PreemptionHistogram);
  ASSERT_EQ(L.Stats.PerBound.size(), R.Stats.PerBound.size());
  for (size_t I = 0; I != L.Stats.PerBound.size(); ++I) {
    EXPECT_EQ(L.Stats.PerBound[I].Bound, R.Stats.PerBound[I].Bound);
    EXPECT_EQ(L.Stats.PerBound[I].States, R.Stats.PerBound[I].States);
    EXPECT_EQ(L.Stats.PerBound[I].Executions,
              R.Stats.PerBound[I].Executions);
  }
  std::vector<Bug> LB = sortedBugs(L.Bugs), RB = sortedBugs(R.Bugs);
  ASSERT_EQ(LB.size(), RB.size());
  for (size_t I = 0; I != LB.size(); ++I) {
    EXPECT_EQ(LB[I].Kind, RB[I].Kind);
    EXPECT_EQ(LB[I].Message, RB[I].Message);
    EXPECT_EQ(LB[I].Preemptions, RB[I].Preemptions);
  }
}

// --- Parallel engine vs sequential reference -----------------------------

TEST(ParallelIcb, MatchesSequentialOnCorrectWsq) {
  vm::Program Prog = wsqModel({3, WsqBug::None});
  for (bool Cache : {false, true}) {
    SearchResult Seq = runSequentialIcb(Prog, 2, Cache);
    SearchResult Par = runParallelIcb(Prog, 4, 2, Cache);
    EXPECT_FALSE(Seq.foundBug());
    EXPECT_FALSE(Par.foundBug());
    expectSameSearch(Seq, Par, /*PerExecution=*/!Cache);
  }
}

TEST(ParallelIcb, MatchesSequentialOnBuggyWsqVariants) {
  for (WsqBug Bug : {WsqBug::PopCheckThenAct, WsqBug::PopRetryNoLock,
                     WsqBug::UnsynchronizedSteal}) {
    vm::Program Prog = wsqModel({2, Bug});
    for (bool Cache : {false, true}) {
      SearchResult Seq = runSequentialIcb(Prog, 2, Cache);
      SearchResult Par = runParallelIcb(Prog, 4, 2, Cache);
      EXPECT_TRUE(Seq.foundBug()) << wsqBugName(Bug);
      EXPECT_TRUE(Par.foundBug()) << wsqBugName(Bug);
      expectSameSearch(Seq, Par, /*PerExecution=*/!Cache);
    }
  }
}

TEST(ParallelIcb, MatchesSequentialOnRegistryModels) {
  // Every registry benchmark with a model-VM form.
  const vm::Program Programs[] = {
      bluetoothModel(2, /*WithBug=*/false), bluetoothModel(2, true),
      txnManagerModel({2, TxnBug::None}),
      txnManagerModel({2, TxnBug::CommitStomp}),
      wsqModel({3, WsqBug::None})};
  for (const vm::Program &Prog : Programs) {
    for (bool Cache : {false, true}) {
      SearchResult Seq = runSequentialIcb(Prog, 2, Cache);
      SearchResult Par = runParallelIcb(Prog, 4, 2, Cache);
      expectSameSearch(Seq, Par, /*PerExecution=*/!Cache);
    }
  }
}

TEST(ParallelIcb, MatchesSequentialOnTestPrograms) {
  const vm::Program Programs[] = {racyCounter(2), lockOrderDeadlock(),
                                  eventPingPong(2), preemptionLadder(2)};
  for (const vm::Program &Prog : Programs) {
    for (bool Cache : {false, true}) {
      SearchResult Seq = runSequentialIcb(Prog, 3, Cache);
      SearchResult Par = runParallelIcb(Prog, 3, 3, Cache);
      expectSameSearch(Seq, Par, /*PerExecution=*/!Cache);
    }
  }
}

TEST(ParallelIcb, DeterministicAcrossWorkerCounts) {
  // With the item cache off the engine enumerates the complete bounded
  // tree and canonicalizes duplicate bug reports, so results — including
  // the exposing schedules — are identical no matter how many workers
  // race over the state space. Jobs=1 runs the same parallel engine on
  // the calling thread, pinning the reference outcome.
  vm::Program Prog = wsqModel({3, WsqBug::PopCheckThenAct});
  SearchResult Ref = runParallelIcb(Prog, 1, 2, /*UseCache=*/false);
  ASSERT_TRUE(Ref.foundBug());
  for (unsigned Jobs : {2u, 4u, 8u}) {
    SearchResult R = runParallelIcb(Prog, Jobs, 2, /*UseCache=*/false);
    expectSameSearch(Ref, R, /*PerExecution=*/true);
    ASSERT_EQ(Ref.Bugs.size(), R.Bugs.size());
    for (size_t I = 0; I != Ref.Bugs.size(); ++I) {
      EXPECT_EQ(Ref.Bugs[I].Steps, R.Bugs[I].Steps) << "jobs " << Jobs;
      EXPECT_EQ(Ref.Bugs[I].Schedule, R.Bugs[I].Schedule)
          << "jobs " << Jobs;
    }
  }
}

TEST(ParallelIcb, DeterministicAggregatesWithCacheAcrossWorkerCounts) {
  // With the item cache on, the claimed-node set — hence every aggregate
  // count and the bug set — is still identical at any worker count; only
  // chain-length attribution may move (excluded by PerExecution=false).
  vm::Program Prog = wsqModel({3, WsqBug::PopCheckThenAct});
  SearchResult Ref = runParallelIcb(Prog, 1, 2, /*UseCache=*/true);
  ASSERT_TRUE(Ref.foundBug());
  for (unsigned Jobs : {2u, 4u, 8u})
    expectSameSearch(Ref, runParallelIcb(Prog, Jobs, 2, /*UseCache=*/true),
                     /*PerExecution=*/false);
}

TEST(ParallelIcb, FindsMinimalPreemptionBugs) {
  SearchResult R = runParallelIcb(racyCounter(2), 4, 2, /*UseCache=*/true);
  ASSERT_TRUE(R.foundBug());
  EXPECT_EQ(R.simplestBug()->Preemptions, 1u);

  R = runParallelIcb(lockOrderDeadlock(), 4, 2, /*UseCache=*/true);
  ASSERT_TRUE(R.foundBug());
  EXPECT_EQ(R.Bugs.front().Kind, BugKind::Deadlock);
  EXPECT_EQ(R.simplestBug()->Preemptions, 1u);
}

TEST(ParallelIcb, RespectsPreemptionBound) {
  // The ladder needs 3 preemptions; below that bound the parallel engine
  // must report a clean (and non-exhausted) search, exactly like the
  // sequential one.
  vm::Program Prog = preemptionLadder(3);
  SearchResult Low = runParallelIcb(Prog, 4, 2, /*UseCache=*/true);
  EXPECT_FALSE(Low.foundBug());
  SearchResult High = runParallelIcb(Prog, 4, 3, /*UseCache=*/true);
  ASSERT_TRUE(High.foundBug());
  EXPECT_EQ(High.simplestBug()->Preemptions, 3u);
  expectSameSearch(runSequentialIcb(Prog, 3, true), High,
                   /*PerExecution=*/false);
}

TEST(ParallelIcb, CheckerDispatchesOnJobs) {
  // Through the public checkProgram() entry point: Jobs=1 runs the
  // sequential engine, Jobs!=1 the parallel one; results agree.
  SearchOptions Opts;
  Opts.Kind = StrategyKind::Icb;
  Opts.Limits.MaxPreemptionBound = 2;
  Opts.Limits.StopAtFirstBug = false;
  vm::Program Prog = wsqModel({3, WsqBug::None});
  Opts.Jobs = 1;
  SearchResult Seq = checkProgram(Prog, Opts);
  Opts.Jobs = 4;
  SearchResult Par = checkProgram(Prog, Opts);
  expectSameSearch(Seq, Par, /*PerExecution=*/true);
  EXPECT_STREQ(makeStrategy(Opts)->name().c_str(), "icb-par");
}

// --- Sharded state cache --------------------------------------------------

TEST(ShardedStateCache, BasicsAndGrowth) {
  ShardedStateCache Cache(4);
  EXPECT_EQ(Cache.shards(), 4u);
  EXPECT_TRUE(Cache.insert(42));
  EXPECT_FALSE(Cache.insert(42));
  EXPECT_TRUE(Cache.contains(42));
  EXPECT_FALSE(Cache.contains(43));
  // Digest 0 must behave like any other value (it is the empty-slot
  // sentinel internally).
  EXPECT_TRUE(Cache.insert(0));
  EXPECT_FALSE(Cache.insert(0));
  EXPECT_TRUE(Cache.contains(0));
  EXPECT_EQ(Cache.size(), 2u);
  Cache.clear();
  EXPECT_EQ(Cache.size(), 0u);
  EXPECT_FALSE(Cache.contains(42));

  // Low-bit-only digests all map to shard 0: exercises open-addressing
  // growth well past the initial capacity of a single shard.
  for (uint64_t I = 1; I <= 10000; ++I)
    EXPECT_TRUE(Cache.insert(I));
  for (uint64_t I = 1; I <= 10000; ++I)
    EXPECT_TRUE(Cache.contains(I));
  EXPECT_EQ(Cache.size(), 10000u);
}

TEST(ShardedStateCache, ShardCountRounding) {
  EXPECT_EQ(ShardedStateCache(0).shards(), 64u);
  EXPECT_EQ(ShardedStateCache(1).shards(), 1u);
  EXPECT_EQ(ShardedStateCache(3).shards(), 4u);
  EXPECT_EQ(ShardedStateCache(65).shards(), 128u);
}

TEST(ShardedStateCache, ConcurrentInsertUniqueness) {
  // Every digest is attempted by every thread; exactly one attempt may win.
  constexpr unsigned Threads = 4;
  constexpr uint64_t Digests = 20000;
  ShardedStateCache Cache(8);
  std::atomic<uint64_t> Wins{0};
  std::vector<std::thread> Pool;
  for (unsigned T = 0; T != Threads; ++T)
    Pool.emplace_back([&Cache, &Wins, T] {
      uint64_t Local = 0;
      // Different visit orders per thread maximize same-digest collisions.
      for (uint64_t I = 0; I != Digests; ++I) {
        uint64_t D = (T % 2) ? Digests - I : I + 1;
        if (Cache.insert(hashMix(D)))
          ++Local;
      }
      Wins.fetch_add(Local, std::memory_order_relaxed);
    });
  for (std::thread &Th : Pool)
    Th.join();
  EXPECT_EQ(Wins.load(), Digests);
  EXPECT_EQ(Cache.size(), Digests);
  for (uint64_t I = 1; I <= Digests; ++I)
    EXPECT_TRUE(Cache.contains(hashMix(I)));
}

// --- Incremental state digest ---------------------------------------------

TEST(IncrementalHash, MatchesFullRescanUnderRandomSchedules) {
  const vm::Program Programs[] = {racyCounter(3), lockOrderDeadlock(),
                                  eventPingPong(3), semaphoreBuffer(2, 4),
                                  wsqModel({3, WsqBug::None}),
                                  wsqModel({3, WsqBug::UnsynchronizedSteal})};
  uint64_t Rng = 0x9e3779b97f4a7c15ULL;
  auto Next = [&Rng] {
    Rng = Rng * 6364136223846793005ULL + 1442695040888963407ULL;
    return Rng >> 33;
  };
  for (const vm::Program &Prog : Programs) {
    vm::Interp VM(Prog);
    for (unsigned Run = 0; Run != 40; ++Run) {
      vm::State S = VM.initialState();
      ASSERT_EQ(S.hash(), S.computeHash());
      for (unsigned Step = 0; Step != 400; ++Step) {
        std::vector<vm::ThreadId> Enabled = VM.enabledThreads(S);
        if (Enabled.empty())
          break;
        vm::StepResult R = VM.step(S, Enabled[Next() % Enabled.size()]);
        ASSERT_EQ(S.hash(), S.computeHash())
            << Prog.Name << " run " << Run << " step " << Step;
        if (R.Status != vm::StepStatus::Ok)
          break;
      }
    }
  }
}

TEST(IncrementalHash, MutatorsComposeSymmetrically) {
  vm::Program Prog = racyCounter(2);
  vm::Interp VM(Prog);
  vm::State S = VM.initialState();
  uint64_t Before = S.hash();
  int64_t Old = S.Globals[0];
  S.setGlobal(0, Old + 7);
  EXPECT_NE(S.hash(), Before);
  EXPECT_EQ(S.hash(), S.computeHash());
  S.setGlobal(0, Old);
  EXPECT_EQ(S.hash(), Before); // XOR pairs cancel exactly.
}

// --- Concurrency primitives -----------------------------------------------

TEST(WorkStealingDeque, OwnerLifoThiefFifo) {
  WorkStealingDeque<int> D;
  D.pushBottom(1);
  D.pushBottom(2);
  D.pushBottom(3);
  int V = 0;
  ASSERT_TRUE(D.tryPopBottom(V));
  EXPECT_EQ(V, 3); // Owner pops newest.
  ASSERT_TRUE(D.trySteal(V));
  EXPECT_EQ(V, 1); // Thief steals oldest.
  ASSERT_TRUE(D.tryPopBottom(V));
  EXPECT_EQ(V, 2);
  EXPECT_FALSE(D.tryPopBottom(V));
  EXPECT_FALSE(D.trySteal(V));
  EXPECT_EQ(D.sizeHint(), 0u);
}

TEST(WorkStealingDeque, ConcurrentConservation) {
  // Owner pushes N and pops; thieves steal; every item is consumed exactly
  // once.
  constexpr int N = 20000;
  WorkStealingDeque<int> D;
  std::atomic<int64_t> Consumed{0};
  std::atomic<int> Popped{0};
  std::thread Owner([&] {
    int V = 0;
    for (int I = 1; I <= N; ++I) {
      D.pushBottom(int(I));
      if (I % 3 == 0 && D.tryPopBottom(V)) {
        Consumed.fetch_add(V);
        Popped.fetch_add(1);
      }
    }
  });
  std::vector<std::thread> Thieves;
  std::atomic<bool> Done{false};
  for (int T = 0; T != 2; ++T)
    Thieves.emplace_back([&] {
      int V = 0;
      while (!Done.load() || D.sizeHint() != 0)
        if (D.trySteal(V)) {
          Consumed.fetch_add(V);
          Popped.fetch_add(1);
        }
    });
  Owner.join();
  Done.store(true);
  for (std::thread &T : Thieves)
    T.join();
  EXPECT_EQ(Popped.load(), N);
  EXPECT_EQ(Consumed.load(), int64_t(N) * (N + 1) / 2);
}

TEST(WorkStealingDeque, GrowthUnderConcurrentStealing) {
  // Bursts far past the initial ring capacity force repeated growth while
  // thieves are reading the old rings; every item must still be consumed
  // exactly once.
  constexpr int Bursts = 50;
  constexpr int BurstSize = 1000; // >> initial capacity of 64.
  constexpr int N = Bursts * BurstSize;
  WorkStealingDeque<int> D;
  std::atomic<int64_t> Consumed{0};
  std::atomic<int> Count{0};
  std::atomic<bool> Done{false};
  std::vector<std::thread> Thieves;
  for (int T = 0; T != 3; ++T)
    Thieves.emplace_back([&] {
      int V = 0;
      while (!Done.load() || D.sizeHint() != 0)
        if (D.trySteal(V)) {
          Consumed.fetch_add(V);
          Count.fetch_add(1);
        }
    });
  int V = 0;
  for (int Burst = 0; Burst != Bursts; ++Burst) {
    for (int I = 0; I != BurstSize; ++I)
      D.pushBottom(Burst * BurstSize + I + 1);
    // Pop a few back so Bottom wanders both ways across ring boundaries.
    for (int I = 0; I != 10 && D.tryPopBottom(V); ++I) {
      Consumed.fetch_add(V);
      Count.fetch_add(1);
    }
  }
  Done.store(true);
  for (std::thread &T : Thieves)
    T.join();
  EXPECT_EQ(Count.load(), N);
  EXPECT_EQ(Consumed.load(), int64_t(N) * (N + 1) / 2);
}

TEST(WorkStealingDeque, LastItemPopStealRace) {
  // The deque hovers around a single item, hammering the owner-vs-thief
  // CAS on the last slot: exactly one side may win each item.
  constexpr int N = 30000;
  WorkStealingDeque<int> D;
  std::atomic<int64_t> Consumed{0};
  std::atomic<int> Count{0};
  std::atomic<bool> Done{false};
  std::thread Thief([&] {
    int V = 0;
    while (!Done.load() || D.sizeHint() != 0)
      if (D.trySteal(V)) {
        Consumed.fetch_add(V);
        Count.fetch_add(1);
      }
  });
  int V = 0;
  for (int I = 1; I <= N; ++I) {
    D.pushBottom(int(I));
    if (D.tryPopBottom(V)) {
      Consumed.fetch_add(V);
      Count.fetch_add(1);
    }
  }
  Done.store(true);
  Thief.join();
  EXPECT_EQ(Count.load(), N);
  EXPECT_EQ(Consumed.load(), int64_t(N) * (N + 1) / 2);
}

TEST(WorkStealingDeque, MoveOnlyItems) {
  // Ownership transfers with the successful pop/steal; work items are
  // movable, not necessarily copyable.
  WorkStealingDeque<std::unique_ptr<int>> D;
  D.pushBottom(std::make_unique<int>(1));
  D.pushBottom(std::make_unique<int>(2));
  std::unique_ptr<int> P;
  ASSERT_TRUE(D.trySteal(P));
  EXPECT_EQ(*P, 1);
  ASSERT_TRUE(D.tryPopBottom(P));
  EXPECT_EQ(*P, 2);
  EXPECT_FALSE(D.tryPopBottom(P));
  // Leftovers are reclaimed by the destructor.
  D.pushBottom(std::make_unique<int>(3));
}

TEST(StripedQueue, PushDrainConservation) {
  StripedQueue<int> Q(4);
  EXPECT_EQ(Q.stripes(), 4u);
  EXPECT_TRUE(Q.empty());
  constexpr int N = 1000;
  std::vector<std::thread> Pushers;
  for (int T = 0; T != 4; ++T)
    Pushers.emplace_back([&Q, T] {
      for (int I = 0; I != N; ++I)
        Q.push(static_cast<unsigned>(T * 7 + I), T * N + I);
    });
  for (std::thread &T : Pushers)
    T.join();
  EXPECT_FALSE(Q.empty());
  std::vector<int> Items = Q.drain();
  EXPECT_TRUE(Q.empty());
  ASSERT_EQ(Items.size(), size_t(4) * N);
  std::sort(Items.begin(), Items.end());
  for (int I = 0; I != 4 * N; ++I)
    EXPECT_EQ(Items[I], I);
}

TEST(WorkerPool, RunsEveryWorkerEachRound) {
  WorkerPool Pool(4);
  EXPECT_EQ(Pool.workers(), 4u);
  EXPECT_GE(WorkerPool::defaultWorkers(), 1u);
  std::vector<std::atomic<int>> Hits(4);
  for (int Round = 1; Round <= 3; ++Round) {
    Pool.run([&Hits](unsigned Index) { Hits[Index].fetch_add(1); });
    for (unsigned I = 0; I != 4; ++I)
      EXPECT_EQ(Hits[I].load(), Round) << "worker " << I;
  }
}

} // namespace
