//===- tests/io_test.cpp - Modeled io subsystem tests ---------------------===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The modeled fd table under full schedule exploration: deterministic fd
/// numbering and serial object names (identical across --jobs 1 vs N,
/// with identical deterministic io metrics), partial-read / short-write /
/// EOF / EPIPE / EAGAIN semantics, the epoll edge-triggered lost-wakeup
/// regression (epoll_wait must be a real blocking scheduling point for
/// the deadlock to be explored at all), modeled poll timeouts (both
/// outcomes of every readiness/expiry race), and the managed heap's
/// double-free and use-after-free reporting.
///
/// The icb_* entry points are called directly (ICB_POSIX_NO_RENAME): this
/// translation unit also contains gtest, which owns real file
/// descriptors and the real heap.
///
//===----------------------------------------------------------------------===//

#define ICB_POSIX_NO_RENAME
#include "icb/posix.h"

#include "io/IoContext.h"
#include "obs/Metrics.h"
#include "posix/Runtime.h"
#include "rt/Explore.h"
#include "testutil/ResultChecks.h"
#include <gtest/gtest.h>

using namespace icb;
using namespace icb::rt;

namespace {

ExploreResult exploreIo(std::function<void()> Body, unsigned MaxBound,
                        bool StopAtFirst = false, unsigned Jobs = 1,
                        obs::MetricsRegistry *Metrics = nullptr,
                        bool Por = false) {
  ExploreOptions Opts;
  Opts.Limits.MaxExecutions = 200000;
  Opts.Limits.StopAtFirstBug = StopAtFirst;
  Opts.Limits.MaxPreemptionBound = MaxBound;
  Opts.Jobs = Jobs;
  Opts.Metrics = Metrics;
  Opts.Por = Por;
  IcbExplorer E(Opts);
  return E.explore(posix::makeTestCase("io-test", std::move(Body)));
}

//===----------------------------------------------------------------------===//
// Fd table determinism: numbers and serial names are schedule functions
//===----------------------------------------------------------------------===//

void fdNamingBody() {
  int P[2], Sv[2];
  icb_posix_assert(icb_pipe(P) == 0, "pipe");
  icb_posix_assert(P[0] == io::kFdBase && P[1] == io::kFdBase + 1,
                   "pipe fds are the first two modeled slots");
  icb_posix_assert(icb_socketpair(AF_UNIX, SOCK_STREAM, 0, Sv) == 0,
                   "socketpair");
  int Efd = icb_eventfd(0, 0);
  int Ep = icb_epoll_create1(0);
  icb_posix_assert(Efd == io::kFdBase + 4 && Ep == io::kFdBase + 5,
                   "creation order numbers fds serially");

  io::IoContext &Io = io::IoContext::current();
  icb_posix_assert(Io.fdName(P[0]) == "pipe#0" && Io.fdName(P[1]) == "pipe#0",
                   "both pipe ends name the same serial stream");
  icb_posix_assert(Io.fdName(Sv[0]) == "sock#0.a" &&
                       Io.fdName(Sv[1]) == "sock#0.b",
                   "socketpair serial names");
  icb_posix_assert(Io.fdName(Efd) == "efd#0" && Io.fdName(Ep) == "epoll#0",
                   "eventfd/epoll serial names");

  // Lowest-free reuse: closing the read end frees slot 0 for the next
  // creation, and the serial counter still advances (pipe#1).
  icb_posix_assert(icb_close(P[0]) == 0, "close read end");
  int Q[2];
  icb_posix_assert(icb_pipe(Q) == 0, "second pipe");
  icb_posix_assert(Q[0] == io::kFdBase && Q[1] == io::kFdBase + 6,
                   "lowest-free slot reuse is deterministic");
  icb_posix_assert(Io.fdName(Q[0]) == "pipe#1", "serial names never recycle");

  icb_close(Q[0]);
  icb_close(Q[1]);
  icb_close(P[1]);
  icb_close(Sv[0]);
  icb_close(Sv[1]);
  icb_close(Efd);
  icb_close(Ep);
}

TEST(IoFdTable, DeterministicNamesAndNumbers) {
  ExploreResult R = exploreIo(fdNamingBody, /*MaxBound=*/1);
  EXPECT_TRUE(R.Bugs.empty()) << (R.Bugs.empty() ? "" : R.Bugs[0].str());
}

// A workload with real io races (two workers pull requests off a shared
// non-blocking pipe while a third writes them) so the jobs-1-vs-N
// comparison covers contended schedules, not just a straight line.
void racyPipeBody() {
  int P[2];
  icb_pipe2(P, O_NONBLOCK);
  pthread_t W[2];
  struct Ctx {
    int Fd;
  };
  static thread_local Ctx C;
  C.Fd = P[0];
  for (pthread_t &T : W)
    icb_pthread_create(
        &T, nullptr,
        [](void *Arg) -> void * {
          char B[2];
          // Either worker may win either byte; the loser sees EAGAIN.
          icb_read(static_cast<Ctx *>(Arg)->Fd, B, sizeof B);
          return nullptr;
        },
        &C);
  icb_write(P[1], "ab", 2);
  for (pthread_t &T : W)
    icb_pthread_join(T, nullptr);
  icb_close(P[0]);
  icb_close(P[1]);
}

TEST(IoFdTable, IdenticalAcrossJobs) {
  obs::MetricsRegistry M1(1), M4(4);
  ExploreResult R1 = exploreIo(racyPipeBody, /*MaxBound=*/2,
                               /*StopAtFirst=*/false, /*Jobs=*/1, &M1);
  ExploreResult R4 = exploreIo(racyPipeBody, /*MaxBound=*/2,
                               /*StopAtFirst=*/false, /*Jobs=*/4, &M4);
  EXPECT_TRUE(R1.Bugs.empty()) << (R1.Bugs.empty() ? "" : R1.Bugs[0].str());
  testutil::expectIdenticalResults(R1, R4);
  testutil::expectSameDeterministicMetrics(M1.snapshot(), M4.snapshot());
}

TEST(IoFdTable, SurvivesPorAndComposesWithIt) {
  ExploreResult Off = exploreIo(racyPipeBody, /*MaxBound=*/2,
                                /*StopAtFirst=*/false, /*Jobs=*/1, nullptr,
                                /*Por=*/false);
  ExploreResult On = exploreIo(racyPipeBody, /*MaxBound=*/2,
                               /*StopAtFirst=*/false, /*Jobs=*/1, nullptr,
                               /*Por=*/true);
  EXPECT_TRUE(Off.Bugs.empty());
  EXPECT_TRUE(On.Bugs.empty());
  // Sleep sets may only prune, never add.
  EXPECT_LE(On.Stats.Executions, Off.Stats.Executions);
}

//===----------------------------------------------------------------------===//
// Stream semantics: partial reads, short writes, EOF, EPIPE, EAGAIN
//===----------------------------------------------------------------------===//

void streamSemanticsBody() {
  int P[2];
  icb_posix_assert(icb_pipe(P) == 0, "pipe");
  icb_posix_assert(icb_write(P[1], "abcd", 4) == 4, "write 4");
  char B[8];
  icb_posix_assert(icb_read(P[0], B, 2) == 2 && B[0] == 'a' && B[1] == 'b',
                   "partial read takes the prefix");
  icb_posix_assert(icb_read(P[0], B, 8) == 2 && B[0] == 'c',
                   "read caps at what is buffered");
  // Drained + writer still open + O_NONBLOCK => EAGAIN, not a park.
  icb_posix_assert(icb_fcntl(P[0], F_SETFL, O_NONBLOCK) == 0, "set nonblock");
  icb_posix_assert(icb_read(P[0], B, 1) == -1 && errno == EAGAIN,
                   "drained nonblocking read -> EAGAIN");
  // select: nothing readable yet; after a write the read end reports.
  fd_set R;
  FD_ZERO(&R);
  FD_SET(P[0], &R);
  struct timeval Tv = {0, 0};
  icb_posix_assert(icb_select(P[0] + 1, &R, nullptr, nullptr, &Tv) >= 0,
                   "select on empty pipe");
  icb_posix_assert(icb_write(P[1], "x", 1) == 1, "write 1");
  FD_ZERO(&R);
  FD_SET(P[0], &R);
  icb_posix_assert(icb_select(P[0] + 1, &R, nullptr, nullptr, nullptr) == 1 &&
                       FD_ISSET(P[0], &R),
                   "select reports the readable end");
  icb_posix_assert(icb_read(P[0], B, 1) == 1, "drain");
  // Writer closed + drained => EOF (0), not EAGAIN.
  icb_posix_assert(icb_close(P[1]) == 0, "close writer");
  icb_posix_assert(icb_read(P[0], B, 4) == 0, "EOF after writer close");
  icb_posix_assert(icb_close(P[0]) == 0, "close reader");

  // Reader closed => EPIPE on write (no SIGPIPE in the model).
  int Q[2];
  icb_posix_assert(icb_pipe(Q) == 0, "second pipe");
  icb_posix_assert(icb_close(Q[0]) == 0, "close reader first");
  icb_posix_assert(icb_write(Q[1], "x", 1) == -1 && errno == EPIPE,
                   "write after reader close -> EPIPE");
  icb_posix_assert(icb_close(Q[1]) == 0, "close writer");

  // Stale fd after close: EBADF.
  icb_posix_assert(icb_read(Q[1], B, 1) == -1 && errno == EBADF,
                   "closed fd -> EBADF");
}

TEST(IoStream, PartialReadShortWriteEofEpipe) {
  ExploreResult R = exploreIo(streamSemanticsBody, /*MaxBound=*/1);
  EXPECT_TRUE(R.Bugs.empty()) << (R.Bugs.empty() ? "" : R.Bugs[0].str());
}

//===----------------------------------------------------------------------===//
// EAGAIN is an explored outcome, not an accident of host timing
//===----------------------------------------------------------------------===//

struct RaceCtx {
  int ReadFd = -1;
  int WriteFd = -1;
  int *GotData = nullptr;
  int *GotEagain = nullptr;
};

void *nonblockReader(void *Arg) {
  RaceCtx *Cx = static_cast<RaceCtx *>(Arg);
  char B;
  long N = icb_read(Cx->ReadFd, &B, 1);
  if (N == 1)
    ++*Cx->GotData;
  else if (N == -1 && errno == EAGAIN)
    ++*Cx->GotEagain;
  else
    icb_posix_assert(0, "nonblocking read returned neither data nor EAGAIN");
  return nullptr;
}

void *oneByteWriter(void *Arg) {
  RaceCtx *Cx = static_cast<RaceCtx *>(Arg);
  icb_posix_assert(icb_write(Cx->WriteFd, "x", 1) == 1, "writer");
  return nullptr;
}

TEST(IoNonblock, EagainAndDataAreBothExplored) {
  int GotData = 0, GotEagain = 0;
  ExploreResult R = exploreIo(
      [&GotData, &GotEagain] {
        int P[2];
        icb_pipe2(P, O_NONBLOCK);
        static thread_local RaceCtx Cx;
        Cx = RaceCtx{P[0], P[1], &GotData, &GotEagain};
        pthread_t Rd, Wr;
        icb_pthread_create(&Rd, nullptr, nonblockReader, &Cx);
        icb_pthread_create(&Wr, nullptr, oneByteWriter, &Cx);
        icb_pthread_join(Rd, nullptr);
        icb_pthread_join(Wr, nullptr);
        icb_close(P[0]);
        icb_close(P[1]);
      },
      /*MaxBound=*/2);
  EXPECT_TRUE(R.Bugs.empty()) << (R.Bugs.empty() ? "" : R.Bugs[0].str());
  EXPECT_GT(GotData, 0) << "no schedule let the writer win";
  EXPECT_GT(GotEagain, 0) << "no schedule took the EAGAIN branch";
}

//===----------------------------------------------------------------------===//
// Modeled poll timeout: both outcomes of the readiness/expiry race
//===----------------------------------------------------------------------===//

void *timedPoller(void *Arg) {
  RaceCtx *Cx = static_cast<RaceCtx *>(Arg);
  struct pollfd Pf;
  Pf.fd = Cx->ReadFd;
  Pf.events = POLLIN;
  Pf.revents = 0;
  int N = icb_poll(&Pf, 1, /*TimeoutMs=*/10);
  if (N == 1)
    ++*Cx->GotData;
  else if (N == 0)
    ++*Cx->GotEagain; // Reused counter: the expiry branch.
  else
    icb_posix_assert(0, "poll returned an error");
  return nullptr;
}

TEST(IoPoll, TimedPollExploresReadyAndExpiry) {
  int Ready = 0, Expired = 0;
  ExploreResult R = exploreIo(
      [&Ready, &Expired] {
        int P[2];
        icb_pipe(P);
        static thread_local RaceCtx Cx;
        Cx = RaceCtx{P[0], P[1], &Ready, &Expired};
        pthread_t Po, Wr;
        icb_pthread_create(&Po, nullptr, timedPoller, &Cx);
        icb_pthread_create(&Wr, nullptr, oneByteWriter, &Cx);
        icb_pthread_join(Po, nullptr);
        icb_pthread_join(Wr, nullptr);
        icb_close(P[0]);
        icb_close(P[1]);
      },
      /*MaxBound=*/2);
  EXPECT_TRUE(R.Bugs.empty()) << (R.Bugs.empty() ? "" : R.Bugs[0].str());
  EXPECT_GT(Ready, 0) << "no schedule delivered readiness before the poll";
  EXPECT_GT(Expired, 0) << "no schedule took the modeled-timeout branch";
}

//===----------------------------------------------------------------------===//
// Epoll edge-triggered lost wakeup: the regression the model must expose
//===----------------------------------------------------------------------===//

// The consumer violates the edge-triggered contract: it reads a fixed
// 2 bytes per wakeup instead of draining to EAGAIN. If both producer
// writes land before the consumer's first epoll_wait report, the report
// consumes the only edge, the partial read leaves 2 bytes buffered, and
// the second epoll_wait parks forever: the classic ET lost wakeup. If
// the first report lands between the writes, the second write is a fresh
// edge and everything drains. Exposing the hang therefore REQUIRES
// epoll_wait to be a real blocking scheduling point the explorer can
// order against the writes — this test is the regression for that.
struct EtCtx {
  int Ep = -1;
  int ReadFd = -1;
  int WriteFd = -1;
  bool Drain = false; ///< true = honor the ET contract (clean variant).
};

void *etConsumer(void *Arg) {
  EtCtx *Cx = static_cast<EtCtx *>(Arg);
  struct epoll_event Ev;
  char B[4];
  long Total = 0;
  while (Total < 4) {
    icb_posix_assert(icb_epoll_wait(Cx->Ep, &Ev, 1, -1) == 1, "epoll_wait");
    if (Cx->Drain) {
      long N;
      while ((N = icb_read(Cx->ReadFd, B, sizeof B)) > 0)
        Total += N;
      icb_posix_assert(N == -1 && errno == EAGAIN, "drain ends at EAGAIN");
    } else {
      long N = icb_read(Cx->ReadFd, B, 2); // Bug: partial consume under ET.
      if (N > 0)
        Total += N;
    }
  }
  return nullptr;
}

void *etProducer(void *Arg) {
  EtCtx *Cx = static_cast<EtCtx *>(Arg);
  icb_posix_assert(icb_write(Cx->WriteFd, "ab", 2) == 2, "write 1");
  icb_posix_assert(icb_write(Cx->WriteFd, "cd", 2) == 2, "write 2");
  return nullptr;
}

ExploreResult exploreEt(bool Drain, unsigned MaxBound) {
  return exploreIo(
      [Drain] {
        int P[2];
        icb_pipe2(P, O_NONBLOCK);
        int Ep = icb_epoll_create1(0);
        struct epoll_event Ev;
        Ev.events = EPOLLIN | EPOLLET;
        Ev.data.fd = P[0];
        icb_posix_assert(icb_epoll_ctl(Ep, EPOLL_CTL_ADD, P[0], &Ev) == 0,
                         "epoll_ctl ADD");
        static thread_local EtCtx Cx;
        Cx = EtCtx{Ep, P[0], P[1], Drain};
        pthread_t C, Pr;
        icb_pthread_create(&C, nullptr, etConsumer, &Cx);
        icb_pthread_create(&Pr, nullptr, etProducer, &Cx);
        icb_pthread_join(C, nullptr);
        icb_pthread_join(Pr, nullptr);
        icb_close(Ep);
        icb_close(P[0]);
        icb_close(P[1]);
      },
      MaxBound, /*StopAtFirst=*/true);
}

TEST(IoEpoll, EdgeTriggeredLostWakeupIsExposed) {
  ExploreResult R = exploreEt(/*Drain=*/false, /*MaxBound=*/2);
  ASSERT_FALSE(R.Bugs.empty())
      << "the ET lost-wakeup hang was not explored — epoll_wait has "
         "stopped being a blocking scheduling point";
  EXPECT_EQ(R.Bugs[0].Kind, search::BugKind::Deadlock);
}

TEST(IoEpoll, DrainingConsumerIsClean) {
  ExploreResult R = exploreEt(/*Drain=*/true, /*MaxBound=*/2);
  EXPECT_TRUE(R.Bugs.empty()) << (R.Bugs.empty() ? "" : R.Bugs[0].str());
}

//===----------------------------------------------------------------------===//
// Managed heap: double free and use-after-free become reported bugs
//===----------------------------------------------------------------------===//

TEST(IoHeap, DoubleFreeIsReported) {
  ExploreResult R = exploreIo(
      [] {
        void *P = icb_malloc(16);
        icb_free(P);
        icb_free(P);
      },
      /*MaxBound=*/0, /*StopAtFirst=*/true);
  ASSERT_FALSE(R.Bugs.empty());
  EXPECT_EQ(R.Bugs[0].Kind, search::BugKind::UseAfterFree);
  EXPECT_NE(R.Bugs[0].str().find("double free"), std::string::npos)
      << R.Bugs[0].str();
}

TEST(IoHeap, QuarantineTrampleIsReported) {
  ExploreResult R = exploreIo(
      [] {
        char *P = static_cast<char *>(icb_malloc(8));
        void *Q = icb_malloc(8);
        icb_free(P);
        P[0] = 'x'; // Use after free: trample the poisoned quarantine.
        icb_free(Q); // The next free's sweep attributes the trample.
      },
      /*MaxBound=*/0, /*StopAtFirst=*/true);
  ASSERT_FALSE(R.Bugs.empty());
  EXPECT_EQ(R.Bugs[0].Kind, search::BugKind::UseAfterFree);
  EXPECT_NE(R.Bugs[0].str().find("use-after-free"), std::string::npos)
      << R.Bugs[0].str();
}

TEST(IoHeap, CleanLifecycleHasNoReports) {
  ExploreResult R = exploreIo(
      [] {
        char *P = static_cast<char *>(icb_malloc(8));
        P[0] = 'x';
        char *Q = static_cast<char *>(icb_realloc(P, 64));
        icb_posix_assert(Q && Q[0] == 'x', "realloc preserves contents");
        icb_free(Q);
        void *Z = icb_calloc(4, 8);
        icb_posix_assert(Z && static_cast<char *>(Z)[31] == 0,
                         "calloc zeroes");
        icb_free(Z);
      },
      /*MaxBound=*/0);
  EXPECT_TRUE(R.Bugs.empty()) << (R.Bugs.empty() ? "" : R.Bugs[0].str());
}

} // namespace
