//===- bench/fig4_state_coverage.cpp - Reproduces Figure 4 -----------------===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Figure 4: "the percentage of the entire state space covered by
/// executions with bounded number of preemptions ... for both Bluetooth
/// and the filesystem model, 4 preemptions are sufficient to completely
/// explore the entire state space. For the relatively larger transaction
/// manager and the work-stealing queue benchmark, a context-bound of 6 and
/// 8 respectively are sufficient to cover more than 90% of the state
/// space."
///
/// Four benchmarks whose state spaces our checkers can exhaust: the file
/// system model, Bluetooth, and the work-stealing queue on the stateless
/// runtime (HB fingerprints as states), and the transaction manager on the
/// ZING-side model VM (explicit states). For each we run ICB to exhaustion
/// and report cumulative coverage per bound.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "benchmarks/Bluetooth.h"
#include "benchmarks/FileSystemModel.h"
#include "benchmarks/TxnManagerModel.h"
#include "benchmarks/WorkStealingQueue.h"
#include "rt/Explore.h"
#include "search/Checker.h"
#include "support/Format.h"
#include <cstdio>

using namespace icb;
using namespace icb::bench;
using namespace icb::benchutil;

namespace {

struct BoundRow {
  unsigned Bound;
  uint64_t States;
  uint64_t Executions;
};

struct CoverageSeries {
  std::string Name;
  std::vector<BoundRow> PerBound;
  uint64_t Total = 0;
  bool Completed = false;
  unsigned FullBound = ~0u;   ///< First bound covering 100%.
  unsigned Bound90 = ~0u;     ///< First bound covering >= 90%.
};

CoverageSeries summarize(std::string Name,
                         const std::vector<rt::BoundCoverage> &PerBound,
                         uint64_t Total, bool Completed) {
  CoverageSeries S;
  S.Name = std::move(Name);
  S.Total = Total;
  S.Completed = Completed;
  for (const rt::BoundCoverage &B : PerBound) {
    S.PerBound.push_back({B.Bound, B.States, B.Executions});
    double Pct = Total ? 100.0 * static_cast<double>(B.States) /
                             static_cast<double>(Total)
                       : 0.0;
    if (Pct >= 90.0 && S.Bound90 == ~0u)
      S.Bound90 = B.Bound;
    if (B.States == Total && S.FullBound == ~0u)
      S.FullBound = B.Bound;
  }
  return S;
}

CoverageSeries runRt(std::string Name, rt::TestCase Test,
                     uint64_t MaxExecutions) {
  rt::ExploreOptions Opts;
  Opts.Limits.MaxExecutions = MaxExecutions;
  rt::IcbExplorer Icb(Opts);
  rt::ExploreResult R = Icb.explore(std::move(Test));
  return summarize(std::move(Name), R.Stats.PerBound,
                   R.Stats.DistinctStates, R.Stats.Completed);
}

CoverageSeries runVm(std::string Name, const vm::Program &Prog,
                     uint64_t MaxExecutions) {
  search::SearchOptions Opts;
  Opts.Kind = search::StrategyKind::Icb;
  Opts.RecordSchedules = false;
  Opts.Limits.MaxExecutions = MaxExecutions;
  search::SearchResult R = search::checkProgram(Prog, Opts);
  std::vector<rt::BoundCoverage> PerBound;
  for (const search::BoundCoverage &B : R.Stats.PerBound)
    PerBound.push_back({B.Bound, B.States, B.Executions});
  return summarize(std::move(Name), PerBound, R.Stats.DistinctStates,
                   R.Stats.Completed);
}

} // namespace

int main() {
  printHeader("Figure 4: % of state space covered per preemption bound",
              "ICB to exhaustion on the four completable benchmarks");

  // The transaction manager (explicit-state VM) and the file system model
  // exhaust completely; Bluetooth and the work-stealing queue run under an
  // execution cap with their state counts saturated well before it (the
  // stateless execution count explodes combinatorially even after every
  // reachable happens-before class has been seen).
  std::vector<CoverageSeries> Series;
  Series.push_back(
      runRt("File System Model", fileSystemTest({3, 2, 2}), 2000000));
  Series.push_back(runRt("Bluetooth", bluetoothTest({2, false}), 700000));
  Series.push_back(runVm("Transaction Manager",
                         txnManagerModel({2, TxnBug::None}), 3000000));
  Series.push_back(
      runRt("Work Stealing Queue", workStealingTest({2, 4, WsqBug::None}),
            1200000));

  unsigned MaxBound = 0;
  for (const CoverageSeries &S : Series)
    if (!S.PerBound.empty())
      MaxBound = std::max(MaxBound, S.PerBound.back().Bound);

  std::vector<std::string> Headers{"Context Bound"};
  for (const CoverageSeries &S : Series)
    Headers.push_back(S.Name);
  std::vector<std::vector<std::string>> Rows;
  std::vector<std::vector<std::string>> CsvRows;
  for (unsigned Bound = 0; Bound <= MaxBound; ++Bound) {
    std::vector<std::string> Row{strFormat("%u", Bound)};
    std::vector<std::string> CsvRow{strFormat("%u", Bound)};
    for (const CoverageSeries &S : Series) {
      std::string Cell = "-";
      std::string CsvCell;
      for (const BoundRow &B : S.PerBound)
        if (B.Bound == Bound) {
          double Pct = S.Total ? 100.0 * static_cast<double>(B.States) /
                                     static_cast<double>(S.Total)
                               : 0.0;
          Cell = strFormat("%.1f%%", Pct);
          CsvCell = strFormat("%.4f", Pct);
        }
      Row.push_back(Cell);
      CsvRow.push_back(CsvCell);
    }
    Rows.push_back(std::move(Row));
    CsvRows.push_back(std::move(CsvRow));
  }
  printTable(Headers, Rows);

  std::printf("\nShape checks:\n");
  printComparison("File System Model full coverage bound", "4",
                  Series[0].FullBound == ~0u
                      ? "n/a"
                      : strFormat("%u", Series[0].FullBound));
  printComparison("Bluetooth full/saturated coverage bound", "4",
                  Series[1].FullBound == ~0u
                      ? "n/a"
                      : strFormat("%u", Series[1].FullBound));
  printComparison("Transaction Manager >=90% bound", "6",
                  Series[2].Bound90 == ~0u
                      ? "n/a"
                      : strFormat("%u", Series[2].Bound90));
  printComparison("Work Stealing Queue >=90% bound", "8",
                  Series[3].Bound90 == ~0u
                      ? "n/a"
                      : strFormat("%u", Series[3].Bound90));
  for (const CoverageSeries &S : Series)
    std::printf("  %-24s total states %-10s search %s\n", S.Name.c_str(),
                withCommas(S.Total).c_str(),
                S.Completed ? "completed" : "hit the execution limit");
  printCsv("fig4", Headers, CsvRows);
  return 0;
}
