//===- bench/fig5_ape_growth.cpp - Reproduces Figure 5 ---------------------===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Figure 5: coverage growth for APE — iterative context-bounding (icb)
/// against unbounded DFS and iterative depth-bounding with several bounds
/// (the paper used idfs-100/150/200 on executions a few hundred steps
/// deep; our APE executions are shorter, so the bounds scale down
/// proportionally). "It is very evident that context bounding is able to
/// systematically achieve better state space coverage, even in the first
/// 1000 executions."
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "benchmarks/Ape.h"
#include "rt/Explore.h"
#include <cstdio>

using namespace icb;
using namespace icb::bench;
using namespace icb::benchutil;

int main() {
  constexpr uint64_t MaxExecutions = 25000;
  printHeader("Figure 5: coverage growth for APE",
              "distinct HB-fingerprint states vs executions");

  auto Test = [] { return apeTest({2, 3, ApeBug::None}); };
  rt::ExploreOptions Opts;
  Opts.Limits.MaxExecutions = MaxExecutions;

  std::vector<NamedCurve> Curves;
  {
    rt::IcbExplorer Icb(Opts);
    Curves.push_back({"icb", Icb.explore(Test()).Stats.Coverage});
  }
  {
    rt::DfsExplorer Dfs(Opts);
    Curves.push_back({"dfs", Dfs.explore(Test()).Stats.Coverage});
  }
  for (unsigned Bound : {20u, 30u, 40u}) {
    rt::IdfsExplorer Idfs(Opts, Bound, Bound);
    Curves.push_back(
        {"idfs-" + std::to_string(Bound), Idfs.explore(Test()).Stats.Coverage});
  }

  printGrowthFigure("fig5", Curves, MaxExecutions);

  uint64_t IcbFinal =
      Curves[0].Points.empty() ? 0 : Curves[0].Points.back().States;
  std::printf("\nShape check (paper: icb above dfs and every idfs):\n");
  bool Dominates = true;
  for (size_t I = 1; I < Curves.size(); ++I) {
    uint64_t Final =
        Curves[I].Points.empty() ? 0 : Curves[I].Points.back().States;
    printComparison("icb vs " + Curves[I].Name, "icb higher",
                    IcbFinal >= Final ? "icb higher" : "icb LOWER");
    Dominates &= IcbFinal >= Final;
  }
  return Dominates ? 0 : 1;
}
