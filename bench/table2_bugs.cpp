//===- bench/table2_bugs.cpp - Reproduces Table 2 --------------------------===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Table 2: "For a total of 14 bugs that our model checker found, this
/// table shows the number of bugs exposed in executions with exactly c
/// preemptions, for c ranging from 0 to 3."
///
/// For every seeded bug in the registry, run iterative context bounding
/// (stopping at the first exposure) and record the preemption count of the
/// exposing execution — which ICB guarantees is minimal. Then print the
/// per-benchmark bucket counts next to the paper's.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "benchmarks/Registry.h"
#include "rt/Explore.h"
#include "search/Checker.h"
#include "support/Format.h"
#include <cstdio>
#include <map>

using namespace icb;
using namespace icb::bench;
using namespace icb::benchutil;

namespace {

/// Runs ICB on one bug variant; returns the minimal exposing bound, or -1.
int findBugBound(const BugVariant &Bug) {
  constexpr unsigned MaxBound = 4;
  if (Bug.MakeRt) {
    rt::ExploreOptions Opts;
    Opts.Limits.MaxExecutions = 2000000;
    Opts.Limits.StopAtFirstBug = true;
    Opts.Limits.MaxPreemptionBound = MaxBound;
    rt::IcbExplorer Icb(Opts);
    rt::ExploreResult R = Icb.explore(Bug.MakeRt());
    return R.foundBug() ? static_cast<int>(R.simplestBug()->Preemptions)
                        : -1;
  }
  search::SearchOptions Opts;
  Opts.Kind = search::StrategyKind::Icb;
  Opts.Limits.MaxExecutions = 2000000;
  Opts.Limits.StopAtFirstBug = true;
  Opts.Limits.MaxPreemptionBound = MaxBound;
  search::SearchResult R = search::checkProgram(Bug.MakeVm(), Opts);
  return R.foundBug() ? static_cast<int>(R.simplestBug()->Preemptions) : -1;
}

} // namespace

int main() {
  printHeader("Table 2: bugs exposed per preemption bound",
              "each seeded bug searched with ICB; the exposing bound is "
              "minimal by construction");

  std::vector<std::vector<std::string>> Rows;
  std::vector<std::vector<std::string>> CsvRows;
  unsigned TotalFound = 0;
  bool AllMatch = true;

  for (const BenchmarkEntry &E : allBenchmarks()) {
    if (!E.InTable2)
      continue;
    unsigned Measured[4] = {0, 0, 0, 0};
    unsigned Paper[4] = {0, 0, 0, 0};
    for (const BugVariant &Bug : E.Bugs) {
      ++Paper[Bug.PaperBound];
      int Bound = findBugBound(Bug);
      if (Bound >= 0 && Bound <= 3) {
        ++Measured[Bound];
        ++TotalFound;
      }
      CsvRows.push_back({E.Name, Bug.Label,
                         strFormat("%u", Bug.PaperBound),
                         strFormat("%d", Bound)});
      if (Bound != static_cast<int>(Bug.PaperBound))
        AllMatch = false;
    }
    auto Quad = [](const unsigned (&B)[4]) {
      return strFormat("%u %u %u %u", B[0], B[1], B[2], B[3]);
    };
    Rows.push_back({E.Name, strFormat("%zu", E.Bugs.size()), Quad(Measured),
                    Quad(Paper)});
  }

  printTable({"Programs", "Bugs", "measured c=0 1 2 3", "paper c=0 1 2 3"},
             Rows);
  std::printf("\nTotal bugs found: %u; every bug exposed at its paper "
              "bound: %s\n",
              TotalFound, AllMatch ? "yes" : "NO");
  printCsv("table2", {"benchmark", "bug", "paper_bound", "measured_bound"},
           CsvRows);
  return AllMatch ? 0 : 1;
}
