//===- bench/ablation_statecache.cpp - ZING vs CHESS design axis -----------===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Section 3: "State caching is orthogonal to the idea of
/// context-bounding; our algorithm may be used with or without it. In
/// fact, we have implemented our algorithm in two different model checkers
/// — ZING, which caches states and CHESS, which does not."
///
/// The ablation: run ICB on the model-VM benchmarks with and without the
/// (state, thread) work-item cache. Expectations: identical distinct-state
/// counts and identical bugs at identical bounds, with the cached search
/// executing far fewer executions/steps.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "benchmarks/TxnManagerModel.h"
#include "search/Checker.h"
#include "support/Format.h"
#include "testutil/TestPrograms.h"
#include <cstdio>

using namespace icb;
using namespace icb::bench;
using namespace icb::benchutil;
using namespace icb::search;

namespace {

SearchResult runIcb(const vm::Program &Prog, bool Cache) {
  SearchOptions Opts;
  Opts.Kind = StrategyKind::Icb;
  Opts.UseStateCache = Cache;
  Opts.RecordSchedules = false;
  Opts.Limits.MaxExecutions = 2000000;
  Opts.Limits.MaxPreemptionBound = 6;
  return checkProgram(Prog, Opts);
}

} // namespace

int main() {
  printHeader("Ablation: ICB with state caching (ZING) vs stateless "
              "(CHESS)",
              "same states and bugs; caching prunes revisited work items");

  struct Case {
    std::string Name;
    vm::Program Prog;
  };
  std::vector<Case> Cases;
  Cases.push_back(
      {"txnmgr (no bug)", txnManagerModel({2, TxnBug::None})});
  Cases.push_back({"txnmgr commit-stomp",
                   txnManagerModel({2, TxnBug::CommitStomp})});
  Cases.push_back({"racy-counter(3)", testutil::racyCounter(3)});
  Cases.push_back({"ping-pong(3)", testutil::eventPingPong(3)});

  std::vector<std::vector<std::string>> Rows;
  std::vector<std::vector<std::string>> CsvRows;
  bool Consistent = true;
  for (Case &C : Cases) {
    SearchResult Stateless = runIcb(C.Prog, false);
    SearchResult Cached = runIcb(C.Prog, true);
    bool SameStates =
        Stateless.Stats.DistinctStates == Cached.Stats.DistinctStates;
    bool SameBugs = Stateless.Bugs.size() == Cached.Bugs.size();
    if (SameBugs)
      for (size_t I = 0; I != Stateless.Bugs.size(); ++I)
        SameBugs &= Stateless.Bugs[I].Message == Cached.Bugs[I].Message &&
                    Stateless.Bugs[I].Preemptions ==
                        Cached.Bugs[I].Preemptions;
    Consistent &= SameStates && SameBugs;
    Rows.push_back(
        {C.Name, withCommas(Stateless.Stats.Executions),
         withCommas(Cached.Stats.Executions),
         withCommas(Stateless.Stats.DistinctStates),
         SameStates && SameBugs ? "identical" : "DIVERGED"});
    CsvRows.push_back(
        {C.Name,
         strFormat("%llu", (unsigned long long)Stateless.Stats.Executions),
         strFormat("%llu", (unsigned long long)Cached.Stats.Executions),
         strFormat("%llu",
                   (unsigned long long)Stateless.Stats.DistinctStates)});
  }
  printTable({"program", "stateless execs", "cached execs",
              "distinct states", "states+bugs"},
             Rows);
  std::printf("\nCaching preserved states and bugs on every case: %s\n",
              Consistent ? "yes" : "NO");
  printCsv("ablation_statecache",
           {"program", "stateless_execs", "cached_execs", "states"},
           CsvRows);
  return Consistent ? 0 : 1;
}
