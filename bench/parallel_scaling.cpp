//===- bench/parallel_scaling.cpp - Parallel ICB speedup harness ----------===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Measures the parallel ICB engine's wall-clock speedup over the
/// sequential reference as the worker count grows, for both executors:
/// the model-VM engine on the model-form benchmarks and the stateless
/// (CHESS-side) engine replaying schedule prefixes on the fiber runtime.
/// Every configuration must report identical executions/steps/states —
/// the engine's determinism guarantee — so the harness fails loudly if
/// any run diverges from its jobs=1 reference.
///
/// Emits a human-readable table plus a machine-readable JSON block
/// (between BEGIN/END JSON markers) with one record per (engine,
/// benchmark, jobs) triple: wall microseconds, speedup vs jobs=1 (in
/// thousandths), executions/steps/states, and hardware concurrency so plots can
/// annotate core counts. Speedup is bounded by the physical core count:
/// on a single-core container every configuration necessarily measures
/// ~1.0x.
///
/// `--dist` switches to the distributed service instead: an in-process
/// coordinator on a loopback ephemeral port with 1/2/4 joiner threads,
/// each joiner running the same lease runner the CLI's --join plugs in.
/// The merged result must match the local sequential run exactly — the
/// subsystem's determinism contract — and the JSON block is named
/// dist_scaling (the CI distributed job archives it as BENCH_dist.json).
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "benchmarks/Bluetooth.h"
#include "benchmarks/BluetoothModel.h"
#include "benchmarks/WorkStealingQueue.h"
#include "benchmarks/WsqModel.h"
#include "dist/Coordinator.h"
#include "dist/Worker.h"
#include "rt/Explore.h"
#include "search/BoundPolicy.h"
#include "search/Checker.h"
#include "search/ParallelIcb.h"
#include "session/Json.h"
#include "support/Format.h"
#include "vm/Interp.h"
#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

using namespace icb;
using namespace icb::bench;
using namespace icb::benchutil;

namespace {

struct Sample {
  std::string Engine;
  std::string Benchmark;
  unsigned Jobs = 0;
  double Seconds = 0;
  double Speedup = 0;
  search::SearchStats Stats;
};

double runModelOnce(const vm::Program &Prog, unsigned Jobs, unsigned MaxBound,
                    search::SearchStats *Out) {
  search::ParallelIcbSearch::Options Opts;
  Opts.Jobs = Jobs;
  Opts.UseStateCache = true;
  Opts.Limits.MaxPreemptionBound = MaxBound;
  Opts.Limits.StopAtFirstBug = false;
  search::ParallelIcbSearch Search(Opts);
  vm::Interp VM(Prog);
  auto Start = std::chrono::steady_clock::now();
  search::SearchResult R = Search.run(VM);
  auto End = std::chrono::steady_clock::now();
  if (Out)
    *Out = R.Stats;
  return std::chrono::duration<double>(End - Start).count();
}

double runStatelessOnce(const rt::TestCase &Test, unsigned Jobs,
                        unsigned MaxBound, search::SearchStats *Out) {
  rt::ExploreOptions Opts;
  Opts.Jobs = Jobs;
  Opts.Limits.MaxPreemptionBound = MaxBound;
  Opts.Limits.StopAtFirstBug = false;
  rt::IcbExplorer Icb(Opts);
  auto Start = std::chrono::steady_clock::now();
  rt::ExploreResult R = Icb.explore(Test);
  auto End = std::chrono::steady_clock::now();
  if (Out)
    *Out = R.Stats;
  return std::chrono::duration<double>(End - Start).count();
}

/// One timed (engine, benchmark) scaling series: per job count, best of
/// three repetitions, divergence-checked against the jobs=1 reference.
struct Series {
  std::string Engine;
  std::string Name;
  std::function<double(unsigned, search::SearchStats *)> Run;
};

//===----------------------------------------------------------------------===//
// --dist: loopback coordinator/joiner scaling
//===----------------------------------------------------------------------===//

/// The model-VM lease runner the CLI's --join plugs in (see
/// tools/common/DistDrive.cpp): fresh policy, caches, and metrics
/// registry per lease.
dist::LeaseRunner distRunner(const vm::Program &Prog, unsigned MaxBound) {
  return [&Prog, MaxBound](const dist::LeaseRequest &Req) {
    obs::MetricsRegistry Reg;
    std::unique_ptr<search::BoundPolicy> Policy =
        search::makeBoundPolicy({"preemption", MaxBound, 0});
    search::EngineSnapshot Synth;
    const search::EngineSnapshot *Resume = nullptr;
    if (!Req.Roots) {
      Synth.Bound = Req.Bound;
      Synth.CurrentQueue = Req.Items;
      Resume = &Synth;
    }
    search::SearchOptions O;
    O.Kind = search::StrategyKind::Icb;
    O.Policy = Policy.get();
    O.Jobs = 1;
    O.Resume = Resume;
    O.Metrics = &Reg;
    O.Lease =
        Req.Roots ? search::LeaseMode::Roots : search::LeaseMode::Drain;
    search::SearchResult R = search::checkProgram(Prog, O);

    dist::LeaseResult Res;
    Res.Completed = R.Stats.Completed;
    Res.Stats = std::move(R.Stats);
    Res.Bugs = std::move(R.Bugs);
    Res.Deferred = std::move(R.LeaseDeferred);
    Res.Remaining = std::move(R.LeaseCurrent);
    Res.SeenDigests = std::move(R.LeaseSeen);
    Res.TerminalDigests = std::move(R.LeaseTerminal);
    Res.ItemDigests = std::move(R.LeaseItems);
    Res.Metrics = Reg.snapshot();
    return Res;
  };
}

/// One coordinator + \p Joiners worker threads over loopback; returns
/// wall seconds for the whole merged run.
double runDistOnce(const vm::Program &Prog, unsigned MaxBound,
                   unsigned Joiners, search::SearchStats *Out) {
  dist::CoordinatorOptions CO;
  CO.Bind = "127.0.0.1:0";
  CO.Meta.Benchmark = "bench";
  CO.Meta.Bug = "default";
  CO.Meta.Form = "vm";
  CO.Meta.Strategy = "icb";
  CO.Meta.Bound = "preemption";
  CO.Meta.Limits.MaxPreemptionBound = MaxBound;
  CO.FrontierBound = MaxBound;
  dist::Coordinator Coord(CO);
  std::string Err;
  if (!Coord.start(&Err)) {
    std::fprintf(stderr, "FAIL: coordinator bind: %s\n", Err.c_str());
    return -1;
  }
  uint16_t Port = Coord.port();

  auto Start = std::chrono::steady_clock::now();
  std::vector<std::thread> Threads;
  for (unsigned I = 0; I != Joiners; ++I)
    Threads.emplace_back([&Prog, MaxBound, Port] {
      dist::WorkerOptions WO;
      WO.Connect = "127.0.0.1:" + std::to_string(Port);
      WO.Runner = distRunner(Prog, MaxBound);
      dist::Worker W(WO);
      W.run();
    });
  search::SearchResult R = Coord.run();
  auto End = std::chrono::steady_clock::now();
  for (std::thread &T : Threads)
    T.join();
  if (Out)
    *Out = R.Stats;
  return std::chrono::duration<double>(End - Start).count();
}

int runDistScaling() {
  const unsigned Hardware = std::thread::hardware_concurrency();
  printHeader("Distributed ICB scaling",
              strFormat("loopback coordinator + joiner threads; hardware "
                        "concurrency %u",
                        Hardware ? Hardware : 1));

  struct DistCase {
    const char *Name;
    vm::Program Prog;
    unsigned MaxBound;
  };
  const DistCase Cases[] = {
      {"wsq-model", wsqModel({3, WsqBug::None}), 3},
      {"bluetooth-model", bluetoothModel(3, /*WithBug=*/false), 4},
  };
  const unsigned JoinerCounts[] = {1, 2, 4};

  std::vector<std::vector<std::string>> Rows;
  session::JsonValue SampleArr = session::JsonValue::array();
  bool Deterministic = true;
  for (const DistCase &C : Cases) {
    // The local sequential run every merged result must reproduce.
    std::unique_ptr<search::BoundPolicy> Policy =
        search::makeBoundPolicy({"preemption", C.MaxBound, 0});
    search::SearchOptions O;
    O.Kind = search::StrategyKind::Icb;
    O.Policy = Policy.get();
    O.Jobs = 1;
    auto Start = std::chrono::steady_clock::now();
    search::SearchResult Ref = search::checkProgram(C.Prog, O);
    auto End = std::chrono::steady_clock::now();
    double Baseline = std::chrono::duration<double>(End - Start).count();
    Rows.push_back({C.Name, "local", "1",
                    strFormat("%.3f", Baseline), "1.00x",
                    withCommas(Ref.Stats.Executions),
                    withCommas(Ref.Stats.TotalSteps),
                    withCommas(Ref.Stats.DistinctStates)});

    for (unsigned Joiners : JoinerCounts) {
      // Best of two repetitions; the run is socket-bound enough that a
      // third adds wall time without steadying the numbers further.
      search::SearchStats Stats;
      double Seconds = runDistOnce(C.Prog, C.MaxBound, Joiners, &Stats);
      Seconds = std::min(Seconds,
                         runDistOnce(C.Prog, C.MaxBound, Joiners, nullptr));
      if (Stats.Executions != Ref.Stats.Executions ||
          Stats.TotalSteps != Ref.Stats.TotalSteps ||
          Stats.DistinctStates != Ref.Stats.DistinctStates) {
        std::fprintf(stderr,
                     "FAIL: %s with %u joiners diverged from the local "
                     "sequential run\n",
                     C.Name, Joiners);
        Deterministic = false;
      }
      double Speedup = Seconds > 0 ? Baseline / Seconds : 0;
      Rows.push_back({C.Name, "dist", std::to_string(Joiners),
                      strFormat("%.3f", Seconds),
                      strFormat("%.2fx", Speedup),
                      withCommas(Stats.Executions),
                      withCommas(Stats.TotalSteps),
                      withCommas(Stats.DistinctStates)});

      session::JsonValue Rec = session::JsonValue::object();
      Rec.set("benchmark", session::JsonValue::str(C.Name));
      Rec.set("joiners", session::JsonValue::number(Joiners));
      Rec.set("seconds_us",
              session::JsonValue::number(scaledU64(Seconds, 1e6)));
      Rec.set("baseline_us",
              session::JsonValue::number(scaledU64(Baseline, 1e6)));
      Rec.set("speedup_milli",
              session::JsonValue::number(scaledU64(Speedup, 1e3)));
      Rec.set("executions", session::JsonValue::number(Stats.Executions));
      Rec.set("steps", session::JsonValue::number(Stats.TotalSteps));
      Rec.set("states", session::JsonValue::number(Stats.DistinctStates));
      Rec.set("deterministic",
              session::JsonValue::boolean(
                  Stats.Executions == Ref.Stats.Executions &&
                  Stats.TotalSteps == Ref.Stats.TotalSteps &&
                  Stats.DistinctStates == Ref.Stats.DistinctStates));
      SampleArr.Arr.push_back(std::move(Rec));
    }
  }

  printTable({"benchmark", "mode", "joiners", "seconds", "speedup",
              "executions", "steps", "states"},
             Rows);

  session::JsonValue Doc = session::JsonValue::object();
  Doc.set("hardware_concurrency", session::JsonValue::number(Hardware));
  Doc.set("samples", std::move(SampleArr));
  printJsonBlock("dist_scaling", Doc);

  std::string Error;
  if (!session::atomicWriteFile("BENCH_dist.json", session::jsonWrite(Doc),
                                &Error)) {
    std::fprintf(stderr, "failed to write BENCH_dist.json: %s\n",
                 Error.c_str());
    return 1;
  }
  std::printf("wrote BENCH_dist.json\n");

  return Deterministic ? 0 : 1;
}

} // namespace

int main(int argc, char **argv) {
  for (int I = 1; I < argc; ++I)
    if (std::strcmp(argv[I], "--dist") == 0)
      return runDistScaling();

  const unsigned Hardware = std::thread::hardware_concurrency();
  printHeader("Parallel ICB scaling",
              strFormat("speedup vs worker count; hardware concurrency %u",
                        Hardware ? Hardware : 1));

  const vm::Program WsqProg = wsqModel({3, WsqBug::None});
  const vm::Program BtProg = bluetoothModel(3, /*WithBug=*/false);
  const rt::TestCase WsqTest = workStealingTest({3, 4, WsqBug::None});
  const rt::TestCase BtTest = bluetoothTest({2, /*WithBug=*/false});

  const Series AllSeries[] = {
      {"model", "wsq-model",
       [&](unsigned Jobs, search::SearchStats *Out) {
         return runModelOnce(WsqProg, Jobs, 3, Out);
       }},
      {"model", "bluetooth-model",
       [&](unsigned Jobs, search::SearchStats *Out) {
         return runModelOnce(BtProg, Jobs, 4, Out);
       }},
      {"stateless", "wsq-rt",
       [&](unsigned Jobs, search::SearchStats *Out) {
         return runStatelessOnce(WsqTest, Jobs, 2, Out);
       }},
      {"stateless", "bluetooth-rt",
       [&](unsigned Jobs, search::SearchStats *Out) {
         return runStatelessOnce(BtTest, Jobs, 2, Out);
       }},
  };
  const unsigned JobCounts[] = {1, 2, 4, 8};

  std::vector<Sample> Samples;
  std::vector<std::vector<std::string>> Rows;
  bool Deterministic = true;
  for (const Series &W : AllSeries) {
    // One untimed warm-up run per workload primes allocator arenas (and,
    // for the stateless engine, fiber stack pools) so the jobs=1 baseline
    // is not penalized for first-touch page faults.
    W.Run(1, nullptr);
    double Baseline = 0;
    search::SearchStats Reference;
    for (unsigned Jobs : JobCounts) {
      Sample S;
      S.Engine = W.Engine;
      S.Benchmark = W.Name;
      S.Jobs = Jobs;
      // Best of three repetitions smooths scheduler noise.
      S.Seconds = W.Run(Jobs, &S.Stats);
      for (int Rep = 0; Rep != 2; ++Rep)
        S.Seconds = std::min(S.Seconds, W.Run(Jobs, nullptr));
      if (Jobs == 1) {
        Baseline = S.Seconds;
        Reference = S.Stats;
      } else if (S.Stats.Executions != Reference.Executions ||
                 S.Stats.TotalSteps != Reference.TotalSteps ||
                 S.Stats.DistinctStates != Reference.DistinctStates) {
        std::fprintf(stderr,
                     "FAIL: %s %s with %u jobs diverged from jobs=1\n",
                     W.Engine.c_str(), W.Name.c_str(), Jobs);
        Deterministic = false;
      }
      S.Speedup = S.Seconds > 0 ? Baseline / S.Seconds : 0;
      Rows.push_back({W.Engine, W.Name, std::to_string(Jobs),
                      strFormat("%.3f", S.Seconds),
                      strFormat("%.2fx", S.Speedup),
                      withCommas(S.Stats.Executions),
                      withCommas(S.Stats.TotalSteps),
                      withCommas(S.Stats.DistinctStates)});
      Samples.push_back(std::move(S));
    }
  }

  printTable({"engine", "benchmark", "jobs", "seconds", "speedup",
              "executions", "steps", "states"},
             Rows);

  // Machine-readable block via the session JSON writer. Session JSON
  // numbers are unsigned integers, so fractional measurements are scaled:
  // seconds_us is wall time in microseconds, speedup_milli is speedup
  // times 1000.
  session::JsonValue Doc = session::JsonValue::object();
  Doc.set("hardware_concurrency", session::JsonValue::number(Hardware));
  session::JsonValue SampleArr = session::JsonValue::array();
  for (const Sample &S : Samples) {
    session::JsonValue Rec = session::JsonValue::object();
    Rec.set("engine", session::JsonValue::str(S.Engine));
    Rec.set("benchmark", session::JsonValue::str(S.Benchmark));
    Rec.set("jobs", session::JsonValue::number(S.Jobs));
    Rec.set("seconds_us", session::JsonValue::number(scaledU64(S.Seconds, 1e6)));
    Rec.set("speedup_milli",
            session::JsonValue::number(scaledU64(S.Speedup, 1e3)));
    Rec.set("executions", session::JsonValue::number(S.Stats.Executions));
    Rec.set("steps", session::JsonValue::number(S.Stats.TotalSteps));
    Rec.set("states", session::JsonValue::number(S.Stats.DistinctStates));
    SampleArr.Arr.push_back(std::move(Rec));
  }
  Doc.set("samples", std::move(SampleArr));
  printJsonBlock("parallel_scaling", Doc);

  return Deterministic ? 0 : 1;
}
