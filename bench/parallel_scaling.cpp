//===- bench/parallel_scaling.cpp - Parallel ICB speedup harness ----------===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Measures the parallel ICB engine's wall-clock speedup over the
/// sequential reference as the worker count grows, for both executors:
/// the model-VM engine on the model-form benchmarks and the stateless
/// (CHESS-side) engine replaying schedule prefixes on the fiber runtime.
/// Every configuration must report identical executions/steps/states —
/// the engine's determinism guarantee — so the harness fails loudly if
/// any run diverges from its jobs=1 reference.
///
/// Emits a human-readable table plus a machine-readable JSON block
/// (between BEGIN/END JSON markers) with one record per (engine,
/// benchmark, jobs) triple: wall microseconds, speedup vs jobs=1 (in
/// thousandths), executions/steps/states, and hardware concurrency so plots can
/// annotate core counts. Speedup is bounded by the physical core count:
/// on a single-core container every configuration necessarily measures
/// ~1.0x.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "benchmarks/Bluetooth.h"
#include "benchmarks/BluetoothModel.h"
#include "benchmarks/WorkStealingQueue.h"
#include "benchmarks/WsqModel.h"
#include "rt/Explore.h"
#include "search/ParallelIcb.h"
#include "support/Format.h"
#include "vm/Interp.h"
#include <chrono>
#include <cstdio>
#include <functional>
#include <string>
#include <thread>
#include <vector>

using namespace icb;
using namespace icb::bench;
using namespace icb::benchutil;

namespace {

struct Sample {
  std::string Engine;
  std::string Benchmark;
  unsigned Jobs = 0;
  double Seconds = 0;
  double Speedup = 0;
  search::SearchStats Stats;
};

double runModelOnce(const vm::Program &Prog, unsigned Jobs, unsigned MaxBound,
                    search::SearchStats *Out) {
  search::ParallelIcbSearch::Options Opts;
  Opts.Jobs = Jobs;
  Opts.UseStateCache = true;
  Opts.Limits.MaxPreemptionBound = MaxBound;
  Opts.Limits.StopAtFirstBug = false;
  search::ParallelIcbSearch Search(Opts);
  vm::Interp VM(Prog);
  auto Start = std::chrono::steady_clock::now();
  search::SearchResult R = Search.run(VM);
  auto End = std::chrono::steady_clock::now();
  if (Out)
    *Out = R.Stats;
  return std::chrono::duration<double>(End - Start).count();
}

double runStatelessOnce(const rt::TestCase &Test, unsigned Jobs,
                        unsigned MaxBound, search::SearchStats *Out) {
  rt::ExploreOptions Opts;
  Opts.Jobs = Jobs;
  Opts.Limits.MaxPreemptionBound = MaxBound;
  Opts.Limits.StopAtFirstBug = false;
  rt::IcbExplorer Icb(Opts);
  auto Start = std::chrono::steady_clock::now();
  rt::ExploreResult R = Icb.explore(Test);
  auto End = std::chrono::steady_clock::now();
  if (Out)
    *Out = R.Stats;
  return std::chrono::duration<double>(End - Start).count();
}

/// One timed (engine, benchmark) scaling series: per job count, best of
/// three repetitions, divergence-checked against the jobs=1 reference.
struct Series {
  std::string Engine;
  std::string Name;
  std::function<double(unsigned, search::SearchStats *)> Run;
};

} // namespace

int main() {
  const unsigned Hardware = std::thread::hardware_concurrency();
  printHeader("Parallel ICB scaling",
              strFormat("speedup vs worker count; hardware concurrency %u",
                        Hardware ? Hardware : 1));

  const vm::Program WsqProg = wsqModel({3, WsqBug::None});
  const vm::Program BtProg = bluetoothModel(3, /*WithBug=*/false);
  const rt::TestCase WsqTest = workStealingTest({3, 4, WsqBug::None});
  const rt::TestCase BtTest = bluetoothTest({2, /*WithBug=*/false});

  const Series AllSeries[] = {
      {"model", "wsq-model",
       [&](unsigned Jobs, search::SearchStats *Out) {
         return runModelOnce(WsqProg, Jobs, 3, Out);
       }},
      {"model", "bluetooth-model",
       [&](unsigned Jobs, search::SearchStats *Out) {
         return runModelOnce(BtProg, Jobs, 4, Out);
       }},
      {"stateless", "wsq-rt",
       [&](unsigned Jobs, search::SearchStats *Out) {
         return runStatelessOnce(WsqTest, Jobs, 2, Out);
       }},
      {"stateless", "bluetooth-rt",
       [&](unsigned Jobs, search::SearchStats *Out) {
         return runStatelessOnce(BtTest, Jobs, 2, Out);
       }},
  };
  const unsigned JobCounts[] = {1, 2, 4, 8};

  std::vector<Sample> Samples;
  std::vector<std::vector<std::string>> Rows;
  bool Deterministic = true;
  for (const Series &W : AllSeries) {
    // One untimed warm-up run per workload primes allocator arenas (and,
    // for the stateless engine, fiber stack pools) so the jobs=1 baseline
    // is not penalized for first-touch page faults.
    W.Run(1, nullptr);
    double Baseline = 0;
    search::SearchStats Reference;
    for (unsigned Jobs : JobCounts) {
      Sample S;
      S.Engine = W.Engine;
      S.Benchmark = W.Name;
      S.Jobs = Jobs;
      // Best of three repetitions smooths scheduler noise.
      S.Seconds = W.Run(Jobs, &S.Stats);
      for (int Rep = 0; Rep != 2; ++Rep)
        S.Seconds = std::min(S.Seconds, W.Run(Jobs, nullptr));
      if (Jobs == 1) {
        Baseline = S.Seconds;
        Reference = S.Stats;
      } else if (S.Stats.Executions != Reference.Executions ||
                 S.Stats.TotalSteps != Reference.TotalSteps ||
                 S.Stats.DistinctStates != Reference.DistinctStates) {
        std::fprintf(stderr,
                     "FAIL: %s %s with %u jobs diverged from jobs=1\n",
                     W.Engine.c_str(), W.Name.c_str(), Jobs);
        Deterministic = false;
      }
      S.Speedup = S.Seconds > 0 ? Baseline / S.Seconds : 0;
      Rows.push_back({W.Engine, W.Name, std::to_string(Jobs),
                      strFormat("%.3f", S.Seconds),
                      strFormat("%.2fx", S.Speedup),
                      withCommas(S.Stats.Executions),
                      withCommas(S.Stats.TotalSteps),
                      withCommas(S.Stats.DistinctStates)});
      Samples.push_back(std::move(S));
    }
  }

  printTable({"engine", "benchmark", "jobs", "seconds", "speedup",
              "executions", "steps", "states"},
             Rows);

  // Machine-readable block via the session JSON writer. Session JSON
  // numbers are unsigned integers, so fractional measurements are scaled:
  // seconds_us is wall time in microseconds, speedup_milli is speedup
  // times 1000.
  session::JsonValue Doc = session::JsonValue::object();
  Doc.set("hardware_concurrency", session::JsonValue::number(Hardware));
  session::JsonValue SampleArr = session::JsonValue::array();
  for (const Sample &S : Samples) {
    session::JsonValue Rec = session::JsonValue::object();
    Rec.set("engine", session::JsonValue::str(S.Engine));
    Rec.set("benchmark", session::JsonValue::str(S.Benchmark));
    Rec.set("jobs", session::JsonValue::number(S.Jobs));
    Rec.set("seconds_us", session::JsonValue::number(scaledU64(S.Seconds, 1e6)));
    Rec.set("speedup_milli",
            session::JsonValue::number(scaledU64(S.Speedup, 1e3)));
    Rec.set("executions", session::JsonValue::number(S.Stats.Executions));
    Rec.set("steps", session::JsonValue::number(S.Stats.TotalSteps));
    Rec.set("states", session::JsonValue::number(S.Stats.DistinctStates));
    SampleArr.Arr.push_back(std::move(Rec));
  }
  Doc.set("samples", std::move(SampleArr));
  printJsonBlock("parallel_scaling", Doc);

  return Deterministic ? 0 : 1;
}
