//===- bench/micro_benchmarks.cpp - Substrate microbenchmarks --------------===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// google-benchmark microbenchmarks for the hot substrate paths: the model
/// VM's step loop, state hashing, fiber context switching, full controlled
/// executions, the race detectors, and happens-before fingerprinting.
/// These set expectations for how many executions per second the
/// experiment harnesses can explore.
///
//===----------------------------------------------------------------------===//

#include "benchmarks/WorkStealingQueue.h"
#include "race/Goldilocks.h"
#include "race/VcRaceDetector.h"
#include "rt/Explore.h"
#include "rt/Fiber.h"
#include "testutil/TestPrograms.h"
#include "trace/Fingerprint.h"
#include "vm/Interp.h"
#include <benchmark/benchmark.h>

using namespace icb;

namespace {

void BM_VmStep(benchmark::State &State) {
  vm::Program Prog = testutil::eventPingPong(50);
  vm::Interp VM(Prog);
  vm::State S0 = VM.initialState();
  uint64_t Steps = 0;
  for (auto _ : State) {
    vm::State S = S0;
    while (true) {
      std::vector<vm::ThreadId> Enabled = VM.enabledThreads(S);
      if (Enabled.empty())
        break;
      VM.step(S, Enabled.front());
      ++Steps;
    }
  }
  State.SetItemsProcessed(static_cast<int64_t>(Steps));
}
BENCHMARK(BM_VmStep);

void BM_VmStateHash(benchmark::State &State) {
  vm::Program Prog = testutil::racyCounter(4);
  vm::Interp VM(Prog);
  vm::State S = VM.initialState();
  for (auto _ : State)
    benchmark::DoNotOptimize(S.hash());
}
BENCHMARK(BM_VmStateHash);

void BM_VmStateCopy(benchmark::State &State) {
  vm::Program Prog = testutil::racyCounter(4);
  vm::Interp VM(Prog);
  vm::State S = VM.initialState();
  for (auto _ : State) {
    vm::State Copy = S;
    benchmark::DoNotOptimize(&Copy);
  }
}
BENCHMARK(BM_VmStateCopy);

void BM_FiberSwitch(benchmark::State &State) {
  // Ping-pong between the main context and one looping fiber: two context
  // switches per iteration.
  rt::MachineContext Main;
  rt::Fiber *FibPtr = nullptr;
  rt::Fiber Looper([&FibPtr, &Main] {
    while (true)
      FibPtr->yieldTo(Main);
  });
  FibPtr = &Looper;
  for (auto _ : State)
    Looper.resume(Main);
  State.SetItemsProcessed(State.iterations() * 2);
}
BENCHMARK(BM_FiberSwitch);

void BM_ControlledExecution(benchmark::State &State) {
  rt::TestCase Test = bench::workStealingTest({3, 4, bench::WsqBug::None});
  rt::Scheduler Sched(rt::Scheduler::Options{});
  for (auto _ : State) {
    rt::NonPreemptivePolicy Policy;
    rt::ExecutionResult R = Sched.run(Test, Policy);
    benchmark::DoNotOptimize(R.Fingerprint);
  }
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_ControlledExecution);

void BM_VcRaceDetector(benchmark::State &State) {
  for (auto _ : State) {
    race::VcRaceDetector D(8);
    for (unsigned I = 0; I != 64; ++I) {
      D.onSyncOp(I % 4, 200 + I % 3);
      benchmark::DoNotOptimize(D.onDataAccess(I % 4, 100 + I % 5, I % 2));
    }
  }
  State.SetItemsProcessed(State.iterations() * 128);
}
BENCHMARK(BM_VcRaceDetector);

void BM_GoldilocksDetector(benchmark::State &State) {
  for (auto _ : State) {
    race::GoldilocksDetector D(8);
    for (unsigned I = 0; I != 64; ++I) {
      D.onSyncOp(I % 4, 200 + I % 3);
      benchmark::DoNotOptimize(D.onDataAccess(I % 4, 100 + I % 5, I % 2));
    }
  }
  State.SetItemsProcessed(State.iterations() * 128);
}
BENCHMARK(BM_GoldilocksDetector);

void BM_Fingerprint(benchmark::State &State) {
  for (auto _ : State) {
    trace::FingerprintBuilder F(8);
    for (unsigned I = 0; I != 128; ++I)
      F.addStep(I % 4, 100 + I % 7, I % 3 != 0, static_cast<uint16_t>(I % 5));
    benchmark::DoNotOptimize(F.digest());
  }
  State.SetItemsProcessed(State.iterations() * 128);
}
BENCHMARK(BM_Fingerprint);

void BM_IcbExploreWsq(benchmark::State &State) {
  // Executions explored per second by the stateless ICB explorer.
  uint64_t Executions = 0;
  for (auto _ : State) {
    rt::ExploreOptions Opts;
    Opts.Limits.MaxExecutions = 200;
    rt::IcbExplorer Icb(Opts);
    rt::ExploreResult R =
        Icb.explore(bench::workStealingTest({3, 4, bench::WsqBug::None}));
    Executions += R.Stats.Executions;
  }
  State.SetItemsProcessed(static_cast<int64_t>(Executions));
}
BENCHMARK(BM_IcbExploreWsq);

} // namespace

BENCHMARK_MAIN();
