//===- bench/table1_characteristics.cpp - Reproduces Table 1 ---------------===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Table 1: "For each benchmark, this table reports the number of lines,
/// the number of threads allocated by the test driver. For an execution, K
/// is the total number of steps, B is the number of blocking instructions,
/// and c is the number of preemptions. The table reports the maximum
/// values of K, B, and c seen during our experiments."
///
/// We run each Table 1 benchmark's default configuration under (a)
/// unbounded stateless DFS, which wanders into high-preemption executions
/// (the source of the "max c" observations), and (b) ICB, whose bound-0
/// executions maximize K. The LOC column is the size of our
/// reimplementation (the paper's original sources are proprietary).
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "benchmarks/Registry.h"
#include "rt/Explore.h"
#include "support/Format.h"
#include <cstdio>

using namespace icb;
using namespace icb::bench;
using namespace icb::benchutil;

int main() {
  printHeader("Table 1: benchmark characteristics",
              "max K (steps), B (blocking ops), c (preemptions) observed "
              "while exploring");

  std::vector<std::vector<std::string>> Rows;
  std::vector<std::vector<std::string>> CsvRows;
  for (const BenchmarkEntry &E : allBenchmarks()) {
    if (!E.InTable1)
      continue;
    rt::TestCase Test = E.MakeDefaultRt();

    // DFS reaches deep-preemption executions quickly (every backtrack
    // point is a potential preemption); ICB covers the K side.
    rt::ExploreOptions DfsOpts;
    DfsOpts.Limits.MaxExecutions = 30000;
    rt::DfsExplorer Dfs(DfsOpts);
    rt::ExploreResult DfsR = Dfs.explore(Test);

    rt::ExploreOptions IcbOpts;
    IcbOpts.Limits.MaxExecutions = 30000;
    rt::IcbExplorer Icb(IcbOpts);
    rt::ExploreResult IcbR = Icb.explore(Test);

    uint64_t MaxK = std::max(DfsR.Stats.StepsPerExecution.max(),
                             IcbR.Stats.StepsPerExecution.max());
    uint64_t MaxB = std::max(DfsR.Stats.BlockingPerExecution.max(),
                             IcbR.Stats.BlockingPerExecution.max());
    uint64_t MaxC = std::max(DfsR.Stats.PreemptionsPerExecution.max(),
                             IcbR.Stats.PreemptionsPerExecution.max());

    Rows.push_back({E.Name, strFormat("%u", E.Loc),
                    strFormat("%u", E.DriverThreads),
                    strFormat("%llu", (unsigned long long)MaxK),
                    strFormat("%llu", (unsigned long long)MaxB),
                    strFormat("%llu", (unsigned long long)MaxC)});
    CsvRows.push_back(Rows.back());
  }

  printTable({"Programs", "LOC", "Max Num Threads", "Max K", "Max B",
              "Max c"},
             Rows);
  std::printf(
      "\nPaper's rows for comparison (their proprietary originals):\n");
  printTable({"Programs", "LOC", "Max Num Threads", "Max K", "Max B",
              "Max c"},
             {{"Bluetooth", "400", "3", "15", "2", "8"},
              {"File System Model", "84", "4", "20", "8", "13"},
              {"Work Stealing Q.", "1266", "3", "99", "2", "35"},
              {"APE", "18947", "4", "247", "2", "75"},
              {"Dryad Channels", "16036", "5", "273", "4", "167"}});
  printCsv("table1",
           {"benchmark", "loc", "threads", "max_k", "max_b", "max_c"},
           CsvRows);
  return 0;
}
