//===- bench/ablation_syncpoints.cpp - Section 3.1 ablation ----------------===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Section 3.1: "it is sufficient to insert a scheduling point before a
/// synchronization operation in the program, provided the algorithm also
/// checks for data-races ... the algorithm significantly reduces the state
/// space explored. In addition, exploring this reduced state space is
/// sound and the algorithm does not miss any errors."
///
/// The ablation: explore the same buggy programs in the default SyncOnly
/// mode (scheduling points at sync operations + per-execution race
/// detection) and in EveryAccess mode (a scheduling point before every
/// data access, race detection off). Expectations: both modes find every
/// bug at the same preemption bound (Theorems 2-3 in action), and
/// SyncOnly needs far fewer executions.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "benchmarks/Bluetooth.h"
#include "benchmarks/WorkStealingQueue.h"
#include "rt/Explore.h"
#include "support/Format.h"
#include <cstdio>

using namespace icb;
using namespace icb::bench;
using namespace icb::benchutil;

namespace {

struct ModeOutcome {
  int BugBound = -1;
  uint64_t Executions = 0;
  uint64_t Steps = 0;
};

ModeOutcome runMode(const rt::TestCase &Test, rt::SchedPointMode Mode) {
  rt::ExploreOptions Opts;
  Opts.Exec.Mode = Mode;
  // In EveryAccess mode every interleaving of data accesses is explored
  // soundly, so the race detector is off (the ablation's point); in
  // SyncOnly mode it must be on for soundness.
  Opts.Exec.Detector = Mode == rt::SchedPointMode::SyncOnly
                           ? rt::DetectorKind::VectorClock
                           : rt::DetectorKind::None;
  Opts.Limits.MaxExecutions = 3000000;
  Opts.Limits.StopAtFirstBug = true;
  Opts.Limits.MaxPreemptionBound = 3;
  rt::IcbExplorer Icb(Opts);
  rt::ExploreResult R = Icb.explore(Test);
  ModeOutcome Out;
  Out.BugBound = R.foundBug()
                     ? static_cast<int>(R.simplestBug()->Preemptions)
                     : -1;
  Out.Executions = R.Stats.Executions;
  Out.Steps = R.Stats.TotalSteps;
  return Out;
}

} // namespace

int main() {
  printHeader("Ablation (Section 3.1): sync-only scheduling points + race "
              "detection vs scheduling at every access",
              "same bugs, same bounds, far fewer executions");

  struct Case {
    std::string Name;
    rt::TestCase Test;
  };
  std::vector<Case> Cases;
  Cases.push_back({"bluetooth (stop-vs-work bug)", bluetoothTest({2, true})});
  Cases.push_back({"wsq pop-check-then-act",
                   workStealingTest({3, 4, WsqBug::PopCheckThenAct})});
  Cases.push_back({"wsq pop-retry-no-lock",
                   workStealingTest({3, 4, WsqBug::PopRetryNoLock})});
  Cases.push_back({"wsq unsynchronized-steal",
                   workStealingTest({3, 4, WsqBug::UnsynchronizedSteal})});

  std::vector<std::vector<std::string>> Rows;
  std::vector<std::vector<std::string>> CsvRows;
  bool Sound = true;
  for (const Case &C : Cases) {
    ModeOutcome SyncOnly = runMode(C.Test, rt::SchedPointMode::SyncOnly);
    ModeOutcome Every = runMode(C.Test, rt::SchedPointMode::EveryAccess);
    // Soundness: the reduced search must find the bug at the same bound
    // whenever the full search does.
    Sound &= SyncOnly.BugBound == Every.BugBound;
    double Ratio =
        SyncOnly.Executions
            ? static_cast<double>(Every.Executions) /
                  static_cast<double>(SyncOnly.Executions)
            : 0.0;
    Rows.push_back({C.Name, strFormat("%d", SyncOnly.BugBound),
                    withCommas(SyncOnly.Executions),
                    strFormat("%d", Every.BugBound),
                    withCommas(Every.Executions),
                    strFormat("%.1fx", Ratio)});
    CsvRows.push_back({C.Name, strFormat("%d", SyncOnly.BugBound),
                       strFormat("%llu",
                                 (unsigned long long)SyncOnly.Executions),
                       strFormat("%d", Every.BugBound),
                       strFormat("%llu",
                                 (unsigned long long)Every.Executions)});
  }
  printTable({"benchmark", "sync-only bound", "sync-only execs",
              "every-access bound", "every-access execs", "blowup"},
             Rows);
  std::printf("\nReduction is sound (same bug, same bound) on every case: "
              "%s\n",
              Sound ? "yes" : "NO");

  // The state-space reduction itself shows on a bug-free program explored
  // to a fixed bound: every data access that stops being a scheduling
  // point removes a whole axis of interleavings.
  std::printf("\nExhaustive cost to preemption bound 1 on the correct "
              "work-stealing queue:\n");
  std::vector<std::vector<std::string>> CostRows;
  for (rt::SchedPointMode Mode :
       {rt::SchedPointMode::SyncOnly, rt::SchedPointMode::EveryAccess}) {
    rt::ExploreOptions Opts;
    Opts.Exec.Mode = Mode;
    Opts.Exec.Detector = Mode == rt::SchedPointMode::SyncOnly
                             ? rt::DetectorKind::VectorClock
                             : rt::DetectorKind::None;
    Opts.Limits.MaxExecutions = 1000000;
    Opts.Limits.MaxPreemptionBound = 1;
    rt::IcbExplorer Icb(Opts);
    rt::ExploreResult R =
        Icb.explore(workStealingTest({3, 4, WsqBug::None}));
    // Completed means the whole space was exhausted; staying under the
    // execution cap means at least bound 1 itself was fully enumerated.
    CostRows.push_back(
        {Mode == rt::SchedPointMode::SyncOnly ? "sync-only" : "every-access",
         withCommas(R.Stats.Executions), withCommas(R.Stats.TotalSteps),
         R.Stats.Executions < Opts.Limits.MaxExecutions
             ? "exhausted bound 1"
             : "hit execution cap"});
  }
  printTable({"mode", "executions", "steps", "status"}, CostRows);
  printCsv("ablation_syncpoints",
           {"benchmark", "synconly_bound", "synconly_execs",
            "everyaccess_bound", "everyaccess_execs"},
           CsvRows);
  return Sound ? 0 : 1;
}
