//===- bench/ablation_bounds.cpp - Bound-policy ablation -------------------===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Compares the three bound policies behind the BoundPolicy seam on the
/// registry's seeded bugs: preemption bounding (the paper's metric),
/// delay bounding (every deviation from the default scheduler costs one
/// unit), and thread/variable bounding (budgets on the set of distinct
/// preempted threads and preempted-upon variables, after Bindal-Bansal-
/// Lal). The measurement is executions-to-first-bug under iterative
/// deepening: every policy explores its frontier bound-by-bound, so the
/// comparison is purely about which cost metric ranks the buggy schedule
/// cheap.
///
/// Each policy gets the same generous ceiling and execution cap; a bug a
/// policy cannot reach inside the cap is reported as not found rather
/// than failing the harness (variable budgets legitimately prune, and
/// delay frontiers grow faster than preemption frontiers). What the
/// harness *does* enforce — it is the CI gate for the seam's usefulness —
/// is that delay bounding and thread/variable bounding each find at
/// least one registry bug in strictly fewer executions than preemption
/// bounding does.
///
/// Besides the human-readable table, the harness emits the measurements
/// as a session-JSON block (BEGIN/END JSON markers) and writes them to
/// BENCH_bounds.json in the working directory, which CI archives per
/// commit.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "benchmarks/Registry.h"
#include "rt/Explore.h"
#include "search/BoundPolicy.h"
#include "search/IcbSearch.h"
#include "session/Json.h"
#include "support/Format.h"
#include <cstdio>
#include <memory>

using namespace icb;
using namespace icb::bench;
using namespace icb::benchutil;
using namespace icb::search;

namespace {

/// Safety net only: with StopAtFirstBug every interesting run stops long
/// before this, and a policy that cannot reach a bug at all would
/// otherwise sweep its whole (much larger) bounded space.
constexpr uint64_t kMaxExecutions = 200000;

/// The contenders. The preemption and delay ceilings are generous on
/// purpose — iterative deepening means the first bug found is minimal
/// under the policy's own metric regardless of the ceiling, which only
/// caps clean sweeps. The variable budget is the opposite: pruning is
/// its entire value proposition, so it is kept tight (a loose budget
/// degenerates into thread bounding over an enormous per-bound space).
std::vector<BoundSpec> policySpecs() {
  return {{"preemption", 16, 0}, {"delay", 32, 0}, {"thread", 2, 4}};
}

struct PolicyOutcome {
  std::string Spec;
  bool Found = false;
  uint64_t Executions = 0;
  uint64_t Steps = 0;
  unsigned Preemptions = 0; ///< True preemption count of the first bug.
};

PolicyOutcome summarize(const std::string &Spec, const SearchResult &R) {
  PolicyOutcome O;
  O.Spec = Spec;
  O.Found = R.foundBug();
  O.Executions = R.Stats.Executions;
  O.Steps = R.Stats.TotalSteps;
  if (O.Found)
    O.Preemptions = R.simplestBug()->Preemptions;
  return O;
}

PolicyOutcome runVm(const vm::Program &Prog, const BoundSpec &Spec) {
  std::unique_ptr<BoundPolicy> Policy = makeBoundPolicy(Spec);
  vm::Interp VM(Prog);
  IcbSearch::Options Opts;
  // State caching on, matching how icb_check runs the model VM: the
  // policies are compared as a user would actually run them.
  Opts.UseStateCache = true;
  Opts.RecordSchedules = false;
  Opts.Policy = Policy.get();
  Opts.Limits.StopAtFirstBug = true;
  Opts.Limits.MaxExecutions = kMaxExecutions;
  return summarize(Policy->spec(), IcbSearch(Opts).run(VM));
}

PolicyOutcome runRt(const rt::TestCase &Test, const BoundSpec &Spec) {
  std::unique_ptr<BoundPolicy> Policy = makeBoundPolicy(Spec);
  rt::ExploreOptions Opts;
  Opts.Policy = Policy.get();
  Opts.Limits.StopAtFirstBug = true;
  Opts.Limits.MaxExecutions = kMaxExecutions;
  rt::IcbExplorer Icb(Opts);
  return summarize(Policy->spec(), Icb.explore(Test));
}

/// One seeded bug measured under every policy on one executor form.
struct BoundsCase {
  std::string Benchmark;
  std::string Variant;
  std::string Form; ///< "vm" or "rt".
  unsigned PaperBound = 0;
  std::vector<PolicyOutcome> Runs; ///< Parallel to policySpecs().
};

std::string cell(const PolicyOutcome &O) {
  if (!O.Found)
    return strFormat("- (%s)", withCommas(O.Executions).c_str());
  return withCommas(O.Executions);
}

} // namespace

int main() {
  printHeader("Ablation: bound policies on the registry's seeded bugs",
              "executions-to-first-bug under preemption, delay, and "
              "thread/variable bounding");

  std::vector<BoundSpec> Specs = policySpecs();
  std::vector<BoundsCase> Cases;
  for (const BenchmarkEntry &E : allBenchmarks()) {
    for (const BugVariant &V : E.Bugs) {
      if (V.MakeVm) {
        BoundsCase C;
        C.Benchmark = E.Name;
        C.Variant = V.Label;
        C.Form = "vm";
        C.PaperBound = V.PaperBound;
        for (const BoundSpec &S : Specs)
          C.Runs.push_back(runVm(V.MakeVm(), S));
        Cases.push_back(std::move(C));
      }
      if (V.MakeRt) {
        BoundsCase C;
        C.Benchmark = E.Name;
        C.Variant = V.Label;
        C.Form = "rt";
        C.PaperBound = V.PaperBound;
        for (const BoundSpec &S : Specs)
          C.Runs.push_back(runRt(V.MakeRt(), S));
        Cases.push_back(std::move(C));
      }
    }
  }

  // A policy "wins" a case when it finds the bug in strictly fewer
  // executions than preemption bounding did (both must find it).
  std::vector<unsigned> Wins(Specs.size(), 0);
  std::vector<std::vector<std::string>> Rows;
  for (const BoundsCase &C : Cases) {
    const PolicyOutcome &Ref = C.Runs[0];
    std::string Best = "-";
    uint64_t BestExecs = ~0ull;
    for (size_t I = 0; I != C.Runs.size(); ++I) {
      const PolicyOutcome &O = C.Runs[I];
      if (I && O.Found && Ref.Found && O.Executions < Ref.Executions)
        ++Wins[I];
      if (O.Found && O.Executions < BestExecs) {
        BestExecs = O.Executions;
        Best = O.Spec;
      }
    }
    Rows.push_back({strFormat("%s %s", C.Benchmark.c_str(),
                              C.Variant.c_str()),
                    C.Form, strFormat("%u", C.PaperBound), cell(C.Runs[0]),
                    cell(C.Runs[1]), cell(C.Runs[2]), Best});
  }
  printTable({"benchmark", "form", "paper bound", Specs[0].Name + " execs",
              Specs[1].Name + " execs",
              Specs[2].Name + "/variable execs", "cheapest policy"},
             Rows);
  std::printf("\n'- (N)' means not found within the %s-execution cap.\n",
              withCommas(kMaxExecutions).c_str());
  for (size_t I = 1; I != Specs.size(); ++I)
    std::printf("%s beats preemption on %u of %zu cases\n",
                formatBoundSpec(Specs[I]).c_str(), Wins[I], Cases.size());

  // The acceptance gate: each alternative policy must earn its keep
  // somewhere, or the seam is dead weight.
  bool Ok = true;
  for (size_t I = 1; I != Specs.size(); ++I)
    Ok &= Wins[I] > 0;

  //===--------------------------------------------------------------------===//
  // Machine-readable baseline: JSON block + BENCH_bounds.json on disk
  //===--------------------------------------------------------------------===//

  session::JsonValue Doc = session::JsonValue::object();
  Doc.set("experiment", session::JsonValue::str("ablation_bounds"));
  session::JsonValue SpecArr = session::JsonValue::array();
  for (const BoundSpec &S : Specs)
    SpecArr.Arr.push_back(session::JsonValue::str(formatBoundSpec(S)));
  Doc.set("policies", std::move(SpecArr));
  Doc.set("max_executions", session::JsonValue::number(kMaxExecutions));
  Doc.set("each_policy_wins_somewhere", session::JsonValue::boolean(Ok));
  session::JsonValue CaseArr = session::JsonValue::array();
  for (const BoundsCase &C : Cases) {
    session::JsonValue Row = session::JsonValue::object();
    Row.set("benchmark", session::JsonValue::str(C.Benchmark));
    Row.set("variant", session::JsonValue::str(C.Variant));
    Row.set("form", session::JsonValue::str(C.Form));
    Row.set("paper_bound", session::JsonValue::number(C.PaperBound));
    session::JsonValue RunArr = session::JsonValue::array();
    for (const PolicyOutcome &O : C.Runs) {
      session::JsonValue Run = session::JsonValue::object();
      Run.set("policy", session::JsonValue::str(O.Spec));
      Run.set("found", session::JsonValue::boolean(O.Found));
      Run.set("executions", session::JsonValue::number(O.Executions));
      Run.set("total_steps", session::JsonValue::number(O.Steps));
      Run.set("preemptions", session::JsonValue::number(O.Preemptions));
      RunArr.Arr.push_back(std::move(Run));
    }
    Row.set("runs", std::move(RunArr));
    CaseArr.Arr.push_back(std::move(Row));
  }
  Doc.set("cases", std::move(CaseArr));
  printJsonBlock("ablation_bounds", Doc);

  std::string Error;
  if (!session::atomicWriteFile("BENCH_bounds.json", session::jsonWrite(Doc),
                                &Error)) {
    std::fprintf(stderr, "failed to write BENCH_bounds.json: %s\n",
                 Error.c_str());
    return 1;
  }
  std::printf("wrote BENCH_bounds.json\n");
  return Ok ? 0 : 1;
}
