//===- bench/theorem1_bounds.cpp - Validates Theorem 1 ---------------------===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Theorem 1: "Consider a terminating program P with n threads, where each
/// thread executes at most k steps of which at most b are potentially
/// blocking. Then there are at most C(nk, c) * (nb + c)! executions of P
/// with c preemptions."
///
/// We enumerate the executions of several small model programs completely
/// (ICB without state caching counts every execution per bound exactly)
/// and check the measured per-bound counts against the theorem's formula
/// with the programs' actual n, k, b. Also shown: the polynomial growth in
/// k at fixed c versus the exponential growth of the whole space, the
/// paper's core combinatorial argument.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "search/Checker.h"
#include "support/Format.h"
#include "testutil/TestPrograms.h"
#include <cmath>
#include <cstdio>

using namespace icb;
using namespace icb::benchutil;
using namespace icb::search;

namespace {

/// log2 of C(N, K) * (M)! computed in floating point (the raw values
/// overflow uint64 immediately).
double log2Bound(uint64_t N, uint64_t K, uint64_t M) {
  double Log = 0;
  for (uint64_t I = 0; I != K; ++I)
    Log += std::log2(static_cast<double>(N - I)) -
           std::log2(static_cast<double>(I + 1));
  for (uint64_t I = 2; I <= M; ++I)
    Log += std::log2(static_cast<double>(I));
  return Log;
}

struct ProgramCase {
  std::string Name;
  vm::Program Prog;
};

} // namespace

int main() {
  printHeader("Theorem 1: executions with c preemptions <= C(nk,c)*(nb+c)!",
              "exact per-bound execution counts vs the combinatorial bound");

  std::vector<ProgramCase> Cases;
  Cases.push_back({"racy-counter(2)", testutil::racyCounter(2)});
  Cases.push_back({"racy-counter(3)", testutil::racyCounter(3)});
  Cases.push_back({"ping-pong(2)", testutil::eventPingPong(2)});
  Cases.push_back({"sem-buffer(2,2)", testutil::semaphoreBuffer(2, 2)});

  bool AllHold = true;
  std::vector<std::vector<std::string>> CsvRows;
  for (ProgramCase &Case : Cases) {
    SearchOptions Opts;
    Opts.Kind = StrategyKind::Icb;
    Opts.RecordSchedules = false;
    Opts.Limits.MaxExecutions = 3000000;
    Opts.Limits.MaxPreemptionBound = 4;
    SearchResult R = checkProgram(Case.Prog, Opts);

    // The program's n/k/b, measured. nk is bounded by the longest
    // execution (total steps). For nb: the per-thread blocking maximum b
    // is at most the per-execution blocking total, plus one for each
    // thread's implicit termination operation (Appendix A treats
    // termination as a block on the thread's event), so
    // nb <= n * (maxBlocking + 1).
    uint64_t N = Case.Prog.numThreads();
    uint64_t K = R.Stats.StepsPerExecution.max();
    uint64_t B = N * (R.Stats.BlockingPerExecution.max() + 1);

    std::printf("\n%s: n=%llu, nk<=%llu, nb<=%llu\n", Case.Name.c_str(),
                (unsigned long long)N, (unsigned long long)K,
                (unsigned long long)B);
    std::vector<std::vector<std::string>> Rows;
    uint64_t Prev = 0;
    for (const BoundCoverage &Bound : R.Stats.PerBound) {
      uint64_t AtBound = Bound.Executions - Prev;
      Prev = Bound.Executions;
      // Theorem bound with nk ~ K (total steps) and nb ~ B.
      double LogBound = log2Bound(K, Bound.Bound, B + Bound.Bound);
      double LogMeasured =
          AtBound ? std::log2(static_cast<double>(AtBound)) : 0.0;
      bool Holds = LogMeasured <= LogBound + 1e-9;
      AllHold &= Holds;
      Rows.push_back({strFormat("%u", Bound.Bound), withCommas(AtBound),
                      strFormat("2^%.1f", LogBound),
                      Holds ? "holds" : "VIOLATED"});
      CsvRows.push_back({Case.Name, strFormat("%u", Bound.Bound),
                         strFormat("%llu", (unsigned long long)AtBound),
                         strFormat("%.3f", LogBound)});
    }
    printTable({"c", "executions with c preemptions", "theorem bound",
                "check"},
               Rows);
  }

  // The headline scaling claim: with c fixed, executions grow polynomially
  // in k; unbounded, they grow exponentially.
  std::printf("\nScaling in k at fixed c (racy-counter with w workers; "
              "k grows with w):\n");
  std::vector<std::vector<std::string>> ScaleRows;
  for (unsigned W : {2u, 3u, 4u}) {
    vm::Program Prog = testutil::racyCounter(W);
    SearchOptions Bounded;
    Bounded.Kind = StrategyKind::Icb;
    Bounded.RecordSchedules = false;
    Bounded.Limits.MaxPreemptionBound = 1;
    Bounded.Limits.MaxExecutions = 3000000;
    SearchResult RB = checkProgram(Prog, Bounded);
    SearchOptions Unbounded = Bounded;
    Unbounded.Limits.MaxPreemptionBound =
        std::numeric_limits<unsigned>::max();
    SearchResult RU = checkProgram(Prog, Unbounded);
    ScaleRows.push_back(
        {strFormat("%u", W), withCommas(RB.Stats.Executions),
         RU.Stats.Completed ? withCommas(RU.Stats.Executions)
                            : (withCommas(RU.Stats.Executions) + "+")});
  }
  printTable({"workers", "executions with c<=1", "all executions"},
             ScaleRows);

  printCsv("theorem1", {"program", "c", "executions", "log2_bound"},
           CsvRows);
  std::printf("\nTheorem 1 bound %s.\n",
              AllHold ? "holds on every measured point"
                      : "VIOLATED on some measured point");
  return AllHold ? 0 : 1;
}
