//===- bench/ablation_por.cpp - Partial-order reduction ablation -----------===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's related-work/future-work claim: "Researchers have explored
/// the use of partial-order reduction ... These optimizations are
/// orthogonal and complementary to the idea of context-bounding. In fact,
/// our preliminary experiments indicate that state-space coverage
/// increases at an even faster rate when partial-order reduction is
/// performed during iterative context-bounding."
///
/// Two measurements back the claim here:
///
///  1. Sleep-set POR [Godefroid 1996] on the unbounded model-VM DFS —
///     the classic reduction, with plain ICB as the reference point.
///  2. Bounded POR *composed with* ICB on both executors (`--por`): the
///     bound-exact sleep-set rules of Coons/Musuvathi/McKinley
///     (OOPSLA'13), measured per registry benchmark at the bound where
///     its bug lives. Same bugs at the same minimal bounds, fewer
///     executions — on the model VM and the stateless runtime alike.
///
/// Besides the human-readable tables, the harness emits the measurements
/// as a session-JSON block (BEGIN/END JSON markers) and writes them to
/// BENCH_por.json in the working directory, the machine-readable perf
/// baseline CI archives per commit.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "benchmarks/Registry.h"
#include "benchmarks/TxnManagerModel.h"
#include "rt/Explore.h"
#include "search/Dfs.h"
#include "search/IcbSearch.h"
#include "session/Json.h"
#include "support/Format.h"
#include "testutil/TestPrograms.h"
#include <cstdio>

using namespace icb;
using namespace icb::bench;
using namespace icb::benchutil;
using namespace icb::search;

namespace {

struct Outcome {
  uint64_t Executions = 0;
  uint64_t Steps = 0;
  size_t Bugs = 0;
  bool Completed = false;
};

Outcome summarize(const SearchResult &R) {
  return {R.Stats.Executions, R.Stats.TotalSteps, R.Bugs.size(),
          R.Stats.Completed};
}

/// One POR on/off comparison of the ICB engine on one executor form.
struct PorCase {
  std::string Benchmark;
  std::string Variant;
  std::string Form;    ///< "vm" or "rt".
  std::string Mode;    ///< "sweep" (keep-going) or "first-bug".
  unsigned Bound = 0;  ///< Max preemption bound of both runs.
  SearchResult Off;
  SearchResult On;
};

SearchResult runVmIcb(const vm::Program &Prog, unsigned MaxBound, bool Por,
                      bool StopAtFirst) {
  vm::Interp VM(Prog);
  IcbSearch::Options Opts;
  Opts.UseStateCache = false;
  Opts.RecordSchedules = false;
  Opts.UseSleepSets = Por;
  Opts.Limits.MaxPreemptionBound = MaxBound;
  Opts.Limits.StopAtFirstBug = StopAtFirst;
  Opts.Limits.MaxExecutions = 5000000;
  return IcbSearch(Opts).run(VM);
}

SearchResult runRtIcb(const rt::TestCase &Test, unsigned MaxBound, bool Por,
                      bool StopAtFirst) {
  rt::ExploreOptions Opts;
  Opts.Limits.MaxPreemptionBound = MaxBound;
  Opts.Limits.StopAtFirstBug = StopAtFirst;
  Opts.Limits.MaxExecutions = 5000000;
  Opts.Por = Por;
  rt::IcbExplorer Icb(Opts);
  return Icb.explore(Test);
}

/// Minimal preemption count per distinct (kind, message) bug — the
/// equivalence the reduction must preserve.
bool sameBugs(const SearchResult &A, const SearchResult &B) {
  auto Sig = [](const SearchResult &R) {
    std::vector<std::string> S;
    for (const Bug &Bg : R.Bugs)
      S.push_back(strFormat("%d|%s|%u", static_cast<int>(Bg.Kind),
                            Bg.Message.c_str(), Bg.Preemptions));
    std::sort(S.begin(), S.end());
    S.erase(std::unique(S.begin(), S.end()), S.end());
    return S;
  };
  return Sig(A) == Sig(B);
}

session::JsonValue perBoundJson(const SearchResult &R) {
  session::JsonValue Arr = session::JsonValue::array();
  for (const BoundCoverage &B : R.Stats.PerBound) {
    session::JsonValue Row = session::JsonValue::object();
    Row.set("bound", session::JsonValue::number(B.Bound));
    Row.set("executions", session::JsonValue::number(B.Executions));
    Row.set("states", session::JsonValue::number(B.States));
    Arr.Arr.push_back(std::move(Row));
  }
  return Arr;
}

} // namespace

int main() {
  printHeader("Ablation: partial-order reduction x context bounding",
              "same bugs at the same minimal bounds, fewer executions");

  //===--------------------------------------------------------------------===//
  // Part 1: classic sleep sets on the unbounded model-VM DFS (reference)
  //===--------------------------------------------------------------------===//

  struct DfsCase {
    std::string Name;
    vm::Program Prog;
  };
  std::vector<DfsCase> DfsCases;
  DfsCases.push_back({"txnmgr (no bug)", txnManagerModel({2, TxnBug::None})});
  DfsCases.push_back(
      {"txnmgr commit-stomp", txnManagerModel({2, TxnBug::CommitStomp})});
  DfsCases.push_back({"racy-counter(3)", testutil::racyCounter(3)});
  DfsCases.push_back({"sem-buffer(2,3)", testutil::semaphoreBuffer(2, 3)});

  std::vector<std::vector<std::string>> DfsRows;
  bool Ok = true;
  for (DfsCase &C : DfsCases) {
    vm::Interp VM(C.Prog);
    SearchLimits Limits;
    Limits.MaxExecutions = 2000000;

    DfsSearch::Options Plain;
    Plain.Limits = Limits;
    Outcome A = summarize(DfsSearch(Plain).run(VM));

    DfsSearch::Options Por = Plain;
    Por.UseSleepSets = true;
    Outcome B = summarize(DfsSearch(Por).run(VM));

    IcbSearch::Options IcbOpts;
    IcbOpts.Limits = Limits;
    IcbOpts.RecordSchedules = false;
    Outcome I = summarize(IcbSearch(IcbOpts).run(VM));

    Ok &= A.Bugs == B.Bugs;
    double Reduction = B.Executions ? static_cast<double>(A.Executions) /
                                          static_cast<double>(B.Executions)
                                    : 0.0;
    DfsRows.push_back({C.Name, withCommas(A.Executions),
                       withCommas(B.Executions),
                       strFormat("%.1fx", Reduction),
                       strFormat("%zu/%zu", B.Bugs, A.Bugs),
                       withCommas(I.Executions)});
  }
  printTable({"program", "dfs execs", "dfs+sleep execs", "reduction",
              "bugs kept", "icb execs (reference)"},
             DfsRows);

  //===--------------------------------------------------------------------===//
  // Part 2: bounded POR composed with ICB, both executors (--por)
  //===--------------------------------------------------------------------===//

  std::vector<PorCase> Cases;
  for (const BenchmarkEntry &E : allBenchmarks()) {
    for (const BugVariant &V : E.Bugs) {
      unsigned Bound = V.PaperBound;
      // Wide drivers make exhaustive keep-going sweeps intractable; for
      // those the measurement is executions-to-first-bug, ICB's
      // bound-ordered queues make the first bug minimal either way.
      bool Sweep = E.DriverThreads <= 3;
      if (V.MakeVm) {
        PorCase C;
        C.Benchmark = E.Name;
        C.Variant = V.Label;
        C.Form = "vm";
        C.Mode = "sweep";
        C.Bound = Bound;
        C.Off = runVmIcb(V.MakeVm(), Bound, false, false);
        C.On = runVmIcb(V.MakeVm(), Bound, true, false);
        Cases.push_back(std::move(C));
      }
      if (V.MakeRt) {
        PorCase C;
        C.Benchmark = E.Name;
        C.Variant = V.Label;
        C.Form = "rt";
        C.Mode = Sweep ? "sweep" : "first-bug";
        C.Bound = Bound;
        C.Off = runRtIcb(V.MakeRt(), Bound, false, !Sweep);
        C.On = runRtIcb(V.MakeRt(), Bound, true, !Sweep);
        Cases.push_back(std::move(C));
      }
    }
  }

  std::vector<std::vector<std::string>> Rows;
  for (const PorCase &C : Cases) {
    bool CaseOk;
    if (C.Mode == "sweep") {
      // Exhaustive runs must agree on the full bug set and bounds.
      CaseOk = sameBugs(C.Off, C.On) &&
               C.On.Stats.Executions <= C.Off.Stats.Executions;
    } else {
      // First-bug runs must both find the bug at its minimal bound.
      CaseOk = C.Off.foundBug() && C.On.foundBug() &&
               C.Off.simplestBug()->Kind == C.On.simplestBug()->Kind &&
               C.Off.simplestBug()->Preemptions ==
                   C.On.simplestBug()->Preemptions;
    }
    Ok &= CaseOk;
    double Reduction =
        C.On.Stats.Executions
            ? static_cast<double>(C.Off.Stats.Executions) /
                  static_cast<double>(C.On.Stats.Executions)
            : 0.0;
    Rows.push_back({strFormat("%s %s", C.Benchmark.c_str(),
                              C.Variant.c_str()),
                    C.Form, C.Mode, strFormat("%u", C.Bound),
                    withCommas(C.Off.Stats.Executions),
                    withCommas(C.On.Stats.Executions),
                    strFormat("%.2fx", Reduction), CaseOk ? "yes" : "NO"});
  }
  std::printf("\n");
  printTable({"benchmark", "form", "mode", "bound", "icb execs",
              "icb+por execs", "reduction", "bugs kept"},
             Rows);
  std::printf("\nEvery reduction preserved its bugs and bounds: %s\n",
              Ok ? "yes" : "NO");

  //===--------------------------------------------------------------------===//
  // Machine-readable baseline: JSON block + BENCH_por.json on disk
  //===--------------------------------------------------------------------===//

  session::JsonValue Doc = session::JsonValue::object();
  Doc.set("experiment", session::JsonValue::str("ablation_por"));
  Doc.set("bugs_preserved", session::JsonValue::boolean(Ok));
  session::JsonValue CaseArr = session::JsonValue::array();
  for (const PorCase &C : Cases) {
    session::JsonValue Row = session::JsonValue::object();
    Row.set("benchmark", session::JsonValue::str(C.Benchmark));
    Row.set("variant", session::JsonValue::str(C.Variant));
    Row.set("form", session::JsonValue::str(C.Form));
    Row.set("mode", session::JsonValue::str(C.Mode));
    Row.set("bound", session::JsonValue::number(C.Bound));
    Row.set("executions_off",
            session::JsonValue::number(C.Off.Stats.Executions));
    Row.set("executions_on",
            session::JsonValue::number(C.On.Stats.Executions));
    Row.set("bugs_off", session::JsonValue::number(C.Off.Bugs.size()));
    Row.set("bugs_on", session::JsonValue::number(C.On.Bugs.size()));
    Row.set("per_bound_off", perBoundJson(C.Off));
    Row.set("per_bound_on", perBoundJson(C.On));
    CaseArr.Arr.push_back(std::move(Row));
  }
  Doc.set("cases", std::move(CaseArr));
  printJsonBlock("ablation_por", Doc);

  std::string Error;
  if (!session::atomicWriteFile("BENCH_por.json", session::jsonWrite(Doc),
                                &Error)) {
    std::fprintf(stderr, "failed to write BENCH_por.json: %s\n",
                 Error.c_str());
    return 1;
  }
  std::printf("wrote BENCH_por.json\n");
  return Ok ? 0 : 1;
}
