//===- bench/ablation_por.cpp - Partial-order reduction ablation -----------===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's related-work/future-work claim: "Researchers have explored
/// the use of partial-order reduction ... These optimizations are
/// orthogonal and complementary to the idea of context-bounding. In fact,
/// our preliminary experiments indicate that state-space coverage
/// increases at an even faster rate when partial-order reduction is
/// performed during iterative context-bounding."
///
/// We implement sleep-set POR [Godefroid 1996] on the model-VM DFS and
/// measure the reduction: same bugs, (often far) fewer executions. The
/// reduction is applied to the unbounded search; composing sleep sets
/// with ICB's per-bound completeness guarantee requires the bounded-POR
/// machinery of later work (Coons, Musuvathi, McKinley, OOPSLA'13) and is
/// intentionally not claimed here — ICB appears in the table only as the
/// reference point.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "benchmarks/TxnManagerModel.h"
#include "search/Dfs.h"
#include "search/IcbSearch.h"
#include "support/Format.h"
#include "testutil/TestPrograms.h"
#include <cstdio>

using namespace icb;
using namespace icb::bench;
using namespace icb::benchutil;
using namespace icb::search;

namespace {

struct Outcome {
  uint64_t Executions = 0;
  uint64_t Steps = 0;
  size_t Bugs = 0;
  bool Completed = false;
};

Outcome summarize(const SearchResult &R) {
  return {R.Stats.Executions, R.Stats.TotalSteps, R.Bugs.size(),
          R.Stats.Completed};
}

} // namespace

int main() {
  printHeader("Ablation: sleep-set partial-order reduction on the model VM",
              "same bugs, fewer executions; POR and context bounding are "
              "complementary");

  struct Case {
    std::string Name;
    vm::Program Prog;
  };
  std::vector<Case> Cases;
  Cases.push_back({"txnmgr (no bug)",
                   txnManagerModel({2, TxnBug::None})});
  Cases.push_back({"txnmgr commit-stomp",
                   txnManagerModel({2, TxnBug::CommitStomp})});
  Cases.push_back({"racy-counter(3)", testutil::racyCounter(3)});
  Cases.push_back({"sem-buffer(2,3)", testutil::semaphoreBuffer(2, 3)});

  std::vector<std::vector<std::string>> Rows;
  std::vector<std::vector<std::string>> CsvRows;
  bool BugsPreserved = true;
  for (Case &C : Cases) {
    vm::Interp VM(C.Prog);
    SearchLimits Limits;
    Limits.MaxExecutions = 2000000;

    DfsSearch::Options Plain;
    Plain.Limits = Limits;
    Outcome A = summarize(DfsSearch(Plain).run(VM));

    DfsSearch::Options Por = Plain;
    Por.UseSleepSets = true;
    Outcome B = summarize(DfsSearch(Por).run(VM));

    IcbSearch::Options IcbOpts;
    IcbOpts.Limits = Limits;
    IcbOpts.RecordSchedules = false;
    Outcome I = summarize(IcbSearch(IcbOpts).run(VM));

    BugsPreserved &= A.Bugs == B.Bugs;
    double Reduction = B.Executions
                           ? static_cast<double>(A.Executions) /
                                 static_cast<double>(B.Executions)
                           : 0.0;
    Rows.push_back({C.Name, withCommas(A.Executions),
                    withCommas(B.Executions),
                    strFormat("%.1fx", Reduction),
                    strFormat("%zu/%zu", B.Bugs, A.Bugs),
                    withCommas(I.Executions)});
    CsvRows.push_back(
        {C.Name, strFormat("%llu", (unsigned long long)A.Executions),
         strFormat("%llu", (unsigned long long)B.Executions),
         strFormat("%llu", (unsigned long long)I.Executions)});
  }
  printTable({"program", "dfs execs", "dfs+sleep execs", "reduction",
              "bugs kept", "icb execs (reference)"},
             Rows);
  std::printf("\nSleep sets preserved every bug: %s\n",
              BugsPreserved ? "yes" : "NO");
  printCsv("ablation_por",
           {"program", "dfs_execs", "dfs_sleep_execs", "icb_execs"},
           CsvRows);
  return BugsPreserved ? 0 : 1;
}
