//===- bench/BenchUtil.cpp - Shared experiment-harness helpers ------------===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "support/Format.h"
#include <algorithm>
#include <cstdio>

using namespace icb;
using namespace icb::benchutil;

void icb::benchutil::printHeader(const std::string &Title,
                                 const std::string &Subtitle) {
  std::string Bar(72, '=');
  std::printf("\n%s\n  %s\n", Bar.c_str(), Title.c_str());
  if (!Subtitle.empty())
    std::printf("  %s\n", Subtitle.c_str());
  std::printf("%s\n", Bar.c_str());
}

void icb::benchutil::printTable(
    const std::vector<std::string> &Headers,
    const std::vector<std::vector<std::string>> &Rows) {
  std::vector<size_t> Widths(Headers.size());
  for (size_t I = 0; I != Headers.size(); ++I)
    Widths[I] = Headers[I].size();
  for (const auto &Row : Rows)
    for (size_t I = 0; I != Row.size() && I != Widths.size(); ++I)
      Widths[I] = std::max(Widths[I], Row[I].size());

  auto PrintRow = [&](const std::vector<std::string> &Cells) {
    std::string Line = " ";
    for (size_t I = 0; I != Widths.size(); ++I) {
      std::string Cell = I < Cells.size() ? Cells[I] : "";
      Line += " " + padRight(Cell, Widths[I]) + " ";
    }
    std::printf("%s\n", Line.c_str());
  };
  PrintRow(Headers);
  std::string Rule = " ";
  for (size_t W : Widths)
    Rule += " " + std::string(W, '-') + " ";
  std::printf("%s\n", Rule.c_str());
  for (const auto &Row : Rows)
    PrintRow(Row);
}

void icb::benchutil::printCsv(const std::string &Name,
                              const std::vector<std::string> &Headers,
                              const std::vector<std::vector<std::string>> &Rows) {
  std::printf("\n--- BEGIN CSV %s ---\n", Name.c_str());
  for (size_t I = 0; I != Headers.size(); ++I)
    std::printf("%s%s", I ? "," : "", Headers[I].c_str());
  std::printf("\n");
  for (const auto &Row : Rows) {
    for (size_t I = 0; I != Row.size(); ++I)
      std::printf("%s%s", I ? "," : "", Row[I].c_str());
    std::printf("\n");
  }
  std::printf("--- END CSV %s ---\n", Name.c_str());
}

void icb::benchutil::printJsonBlock(const std::string &Name,
                                    const session::JsonValue &Root) {
  std::string Text = session::jsonWrite(Root);
  while (!Text.empty() && Text.back() == '\n')
    Text.pop_back();
  std::printf("\nBEGIN JSON %s\n%s\nEND JSON %s\n", Name.c_str(), Text.c_str(),
              Name.c_str());
}

uint64_t icb::benchutil::scaledU64(double Value, double Scale) {
  double Scaled = Value * Scale + 0.5;
  if (!(Scaled > 0))
    return 0;
  return static_cast<uint64_t>(Scaled);
}

std::vector<rt::CoveragePoint>
icb::benchutil::sampleCurve(const std::vector<rt::CoveragePoint> &Curve,
                            size_t MaxPoints) {
  if (Curve.size() <= MaxPoints)
    return Curve;
  std::vector<rt::CoveragePoint> Sampled;
  Sampled.reserve(MaxPoints);
  double Stride =
      static_cast<double>(Curve.size()) / static_cast<double>(MaxPoints);
  for (size_t I = 0; I != MaxPoints; ++I) {
    size_t Index = static_cast<size_t>(static_cast<double>(I) * Stride);
    Sampled.push_back(Curve[std::min(Index, Curve.size() - 1)]);
  }
  Sampled.back() = Curve.back();
  return Sampled;
}

std::vector<rt::CoveragePoint> icb::benchutil::toCoveragePoints(
    const std::vector<search::CoveragePoint> &Curve) {
  std::vector<rt::CoveragePoint> Points;
  Points.reserve(Curve.size());
  for (const search::CoveragePoint &P : Curve)
    Points.push_back({P.Executions, P.States});
  return Points;
}

namespace {

/// States reached by a curve at (or before) a given execution count.
uint64_t statesAt(const std::vector<rt::CoveragePoint> &Curve,
                  uint64_t Executions) {
  uint64_t Best = 0;
  for (const rt::CoveragePoint &P : Curve) {
    if (P.Executions > Executions)
      break;
    Best = P.States;
  }
  return Best;
}

} // namespace

void icb::benchutil::printGrowthFigure(const std::string &FigureName,
                                       const std::vector<NamedCurve> &Curves,
                                       uint64_t MaxExecutions) {
  // Milestones: roughly logarithmic, like reading points off the paper's
  // log-scale plots.
  std::vector<uint64_t> Milestones;
  for (uint64_t M : {100ull, 500ull, 1000ull, 5000ull, 10000ull, 25000ull,
                     50000ull, 100000ull})
    if (M <= MaxExecutions)
      Milestones.push_back(M);
  if (Milestones.empty() || Milestones.back() != MaxExecutions)
    Milestones.push_back(MaxExecutions);

  std::vector<std::string> Headers{"strategy"};
  for (uint64_t M : Milestones)
    Headers.push_back(strFormat("@%llu", static_cast<unsigned long long>(M)));
  std::vector<std::vector<std::string>> Rows;
  for (const NamedCurve &Curve : Curves) {
    std::vector<std::string> Row{Curve.Name};
    for (uint64_t M : Milestones)
      Row.push_back(withCommas(statesAt(Curve.Points, M)));
    Rows.push_back(std::move(Row));
  }
  std::printf("\nDistinct states covered after N executions:\n");
  printTable(Headers, Rows);

  std::vector<std::vector<std::string>> CsvRows;
  for (const NamedCurve &Curve : Curves)
    for (const rt::CoveragePoint &P : sampleCurve(Curve.Points, 200))
      CsvRows.push_back(
          {Curve.Name,
           strFormat("%llu", static_cast<unsigned long long>(P.Executions)),
           strFormat("%llu", static_cast<unsigned long long>(P.States))});
  printCsv(FigureName, {"strategy", "executions", "states"}, CsvRows);
}

void icb::benchutil::printComparison(const std::string &What,
                                     const std::string &Paper,
                                     const std::string &Measured) {
  std::printf("  %-46s paper: %-18s measured: %s\n", What.c_str(),
              Paper.c_str(), Measured.c_str());
}
