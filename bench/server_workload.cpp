//===- bench/server_workload.cpp - Modeled-io server workload baseline ----===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The io-frontend perf baseline: an in-tree replica of
/// examples/posix/kv_server.cpp (epoll + non-blocking socketpairs +
/// EFD_SEMAPHORE shutdown + single-slot slab cache with the seeded racy
/// eviction use-after-free) explored under ICB with and without bounded
/// POR, at --jobs 1 and 4. The harness verifies the workload's contract —
/// clean at preemption bound 0, use-after-free at bound 1, identical
/// results and bug reports across worker counts and POR modes — and
/// records executions/steps/states/wall-time per configuration.
///
/// Besides the human-readable table, the harness emits the measurements
/// as a session-JSON block (BEGIN/END JSON markers) and writes them to
/// BENCH_io.json in the working directory, the machine-readable perf
/// baseline CI archives per commit.
///
//===----------------------------------------------------------------------===//

#define ICB_POSIX_NO_RENAME
#include "icb/posix.h"

#include "BenchUtil.h"
#include "posix/Runtime.h"
#include "rt/Explore.h"
#include "session/Json.h"
#include "support/Format.h"
#include <chrono>
#include <cstdio>
#include <cstring>

using namespace icb;
using namespace icb::benchutil;
using namespace icb::rt;

namespace {

//===----------------------------------------------------------------------===//
// The workload: examples/posix/kv_server.cpp, calling icb_* directly
//===----------------------------------------------------------------------===//

enum { kWorkers = 2, kConns = 2 };

struct Item {
  char Key;
  char Value[2];
  int Hits;
};

pthread_mutex_t CacheLock = PTHREAD_MUTEX_INITIALIZER;

thread_local Item *Slot;
thread_local int EpollFd;
thread_local int StopFd;
thread_local int ServerFd[kConns];
thread_local int ClientFd[kConns];

void handleRequest(int Fd) {
  char Req[4];
  long Got = icb_read(Fd, Req, sizeof Req);
  if (Got != (long)sizeof Req)
    return; // EAGAIN: the other worker won the race for this request.
  if (Req[0] == 'G') {
    icb_pthread_mutex_lock(&CacheLock);
    Item *It = (Slot && Slot->Key == Req[1]) ? Slot : nullptr;
    icb_pthread_mutex_unlock(&CacheLock);
    if (!It) {
      icb_write(Fd, "??", 2);
      return;
    }
    // BUG (seeded): raw pointer kept across the response write.
    icb_write(Fd, It->Value, 2);
    It->Hits++; // use-after-free when the eviction wins the race
  } else if (Req[0] == 'S') {
    Item *Fresh = (Item *)icb_malloc(sizeof(Item));
    Fresh->Key = Req[1];
    Fresh->Value[0] = Req[2];
    Fresh->Value[1] = Req[3];
    Fresh->Hits = 0;
    icb_pthread_mutex_lock(&CacheLock);
    Item *Old = Slot;
    Slot = Fresh;
    icb_pthread_mutex_unlock(&CacheLock);
    icb_free(Old);
    icb_write(Fd, "ok", 2);
  }
}

void *worker(void *) {
  struct epoll_event Evs[4];
  int Running = 1;
  while (Running) {
    int N = icb_epoll_wait(EpollFd, Evs, 4, -1);
    if (N < 0)
      break;
    for (int I = 0; I < N && Running; ++I) {
      int Fd = (int)Evs[I].data.fd;
      if (Fd == StopFd) {
        uint64_t Token;
        if (icb_read(StopFd, &Token, sizeof Token) == (long)sizeof Token)
          Running = 0;
        continue;
      }
      handleRequest(Fd);
    }
  }
  return nullptr;
}

void serverBody() {
  Slot = (Item *)icb_malloc(sizeof(Item));
  Slot->Key = '1';
  Slot->Value[0] = 'v';
  Slot->Value[1] = '1';
  Slot->Hits = 0;

  EpollFd = icb_epoll_create1(0);
  for (int I = 0; I < kConns; ++I) {
    int Sv[2];
    icb_socketpair(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK, 0, Sv);
    ServerFd[I] = Sv[0];
    ClientFd[I] = Sv[1];
    struct epoll_event Ev;
    std::memset(&Ev, 0, sizeof Ev);
    Ev.events = EPOLLIN;
    Ev.data.fd = ServerFd[I];
    icb_epoll_ctl(EpollFd, EPOLL_CTL_ADD, ServerFd[I], &Ev);
  }
  StopFd = icb_eventfd(0, EFD_SEMAPHORE | EFD_NONBLOCK);
  struct epoll_event StopEv;
  std::memset(&StopEv, 0, sizeof StopEv);
  StopEv.events = EPOLLIN;
  StopEv.data.fd = StopFd;
  icb_epoll_ctl(EpollFd, EPOLL_CTL_ADD, StopFd, &StopEv);

  icb_write(ClientFd[0], "G1..", 4);
  icb_write(ClientFd[1], "S2xy", 4);
  uint64_t Tokens = kWorkers;
  icb_write(StopFd, &Tokens, sizeof Tokens);

  pthread_t Tids[kWorkers];
  for (pthread_t &T : Tids)
    icb_pthread_create(&T, nullptr, worker, nullptr);
  for (pthread_t &T : Tids)
    icb_pthread_join(T, nullptr);

  icb_free(Slot);
  Slot = nullptr;
  for (int I = 0; I < kConns; ++I) {
    icb_close(ServerFd[I]);
    icb_close(ClientFd[I]);
  }
  icb_close(StopFd);
  icb_close(EpollFd);
}

//===----------------------------------------------------------------------===//
// Harness
//===----------------------------------------------------------------------===//

struct Config {
  bool Por;
  unsigned Jobs;
  unsigned MaxBound;
};

struct Run {
  Config Cfg;
  ExploreResult Result;
  uint64_t WallUs = 0;
};

Run runConfig(Config Cfg) {
  ExploreOptions Opts;
  Opts.Limits.MaxExecutions = 1u << 20;
  Opts.Limits.StopAtFirstBug = false; // Full exploration: deterministic.
  Opts.Limits.MaxPreemptionBound = Cfg.MaxBound;
  Opts.Jobs = Cfg.Jobs;
  Opts.Por = Cfg.Por;
  IcbExplorer E(Opts);
  auto T0 = std::chrono::steady_clock::now();
  ExploreResult R = E.explore(posix::makeTestCase("kv-server", serverBody));
  auto T1 = std::chrono::steady_clock::now();
  uint64_t Us = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(T1 - T0).count());
  return Run{Cfg, std::move(R), Us};
}

bool uafOnly(const ExploreResult &R) {
  if (R.Bugs.empty())
    return false;
  for (const auto &B : R.Bugs)
    if (B.Kind != search::BugKind::UseAfterFree)
      return false;
  return true;
}

bool sameResults(const ExploreResult &L, const ExploreResult &R) {
  if (L.Stats.Executions != R.Stats.Executions ||
      L.Stats.TotalSteps != R.Stats.TotalSteps ||
      L.Stats.DistinctStates != R.Stats.DistinctStates ||
      L.Bugs.size() != R.Bugs.size())
    return false;
  for (size_t I = 0; I != L.Bugs.size(); ++I)
    if (L.Bugs[I].str() != R.Bugs[I].str())
      return false;
  return true;
}

} // namespace

int main() {
  printHeader("Server workload: modeled-io kv_server under ICB",
              "epoll + nonblocking socketpairs + managed heap; seeded "
              "eviction use-after-free");

  // Contract first: the seeded bug is invisible without a preemption and
  // exposed with one.
  Run Calib0 = runConfig({/*Por=*/true, /*Jobs=*/1, /*MaxBound=*/0});
  bool CleanAt0 = Calib0.Result.Bugs.empty();
  Run Calib1 = runConfig({/*Por=*/true, /*Jobs=*/1, /*MaxBound=*/1});
  bool BugAt1 = uafOnly(Calib1.Result);
  printComparison("bound 0 (non-preemptive)", "clean",
                  CleanAt0 ? "clean" : "BUG");
  printComparison("bound 1", "use-after-free",
                  BugAt1 ? "use-after-free" : "MISSED");

  const Config Configs[] = {
      {/*Por=*/false, /*Jobs=*/1, /*MaxBound=*/2},
      {/*Por=*/false, /*Jobs=*/4, /*MaxBound=*/2},
      {/*Por=*/true, /*Jobs=*/1, /*MaxBound=*/2},
      {/*Por=*/true, /*Jobs=*/4, /*MaxBound=*/2},
  };
  std::vector<Run> Runs;
  for (const Config &Cfg : Configs)
    Runs.push_back(runConfig(Cfg));

  bool Deterministic = sameResults(Runs[0].Result, Runs[1].Result) &&
                       sameResults(Runs[2].Result, Runs[3].Result);
  bool BugsEverywhere = true;
  for (const Run &R : Runs)
    BugsEverywhere &= uafOnly(R.Result);
  // Sleep sets may only prune.
  bool PorPrunes =
      Runs[2].Result.Stats.Executions <= Runs[0].Result.Stats.Executions;

  std::vector<std::vector<std::string>> Rows;
  for (const Run &R : Runs)
    Rows.push_back({R.Cfg.Por ? "icb+por" : "icb",
                    strFormat("%u", R.Cfg.Jobs),
                    strFormat("%u", R.Cfg.MaxBound),
                    withCommas(R.Result.Stats.Executions),
                    withCommas(R.Result.Stats.TotalSteps),
                    withCommas(R.Result.Stats.DistinctStates),
                    strFormat("%zu", R.Result.Bugs.size()),
                    strFormat("%llu us", (unsigned long long)R.WallUs)});
  std::printf("\n");
  printTable({"mode", "jobs", "bound", "executions", "steps", "states",
              "bugs", "wall"},
             Rows);
  printComparison("jobs 1 vs 4", "identical results",
                  Deterministic ? "identical" : "DIVERGED");
  printComparison("por composition", "bug preserved, fewer executions",
                  (BugsEverywhere && PorPrunes) ? "holds" : "VIOLATED");

  bool Ok = CleanAt0 && BugAt1 && Deterministic && BugsEverywhere && PorPrunes;

  session::JsonValue Doc = session::JsonValue::object();
  Doc.set("experiment", session::JsonValue::str("server_workload"));
  Doc.set("clean_at_bound_0", session::JsonValue::boolean(CleanAt0));
  Doc.set("uaf_at_bound_1", session::JsonValue::boolean(BugAt1));
  Doc.set("jobs_deterministic", session::JsonValue::boolean(Deterministic));
  Doc.set("por_preserves_and_prunes",
          session::JsonValue::boolean(BugsEverywhere && PorPrunes));
  session::JsonValue CaseArr = session::JsonValue::array();
  for (const Run &R : Runs) {
    session::JsonValue Row = session::JsonValue::object();
    Row.set("mode", session::JsonValue::str(R.Cfg.Por ? "icb+por" : "icb"));
    Row.set("jobs", session::JsonValue::number(R.Cfg.Jobs));
    Row.set("bound", session::JsonValue::number(R.Cfg.MaxBound));
    Row.set("executions", session::JsonValue::number(R.Result.Stats.Executions));
    Row.set("steps", session::JsonValue::number(R.Result.Stats.TotalSteps));
    Row.set("states",
            session::JsonValue::number(R.Result.Stats.DistinctStates));
    Row.set("bugs", session::JsonValue::number(R.Result.Bugs.size()));
    Row.set("wall_us", session::JsonValue::number(R.WallUs));
    CaseArr.Arr.push_back(std::move(Row));
  }
  Doc.set("cases", std::move(CaseArr));
  printJsonBlock("server_workload", Doc);

  std::string Error;
  if (!session::atomicWriteFile("BENCH_io.json", session::jsonWrite(Doc),
                                &Error)) {
    std::fprintf(stderr, "failed to write BENCH_io.json: %s\n", Error.c_str());
    return 1;
  }
  std::printf("wrote BENCH_io.json\n");
  return Ok ? 0 : 1;
}
