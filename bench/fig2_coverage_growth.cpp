//===- bench/fig2_coverage_growth.cpp - Reproduces Figure 2 ----------------===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Figure 2: "plots the number of distinct visited states on the y-axis
/// against the number of executions explored by different methods ...
/// iterative context-bounding (icb), unbounded depth-first search (dfs),
/// random search (random), depth-first search with depth-bound 40 (db:40),
/// and depth-first search with depth-bound 20 (db:20). Iterative
/// context-bounding achieves significantly better coverage at a faster
/// rate compared to the other methods."
///
/// We run the same five strategies on the work-stealing queue for the same
/// 25,000 executions, counting distinct happens-before fingerprints (the
/// paper's stateless state representation). Expected shape: icb dominates;
/// dfs is worst (it pours executions into one deep corner); the fixed
/// depth bounds sit in between; random is competitive early but plateaus.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "benchmarks/WorkStealingQueue.h"
#include "rt/Explore.h"
#include <cstdio>

using namespace icb;
using namespace icb::bench;
using namespace icb::benchutil;

int main() {
  constexpr uint64_t MaxExecutions = 25000;
  printHeader("Figure 2: coverage growth on the work-stealing queue",
              "distinct HB-fingerprint states vs executions; 25k "
              "executions per strategy");

  auto Test = [] { return workStealingTest({3, 4, WsqBug::None}); };
  rt::ExploreOptions Opts;
  Opts.Limits.MaxExecutions = MaxExecutions;

  std::vector<NamedCurve> Curves;
  {
    rt::IcbExplorer Icb(Opts);
    Curves.push_back({"icb", Icb.explore(Test()).Stats.Coverage});
  }
  {
    rt::DfsExplorer Dfs(Opts);
    Curves.push_back({"dfs", Dfs.explore(Test()).Stats.Coverage});
  }
  {
    rt::RandomExplorer Random(Opts, /*Seed=*/2007, MaxExecutions);
    Curves.push_back({"random", Random.explore(Test()).Stats.Coverage});
  }
  {
    rt::RandomExplorer Stress(Opts, /*Seed=*/2007, MaxExecutions,
                              /*StressSlices=*/true);
    Curves.push_back(
        {"random-slice", Stress.explore(Test()).Stats.Coverage});
  }
  // The paper's WSQ executions are ~99 steps deep and it used db:20/db:40;
  // ours are ~45-60 steps, so the proportional bounds are 10 and 20.
  {
    rt::DfsExplorer Db20(Opts, /*DepthBound=*/20);
    Curves.push_back({"db:20", Db20.explore(Test()).Stats.Coverage});
  }
  {
    rt::DfsExplorer Db10(Opts, /*DepthBound=*/10);
    Curves.push_back({"db:10", Db10.explore(Test()).Stats.Coverage});
  }

  printGrowthFigure("fig2", Curves, MaxExecutions);

  const NamedCurve &IcbCurve = Curves[0];
  uint64_t IcbFinal = IcbCurve.Points.empty()
                          ? 0
                          : IcbCurve.Points.back().States;
  std::printf("\nShape check (paper: icb dominates every other curve):\n");
  bool DominatesSystematic = true;
  for (size_t I = 1; I < Curves.size(); ++I) {
    uint64_t Final =
        Curves[I].Points.empty() ? 0 : Curves[I].Points.back().States;
    printComparison("icb vs " + Curves[I].Name, "icb higher",
                    IcbFinal >= Final ? "icb higher" : "icb LOWER");
    if (Curves[I].Name != "random")
      DominatesSystematic &= IcbFinal >= Final;
  }
  std::printf(
      "\nNote: our 'random' picks uniformly at every scheduling point — a\n"
      "stronger coverage sampler than stress-like scheduling (see the\n"
      "random-slice curve) and, at budgets far from saturation, than the\n"
      "paper's random search appears to have been; EXPERIMENTS.md discusses\n"
      "the deviation. The systematic baselines (dfs, db:N) must lose to\n"
      "icb, as in the paper.\n");
  return DominatesSystematic ? 0 : 1;
}
