//===- bench/fig1_coverage.cpp - Reproduces Figure 1 -----------------------===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Figure 1: the cumulative percentage of the work-stealing queue's state
/// space covered by executions with at most c preemptions. The paper's
/// observations: "full state coverage is achieved with eleven preemptions
/// although the program has executions with at least 35 preemptions" and
/// "90% state coverage is achieved within a context-switch bound of
/// eight."
///
/// We run iterative context bounding to exhaustion on the work-stealing
/// queue (counting distinct happens-before fingerprints) and report the
/// percentage of the final total reached when each bound completes, plus
/// the maximum preemption count of any execution (from an unbounded DFS
/// sample) for the "much larger than the saturation bound" comparison.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "benchmarks/WorkStealingQueue.h"
#include "rt/Explore.h"
#include "support/Format.h"
#include <cstdio>

using namespace icb;
using namespace icb::bench;
using namespace icb::benchutil;

int main() {
  printHeader("Figure 1: % of WSQ state space covered per preemption bound",
              "ICB to exhaustion; states = distinct HB fingerprints");

  auto Test = [] { return workStealingTest({2, 4, WsqBug::None}); };
  rt::ExploreOptions Opts;
  // The stateless search never exhausts its execution count at feasible
  // budgets (each bound multiplies the prefix combinations), but the
  // distinct-state count saturates several bounds before the cap; the
  // saturated total is the denominator, as noted in the output.
  Opts.Limits.MaxExecutions = 1200000;
  rt::IcbExplorer Icb(Opts);
  rt::ExploreResult R = Icb.explore(Test());

  uint64_t Total = R.Stats.DistinctStates;
  std::vector<std::vector<std::string>> Rows;
  std::vector<std::vector<std::string>> CsvRows;
  unsigned Bound90 = ~0u, Bound100 = ~0u;
  for (const rt::BoundCoverage &B : R.Stats.PerBound) {
    double Pct = Total ? 100.0 * static_cast<double>(B.States) /
                             static_cast<double>(Total)
                       : 0.0;
    if (Pct >= 90.0 && Bound90 == ~0u)
      Bound90 = B.Bound;
    if (B.States == Total && Bound100 == ~0u)
      Bound100 = B.Bound;
    Rows.push_back({strFormat("%u", B.Bound), withCommas(B.States),
                    strFormat("%.1f%%", Pct), withCommas(B.Executions)});
    CsvRows.push_back({strFormat("%u", B.Bound),
                       strFormat("%llu", (unsigned long long)B.States),
                       strFormat("%.4f", Pct),
                       strFormat("%llu", (unsigned long long)B.Executions)});
  }
  printTable({"Context Bound", "States", "% State Space", "Executions"},
             Rows);

  // How deep do preemption counts go overall? Sample with unbounded DFS.
  rt::ExploreOptions DfsOpts;
  DfsOpts.Limits.MaxExecutions = 30000;
  rt::DfsExplorer Dfs(DfsOpts);
  rt::ExploreResult DfsR = Dfs.explore(Test());
  uint64_t MaxC = DfsR.Stats.PreemptionsPerExecution.max();

  unsigned FlatBounds = 0;
  for (size_t I = R.Stats.PerBound.size(); I > 1; --I) {
    if (R.Stats.PerBound[I - 1].States != Total)
      break;
    ++FlatBounds;
  }
  std::printf("\nSearch %s (%s distinct states in %s executions); the "
              "state count was flat over the final %u bounds%s\n",
              R.Stats.Completed ? "completed" : "hit the execution limit",
              withCommas(Total).c_str(),
              withCommas(R.Stats.Executions).c_str(), FlatBounds,
              R.Stats.Completed ? "" : " (saturation denominator)");
  printComparison("bound reaching 90% of the state space", "8",
                  Bound90 == ~0u ? "n/a" : strFormat("%u", Bound90));
  printComparison("bound reaching 100% of the state space", "11",
                  Bound100 == ~0u ? "n/a" : strFormat("%u", Bound100));
  printComparison("max preemptions in any execution (sampled)", ">= 35",
                  strFormat(">= %llu", (unsigned long long)MaxC));
  printCsv("fig1", {"bound", "states", "pct", "executions"}, CsvRows);
  return 0;
}
