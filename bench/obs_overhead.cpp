//===- bench/obs_overhead.cpp - Instrumentation overhead harness -----------===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Measures what the observability layer costs on the search hot path:
/// the same ICB run with a MetricsRegistry attached (every counter, phase
/// timer, and per-worker clock active) versus detached (null shard —
/// every obs::count / ScopedPhase short-circuits), plus a third leg with
/// decision-level tracing enabled on the registry (ring-buffer appends at
/// every branch/defer/execution boundary — the `--trace=FILE` cost). The
/// remaining column of interest — ICB_NO_METRICS, where the
/// instrumentation is compiled out entirely — is a separate build; the CI
/// release job covers it.
///
/// Besides the human-readable table, the measurements go out as a
/// session-JSON block and BENCH_obs.json in the working directory, the
/// machine-readable baseline the CI observability job archives.
///
/// The rt executor is the stressful case: its instrumentation sits inside
/// the fiber scheduler (hash and race-detect scopes fire per step, not
/// per execution).
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "benchmarks/Bluetooth.h"
#include "benchmarks/WorkStealingQueue.h"
#include "benchmarks/WsqModel.h"
#include "obs/Metrics.h"
#include "rt/Explore.h"
#include "search/Checker.h"
#include "session/Json.h"
#include "support/Format.h"
#include "vm/Interp.h"
#include <chrono>
#include <cinttypes>
#include <cstdio>

using namespace icb;
using namespace icb::bench;
using namespace icb::benchutil;

namespace {

uint64_t nowMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

struct Measurement {
  uint64_t Micros = 0;
  uint64_t Executions = 0;
  uint64_t Steps = 0;
};

/// Best of \p Reps timed runs of \p Body — the minimum is the standard
/// noise filter for single-process wall-clock micro-measurements.
template <typename Fn> Measurement bestOf(unsigned Reps, Fn Body) {
  Measurement Best;
  for (unsigned I = 0; I != Reps; ++I) {
    Measurement M = Body();
    if (I == 0 || M.Micros < Best.Micros)
      Best = M;
  }
  return Best;
}

Measurement runRt(const rt::TestCase &Test, unsigned Jobs,
                  obs::MetricsRegistry *Reg) {
  return bestOf(3, [&] {
    rt::ExploreOptions Opts;
    Opts.Limits.MaxPreemptionBound = 2;
    Opts.Limits.StopAtFirstBug = false;
    Opts.Jobs = Jobs;
    Opts.Metrics = Reg;
    rt::IcbExplorer Icb(Opts);
    uint64_t Start = nowMicros();
    rt::ExploreResult R = Icb.explore(Test);
    return Measurement{nowMicros() - Start, R.Stats.Executions,
                       R.Stats.TotalSteps};
  });
}

Measurement runVm(const vm::Program &Prog, obs::MetricsRegistry *Reg) {
  return bestOf(3, [&] {
    search::SearchOptions Opts;
    Opts.Kind = search::StrategyKind::Icb;
    Opts.Limits.MaxPreemptionBound = 3;
    Opts.Limits.StopAtFirstBug = false;
    Opts.Metrics = Reg;
    uint64_t Start = nowMicros();
    search::SearchResult R = search::checkProgram(Prog, Opts);
    return Measurement{nowMicros() - Start, R.Stats.Executions,
                       R.Stats.TotalSteps};
  });
}

std::string perStepNanos(const Measurement &M) {
  if (M.Steps == 0)
    return "-";
  uint64_t Nanos = M.Micros * 1000;
  return strFormat("%" PRIu64 ".%" PRIu64, Nanos / M.Steps,
                   (Nanos * 10 / M.Steps) % 10);
}

std::string overheadPct(uint64_t With, uint64_t Without) {
  if (Without == 0)
    return "-";
  // Signed-safe scaled percentage: instrumented minus bare over bare.
  int64_t DeltaMilli =
      (static_cast<int64_t>(With) - static_cast<int64_t>(Without)) * 1000 /
      static_cast<int64_t>(Without);
  return strFormat("%+" PRId64 ".%" PRId64 "%%", DeltaMilli / 10,
                   DeltaMilli < 0 ? (-DeltaMilli) % 10 : DeltaMilli % 10);
}

} // namespace

int main() {
  printHeader("Observability overhead: metrics attached vs detached",
              "same search, with and without a MetricsRegistry; "
              "ICB_NO_METRICS (compiled out) is a separate build");

  struct Case {
    std::string Name;
    Measurement With;
    Measurement Without;
    Measurement Traced;
  };
  std::vector<Case> Cases;

  {
    rt::TestCase Test = workStealingTest({3, 4, WsqBug::PopRetryNoLock});
    // Warm-up run to fault in fiber stacks and allocator arenas.
    runRt(Test, 1, nullptr);
    obs::MetricsRegistry Reg, TReg;
    TReg.enableTracing(1 << 16);
    Case C{"wsq rt jobs=1", {}, {}, {}};
    C.Without = runRt(Test, 1, nullptr);
    C.With = runRt(Test, 1, &Reg);
    C.Traced = runRt(Test, 1, &TReg);
    Cases.push_back(C);
  }
  {
    rt::TestCase Test = workStealingTest({3, 4, WsqBug::PopRetryNoLock});
    obs::MetricsRegistry Reg, TReg;
    TReg.enableTracing(1 << 16);
    Case C{"wsq rt jobs=4", {}, {}, {}};
    C.Without = runRt(Test, 4, nullptr);
    C.With = runRt(Test, 4, &Reg);
    C.Traced = runRt(Test, 4, &TReg);
    Cases.push_back(C);
  }
  {
    rt::TestCase Test = bluetoothTest({2, /*WithBug=*/true});
    runRt(Test, 1, nullptr);
    obs::MetricsRegistry Reg, TReg;
    TReg.enableTracing(1 << 16);
    Case C{"bluetooth rt jobs=1", {}, {}, {}};
    C.Without = runRt(Test, 1, nullptr);
    C.With = runRt(Test, 1, &Reg);
    C.Traced = runRt(Test, 1, &TReg);
    Cases.push_back(C);
  }
  {
    vm::Program Prog = wsqModel({3, WsqBug::None});
    runVm(Prog, nullptr);
    obs::MetricsRegistry Reg, TReg;
    TReg.enableTracing(1 << 16);
    Case C{"wsq vm jobs=1", {}, {}, {}};
    C.Without = runVm(Prog, nullptr);
    C.With = runVm(Prog, &Reg);
    C.Traced = runVm(Prog, &TReg);
    Cases.push_back(C);
  }

  std::vector<std::vector<std::string>> Rows;
  for (const Case &C : Cases)
    Rows.push_back({C.Name, withCommas(C.Without.Steps),
                    withCommas(C.Without.Micros), withCommas(C.With.Micros),
                    withCommas(C.Traced.Micros), perStepNanos(C.Without),
                    perStepNanos(C.With),
                    overheadPct(C.With.Micros, C.Without.Micros),
                    overheadPct(C.Traced.Micros, C.Without.Micros)});
  printTable({"case", "steps", "bare us", "metered us", "traced us",
              "bare ns/step", "metered ns/step", "overhead", "traced ovh"},
             Rows);

  std::printf("\nNote: best-of-3 wall clocks; treat the overhead columns "
              "as indicative, not a statistic.\n");

  std::vector<std::vector<std::string>> Csv;
  for (const Case &C : Cases)
    Csv.push_back({C.Name, std::to_string(C.Without.Steps),
                   std::to_string(C.Without.Micros),
                   std::to_string(C.With.Micros),
                   std::to_string(C.Traced.Micros)});
  printCsv("obs_overhead",
           {"case", "steps", "bare_us", "metered_us", "traced_us"}, Csv);

  session::JsonValue Doc = session::JsonValue::object();
  Doc.set("experiment", session::JsonValue::str("obs_overhead"));
  session::JsonValue CaseArr = session::JsonValue::array();
  for (const Case &C : Cases) {
    session::JsonValue Row = session::JsonValue::object();
    Row.set("case", session::JsonValue::str(C.Name));
    Row.set("steps", session::JsonValue::number(C.Without.Steps));
    Row.set("bare_us", session::JsonValue::number(C.Without.Micros));
    Row.set("metered_us", session::JsonValue::number(C.With.Micros));
    Row.set("traced_us", session::JsonValue::number(C.Traced.Micros));
    CaseArr.Arr.push_back(std::move(Row));
  }
  Doc.set("cases", std::move(CaseArr));
  printJsonBlock("obs_overhead", Doc);

  std::string Error;
  if (!session::atomicWriteFile("BENCH_obs.json", session::jsonWrite(Doc),
                                &Error)) {
    std::fprintf(stderr, "failed to write BENCH_obs.json: %s\n",
                 Error.c_str());
    return 1;
  }
  std::printf("wrote BENCH_obs.json\n");
  return 0;
}
