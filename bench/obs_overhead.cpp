//===- bench/obs_overhead.cpp - Instrumentation overhead harness -----------===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Measures what the observability layer costs on the search hot path:
/// the same ICB run with a MetricsRegistry attached (every counter, phase
/// timer, and per-worker clock active) versus detached (null shard —
/// every obs::count / ScopedPhase short-circuits). The third column of
/// interest — ICB_NO_METRICS, where the instrumentation is compiled out
/// entirely — is a separate build; the CI release job covers it.
///
/// The rt executor is the stressful case: its instrumentation sits inside
/// the fiber scheduler (hash and race-detect scopes fire per step, not
/// per execution).
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "benchmarks/Bluetooth.h"
#include "benchmarks/WorkStealingQueue.h"
#include "benchmarks/WsqModel.h"
#include "obs/Metrics.h"
#include "rt/Explore.h"
#include "search/Checker.h"
#include "support/Format.h"
#include "vm/Interp.h"
#include <chrono>
#include <cinttypes>
#include <cstdio>

using namespace icb;
using namespace icb::bench;
using namespace icb::benchutil;

namespace {

uint64_t nowMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

struct Measurement {
  uint64_t Micros = 0;
  uint64_t Executions = 0;
  uint64_t Steps = 0;
};

/// Best of \p Reps timed runs of \p Body — the minimum is the standard
/// noise filter for single-process wall-clock micro-measurements.
template <typename Fn> Measurement bestOf(unsigned Reps, Fn Body) {
  Measurement Best;
  for (unsigned I = 0; I != Reps; ++I) {
    Measurement M = Body();
    if (I == 0 || M.Micros < Best.Micros)
      Best = M;
  }
  return Best;
}

Measurement runRt(const rt::TestCase &Test, unsigned Jobs,
                  obs::MetricsRegistry *Reg) {
  return bestOf(3, [&] {
    rt::ExploreOptions Opts;
    Opts.Limits.MaxPreemptionBound = 2;
    Opts.Limits.StopAtFirstBug = false;
    Opts.Jobs = Jobs;
    Opts.Metrics = Reg;
    rt::IcbExplorer Icb(Opts);
    uint64_t Start = nowMicros();
    rt::ExploreResult R = Icb.explore(Test);
    return Measurement{nowMicros() - Start, R.Stats.Executions,
                       R.Stats.TotalSteps};
  });
}

Measurement runVm(const vm::Program &Prog, obs::MetricsRegistry *Reg) {
  return bestOf(3, [&] {
    search::SearchOptions Opts;
    Opts.Kind = search::StrategyKind::Icb;
    Opts.Limits.MaxPreemptionBound = 3;
    Opts.Limits.StopAtFirstBug = false;
    Opts.Metrics = Reg;
    uint64_t Start = nowMicros();
    search::SearchResult R = search::checkProgram(Prog, Opts);
    return Measurement{nowMicros() - Start, R.Stats.Executions,
                       R.Stats.TotalSteps};
  });
}

std::string perStepNanos(const Measurement &M) {
  if (M.Steps == 0)
    return "-";
  uint64_t Nanos = M.Micros * 1000;
  return strFormat("%" PRIu64 ".%" PRIu64, Nanos / M.Steps,
                   (Nanos * 10 / M.Steps) % 10);
}

std::string overheadPct(uint64_t With, uint64_t Without) {
  if (Without == 0)
    return "-";
  // Signed-safe scaled percentage: instrumented minus bare over bare.
  int64_t DeltaMilli =
      (static_cast<int64_t>(With) - static_cast<int64_t>(Without)) * 1000 /
      static_cast<int64_t>(Without);
  return strFormat("%+" PRId64 ".%" PRId64 "%%", DeltaMilli / 10,
                   DeltaMilli < 0 ? (-DeltaMilli) % 10 : DeltaMilli % 10);
}

} // namespace

int main() {
  printHeader("Observability overhead: metrics attached vs detached",
              "same search, with and without a MetricsRegistry; "
              "ICB_NO_METRICS (compiled out) is a separate build");

  struct Case {
    std::string Name;
    Measurement With;
    Measurement Without;
  };
  std::vector<Case> Cases;

  {
    rt::TestCase Test = workStealingTest({3, 4, WsqBug::PopRetryNoLock});
    // Warm-up run to fault in fiber stacks and allocator arenas.
    runRt(Test, 1, nullptr);
    obs::MetricsRegistry Reg;
    Case C{"wsq rt jobs=1", {}, {}};
    C.Without = runRt(Test, 1, nullptr);
    C.With = runRt(Test, 1, &Reg);
    Cases.push_back(C);
  }
  {
    rt::TestCase Test = workStealingTest({3, 4, WsqBug::PopRetryNoLock});
    obs::MetricsRegistry Reg;
    Case C{"wsq rt jobs=4", {}, {}};
    C.Without = runRt(Test, 4, nullptr);
    C.With = runRt(Test, 4, &Reg);
    Cases.push_back(C);
  }
  {
    rt::TestCase Test = bluetoothTest({2, /*WithBug=*/true});
    runRt(Test, 1, nullptr);
    obs::MetricsRegistry Reg;
    Case C{"bluetooth rt jobs=1", {}, {}};
    C.Without = runRt(Test, 1, nullptr);
    C.With = runRt(Test, 1, &Reg);
    Cases.push_back(C);
  }
  {
    vm::Program Prog = wsqModel({3, WsqBug::None});
    runVm(Prog, nullptr);
    obs::MetricsRegistry Reg;
    Case C{"wsq vm jobs=1", {}, {}};
    C.Without = runVm(Prog, nullptr);
    C.With = runVm(Prog, &Reg);
    Cases.push_back(C);
  }

  std::vector<std::vector<std::string>> Rows;
  for (const Case &C : Cases)
    Rows.push_back({C.Name, withCommas(C.Without.Steps),
                    withCommas(C.Without.Micros), withCommas(C.With.Micros),
                    perStepNanos(C.Without), perStepNanos(C.With),
                    overheadPct(C.With.Micros, C.Without.Micros)});
  printTable({"case", "steps", "bare us", "metered us", "bare ns/step",
              "metered ns/step", "overhead"},
             Rows);

  std::printf("\nNote: best-of-3 wall clocks; treat the overhead column "
              "as indicative, not a statistic.\n");

  std::vector<std::vector<std::string>> Csv;
  for (const Case &C : Cases)
    Csv.push_back({C.Name, std::to_string(C.Without.Steps),
                   std::to_string(C.Without.Micros),
                   std::to_string(C.With.Micros)});
  printCsv("obs_overhead", {"case", "steps", "bare_us", "metered_us"}, Csv);
  return 0;
}
