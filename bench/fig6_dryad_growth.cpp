//===- bench/fig6_dryad_growth.cpp - Reproduces Figure 6 -------------------===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Figure 6: coverage growth for the Dryad channel library — icb against
/// unbounded DFS and iterative depth-bounding (the paper used
/// idfs-75/100/125; our bounds scale to our execution depths). Same
/// expected shape as Figure 5: icb dominates from the first executions.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "benchmarks/DryadChannels.h"
#include "rt/Explore.h"
#include <cstdio>

using namespace icb;
using namespace icb::bench;
using namespace icb::benchutil;

int main() {
  constexpr uint64_t MaxExecutions = 25000;
  printHeader("Figure 6: coverage growth for Dryad channels",
              "distinct HB-fingerprint states vs executions");

  auto Test = [] { return dryadTest({3, 2, DryadBug::None}); };
  rt::ExploreOptions Opts;
  Opts.Limits.MaxExecutions = MaxExecutions;

  std::vector<NamedCurve> Curves;
  {
    rt::IcbExplorer Icb(Opts);
    Curves.push_back({"icb", Icb.explore(Test()).Stats.Coverage});
  }
  {
    rt::DfsExplorer Dfs(Opts);
    Curves.push_back({"dfs", Dfs.explore(Test()).Stats.Coverage});
  }
  for (unsigned Bound : {30u, 40u, 50u}) {
    rt::IdfsExplorer Idfs(Opts, Bound, Bound);
    Curves.push_back(
        {"idfs-" + std::to_string(Bound), Idfs.explore(Test()).Stats.Coverage});
  }

  printGrowthFigure("fig6", Curves, MaxExecutions);

  uint64_t IcbFinal =
      Curves[0].Points.empty() ? 0 : Curves[0].Points.back().States;
  std::printf("\nShape check (paper: icb above dfs and every idfs):\n");
  bool Dominates = true;
  for (size_t I = 1; I < Curves.size(); ++I) {
    uint64_t Final =
        Curves[I].Points.empty() ? 0 : Curves[I].Points.back().States;
    printComparison("icb vs " + Curves[I].Name, "icb higher",
                    IcbFinal >= Final ? "icb higher" : "icb LOWER");
    Dominates &= IcbFinal >= Final;
  }
  return Dominates ? 0 : 1;
}
