//===- bench/BenchUtil.h - Shared experiment-harness helpers ----*- C++ -*-===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the table/figure harnesses: aligned table printing,
/// coverage-curve CSV emission, and paper-vs-measured comparison lines.
/// Every harness prints (a) a human-readable table shaped like the paper's
/// and (b) a machine-readable CSV block for regenerating the plots.
///
//===----------------------------------------------------------------------===//

#ifndef ICB_BENCH_BENCHUTIL_H
#define ICB_BENCH_BENCHUTIL_H

#include "rt/Explore.h"
#include "search/SearchTypes.h"
#include "session/Json.h"
#include <string>
#include <vector>

namespace icb::benchutil {

/// Prints a boxed section header to stdout.
void printHeader(const std::string &Title, const std::string &Subtitle = "");

/// Prints an aligned text table to stdout.
void printTable(const std::vector<std::string> &Headers,
                const std::vector<std::vector<std::string>> &Rows);

/// Prints a CSV block (between BEGIN/END markers) to stdout.
void printCsv(const std::string &Name,
              const std::vector<std::string> &Headers,
              const std::vector<std::vector<std::string>> &Rows);

/// Prints a machine-readable JSON block (between "BEGIN JSON <name>" /
/// "END JSON <name>" markers) to stdout, rendered through the session
/// JSON writer so harness output and session artifacts share one format.
/// Session JSON numbers are unsigned integers only; fractional
/// measurements go in as scaled integers (see \ref scaledU64).
void printJsonBlock(const std::string &Name, const session::JsonValue &Root);

/// Converts a non-negative fractional measurement to a scaled integer
/// for session JSON (e.g. seconds -> microseconds with Scale = 1e6).
uint64_t scaledU64(double Value, double Scale);

/// Downsamples a states-vs-executions curve to at most \p MaxPoints
/// samples (always keeping the last point).
std::vector<rt::CoveragePoint>
sampleCurve(const std::vector<rt::CoveragePoint> &Curve, size_t MaxPoints);

/// Converts the VM-side coverage curve to the rt-side point type so the
/// plotting helpers can be shared.
std::vector<rt::CoveragePoint>
toCoveragePoints(const std::vector<search::CoveragePoint> &Curve);

/// One named curve for a growth figure.
struct NamedCurve {
  std::string Name;
  std::vector<rt::CoveragePoint> Points;
};

/// Prints a growth figure: a compact table of states at execution
/// milestones per strategy, plus the full CSV.
void printGrowthFigure(const std::string &FigureName,
                       const std::vector<NamedCurve> &Curves,
                       uint64_t MaxExecutions);

/// Prints one "paper vs measured" comparison line.
void printComparison(const std::string &What, const std::string &Paper,
                     const std::string &Measured);

} // namespace icb::benchutil

#endif // ICB_BENCH_BENCHUTIL_H
