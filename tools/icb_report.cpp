//===- tools/icb_report.cpp - Render run metrics as tables -----------------===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders the observability data of a finished (or checkpointed) run as
/// human-readable tables: per-bound coverage, phase-time breakdown, worker
/// utilization, and cache effectiveness. Reads either an icb_check
/// `--json` manifest or a `--checkpoint-dir` directory (equivalently its
/// checkpoint.json), so the same report works on a completed run and on a
/// run interrupted halfway.
///
///   icb_report manifest.json
///   icb_report ckpt/                 # or ckpt/checkpoint.json
///
/// Exit codes: 0 report rendered, 2 usage error, 4 unreadable or
/// unparseable input.
///
//===----------------------------------------------------------------------===//

#include "common/ToolCommon.h"
#include "session/Json.h"
#include "support/CommandLine.h"
#include "support/Format.h"
#include <cinttypes>
#include <cstdio>
#include <string>
#include <vector>

using namespace icb;
using session::JsonValue;
using tool::jsonNum;
using tool::jsonStr;

namespace {

// Field reads shared with the other tools (tools/common/ToolCommon.h).
uint64_t numField(const JsonValue *V, const char *Key) {
  return jsonNum(V, Key);
}

std::string strField(const JsonValue *V, const char *Key) {
  return jsonStr(V, Key);
}

/// Nanoseconds as milliseconds with 3 decimals ("12.345").
std::string nsToMs(uint64_t Nanos) {
  return strFormat("%" PRIu64 ".%03" PRIu64, Nanos / 1000000,
                   (Nanos / 1000) % 1000);
}

/// Microseconds with 1 decimal from nanoseconds ("4.2").
std::string nsToUs(uint64_t Nanos) {
  return strFormat("%" PRIu64 ".%" PRIu64, Nanos / 1000, (Nanos % 1000) / 100);
}

/// Integer-ratio percentage with 1 decimal ("97.3%"); "-" when the
/// denominator is zero.
std::string pct(uint64_t Part, uint64_t Whole) {
  if (Whole == 0)
    return "-";
  uint64_t Milli = (Part * 1000 + Whole / 2) / Whole;
  return strFormat("%" PRIu64 ".%" PRIu64 "%%", Milli / 10, Milli % 10);
}

void printRow(const std::vector<std::string> &Cells,
              const std::vector<size_t> &Widths) {
  std::string Line = " ";
  for (size_t I = 0; I != Cells.size(); ++I)
    Line += " " + padLeft(Cells[I], Widths[I]);
  std::printf("%s\n", Line.c_str());
}

/// Prints a right-aligned table: one header row, then data rows. Column
/// widths adapt to content.
void printTable(const std::vector<std::string> &Header,
                const std::vector<std::vector<std::string>> &Rows) {
  std::vector<size_t> Widths;
  for (const std::string &H : Header)
    Widths.push_back(H.size());
  for (const auto &Row : Rows)
    for (size_t I = 0; I != Row.size() && I != Widths.size(); ++I)
      Widths[I] = std::max(Widths[I], Row[I].size());
  printRow(Header, Widths);
  for (const auto &Row : Rows)
    printRow(Row, Widths);
}

//===----------------------------------------------------------------------===//
// Report sections
//===----------------------------------------------------------------------===//

/// Per-bound coverage: cumulative stats rows joined (by bound) with the
/// metrics' per-bound execution histogram when present.
void renderPerBound(const JsonValue *Stats, const JsonValue *Metrics) {
  const JsonValue *PerBound = Stats ? Stats->find("per_bound") : nullptr;
  if (!PerBound || !PerBound->isArray() || PerBound->Arr.empty()) {
    std::printf("  (no per-bound coverage recorded)\n");
    return;
  }
  const JsonValue *Epb = Metrics ? Metrics->find("executions_per_bound")
                                 : nullptr;
  std::vector<std::vector<std::string>> Rows;
  uint64_t PrevExec = 0, PrevStates = 0;
  for (const JsonValue &Row : PerBound->Arr) {
    uint64_t Bound = numField(&Row, "bound");
    uint64_t Exec = numField(&Row, "executions");
    uint64_t States = numField(&Row, "states");
    // The metrics histogram counts this bound's own executions; the stats
    // rows are cumulative. Report both views side by side.
    std::string Own = "-";
    if (Epb && Epb->isArray() && Bound < Epb->Arr.size() &&
        Epb->Arr[Bound].K == JsonValue::Kind::Number)
      Own = withCommas(Epb->Arr[Bound].U);
    Rows.push_back({withCommas(Bound), withCommas(Exec),
                    withCommas(Exec - PrevExec), Own, withCommas(States),
                    withCommas(States - PrevStates)});
    PrevExec = Exec;
    PrevStates = States;
  }
  printTable({"bound", "cum exec", "new exec", "exec@bound", "cum states",
              "new states"},
             Rows);
}

/// --sites: include the per-preemption-site profile table (set in main).
bool ShowSites = false;

/// --joiners: include the distributed run's per-joiner table (set in main).
bool ShowJoiners = false;

/// The per-joiner lease accounting a --serve run records under "dist".
/// Timing-class by nature (which joiner got which lease depends on
/// arrival order), which is why it lives outside the deterministic stats.
void renderJoiners(const JsonValue *Dist) {
  const JsonValue *Joiners = Dist ? Dist->find("joiners") : nullptr;
  if (!Joiners || !Joiners->isArray() || Joiners->Arr.empty()) {
    std::printf("  (not a distributed run, or no joiner ever connected)\n");
    return;
  }
  std::vector<std::vector<std::string>> Rows;
  for (size_t I = 0; I != Joiners->Arr.size(); ++I) {
    const JsonValue &J = Joiners->Arr[I];
    bool Reconnect = false;
    J.getBool("reconnect", Reconnect);
    Rows.push_back({withCommas(I), withCommas(numField(&J, "leases")),
                    withCommas(numField(&J, "items")),
                    withCommas(numField(&J, "executions")),
                    withCommas(numField(&J, "steps")),
                    withCommas(numField(&J, "revocations")),
                    Reconnect ? "yes" : "no"});
  }
  printTable({"joiner", "leases", "items", "executions", "steps",
              "revoked", "rejoin"},
             Rows);
}

/// Online schedule-space estimate: the per-bound credited mass plus the
/// Knuth projection of the total execution count, with an ETA at the
/// recorded execution rate. Runs predating the estimator (or with it
/// compiled out) have no mass and say so.
void renderEstimate(const JsonValue *Stats, const JsonValue *Metrics,
                    uint64_t WallMillis) {
  const JsonValue *Mass = Metrics ? Metrics->find("est_mass_per_bound")
                                  : nullptr;
  uint64_t Total = 0;
  if (Mass && Mass->isArray())
    for (const JsonValue &B : Mass->Arr)
      Total += B.U;
  if (Total == 0) {
    std::printf("  (no schedule-space mass credited)\n");
    return;
  }
  std::vector<std::vector<std::string>> Rows;
  for (size_t B = 0; B != Mass->Arr.size(); ++B) {
    uint64_t PpmAtBound = static_cast<uint64_t>(
        static_cast<unsigned __int128>(Mass->Arr[B].U) * 1000000 /
        obs::EstimateOne);
    Rows.push_back({withCommas(B),
                    strFormat("%" PRIu64 ".%04" PRIu64 "%%",
                              PpmAtBound / 10000, PpmAtBound % 10000)});
  }
  printTable({"bound", "mass credited"}, Rows);
  uint64_t Executions = numField(Stats, "executions");
  uint64_t EstTotal = static_cast<uint64_t>(
      static_cast<unsigned __int128>(Executions) * obs::EstimateOne / Total);
  uint64_t Ppm = static_cast<uint64_t>(
      static_cast<unsigned __int128>(Total) * 1000000 / obs::EstimateOne);
  std::printf("  estimated total executions %s (%" PRIu64 ".%02" PRIu64
              "%% explored)\n",
              withCommas(EstTotal).c_str(), Ppm / 10000, Ppm % 10000 / 100);
  if (WallMillis > 0 && EstTotal > Executions) {
    uint64_t RemainingMs = static_cast<uint64_t>(
        static_cast<unsigned __int128>(EstTotal - Executions) * WallMillis /
        std::max<uint64_t>(Executions, 1));
    std::printf("  eta ~%s s at the recorded rate\n",
                withCommas((RemainingMs + 500) / 1000).c_str());
  }
}

/// Modeled-io traffic plus the sleep-set savings histogram — both
/// work-derived, both zero (and skipped) for workloads without the io
/// frontend or with POR off.
void renderIo(const JsonValue *Metrics) {
  const JsonValue *Counters = Metrics ? Metrics->find("counters") : nullptr;
  uint64_t Blocks = numField(Counters, "io_block");
  uint64_t Wakes = numField(Counters, "io_wake");
  uint64_t Spurious = numField(Counters, "io_spurious");
  bool Any = false;
  if (Blocks || Wakes || Spurious) {
    std::printf("  io: blocks %s, wakes %s, spurious wakeups %s\n",
                withCommas(Blocks).c_str(), withCommas(Wakes).c_str(),
                withCommas(Spurious).c_str());
    Any = true;
  }
  const JsonValue *SleepSaved =
      Metrics ? Metrics->find("sleep_saved_per_bound") : nullptr;
  if (SleepSaved && SleepSaved->isArray()) {
    std::vector<std::vector<std::string>> Rows;
    for (size_t B = 0; B != SleepSaved->Arr.size(); ++B)
      if (SleepSaved->Arr[B].U)
        Rows.push_back({withCommas(B), withCommas(SleepSaved->Arr[B].U)});
    if (!Rows.empty()) {
      std::printf("  transitions skipped asleep:\n");
      printTable({"bound", "skipped"}, Rows);
      Any = true;
    }
  }
  if (!Any)
    std::printf("  (no io traffic or sleep-set savings recorded)\n");
}

/// The per-preemption-site profile: which object/operation the search
/// preempted, how many chains that seeded, what it found. Joined with the
/// timing-class per-site bug and new-state counts when present (both are
/// attribution-of-the-claim-winner under --jobs, so they serialize with
/// the timing half).
void renderSites(const JsonValue *Metrics) {
  const JsonValue *Sites = Metrics ? Metrics->find("sites") : nullptr;
  if (!Sites || !Sites->isObject() || Sites->Obj.empty()) {
    std::printf("  (no preemption-site profiles recorded)\n");
    return;
  }
  const JsonValue *Timing = Metrics->find("timing");
  const JsonValue *NewStates = Timing ? Timing->find("site_new_states")
                                      : nullptr;
  const JsonValue *SiteBugs = Timing ? Timing->find("site_bugs") : nullptr;
  auto HistAt = [](const JsonValue *Hist, size_t B) -> uint64_t {
    return Hist && Hist->isArray() && B < Hist->Arr.size() ? Hist->Arr[B].U
                                                           : 0;
  };
  std::vector<std::vector<std::string>> Rows;
  for (const auto &[Name, Site] : Sites->Obj) {
    const JsonValue *Taken = Site.find("taken");
    const JsonValue *Execs = Site.find("execs");
    const JsonValue *Bugs = SiteBugs ? SiteBugs->find(Name) : nullptr;
    const JsonValue *New = NewStates ? NewStates->find(Name) : nullptr;
    size_t MaxBound = 0;
    for (const JsonValue *H : {Taken, Execs, Bugs, New})
      if (H && H->isArray())
        MaxBound = std::max(MaxBound, H->Arr.size());
    for (size_t B = 0; B != MaxBound; ++B) {
      uint64_t T = HistAt(Taken, B), E = HistAt(Execs, B),
               G = HistAt(Bugs, B), N = HistAt(New, B);
      if (T || E || G || N)
        Rows.push_back({Name, withCommas(B), withCommas(T), withCommas(E),
                        withCommas(G), N ? withCommas(N) : "-"});
    }
  }
  printTable({"site", "bound", "taken", "execs", "bugs", "new states"},
             Rows);
}

/// Approximate percentile of a log2 latency histogram: the midpoint of
/// the bucket where the cumulative count crosses \p Q percent of the
/// total (bucket 0 = 0 ns, bucket b covers [2^(b-1), 2^b) ns).
uint64_t histPercentileNs(const JsonValue *Buckets, unsigned Q) {
  if (!Buckets || !Buckets->isArray())
    return 0;
  uint64_t Total = 0;
  for (const JsonValue &B : Buckets->Arr)
    Total += B.U;
  if (Total == 0)
    return 0;
  uint64_t Target = (Total * Q + 99) / 100;
  uint64_t Cum = 0;
  for (size_t B = 0; B != Buckets->Arr.size(); ++B) {
    Cum += Buckets->Arr[B].U;
    if (Cum >= Target)
      return B == 0 ? 0 : (B >= 2 ? 3ull << (B - 2) : 1);
  }
  return 0;
}

void renderPhases(const JsonValue *Metrics) {
  const JsonValue *Timing = Metrics ? Metrics->find("timing") : nullptr;
  const JsonValue *Phases = Timing ? Timing->find("phases_ns") : nullptr;
  if (!Phases || !Phases->isObject() || Phases->Obj.empty()) {
    std::printf("  (no phase timings recorded)\n");
    return;
  }
  // Optional (manifests predating the latency histograms lack it): the
  // per-phase log2 distribution behind the percentile columns.
  const JsonValue *Hist = Timing->find("phase_hist_log2");
  if (Hist && !Hist->isObject())
    Hist = nullptr;
  uint64_t TotalNanos = 0;
  for (const auto &[Name, P] : Phases->Obj)
    TotalNanos += numField(&P, "sum");
  std::vector<std::vector<std::string>> Rows;
  for (const auto &[Name, P] : Phases->Obj) {
    uint64_t Sum = numField(&P, "sum");
    uint64_t Count = numField(&P, "count");
    uint64_t Mean = Count ? (Sum + Count / 2) / Count : 0;
    std::vector<std::string> Row = {Name, withCommas(Count), nsToMs(Sum),
                                    Count ? nsToUs(Mean) : "-",
                                    Count ? nsToUs(numField(&P, "min")) : "-",
                                    Count ? nsToUs(numField(&P, "max")) : "-",
                                    pct(Sum, TotalNanos)};
    if (Hist) {
      // A phase timed outside ScopedPhase may have MinMax observations
      // but no distribution; "-" beats a fabricated 0.0 percentile.
      const JsonValue *Buckets = Hist->find(Name);
      uint64_t HistCount = 0;
      if (Buckets && Buckets->isArray())
        for (const JsonValue &B : Buckets->Arr)
          HistCount += B.U;
      for (unsigned Q : {50u, 90u, 99u})
        Row.push_back(HistCount ? nsToUs(histPercentileNs(Buckets, Q)) : "-");
    }
    Rows.push_back(std::move(Row));
  }
  std::vector<std::string> Header = {"phase",  "scopes", "total ms", "mean us",
                                     "min us", "max us", "share"};
  if (Hist) {
    Header.push_back("~p50 us");
    Header.push_back("~p90 us");
    Header.push_back("~p99 us");
  }
  printTable(Header, Rows);
}

void renderWorkers(const JsonValue *Metrics) {
  const JsonValue *Timing = Metrics ? Metrics->find("timing") : nullptr;
  const JsonValue *Workers = Timing ? Timing->find("workers") : nullptr;
  if (!Workers || !Workers->isArray() || Workers->Arr.empty()) {
    std::printf("  (no worker accounting recorded)\n");
    return;
  }
  std::vector<std::vector<std::string>> Rows;
  uint64_t TotalBusy = 0, TotalIdle = 0;
  for (size_t I = 0; I != Workers->Arr.size(); ++I) {
    uint64_t Busy = numField(&Workers->Arr[I], "busy_ns");
    uint64_t Idle = numField(&Workers->Arr[I], "idle_ns");
    TotalBusy += Busy;
    TotalIdle += Idle;
    Rows.push_back({withCommas(I), nsToMs(Busy), nsToMs(Idle),
                    pct(Busy, Busy + Idle)});
  }
  if (Workers->Arr.size() > 1)
    Rows.push_back({"all", nsToMs(TotalBusy), nsToMs(TotalIdle),
                    pct(TotalBusy, TotalBusy + TotalIdle)});
  printTable({"worker", "busy ms", "idle ms", "utilization"}, Rows);
}

void renderCaches(const JsonValue *Metrics) {
  const JsonValue *Counters = Metrics ? Metrics->find("counters") : nullptr;
  if (!Counters || !Counters->isObject()) {
    std::printf("  (no counters recorded)\n");
    return;
  }
  std::vector<std::vector<std::string>> Rows;
  auto CacheRow = [&](const char *Label, const char *HitKey,
                      const char *MissKey) {
    uint64_t Hits = numField(Counters, HitKey);
    uint64_t Misses = numField(Counters, MissKey);
    Rows.push_back({Label, withCommas(Hits), withCommas(Misses),
                    pct(Hits, Hits + Misses)});
  };
  CacheRow("visited states", "seen_hit", "seen_miss");
  CacheRow("terminal states", "terminal_hit", "terminal_miss");
  CacheRow("work items", "item_hit", "item_miss");
  const JsonValue *Timing = Metrics->find("timing");
  const JsonValue *TCounters = Timing ? Timing->find("counters") : nullptr;
  if (TCounters) {
    uint64_t Attempts = numField(TCounters, "steal_attempts");
    uint64_t Hits = numField(TCounters, "steal_hits");
    Rows.push_back({"deque steals", withCommas(Hits),
                    withCommas(Attempts - std::min(Attempts, Hits)),
                    pct(Hits, Attempts)});
  }
  printTable({"cache", "hits", "misses", "hit rate"}, Rows);
}

void renderWork(const JsonValue *Metrics) {
  const JsonValue *Counters = Metrics ? Metrics->find("counters") : nullptr;
  if (!Counters)
    return;
  std::printf(
      "  chains %s, branched %s, deferred %s, replay steps %s\n",
      withCommas(numField(Counters, "chains")).c_str(),
      withCommas(numField(Counters, "branched_items")).c_str(),
      withCommas(numField(Counters, "deferred_items")).c_str(),
      withCommas(numField(Counters, "replay_steps")).c_str());
  if (const JsonValue *Depth = Metrics->find("replay_depth")) {
    uint64_t MeanMilli = numField(Depth, "mean_milli");
    std::printf("  replay depth: min %s, mean %" PRIu64 ".%03" PRIu64
                ", max %s\n",
                withCommas(numField(Depth, "min")).c_str(), MeanMilli / 1000,
                MeanMilli % 1000,
                withCommas(numField(Depth, "max")).c_str());
  }
}

/// One run's full report. \p Metrics may be null (unmetered run): the
/// coverage table still renders, the metric sections say so.
void renderRun(const std::string &Title, const JsonValue *Stats,
               const JsonValue *Metrics, uint64_t WallMillis,
               uint64_t BugCount, bool Interrupted) {
  std::printf("%s\n", Title.c_str());
  std::printf("  executions %s, steps %s, states %s, wall %s ms%s\n",
              withCommas(numField(Stats, "executions")).c_str(),
              withCommas(numField(Stats, "total_steps")).c_str(),
              withCommas(numField(Stats, "distinct_states")).c_str(),
              withCommas(WallMillis).c_str(),
              Interrupted ? " (interrupted)" : "");
  std::printf("  bugs found: %s\n\n", withCommas(BugCount).c_str());
  std::printf("per-bound coverage:\n");
  renderPerBound(Stats, Metrics);
  std::printf("\nschedule-space estimate:\n");
  renderEstimate(Stats, Metrics, WallMillis);
  if (ShowSites) {
    std::printf("\npreemption-site profiles:\n");
    renderSites(Metrics);
  }
  std::printf("\nmodeled io / sleep sets:\n");
  renderIo(Metrics);
  std::printf("\nphase breakdown:\n");
  renderPhases(Metrics);
  std::printf("\nworker utilization:\n");
  renderWorkers(Metrics);
  std::printf("\ncache effectiveness:\n");
  renderCaches(Metrics);
  std::printf("\nwork-derived totals:\n");
  renderWork(Metrics);
}

size_t bugCount(const JsonValue *Record) {
  const JsonValue *Bugs = Record ? Record->find("bugs") : nullptr;
  return Bugs && Bugs->isArray() ? Bugs->Arr.size() : 0;
}

int reportManifest(const JsonValue &Doc) {
  const JsonValue *Runs = Doc.find("runs");
  if (!Runs || !Runs->isArray()) {
    std::fprintf(stderr, "manifest has no runs array\n");
    return 4;
  }
  if (Runs->Arr.empty()) {
    std::fprintf(stderr, "manifest records no runs\n");
    return 4;
  }
  // The config block records the bound policy only when it is not the
  // default preemption bounding.
  std::string Bound = strField(Doc.find("config"), "bound");
  std::printf("manifest: tool %s, %zu run(s)%s\n\n",
              strField(&Doc, "tool").c_str(), Runs->Arr.size(),
              Bound.empty() ? ""
                            : strFormat(", bound policy %s", Bound.c_str())
                                  .c_str());
  for (size_t I = 0; I != Runs->Arr.size(); ++I) {
    const JsonValue &Run = Runs->Arr[I];
    if (I)
      std::printf("\n%s\n\n", std::string(64, '-').c_str());
    bool InProgress = false;
    Run.getBool("in_progress", InProgress);
    std::string Title = strFormat(
        "run %zu: %s / %s (%s form, strategy %s, jobs %" PRIu64 ")%s", I,
        strField(&Run, "benchmark").c_str(), strField(&Run, "bug").c_str(),
        strField(&Run, "form").c_str(), strField(&Run, "strategy").c_str(),
        numField(&Run, "jobs"), InProgress ? " [in progress]" : "");
    bool Interrupted = false;
    Run.getBool("interrupted", Interrupted);
    renderRun(Title, Run.find("stats"), Run.find("metrics"),
              numField(&Run, "wall_ms"), bugCount(&Run), Interrupted);
    if (ShowJoiners) {
      std::printf("\ndistributed joiners:\n");
      renderJoiners(Run.find("dist"));
    }
  }
  return 0;
}

int reportCheckpoint(const JsonValue &Doc) {
  const JsonValue *Meta = Doc.find("meta");
  const JsonValue *Snap = Doc.find("snapshot");
  if (!Meta || !Snap) {
    std::fprintf(stderr, "checkpoint is missing meta/snapshot\n");
    return 4;
  }
  bool Final = false;
  Snap->getBool("final", Final);
  // Meta carries the policy from format v4 on; older checkpoints (and the
  // default policy) imply preemption bounding, reported as before.
  std::string BoundName = strField(Meta, "bound");
  unsigned VarBound = static_cast<unsigned>(numField(Meta, "var_bound"));
  std::string BoundNote;
  if ((!BoundName.empty() && BoundName != "preemption") || VarBound) {
    unsigned MaxBound = static_cast<unsigned>(
        numField(Meta->find("limits"), "max_preemption_bound"));
    BoundNote = strFormat(
        ", bound %s",
        search::formatBoundSpec({BoundName, MaxBound, VarBound}).c_str());
  }
  std::string Title = strFormat(
      "checkpoint: %s / %s (%s form, strategy %s%s, jobs %" PRIu64 ")%s",
      strField(Meta, "benchmark").c_str(), strField(Meta, "bug").c_str(),
      strField(Meta, "form").c_str(), strField(Meta, "strategy").c_str(),
      BoundNote.c_str(), numField(Meta, "jobs"),
      Final ? " [final]"
            : strFormat(" [resumable at bound %" PRIu64 "]",
                        numField(Snap, "bound"))
                  .c_str());
  renderRun(Title, Snap->find("stats"), Snap->find("metrics"),
            numField(&Doc, "wall_ms"), bugCount(Snap), !Final);
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  FlagSet Flags(
      "icb_report: render an icb_check run's observability data as tables\n"
      "\n"
      "usage: icb_report FILE-OR-DIR\n"
      "  FILE-OR-DIR is an icb_check --json manifest, a --checkpoint-dir\n"
      "  directory, or a checkpoint.json inside one\n"
      "\n"
      "exit codes: 0 report rendered, 2 usage error, 4 unreadable or\n"
      "unparseable input");
  Flags.addBool("sites", false,
                "include the per-preemption-site profile table (which "
                "object/operation each preemption targeted, and what it "
                "found)");
  Flags.addBool("joiners", false,
                "include the distributed run's per-joiner lease table "
                "(icb_check --serve manifests)");
  std::string Error;
  if (!Flags.parse(Argc, Argv, &Error)) {
    std::fprintf(stderr, "%s\n", Error.c_str());
    return 2;
  }
  if (Flags.positional().size() != 1) {
    std::fprintf(stderr, "%s\n",
                 Flags.usage(Argv[0] ? Argv[0] : "icb_report").c_str());
    return 2;
  }
  ShowSites = Flags.getBool("sites");
  ShowJoiners = Flags.getBool("joiners");
  std::string Path = Flags.positional()[0];
  JsonValue Doc;
  if (int Rc = tool::loadJsonDoc(Path, Doc))
    return Rc;
  if (Doc.find("icb_checkpoint"))
    return reportCheckpoint(Doc);
  if (Doc.find("runs"))
    return reportManifest(Doc);
  std::fprintf(stderr, "%s: neither a run manifest nor a checkpoint\n",
               Path.c_str());
  return 4;
}
