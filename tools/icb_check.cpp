//===- tools/icb_check.cpp - Command-line systematic checker ---------------===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The command-line face of the checker, in the spirit of running CHESS
/// over a test binary: pick a benchmark (and optionally one of its seeded
/// bugs) from the registry, pick a search strategy, and systematically
/// explore it. Reports bugs with their minimal preemption counts and can
/// replay the counterexample as a full trace.
///
/// All session machinery (manifest, checkpoints, resume, repro artifacts,
/// replay/minimize, progress, metrics) lives in tools/common/ToolCommon.h
/// and is shared with icb_run; this file contributes only what is
/// registry-specific — benchmark/bug selection and artifact resolution.
///
/// Exit codes (documented in --help): 0 clean, 1 bug found, 2 usage or
/// configuration error, 3 replay mismatch, 4 session I/O failure, 130
/// interrupted with a resumable checkpoint flushed.
///
/// Examples:
///   icb_check --list
///   icb_check --benchmark="Work Stealing Queue" --bug=pop-retry-no-lock
///   icb_check --benchmark=Bluetooth --bug=all --trace
///   icb_check --benchmark=APE --strategy=dfs --max-executions=50000
///   icb_check --benchmark=Bluetooth --bug=stop-vs-work
///             --checkpoint-dir=ckpt --checkpoint-every=2048 --repro-dir=.
///   icb_check --resume=ckpt
///   icb_check --replay=bluetooth-stop-vs-work-assertion-failure.icbrepro
///             --minimize
///   icb_check --benchmark=Bluetooth --bug=stop-vs-work
///             --serve=127.0.0.1:7421          # distributed coordinator
///   icb_check --join=127.0.0.1:7421 --jobs=4  # worker process(es)
///
//===----------------------------------------------------------------------===//

#include "benchmarks/Registry.h"
#include "common/DistDrive.h"
#include "common/ToolCommon.h"
#include <cstdio>
#include <functional>
#include <string>

using namespace icb;
using namespace icb::bench;
using namespace icb::tool;

namespace {

void listBenchmarks() {
  std::printf("benchmarks:\n");
  for (const BenchmarkEntry &E : allBenchmarks()) {
    std::printf("  %-22s %u driver threads, %s form%s\n", E.Name.c_str(),
                E.DriverThreads, E.MakeDefaultRt ? "runtime" : "model VM",
                E.Bugs.empty() ? ", no seeded bugs" : "");
    for (const BugVariant &B : E.Bugs)
      std::printf("      --bug=%-24s (paper bound %u)\n", B.Label.c_str(),
                  B.PaperBound);
  }
}

/// Resolves a repro artifact's (benchmark, bug) names against the
/// registry; false (with a message) when they don't resolve.
bool resolveArtifact(const session::ReproArtifact &A,
                     std::function<rt::TestCase()> &MakeRt,
                     std::function<vm::Program()> &MakeVm) {
  const BenchmarkEntry *Entry = findBenchmark(A.Benchmark);
  if (!Entry) {
    std::fprintf(stderr, "repro names unknown benchmark '%s'\n",
                 A.Benchmark.c_str());
    return false;
  }
  if (A.Bug == "default") {
    MakeRt = Entry->MakeDefaultRt;
    MakeVm = Entry->MakeDefaultVm;
  } else {
    const BugVariant *Found = nullptr;
    for (const BugVariant &B : Entry->Bugs)
      if (B.Label == A.Bug)
        Found = &B;
    if (!Found) {
      std::fprintf(stderr, "benchmark '%s' has no bug '%s'\n",
                   A.Benchmark.c_str(), A.Bug.c_str());
      return false;
    }
    MakeRt = Found->MakeRt;
    MakeVm = Found->MakeVm;
  }
  if (A.Form == "rt" && !MakeRt) {
    std::fprintf(stderr,
                 "repro wants the runtime form, but '%s'/'%s' has none\n",
                 A.Benchmark.c_str(), A.Bug.c_str());
    return false;
  }
  if (A.Form == "vm" && !MakeVm) {
    std::fprintf(stderr,
                 "repro wants the model-VM form, but '%s'/'%s' has none\n",
                 A.Benchmark.c_str(), A.Bug.c_str());
    return false;
  }
  return true;
}

/// Resolves the identity a --join worker adopts from the coordinator's
/// hello_ok meta against the local registry (form availability is checked
/// by the shared join driver).
bool resolveDistIdentity(const session::CheckpointMeta &Meta,
                         std::function<rt::TestCase()> &MakeRt,
                         std::function<vm::Program()> &MakeVm,
                         std::string *Error) {
  const BenchmarkEntry *Entry = findBenchmark(Meta.Benchmark);
  if (!Entry) {
    *Error = "coordinator names unknown benchmark '" + Meta.Benchmark + "'";
    return false;
  }
  if (Meta.Bug == "default") {
    MakeRt = Entry->MakeDefaultRt;
    MakeVm = Entry->MakeDefaultVm;
    return true;
  }
  for (const BugVariant &B : Entry->Bugs)
    if (B.Label == Meta.Bug) {
      MakeRt = B.MakeRt;
      MakeVm = B.MakeVm;
      return true;
    }
  *Error =
      "benchmark '" + Meta.Benchmark + "' has no bug '" + Meta.Bug + "'";
  return false;
}

} // namespace

int main(int Argc, char **Argv) {
  FlagSet Flags(
      std::string("icb_check: systematic concurrency testing with iterative "
                  "context bounding (PLDI'07 reproduction)\n\n") +
      kExitCodesHelp);
  Flags.addBool("list", false, "list benchmarks and seeded bugs, then exit");
  Flags.addString("benchmark", "", "benchmark name from --list");
  Flags.addString("bug", "none",
                  "seeded bug label, 'all', or 'none' (correct variant)");
  Flags.addBool("model", false,
                "prefer the model-VM form when a benchmark has both");
  addSearchFlags(Flags);
  addSessionFlags(Flags);
  Flags.addString("serve", "",
                  "run as the coordinator of a distributed checking "
                  "service, bound to HOST:PORT (port 0 picks an ephemeral "
                  "port; workers attach with --join)");
  Flags.addString("join", "",
                  "join the coordinator at HOST:PORT as a worker process "
                  "(adopts its configuration; --jobs/--shards size the "
                  "local pool)");
  std::string Error;
  if (!Flags.parse(Argc, Argv, &Error)) {
    std::fprintf(stderr, "%s\n", Error.c_str());
    return 2;
  }
  if (Flags.getBool("list")) {
    listBenchmarks();
    return 0;
  }

  if (!Flags.getString("replay").empty()) {
    if (!checkReplayExclusive(Flags,
                              {"benchmark", "bug", "model", "serve", "join"}))
      return 2;
    // --bound here asserts which policy family the artifact must have
    // been recorded under; replayArtifact refuses a mismatch (exit 3).
    std::string BoundName;
    if (Flags.wasSet("bound")) {
      search::BoundSpec Spec;
      if (!search::parseBoundSpec(Flags.getString("bound"), Spec, &Error)) {
        std::fprintf(stderr, "%s\n", Error.c_str());
        return 2;
      }
      BoundName = Spec.Name;
    }
    bool PrintTrace = false;
    std::string TraceFile;
    readTraceFlag(Flags.getString("trace"), PrintTrace, TraceFile);
    if (!TraceFile.empty()) {
      std::fprintf(stderr, "--trace=FILE records a search; --replay takes "
                           "only the bare --trace (print the trace)\n");
      return 2;
    }
    return replayArtifact(Flags.getString("replay"),
                          Flags.getBool("minimize"), PrintTrace, BoundName,
                          resolveArtifact);
  }
  if (Flags.getBool("minimize")) {
    std::fprintf(stderr, "--minimize requires --replay=FILE\n");
    return 2;
  }

  if (!Flags.getString("join").empty()) {
    if (!Flags.getString("serve").empty()) {
      std::fprintf(stderr,
                   "--serve and --join are mutually exclusive: a process "
                   "is either the coordinator or a worker\n");
      return 2;
    }
    if (!checkJoinExclusive(Flags, {"benchmark", "bug", "model"}))
      return 2;
    unsigned Jobs = static_cast<unsigned>(Flags.getInt("jobs"));
    unsigned Shards = static_cast<unsigned>(Flags.getInt("shards"));
    if (Shards != 0 && Jobs == 1) {
      std::fprintf(stderr,
                   "--shards configures the parallel engine; it requires "
                   "--jobs != 1\n");
      return 2;
    }
    return runJoin(Flags.getString("join"), Jobs, Shards,
                   resolveDistIdentity);
  }

  RunConfig Config;
  if (!readRunConfig(Flags, Config))
    return 2;
  Config.PreferModel = Flags.getBool("model");

  std::string BenchName = Flags.getString("benchmark");
  std::string BugLabel = Flags.getString("bug");

  SessionState S;
  std::string ResumeDir;
  if (!readSessionFlags(Flags, S, ResumeDir))
    return 2;

  // Resume: load the checkpoint, refuse explicitly conflicting flags, and
  // let everything unset adopt the recorded configuration (--jobs/--shards
  // may reshape the worker pool; the frontier is topology-neutral).
  session::CheckpointData ResumeData;
  if (!ResumeDir.empty()) {
    int Rc = applyResume(Flags, ResumeDir, ResumeData, Config, S, &BenchName,
                         &BugLabel);
    if (Rc)
      return Rc;
  }

  if (!checkSessionStrategy(Config, S))
    return 2;
  if (!S.CheckpointDir.empty() && BugLabel == "all") {
    std::fprintf(stderr,
                 "--checkpoint-dir/--resume track a single run; use a "
                 "specific --bug, not --bug=all\n");
    return 2;
  }
  const std::string Serve = Flags.getString("serve");
  if (!Serve.empty()) {
    if (Flags.wasSet("jobs") || Flags.wasSet("shards")) {
      std::fprintf(stderr,
                   "--serve executes nothing locally; worker topology "
                   "belongs to the joiners (--join ... --jobs)\n");
      return 2;
    }
    if (Flags.wasSet("trace")) {
      std::fprintf(stderr,
                   "--trace needs a local executor; a --serve coordinator "
                   "has none (replay the repro artifact instead)\n");
      return 2;
    }
    if (BugLabel == "all") {
      std::fprintf(stderr,
                   "--serve hosts a single run; use a specific --bug, not "
                   "--bug=all\n");
      return 2;
    }
  }

  const BenchmarkEntry *Entry = findBenchmark(BenchName);
  if (!Entry) {
    std::fprintf(stderr,
                 "unknown benchmark '%s'; use --list to see them\n",
                 BenchName.c_str());
    return 2;
  }

  session::Manifest Manifest("icb_check");
  if (!S.JsonPath.empty()) {
    using session::JsonValue;
    JsonValue Cfg = configRecord(Config);
    Cfg.set("benchmark", JsonValue::str(BenchName));
    Cfg.set("bug", JsonValue::str(BugLabel));
    Cfg.set("model", JsonValue::boolean(Config.PreferModel));
    if (!ResumeDir.empty())
      Cfg.set("resumed_from", JsonValue::str(ResumeDir));
    Manifest.setConfig(std::move(Cfg));
    S.Json = &Manifest;
    if (!Manifest.writeTo(S.JsonPath, &Error)) {
      std::fprintf(stderr, "%s\n", Error.c_str());
      return 4;
    }
  }

  int Exit = 0;
  bool UsageError = false;
  auto RunVariant = [&](const std::string &Label,
                        const std::function<rt::TestCase()> &MakeRt,
                        const std::function<vm::Program()> &MakeVm) {
    if (UsageError)
      return;
    if (Config.PreferModel && !MakeVm) {
      std::fprintf(stderr, "--model: benchmark '%s' has no model-VM form\n",
                   BenchName.c_str());
      UsageError = true;
      return;
    }
    bool UseVm = MakeVm && (Config.PreferModel || !MakeRt);
    if (UseVm && (Config.EveryAccess || Config.Detector != "vc")) {
      std::fprintf(stderr,
                   "--every-access and --detector apply to the runtime "
                   "form only, not the model VM\n");
      UsageError = true;
      return;
    }
    if (S.Resume && S.Resume->Meta.Form != (UseVm ? "vm" : "rt")) {
      std::fprintf(stderr,
                   "--resume: checkpoint was taken on the %s form, but this "
                   "invocation would run the %s form\n",
                   S.Resume->Meta.Form.c_str(), UseVm ? "vm" : "rt");
      UsageError = true;
      return;
    }
    S.Benchmark = Entry->Name;
    S.Bug = Label;
    int Rc;
    if (!Serve.empty())
      Rc = runServe(Serve, Config, S, UseVm ? "vm" : "rt", Entry->Name);
    else
      Rc = UseVm ? runVm(MakeVm(), Config, S) : runRt(MakeRt(), Config, S);
    Exit = std::max(Exit, Rc);
  };

  if (BugLabel == "none") {
    RunVariant("default", Entry->MakeDefaultRt, Entry->MakeDefaultVm);
  } else if (BugLabel == "all") {
    for (const BugVariant &B : Entry->Bugs)
      RunVariant(B.Label, B.MakeRt, B.MakeVm);
  } else {
    const BugVariant *Found = nullptr;
    for (const BugVariant &B : Entry->Bugs)
      if (B.Label == BugLabel)
        Found = &B;
    if (!Found) {
      std::fprintf(stderr, "benchmark '%s' has no bug '%s'\n",
                   Entry->Name.c_str(), BugLabel.c_str());
      return 2;
    }
    RunVariant(Found->Label, Found->MakeRt, Found->MakeVm);
  }
  return UsageError ? 2 : Exit;
}
