//===- tools/icb_check.cpp - Command-line systematic checker ---------------===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The command-line face of the checker, in the spirit of running CHESS
/// over a test binary: pick a benchmark (and optionally one of its seeded
/// bugs) from the registry, pick a search strategy, and systematically
/// explore it. Reports bugs with their minimal preemption counts and can
/// replay the counterexample as a full trace.
///
/// Examples:
///   icb_check --list
///   icb_check --benchmark="Work Stealing Queue" --bug=pop-retry-no-lock
///   icb_check --benchmark=Bluetooth --bug=all --trace
///   icb_check --benchmark=APE --strategy=dfs --max-executions=50000
///   icb_check --benchmark="Transaction Manager" --bug=commit-upsert
///
//===----------------------------------------------------------------------===//

#include "benchmarks/Registry.h"
#include "rt/Explore.h"
#include "search/Checker.h"
#include "support/CommandLine.h"
#include "support/Format.h"
#include "support/WorkerPool.h"
#include <cstdio>

using namespace icb;
using namespace icb::bench;

namespace {

void listBenchmarks() {
  std::printf("benchmarks:\n");
  for (const BenchmarkEntry &E : allBenchmarks()) {
    std::printf("  %-22s %u driver threads, %s form%s\n", E.Name.c_str(),
                E.DriverThreads, E.MakeDefaultRt ? "runtime" : "model VM",
                E.Bugs.empty() ? ", no seeded bugs" : "");
    for (const BugVariant &B : E.Bugs)
      std::printf("      --bug=%-24s (paper bound %u)\n", B.Label.c_str(),
                  B.PaperBound);
  }
}

struct RunConfig {
  std::string Strategy = "icb";
  unsigned MaxBound = 4;
  uint64_t MaxExecutions = 1u << 20;
  uint64_t Seed = 1;
  unsigned Jobs = 1;
  unsigned Shards = 0;
  bool Trace = false;
  bool StopAtFirst = true;
  bool EveryAccess = false;
  bool PreferModel = false;
  std::string Detector = "vc";
};

/// Runs one runtime-form test; returns 1 when a bug was found.
int runRt(const rt::TestCase &Test, const RunConfig &Config) {
  rt::ExploreOptions Opts;
  Opts.Limits.MaxExecutions = Config.MaxExecutions;
  Opts.Limits.MaxPreemptionBound = Config.MaxBound;
  Opts.Limits.StopAtFirstBug = Config.StopAtFirst;
  Opts.Jobs = Config.Jobs;
  Opts.Shards = Config.Shards;
  if (Config.EveryAccess)
    Opts.Exec.Mode = rt::SchedPointMode::EveryAccess;
  Opts.Exec.Detector = Config.Detector == "goldilocks"
                           ? rt::DetectorKind::Goldilocks
                           : rt::DetectorKind::VectorClock;

  std::unique_ptr<rt::Explorer> Explorer;
  if (Config.Strategy == "icb")
    Explorer = std::make_unique<rt::IcbExplorer>(Opts);
  else if (Config.Strategy == "dfs")
    Explorer = std::make_unique<rt::DfsExplorer>(Opts);
  else if (Config.Strategy.rfind("db:", 0) == 0)
    Explorer = std::make_unique<rt::DfsExplorer>(
        Opts, static_cast<unsigned>(
                  std::strtoul(Config.Strategy.c_str() + 3, nullptr, 10)));
  else if (Config.Strategy == "random")
    Explorer = std::make_unique<rt::RandomExplorer>(Opts, Config.Seed,
                                                    Config.MaxExecutions);
  else {
    std::fprintf(stderr, "unknown strategy '%s' (icb, dfs, db:N, random)\n",
                 Config.Strategy.c_str());
    return 2;
  }

  if (Config.Jobs != 1)
    std::printf("exploring '%s' with %s (%u jobs)...\n", Test.Name.c_str(),
                Explorer->name().c_str(),
                Config.Jobs ? Config.Jobs : WorkerPool::defaultWorkers());
  else
    std::printf("exploring '%s' with %s...\n", Test.Name.c_str(),
                Explorer->name().c_str());
  rt::ExploreResult R = Explorer->explore(Test);
  std::printf("  executions %s, steps %s, visited states %s%s\n",
              withCommas(R.Stats.Executions).c_str(),
              withCommas(R.Stats.TotalSteps).c_str(),
              withCommas(R.Stats.DistinctStates).c_str(),
              R.Stats.Completed ? " (state space exhausted)" : "");
  for (const rt::BoundCoverage &B : R.Stats.PerBound)
    std::printf("  bound %u: executions %s, visited states %s\n", B.Bound,
                withCommas(B.Executions).c_str(),
                withCommas(B.States).c_str());
  if (!R.foundBug()) {
    std::printf("  no bug within preemption bound %u\n", Config.MaxBound);
    return 0;
  }
  for (const rt::RtBug &Bug : R.Bugs)
    std::printf("  BUG %s\n", Bug.str().c_str());
  if (Config.Trace)
    std::printf("\n%s",
                rt::renderBugTrace(Test, *R.simplestBug(), Opts.Exec)
                    .c_str());
  return 1;
}

/// Runs one model-form test; returns 1 when a bug was found.
int runVm(const vm::Program &Prog, const RunConfig &Config) {
  search::SearchOptions Opts;
  if (Config.Strategy == "icb")
    Opts.Kind = search::StrategyKind::Icb;
  else if (Config.Strategy == "dfs")
    Opts.Kind = search::StrategyKind::Dfs;
  else if (Config.Strategy == "random")
    Opts.Kind = search::StrategyKind::Random;
  else if (Config.Strategy.rfind("db:", 0) == 0) {
    Opts.Kind = search::StrategyKind::DepthBoundedDfs;
    Opts.DepthBound = static_cast<unsigned>(
        std::strtoul(Config.Strategy.c_str() + 3, nullptr, 10));
  } else {
    std::fprintf(stderr, "unknown strategy '%s' (icb, dfs, db:N, random)\n",
                 Config.Strategy.c_str());
    return 2;
  }
  Opts.Seed = Config.Seed;
  Opts.RandomExecutions = Config.MaxExecutions;
  Opts.Jobs = Config.Jobs;
  Opts.Shards = Config.Shards;
  Opts.Limits.MaxExecutions = Config.MaxExecutions;
  Opts.Limits.MaxPreemptionBound = Config.MaxBound;
  Opts.Limits.StopAtFirstBug = Config.StopAtFirst;

  if (Config.Jobs != 1)
    std::printf("exploring model '%s' with %s (%u jobs)...\n",
                Prog.Name.c_str(), Config.Strategy.c_str(),
                Config.Jobs ? Config.Jobs : WorkerPool::defaultWorkers());
  else
    std::printf("exploring model '%s' with %s...\n", Prog.Name.c_str(),
                Config.Strategy.c_str());
  search::SearchResult R = search::checkProgram(Prog, Opts);
  std::printf("  executions %s, steps %s, states %s%s\n",
              withCommas(R.Stats.Executions).c_str(),
              withCommas(R.Stats.TotalSteps).c_str(),
              withCommas(R.Stats.DistinctStates).c_str(),
              R.Stats.Completed ? " (state space exhausted)" : "");
  if (!R.foundBug()) {
    std::printf("  no bug within preemption bound %u\n", Config.MaxBound);
    return 0;
  }
  for (const search::Bug &Bug : R.Bugs) {
    std::printf("  BUG %s\n", Bug.str().c_str());
    if (Config.Trace && !Bug.Schedule.empty()) {
      std::printf("    schedule:");
      for (vm::ThreadId Tid : Bug.Schedule)
        std::printf(" %s", Prog.Threads[Tid].Name.c_str());
      std::printf("\n");
    }
  }
  return 1;
}

} // namespace

int main(int Argc, char **Argv) {
  FlagSet Flags("icb_check: systematic concurrency testing with iterative "
                "context bounding (PLDI'07 reproduction)");
  Flags.addBool("list", false, "list benchmarks and seeded bugs, then exit");
  Flags.addString("benchmark", "", "benchmark name from --list");
  Flags.addString("bug", "none",
                  "seeded bug label, 'all', or 'none' (correct variant)");
  Flags.addString("strategy", "icb", "icb, dfs, db:N, or random");
  Flags.addInt("max-bound", 4, "maximum preemption bound (icb)");
  Flags.addInt("max-executions", 1 << 20, "execution budget");
  Flags.addInt("seed", 1, "PRNG seed (random strategy)");
  Flags.addInt("jobs", 1,
               "worker threads for the icb strategy, model or runtime form "
               "(0 = hardware concurrency)");
  Flags.addInt("shards", 0,
               "state-cache shards with --jobs != 1 (0 = auto)");
  Flags.addBool("model", false,
                "prefer the model-VM form when a benchmark has both");
  Flags.addBool("trace", false, "replay and print the counterexample");
  Flags.addBool("keep-going", false, "collect all bugs, not just the first");
  Flags.addBool("every-access", false,
                "scheduling points at every data access (ablation mode)");
  Flags.addString("detector", "vc", "race detector: vc or goldilocks");
  std::string Error;
  if (!Flags.parse(Argc, Argv, &Error)) {
    std::fprintf(stderr, "%s\n", Error.c_str());
    return 2;
  }
  if (Flags.getBool("list")) {
    listBenchmarks();
    return 0;
  }

  const BenchmarkEntry *Entry = findBenchmark(Flags.getString("benchmark"));
  if (!Entry) {
    std::fprintf(stderr,
                 "unknown benchmark '%s'; use --list to see them\n",
                 Flags.getString("benchmark").c_str());
    return 2;
  }

  RunConfig Config;
  Config.Strategy = Flags.getString("strategy");
  Config.MaxBound = static_cast<unsigned>(Flags.getInt("max-bound"));
  Config.MaxExecutions =
      static_cast<uint64_t>(Flags.getInt("max-executions"));
  Config.Seed = static_cast<uint64_t>(Flags.getInt("seed"));
  Config.Trace = Flags.getBool("trace");
  Config.StopAtFirst = !Flags.getBool("keep-going");
  Config.EveryAccess = Flags.getBool("every-access");
  Config.Detector = Flags.getString("detector");
  Config.Jobs = static_cast<unsigned>(Flags.getInt("jobs"));
  Config.Shards = static_cast<unsigned>(Flags.getInt("shards"));
  Config.PreferModel = Flags.getBool("model");

  // Reject flag combinations that have no defined meaning rather than
  // silently ignoring a flag or falling back to another engine.
  if (Config.Jobs != 1 && Config.Strategy != "icb") {
    std::fprintf(stderr,
                 "--jobs applies to the icb strategy only (got --strategy=%s)\n",
                 Config.Strategy.c_str());
    return 2;
  }
  if (Config.Shards != 0 && Config.Jobs == 1) {
    std::fprintf(stderr,
                 "--shards configures the parallel engine; it requires "
                 "--jobs != 1\n");
    return 2;
  }

  std::string BugLabel = Flags.getString("bug");
  int Exit = 0;
  bool UsageError = false;
  auto RunVariant = [&](const std::function<rt::TestCase()> &MakeRt,
                        const std::function<vm::Program()> &MakeVm) {
    if (UsageError)
      return;
    if (Config.PreferModel && !MakeVm) {
      std::fprintf(stderr, "--model: benchmark '%s' has no model-VM form\n",
                   Flags.getString("benchmark").c_str());
      UsageError = true;
      return;
    }
    bool UseVm = MakeVm && (Config.PreferModel || !MakeRt);
    if (UseVm && (Config.EveryAccess || Config.Detector != "vc")) {
      std::fprintf(stderr,
                   "--every-access and --detector apply to the runtime "
                   "form only, not the model VM\n");
      UsageError = true;
      return;
    }
    int Rc = UseVm ? runVm(MakeVm(), Config) : runRt(MakeRt(), Config);
    Exit = std::max(Exit, Rc);
  };

  if (BugLabel == "none") {
    RunVariant(Entry->MakeDefaultRt, Entry->MakeDefaultVm);
  } else if (BugLabel == "all") {
    for (const BugVariant &B : Entry->Bugs)
      RunVariant(B.MakeRt, B.MakeVm);
  } else {
    const BugVariant *Found = nullptr;
    for (const BugVariant &B : Entry->Bugs)
      if (B.Label == BugLabel)
        Found = &B;
    if (!Found) {
      std::fprintf(stderr, "benchmark '%s' has no bug '%s'\n",
                   Entry->Name.c_str(), BugLabel.c_str());
      return 2;
    }
    RunVariant(Found->MakeRt, Found->MakeVm);
  }
  return UsageError ? 2 : Exit;
}
