//===- tools/icb_check.cpp - Command-line systematic checker ---------------===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The command-line face of the checker, in the spirit of running CHESS
/// over a test binary: pick a benchmark (and optionally one of its seeded
/// bugs) from the registry, pick a search strategy, and systematically
/// explore it. Reports bugs with their minimal preemption counts and can
/// replay the counterexample as a full trace.
///
/// Observability:
///   --progress             single-line live ticker on stderr (bound,
///                          executions/s, frontier, ETA); stdout stays
///                          byte-identical with and without it
///   --progress-every=MS    ticker period in milliseconds (implies
///                          --progress)
///   --json=FILE            each finished run record carries a `metrics`
///                          block (deterministic counters + timing); feed
///                          the manifest to tools/icb_report for tables
///
/// Exit codes (documented in --help): 0 clean, 1 bug found, 2 usage or
/// configuration error, 3 replay mismatch, 4 session I/O failure, 130
/// interrupted with a resumable checkpoint flushed.
///
/// The session flags make runs durable and bugs portable:
///   --json=FILE            machine-readable run manifest, updated as the
///                          run progresses (atomic rewrite per bound)
///   --checkpoint-dir=DIR   periodic resumable checkpoints; SIGINT/SIGTERM
///                          flush a final one before exiting
///   --resume=DIR           continue a checkpointed run to results
///                          identical to an uninterrupted run
///   --repro-dir=DIR        write a self-contained .icbrepro artifact per
///                          discovered bug
///   --replay=FILE          re-execute a .icbrepro deterministically and
///                          verify the same bug fires (exit 0 on success)
///   --minimize             with --replay: delta-debug the schedule down
///                          to a 1-minimal directive set and rewrite the
///                          artifact in place
///
/// Examples:
///   icb_check --list
///   icb_check --benchmark="Work Stealing Queue" --bug=pop-retry-no-lock
///   icb_check --benchmark=Bluetooth --bug=all --trace
///   icb_check --benchmark=APE --strategy=dfs --max-executions=50000
///   icb_check --benchmark=Bluetooth --bug=stop-vs-work
///             --checkpoint-dir=ckpt --checkpoint-every=2048 --repro-dir=.
///   icb_check --resume=ckpt
///   icb_check --replay=bluetooth-stop-vs-work-assertion-failure.icbrepro
///             --minimize
///
//===----------------------------------------------------------------------===//

#include "benchmarks/Registry.h"
#include "obs/Metrics.h"
#include "obs/Progress.h"
#include "rt/Explore.h"
#include "search/Checker.h"
#include "session/Checkpoint.h"
#include "session/Manifest.h"
#include "session/Minimize.h"
#include "session/Repro.h"
#include "session/Serial.h"
#include "support/CommandLine.h"
#include "support/Format.h"
#include "support/WorkerPool.h"
#include <chrono>
#include <cstdio>
#include <functional>
#include <memory>

using namespace icb;
using namespace icb::bench;

namespace {

void listBenchmarks() {
  std::printf("benchmarks:\n");
  for (const BenchmarkEntry &E : allBenchmarks()) {
    std::printf("  %-22s %u driver threads, %s form%s\n", E.Name.c_str(),
                E.DriverThreads, E.MakeDefaultRt ? "runtime" : "model VM",
                E.Bugs.empty() ? ", no seeded bugs" : "");
    for (const BugVariant &B : E.Bugs)
      std::printf("      --bug=%-24s (paper bound %u)\n", B.Label.c_str(),
                  B.PaperBound);
  }
}

struct RunConfig {
  std::string Strategy = "icb";
  unsigned MaxBound = 4;
  uint64_t MaxExecutions = 1u << 20;
  uint64_t Seed = 1;
  unsigned Jobs = 1;
  unsigned Shards = 0;
  bool Trace = false;
  bool StopAtFirst = true;
  bool EveryAccess = false;
  bool PreferModel = false;
  std::string Detector = "vc";
  bool Progress = false;
  uint64_t ProgressEveryMillis = 1000;
};

/// Session-wide state shared by the per-variant runs: manifest, repro
/// output, checkpointing, and (for one variant) a loaded resume snapshot.
struct SessionState {
  session::Manifest *Json = nullptr;
  std::string JsonPath;
  std::string ReproDir;
  std::string CheckpointDir;
  uint64_t CheckpointEvery = 0;
  const session::CheckpointData *Resume = nullptr;
  std::string Benchmark; ///< Current run identity (set per variant).
  std::string Bug;       ///< Bug variant label, "default" for none.
};

/// Bridges the engine observer to the optional checkpoint sink and the
/// optional per-bound manifest refresh.
class ToolObserver final : public search::EngineObserver {
public:
  session::CheckpointSink *Sink = nullptr;
  obs::ProgressMeter *Meter = nullptr;
  std::function<void(const search::BoundCoverage &)> BoundHook;

  bool checkpointDue(uint64_t Executions) override {
    return Sink && Sink->checkpointDue(Executions);
  }
  bool stopRequested() override { return Sink && Sink->stopRequested(); }
  void onCheckpoint(const search::EngineSnapshot &Snap) override {
    if (Sink)
      Sink->onCheckpoint(Snap);
  }
  void onBoundComplete(const search::BoundCoverage &Snapshot) override {
    if (BoundHook)
      BoundHook(Snapshot);
  }
  // Polled by every worker on the hot path: the meter's deadline check is
  // a single relaxed atomic load until a tick is actually due.
  bool progressDue() override { return Meter && Meter->due(); }
  void onProgress(const obs::ProgressSample &Sample) override {
    if (Meter)
      Meter->tick(Sample);
  }
};

session::CheckpointMeta makeMeta(const SessionState &S, const RunConfig &C,
                                 const char *Form) {
  session::CheckpointMeta M;
  M.Benchmark = S.Benchmark;
  M.Bug = S.Bug;
  M.Form = Form;
  M.Strategy = C.Strategy;
  M.Jobs = C.Jobs;
  M.Shards = C.Shards;
  M.Seed = C.Seed;
  M.EveryAccess = C.EveryAccess;
  M.Detector = C.Detector;
  M.Limits.MaxExecutions = C.MaxExecutions;
  M.Limits.MaxPreemptionBound = C.MaxBound;
  M.Limits.StopAtFirstBug = C.StopAtFirst;
  return M;
}

/// The manifest record of a run still in flight: identity plus the bounds
/// finished so far.
session::JsonValue partialRunRecord(
    const SessionState &S, const char *Form, const RunConfig &C,
    const std::vector<search::BoundCoverage> &Bounds) {
  using session::JsonValue;
  JsonValue Run = JsonValue::object();
  Run.set("benchmark", JsonValue::str(S.Benchmark));
  Run.set("bug", JsonValue::str(S.Bug));
  Run.set("form", JsonValue::str(Form));
  Run.set("strategy", JsonValue::str(C.Strategy));
  Run.set("jobs", JsonValue::number(C.Jobs));
  Run.set("in_progress", JsonValue::boolean(true));
  JsonValue Arr = JsonValue::array();
  for (const search::BoundCoverage &B : Bounds) {
    JsonValue O = JsonValue::object();
    O.set("bound", JsonValue::number(B.Bound));
    O.set("states", JsonValue::number(B.States));
    O.set("executions", JsonValue::number(B.Executions));
    Arr.Arr.push_back(std::move(O));
  }
  Run.set("bounds_done", std::move(Arr));
  return Run;
}

/// Per-run session plumbing shared by the runtime and model forms: opens
/// the manifest record, installs signal handling + checkpoint sink when
/// requested, and finalizes everything (repros, manifest, exit code)
/// after the search returns.
class RunSession {
public:
  RunSession(SessionState &S, const RunConfig &Config, const char *Form)
      : S(S), Config(Config), Form(Form),
        PriorWall(S.Resume ? S.Resume->WallMillis : 0) {
    if (S.Json) {
      RunIdx = S.Json->addRun(partialRunRecord(S, Form, Config, {}));
      S.Json->writeTo(S.JsonPath, nullptr);
      Obs.BoundHook = [this](const search::BoundCoverage &B) {
        Bounds.push_back(B);
        this->S.Json->updateRun(
            RunIdx, partialRunRecord(this->S, this->Form, this->Config,
                                     Bounds));
        this->S.Json->writeTo(this->S.JsonPath, nullptr);
      };
    }
    if (!S.CheckpointDir.empty()) {
      std::string Err;
      if (!session::ensureDir(S.CheckpointDir, &Err)) {
        std::fprintf(stderr, "%s\n", Err.c_str());
        Failed = true;
        return;
      }
      Guard = std::make_unique<session::SignalGuard>();
      Sink = std::make_unique<session::CheckpointSink>(
          S.CheckpointDir, S.CheckpointEvery, makeMeta(S, Config, Form),
          S.Resume ? S.Resume->Snap.Stats.Executions : 0, PriorWall);
      Obs.Sink = Sink.get();
    }
    if (Config.Progress) {
      Meter = std::make_unique<obs::ProgressMeter>(Config.ProgressEveryMillis);
      Obs.Meter = Meter.get();
    }
  }

  bool failed() const { return Failed; }
  search::EngineObserver *observer() {
    return (S.Json || Sink || Meter) ? &Obs : nullptr;
  }
  obs::MetricsRegistry *metrics() { return &Metrics; }
  /// The engine-level snapshot to resume from (null when none, or when the
  /// checkpoint describes a finished run — see finishedResume()).
  const search::EngineSnapshot *resumeSnapshot() const {
    return (S.Resume && !S.Resume->Snap.Final) ? &S.Resume->Snap : nullptr;
  }
  /// Non-null when --resume points at a finished run's final checkpoint:
  /// its results are re-emitted without searching again.
  const search::EngineSnapshot *finishedResume() const {
    return (S.Resume && S.Resume->Snap.Final) ? &S.Resume->Snap : nullptr;
  }

  uint64_t wallMillis() const {
    if (Sink)
      return Sink->wallMillis();
    auto Elapsed = std::chrono::steady_clock::now() - Start;
    return PriorWall +
           static_cast<uint64_t>(
               std::chrono::duration_cast<std::chrono::milliseconds>(Elapsed)
                   .count());
  }

  /// Repro artifacts, final manifest record, checkpoint error surfacing.
  /// Returns the session part of the exit code (0, 4, or 130).
  int finish(const search::SearchResult &R) {
    int Rc = 0;
    if (Meter) {
      obs::ProgressSample Last;
      Last.Bound = R.Stats.PerBound.empty() ? 0 : R.Stats.PerBound.back().Bound;
      Last.MaxBound = Config.MaxBound;
      Last.Executions = R.Stats.Executions;
      Last.TotalSteps = R.Stats.TotalSteps;
      Last.States = R.Stats.DistinctStates;
      Last.Bugs = R.Bugs.size();
      Meter->finish(Last);
    }
    std::vector<std::string> Repros;
    if (!S.ReproDir.empty() && !R.Bugs.empty()) {
      std::string Err;
      if (!session::ensureDir(S.ReproDir, &Err)) {
        std::fprintf(stderr, "%s\n", Err.c_str());
        Rc = 4;
      } else {
        for (const search::Bug &B : R.Bugs) {
          session::ReproArtifact A;
          A.Benchmark = S.Benchmark;
          A.Bug = S.Bug;
          A.Form = Form;
          A.EveryAccess = Config.EveryAccess;
          A.Detector = Config.Detector;
          A.Found = B;
          std::string Path = S.ReproDir + "/" + session::reproFileName(A);
          if (!session::saveRepro(Path, A, &Err)) {
            std::fprintf(stderr, "repro write failed: %s\n", Err.c_str());
            Rc = 4;
          } else {
            std::printf("  repro written: %s\n", Path.c_str());
            Repros.push_back(Path);
          }
        }
      }
    }
    if (S.Json) {
      using session::JsonValue;
      JsonValue Run = session::runRecord(S.Benchmark, S.Bug, Form,
                                         Config.Strategy, Config.Jobs, R,
                                         wallMillis());
      JsonValue Arr = JsonValue::array();
      for (const std::string &P : Repros)
        Arr.Arr.push_back(JsonValue::str(P));
      Run.set("repros", std::move(Arr));
      obs::MetricsSnapshot MSnap = Metrics.snapshot();
      if (!MSnap.empty())
        Run.set("metrics", session::metricsToJson(MSnap));
      S.Json->updateRun(RunIdx, std::move(Run));
      std::string Err;
      if (!S.Json->writeTo(S.JsonPath, &Err)) {
        std::fprintf(stderr, "manifest write failed: %s\n", Err.c_str());
        Rc = 4;
      }
    }
    if (Sink && !Sink->ok()) {
      std::fprintf(stderr, "checkpoint write failed: %s\n",
                   Sink->error().c_str());
      Rc = 4;
    }
    if (R.Interrupted) {
      std::printf("  interrupted; resumable checkpoint in %s\n",
                  S.CheckpointDir.c_str());
      Rc = std::max(Rc, 130);
    }
    return Rc;
  }

private:
  SessionState &S;
  const RunConfig &Config;
  const char *Form;
  ToolObserver Obs;
  std::unique_ptr<session::SignalGuard> Guard;
  std::unique_ptr<session::CheckpointSink> Sink;
  /// One registry per run: each variant's manifest record carries its own
  /// metrics. Under ICB_NO_METRICS every shard stays zero, the snapshot
  /// reports empty(), and the manifest block is simply omitted.
  obs::MetricsRegistry Metrics;
  std::unique_ptr<obs::ProgressMeter> Meter;
  std::vector<search::BoundCoverage> Bounds;
  size_t RunIdx = 0;
  std::chrono::steady_clock::time_point Start =
      std::chrono::steady_clock::now();
  uint64_t PriorWall = 0;
  bool Failed = false;
};

/// Runs one runtime-form test; returns 1 when a bug was found, 130 when
/// interrupted, 2 on a configuration error, 4 on a session I/O failure.
int runRt(const rt::TestCase &Test, const RunConfig &Config,
          SessionState &S) {
  rt::ExploreOptions Opts;
  Opts.Limits.MaxExecutions = Config.MaxExecutions;
  Opts.Limits.MaxPreemptionBound = Config.MaxBound;
  Opts.Limits.StopAtFirstBug = Config.StopAtFirst;
  Opts.Jobs = Config.Jobs;
  Opts.Shards = Config.Shards;
  if (Config.EveryAccess)
    Opts.Exec.Mode = rt::SchedPointMode::EveryAccess;
  Opts.Exec.Detector = Config.Detector == "goldilocks"
                           ? rt::DetectorKind::Goldilocks
                           : rt::DetectorKind::VectorClock;

  RunSession Sess(S, Config, "rt");
  if (Sess.failed())
    return 4;
  Opts.Observer = Sess.observer();
  Opts.Resume = Sess.resumeSnapshot();
  Opts.Metrics = Sess.metrics();

  std::unique_ptr<rt::Explorer> Explorer;
  if (Config.Strategy == "icb")
    Explorer = std::make_unique<rt::IcbExplorer>(Opts);
  else if (Config.Strategy == "dfs")
    Explorer = std::make_unique<rt::DfsExplorer>(Opts);
  else if (Config.Strategy.rfind("db:", 0) == 0)
    Explorer = std::make_unique<rt::DfsExplorer>(
        Opts, static_cast<unsigned>(
                  std::strtoul(Config.Strategy.c_str() + 3, nullptr, 10)));
  else if (Config.Strategy == "random")
    Explorer = std::make_unique<rt::RandomExplorer>(Opts, Config.Seed,
                                                    Config.MaxExecutions);
  else {
    std::fprintf(stderr, "unknown strategy '%s' (icb, dfs, db:N, random)\n",
                 Config.Strategy.c_str());
    return 2;
  }

  if (Config.Jobs != 1)
    std::printf("exploring '%s' with %s (%u jobs)...\n", Test.Name.c_str(),
                Explorer->name().c_str(),
                Config.Jobs ? Config.Jobs : WorkerPool::defaultWorkers());
  else
    std::printf("exploring '%s' with %s...\n", Test.Name.c_str(),
                Explorer->name().c_str());

  rt::ExploreResult R;
  if (const search::EngineSnapshot *Done = Sess.finishedResume()) {
    std::printf("  checkpoint describes a finished run; re-emitting its "
                "results\n");
    R.Stats = Done->Stats;
    R.Bugs = Done->Bugs;
  } else {
    R = Explorer->explore(Test);
  }
  std::printf("  executions %s, steps %s, visited states %s%s\n",
              withCommas(R.Stats.Executions).c_str(),
              withCommas(R.Stats.TotalSteps).c_str(),
              withCommas(R.Stats.DistinctStates).c_str(),
              R.Stats.Completed ? " (state space exhausted)" : "");
  for (const rt::BoundCoverage &B : R.Stats.PerBound)
    std::printf("  bound %u: executions %s, visited states %s\n", B.Bound,
                withCommas(B.Executions).c_str(),
                withCommas(B.States).c_str());
  for (const rt::RtBug &Bug : R.Bugs)
    std::printf("  BUG %s\n", Bug.str().c_str());
  if (R.Bugs.empty() && !R.Interrupted)
    std::printf("  no bug within preemption bound %u\n", Config.MaxBound);
  if (Config.Trace && R.foundBug())
    std::printf("\n%s",
                rt::renderBugTrace(Test, *R.simplestBug(), Opts.Exec)
                    .c_str());
  int Rc = Sess.finish(R);
  return std::max(Rc, R.foundBug() ? 1 : 0);
}

/// Runs one model-form test; same exit-code scheme as runRt.
int runVm(const vm::Program &Prog, const RunConfig &Config,
          SessionState &S) {
  search::SearchOptions Opts;
  if (Config.Strategy == "icb")
    Opts.Kind = search::StrategyKind::Icb;
  else if (Config.Strategy == "dfs")
    Opts.Kind = search::StrategyKind::Dfs;
  else if (Config.Strategy == "random")
    Opts.Kind = search::StrategyKind::Random;
  else if (Config.Strategy.rfind("db:", 0) == 0) {
    Opts.Kind = search::StrategyKind::DepthBoundedDfs;
    Opts.DepthBound = static_cast<unsigned>(
        std::strtoul(Config.Strategy.c_str() + 3, nullptr, 10));
  } else {
    std::fprintf(stderr, "unknown strategy '%s' (icb, dfs, db:N, random)\n",
                 Config.Strategy.c_str());
    return 2;
  }
  Opts.Seed = Config.Seed;
  Opts.RandomExecutions = Config.MaxExecutions;
  Opts.Jobs = Config.Jobs;
  Opts.Shards = Config.Shards;
  Opts.Limits.MaxExecutions = Config.MaxExecutions;
  Opts.Limits.MaxPreemptionBound = Config.MaxBound;
  Opts.Limits.StopAtFirstBug = Config.StopAtFirst;

  RunSession Sess(S, Config, "vm");
  if (Sess.failed())
    return 4;
  Opts.Observer = Sess.observer();
  Opts.Resume = Sess.resumeSnapshot();
  Opts.Metrics = Sess.metrics();

  if (Config.Jobs != 1)
    std::printf("exploring model '%s' with %s (%u jobs)...\n",
                Prog.Name.c_str(), Config.Strategy.c_str(),
                Config.Jobs ? Config.Jobs : WorkerPool::defaultWorkers());
  else
    std::printf("exploring model '%s' with %s...\n", Prog.Name.c_str(),
                Config.Strategy.c_str());

  search::SearchResult R;
  if (const search::EngineSnapshot *Done = Sess.finishedResume()) {
    std::printf("  checkpoint describes a finished run; re-emitting its "
                "results\n");
    R.Stats = Done->Stats;
    R.Bugs = Done->Bugs;
  } else {
    R = search::checkProgram(Prog, Opts);
  }
  std::printf("  executions %s, steps %s, states %s%s\n",
              withCommas(R.Stats.Executions).c_str(),
              withCommas(R.Stats.TotalSteps).c_str(),
              withCommas(R.Stats.DistinctStates).c_str(),
              R.Stats.Completed ? " (state space exhausted)" : "");
  for (const search::Bug &Bug : R.Bugs) {
    std::printf("  BUG %s\n", Bug.str().c_str());
    if (Config.Trace && !Bug.Schedule.empty()) {
      std::printf("    schedule:");
      for (vm::ThreadId Tid : Bug.Schedule)
        std::printf(" %s", Prog.Threads[Tid].Name.c_str());
      std::printf("\n");
    }
  }
  if (R.Bugs.empty() && !R.Interrupted)
    std::printf("  no bug within preemption bound %u\n", Config.MaxBound);
  int Rc = Sess.finish(R);
  return std::max(Rc, R.foundBug() ? 1 : 0);
}

/// Resolves a repro artifact's (benchmark, bug) names against the
/// registry; false (with a message) when they don't resolve.
bool resolveArtifact(const session::ReproArtifact &A,
                     std::function<rt::TestCase()> &MakeRt,
                     std::function<vm::Program()> &MakeVm) {
  const BenchmarkEntry *Entry = findBenchmark(A.Benchmark);
  if (!Entry) {
    std::fprintf(stderr, "repro names unknown benchmark '%s'\n",
                 A.Benchmark.c_str());
    return false;
  }
  if (A.Bug == "default") {
    MakeRt = Entry->MakeDefaultRt;
    MakeVm = Entry->MakeDefaultVm;
  } else {
    const BugVariant *Found = nullptr;
    for (const BugVariant &B : Entry->Bugs)
      if (B.Label == A.Bug)
        Found = &B;
    if (!Found) {
      std::fprintf(stderr, "benchmark '%s' has no bug '%s'\n",
                   A.Benchmark.c_str(), A.Bug.c_str());
      return false;
    }
    MakeRt = Found->MakeRt;
    MakeVm = Found->MakeVm;
  }
  if (A.Form == "rt" && !MakeRt) {
    std::fprintf(stderr,
                 "repro wants the runtime form, but '%s'/'%s' has none\n",
                 A.Benchmark.c_str(), A.Bug.c_str());
    return false;
  }
  if (A.Form == "vm" && !MakeVm) {
    std::fprintf(stderr,
                 "repro wants the model-VM form, but '%s'/'%s' has none\n",
                 A.Benchmark.c_str(), A.Bug.c_str());
    return false;
  }
  return true;
}

/// The --replay[=--minimize] entry: deterministic re-execution of one
/// .icbrepro. Exit 0 iff the recorded bug reproduces (and, with
/// --minimize, the artifact was rewritten); 3 when the bug fails to
/// reproduce, 2 when the artifact names an unknown benchmark/bug, 4 when
/// the file cannot be read or rewritten.
int replayArtifact(const std::string &Path, bool Minimize, bool Trace) {
  session::ReproArtifact A;
  std::string Error;
  if (!session::loadRepro(Path, A, &Error)) {
    std::fprintf(stderr, "%s\n", Error.c_str());
    return 4;
  }
  std::function<rt::TestCase()> MakeRt;
  std::function<vm::Program()> MakeVm;
  if (!resolveArtifact(A, MakeRt, MakeVm))
    return 2;

  std::printf("replaying %s (%s / %s, %s form)...\n", Path.c_str(),
              A.Benchmark.c_str(), A.Bug.c_str(), A.Form.c_str());
  session::ReplayOutcome Outcome;
  if (A.Form == "rt")
    Outcome = session::replayArtifactRt(A, MakeRt());
  else
    Outcome = session::replayArtifactVm(A, MakeVm());
  std::printf("  %s\n", Outcome.Detail.c_str());
  if (!Outcome.Reproduced)
    return 3;
  if (Trace && A.Form == "rt")
    std::printf("\n%s",
                rt::renderBugTrace(MakeRt(), Outcome.Observed,
                                   session::reproExecOptions(A))
                    .c_str());

  if (!Minimize)
    return 0;

  session::MinimizeResult M = A.Form == "rt"
                                  ? session::minimizeRt(A, MakeRt())
                                  : session::minimizeVm(A, MakeVm());
  if (!M.Reproduced) {
    // Cannot happen after a successful replay unless the test is
    // nondeterministic; report it rather than rewriting the artifact.
    std::fprintf(stderr,
                 "minimization could not re-reproduce the bug (%u replays)\n",
                 M.Replays);
    return 3;
  }
  std::printf("  minimized in %u replays: directives %u -> %u, preemptions "
              "%u -> %u, steps %s -> %s\n",
              M.Replays, M.DirectivesBefore, M.DirectivesAfter,
              M.PreemptionsBefore, M.PreemptionsAfter,
              withCommas(A.Found.Steps).c_str(),
              withCommas(M.Minimized.Steps).c_str());
  if (!M.Improved) {
    std::printf("  schedule was already minimal; artifact unchanged\n");
    return 0;
  }
  A.Found = M.Minimized;
  if (!session::saveRepro(Path, A, &Error)) {
    std::fprintf(stderr, "%s\n", Error.c_str());
    return 4;
  }
  std::printf("  minimized artifact rewritten: %s\n", Path.c_str());
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  FlagSet Flags(
      "icb_check: systematic concurrency testing with iterative "
      "context bounding (PLDI'07 reproduction)\n"
      "\n"
      "exit codes:\n"
      "  0    clean: no bug within the explored bound, or the replayed /\n"
      "       minimized artifact reproduced its bug\n"
      "  1    a bug was found by the search\n"
      "  2    usage or configuration error\n"
      "  3    replay mismatch: the recorded bug did not reproduce\n"
      "  4    session I/O failure (manifest, checkpoint, or repro file)\n"
      "  130  interrupted; a resumable checkpoint was flushed first");
  Flags.addBool("list", false, "list benchmarks and seeded bugs, then exit");
  Flags.addString("benchmark", "", "benchmark name from --list");
  Flags.addString("bug", "none",
                  "seeded bug label, 'all', or 'none' (correct variant)");
  Flags.addString("strategy", "icb", "icb, dfs, db:N, or random");
  Flags.addInt("max-bound", 4, "maximum preemption bound (icb)");
  Flags.addInt("max-executions", 1 << 20, "execution budget");
  Flags.addInt("seed", 1, "PRNG seed (random strategy)");
  Flags.addInt("jobs", 1,
               "worker threads for the icb strategy, model or runtime form "
               "(0 = hardware concurrency)");
  Flags.addInt("shards", 0,
               "state-cache shards with --jobs != 1 (0 = auto)");
  Flags.addBool("model", false,
                "prefer the model-VM form when a benchmark has both");
  Flags.addBool("trace", false, "replay and print the counterexample");
  Flags.addBool("keep-going", false, "collect all bugs, not just the first");
  Flags.addBool("every-access", false,
                "scheduling points at every data access (ablation mode)");
  Flags.addString("detector", "vc", "race detector: vc or goldilocks");
  Flags.addBool("progress", false,
                "live single-line progress ticker on stderr");
  Flags.addInt("progress-every", 1000,
               "progress ticker period in milliseconds (implies --progress)");
  Flags.addString("json", "", "write a machine-readable run manifest here");
  Flags.addString("checkpoint-dir", "",
                  "write resumable checkpoints into this directory (icb)");
  Flags.addInt("checkpoint-every", 4096,
               "checkpoint period in executions (0 = only on signal/finish)");
  Flags.addString("resume", "",
                  "resume the checkpointed run in this directory");
  Flags.addString("replay", "",
                  "replay a .icbrepro artifact and verify its bug fires");
  Flags.addBool("minimize", false,
                "with --replay: delta-debug the schedule, rewrite the "
                "artifact in place");
  Flags.addString("repro-dir", "",
                  "write a .icbrepro artifact per discovered bug here");
  std::string Error;
  if (!Flags.parse(Argc, Argv, &Error)) {
    std::fprintf(stderr, "%s\n", Error.c_str());
    return 2;
  }
  if (Flags.getBool("list")) {
    listBenchmarks();
    return 0;
  }

  // --replay is a mode of its own: a deterministic re-execution, not a
  // search. Any search/session flag alongside it is incoherent.
  if (!Flags.getString("replay").empty()) {
    static const char *const Incompatible[] = {
        "benchmark", "bug",          "strategy",        "max-bound",
        "max-executions", "seed",    "jobs",            "shards",
        "model",     "keep-going",   "every-access",    "detector",
        "json",      "checkpoint-dir", "checkpoint-every", "resume",
        "repro-dir", "progress",     "progress-every",
    };
    for (const char *Name : Incompatible)
      if (Flags.wasSet(Name)) {
        std::fprintf(stderr,
                     "--replay re-executes a recorded artifact; --%s "
                     "cannot be combined with it\n",
                     Name);
        return 2;
      }
    return replayArtifact(Flags.getString("replay"),
                          Flags.getBool("minimize"), Flags.getBool("trace"));
  }
  if (Flags.getBool("minimize")) {
    std::fprintf(stderr, "--minimize requires --replay=FILE\n");
    return 2;
  }

  RunConfig Config;
  Config.Strategy = Flags.getString("strategy");
  Config.MaxBound = static_cast<unsigned>(Flags.getInt("max-bound"));
  Config.MaxExecutions =
      static_cast<uint64_t>(Flags.getInt("max-executions"));
  Config.Seed = static_cast<uint64_t>(Flags.getInt("seed"));
  Config.Trace = Flags.getBool("trace");
  Config.StopAtFirst = !Flags.getBool("keep-going");
  Config.EveryAccess = Flags.getBool("every-access");
  Config.Detector = Flags.getString("detector");
  Config.Jobs = static_cast<unsigned>(Flags.getInt("jobs"));
  Config.Shards = static_cast<unsigned>(Flags.getInt("shards"));
  Config.PreferModel = Flags.getBool("model");
  Config.Progress =
      Flags.getBool("progress") || Flags.wasSet("progress-every");
  Config.ProgressEveryMillis =
      static_cast<uint64_t>(Flags.getInt("progress-every"));
  if (Config.Progress && Flags.getInt("progress-every") <= 0) {
    std::fprintf(stderr, "--progress-every must be positive (milliseconds)\n");
    return 2;
  }

  std::string BenchName = Flags.getString("benchmark");
  std::string BugLabel = Flags.getString("bug");

  // Reject flag combinations that have no defined meaning rather than
  // silently ignoring a flag or falling back to another engine.
  if (Config.Jobs != 1 && Config.Strategy != "icb") {
    std::fprintf(stderr,
                 "--jobs applies to the icb strategy only (got --strategy=%s)\n",
                 Config.Strategy.c_str());
    return 2;
  }
  if (Config.Shards != 0 && Config.Jobs == 1) {
    std::fprintf(stderr,
                 "--shards configures the parallel engine; it requires "
                 "--jobs != 1\n");
    return 2;
  }
  if (!Flags.getString("checkpoint-dir").empty() &&
      !Flags.getString("resume").empty()) {
    std::fprintf(stderr,
                 "--resume continues checkpointing into its own directory; "
                 "do not also pass --checkpoint-dir\n");
    return 2;
  }
  if (Flags.wasSet("checkpoint-every") &&
      Flags.getString("checkpoint-dir").empty() &&
      Flags.getString("resume").empty()) {
    std::fprintf(stderr,
                 "--checkpoint-every requires --checkpoint-dir or --resume\n");
    return 2;
  }

  // Resume: load the checkpoint, refuse explicitly conflicting flags, and
  // let everything unset adopt the recorded configuration.
  session::CheckpointData ResumeData;
  SessionState S;
  std::string ResumeDir = Flags.getString("resume");
  if (!ResumeDir.empty()) {
    if (!session::loadCheckpoint(session::checkpointPath(ResumeDir),
                                 ResumeData, &Error)) {
      std::fprintf(stderr, "--resume: %s\n", Error.c_str());
      return 4;
    }
    const session::CheckpointMeta &M = ResumeData.Meta;
    bool Bad = false;
    auto Conflict = [&](const char *Flag, const std::string &Cli,
                        const std::string &Recorded) {
      std::fprintf(stderr,
                   "--resume: --%s=%s conflicts with the checkpoint's "
                   "recorded %s=%s\n",
                   Flag, Cli.c_str(), Flag, Recorded.c_str());
      Bad = true;
    };
    auto CheckStr = [&](const char *Flag, const std::string &Cli,
                        const std::string &Recorded) {
      if (Flags.wasSet(Flag) && Cli != Recorded)
        Conflict(Flag, Cli, Recorded);
    };
    auto CheckNum = [&](const char *Flag, uint64_t Cli, uint64_t Recorded) {
      if (Flags.wasSet(Flag) && Cli != Recorded)
        Conflict(Flag, std::to_string(Cli), std::to_string(Recorded));
    };
    auto CheckBool = [&](const char *Flag, bool Cli, bool Recorded) {
      if (Flags.wasSet(Flag) && Cli != Recorded)
        Conflict(Flag, Cli ? "true" : "false", Recorded ? "true" : "false");
    };
    CheckStr("benchmark", BenchName, M.Benchmark);
    CheckStr("bug", BugLabel == "none" ? "default" : BugLabel, M.Bug);
    CheckStr("strategy", Config.Strategy, M.Strategy);
    CheckStr("detector", Config.Detector, M.Detector);
    CheckNum("jobs", Config.Jobs, M.Jobs);
    CheckNum("shards", Config.Shards, M.Shards);
    CheckNum("seed", Config.Seed, M.Seed);
    CheckNum("max-bound", Config.MaxBound, M.Limits.MaxPreemptionBound);
    CheckNum("max-executions", Config.MaxExecutions,
             M.Limits.MaxExecutions);
    CheckBool("every-access", Config.EveryAccess, M.EveryAccess);
    CheckBool("keep-going", !Config.StopAtFirst, !M.Limits.StopAtFirstBug);
    CheckBool("model", Config.PreferModel, M.Form == "vm");
    if (Bad)
      return 2;

    Config.Strategy = M.Strategy;
    Config.Detector = M.Detector;
    Config.Jobs = M.Jobs;
    Config.Shards = M.Shards;
    Config.Seed = M.Seed;
    Config.MaxBound = M.Limits.MaxPreemptionBound;
    Config.MaxExecutions = M.Limits.MaxExecutions;
    Config.EveryAccess = M.EveryAccess;
    Config.StopAtFirst = M.Limits.StopAtFirstBug;
    Config.PreferModel = M.Form == "vm";
    BenchName = M.Benchmark;
    BugLabel = M.Bug == "default" ? "none" : M.Bug;
    S.Resume = &ResumeData;
    S.CheckpointDir = ResumeDir;
  } else {
    S.CheckpointDir = Flags.getString("checkpoint-dir");
  }
  S.CheckpointEvery =
      static_cast<uint64_t>(Flags.getInt("checkpoint-every"));
  S.ReproDir = Flags.getString("repro-dir");
  S.JsonPath = Flags.getString("json");

  if (!S.CheckpointDir.empty() && Config.Strategy != "icb") {
    std::fprintf(stderr,
                 "--checkpoint-dir/--resume apply to the icb strategy only "
                 "(got --strategy=%s)\n",
                 Config.Strategy.c_str());
    return 2;
  }
  if (!S.CheckpointDir.empty() && BugLabel == "all") {
    std::fprintf(stderr,
                 "--checkpoint-dir/--resume track a single run; use a "
                 "specific --bug, not --bug=all\n");
    return 2;
  }

  const BenchmarkEntry *Entry = findBenchmark(BenchName);
  if (!Entry) {
    std::fprintf(stderr,
                 "unknown benchmark '%s'; use --list to see them\n",
                 BenchName.c_str());
    return 2;
  }

  session::Manifest Manifest("icb_check");
  if (!S.JsonPath.empty()) {
    using session::JsonValue;
    JsonValue Cfg = JsonValue::object();
    Cfg.set("benchmark", JsonValue::str(BenchName));
    Cfg.set("bug", JsonValue::str(BugLabel));
    Cfg.set("strategy", JsonValue::str(Config.Strategy));
    Cfg.set("max_bound", JsonValue::number(Config.MaxBound));
    Cfg.set("max_executions", JsonValue::number(Config.MaxExecutions));
    Cfg.set("seed", JsonValue::number(Config.Seed));
    Cfg.set("jobs", JsonValue::number(Config.Jobs));
    Cfg.set("shards", JsonValue::number(Config.Shards));
    Cfg.set("model", JsonValue::boolean(Config.PreferModel));
    Cfg.set("every_access", JsonValue::boolean(Config.EveryAccess));
    Cfg.set("detector", JsonValue::str(Config.Detector));
    Cfg.set("keep_going", JsonValue::boolean(!Config.StopAtFirst));
    if (!ResumeDir.empty())
      Cfg.set("resumed_from", JsonValue::str(ResumeDir));
    Manifest.setConfig(std::move(Cfg));
    S.Json = &Manifest;
    if (!Manifest.writeTo(S.JsonPath, &Error)) {
      std::fprintf(stderr, "%s\n", Error.c_str());
      return 4;
    }
  }

  int Exit = 0;
  bool UsageError = false;
  auto RunVariant = [&](const std::string &Label,
                        const std::function<rt::TestCase()> &MakeRt,
                        const std::function<vm::Program()> &MakeVm) {
    if (UsageError)
      return;
    if (Config.PreferModel && !MakeVm) {
      std::fprintf(stderr, "--model: benchmark '%s' has no model-VM form\n",
                   BenchName.c_str());
      UsageError = true;
      return;
    }
    bool UseVm = MakeVm && (Config.PreferModel || !MakeRt);
    if (UseVm && (Config.EveryAccess || Config.Detector != "vc")) {
      std::fprintf(stderr,
                   "--every-access and --detector apply to the runtime "
                   "form only, not the model VM\n");
      UsageError = true;
      return;
    }
    if (S.Resume && S.Resume->Meta.Form != (UseVm ? "vm" : "rt")) {
      std::fprintf(stderr,
                   "--resume: checkpoint was taken on the %s form, but this "
                   "invocation would run the %s form\n",
                   S.Resume->Meta.Form.c_str(), UseVm ? "vm" : "rt");
      UsageError = true;
      return;
    }
    S.Benchmark = Entry->Name;
    S.Bug = Label;
    int Rc = UseVm ? runVm(MakeVm(), Config, S) : runRt(MakeRt(), Config, S);
    Exit = std::max(Exit, Rc);
  };

  if (BugLabel == "none") {
    RunVariant("default", Entry->MakeDefaultRt, Entry->MakeDefaultVm);
  } else if (BugLabel == "all") {
    for (const BugVariant &B : Entry->Bugs)
      RunVariant(B.Label, B.MakeRt, B.MakeVm);
  } else {
    const BugVariant *Found = nullptr;
    for (const BugVariant &B : Entry->Bugs)
      if (B.Label == BugLabel)
        Found = &B;
    if (!Found) {
      std::fprintf(stderr, "benchmark '%s' has no bug '%s'\n",
                   Entry->Name.c_str(), BugLabel.c_str());
      return 2;
    }
    RunVariant(Found->Label, Found->MakeRt, Found->MakeVm);
  }
  return UsageError ? 2 : Exit;
}
