#!/usr/bin/env python3
"""Tool-level CLI contract tests for icb_check / icb_report.

Covers the observability surface the unit tests cannot reach: the exact
--metrics-csv column set and the final row flushed on a bug-found early
exit, --trace=FILE Perfetto export (valid JSON, flow-id consistency),
icb_report's estimator / per-site tables, and — when pointed at an
ICB_NO_METRICS binary — the hard usage error for --trace=FILE.

Usage: cli_test.py <icb_check> <icb_report>
"""

import fcntl
import json
import os
import socket
import struct
import subprocess
import sys
import tempfile
import threading

CHECK, REPORT = sys.argv[1], sys.argv[2]

EXPECTED_CSV_HEADER = [
    "bound", "max_bound", "executions", "total_steps", "states",
    "frontier_remaining", "deferred_next", "bugs", "est_total_executions",
    "explored_ppm",
]


def run(*args, **kw):
    kw.setdefault("timeout", 60)
    return subprocess.run(list(args), capture_output=True, text=True, **kw)


def wire_frame(obj):
    """One dist-protocol frame: 4-byte LE length + session-dialect JSON."""
    payload = json.dumps(obj).encode()
    return struct.pack("<I", len(payload)) + payload


def dist_contract(tmp):
    """--serve/--join flag contract and the joiner's refusal handling."""
    bench = ["--benchmark=Bluetooth", "--bug=stop-vs-work check-then-act"]

    # A process is either the coordinator or a worker, never both.
    r = run(CHECK, "--serve=127.0.0.1:0", "--join=127.0.0.1:1", *bench)
    assert r.returncode == 2, (r.returncode, r.stderr)
    assert "mutually exclusive" in r.stderr, r.stderr

    # --replay is a local-executor mode; both service roles reject it.
    missing = os.path.join(tmp, "missing.icbrepro")
    for role in ("--serve=127.0.0.1:0", "--join=127.0.0.1:1"):
        r = run(CHECK, "--replay=" + missing, role)
        assert r.returncode == 2, (role, r.returncode, r.stderr)

    # A joiner adopts the coordinator's configuration: flags that would
    # contradict the adoption are usage errors.
    for flag in ("--max-bound=3", "--benchmark=Bluetooth", "--por",
                 "--json=" + os.path.join(tmp, "x.json")):
        r = run(CHECK, "--join=127.0.0.1:1", flag)
        assert r.returncode == 2, (flag, r.returncode, r.stderr)
        assert "cannot be combined" in r.stderr, (flag, r.stderr)

    # A coordinator executes nothing locally; worker topology flags
    # belong on the joiners.
    r = run(CHECK, "--serve=127.0.0.1:0", "--jobs=2", *bench)
    assert r.returncode == 2, (r.returncode, r.stderr)

    # Unparseable bind/connect addresses are usage errors (exit 2).
    r = run(CHECK, "--serve=notanaddress", *bench)
    assert r.returncode == 2, (r.returncode, r.stderr)
    r = run(CHECK, "--join=notanaddress")
    assert r.returncode == 2, (r.returncode, r.stderr)

    # A joiner that cannot reach any coordinator exhausts its capped
    # reconnect attempts and exits with the I/O code (4).
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    dead_port = probe.getsockname()[1]
    probe.close()
    env = dict(os.environ, ICB_DIST_CONNECT_ATTEMPTS="1")
    r = subprocess.run(
        [CHECK, "--join=127.0.0.1:%d" % dead_port],
        capture_output=True, text=True, timeout=60, env=env)
    assert r.returncode == 4, (r.returncode, r.stderr)

    # A coordinator that refuses the hello (version mismatch) must make
    # the joiner exit 2 and surface the reason. The fake coordinator
    # only speaks the refusal leg, which is version-skew-equivalent.
    srv = socket.socket()
    srv.bind(("127.0.0.1", 0))
    srv.listen(1)
    port = srv.getsockname()[1]

    def refuse_one():
        conn, _ = srv.accept()
        conn.recv(4096)  # The joiner's hello; contents are irrelevant.
        conn.sendall(wire_frame(
            {"kind": "refuse",
             "reason": "version mismatch: coordinator speaks protocol 999"}))
        conn.close()

    t = threading.Thread(target=refuse_one)
    t.start()
    r = run(CHECK, "--join=127.0.0.1:%d" % port)
    t.join()
    srv.close()
    assert r.returncode == 2, (r.returncode, r.stderr)
    assert "version mismatch" in r.stderr, r.stderr

    # Two runs sharing one --checkpoint-dir: the advisory lock makes the
    # loser exit 4 instead of corrupting the winner's resume state.
    ckdir = os.path.join(tmp, "locked-ckpt")
    os.mkdir(ckdir)
    lockfile = open(os.path.join(ckdir, ".lock"), "w")
    fcntl.flock(lockfile, fcntl.LOCK_EX | fcntl.LOCK_NB)
    r = run(CHECK, *bench, "--max-executions=5",
            "--checkpoint-dir=" + ckdir)
    assert r.returncode == 4, (r.returncode, r.stderr)
    assert "lock" in r.stderr.lower(), r.stderr
    lockfile.close()


def main():
    tmp = tempfile.mkdtemp(prefix="icb-cli-")
    csv = os.path.join(tmp, "metrics.csv")
    manifest = os.path.join(tmp, "run.json")
    trace = os.path.join(tmp, "trace.json")

    # Probe for the telemetry instrumentation: an ICB_NO_METRICS binary
    # must reject --trace=FILE outright as a usage error.
    probe = run(CHECK, "--benchmark=Bluetooth", "--max-executions=1",
                "--trace=" + trace)
    no_metrics = probe.returncode == 2
    if no_metrics:
        assert "ICB_NO_METRICS" in probe.stderr, probe.stderr

    # --trace=FILE records a search; combining it with --replay is a
    # usage error before any artifact is touched (in every build).
    r = run(CHECK, "--replay=" + os.path.join(tmp, "missing.icbrepro"),
            "--trace=" + trace)
    assert r.returncode == 2, (r.returncode, r.stderr)

    # The distributed checking service's CLI contract.
    dist_contract(tmp)

    # A bug-found early exit must still flush the final metrics-csv row.
    extra = [] if no_metrics else ["--trace=" + trace, "--json=" + manifest]
    r = run(CHECK, "--benchmark=Bluetooth",
            "--bug=stop-vs-work check-then-act", "--max-bound=4",
            "--metrics-csv=" + csv, *extra)
    assert r.returncode == 1, (r.returncode, r.stderr)
    with open(csv) as f:
        rows = [line.strip() for line in f if line.strip()]
    assert rows[0].split(",") == EXPECTED_CSV_HEADER, rows[0]
    assert len(rows) >= 2, "no data row flushed on the bug-found exit"
    final = dict(zip(EXPECTED_CSV_HEADER, rows[-1].split(",")))
    assert int(final["executions"]) > 0, final
    assert int(final["bugs"]) >= 1, final

    if no_metrics:
        print("ok (no-metrics build: --trace=FILE rejected, csv intact)")
        return

    assert int(final["est_total_executions"]) > 0, final
    assert 0 < int(final["explored_ppm"]) <= 1_000_000, final

    # The exported trace is valid JSON in the Chrome trace-event schema,
    # and every flow finish ("f") refers to an emitted flow start ("s").
    with open(trace) as f:
        events = json.load(f)["traceEvents"]
    assert events, "trace is empty"
    for e in events:
        assert "ph" in e and "pid" in e and "tid" in e, e
    sids = {e["id"] for e in events if e["ph"] == "s"}
    fids = {e["id"] for e in events if e["ph"] == "f"}
    assert fids <= sids, "orphan flow ids: %r" % (fids - sids)
    assert any(e["ph"] == "X" for e in events), "no phase slices"
    assert any(e["ph"] == "i" for e in events), "no instants"

    # icb_report renders the estimator, site, and io tables.
    rep = run(REPORT, manifest, "--sites")
    assert rep.returncode == 0, rep.stderr
    for needle in ("schedule-space estimate", "preemption-site profiles",
                   "modeled io / sleep sets"):
        assert needle in rep.stdout, "missing report section: " + needle

    print("ok")


if __name__ == "__main__":
    main()
