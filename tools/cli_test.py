#!/usr/bin/env python3
"""Tool-level CLI contract tests for icb_check / icb_report.

Covers the observability surface the unit tests cannot reach: the exact
--metrics-csv column set and the final row flushed on a bug-found early
exit, --trace=FILE Perfetto export (valid JSON, flow-id consistency),
icb_report's estimator / per-site tables, and — when pointed at an
ICB_NO_METRICS binary — the hard usage error for --trace=FILE.

Usage: cli_test.py <icb_check> <icb_report>
"""

import json
import os
import subprocess
import sys
import tempfile

CHECK, REPORT = sys.argv[1], sys.argv[2]

EXPECTED_CSV_HEADER = [
    "bound", "max_bound", "executions", "total_steps", "states",
    "frontier_remaining", "deferred_next", "bugs", "est_total_executions",
    "explored_ppm",
]


def run(*args):
    return subprocess.run(list(args), capture_output=True, text=True)


def main():
    tmp = tempfile.mkdtemp(prefix="icb-cli-")
    csv = os.path.join(tmp, "metrics.csv")
    manifest = os.path.join(tmp, "run.json")
    trace = os.path.join(tmp, "trace.json")

    # Probe for the telemetry instrumentation: an ICB_NO_METRICS binary
    # must reject --trace=FILE outright as a usage error.
    probe = run(CHECK, "--benchmark=Bluetooth", "--max-executions=1",
                "--trace=" + trace)
    no_metrics = probe.returncode == 2
    if no_metrics:
        assert "ICB_NO_METRICS" in probe.stderr, probe.stderr

    # --trace=FILE records a search; combining it with --replay is a
    # usage error before any artifact is touched (in every build).
    r = run(CHECK, "--replay=" + os.path.join(tmp, "missing.icbrepro"),
            "--trace=" + trace)
    assert r.returncode == 2, (r.returncode, r.stderr)

    # A bug-found early exit must still flush the final metrics-csv row.
    extra = [] if no_metrics else ["--trace=" + trace, "--json=" + manifest]
    r = run(CHECK, "--benchmark=Bluetooth",
            "--bug=stop-vs-work check-then-act", "--max-bound=4",
            "--metrics-csv=" + csv, *extra)
    assert r.returncode == 1, (r.returncode, r.stderr)
    with open(csv) as f:
        rows = [line.strip() for line in f if line.strip()]
    assert rows[0].split(",") == EXPECTED_CSV_HEADER, rows[0]
    assert len(rows) >= 2, "no data row flushed on the bug-found exit"
    final = dict(zip(EXPECTED_CSV_HEADER, rows[-1].split(",")))
    assert int(final["executions"]) > 0, final
    assert int(final["bugs"]) >= 1, final

    if no_metrics:
        print("ok (no-metrics build: --trace=FILE rejected, csv intact)")
        return

    assert int(final["est_total_executions"]) > 0, final
    assert 0 < int(final["explored_ppm"]) <= 1_000_000, final

    # The exported trace is valid JSON in the Chrome trace-event schema,
    # and every flow finish ("f") refers to an emitted flow start ("s").
    with open(trace) as f:
        events = json.load(f)["traceEvents"]
    assert events, "trace is empty"
    for e in events:
        assert "ph" in e and "pid" in e and "tid" in e, e
    sids = {e["id"] for e in events if e["ph"] == "s"}
    fids = {e["id"] for e in events if e["ph"] == "f"}
    assert fids <= sids, "orphan flow ids: %r" % (fids - sids)
    assert any(e["ph"] == "X" for e in events), "no phase slices"
    assert any(e["ph"] == "i" for e in events), "no instants"

    # icb_report renders the estimator, site, and io tables.
    rep = run(REPORT, manifest, "--sites")
    assert rep.returncode == 0, rep.stderr
    for needle in ("schedule-space estimate", "preemption-site profiles",
                   "modeled io / sleep sets"):
        assert needle in rep.stdout, "missing report section: " + needle

    print("ok")


if __name__ == "__main__":
    main()
