//===- tools/common/ToolCommon.h - Shared checker-CLI plumbing --*- C++ -*-===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The command-line core shared by icb_check, icb_run, and icb_report:
/// the search/session flag set, the RunSession plumbing (manifest,
/// checkpointing, progress, repro artifacts), the runtime- and model-form
/// run drivers, resume loading with conflict checking, and the
/// replay/minimize driver parameterized over artifact resolution.
///
/// Tools differ only in where tests come from — the benchmark registry
/// (icb_check), a dlopen'ed pthreads module (icb_run), or a recorded
/// manifest (icb_report) — so everything downstream of test resolution
/// lives here and the tools stay thin.
///
//===----------------------------------------------------------------------===//

#ifndef ICB_TOOLS_COMMON_TOOLCOMMON_H
#define ICB_TOOLS_COMMON_TOOLCOMMON_H

#include "obs/Metrics.h"
#include "obs/Progress.h"
#include "rt/Explore.h"
#include "search/BoundPolicy.h"
#include "search/Checker.h"
#include "session/Checkpoint.h"
#include "session/DirLock.h"
#include "session/Json.h"
#include "session/Manifest.h"
#include "session/Repro.h"
#include "support/CommandLine.h"
#include <chrono>
#include <cstdio>
#include <functional>
#include <initializer_list>
#include <memory>
#include <string>
#include <vector>

namespace icb::tool {

/// The exit-code contract shared by the checking tools; append to the
/// tool-specific first line when building the --help banner.
extern const char kExitCodesHelp[];

/// One run's search configuration, read from the shared flag set.
struct RunConfig {
  std::string Strategy = "icb";
  unsigned MaxBound = 4;
  uint64_t MaxExecutions = 1u << 20;
  uint64_t Seed = 1;
  unsigned Jobs = 1;
  unsigned Shards = 0;
  bool Trace = false;
  /// --trace=FILE: export a Perfetto/Chrome trace of the search itself
  /// here after the run (empty = off). Distinct from bare --trace, which
  /// replays and prints the counterexample.
  std::string TraceFile;
  bool StopAtFirst = true;
  bool EveryAccess = false;
  /// Bounded POR (sleep sets composed with the preemption bound). On by
  /// default for the icb strategy; forced off for every other strategy.
  bool Por = true;
  bool PreferModel = false;
  std::string Detector = "vc";
  /// Bound policy family for the icb strategy ("preemption", "delay",
  /// "thread"); MaxBound carries the K of --bound=NAME:K and VarBound the
  /// optional variable bound of the thread policy.
  std::string BoundName = "preemption";
  unsigned VarBound = 0;
  bool Progress = false;
  uint64_t ProgressEveryMillis = 1000;
  /// Append one CSV row per progress tick to this file (empty = off).
  std::string MetricsCsv;
};

/// Session-wide state shared by the per-variant runs: manifest, repro
/// output, checkpointing, and (for one variant) a loaded resume snapshot.
struct SessionState {
  session::Manifest *Json = nullptr;
  std::string JsonPath;
  std::string ReproDir;
  std::string CheckpointDir;
  uint64_t CheckpointEvery = 0;
  const session::CheckpointData *Resume = nullptr;
  std::string Benchmark; ///< Current run identity (set per variant).
  std::string Bug;       ///< Bug variant label, "default" for none.
};

/// Bridges the engine observer to the optional checkpoint sink and the
/// optional per-bound manifest refresh.
class ToolObserver final : public search::EngineObserver {
public:
  session::CheckpointSink *Sink = nullptr;
  /// Cadence source for progress sampling. Rendering to stderr is gated
  /// separately (RenderMeter) so --metrics-csv can drive the sampling
  /// clock without implying the ticker.
  obs::ProgressMeter *Meter = nullptr;
  bool RenderMeter = true;
  std::function<void(const search::BoundCoverage &)> BoundHook;
  /// Fires on every claimed progress tick, before rendering (--metrics-csv).
  std::function<void(const obs::ProgressSample &)> SampleHook;

  bool checkpointDue(uint64_t Executions) override {
    return Sink && Sink->checkpointDue(Executions);
  }
  bool stopRequested() override { return Sink && Sink->stopRequested(); }
  void onCheckpoint(const search::EngineSnapshot &Snap) override {
    if (Sink)
      Sink->onCheckpoint(Snap);
  }
  void onBoundComplete(const search::BoundCoverage &Snapshot) override {
    if (BoundHook)
      BoundHook(Snapshot);
  }
  // Polled by every worker on the hot path: the meter's deadline check is
  // a single relaxed atomic load until a tick is actually due.
  bool progressDue() override { return Meter && Meter->due(); }
  void onProgress(const obs::ProgressSample &Sample) override {
    if (SampleHook)
      SampleHook(Sample);
    if (Meter && RenderMeter)
      Meter->tick(Sample);
  }
};

/// Per-run session plumbing shared by the runtime and model forms: opens
/// the manifest record, installs signal handling + checkpoint sink when
/// requested, and finalizes everything (repros, manifest, exit code)
/// after the search returns.
class RunSession {
public:
  RunSession(SessionState &S, const RunConfig &Config, const char *Form);
  ~RunSession();

  bool failed() const { return Failed; }
  search::EngineObserver *observer() {
    return (S.Json || Sink || Meter) ? &Obs : nullptr;
  }
  obs::MetricsRegistry *metrics() { return &Metrics; }
  /// The engine-level snapshot to resume from (null when none, or when the
  /// checkpoint describes a finished run — see finishedResume()).
  const search::EngineSnapshot *resumeSnapshot() const {
    return (S.Resume && !S.Resume->Snap.Final) ? &S.Resume->Snap : nullptr;
  }
  /// Non-null when --resume points at a finished run's final checkpoint:
  /// its results are re-emitted without searching again.
  const search::EngineSnapshot *finishedResume() const {
    return (S.Resume && S.Resume->Snap.Final) ? &S.Resume->Snap : nullptr;
  }

  uint64_t wallMillis() const;

  /// Attaches a distributed-run block (per-joiner lease accounting) to the
  /// run's manifest record; written by finish(). Timing-class by nature —
  /// the CI determinism diffs drop it alongside metrics.timing.
  void setDistBlock(session::JsonValue Block) {
    Dist = std::move(Block);
    HaveDist = true;
  }

  /// Repro artifacts, final manifest record, checkpoint error surfacing.
  /// Returns the session part of the exit code (0, 4, or 130).
  int finish(const search::SearchResult &R);

private:
  void csvRow(const obs::ProgressSample &P);

  SessionState &S;
  const RunConfig &Config;
  const char *Form;
  ToolObserver Obs;
  /// Advisory exclusive lock on the checkpoint directory: two concurrent
  /// runs (plain or --serve) writing one dir would corrupt each other's
  /// resume state, so the loser exits 4 instead.
  session::DirLock Lock;
  std::unique_ptr<session::SignalGuard> Guard;
  std::unique_ptr<session::CheckpointSink> Sink;
  /// One registry per run: each variant's manifest record carries its own
  /// metrics. Under ICB_NO_METRICS every shard stays zero, the snapshot
  /// reports empty(), and the manifest block is simply omitted.
  obs::MetricsRegistry Metrics;
  std::unique_ptr<obs::ProgressMeter> Meter;
  std::FILE *Csv = nullptr; ///< --metrics-csv sink (append mode).
  session::JsonValue Dist;  ///< --serve: per-joiner manifest block.
  bool HaveDist = false;
  std::vector<search::BoundCoverage> Bounds;
  size_t RunIdx = 0;
  std::chrono::steady_clock::time_point Start =
      std::chrono::steady_clock::now();
  uint64_t PriorWall = 0;
  bool Failed = false;
};

//===----------------------------------------------------------------------===//
// Flag registration / parsing
//===----------------------------------------------------------------------===//

/// Registers the search flags every checking tool shares: strategy,
/// bounds, budget, parallelism, trace, detector, progress.
void addSearchFlags(FlagSet &Flags);

/// Registers the session flags: manifest, checkpointing, resume, replay,
/// minimize, repro output.
void addSessionFlags(FlagSet &Flags);

/// Splits the optional-value --trace flag's text: bare `--trace` (and
/// on/true/1) asks for the counterexample printout, `--trace=FILE` names
/// a Perfetto trace output path, off/false/0/absent means neither.
void readTraceFlag(const std::string &Text, bool &PrintTrace,
                   std::string &TraceFile);

/// Reads the search flags into \p Config and validates the combinations
/// that have no defined meaning (--jobs off-icb, --shards without --jobs,
/// non-positive --progress-every). Returns false after printing a usage
/// error (exit 2).
bool readRunConfig(const FlagSet &Flags, RunConfig &Config);

/// Reads the session flags into \p S, validates the checkpoint/resume
/// combinations, and reports --resume's directory through \p ResumeDir
/// (empty when not resuming; the caller then runs applyResume). Returns
/// false after printing a usage error (exit 2).
bool readSessionFlags(const FlagSet &Flags, SessionState &S,
                      std::string &ResumeDir);

/// --replay is a mode of its own: a deterministic re-execution, not a
/// search. Rejects any search/session flag set alongside it; tools pass
/// their identity flags (e.g. icb_check's benchmark/bug/model) in
/// \p ExtraFlags. Returns false after printing a usage error (exit 2).
bool checkReplayExclusive(const FlagSet &Flags,
                          std::initializer_list<const char *> ExtraFlags);

/// --checkpoint-dir/--resume are implemented for the icb strategy only.
/// Returns false after printing a usage error (exit 2).
bool checkSessionStrategy(const RunConfig &Config, const SessionState &S);

/// --join adopts the coordinator's recorded configuration the way
/// --resume adopts a checkpoint's, so every search/session flag except
/// the joiner's local topology (--jobs/--shards) is rejected alongside
/// it; tools pass their identity flags in \p ExtraFlags. Returns false
/// after printing a usage error (exit 2).
bool checkJoinExclusive(const FlagSet &Flags,
                        std::initializer_list<const char *> ExtraFlags);

/// The checkpoint meta describing one run's identity and configuration —
/// written into checkpoints and sent to distributed joiners in the
/// hello_ok handshake (dist/Protocol.h).
session::CheckpointMeta makeRunMeta(const SessionState &S,
                                    const RunConfig &C, const char *Form);

/// The post-search stdout block shared by the local drivers and the
/// distributed coordinator: the executions/steps/states line, the
/// per-bound lines (runtime form only), one BUG line per bug (\p PerBug,
/// when set, prints a bug's extras directly after its line), and the
/// no-bug-within-bound line. Keeping one printer is what lets the CI diff
/// a --serve run's stdout against a --jobs 1 run's.
void printResultSummary(const search::SearchResult &R,
                        const RunConfig &Config, bool RtForm,
                        const std::function<void(const search::Bug &)>
                            &PerBug = nullptr);

/// Loads \p ResumeDir's checkpoint into \p Data, rejects CLI flags that
/// conflict with the recorded run, adopts the recorded values for
/// everything left unset, and points \p S at the loaded data.
///
/// --jobs/--shards are deliberately exempt from conflict checking: the
/// frontier is worker-topology-neutral, so a run killed at --jobs 4 may
/// resume at --jobs 1 and vice versa. An explicit flag wins; otherwise
/// the recorded topology is adopted (shards reset to auto when the new
/// job count is 1).
///
/// \p BenchName/\p BugLabel are the tool's identity strings, checked
/// against the recorded identity and overwritten with it; pass nullptr
/// when the tool has no such flags (icb_run checks the module name
/// itself). Returns 0 on success, 2 on conflict, 4 when the checkpoint
/// cannot be loaded.
int applyResume(const FlagSet &Flags, const std::string &ResumeDir,
                session::CheckpointData &Data, RunConfig &Config,
                SessionState &S, std::string *BenchName,
                std::string *BugLabel);

/// The manifest `config` block fields common to all tools; the caller
/// adds its identity fields (benchmark/bug or module/test) on top.
session::JsonValue configRecord(const RunConfig &Config);

//===----------------------------------------------------------------------===//
// Run + replay drivers
//===----------------------------------------------------------------------===//

/// Runs one runtime-form test; returns 1 when a bug was found, 130 when
/// interrupted, 2 on a configuration error, 4 on a session I/O failure.
int runRt(const rt::TestCase &Test, const RunConfig &Config, SessionState &S);

/// Runs one model-form test; same exit-code scheme as runRt.
int runVm(const vm::Program &Prog, const RunConfig &Config, SessionState &S);

/// Resolves a loaded artifact's identity to runnable forms. Returns false
/// (after printing a message) when the artifact does not resolve; leave a
/// form's factory empty when the tool cannot produce it.
using ArtifactResolver =
    std::function<bool(const session::ReproArtifact &,
                       std::function<rt::TestCase()> &MakeRt,
                       std::function<vm::Program()> &MakeVm)>;

/// The --replay[ --minimize] entry: deterministic re-execution of one
/// .icbrepro, resolving its identity through \p Resolve. \p BoundName is
/// the policy family an explicit --bound requested (empty = replay under
/// whatever the artifact recorded); a mismatch is a replay failure (3),
/// since the recorded schedule was found under a different budget. Exit 0
/// iff the recorded bug reproduces (and, with --minimize, the artifact
/// was rewritten); 3 when the bug fails to reproduce, 2 when the artifact
/// does not resolve, 4 when the file cannot be read or rewritten.
int replayArtifact(const std::string &Path, bool Minimize, bool Trace,
                   const std::string &BoundName,
                   const ArtifactResolver &Resolve);

//===----------------------------------------------------------------------===//
// Report-side JSON helpers (icb_report)
//===----------------------------------------------------------------------===//

/// Missing-tolerant field reads used when rendering recorded runs.
uint64_t jsonNum(const session::JsonValue *V, const char *Key);
std::string jsonStr(const session::JsonValue *V, const char *Key);

/// FILE-OR-DIR convenience: a directory argument resolves to the
/// checkpoint.json inside it. Parses the file into \p Doc; returns 0, or
/// 4 (after printing a message) when it cannot be read or parsed.
int loadJsonDoc(std::string Path, session::JsonValue &Doc);

} // namespace icb::tool

#endif // ICB_TOOLS_COMMON_TOOLCOMMON_H
