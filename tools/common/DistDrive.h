//===- tools/common/DistDrive.h - --serve/--join CLI drivers ----*- C++ -*-===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The tool-side face of the distributed checking service (src/dist/):
/// runServe hosts the frontier-owning coordinator behind the ordinary
/// RunSession plumbing (manifest, checkpoints, resume, progress), and
/// runJoin runs the joiner protocol loop with a lease runner that drives
/// the real engines — a fresh engine, fresh caches, and a fresh metrics
/// registry per lease, so every delta the coordinator merges is
/// lease-local and the merge stays commutative.
///
/// Environment knobs (mainly for tests/CI, which want short timeouts):
///   ICB_DIST_HEARTBEAT_MS      coordinator-advertised heartbeat period
///   ICB_DIST_REVOKE_MS         silent-joiner revocation timeout
///   ICB_DIST_LEASE_ITEMS       work items per drain lease
///   ICB_DIST_CONNECT_ATTEMPTS  joiner reconnect attempts before exit 4
///
//===----------------------------------------------------------------------===//

#ifndef ICB_TOOLS_COMMON_DISTDRIVE_H
#define ICB_TOOLS_COMMON_DISTDRIVE_H

#include "common/ToolCommon.h"
#include <functional>
#include <string>

namespace icb::tool {

/// Resolves the coordinator's adopted run identity (benchmark/bug/form
/// from the hello_ok meta) to runnable test factories. Returns false with
/// \p Error set when the identity does not resolve on this joiner — the
/// joiner refuses and exits 2, mirroring the version-mismatch path.
using DistResolver = std::function<bool(
    const session::CheckpointMeta &Meta,
    std::function<rt::TestCase()> &MakeRt,
    std::function<vm::Program()> &MakeVm, std::string *Error)>;

/// `--serve=HOST:PORT`: bind the coordinator, serve leases until the
/// frontier drains, and report exactly what a local run would (the header
/// line differs; everything after it is printed by the shared summary
/// printer, which is what the CI stdout diff against `--jobs 1` relies
/// on). \p DisplayName is the benchmark/test name for the header. Exit
/// codes follow the tool contract: 1 bug found, 2 bad address or
/// configuration, 4 session I/O failure, 130 interrupted.
int runServe(const std::string &Bind, const RunConfig &Config,
             SessionState &S, const char *Form,
             const std::string &DisplayName);

/// `--join=HOST:PORT`: connect (with capped-backoff retries), adopt the
/// coordinator's configuration, and execute leases with \p Jobs local
/// workers until the coordinator sends done. Exit 0 on done, 2 on
/// refusal/config mismatch, 4 when the connection attempts are exhausted.
int runJoin(const std::string &Addr, unsigned Jobs, unsigned Shards,
            const DistResolver &Resolve);

} // namespace icb::tool

#endif // ICB_TOOLS_COMMON_DISTDRIVE_H
