//===- tools/common/ToolCommon.cpp - Shared checker-CLI plumbing ----------===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//

#include "common/ToolCommon.h"
#include "session/Minimize.h"
#include "session/Serial.h"
#include "support/Format.h"
#include "support/WorkerPool.h"
#include <cstdio>
#include <cstdlib>
#include <sys/stat.h>

using namespace icb;
using namespace icb::tool;

const char icb::tool::kExitCodesHelp[] =
    "exit codes:\n"
    "  0    clean: no bug within the explored bound, or the replayed /\n"
    "       minimized artifact reproduced its bug\n"
    "  1    a bug was found by the search\n"
    "  2    usage or configuration error\n"
    "  3    replay mismatch: the recorded bug did not reproduce\n"
    "  4    session I/O failure (manifest, checkpoint, or repro file)\n"
    "  130  interrupted; a resumable checkpoint was flushed first";

session::CheckpointMeta icb::tool::makeRunMeta(const SessionState &S,
                                               const RunConfig &C,
                                               const char *Form) {
  session::CheckpointMeta M;
  M.Benchmark = S.Benchmark;
  M.Bug = S.Bug;
  M.Form = Form;
  M.Strategy = C.Strategy;
  M.Jobs = C.Jobs;
  M.Shards = C.Shards;
  M.Seed = C.Seed;
  M.EveryAccess = C.EveryAccess;
  M.Detector = C.Detector;
  M.Por = C.Por;
  M.Limits.MaxExecutions = C.MaxExecutions;
  M.Limits.MaxPreemptionBound = C.MaxBound;
  M.Limits.StopAtFirstBug = C.StopAtFirst;
  M.Bound = C.BoundName;
  M.VarBound = C.VarBound;
  return M;
}

namespace {

/// The canonical spec text of the configured bound policy.
std::string boundSpecOf(const RunConfig &C) {
  return search::formatBoundSpec({C.BoundName, C.MaxBound, C.VarBound});
}

/// True when the configuration names the default policy family — the one
/// whose manifests, artifacts, and stdout must stay byte-identical to the
/// pre-policy-seam tools.
bool defaultBound(const RunConfig &C) {
  return C.BoundName == "preemption" && C.VarBound == 0;
}

/// The manifest record of a run still in flight: identity plus the bounds
/// finished so far.
session::JsonValue partialRunRecord(
    const SessionState &S, const char *Form, const RunConfig &C,
    const std::vector<search::BoundCoverage> &Bounds) {
  using session::JsonValue;
  JsonValue Run = JsonValue::object();
  Run.set("benchmark", JsonValue::str(S.Benchmark));
  Run.set("bug", JsonValue::str(S.Bug));
  Run.set("form", JsonValue::str(Form));
  Run.set("strategy", JsonValue::str(C.Strategy));
  Run.set("jobs", JsonValue::number(C.Jobs));
  Run.set("in_progress", JsonValue::boolean(true));
  JsonValue Arr = JsonValue::array();
  for (const search::BoundCoverage &B : Bounds) {
    JsonValue O = JsonValue::object();
    O.set("bound", JsonValue::number(B.Bound));
    O.set("states", JsonValue::number(B.States));
    O.set("executions", JsonValue::number(B.Executions));
    Arr.Arr.push_back(std::move(O));
  }
  Run.set("bounds_done", std::move(Arr));
  return Run;
}

} // namespace

//===----------------------------------------------------------------------===//
// RunSession
//===----------------------------------------------------------------------===//

RunSession::RunSession(SessionState &S, const RunConfig &Config,
                       const char *Form)
    : S(S), Config(Config), Form(Form),
      PriorWall(S.Resume ? S.Resume->WallMillis : 0) {
  if (S.Json) {
    RunIdx = S.Json->addRun(partialRunRecord(S, Form, Config, {}));
    S.Json->writeTo(S.JsonPath, nullptr);
    Obs.BoundHook = [this](const search::BoundCoverage &B) {
      Bounds.push_back(B);
      this->S.Json->updateRun(
          RunIdx,
          partialRunRecord(this->S, this->Form, this->Config, Bounds));
      this->S.Json->writeTo(this->S.JsonPath, nullptr);
    };
  }
  if (!S.CheckpointDir.empty()) {
    std::string Err;
    if (!session::ensureDir(S.CheckpointDir, &Err)) {
      std::fprintf(stderr, "%s\n", Err.c_str());
      Failed = true;
      return;
    }
    if (!Lock.acquire(S.CheckpointDir, &Err)) {
      std::fprintf(stderr, "%s\n", Err.c_str());
      Failed = true;
      return;
    }
    Guard = std::make_unique<session::SignalGuard>();
    Sink = std::make_unique<session::CheckpointSink>(
        S.CheckpointDir, S.CheckpointEvery, makeRunMeta(S, Config, Form),
        S.Resume ? S.Resume->Snap.Stats.Executions : 0, PriorWall);
    Obs.Sink = Sink.get();
  }
  if (!Config.TraceFile.empty()) {
    // 64Ki events (2 MiB) per worker: a late-run window big enough for a
    // few hundred thousand decisions; older events fall off the ring and
    // show up in the exporter's dropped count.
    Metrics.enableTracing(1 << 16);
  }
  if (Config.Progress || !Config.MetricsCsv.empty()) {
    // The meter is the sampling clock even when only the CSV wants rows;
    // RenderMeter keeps the stderr ticker tied to --progress alone.
    Meter = std::make_unique<obs::ProgressMeter>(Config.ProgressEveryMillis);
    Obs.Meter = Meter.get();
    Obs.RenderMeter = Config.Progress;
  }
  if (!Config.MetricsCsv.empty()) {
    Csv = std::fopen(Config.MetricsCsv.c_str(), "a");
    if (!Csv) {
      std::fprintf(stderr, "--metrics-csv: cannot open %s\n",
                   Config.MetricsCsv.c_str());
      Failed = true;
      return;
    }
    std::fseek(Csv, 0, SEEK_END);
    if (std::ftell(Csv) == 0)
      std::fprintf(Csv, "bound,max_bound,executions,total_steps,states,"
                        "frontier_remaining,deferred_next,bugs,"
                        "est_total_executions,explored_ppm\n");
    Obs.SampleHook = [this](const obs::ProgressSample &P) { csvRow(P); };
  }
}

RunSession::~RunSession() {
  if (Csv)
    std::fclose(Csv);
}

void RunSession::csvRow(const obs::ProgressSample &P) {
  if (!Csv)
    return;
  // Same Knuth-estimate math the progress ticker uses: completed
  // executions over the credited mass fraction. Zero columns while the
  // estimator is still dark.
  uint64_t EstTotal = 0, Ppm = 0;
  if (P.EstMass != 0) {
    EstTotal = static_cast<uint64_t>(
        static_cast<unsigned __int128>(P.Executions) * obs::EstimateOne /
        P.EstMass);
    Ppm = static_cast<uint64_t>(
        static_cast<unsigned __int128>(P.EstMass) * 1000000 /
        obs::EstimateOne);
  }
  std::fprintf(Csv,
               "%llu,%llu,%llu,%llu,%llu,%llu,%llu,%llu,%llu,%llu\n",
               (unsigned long long)P.Bound, (unsigned long long)P.MaxBound,
               (unsigned long long)P.Executions,
               (unsigned long long)P.TotalSteps, (unsigned long long)P.States,
               (unsigned long long)P.FrontierRemaining,
               (unsigned long long)P.DeferredNext,
               (unsigned long long)P.Bugs, (unsigned long long)EstTotal,
               (unsigned long long)Ppm);
  std::fflush(Csv);
}

uint64_t RunSession::wallMillis() const {
  if (Sink)
    return Sink->wallMillis();
  auto Elapsed = std::chrono::steady_clock::now() - Start;
  return PriorWall +
         static_cast<uint64_t>(
             std::chrono::duration_cast<std::chrono::milliseconds>(Elapsed)
                 .count());
}

int RunSession::finish(const search::SearchResult &R) {
  int Rc = 0;
  if (Meter || Csv) {
    obs::ProgressSample Last;
    Last.Bound = R.Stats.PerBound.empty() ? 0 : R.Stats.PerBound.back().Bound;
    Last.MaxBound = Config.MaxBound;
    Last.Executions = R.Stats.Executions;
    Last.TotalSteps = R.Stats.TotalSteps;
    Last.States = R.Stats.DistinctStates;
    Last.Bugs = R.Bugs.size();
    Last.EstMass = Metrics.snapshot().estMassTotal();
    csvRow(Last); // Final row so even a sub-period run leaves data.
    if (Meter && Config.Progress)
      Meter->finish(Last);
  }
  std::vector<std::string> Repros;
  if (!S.ReproDir.empty() && !R.Bugs.empty()) {
    std::string Err;
    if (!session::ensureDir(S.ReproDir, &Err)) {
      std::fprintf(stderr, "%s\n", Err.c_str());
      Rc = 4;
    } else {
      for (const search::Bug &B : R.Bugs) {
        session::ReproArtifact A;
        A.Benchmark = S.Benchmark;
        A.Bug = S.Bug;
        A.Form = Form;
        A.EveryAccess = Config.EveryAccess;
        A.Detector = Config.Detector;
        if (!defaultBound(Config))
          A.Bound = boundSpecOf(Config);
        A.Found = B;
        std::string Path = S.ReproDir + "/" + session::reproFileName(A);
        if (!session::saveRepro(Path, A, &Err)) {
          std::fprintf(stderr, "repro write failed: %s\n", Err.c_str());
          Rc = 4;
        } else {
          std::printf("  repro written: %s\n", Path.c_str());
          Repros.push_back(Path);
        }
      }
    }
  }
  if (S.Json) {
    using session::JsonValue;
    JsonValue Run = session::runRecord(S.Benchmark, S.Bug, Form,
                                       Config.Strategy, Config.Jobs, R,
                                       wallMillis());
    JsonValue Arr = JsonValue::array();
    for (const std::string &P : Repros)
      Arr.Arr.push_back(JsonValue::str(P));
    Run.set("repros", std::move(Arr));
    obs::MetricsSnapshot MSnap = Metrics.snapshot();
    if (!MSnap.empty())
      Run.set("metrics", session::metricsToJson(MSnap));
    if (HaveDist)
      Run.set("dist", std::move(Dist));
    S.Json->updateRun(RunIdx, std::move(Run));
    std::string Err;
    if (!S.Json->writeTo(S.JsonPath, &Err)) {
      std::fprintf(stderr, "manifest write failed: %s\n", Err.c_str());
      Rc = 4;
    }
  }
  if (!Config.TraceFile.empty()) {
    // The workers have joined by now, so the per-worker rings are safe to
    // read. Exported even on interrupt: a partial trace of a wedged run
    // is exactly when you want one.
    std::string Err;
    if (!obs::writePerfettoTrace(Metrics, Config.TraceFile, &Err)) {
      std::fprintf(stderr, "trace write failed: %s\n", Err.c_str());
      Rc = 4;
    } else {
      std::printf("  trace written: %s\n", Config.TraceFile.c_str());
    }
  }
  if (Sink && !Sink->ok()) {
    std::fprintf(stderr, "checkpoint write failed: %s\n",
                 Sink->error().c_str());
    Rc = 4;
  }
  if (R.Interrupted) {
    std::printf("  interrupted; resumable checkpoint in %s\n",
                S.CheckpointDir.c_str());
    Rc = std::max(Rc, 130);
  }
  return Rc;
}

//===----------------------------------------------------------------------===//
// Flag registration / parsing
//===----------------------------------------------------------------------===//

void icb::tool::addSearchFlags(FlagSet &Flags) {
  Flags.addString("strategy", "icb", "icb, dfs, db:N, or random");
  Flags.addInt("max-bound", 4, "maximum preemption bound (icb)");
  Flags.addString("bound", "",
                  "bound policy for the icb strategy: preemption:K, delay:K, "
                  "or thread:K[,variable:V]; a bare family name takes K from "
                  "--max-bound");
  Flags.addInt("max-executions", 1 << 20, "execution budget");
  Flags.addInt("seed", 1, "PRNG seed (random strategy)");
  Flags.addInt("jobs", 1,
               "worker threads for the icb strategy, model or runtime form "
               "(0 = hardware concurrency)");
  Flags.addInt("shards", 0,
               "state-cache shards with --jobs != 1 (0 = auto)");
  Flags.addOptString("trace", "on",
                     "bare/on: replay and print the counterexample; "
                     "--trace=FILE: write a Perfetto trace of the search "
                     "itself to FILE");
  Flags.addBool("keep-going", false, "collect all bugs, not just the first");
  Flags.addBool("every-access", false,
                "scheduling points at every data access (ablation mode)");
  Flags.addBool("por", true,
                "bounded partial-order reduction (sleep sets) with the icb "
                "strategy: on or off");
  Flags.addString("detector", "vc", "race detector: vc or goldilocks");
  Flags.addBool("progress", false,
                "live single-line progress ticker on stderr");
  Flags.addInt("progress-every", 1000,
               "progress ticker period in milliseconds (implies --progress)");
  Flags.addString("metrics-csv", "",
                  "append one CSV row per progress tick (same fields as the "
                  "--progress ticker) to this file");
}

void icb::tool::addSessionFlags(FlagSet &Flags) {
  Flags.addString("json", "", "write a machine-readable run manifest here");
  Flags.addString("checkpoint-dir", "",
                  "write resumable checkpoints into this directory (icb)");
  Flags.addInt("checkpoint-every", 4096,
               "checkpoint period in executions (0 = only on signal/finish)");
  Flags.addString("resume", "",
                  "resume the checkpointed run in this directory");
  Flags.addString("replay", "",
                  "replay a .icbrepro artifact and verify its bug fires");
  Flags.addBool("minimize", false,
                "with --replay: delta-debug the schedule, rewrite the "
                "artifact in place");
  Flags.addString("repro-dir", "",
                  "write a .icbrepro artifact per discovered bug here");
}

void icb::tool::readTraceFlag(const std::string &Text, bool &PrintTrace,
                              std::string &TraceFile) {
  PrintTrace = false;
  TraceFile.clear();
  if (Text.empty() || Text == "off" || Text == "false" || Text == "0")
    return;
  if (Text == "on" || Text == "true" || Text == "1") {
    PrintTrace = true;
    return;
  }
  TraceFile = Text;
}

bool icb::tool::readRunConfig(const FlagSet &Flags, RunConfig &Config) {
  Config.Strategy = Flags.getString("strategy");
  Config.MaxBound = static_cast<unsigned>(Flags.getInt("max-bound"));
  Config.MaxExecutions = static_cast<uint64_t>(Flags.getInt("max-executions"));
  Config.Seed = static_cast<uint64_t>(Flags.getInt("seed"));
  readTraceFlag(Flags.getString("trace"), Config.Trace, Config.TraceFile);
#ifdef ICB_NO_METRICS
  if (!Config.TraceFile.empty()) {
    std::fprintf(stderr,
                 "--trace=FILE needs the exploration-telemetry "
                 "instrumentation, which this binary was built without "
                 "(ICB_NO_METRICS)\n");
    return false;
  }
#endif
  Config.StopAtFirst = !Flags.getBool("keep-going");
  Config.EveryAccess = Flags.getBool("every-access");
  Config.Detector = Flags.getString("detector");
  Config.Jobs = static_cast<unsigned>(Flags.getInt("jobs"));
  Config.Shards = static_cast<unsigned>(Flags.getInt("shards"));
  Config.Progress =
      Flags.getBool("progress") || Flags.wasSet("progress-every");
  Config.ProgressEveryMillis =
      static_cast<uint64_t>(Flags.getInt("progress-every"));
  Config.MetricsCsv = Flags.getString("metrics-csv");
  if ((Config.Progress || !Config.MetricsCsv.empty()) &&
      Flags.getInt("progress-every") <= 0) {
    std::fprintf(stderr, "--progress-every must be positive (milliseconds)\n");
    return false;
  }
  if (Flags.wasSet("bound")) {
    std::string Text = Flags.getString("bound");
    search::BoundSpec Spec;
    std::string Err;
    if (!search::parseBoundSpec(Text, Spec, &Err)) {
      std::fprintf(stderr, "%s\n", Err.c_str());
      return false;
    }
    // A bare family name ("delay") takes its K from --max-bound; a full
    // spec ("delay:3") owns K, and a contradicting --max-bound is an
    // error rather than a silent pick between the two.
    std::string Head = Text.substr(0, Text.find(','));
    if (Head.find(':') == std::string::npos)
      Spec.Bound = Config.MaxBound;
    else if (Flags.wasSet("max-bound") && Config.MaxBound != Spec.Bound) {
      std::fprintf(stderr,
                   "--max-bound=%u conflicts with --bound=%s; pass the bound "
                   "through one flag only\n",
                   Config.MaxBound, Text.c_str());
      return false;
    }
    Config.MaxBound = Spec.Bound;
    Config.BoundName = Spec.Name;
    Config.VarBound = Spec.VarBound;
    if (Config.Strategy != "icb") {
      std::fprintf(stderr,
                   "--bound applies to the icb strategy only (got "
                   "--strategy=%s)\n",
                   Config.Strategy.c_str());
      return false;
    }
  }
  // Reject flag combinations that have no defined meaning rather than
  // silently ignoring a flag or falling back to another engine.
  if (Config.Jobs != 1 && Config.Strategy != "icb") {
    std::fprintf(stderr,
                 "--jobs applies to the icb strategy only (got --strategy=%s)\n",
                 Config.Strategy.c_str());
    return false;
  }
  if (Config.Shards != 0 && Config.Jobs == 1) {
    std::fprintf(stderr,
                 "--shards configures the parallel engine; it requires "
                 "--jobs != 1\n");
    return false;
  }
  Config.Por = Flags.getBool("por");
  if (Config.Strategy != "icb") {
    if (Flags.wasSet("por")) {
      std::fprintf(stderr,
                   "--por applies to the icb strategy only (got "
                   "--strategy=%s)\n",
                   Config.Strategy.c_str());
      return false;
    }
    Config.Por = false; // The default gates on the strategy.
  }
  return true;
}

bool icb::tool::readSessionFlags(const FlagSet &Flags, SessionState &S,
                                 std::string &ResumeDir) {
  ResumeDir = Flags.getString("resume");
  if (!Flags.getString("checkpoint-dir").empty() && !ResumeDir.empty()) {
    std::fprintf(stderr,
                 "--resume continues checkpointing into its own directory; "
                 "do not also pass --checkpoint-dir\n");
    return false;
  }
  if (Flags.wasSet("checkpoint-every") &&
      Flags.getString("checkpoint-dir").empty() && ResumeDir.empty()) {
    std::fprintf(stderr,
                 "--checkpoint-every requires --checkpoint-dir or --resume\n");
    return false;
  }
  S.CheckpointDir = Flags.getString("checkpoint-dir");
  S.CheckpointEvery = static_cast<uint64_t>(Flags.getInt("checkpoint-every"));
  S.ReproDir = Flags.getString("repro-dir");
  S.JsonPath = Flags.getString("json");
  return true;
}

bool icb::tool::checkReplayExclusive(
    const FlagSet &Flags, std::initializer_list<const char *> ExtraFlags) {
  // --bound is deliberately absent: with --replay it names the policy the
  // artifact must have been recorded under (replayArtifact's mismatch
  // check), not a search configuration.
  static const char *const Incompatible[] = {
      "strategy",     "max-bound",      "max-executions",   "seed",
      "jobs",         "shards",         "keep-going",       "every-access",
      "por",          "detector",       "json",             "checkpoint-dir",
      "checkpoint-every", "resume",     "repro-dir",        "progress",
      "progress-every",   "metrics-csv",
  };
  auto Reject = [](const char *Name) {
    std::fprintf(stderr,
                 "--replay re-executes a recorded artifact; --%s "
                 "cannot be combined with it\n",
                 Name);
    return false;
  };
  for (const char *Name : Incompatible)
    if (Flags.wasSet(Name))
      return Reject(Name);
  for (const char *Name : ExtraFlags)
    if (Flags.wasSet(Name))
      return Reject(Name);
  return true;
}

bool icb::tool::checkJoinExclusive(
    const FlagSet &Flags, std::initializer_list<const char *> ExtraFlags) {
  // --jobs/--shards stay legal: they describe the joiner's own worker
  // pool, which (like --resume's topology exemption) never changes the
  // merged result. Everything else is owned by the coordinator and
  // adopted through the hello_ok meta.
  static const char *const Incompatible[] = {
      "strategy",     "max-bound",      "bound",          "max-executions",
      "seed",         "keep-going",     "every-access",   "por",
      "detector",     "json",           "checkpoint-dir", "checkpoint-every",
      "resume",       "replay",         "minimize",       "repro-dir",
      "progress",     "progress-every", "metrics-csv",    "trace",
  };
  auto Reject = [](const char *Name) {
    std::fprintf(stderr,
                 "--join adopts the coordinator's configuration; --%s "
                 "cannot be combined with it\n",
                 Name);
    return false;
  };
  for (const char *Name : Incompatible)
    if (Flags.wasSet(Name))
      return Reject(Name);
  for (const char *Name : ExtraFlags)
    if (Flags.wasSet(Name))
      return Reject(Name);
  return true;
}

void icb::tool::printResultSummary(
    const search::SearchResult &R, const RunConfig &Config, bool RtForm,
    const std::function<void(const search::Bug &)> &PerBug) {
  std::printf("  executions %s, steps %s, %s %s%s\n",
              withCommas(R.Stats.Executions).c_str(),
              withCommas(R.Stats.TotalSteps).c_str(),
              RtForm ? "visited states" : "states",
              withCommas(R.Stats.DistinctStates).c_str(),
              R.Stats.Completed ? " (state space exhausted)" : "");
  if (RtForm)
    for (const search::BoundCoverage &B : R.Stats.PerBound)
      std::printf("  bound %u: executions %s, visited states %s\n", B.Bound,
                  withCommas(B.Executions).c_str(),
                  withCommas(B.States).c_str());
  for (const search::Bug &Bug : R.Bugs) {
    std::printf("  BUG %s\n", Bug.str().c_str());
    if (PerBug)
      PerBug(Bug);
  }
  if (R.Bugs.empty() && !R.Interrupted) {
    if (defaultBound(Config))
      std::printf("  no bug within preemption bound %u\n", Config.MaxBound);
    else
      std::printf("  no bug within bound %s\n", boundSpecOf(Config).c_str());
  }
}

bool icb::tool::checkSessionStrategy(const RunConfig &Config,
                                     const SessionState &S) {
  if (!S.CheckpointDir.empty() && Config.Strategy != "icb") {
    std::fprintf(stderr,
                 "--checkpoint-dir/--resume apply to the icb strategy only "
                 "(got --strategy=%s)\n",
                 Config.Strategy.c_str());
    return false;
  }
  return true;
}

int icb::tool::applyResume(const FlagSet &Flags, const std::string &ResumeDir,
                           session::CheckpointData &Data, RunConfig &Config,
                           SessionState &S, std::string *BenchName,
                           std::string *BugLabel) {
  std::string Error;
  if (!session::loadCheckpoint(session::checkpointPath(ResumeDir), Data,
                               &Error)) {
    std::fprintf(stderr, "--resume: %s\n", Error.c_str());
    return 4;
  }
  const session::CheckpointMeta &M = Data.Meta;
  bool Bad = false;
  auto Conflict = [&](const char *Flag, const std::string &Cli,
                      const std::string &Recorded) {
    std::fprintf(stderr,
                 "--resume: --%s=%s conflicts with the checkpoint's "
                 "recorded %s=%s\n",
                 Flag, Cli.c_str(), Flag, Recorded.c_str());
    Bad = true;
  };
  auto CheckStr = [&](const char *Flag, const std::string &Cli,
                      const std::string &Recorded) {
    if (Flags.wasSet(Flag) && Cli != Recorded)
      Conflict(Flag, Cli, Recorded);
  };
  auto CheckNum = [&](const char *Flag, uint64_t Cli, uint64_t Recorded) {
    if (Flags.wasSet(Flag) && Cli != Recorded)
      Conflict(Flag, std::to_string(Cli), std::to_string(Recorded));
  };
  auto CheckBool = [&](const char *Flag, bool Cli, bool Recorded) {
    if (Flags.wasSet(Flag) && Cli != Recorded)
      Conflict(Flag, Cli ? "true" : "false", Recorded ? "true" : "false");
  };
  if (BenchName)
    CheckStr("benchmark", *BenchName, M.Benchmark);
  if (BugLabel)
    CheckStr("bug", *BugLabel == "none" ? "default" : *BugLabel, M.Bug);
  CheckStr("strategy", Config.Strategy, M.Strategy);
  CheckStr("detector", Config.Detector, M.Detector);
  // --jobs/--shards are intentionally NOT conflict-checked: the engine
  // frontier is worker-topology-neutral, so a checkpoint taken at one job
  // count resumes correctly at another.
  CheckNum("seed", Config.Seed, M.Seed);
  CheckNum("max-bound", Config.MaxBound, M.Limits.MaxPreemptionBound);
  // The policy decides which work items exist in the frontier (and what
  // their budgets mean), so the whole spec must match; the canonical spec
  // text compares family, K, and variable cap at once.
  if (Flags.wasSet("bound")) {
    std::string Cli = boundSpecOf(Config);
    std::string Recorded = search::formatBoundSpec(
        {M.Bound, M.Limits.MaxPreemptionBound, M.VarBound});
    if (Cli != Recorded)
      Conflict("bound", Cli, Recorded);
  }
  CheckNum("max-executions", Config.MaxExecutions, M.Limits.MaxExecutions);
  CheckBool("every-access", Config.EveryAccess, M.EveryAccess);
  CheckBool("keep-going", !Config.StopAtFirst, !M.Limits.StopAtFirstBug);
  // POR decides which work items exist in the checkpointed frontier, so a
  // run must resume under the setting it was started with.
  CheckBool("por", Config.Por, M.Por);
  // --model exists only on tools that offer both forms (wasSet asserts on
  // unregistered names); BenchName doubles as the "registry tool" signal.
  if (BenchName)
    CheckBool("model", Config.PreferModel, M.Form == "vm");
  if (Bad)
    return 2;

  Config.Strategy = M.Strategy;
  Config.Detector = M.Detector;
  if (!Flags.wasSet("jobs"))
    Config.Jobs = M.Jobs;
  if (!Flags.wasSet("shards"))
    Config.Shards = Config.Jobs != 1 ? M.Shards : 0;
  if (Config.Shards != 0 && Config.Jobs == 1) {
    std::fprintf(stderr,
                 "--shards configures the parallel engine; it requires "
                 "--jobs != 1\n");
    return 2;
  }
  Config.Seed = M.Seed;
  Config.MaxBound = M.Limits.MaxPreemptionBound;
  Config.BoundName = M.Bound;
  Config.VarBound = M.VarBound;
  Config.MaxExecutions = M.Limits.MaxExecutions;
  Config.EveryAccess = M.EveryAccess;
  Config.StopAtFirst = M.Limits.StopAtFirstBug;
  Config.Por = M.Por;
  Config.PreferModel = M.Form == "vm";
  if (BenchName)
    *BenchName = M.Benchmark;
  if (BugLabel)
    *BugLabel = M.Bug == "default" ? "none" : M.Bug;
  S.Resume = &Data;
  S.CheckpointDir = ResumeDir;
  return 0;
}

session::JsonValue icb::tool::configRecord(const RunConfig &Config) {
  using session::JsonValue;
  JsonValue Cfg = JsonValue::object();
  Cfg.set("strategy", JsonValue::str(Config.Strategy));
  Cfg.set("max_bound", JsonValue::number(Config.MaxBound));
  // Only a non-default policy is recorded, keeping default-run manifests
  // byte-identical to pre-policy-seam ones.
  if (!defaultBound(Config))
    Cfg.set("bound", JsonValue::str(boundSpecOf(Config)));
  Cfg.set("max_executions", JsonValue::number(Config.MaxExecutions));
  Cfg.set("seed", JsonValue::number(Config.Seed));
  Cfg.set("jobs", JsonValue::number(Config.Jobs));
  Cfg.set("shards", JsonValue::number(Config.Shards));
  Cfg.set("every_access", JsonValue::boolean(Config.EveryAccess));
  Cfg.set("por", JsonValue::boolean(Config.Por));
  Cfg.set("detector", JsonValue::str(Config.Detector));
  Cfg.set("keep_going", JsonValue::boolean(!Config.StopAtFirst));
  return Cfg;
}

//===----------------------------------------------------------------------===//
// Run drivers
//===----------------------------------------------------------------------===//

int icb::tool::runRt(const rt::TestCase &Test, const RunConfig &Config,
                     SessionState &S) {
  rt::ExploreOptions Opts;
  Opts.Limits.MaxExecutions = Config.MaxExecutions;
  Opts.Limits.MaxPreemptionBound = Config.MaxBound;
  Opts.Limits.StopAtFirstBug = Config.StopAtFirst;
  std::unique_ptr<search::BoundPolicy> Policy = search::makeBoundPolicy(
      {Config.BoundName, Config.MaxBound, Config.VarBound});
  Opts.Policy = Policy.get();
  Opts.Jobs = Config.Jobs;
  Opts.Shards = Config.Shards;
  Opts.Por = Config.Por;
  if (Config.EveryAccess)
    Opts.Exec.Mode = rt::SchedPointMode::EveryAccess;
  Opts.Exec.Detector = Config.Detector == "goldilocks"
                           ? rt::DetectorKind::Goldilocks
                           : rt::DetectorKind::VectorClock;

  RunSession Sess(S, Config, "rt");
  if (Sess.failed())
    return 4;
  Opts.Observer = Sess.observer();
  Opts.Resume = Sess.resumeSnapshot();
  Opts.Metrics = Sess.metrics();

  std::unique_ptr<rt::Explorer> Explorer;
  if (Config.Strategy == "icb")
    Explorer = std::make_unique<rt::IcbExplorer>(Opts);
  else if (Config.Strategy == "dfs")
    Explorer = std::make_unique<rt::DfsExplorer>(Opts);
  else if (Config.Strategy.rfind("db:", 0) == 0)
    Explorer = std::make_unique<rt::DfsExplorer>(
        Opts, static_cast<unsigned>(
                  std::strtoul(Config.Strategy.c_str() + 3, nullptr, 10)));
  else if (Config.Strategy == "random")
    Explorer = std::make_unique<rt::RandomExplorer>(Opts, Config.Seed,
                                                    Config.MaxExecutions);
  else {
    std::fprintf(stderr, "unknown strategy '%s' (icb, dfs, db:N, random)\n",
                 Config.Strategy.c_str());
    return 2;
  }

  if (Config.Jobs != 1)
    std::printf("exploring '%s' with %s (%u jobs)...\n", Test.Name.c_str(),
                Explorer->name().c_str(),
                Config.Jobs ? Config.Jobs : WorkerPool::defaultWorkers());
  else
    std::printf("exploring '%s' with %s...\n", Test.Name.c_str(),
                Explorer->name().c_str());

  rt::ExploreResult R;
  if (const search::EngineSnapshot *Done = Sess.finishedResume()) {
    std::printf("  checkpoint describes a finished run; re-emitting its "
                "results\n");
    R.Stats = Done->Stats;
    R.Bugs = Done->Bugs;
  } else {
    R = Explorer->explore(Test);
  }
  printResultSummary(R, Config, /*RtForm=*/true);
  if (Config.Trace && R.foundBug())
    std::printf("\n%s",
                rt::renderBugTrace(Test, *R.simplestBug(), Opts.Exec)
                    .c_str());
  int Rc = Sess.finish(R);
  return std::max(Rc, R.foundBug() ? 1 : 0);
}

int icb::tool::runVm(const vm::Program &Prog, const RunConfig &Config,
                     SessionState &S) {
  search::SearchOptions Opts;
  if (Config.Strategy == "icb")
    Opts.Kind = search::StrategyKind::Icb;
  else if (Config.Strategy == "dfs")
    Opts.Kind = search::StrategyKind::Dfs;
  else if (Config.Strategy == "random")
    Opts.Kind = search::StrategyKind::Random;
  else if (Config.Strategy.rfind("db:", 0) == 0) {
    Opts.Kind = search::StrategyKind::DepthBoundedDfs;
    Opts.DepthBound = static_cast<unsigned>(
        std::strtoul(Config.Strategy.c_str() + 3, nullptr, 10));
  } else {
    std::fprintf(stderr, "unknown strategy '%s' (icb, dfs, db:N, random)\n",
                 Config.Strategy.c_str());
    return 2;
  }
  Opts.Seed = Config.Seed;
  Opts.RandomExecutions = Config.MaxExecutions;
  std::unique_ptr<search::BoundPolicy> Policy = search::makeBoundPolicy(
      {Config.BoundName, Config.MaxBound, Config.VarBound});
  Opts.Policy = Policy.get();
  Opts.Jobs = Config.Jobs;
  Opts.Shards = Config.Shards;
  Opts.UseSleepSets = Config.Por;
  Opts.Limits.MaxExecutions = Config.MaxExecutions;
  Opts.Limits.MaxPreemptionBound = Config.MaxBound;
  Opts.Limits.StopAtFirstBug = Config.StopAtFirst;

  RunSession Sess(S, Config, "vm");
  if (Sess.failed())
    return 4;
  Opts.Observer = Sess.observer();
  Opts.Resume = Sess.resumeSnapshot();
  Opts.Metrics = Sess.metrics();

  if (Config.Jobs != 1)
    std::printf("exploring model '%s' with %s (%u jobs)...\n",
                Prog.Name.c_str(), Config.Strategy.c_str(),
                Config.Jobs ? Config.Jobs : WorkerPool::defaultWorkers());
  else
    std::printf("exploring model '%s' with %s...\n", Prog.Name.c_str(),
                Config.Strategy.c_str());

  search::SearchResult R;
  if (const search::EngineSnapshot *Done = Sess.finishedResume()) {
    std::printf("  checkpoint describes a finished run; re-emitting its "
                "results\n");
    R.Stats = Done->Stats;
    R.Bugs = Done->Bugs;
  } else {
    R = search::checkProgram(Prog, Opts);
  }
  printResultSummary(R, Config, /*RtForm=*/false,
                     [&](const search::Bug &Bug) {
                       if (Config.Trace && !Bug.Schedule.empty()) {
                         std::printf("    schedule:");
                         for (vm::ThreadId Tid : Bug.Schedule)
                           std::printf(" %s", Prog.Threads[Tid].Name.c_str());
                         std::printf("\n");
                       }
                     });
  int Rc = Sess.finish(R);
  return std::max(Rc, R.foundBug() ? 1 : 0);
}

//===----------------------------------------------------------------------===//
// Replay driver
//===----------------------------------------------------------------------===//

int icb::tool::replayArtifact(const std::string &Path, bool Minimize,
                              bool Trace, const std::string &BoundName,
                              const ArtifactResolver &Resolve) {
  session::ReproArtifact A;
  std::string Error;
  if (!session::loadRepro(Path, A, &Error)) {
    std::fprintf(stderr, "%s\n", Error.c_str());
    return 4;
  }
  if (!session::reproBoundCompatible(A, BoundName, &Error)) {
    std::fprintf(stderr, "%s\n", Error.c_str());
    return 3;
  }
  std::function<rt::TestCase()> MakeRt;
  std::function<vm::Program()> MakeVm;
  if (!Resolve(A, MakeRt, MakeVm))
    return 2;

  std::printf("replaying %s (%s / %s, %s form)...\n", Path.c_str(),
              A.Benchmark.c_str(), A.Bug.c_str(), A.Form.c_str());
  session::ReplayOutcome Outcome;
  if (A.Form == "rt")
    Outcome = session::replayArtifactRt(A, MakeRt());
  else
    Outcome = session::replayArtifactVm(A, MakeVm());
  std::printf("  %s\n", Outcome.Detail.c_str());
  if (!Outcome.Reproduced)
    return 3;
  if (Trace && A.Form == "rt")
    std::printf("\n%s",
                rt::renderBugTrace(MakeRt(), Outcome.Observed,
                                   session::reproExecOptions(A))
                    .c_str());

  if (!Minimize)
    return 0;

  session::MinimizeResult M = A.Form == "rt"
                                  ? session::minimizeRt(A, MakeRt())
                                  : session::minimizeVm(A, MakeVm());
  if (!M.Reproduced) {
    // Cannot happen after a successful replay unless the test is
    // nondeterministic; report it rather than rewriting the artifact.
    std::fprintf(stderr,
                 "minimization could not re-reproduce the bug (%u replays)\n",
                 M.Replays);
    return 3;
  }
  std::printf("  minimized in %u replays: directives %u -> %u, preemptions "
              "%u -> %u, steps %s -> %s\n",
              M.Replays, M.DirectivesBefore, M.DirectivesAfter,
              M.PreemptionsBefore, M.PreemptionsAfter,
              withCommas(A.Found.Steps).c_str(),
              withCommas(M.Minimized.Steps).c_str());
  if (!M.Improved) {
    std::printf("  schedule was already minimal; artifact unchanged\n");
    return 0;
  }
  A.Found = M.Minimized;
  if (!session::saveRepro(Path, A, &Error)) {
    std::fprintf(stderr, "%s\n", Error.c_str());
    return 4;
  }
  std::printf("  minimized artifact rewritten: %s\n", Path.c_str());
  return 0;
}

//===----------------------------------------------------------------------===//
// Report-side JSON helpers
//===----------------------------------------------------------------------===//

uint64_t icb::tool::jsonNum(const session::JsonValue *V, const char *Key) {
  uint64_t Out = 0;
  if (V)
    V->getU64(Key, Out);
  return Out;
}

std::string icb::tool::jsonStr(const session::JsonValue *V, const char *Key) {
  std::string Out;
  if (V)
    V->getString(Key, Out);
  return Out;
}

int icb::tool::loadJsonDoc(std::string Path, session::JsonValue &Doc) {
  struct stat St;
  if (::stat(Path.c_str(), &St) == 0 && S_ISDIR(St.st_mode))
    Path += "/checkpoint.json";
  std::string Text, Error;
  if (!session::readFile(Path, Text, &Error)) {
    std::fprintf(stderr, "%s\n", Error.c_str());
    return 4;
  }
  if (!session::jsonParse(Text, Doc, &Error)) {
    std::fprintf(stderr, "%s: %s\n", Path.c_str(), Error.c_str());
    return 4;
  }
  return 0;
}
