//===- tools/common/DistDrive.cpp - --serve/--join CLI drivers ------------===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//

#include "common/DistDrive.h"
#include "dist/Coordinator.h"
#include "dist/Net.h"
#include "dist/Worker.h"
#include "support/Format.h"
#include <cstdlib>
#include <memory>

using namespace icb;
using namespace icb::tool;
using session::JsonValue;

namespace {

/// Positive-integer environment override, or \p Default.
uint64_t envU64(const char *Name, uint64_t Default) {
  const char *Text = std::getenv(Name);
  if (!Text || !*Text)
    return Default;
  char *End = nullptr;
  unsigned long long N = std::strtoull(Text, &End, 10);
  return (End && *End == '\0' && N > 0) ? N : Default;
}

/// Executes one lease against the adopted configuration: a fresh engine
/// with fresh caches and a fresh metrics registry, so everything reported
/// back is a lease-local delta. Roots leases run the sequential driver
/// (frontier seeding is inherently serial); drain leases resume from a
/// synthetic snapshot carrying exactly the leased items and use the
/// joiner's local --jobs pool.
dist::LeaseResult runLease(const session::CheckpointMeta &Meta,
                           unsigned Jobs, unsigned Shards,
                           const std::function<rt::TestCase()> &MakeRt,
                           const std::function<vm::Program()> &MakeVm,
                           const dist::LeaseRequest &Req) {
  obs::MetricsRegistry Reg;
  std::unique_ptr<search::BoundPolicy> Policy = search::makeBoundPolicy(
      {Meta.Bound, Meta.Limits.MaxPreemptionBound, Meta.VarBound});

  search::EngineSnapshot Synth;
  const search::EngineSnapshot *Resume = nullptr;
  if (!Req.Roots) {
    Synth.Bound = Req.Bound;
    Synth.CurrentQueue = Req.Items;
    Resume = &Synth;
  }

  // Per-lease limits stay unlimited — budgets and the bound cap are
  // enforced globally by the coordinator — except stop-at-first-bug,
  // which also cuts the lease short (the unexecuted remainder travels
  // back and is folded into the frontier).
  search::SearchLimits Limits;
  Limits.StopAtFirstBug = Meta.Limits.StopAtFirstBug;
  unsigned LeaseJobs = Req.Roots ? 1 : Jobs;
  search::LeaseMode Mode =
      Req.Roots ? search::LeaseMode::Roots : search::LeaseMode::Drain;

  search::SearchResult R;
  if (Meta.Form == "vm") {
    search::SearchOptions O;
    O.Kind = search::StrategyKind::Icb;
    O.Policy = Policy.get();
    O.UseSleepSets = Meta.Por;
    O.Jobs = LeaseJobs;
    O.Shards = LeaseJobs != 1 ? Shards : 0;
    O.Limits = Limits;
    O.Observer = nullptr;
    O.Resume = Resume;
    O.Metrics = &Reg;
    O.Lease = Mode;
    R = search::checkProgram(MakeVm(), O);
  } else {
    rt::ExploreOptions O;
    O.Limits = Limits;
    O.Policy = Policy.get();
    O.Jobs = LeaseJobs;
    O.Shards = LeaseJobs != 1 ? Shards : 0;
    O.Por = Meta.Por;
    if (Meta.EveryAccess)
      O.Exec.Mode = rt::SchedPointMode::EveryAccess;
    O.Exec.Detector = Meta.Detector == "goldilocks"
                          ? rt::DetectorKind::Goldilocks
                          : rt::DetectorKind::VectorClock;
    O.Resume = Resume;
    O.Metrics = &Reg;
    O.Lease = Mode;
    rt::IcbExplorer Explorer(O);
    R = Explorer.explore(MakeRt());
  }

  dist::LeaseResult Res;
  Res.Completed = R.Stats.Completed;
  Res.Stats = std::move(R.Stats);
  Res.Bugs = std::move(R.Bugs);
  Res.Deferred = std::move(R.LeaseDeferred);
  Res.Remaining = std::move(R.LeaseCurrent);
  Res.SeenDigests = std::move(R.LeaseSeen);
  Res.TerminalDigests = std::move(R.LeaseTerminal);
  Res.ItemDigests = std::move(R.LeaseItems);
  Res.Metrics = Reg.snapshot();
  return Res;
}

} // namespace

int icb::tool::runServe(const std::string &Bind, const RunConfig &Config,
                        SessionState &S, const char *Form,
                        const std::string &DisplayName) {
  if (Config.Strategy != "icb") {
    std::fprintf(stderr,
                 "--serve applies to the icb strategy only (got "
                 "--strategy=%s)\n",
                 Config.Strategy.c_str());
    return 2;
  }
  bool RtForm = std::string(Form) == "rt";

  RunSession Sess(S, Config, Form);
  if (Sess.failed())
    return 4;

  if (const search::EngineSnapshot *Done = Sess.finishedResume()) {
    std::printf("exploring %s'%s' with icb (distributed)...\n",
                RtForm ? "" : "model ", DisplayName.c_str());
    std::printf("  checkpoint describes a finished run; re-emitting its "
                "results\n");
    search::SearchResult R;
    R.Stats = Done->Stats;
    R.Bugs = Done->Bugs;
    printResultSummary(R, Config, RtForm);
    int Rc = Sess.finish(R);
    return std::max(Rc, R.foundBug() ? 1 : 0);
  }

  std::unique_ptr<search::BoundPolicy> Policy = search::makeBoundPolicy(
      {Config.BoundName, Config.MaxBound, Config.VarBound});

  dist::CoordinatorOptions CO;
  CO.Bind = Bind;
  CO.Meta = makeRunMeta(S, Config, Form);
  CO.Limits.MaxExecutions = Config.MaxExecutions;
  CO.Limits.MaxPreemptionBound = Config.MaxBound;
  CO.Limits.StopAtFirstBug = Config.StopAtFirst;
  CO.FrontierBound = Policy->frontierBound();
  CO.LeaseItems =
      static_cast<unsigned>(envU64("ICB_DIST_LEASE_ITEMS", 32));
  CO.HeartbeatMillis = envU64("ICB_DIST_HEARTBEAT_MS", 1000);
  CO.RevokeMillis = envU64("ICB_DIST_REVOKE_MS", 5000);
  CO.Observer = Sess.observer();
  CO.Resume = Sess.resumeSnapshot();
  CO.Metrics = Sess.metrics();

  dist::Coordinator Coord(CO);
  std::string Err;
  if (!Coord.start(&Err)) {
    std::fprintf(stderr, "--serve: %s\n", Err.c_str());
    return 2;
  }
  dist::Endpoint Ep;
  dist::parseEndpoint(Bind, Ep, &Err); // start() already validated it.
  // The header is the one line a distributed run may print differently
  // from a local one (CI filters "^exploring"); flushed eagerly so a
  // wrapper script can scrape the resolved port from a background server.
  std::printf("exploring %s'%s' with icb (serving on %s:%u)...\n",
              RtForm ? "" : "model ", DisplayName.c_str(), Ep.Host.c_str(),
              Coord.port());
  std::fflush(stdout);

  search::SearchResult R = Coord.run();
  printResultSummary(R, Config, RtForm);

  JsonValue Joiners = JsonValue::array();
  for (const dist::JoinerStats &J : Coord.joinerStats()) {
    JsonValue O = JsonValue::object();
    O.set("leases", JsonValue::number(J.Leases));
    O.set("items", JsonValue::number(J.Items));
    O.set("executions", JsonValue::number(J.Executions));
    O.set("steps", JsonValue::number(J.Steps));
    O.set("revocations", JsonValue::number(J.Revocations));
    O.set("reconnect", JsonValue::boolean(J.Reconnect));
    Joiners.Arr.push_back(std::move(O));
  }
  JsonValue Dist = JsonValue::object();
  Dist.set("joiners", std::move(Joiners));
  Sess.setDistBlock(std::move(Dist));

  int Rc = Sess.finish(R);
  return std::max(Rc, R.foundBug() ? 1 : 0);
}

int icb::tool::runJoin(const std::string &Addr, unsigned Jobs,
                       unsigned Shards, const DistResolver &Resolve) {
  /// The identity adopted from the coordinator's hello_ok, shared between
  /// the OnAdopt callback and the lease runner (re-resolved on every
  /// reconnect; the meta is stable for the coordinator's lifetime).
  struct JoinState {
    session::CheckpointMeta Meta;
    std::function<rt::TestCase()> MakeRt;
    std::function<vm::Program()> MakeVm;
  };
  auto State = std::make_shared<JoinState>();

  dist::WorkerOptions WO;
  WO.Connect = Addr;
  WO.MaxConnectAttempts =
      static_cast<unsigned>(envU64("ICB_DIST_CONNECT_ATTEMPTS", 8));
  WO.OnAdopt = [State, Resolve](const session::CheckpointMeta &Meta,
                                std::string *Error) {
    if (Meta.Strategy != "icb") {
      *Error = "coordinator runs strategy '" + Meta.Strategy +
               "'; only icb is distributable";
      return false;
    }
    if (Meta.Form != "rt" && Meta.Form != "vm") {
      *Error = "coordinator runs unknown form '" + Meta.Form + "'";
      return false;
    }
    State->MakeRt = nullptr;
    State->MakeVm = nullptr;
    if (!Resolve(Meta, State->MakeRt, State->MakeVm, Error))
      return false;
    if (Meta.Form == "rt" && !State->MakeRt) {
      *Error = "coordinator runs the runtime form, but '" + Meta.Benchmark +
               "'/'" + Meta.Bug + "' has none here";
      return false;
    }
    if (Meta.Form == "vm" && !State->MakeVm) {
      *Error = "coordinator runs the model-VM form, but '" +
               Meta.Benchmark + "'/'" + Meta.Bug + "' has none here";
      return false;
    }
    State->Meta = Meta;
    return true;
  };
  WO.Runner = [State, Jobs, Shards](const dist::LeaseRequest &Req) {
    return runLease(State->Meta, Jobs, Shards, State->MakeRt, State->MakeVm,
                    Req);
  };

  std::printf("joining coordinator at %s...\n", Addr.c_str());
  std::fflush(stdout);
  dist::Worker W(WO);
  int Rc = W.run();
  if (Rc == 0)
    std::printf("  joiner done: %s lease(s) executed\n",
                withCommas(W.leasesRun()).c_str());
  else
    std::fprintf(stderr, "--join: %s\n", W.error().c_str());
  return Rc;
}
