//===- tools/icb_run.cpp - Systematic checker for pthreads modules ---------===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs the ICB engine over an ordinary pthreads test program compiled as
/// a shared object — the CHESS-style "wrap a real test binary" workflow.
/// The module exports
///
///     extern "C" void icb_test_main(void);        // required
///     extern "C" const char *icb_test_name(void); // optional
///
/// and calls plain pthread/sem functions, redirected into the icb::posix
/// shim either by including <icb/posix.h> (macro renaming) or by linking
/// the module with the ICB_POSIX_WRAP link options (no source changes at
/// all). The undefined icb_* / __wrap_* references resolve against this
/// executable at dlopen time, which is why it is linked ENABLE_EXPORTS.
///
/// All search and session flags are shared with icb_check (see
/// tools/common/ToolCommon.h): --jobs, --checkpoint-dir/--resume,
/// --repro-dir/--replay/--minimize, --json, --progress all behave
/// identically.
///
/// Examples:
///   icb_run prod_cons.so
///   icb_run prod_cons.so --max-bound=2 --jobs=4 --repro-dir=.
///   icb_run prod_cons.so --replay=prod_cons-default-deadlock.icbrepro
///   icb_run racy_flag.so --trace
///
//===----------------------------------------------------------------------===//

#include "common/ToolCommon.h"
#include "posix/Module.h"
#include <cstdio>
#include <string>

using namespace icb;
using namespace icb::tool;

int main(int Argc, char **Argv) {
  FlagSet Flags(
      std::string("icb_run: systematic concurrency testing of a pthreads "
                  "test module (PLDI'07 reproduction)\n"
                  "\n"
                  "usage: icb_run [flags] MODULE.so\n"
                  "  MODULE.so exports `void icb_test_main(void)` and uses "
                  "plain pthreads,\n"
                  "  redirected through the icb::posix shim (include "
                  "icb/posix.h, or link\n"
                  "  the module with the --wrap options of icb_posix_wrap)\n"
                  "\n") +
      kExitCodesHelp);
  addSearchFlags(Flags);
  addSessionFlags(Flags);
  std::string Error;
  if (!Flags.parse(Argc, Argv, &Error)) {
    std::fprintf(stderr, "%s\n", Error.c_str());
    return 2;
  }
  if (Flags.positional().size() != 1) {
    std::fprintf(stderr, "%s\n",
                 Flags.usage(Argv[0] ? Argv[0] : "icb_run").c_str());
    return 2;
  }

  posix::TestModule Module;
  if (!posix::loadTestModule(Flags.positional()[0], Module, Error)) {
    std::fprintf(stderr, "%s\n", Error.c_str());
    return 2;
  }

  // --replay: the artifact must have been recorded through this frontend
  // against the same module; the module itself is the resolver.
  if (!Flags.getString("replay").empty()) {
    if (!checkReplayExclusive(Flags, {}))
      return 2;
    auto Resolve = [&Module](const session::ReproArtifact &A,
                             std::function<rt::TestCase()> &MakeRt,
                             std::function<vm::Program()> &MakeVm) {
      (void)MakeVm;
      if (A.Form != "rt") {
        std::fprintf(stderr,
                     "repro records the %s form; icb_run replays only "
                     "runtime-form (posix) artifacts\n",
                     A.Form.c_str());
        return false;
      }
      if (A.Benchmark != Module.Name) {
        std::fprintf(stderr,
                     "repro was recorded against test '%s', but this module "
                     "is '%s'\n",
                     A.Benchmark.c_str(), Module.Name.c_str());
        return false;
      }
      MakeRt = [&Module] { return posix::moduleTestCase(Module); };
      return true;
    };
    // --bound here asserts which policy family the artifact must have
    // been recorded under; replayArtifact refuses a mismatch (exit 3).
    std::string BoundName;
    if (Flags.wasSet("bound")) {
      search::BoundSpec Spec;
      if (!search::parseBoundSpec(Flags.getString("bound"), Spec, &Error)) {
        std::fprintf(stderr, "%s\n", Error.c_str());
        return 2;
      }
      BoundName = Spec.Name;
    }
    bool PrintTrace = false;
    std::string TraceFile;
    readTraceFlag(Flags.getString("trace"), PrintTrace, TraceFile);
    if (!TraceFile.empty()) {
      std::fprintf(stderr, "--trace=FILE records a search; --replay takes "
                           "only the bare --trace (print the trace)\n");
      return 2;
    }
    return replayArtifact(Flags.getString("replay"),
                          Flags.getBool("minimize"), PrintTrace, BoundName,
                          Resolve);
  }
  if (Flags.getBool("minimize")) {
    std::fprintf(stderr, "--minimize requires --replay=FILE\n");
    return 2;
  }

  RunConfig Config;
  if (!readRunConfig(Flags, Config))
    return 2;

  SessionState S;
  std::string ResumeDir;
  if (!readSessionFlags(Flags, S, ResumeDir))
    return 2;

  session::CheckpointData ResumeData;
  if (!ResumeDir.empty()) {
    int Rc = applyResume(Flags, ResumeDir, ResumeData, Config, S,
                         /*BenchName=*/nullptr, /*BugLabel=*/nullptr);
    if (Rc)
      return Rc;
    // The checkpoint has no --benchmark flag to check against; the module
    // on the command line is the identity, so verify it matches.
    if (ResumeData.Meta.Form != "rt") {
      std::fprintf(stderr,
                   "--resume: checkpoint was taken on the %s form; icb_run "
                   "runs the runtime form only\n",
                   ResumeData.Meta.Form.c_str());
      return 2;
    }
    if (ResumeData.Meta.Benchmark != Module.Name) {
      std::fprintf(stderr,
                   "--resume: checkpoint records test '%s', but this module "
                   "is '%s'\n",
                   ResumeData.Meta.Benchmark.c_str(), Module.Name.c_str());
      return 2;
    }
  }

  if (!checkSessionStrategy(Config, S))
    return 2;

  session::Manifest Manifest("icb_run");
  if (!S.JsonPath.empty()) {
    using session::JsonValue;
    JsonValue Cfg = configRecord(Config);
    Cfg.set("module", JsonValue::str(Module.Path));
    Cfg.set("test", JsonValue::str(Module.Name));
    if (!ResumeDir.empty())
      Cfg.set("resumed_from", JsonValue::str(ResumeDir));
    Manifest.setConfig(std::move(Cfg));
    S.Json = &Manifest;
    if (!Manifest.writeTo(S.JsonPath, &Error)) {
      std::fprintf(stderr, "%s\n", Error.c_str());
      return 4;
    }
  }

  S.Benchmark = Module.Name;
  S.Bug = "default";
  return runRt(posix::moduleTestCase(Module), Config, S);
}
