//===- examples/posix/kv_server.cpp - Racy LRU eviction UAF (bound 1) -----===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//
//
// A memcached-shaped server in miniature: N worker threads share one epoll
// instance over non-blocking client connections (modeled socketpairs) plus
// an EFD_SEMAPHORE shutdown eventfd, draining 4-byte framed GET/SET
// requests from a single-slot slab cache.
//
// The seeded bug is the classic ref-count-free eviction race: the GET
// handler looks the item up under the cache lock but then *drops the lock*
// to write the response, keeping a raw pointer to the item. The response
// write() is an io scheduling point — preempt there (one preemption) and
// a concurrent SET evicts the slot and free()s the item, so the handler's
// trailing `It->Hits++` writes into freed memory. The managed heap arena
// quarantines and poisons freed blocks, so the stray write surfaces as a
// reported use-after-free at the next free's sweep:
//
//   bound 0: non-preemptive schedules only — the GET handler's
//            unlock→write→Hits++ window contains no blocking call, so it
//            always runs to completion before the SET; no bug.
//   bound 1: preempt the GET worker at the response write(), run the SET
//            worker's evict+free, resume — use-after-free.
//
// Both workers also race on each connection's readiness: level-triggered
// epoll wakes both for one request, the loser's read() takes the modeled
// EAGAIN branch (the sockets are SOCK_NONBLOCK) and moves on.
//
// This file is PURE POSIX: no icb header is included. Like prod_cons.cpp
// it is built twice — macro shim and linker --wrap — proving both delivery
// mechanisms of the io frontend on identical source.
//
//===----------------------------------------------------------------------===//

#include <pthread.h>
#include <stdint.h>
#include <stdlib.h>
#include <string.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

namespace {

enum { kWorkers = 2, kConns = 2 };

// A cached item. Real memcached refcounts these; the seeded bug is
// exactly a missing refcount on the do-IO-outside-the-lock path.
struct Item {
  char Key;
  char Value[2];
  int Hits;
};

pthread_mutex_t CacheLock = PTHREAD_MUTEX_INITIALIZER;

// thread_local: under `icb_run --jobs N` the N workers run concurrent
// executions of this module in one process, so mutable test state needs
// one copy per worker OS thread (the execution's modeled threads — fibers
// — share it). CacheLock needs no copy: only its address is used.
thread_local Item *Slot;      // Single-slot slab: every SET evicts.
thread_local int EpollFd;
thread_local int StopFd;
thread_local int ServerFd[kConns]; // Server side of each connection.
thread_local int ClientFd[kConns]; // Client side, driven by main.

void handleRequest(int Fd) {
  char Req[4];
  ssize_t Got = read(Fd, Req, sizeof Req);
  if (Got != (ssize_t)sizeof Req)
    return; // EAGAIN: the other worker won the race for this request.
  if (Req[0] == 'G') {
    pthread_mutex_lock(&CacheLock);
    Item *It = (Slot && Slot->Key == Req[1]) ? Slot : NULL;
    pthread_mutex_unlock(&CacheLock);
    if (!It) {
      write(Fd, "??", 2);
      return;
    }
    // BUG: the lock is gone but the raw pointer is kept across the
    // response write — an io scheduling point — so a concurrent SET can
    // evict and free the item before the stats update below.
    write(Fd, It->Value, 2);
    It->Hits++; // use-after-free when the eviction wins the race
  } else if (Req[0] == 'S') {
    Item *Fresh = (Item *)malloc(sizeof(Item));
    Fresh->Key = Req[1];
    Fresh->Value[0] = Req[2];
    Fresh->Value[1] = Req[3];
    Fresh->Hits = 0;
    pthread_mutex_lock(&CacheLock);
    Item *Old = Slot;
    Slot = Fresh;
    pthread_mutex_unlock(&CacheLock);
    free(Old); // Evict: the cache holds one slot.
    write(Fd, "ok", 2);
  }
}

void *worker(void *) {
  struct epoll_event Evs[4];
  int Running = 1;
  while (Running) {
    int N = epoll_wait(EpollFd, Evs, 4, -1);
    if (N < 0)
      break;
    // The stop eventfd is registered last, so connection readiness sorts
    // ahead of shutdown within a batch: no request is left behind.
    for (int I = 0; I < N && Running; ++I) {
      int Fd = (int)Evs[I].data.fd;
      if (Fd == StopFd) {
        uint64_t Token;
        if (read(StopFd, &Token, sizeof Token) == (ssize_t)sizeof Token)
          Running = 0;
        continue;
      }
      handleRequest(Fd);
    }
  }
  return NULL;
}

} // namespace

extern "C" const char *icb_test_name(void) { return "kv-server"; }

extern "C" void icb_test_main(void) {
  // Seed the cache with k1 before any worker exists.
  Slot = (Item *)malloc(sizeof(Item));
  Slot->Key = '1';
  Slot->Value[0] = 'v';
  Slot->Value[1] = '1';
  Slot->Hits = 0;

  EpollFd = epoll_create1(0);
  for (int I = 0; I < kConns; ++I) {
    int Sv[2];
    socketpair(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK, 0, Sv);
    ServerFd[I] = Sv[0];
    ClientFd[I] = Sv[1];
    struct epoll_event Ev;
    memset(&Ev, 0, sizeof Ev);
    Ev.events = EPOLLIN;
    Ev.data.fd = ServerFd[I];
    epoll_ctl(EpollFd, EPOLL_CTL_ADD, ServerFd[I], &Ev);
  }
  StopFd = eventfd(0, EFD_SEMAPHORE | EFD_NONBLOCK);
  struct epoll_event StopEv;
  memset(&StopEv, 0, sizeof StopEv);
  StopEv.events = EPOLLIN;
  StopEv.data.fd = StopFd;
  epoll_ctl(EpollFd, EPOLL_CTL_ADD, StopFd, &StopEv);

  // Preload one request per connection: conn 0 reads k1, conn 1 evicts it
  // — plus one shutdown token per worker. All writes land before the
  // workers spawn, so the whole race budget goes to the handlers.
  write(ClientFd[0], "G1..", 4);
  write(ClientFd[1], "S2xy", 4);
  uint64_t Tokens = kWorkers;
  write(StopFd, &Tokens, sizeof Tokens);

  pthread_t Tids[kWorkers];
  for (int I = 0; I < kWorkers; ++I)
    pthread_create(&Tids[I], NULL, worker, NULL);
  for (int I = 0; I < kWorkers; ++I)
    pthread_join(Tids[I], NULL);

  free(Slot); // This free's sweep reports any quarantine trample.
  Slot = NULL;
  for (int I = 0; I < kConns; ++I) {
    close(ServerFd[I]);
    close(ClientFd[I]);
  }
  close(StopFd);
  close(EpollFd);
}
