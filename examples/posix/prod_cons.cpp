//===- examples/posix/prod_cons.cpp - Lost-wakeup deadlock (bound 2) ------===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//
//
// A producer/consumer pair with the classic lost-wakeup bug: the consumer
// tests its condition and decides to wait *outside* any protocol that
// orders the producer's signal after the wait. Two independent preemptions
// are needed to lose the wakeup:
//
//   1. preempt the consumer after sem_post(&tick) but before it has
//      entered pthread_cond_wait (its "announce window"), and
//   2. preempt the producer between pthread_cond_signal and
//      pthread_mutex_lock, so the signal fires while nobody waits and
//      ready=1 is not yet visible when the consumer finally waits.
//
// The tick semaphore gates the producer so it cannot run before the
// consumer's announcement at all — without a preemption the producer has
// no way to act early for free. Hence: no deadlock at preemption bound 1,
// deadlock (consumer blocked forever, main blocked in join) at bound 2 —
// the shape of Table 2 of the paper, expressed in ordinary pthreads.
//
// This file is PURE POSIX: no icb header is included. It is built twice —
// once with `-include icb/posix.h` (macro redirection) and once completely
// unmodified with the --wrap link options — proving both delivery
// mechanisms of the frontend on identical source.
//
//===----------------------------------------------------------------------===//

#include <pthread.h>
#include <semaphore.h>

namespace {

pthread_mutex_t Lock = PTHREAD_MUTEX_INITIALIZER;
pthread_cond_t Ready = PTHREAD_COND_INITIALIZER;
sem_t Tick;
// thread_local: under `icb_run --jobs N` the N workers run concurrent
// executions of this module in one process, so mutable test state needs
// one copy per worker (the worker's modeled threads — fibers — share it).
// The sync objects above need no copy: only their addresses are used.
thread_local int DataReady;

void *consumer(void *) {
  // Announce interest, then (bug) publish/wait non-atomically.
  sem_post(&Tick);
  pthread_mutex_lock(&Lock);
  if (!DataReady)
    pthread_cond_wait(&Ready, &Lock);
  pthread_mutex_unlock(&Lock);
  return nullptr;
}

void *producer(void *) {
  sem_wait(&Tick);
  // Bug: signal before the store is published under the lock. Correct
  // code signals with the mutex held after setting DataReady.
  pthread_cond_signal(&Ready);
  pthread_mutex_lock(&Lock);
  DataReady = 1;
  pthread_mutex_unlock(&Lock);
  return nullptr;
}

} // namespace

extern "C" const char *icb_test_name(void) { return "posix-prod-cons"; }

extern "C" void icb_test_main(void) {
  sem_init(&Tick, 0, 0);
  DataReady = 0;
  pthread_t C, P;
  pthread_create(&C, nullptr, consumer, nullptr);
  pthread_create(&P, nullptr, producer, nullptr);
  pthread_join(C, nullptr);
  pthread_join(P, nullptr);
  sem_destroy(&Tick);
}
