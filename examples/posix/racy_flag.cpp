//===- examples/posix/racy_flag.cpp - Seeded data race (bound 0) ----------===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//
//
// The smallest interesting race: one thread writes a flag without taking
// the lock, another reads it with the lock held. The accesses share no
// lock and no happens-before edge, so the vector-clock detector flags
// them in *every* interleaving — icb_run reports the race within
// preemption bound 0, on the very first execution, deterministically at
// any --jobs count.
//
// Unlike prod_cons.cpp this test includes the shim header directly (the
// macro-renaming delivery): plain memory accesses are invisible to the
// frontend, so the test annotates them with icb_posix_shared_read/write.
// The first annotated access to Flag happens on the main test thread,
// which gives the location a stable cross-execution identity (see
// include/icb/posix.h).
//
//===----------------------------------------------------------------------===//

#include "icb/posix.h"

namespace {

pthread_mutex_t Lock = PTHREAD_MUTEX_INITIALIZER;
// One copy per icb_run worker; see prod_cons.cpp.
thread_local int Flag;

void *setter(void *) {
  // BUG: writes the flag without holding Lock.
  icb_posix_shared_write(&Flag, "Flag");
  Flag = 1;
  return nullptr;
}

void *reader(void *) {
  pthread_mutex_lock(&Lock);
  icb_posix_shared_read(&Flag, "Flag");
  // Note: nothing branches on the value — module globals are shared by
  // the --jobs N worker threads, so control flow must not depend on what
  // another worker's execution happens to have stored.
  pthread_mutex_unlock(&Lock);
  return nullptr;
}

} // namespace

extern "C" const char *icb_test_name(void) { return "posix-racy-flag"; }

extern "C" void icb_test_main(void) {
  icb_posix_shared_write(&Flag, "Flag");
  Flag = 0;
  pthread_t S, R;
  pthread_create(&S, nullptr, setter, nullptr);
  pthread_create(&R, nullptr, reader, nullptr);
  pthread_join(S, nullptr);
  pthread_join(R, nullptr);
}
