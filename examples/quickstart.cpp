//===- examples/quickstart.cpp - Five-minute tour of the checker -----------===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Quickstart: write a small multithreaded test against the intercepted
/// runtime API, hand it to the iterative context-bounding explorer, and
/// get back a minimal-preemption counterexample trace.
///
/// The program under test is a bank account whose transfer path reads the
/// balance, computes, and writes it back while holding the wrong lock —
/// the classic lost update. ICB finds it with exactly one preemption and
/// prints the interleaving.
///
/// Run:  ./quickstart [--fixed]
///
//===----------------------------------------------------------------------===//

#include "rt/Atomic.h"
#include "rt/Explore.h"
#include "rt/Scheduler.h"
#include "rt/Sync.h"
#include "rt/Thread.h"
#include "support/CommandLine.h"
#include <cstdio>

using namespace icb;
using namespace icb::rt;

namespace {

/// A bank with two accounts. The buggy deposit path updates the balance
/// outside the account's lock "because the update is just one line".
struct Bank {
  Bank() : Lock("accountLock"), Balance("balance", 100) {}

  Mutex Lock;
  Atomic<int> Balance;

  void depositBuggy(int Amount) {
    int Current = Balance.load(); // BUG: read-modify-write, no lock.
    Balance.store(Current + Amount);
  }

  void depositFixed(int Amount) {
    Lock.lock();
    int Current = Balance.load();
    Balance.store(Current + Amount);
    Lock.unlock();
  }
};

TestCase makeBankTest(bool Fixed) {
  return {Fixed ? "bank-fixed" : "bank-buggy", [Fixed] {
    Bank B;
    auto Deposit = [&B, Fixed] {
      if (Fixed)
        B.depositFixed(50);
      else
        B.depositBuggy(50);
    };
    Thread Teller1(Deposit, "teller1");
    Thread Teller2(Deposit, "teller2");
    Teller1.join();
    Teller2.join();
    testAssert(B.Balance.load() == 200,
               "a deposit was lost: balance != 200");
  }};
}

} // namespace

int main(int Argc, char **Argv) {
  FlagSet Flags("quickstart: find a lost-update bug with iterative "
                "context bounding");
  Flags.addBool("fixed", false, "run the corrected (locked) deposit path");
  Flags.addInt("max-bound", 4, "maximum preemption bound to explore");
  std::string Error;
  if (!Flags.parse(Argc, Argv, &Error)) {
    std::fprintf(stderr, "%s\n", Error.c_str());
    return 2;
  }

  TestCase Test = makeBankTest(Flags.getBool("fixed"));
  ExploreOptions Opts;
  Opts.Limits.StopAtFirstBug = true;
  Opts.Limits.MaxPreemptionBound =
      static_cast<unsigned>(Flags.getInt("max-bound"));
  IcbExplorer Icb(Opts);

  std::printf("exploring '%s' with iterative context bounding...\n",
              Test.Name.c_str());
  ExploreResult R = Icb.explore(Test);
  std::printf("  executions: %llu   distinct states: %llu\n",
              (unsigned long long)R.Stats.Executions,
              (unsigned long long)R.Stats.DistinctStates);

  if (!R.foundBug()) {
    std::printf("no bug found up to preemption bound %lld%s\n",
                (long long)Flags.getInt("max-bound"),
                R.Stats.Completed ? " (state space exhausted)" : "");
    return 0;
  }

  const RtBug &Bug = *R.simplestBug();
  std::printf("\n%s\n", Bug.str().c_str());
  std::printf("\ncounterexample (replayed):\n%s",
              renderBugTrace(Test, Bug, Opts.Exec).c_str());
  return 1;
}
