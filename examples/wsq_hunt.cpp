//===- examples/wsq_hunt.cpp - Hunting the work-stealing queue bugs --------===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Section 2.1's scenario end to end: "The implementor gave us a test
/// harness along with three variations of his implementation, each
/// containing what he considered to be a subtle bug. Our model checker
/// based on iterative context-bounding found each of those bugs within a
/// context-switch bound of two."
///
/// This example runs ICB over all three seeded variants of the THE-protocol
/// work-stealing deque, reports the minimal preemption bound of each bug,
/// and (with --trace) prints the counterexample interleavings.
///
/// Run:  ./wsq_hunt [--trace] [--items=3]
///
//===----------------------------------------------------------------------===//

#include "benchmarks/WorkStealingQueue.h"
#include "rt/Explore.h"
#include "support/CommandLine.h"
#include <cstdio>

using namespace icb;
using namespace icb::bench;
using namespace icb::rt;

int main(int Argc, char **Argv) {
  FlagSet Flags("wsq_hunt: find the three seeded work-stealing queue bugs "
                "with iterative context bounding");
  Flags.addBool("trace", false, "print the counterexample traces");
  Flags.addInt("items", 3, "items the victim pushes");
  std::string Error;
  if (!Flags.parse(Argc, Argv, &Error)) {
    std::fprintf(stderr, "%s\n", Error.c_str());
    return 2;
  }
  unsigned Items = static_cast<unsigned>(Flags.getInt("items"));

  unsigned FoundWithinTwo = 0;
  for (WsqBug Bug : {WsqBug::PopCheckThenAct, WsqBug::PopRetryNoLock,
                     WsqBug::UnsynchronizedSteal}) {
    TestCase Test = workStealingTest({Items, 4, Bug});
    ExploreOptions Opts;
    Opts.Limits.StopAtFirstBug = true;
    Opts.Limits.MaxPreemptionBound = 3;
    IcbExplorer Icb(Opts);
    ExploreResult R = Icb.explore(Test);

    std::printf("variant %-22s ", wsqBugName(Bug));
    if (!R.foundBug()) {
      std::printf("no bug within bound 3 (%llu executions)\n",
                  (unsigned long long)R.Stats.Executions);
      continue;
    }
    const RtBug &Found = *R.simplestBug();
    std::printf("bug at preemption bound %u after %llu executions\n",
                Found.Preemptions,
                (unsigned long long)R.Stats.Executions);
    std::printf("  %s\n", Found.str().c_str());
    if (Found.Preemptions <= 2)
      ++FoundWithinTwo;
    if (Flags.getBool("trace"))
      std::printf("%s\n", renderBugTrace(Test, Found, Opts.Exec).c_str());
  }

  std::printf("\n%u of 3 variants exposed within a context-switch bound of "
              "two (the paper found all three within two).\n",
              FoundWithinTwo);
  return FoundWithinTwo == 3 ? 0 : 1;
}
