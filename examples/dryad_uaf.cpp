//===- examples/dryad_uaf.cpp - The Figure 3 use-after-free ----------------===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces the paper's flagship bug, Figure 3's Dryad use-after-free:
/// "The bug requires a context switch to happen right before the call to
/// EnterCriticalSection in AlertApplication. This is the only preempting
/// context switch. The bug trace CHESS found involves 6 nonpreempting
/// context switches ... a depth-first search is flooded with an unbounded
/// number of preemptions, and is thus unable to expose the error within
/// reasonable time limits."
///
/// This example (1) finds the bug with ICB, confirming one preemption and
/// counting the nonpreempting switches, (2) prints the full interleaving,
/// and (3) shows DFS burning through a far larger execution budget on
/// high-preemption schedules without finding it.
///
/// Run:  ./dryad_uaf [--dfs-budget=200000]
///
//===----------------------------------------------------------------------===//

#include "benchmarks/DryadChannels.h"
#include "rt/Explore.h"
#include "support/CommandLine.h"
#include <cstdio>

using namespace icb;
using namespace icb::bench;
using namespace icb::rt;

int main(int Argc, char **Argv) {
  FlagSet Flags("dryad_uaf: reproduce Figure 3's use-after-free");
  Flags.addInt("dfs-budget", 200000,
               "executions the depth-first search may burn");
  std::string Error;
  if (!Flags.parse(Argc, Argv, &Error)) {
    std::fprintf(stderr, "%s\n", Error.c_str());
    return 2;
  }

  TestCase Test = dryadTest({3, 2, DryadBug::Fig3Uaf});

  // 1. ICB: found with exactly one preemption.
  ExploreOptions IcbOpts;
  IcbOpts.Limits.StopAtFirstBug = true;
  IcbOpts.Limits.MaxPreemptionBound = 2;
  IcbExplorer Icb(IcbOpts);
  ExploreResult IcbR = Icb.explore(Test);
  if (!IcbR.foundBug()) {
    std::printf("unexpected: ICB did not find the Figure 3 bug\n");
    return 1;
  }
  const RtBug &Bug = *IcbR.simplestBug();
  std::printf("ICB found the use-after-free after %llu executions:\n  %s\n",
              (unsigned long long)IcbR.Stats.Executions,
              Bug.str().c_str());
  std::printf("  (paper: 1 preempting + 6 nonpreempting switches; "
              "measured: %u preempting + %u nonpreempting)\n\n",
              Bug.Preemptions, Bug.ContextSwitches - Bug.Preemptions);
  std::printf("%s\n", renderBugTrace(Test, Bug, IcbOpts.Exec).c_str());

  // 2. DFS: the same budget (and then some) finds nothing — it sinks into
  // deep high-preemption corners of the schedule tree.
  ExploreOptions DfsOpts;
  DfsOpts.Limits.StopAtFirstBug = true;
  DfsOpts.Limits.MaxExecutions =
      static_cast<uint64_t>(Flags.getInt("dfs-budget"));
  DfsExplorer Dfs(DfsOpts);
  ExploreResult DfsR = Dfs.explore(Test);
  if (DfsR.foundBug())
    std::printf("DFS found it too, after %llu executions (preemptions in "
                "its trace: %u vs ICB's %u)\n",
                (unsigned long long)DfsR.Stats.Executions,
                DfsR.simplestBug()->Preemptions, Bug.Preemptions);
  else
    std::printf("DFS explored %llu executions (max %llu preemptions per "
                "execution) without finding the bug — the paper's \"could "
                "not be found by a depth-first search, even after running "
                "for a couple of hours\".\n",
                (unsigned long long)DfsR.Stats.Executions,
                (unsigned long long)
                    DfsR.Stats.PreemptionsPerExecution.max());
  return 0;
}
