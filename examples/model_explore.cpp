//===- examples/model_explore.cpp - The ZING-side model checker ------------===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tour of the explicit-state (ZING-style) side: build a model program
/// with the bytecode builder DSL, disassemble it, and explore it with each
/// search strategy — comparing executions, states, and the bugs found.
///
/// The model is the transaction manager with a selectable seeded bug
/// (Table 2's ZING benchmark).
///
/// Run:  ./model_explore [--bug=commit-stomp] [--disasm] [--cache]
///
//===----------------------------------------------------------------------===//

#include "benchmarks/TxnManagerModel.h"
#include "search/Checker.h"
#include "support/CommandLine.h"
#include "vm/Disassembler.h"
#include <cstdio>

using namespace icb;
using namespace icb::bench;
using namespace icb::search;

namespace {

TxnBug parseBug(const std::string &Name) {
  for (TxnBug Bug : {TxnBug::None, TxnBug::CommitStomp,
                     TxnBug::ReapCollision, TxnBug::CommitUpsert})
    if (Name == txnBugName(Bug))
      return Bug;
  return TxnBug::None;
}

void runStrategy(const vm::Program &Prog, StrategyKind Kind,
                 const char *Label, bool Cache) {
  SearchOptions Opts;
  Opts.Kind = Kind;
  Opts.UseStateCache = Cache;
  Opts.DepthBound = 20;
  Opts.RandomExecutions = 2000;
  Opts.Limits.MaxExecutions = 100000;
  Opts.Limits.MaxPreemptionBound = 5;
  SearchResult R = checkProgram(Prog, Opts);
  std::printf("  %-8s executions=%-8llu steps=%-9llu states=%-6llu %s",
              Label, (unsigned long long)R.Stats.Executions,
              (unsigned long long)R.Stats.TotalSteps,
              (unsigned long long)R.Stats.DistinctStates,
              R.Stats.Completed ? "(complete)" : "(capped)  ");
  if (R.foundBug())
    std::printf("  bug @%u: %s", R.simplestBug()->Preemptions,
                R.simplestBug()->Message.c_str());
  std::printf("\n");
}

} // namespace

int main(int Argc, char **Argv) {
  FlagSet Flags("model_explore: explore the transaction-manager model "
                "with every search strategy");
  Flags.addString("bug", "commit-stomp",
                  "seeded bug: none, commit-stomp, reap-collision, "
                  "commit-upsert");
  Flags.addBool("disasm", false, "print the model's bytecode");
  Flags.addBool("cache", false, "enable the ZING-style state cache");
  Flags.addInt("rounds", 2, "timer passes over the table");
  std::string Error;
  if (!Flags.parse(Argc, Argv, &Error)) {
    std::fprintf(stderr, "%s\n", Error.c_str());
    return 2;
  }

  TxnConfig Config;
  Config.TimerRounds = static_cast<unsigned>(Flags.getInt("rounds"));
  Config.Bug = parseBug(Flags.getString("bug"));
  vm::Program Prog = txnManagerModel(Config);
  std::printf("model '%s': %u threads, %zu instructions\n",
              Prog.Name.c_str(), Prog.numThreads(),
              Prog.totalInstructions());
  if (Flags.getBool("disasm"))
    std::printf("\n%s\n", vm::disassembleProgram(Prog).c_str());

  bool Cache = Flags.getBool("cache");
  std::printf("\nstrategies (state cache %s):\n", Cache ? "on" : "off");
  runStrategy(Prog, StrategyKind::Icb, "icb", Cache);
  runStrategy(Prog, StrategyKind::Dfs, "dfs", Cache);
  runStrategy(Prog, StrategyKind::DepthBoundedDfs, "db:20", false);
  runStrategy(Prog, StrategyKind::IterativeDfs, "idfs-20", false);
  runStrategy(Prog, StrategyKind::Random, "random", false);
  return 0;
}
