//===- obs/PhaseTimer.h - RAII hot-path phase timers ------------*- C++ -*-===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// ScopedPhase: a single clock read on entry and one on exit, recorded
/// into the worker's MetricShard as a MinMax observation in nanoseconds.
/// Cheap enough to leave enabled on the hot path; compiled out entirely
/// (no clock reads, no branches) under ICB_NO_METRICS.
///
/// On x86-64 the clock is the invariant TSC converted through a
/// once-calibrated multiplier: an rdtsc costs a third of a clock_gettime,
/// and the rt executor's per-step scopes make that difference the bulk of
/// the attached-registry overhead (bench/obs_overhead.cpp). Elsewhere it
/// falls back to std::chrono::steady_clock.
///
//===----------------------------------------------------------------------===//

#ifndef ICB_OBS_PHASETIMER_H
#define ICB_OBS_PHASETIMER_H

#include "obs/Metrics.h"
#include <chrono>
#if defined(__x86_64__)
#include <x86intrin.h>
#endif

namespace icb::obs {

namespace detail {
/// Monotonic wall clock in nanoseconds (one clock_gettime on Linux).
inline uint64_t steadyNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

#if defined(__x86_64__)
/// Nanoseconds per 2^20 TSC ticks, measured once against steady_clock
/// (Metrics.cpp). ~350k on a 3 GHz part; always nonzero.
uint64_t calibrateTscScale();

inline uint64_t tscScale() {
  static const uint64_t Scale = calibrateTscScale();
  return Scale;
}
#endif
} // namespace detail

/// Monotonic clock in nanoseconds. The epoch is unspecified (boot time on
/// the TSC path) — only differences are meaningful, which is all the
/// phase timers, busy/idle accounting, and progress rates need.
inline uint64_t nowNanos() {
#if defined(__x86_64__)
  return static_cast<uint64_t>(
      (static_cast<unsigned __int128>(__rdtsc()) * detail::tscScale()) >> 20);
#else
  return detail::steadyNanos();
#endif
}

/// Times one lexical scope into `Shard->Phases[P]`. Null-shard safe so
/// call sites need no metrics-enabled branch of their own. The optional
/// \p Also accumulator additionally receives the raw duration — used for
/// the per-worker busy/idle split, which wants plain sums rather than a
/// distribution.
class ScopedPhase {
public:
#ifndef ICB_NO_METRICS
  ScopedPhase(MetricShard *Shard, Phase P, uint64_t *Also = nullptr)
      : Shard(Shard), Also(Also), P(P),
        Start((Shard || Also) ? nowNanos() : 0) {}

  ~ScopedPhase() {
    if (!Shard && !Also)
      return;
    // Saturate at zero: TSC reads on different cores can disagree by a
    // handful of ticks even with an invariant TSC, and a wrapped uint64
    // would poison the phase's max and sum.
    uint64_t End = nowNanos();
    uint64_t Elapsed = End > Start ? End - Start : 0;
    if (Shard) {
      Shard->Phases[static_cast<size_t>(P)].observe(Elapsed);
      // Log2 latency bucket: 0 for a 0 ns scope, else the bit width of
      // the duration — bucket b covers [2^(b-1), 2^b) ns.
      size_t Bucket =
          Elapsed ? static_cast<size_t>(64 - __builtin_clzll(Elapsed)) : 0;
      Shard->PhaseHist[static_cast<size_t>(P)].increment(Bucket);
      if (Shard->Trace) {
        TraceEvent E;
        E.Kind = TraceEventKind::PhaseSlice;
        E.Nanos = Start;
        E.Arg0 = Elapsed;
        E.Extra = static_cast<uint16_t>(P);
        Shard->Trace->append(E);
      }
    }
    if (Also)
      *Also += Elapsed;
  }

private:
  MetricShard *Shard;
  uint64_t *Also;
  Phase P;
  uint64_t Start;
#else
  ScopedPhase(MetricShard *, Phase, uint64_t * = nullptr) {}
#endif

public:
  ScopedPhase(const ScopedPhase &) = delete;
  ScopedPhase &operator=(const ScopedPhase &) = delete;
};

} // namespace icb::obs

#endif // ICB_OBS_PHASETIMER_H
