//===- obs/Metrics.cpp - Search telemetry registry ------------------------===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//

#include "obs/Metrics.h"
#include "obs/PhaseTimer.h"
#include <cassert>
#include <chrono>

namespace icb::obs {

#if defined(__x86_64__)
namespace detail {

uint64_t calibrateTscScale() {
  using Clock = std::chrono::steady_clock;
  // Spin for ~2ms against steady_clock. Paid once per process, on the
  // first nowNanos() call; relative error is well under 0.1%, which is
  // plenty for phase timers and progress rates.
  uint64_t Tsc0 = __rdtsc();
  Clock::time_point C0 = Clock::now();
  Clock::time_point C1;
  do {
    C1 = Clock::now();
  } while (C1 - C0 < std::chrono::milliseconds(2));
  uint64_t Ticks = __rdtsc() - Tsc0;
  uint64_t Nanos = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(C1 - C0).count());
  if (Ticks == 0 || Nanos == 0)
    return 1 << 20; // Degenerate clock: pretend 1 tick == 1 ns.
  return (Nanos << 20) / Ticks;
}

} // namespace detail
#endif

const char *counterName(Counter C) {
  switch (C) {
  case Counter::SeenHit:
    return "seen_hit";
  case Counter::SeenMiss:
    return "seen_miss";
  case Counter::TerminalHit:
    return "terminal_hit";
  case Counter::TerminalMiss:
    return "terminal_miss";
  case Counter::ItemHit:
    return "item_hit";
  case Counter::ItemMiss:
    return "item_miss";
  case Counter::Chains:
    return "chains";
  case Counter::BranchedItems:
    return "branched_items";
  case Counter::DeferredItems:
    return "deferred_items";
  case Counter::ReplaySteps:
    return "replay_steps";
  case Counter::TransitionsSlept:
    return "transitions_slept";
  case Counter::WokenByBudget:
    return "woken_by_budget";
  case Counter::SleptExecutions:
    return "slept_executions";
  case Counter::IoBlock:
    return "io_block";
  case Counter::IoWake:
    return "io_wake";
  case Counter::IoSpurious:
    return "io_spurious";
  case Counter::StealAttempts:
    return "steal_attempts";
  case Counter::StealHits:
    return "steal_hits";
  case Counter::Snapshots:
    return "snapshots";
  case Counter::DistLeases:
    return "dist_leases";
  case Counter::DistLeaseItems:
    return "dist_lease_items";
  case Counter::DistLeaseRevoked:
    return "dist_lease_revoked";
  case Counter::DistReconnects:
    return "dist_reconnects";
  case Counter::NumCounters:
    break;
  }
  assert(false && "invalid counter");
  return "?";
}

bool counterIsDeterministic(Counter C) {
  switch (C) {
  case Counter::SeenHit:
  case Counter::SeenMiss:
  case Counter::TerminalHit:
  case Counter::TerminalMiss:
  case Counter::ItemHit:
  case Counter::ItemMiss:
  case Counter::Chains:
  case Counter::BranchedItems:
  case Counter::DeferredItems:
  case Counter::ReplaySteps:
  case Counter::TransitionsSlept:
  case Counter::WokenByBudget:
  case Counter::SleptExecutions:
  case Counter::IoBlock:
  case Counter::IoWake:
  case Counter::IoSpurious:
    return true;
  case Counter::StealAttempts:
  case Counter::StealHits:
  case Counter::Snapshots:
  case Counter::DistLeases:
  case Counter::DistLeaseItems:
  case Counter::DistLeaseRevoked:
  case Counter::DistReconnects:
  case Counter::NumCounters:
    return false;
  }
  return false;
}

const char *phaseName(Phase P) {
  switch (P) {
  case Phase::Replay:
    return "replay";
  case Phase::Execute:
    return "execute";
  case Phase::Hash:
    return "hash";
  case Phase::CacheProbe:
    return "cache_probe";
  case Phase::RaceDetect:
    return "race_detect";
  case Phase::Snapshot:
    return "snapshot";
  case Phase::Por:
    return "por";
  case Phase::Io:
    return "io";
  case Phase::NumPhases:
    break;
  }
  assert(false && "invalid phase");
  return "?";
}

void MetricShard::merge(const MetricShard &Other) {
  for (size_t I = 0; I != NumCounters; ++I)
    Counters[I] += Other.Counters[I];
  for (size_t I = 0; I != NumPhases; ++I) {
    Phases[I].merge(Other.Phases[I]);
    PhaseHist[I].merge(Other.PhaseHist[I]);
  }
  ReplayDepth.merge(Other.ReplayDepth);
  ExecutionsPerBound.merge(Other.ExecutionsPerBound);
  SleepSavedPerBound.merge(Other.SleepSavedPerBound);
  EstMassPerBound.merge(Other.EstMassPerBound);
  for (const auto &[Name, Stat] : Other.Sites)
    Sites[Name].merge(Stat);
  Worker.merge(Other.Worker);
}

void MetricShard::reset() {
  // Keep the registry-owned trace attachment across resets.
  TraceBuf *Attached = Trace;
  *this = MetricShard();
  Trace = Attached;
}

bool MetricsSnapshot::empty() const {
  for (uint64_t C : Counters)
    if (C != 0)
      return false;
  for (const MinMax &P : Phases)
    if (!P.empty())
      return false;
  for (const Histogram &H : PhaseHist)
    if (!H.buckets().empty())
      return false;
  if (!ReplayDepth.empty() || !ExecutionsPerBound.buckets().empty() ||
      !SleepSavedPerBound.buckets().empty() ||
      !EstMassPerBound.buckets().empty())
    return false;
  for (const auto &[Name, Stat] : Sites)
    if (!Stat.empty())
      return false;
  for (const WorkerMetrics &W : Workers)
    if (W.BusyNanos != 0 || W.IdleNanos != 0)
      return false;
  return true;
}

void MetricsSnapshot::merge(const MetricsSnapshot &Other) {
  Counters.resize(NumCounters, 0);
  for (size_t I = 0; I != Other.Counters.size() && I != NumCounters; ++I)
    Counters[I] += Other.Counters[I];
  Phases.resize(NumPhases);
  for (size_t I = 0; I != Other.Phases.size() && I != NumPhases; ++I)
    Phases[I].merge(Other.Phases[I]);
  PhaseHist.resize(NumPhases);
  for (size_t I = 0; I != Other.PhaseHist.size() && I != NumPhases; ++I)
    PhaseHist[I].merge(Other.PhaseHist[I]);
  ReplayDepth.merge(Other.ReplayDepth);
  ExecutionsPerBound.merge(Other.ExecutionsPerBound);
  SleepSavedPerBound.merge(Other.SleepSavedPerBound);
  EstMassPerBound.merge(Other.EstMassPerBound);
  for (const auto &[Name, Stat] : Other.Sites)
    Sites[Name].merge(Stat);
  if (Workers.size() < Other.Workers.size())
    Workers.resize(Other.Workers.size());
  for (size_t I = 0; I != Other.Workers.size(); ++I)
    Workers[I].merge(Other.Workers[I]);
}

void MetricsRegistry::ensureShards(unsigned N) {
  while (ShardList.size() < N)
    ShardList.emplace_back();
#ifndef ICB_NO_METRICS
  if (TraceCapacity != 0) {
    while (TraceList.size() < ShardList.size())
      TraceList.emplace_back(TraceCapacity);
    for (size_t I = 0; I != ShardList.size(); ++I)
      ShardList[I].Trace = &TraceList[I];
  }
#endif
}

void MetricsRegistry::enableTracing(size_t Capacity) {
#ifndef ICB_NO_METRICS
  if (Capacity == 0 || TraceCapacity != 0)
    return;
  TraceCapacity = Capacity;
  ensureShards(static_cast<unsigned>(ShardList.size()));
#else
  (void)Capacity;
#endif
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricShard Sum;
  for (const MetricShard &S : ShardList)
    Sum.merge(S);

  MetricsSnapshot Snap;
  Snap.Counters.assign(Sum.Counters, Sum.Counters + NumCounters);
  Snap.Phases.assign(Sum.Phases, Sum.Phases + NumPhases);
  Snap.PhaseHist.assign(Sum.PhaseHist, Sum.PhaseHist + NumPhases);
  Snap.ReplayDepth = Sum.ReplayDepth;
  Snap.ExecutionsPerBound = Sum.ExecutionsPerBound;
  Snap.SleepSavedPerBound = Sum.SleepSavedPerBound;
  Snap.EstMassPerBound = Sum.EstMassPerBound;
  Snap.Sites = Sum.Sites;
  Snap.Workers.reserve(ShardList.size());
  for (const MetricShard &S : ShardList)
    Snap.Workers.push_back(S.Worker);
  // Per-worker busy/idle is already folded into Snap.Workers above, so
  // the shard-summed copy inside Sum.Worker must not be double-counted.
  Snap.merge(Base);
  return Snap;
}

void MetricsRegistry::restore(const MetricsSnapshot &Snap) { Base = Snap; }

} // namespace icb::obs
