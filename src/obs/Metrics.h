//===- obs/Metrics.h - Search telemetry registry ----------------*- C++ -*-===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The observability subsystem's metrics layer: named monotonic counters,
/// phase timers, and small distributions accumulated per worker and merged
/// commutatively — the same discipline as the engine's SearchStats, so the
/// merged totals of a `--jobs N` run are independent of scheduling.
///
/// The layout mirrors the parallel ICB driver: one cache-line-padded
/// MetricShard per worker, written by that worker only, read (and merged)
/// only at quiescent points — bound barriers, checkpoints, run end. There
/// is no atomic in the hot path; a counter increment is one add into a
/// worker-private slot.
///
/// Metrics come in two classes, reflected in the JSON export and the
/// determinism guarantees:
///
///   * *work-derived counters* (cache hits/misses, chains run, items
///     branched/deferred, replay depth, executions per bound) count events
///     of the bounded search tree itself. The tree is the same whatever
///     the worker count or interleaving, so the merged values are
///     byte-identical between `--jobs 1` and `--jobs N` runs, and between
///     an interrupted+resumed run and an uninterrupted one (snapshots
///     carry the counters; reconstruction work such as replaying a
///     checkpointed prefix through VmExecutor::loadItem is deliberately
///     not counted, mirroring how the engine keeps statistics
///     reconstruction-free);
///
///   * *timing metrics* (phase nanoseconds, worker busy/idle time, deque
///     steal attempts/hits, snapshot count) measure one particular run on
///     one particular machine and are never deterministic.
///
/// `ICB_NO_METRICS` compiles the hot-path instrumentation out entirely:
/// the helpers below become no-ops, ScopedPhase (PhaseTimer.h) reads no
/// clock, and every exported value is zero, while all types keep existing
/// so call sites and serialization build unchanged.
///
//===----------------------------------------------------------------------===//

#ifndef ICB_OBS_METRICS_H
#define ICB_OBS_METRICS_H

#include "obs/TraceLog.h"
#include "support/Stats.h"
#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

namespace icb::obs {

/// The schedule-space mass of one whole exploration, in the fixed-point
/// units the online Knuth-style estimator works in. The root work items
/// split this between them; every decision point splits a chain's
/// remaining mass evenly between its published children and its own
/// continuation; every finished execution credits its residue to
/// MetricShard::EstMassPerBound. Summed over a *completed* exploration
/// the credits reconstitute EstimateOne exactly, so
/// executions * EstimateOne / credited-mass is both an online estimate of
/// the total execution count and exact at completion. 2^62 leaves
/// headroom to sum credits without overflow while surviving ~60 halvings
/// before integer division underflows a path's mass to zero (such paths
/// simply stop contributing — the estimator degrades, never wraps).
inline constexpr uint64_t EstimateOne = uint64_t(1) << 62;

/// Monotonic event counters. The order is the wire order of the JSON
/// export; countersDeterministic() documents which prefix is work-derived.
enum class Counter : unsigned {
  // Work-derived (deterministic across worker counts and resume).
  SeenHit,       ///< Visited-state probe found the digest already present.
  SeenMiss,      ///< Visited-state probe inserted a new digest.
  TerminalHit,   ///< Terminal-fingerprint probe hit (rt executor).
  TerminalMiss,  ///< Terminal-fingerprint probe inserted (rt executor).
  ItemHit,       ///< (state, thread) work-item cache pruned a revisit.
  ItemMiss,      ///< (state, thread) work-item cache claimed a new item.
  Chains,        ///< Work-item chains executed (one execution each).
  BranchedItems, ///< Nonpreempting branches published (same bound).
  DeferredItems, ///< Preempting continuations published (bound c + 1).
  ReplaySteps,   ///< Schedule-prefix steps replayed before divergence.
  TransitionsSlept, ///< Enabled transitions skipped because asleep (POR).
  WokenByBudget,    ///< Sleepers conservatively woken at a preemption
                    ///< (budget changed — the Coons-style correction).
  SleptExecutions,  ///< Chains cut short with every enabled thread asleep.
  IoBlock,          ///< Fibers parked on a modeled fd that was not ready.
  IoWake,           ///< Parked io waits resumed by a peer's readiness edge.
  IoSpurious,       ///< Timed multiplexer waits that expired with nothing
                    ///< ready (the modeled epoll/poll/select timeout branch).
  // Timing-class (run- and machine-specific).
  StealAttempts, ///< Chase-Lev trySteal() calls by idle workers.
  StealHits,     ///< trySteal() calls that returned an item.
  Snapshots,     ///< Engine snapshots emitted (periodic/stop/final).
  // Distributed checking (dist/). Lease placement depends on joiner
  // timing, so these are timing-class even though each lease's contents
  // are deterministic.
  DistLeases,      ///< Work-item leases granted (coordinator) or
                   ///< executed (joiner).
  DistLeaseItems,  ///< Work items carried by those leases.
  DistLeaseRevoked, ///< Leases revoked after joiner loss (items re-queued).
  DistReconnects,  ///< Joiner reconnect attempts that reached hello again.

  NumCounters,
};

inline constexpr size_t NumCounters =
    static_cast<size_t>(Counter::NumCounters);

/// Scoped phases of the hot path, timed by ScopedPhase (PhaseTimer.h).
/// `Execute` is the outer per-chain scope; the others are nested slices of
/// it (their sums overlap Execute's, not partition it).
enum class Phase : unsigned {
  Replay,     ///< Schedule-prefix replay (rt divergence-point split, vm
              ///< checkpoint-item reconstruction).
  Execute,    ///< Running one work-item chain end to end.
  Hash,       ///< Happens-before fingerprint maintenance (rt executor).
  CacheProbe, ///< Visited/terminal/work-item digest-set probes.
  RaceDetect, ///< Per-execution race detector work (rt executor).
  Snapshot,   ///< Building + handing off an engine snapshot.
  Por,        ///< Sleep-set maintenance (independence filtering, pruning).
  Io,         ///< Modeled-I/O syscall bodies (fd table, streams, epoll).

  NumPhases,
};

inline constexpr size_t NumPhases = static_cast<size_t>(Phase::NumPhases);

/// Stable wire/report name of a counter ("seen_hit", "steal_attempts", ...).
const char *counterName(Counter C);

/// True for the work-derived counters whose merged values are identical
/// across worker counts (and across checkpoint/resume).
bool counterIsDeterministic(Counter C);

/// Stable wire/report name of a phase ("replay", "cache_probe", ...).
const char *phaseName(Phase P);

/// Per-preemption-site profile: one row of the object-by-operation table
/// `icb_report --sites` renders and the Landslide-style preemption-point
/// search will consume. Keyed by the site's display name (the preempted
/// thread's pending operation — "lock m_baseCS", "free conn", "lock[3]"),
/// each histogram indexed by preemption bound.
///
/// Taken (counted at defer time) and Execs (counted at every item-start,
/// whether the chain runs or is cache-pruned) are tree-derived and live
/// in the deterministic snapshot half. Bugs and NewStates are
/// timing-class: the shared work-item cache admits exactly one of
/// several same-digest chains, so which site's chain runs past the claim
/// — and therefore detects the bugs and first sees the states downstream
/// of it — depends on worker timing under `--jobs N`. Both are honest
/// attribution but serialize with the timing half.
struct SiteStat {
  Histogram Taken;     ///< Preemptive continuations published at the site.
  Histogram Execs;     ///< Chains whose seeding preemption was this site.
  Histogram Bugs;      ///< Bugs found in such chains.
  Histogram NewStates; ///< New state digests discovered in such chains.

  void merge(const SiteStat &Other) {
    Taken.merge(Other.Taken);
    Execs.merge(Other.Execs);
    Bugs.merge(Other.Bugs);
    NewStates.merge(Other.NewStates);
  }
  bool empty() const {
    return Taken.buckets().empty() && Execs.buckets().empty() &&
           Bugs.buckets().empty() && NewStates.buckets().empty();
  }
};

/// Per-worker wall-clock split of one engine round-robin worker.
struct WorkerMetrics {
  uint64_t BusyNanos = 0; ///< Inside Executor::runChain.
  uint64_t IdleNanos = 0; ///< Spinning/yielding with an empty deque.

  void merge(const WorkerMetrics &Other) {
    BusyNanos += Other.BusyNanos;
    IdleNanos += Other.IdleNanos;
  }
};

/// One worker's private slice of every metric. Padded to a cache line so
/// neighbouring workers' hot counters do not false-share (the same layout
/// discipline as the engine's WorkerState).
struct alignas(64) MetricShard {
  uint64_t Counters[NumCounters] = {};
  /// Per-phase durations in nanoseconds: count = scopes entered,
  /// sum = total ns, min/max = extreme scope durations.
  MinMax Phases[NumPhases];
  /// Per-phase latency distributions: bucket b counts scopes whose
  /// duration had b significant bits (log2 buckets: bucket 0 = 0 ns,
  /// bucket b covers [2^(b-1), 2^b) ns). Together with the MinMax mean
  /// this gives icb_report percentile estimates without per-scope storage.
  Histogram PhaseHist[NumPhases];
  /// Schedule-prefix replay depth per chain (rt executor).
  MinMax ReplayDepth;
  /// Executions completed per preemption bound.
  Histogram ExecutionsPerBound;
  /// Same-bound branches pruned by sleep sets, per preemption bound — each
  /// would have seeded at least one whole execution chain.
  Histogram SleepSavedPerBound;
  /// Schedule-space mass credited by finished executions, per bound (see
  /// EstimateOne). Work-derived: the tree fixes every split, so the merged
  /// histogram is identical across worker counts and resume.
  Histogram EstMassPerBound;
  /// Per-preemption-site profiles, keyed by display name (see SiteStat).
  std::map<std::string, SiteStat> Sites;
  WorkerMetrics Worker;
  /// Attached trace ring (owned by the registry); null when tracing is
  /// off. Emission sites test for null — the common case costs one load.
  TraceBuf *Trace = nullptr;

  void merge(const MetricShard &Other);
  void reset();
};

/// A mergeable, serializable image of every metric — what the manifest's
/// `metrics` block and a checkpoint's snapshot carry. Field order matches
/// the enums above.
struct MetricsSnapshot {
  std::vector<uint64_t> Counters; ///< NumCounters entries (or empty).
  std::vector<MinMax> Phases;     ///< NumPhases entries (or empty).
  std::vector<Histogram> PhaseHist; ///< NumPhases entries (or empty).
  MinMax ReplayDepth;
  Histogram ExecutionsPerBound;
  Histogram SleepSavedPerBound;
  Histogram EstMassPerBound;
  std::map<std::string, SiteStat> Sites;
  /// One entry per worker of the segment(s); index-wise merged across
  /// resumed segments (the checkpoint pins the job count).
  std::vector<WorkerMetrics> Workers;

  bool empty() const;
  void merge(const MetricsSnapshot &Other);

  /// Total credited schedule-space mass, all bounds.
  uint64_t estMassTotal() const { return EstMassPerBound.total(); }
  /// The Knuth estimate of the total execution count at every bound ≤ the
  /// deepest credited one, given \p Executions completed so far. Zero when
  /// nothing has been credited yet (callers render "-").
  uint64_t estimatedTotalExecutions(uint64_t Executions) const {
    uint64_t Mass = estMassTotal();
    if (Mass == 0)
      return 0;
    unsigned __int128 Wide =
        static_cast<unsigned __int128>(Executions) * EstimateOne;
    return static_cast<uint64_t>(Wide / Mass);
  }
  /// Fraction of the schedule space explored, in parts per million.
  uint64_t exploredPpm() const {
    uint64_t Mass = estMassTotal();
    unsigned __int128 Wide = static_cast<unsigned __int128>(Mass) * 1000000;
    return static_cast<uint64_t>(Wide / EstimateOne);
  }
};

/// Owns the per-worker shards plus the restored base of earlier run
/// segments. Shard handout and snapshotting happen on the driving thread
/// at quiescent points; each shard is then written by exactly one worker.
class MetricsRegistry {
public:
  explicit MetricsRegistry(unsigned Shards = 1) { ensureShards(Shards); }

  /// Grows the shard pool to at least \p N shards. Must be called before
  /// workers hold shard references (addresses are stable afterwards).
  void ensureShards(unsigned N);

  unsigned shards() const { return static_cast<unsigned>(ShardList.size()); }

  MetricShard &shard(unsigned Index) { return ShardList[Index]; }

  /// Merged view of the restored base plus every shard. Callers must
  /// quiesce the workers first (the drivers snapshot only at barriers or
  /// between chains).
  MetricsSnapshot snapshot() const;

  /// Seeds the registry from a checkpointed snapshot; the next
  /// snapshot() returns base + whatever the new segment accumulates.
  void restore(const MetricsSnapshot &Snap);

  /// Turns on decision-level tracing: every current and future shard gets
  /// a private TraceBuf of \p Capacity events attached. Must be called on
  /// the driving thread before workers hold shard references. No-op under
  /// ICB_NO_METRICS (the CLI rejects `--trace` there anyway).
  void enableTracing(size_t Capacity);
  bool tracingEnabled() const { return TraceCapacity != 0; }
  unsigned traceBufs() const {
    return static_cast<unsigned>(TraceList.size());
  }
  TraceBuf &traceBuf(unsigned Index) { return TraceList[Index]; }
  const TraceBuf &traceBuf(unsigned Index) const { return TraceList[Index]; }

private:
  std::deque<MetricShard> ShardList; ///< Stable addresses across growth.
  std::deque<TraceBuf> TraceList;    ///< Parallel to ShardList when on.
  size_t TraceCapacity = 0;
  MetricsSnapshot Base;
};

/// Adds \p N to a counter; no-op on a null shard or under ICB_NO_METRICS.
inline void count(MetricShard *S, Counter C, uint64_t N = 1) {
#ifndef ICB_NO_METRICS
  if (S)
    S->Counters[static_cast<size_t>(C)] += N;
#else
  (void)S;
  (void)C;
  (void)N;
#endif
}

/// Runs \p Stmt (an expression using shard pointer \p S) only when metrics
/// are compiled in and \p S is non-null. For the few call sites count()
/// does not cover (MinMax/Histogram observations).
#ifndef ICB_NO_METRICS
#define ICB_OBS(S, ...)                                                      \
  do {                                                                       \
    if ((S) != nullptr) {                                                    \
      __VA_ARGS__;                                                           \
    }                                                                        \
  } while (0)
#else
#define ICB_OBS(S, ...)                                                      \
  do {                                                                       \
    (void)(S);                                                               \
  } while (0)
#endif

} // namespace icb::obs

#endif // ICB_OBS_METRICS_H
