//===- obs/TraceLog.cpp - Decision-level exploration tracing --------------===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//

#include "obs/TraceLog.h"
#include "obs/Metrics.h"
#include "support/Format.h"
#include <cinttypes>
#include <cstring>

namespace icb::obs {

uint32_t TraceBuf::intern(const std::string &Text) {
  if (Text.empty())
    return 0;
  auto It = Index.find(Text);
  if (It != Index.end())
    return It->second;
  uint32_t Id = static_cast<uint32_t>(Strings.size());
  Strings.push_back(Text);
  Index.emplace(Text, Id);
  return Id;
}

namespace {

/// Minimal JSON string escape: quotes, backslashes, and control bytes.
std::string jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size() + 2);
  for (unsigned char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\r':
      Out += "\\r";
      break;
    default:
      if (C < 0x20)
        Out += strFormat("\\u%04x", C);
      else
        Out += static_cast<char>(C);
    }
  }
  return Out;
}

class TraceWriter {
public:
  TraceWriter(FILE *Out, uint64_t BaseNanos) : Out(Out), Base(BaseNanos) {}

  /// Opens one event object with the common fields; the caller appends
  /// `,"key":value` pairs and then calls close().
  void open(const char *Ph, unsigned Tid, uint64_t Nanos, const char *Name,
            const char *Cat) {
    uint64_t Rel = Nanos >= Base ? Nanos - Base : 0;
    std::fprintf(Out,
                 "%s  {\"ph\":\"%s\",\"pid\":0,\"tid\":%u,"
                 "\"ts\":%" PRIu64 ".%03" PRIu64 ",\"name\":\"%s\","
                 "\"cat\":\"%s\"",
                 First ? "" : ",\n", Ph, Tid, Rel / 1000, Rel % 1000, Name,
                 Cat);
    First = false;
  }

  void close() { std::fprintf(Out, "}"); }

  void meta(unsigned Tid, const std::string &Name) {
    std::fprintf(Out,
                 "%s  {\"ph\":\"M\",\"pid\":0,\"tid\":%u,"
                 "\"name\":\"thread_name\",\"args\":{\"name\":\"%s\"}}",
                 First ? "" : ",\n", Tid, jsonEscape(Name).c_str());
    First = false;
  }

private:
  FILE *Out;
  uint64_t Base;
  bool First = true;
};

uint64_t earliestNanos(const MetricsRegistry &Reg) {
  uint64_t Min = ~0ull;
  for (unsigned B = 0; B != Reg.traceBufs(); ++B) {
    const TraceBuf &Buf = Reg.traceBuf(B);
    for (size_t I = 0; I != Buf.size(); ++I)
      if (Buf.at(I).Nanos < Min)
        Min = Buf.at(I).Nanos;
  }
  return Min == ~0ull ? 0 : Min;
}

} // namespace

bool writePerfettoTrace(const MetricsRegistry &Reg, const std::string &Path,
                        std::string *Error) {
  FILE *Out = std::fopen(Path.c_str(), "w");
  if (!Out) {
    if (Error)
      *Error = "cannot open trace file: " + Path;
    return false;
  }
  uint64_t Base = earliestNanos(Reg);
  std::fprintf(Out, "{\"traceEvents\":[\n");
  TraceWriter W(Out, Base);
  for (unsigned B = 0; B != Reg.traceBufs(); ++B)
    W.meta(B, strFormat("worker %u", B));
  for (unsigned B = 0; B != Reg.traceBufs(); ++B) {
    const TraceBuf &Buf = Reg.traceBuf(B);
    if (uint64_t Dropped = Buf.dropped()) {
      W.open("i", B, Base, "trace window dropped events", "trace");
      std::fprintf(Out, ",\"s\":\"t\",\"args\":{\"count\":%" PRIu64 "}",
                   Dropped);
      W.close();
    }
    for (size_t I = 0; I != Buf.size(); ++I) {
      const TraceEvent &E = Buf.at(I);
      switch (E.Kind) {
      case TraceEventKind::PhaseSlice: {
        const char *Name =
            E.Extra < NumPhases ? phaseName(static_cast<Phase>(E.Extra))
                                : "?";
        W.open("X", B, E.Nanos, Name, "phase");
        std::fprintf(Out, ",\"dur\":%" PRIu64 ".%03" PRIu64, E.Arg0 / 1000,
                     E.Arg0 % 1000);
        W.close();
        break;
      }
      case TraceEventKind::ExecBegin: {
        if (E.Arg0 != 0) {
          W.open("f", B, E.Nanos, "item", "flow");
          std::fprintf(Out, ",\"bp\":\"e\",\"id\":\"0x%" PRIx64 "\"",
                       E.Arg0);
          W.close();
        }
        W.open("i", B, E.Nanos, "exec begin", "exec");
        std::fprintf(Out,
                     ",\"s\":\"t\",\"args\":{\"bound\":%u,\"site\":\"%s\"}",
                     E.Extra, jsonEscape(Buf.string(E.Str)).c_str());
        W.close();
        break;
      }
      case TraceEventKind::ExecEnd:
        W.open("i", B, E.Nanos, "exec end", "exec");
        std::fprintf(Out,
                     ",\"s\":\"t\",\"args\":{\"bound\":%u,"
                     "\"steps\":%" PRIu64 "}",
                     E.Extra, E.Arg0);
        W.close();
        break;
      case TraceEventKind::Branch:
      case TraceEventKind::Defer: {
        const char *Name =
            E.Kind == TraceEventKind::Branch ? "branch" : "defer";
        if (E.Arg0 != 0) {
          W.open("s", B, E.Nanos, "item", "flow");
          std::fprintf(Out, ",\"id\":\"0x%" PRIx64 "\"", E.Arg0);
          W.close();
        }
        W.open("i", B, E.Nanos, Name, "exec");
        std::fprintf(Out,
                     ",\"s\":\"t\",\"args\":{\"bound\":%u,\"site\":\"%s\"}",
                     E.Extra, jsonEscape(Buf.string(E.Str)).c_str());
        W.close();
        break;
      }
      case TraceEventKind::SleepSkip:
        W.open("i", B, E.Nanos, "sleep skip", "por");
        std::fprintf(Out, ",\"s\":\"t\",\"args\":{\"slept\":%" PRIu64 "}",
                     E.Arg0);
        W.close();
        break;
      case TraceEventKind::IoBlock:
      case TraceEventKind::IoWake:
        W.open("i", B, E.Nanos,
               E.Kind == TraceEventKind::IoBlock ? "io block" : "io wake",
               "io");
        std::fprintf(Out, ",\"s\":\"t\",\"args\":{\"detail\":\"%s\"}",
                     jsonEscape(Buf.string(E.Str)).c_str());
        W.close();
        break;
      case TraceEventKind::Bug:
        W.open("i", B, E.Nanos, "bug", "exec");
        std::fprintf(Out,
                     ",\"s\":\"p\",\"args\":{\"bound\":%u,"
                     "\"message\":\"%s\"}",
                     E.Extra, jsonEscape(Buf.string(E.Str)).c_str());
        W.close();
        break;
      }
    }
  }
  std::fprintf(Out, "\n]}\n");
  bool Ok = std::fflush(Out) == 0 && !std::ferror(Out);
  std::fclose(Out);
  if (!Ok && Error)
    *Error = "error writing trace file: " + Path;
  return Ok;
}

} // namespace icb::obs
