//===- obs/Progress.cpp - Live search progress ticker ---------------------===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//

#include "obs/Progress.h"
#include "obs/Metrics.h"
#include "obs/PhaseTimer.h"
#include <algorithm>
#include <cinttypes>
#include <cstring>
#include <unistd.h>

namespace icb::obs {

namespace {
/// Knuth estimate of the total execution count from a sample: completed
/// executions scaled by the inverse of the credited mass fraction. Zero
/// when nothing has been credited (callers render "-").
uint64_t estimatedTotal(const ProgressSample &S) {
  if (S.EstMass == 0)
    return 0;
  unsigned __int128 Wide =
      static_cast<unsigned __int128>(S.Executions) * EstimateOne;
  return static_cast<uint64_t>(Wide / S.EstMass);
}

/// Credited fraction of the schedule space, in parts per million.
uint64_t exploredPpm(const ProgressSample &S) {
  unsigned __int128 Wide =
      static_cast<unsigned __int128>(S.EstMass) * 1000000;
  return static_cast<uint64_t>(Wide / EstimateOne);
}
} // namespace

ProgressMeter::ProgressMeter(uint64_t PeriodMillis, FILE *Out)
    : Out(Out ? Out : stderr), IsTty(isatty(fileno(this->Out)) != 0),
      PeriodNanos(PeriodMillis * 1000000ull), StartNanos(nowNanos()),
      NextDeadline(StartNanos) {}

bool ProgressMeter::due() {
  uint64_t Deadline = NextDeadline.load(std::memory_order_relaxed);
  uint64_t Now = nowNanos();
  if (Now < Deadline)
    return false;
  // Claim the deadline; losers were beaten to this tick and move on.
  return NextDeadline.compare_exchange_strong(Deadline, Now + PeriodNanos,
                                              std::memory_order_relaxed);
}

void ProgressMeter::tick(const ProgressSample &S) { render(S, false); }

void ProgressMeter::finish(const ProgressSample &S) {
  render(S, true);
  if (IsTty)
    fputc('\n', Out);
  fflush(Out);
}

void ProgressMeter::render(const ProgressSample &S, bool Final) {
  uint64_t ElapsedNanos = nowNanos() - StartNanos;
  // executions/s with one decimal, in integer math.
  uint64_t RateDeci = 0;
  if (ElapsedNanos > 0)
    RateDeci = S.Executions * 10000000000ull / ElapsedNanos;

  char Line[256];
  int N = snprintf(Line, sizeof(Line),
                   "[icb] bound %" PRIu64 "/%" PRIu64 "  exec %" PRIu64
                   " (%" PRIu64 ".%" PRIu64 "/s)  states %" PRIu64
                   "  frontier %" PRIu64 "+%" PRIu64 "  bugs %" PRIu64,
                   S.Bound, S.MaxBound, S.Executions, RateDeci / 10,
                   RateDeci % 10, S.States, S.FrontierRemaining,
                   S.DeferredNext, S.Bugs);
  if (N < 0)
    return;
  size_t Len = std::min(sizeof(Line) - 1, static_cast<size_t>(N));

  // Online schedule-space estimate: projected total executions plus the
  // credited fraction in percent (two decimals from parts per million).
  uint64_t EstTotal = estimatedTotal(S);
  if (EstTotal > 0) {
    uint64_t Ppm = exploredPpm(S);
    int M = snprintf(Line + Len, sizeof(Line) - Len,
                     "  est %" PRIu64 " (%" PRIu64 ".%02" PRIu64 "%%)",
                     EstTotal, Ppm / 10000, Ppm % 10000 / 100);
    if (M > 0)
      Len = std::min(sizeof(Line) - 1, Len + static_cast<size_t>(M));
  }

  // ETA: prefer the estimator's projected remainder over the execution
  // rate; fall back to items left at this bound over the rate — a lower
  // bound on remaining work, since the next bound's queue is still being
  // filled.
  if (!Final && RateDeci > 0) {
    uint64_t Remaining = EstTotal > S.Executions ? EstTotal - S.Executions
                                                 : S.FrontierRemaining;
    if (Remaining > 0) {
      uint64_t EtaSecs = Remaining * 10 / RateDeci;
      int M = snprintf(Line + Len, sizeof(Line) - Len,
                       "  eta ~%" PRIu64 "s", EtaSecs);
      if (M > 0)
        Len = std::min(sizeof(Line) - 1, Len + static_cast<size_t>(M));
    }
  }
  if (Final) {
    uint64_t Secs = ElapsedNanos / 1000000000ull;
    uint64_t Millis = ElapsedNanos % 1000000000ull / 1000000ull;
    int M = snprintf(Line + Len, sizeof(Line) - Len,
                     "  done (%" PRIu64 ".%03" PRIu64 "s)", Secs, Millis);
    if (M > 0)
      Len = std::min(sizeof(Line) - 1, Len + static_cast<size_t>(M));
  }

  if (IsTty) {
    // Redraw in place, blanking any tail of a longer previous line.
    fputc('\r', Out);
    fwrite(Line, 1, Len, Out);
    for (uint64_t I = Len; I < LastLineLen; ++I)
      fputc(' ', Out);
    LastLineLen = Len;
  } else {
    fwrite(Line, 1, Len, Out);
    fputc('\n', Out);
  }
  fflush(Out);
}

} // namespace icb::obs
