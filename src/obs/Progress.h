//===- obs/Progress.h - Live search progress ticker -------------*- C++ -*-===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The `--progress` feed: engines sample their frontier into a
/// ProgressSample via EngineObserver::onProgress, and ProgressMeter
/// renders it as a single throttled stderr line. Progress output never
/// touches stdout — the determinism CI jobs diff stdout byte-for-byte,
/// and a ticker there would be both noise and a test break.
///
/// due() is the hot-path half: a relaxed load of the next deadline plus,
/// at most once per period, one compare-exchange to claim it. Any worker
/// may claim a tick; the claim is what throttles concurrent emitters in
/// the parallel driver without a lock.
///
//===----------------------------------------------------------------------===//

#ifndef ICB_OBS_PROGRESS_H
#define ICB_OBS_PROGRESS_H

#include <atomic>
#include <cstdint>
#include <cstdio>

namespace icb::obs {

/// One engine-frontier sample, cheap enough to assemble on demand. The
/// ETA the meter prints is Theorem-1 flavoured: items still queued at the
/// current bound over the observed execution rate — a lower bound on the
/// remaining work, since the next bound's queue is still growing.
struct ProgressSample {
  uint64_t Bound = 0;      ///< Preemption bound being drained.
  uint64_t MaxBound = 0;   ///< Configured ceiling (0 = unbounded).
  uint64_t Executions = 0; ///< Executions completed so far (all bounds).
  uint64_t TotalSteps = 0; ///< VM/runtime steps executed so far.
  uint64_t States = 0;     ///< Distinct states seen so far.
  uint64_t FrontierRemaining = 0; ///< Items still queued at this bound.
  uint64_t DeferredNext = 0;      ///< Items already deferred to bound+1.
  uint64_t Bugs = 0;              ///< Bugs recorded so far.
  /// Schedule-space mass credited by finished executions so far, in
  /// EstimateOne units (see obs/Metrics.h). Feeds the Knuth-style
  /// estimated-total and fraction-explored columns; 0 = estimator dark
  /// (ICB_NO_METRICS or nothing credited yet), rendered as "-".
  uint64_t EstMass = 0;
};

/// Throttled single-line stderr renderer. Thread-safe: due() is lock-free
/// and tick() is only entered by the claimant of a deadline. When stderr
/// is a TTY the line redraws in place (\r); otherwise each tick is its
/// own newline-terminated line so logs stay readable.
class ProgressMeter {
public:
  /// \p PeriodMillis throttles ticks; \p Out defaults to stderr (tests
  /// substitute a tmpfile).
  explicit ProgressMeter(uint64_t PeriodMillis = 1000, FILE *Out = nullptr);

  /// True once per period: the first caller past the deadline claims it
  /// and must follow up with tick(). The very first deadline is "now", so
  /// even a sub-period run emits at least one line.
  bool due();

  /// Renders \p S. Call only after a successful due() claim.
  void tick(const ProgressSample &S);

  /// Clears the in-place line (TTY) and emits a final summary line.
  void finish(const ProgressSample &S);

private:
  void render(const ProgressSample &S, bool Final);

  FILE *Out;
  bool IsTty;
  uint64_t PeriodNanos;
  uint64_t StartNanos;
  std::atomic<uint64_t> NextDeadline;
  uint64_t LastLineLen = 0;
};

} // namespace icb::obs

#endif // ICB_OBS_PROGRESS_H
