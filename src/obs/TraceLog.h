//===- obs/TraceLog.h - Decision-level exploration tracing ------*- C++ -*-===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structured event tracing for the search itself: a per-worker,
/// single-writer ring buffer of fixed-size TraceEvents recording the
/// decision-level history of an exploration — executions beginning and
/// ending, preemptive continuations branched or deferred, sleep-set
/// skips, modeled-io blocks and wakes, and bugs — plus the phase-timer
/// slices ScopedPhase already measures. The rings live next to the
/// MetricShards (one per worker, written by that worker only, read at
/// quiescent points), so tracing inherits the metrics layer's whole
/// threading story: no atomics in the hot path, no locks, export only
/// after the workers have joined.
///
/// Events carry interned string ids rather than strings; each buffer owns
/// its own intern table (single writer again), and the exporter resolves
/// ids per buffer. A full ring overwrites its oldest events and counts
/// them in dropped() — a trace is a *window*, biased to the end of the
/// run, which is the Perfetto-friendly tradeoff (bounded memory, no
/// allocation after warmup).
///
/// writePerfettoTrace() renders every buffer of a registry as Chrome
/// trace-event JSON (the `traceEvents` array form): phase slices become
/// "X" duration events on one track per worker, executions become
/// instants joined to the branch/defer instant that published their work
/// item by flow events ("s"/"f" pairs keyed on the item's flow id) — so
/// `ui.perfetto.dev` shows where each chain came from. Timestamps are
/// rebased to the earliest event so the viewport starts at zero.
///
/// Everything here is dormant under ICB_NO_METRICS: the shard never gets
/// a buffer attached, so every emission site (which tests `Trace` for
/// null anyway) stays dark, and `--trace` is rejected at the CLI.
///
//===----------------------------------------------------------------------===//

#ifndef ICB_OBS_TRACELOG_H
#define ICB_OBS_TRACELOG_H

#include <cstdint>
#include <cstdio>
#include <string>
#include <unordered_map>
#include <vector>

namespace icb::obs {

class MetricsRegistry;

/// What one TraceEvent records. Field meanings per kind are documented on
/// the enumerators; unused fields are zero.
enum class TraceEventKind : uint8_t {
  PhaseSlice, ///< Nanos = start, Arg0 = duration ns, Extra = Phase index.
  ExecBegin,  ///< Arg0 = flow id of the chain's work item (0 = root),
              ///< Extra = bound, Str = seeding preemption site.
  ExecEnd,    ///< Arg0 = steps executed, Arg1 = terminal digest (rt),
              ///< Extra = bound.
  Branch,     ///< Same-bound continuation published. Arg0 = child flow id,
              ///< Extra = target bound, Str = preemption site.
  Defer,      ///< Next-bound continuation published; fields as Branch.
  SleepSkip,  ///< Arg0 = transitions skipped asleep at one point.
  IoBlock,    ///< Fiber parked on a modeled fd. Str = op detail.
  IoWake,     ///< Parked io wait resumed. Str = op detail.
  Bug,        ///< Bug recorded. Extra = bound, Str = message.
};

/// One fixed-size trace record; 32 bytes, written by exactly one worker.
struct TraceEvent {
  uint64_t Nanos = 0;
  uint64_t Arg0 = 0;
  uint64_t Arg1 = 0;
  uint32_t Str = 0; ///< Intern-table id; 0 is the empty string.
  uint16_t Extra = 0;
  TraceEventKind Kind = TraceEventKind::PhaseSlice;
};

/// A single-writer ring of TraceEvents plus its intern table. The owning
/// worker appends; the driving thread reads only after the worker has
/// quiesced (bound barrier, join) — the same contract as MetricShard.
class TraceBuf {
public:
  explicit TraceBuf(size_t Capacity) : Ring(Capacity) {}

  void append(const TraceEvent &E) {
    if (Ring.empty())
      return;
    Ring[static_cast<size_t>(Head % Ring.size())] = E;
    ++Head;
  }

  /// Id for \p Text, inserting on first sight. Id 0 is always "".
  uint32_t intern(const std::string &Text);

  size_t capacity() const { return Ring.size(); }
  /// Events currently held (≤ capacity).
  size_t size() const {
    return Head < Ring.size() ? static_cast<size_t>(Head) : Ring.size();
  }
  /// Events overwritten because the ring was full.
  uint64_t dropped() const {
    return Head < Ring.size() ? 0 : Head - Ring.size();
  }
  /// \p I-th surviving event in chronological order (0 = oldest held).
  const TraceEvent &at(size_t I) const {
    uint64_t Oldest = Head < Ring.size() ? 0 : Head - Ring.size();
    return Ring[static_cast<size_t>((Oldest + I) % Ring.size())];
  }
  const std::string &string(uint32_t Id) const {
    return Id < Strings.size() ? Strings[Id] : Strings[0];
  }

private:
  std::vector<TraceEvent> Ring;
  uint64_t Head = 0;
  std::vector<std::string> Strings{std::string()};
  std::unordered_map<std::string, uint32_t> Index;
};

/// Renders every trace buffer of \p Reg as Chrome/Perfetto trace-event
/// JSON at \p Path (pid 0, one tid per worker, timestamps rebased to the
/// earliest event). Returns false (with \p Error) on I/O failure. Safe to
/// call only after all workers have quiesced.
bool writePerfettoTrace(const MetricsRegistry &Reg, const std::string &Path,
                        std::string *Error);

} // namespace icb::obs

#endif // ICB_OBS_TRACELOG_H
