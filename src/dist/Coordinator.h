//===- dist/Coordinator.h - Frontier-owning checking service ----*- C++ -*-===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The coordinator of a distributed ICB run (`icb_check --serve`). It owns
/// what the engine drivers own in a local run — the per-bound frontier
/// queues, the authoritative digest caches, the canonical bug map, the
/// merged statistics — but executes nothing itself: joiners lease work-item
/// batches, drain them with their local engines, and stream back deltas.
///
/// Determinism contract: the merged result's deterministic half (bugs,
/// per-bound executions, the work-derived metrics section, estimator mass)
/// is byte-identical to a local `--jobs 1` run regardless of joiner count,
/// arrival order, or death, because
///   * the bound barrier is global: bound c + 1 starts only when every
///     lease of bound c has been merged (or revoked and re-executed);
///   * every merge is commutative (sums, MinMax/Histogram folds, canonical
///     bug minima, digest-set unions);
///   * global cache hit/miss counters are reconstructed exactly from
///     lease-local distinct sets plus probe totals (Coordinator.cpp);
///   * a revoked lease's items return to the queue unmerged, so a SIGKILLed
///     joiner changes nothing but timing.
///
/// Robustness: joiner liveness is heartbeat-based with timeout revocation;
/// the coordinator checkpoints through the ordinary EngineObserver seam
/// with outstanding leases folded back into the current queue, so
/// `--serve --resume` rides the existing checkpoint machinery.
///
//===----------------------------------------------------------------------===//

#ifndef ICB_DIST_COORDINATOR_H
#define ICB_DIST_COORDINATOR_H

#include "dist/Protocol.h"
#include "search/EngineObserver.h"
#include "search/SearchTypes.h"
#include "session/Checkpoint.h"
#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <unordered_set>
#include <vector>

namespace icb::dist {

/// Per-joiner accounting for the manifest's `dist` block.
struct JoinerStats {
  uint64_t Leases = 0;
  uint64_t Items = 0;
  uint64_t Executions = 0;
  uint64_t Steps = 0;
  uint64_t Revocations = 0;
  bool Reconnect = false; ///< This connection re-joined an earlier session.
};

struct CoordinatorOptions {
  /// Bind address, "HOST:PORT"; port 0 picks an ephemeral port.
  std::string Bind = "127.0.0.1:0";
  /// The run identity sent to joiners in hello_ok; joiners adopt it the
  /// way `--resume` adopts a checkpoint's meta.
  session::CheckpointMeta Meta;
  search::SearchLimits Limits;
  /// The bound policy's frontier bound (BoundPolicy::frontierBound());
  /// the coordinator stops advancing past it exactly as the drivers do.
  unsigned FrontierBound = ~0u;
  /// Work items per drain lease.
  unsigned LeaseItems = 32;
  uint64_t HeartbeatMillis = 1000;
  uint64_t RevokeMillis = 5000;
  search::EngineObserver *Observer = nullptr;
  const search::EngineSnapshot *Resume = nullptr;
  /// When set, the coordinator deposits the merged metrics here at the
  /// end of run() (registry restore), so the session layer's usual
  /// snapshot() call sees them.
  obs::MetricsRegistry *Metrics = nullptr;
};

class Coordinator {
public:
  explicit Coordinator(CoordinatorOptions Opts);
  ~Coordinator();

  Coordinator(const Coordinator &) = delete;
  Coordinator &operator=(const Coordinator &) = delete;

  /// Binds and listens. False with \p Error on failure.
  bool start(std::string *Error);

  /// The bound port (after start); resolves a port-0 bind.
  uint16_t port() const;

  /// Serves until the frontier is exhausted, a limit trips, or the
  /// observer requests a stop. Returns the merged SearchResult.
  search::SearchResult run();

  const std::vector<JoinerStats> &joinerStats() const { return Joiners; }

private:
  struct Conn;
  struct Lease;

  void pollOnce(uint64_t TimeoutMillis);
  void handleFrame(Conn &C, const session::JsonValue &V);
  void dropConn(size_t Index, bool Revoke);
  void maybeIssue(Conn &C);
  void issueLease(Conn &C, LeaseRequest Req);
  void mergeResult(Conn &C, LeaseResult &&Res);
  void reconstructCacheCounters(obs::MetricsSnapshot &Delta,
                                const LeaseResult &Res);
  void advanceBarrier();
  void recordBoundComplete();
  void finish(bool Completed);
  void emitSnapshot(bool Final);
  void foldOutstanding(std::vector<search::SavedWorkItem> &Out) const;
  bool limitHit() const;
  size_t outstandingCount() const { return Leases.size(); }
  void serveWaiters();
  uint64_t nowMillis() const;

  CoordinatorOptions Opts;
  int ListenFd = -1;

  std::vector<Conn> Conns;
  std::map<uint64_t, Lease> Leases;
  uint64_t NextLeaseId = 1;

  // The frontier and merged state (what a local driver owns).
  std::deque<search::SavedWorkItem> Current;
  std::deque<search::SavedWorkItem> Next;
  unsigned Bound = 0;
  bool Seeded = false;
  std::unordered_set<uint64_t> Seen, Terminal, ItemSet;
  search::SearchStats Stats;
  search::CanonicalBugMap Bugs;
  obs::MetricsSnapshot Master;
  std::vector<JoinerStats> Joiners;

  bool StopLeasing = false; ///< Limit/stop/bug: wind down, no new leases.
  bool Interrupted = false;
  bool Finished = false;
  bool FinishedCompleted = false;
};

} // namespace icb::dist

#endif // ICB_DIST_COORDINATOR_H
