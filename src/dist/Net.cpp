//===- dist/Net.cpp - Minimal TCP plumbing --------------------------------===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//

#include "dist/Net.h"
#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

namespace icb::dist {

bool parseEndpoint(const std::string &Addr, Endpoint &Out,
                   std::string *Error) {
  size_t Colon = Addr.rfind(':');
  if (Colon == std::string::npos || Colon == 0 ||
      Colon + 1 == Addr.size()) {
    if (Error)
      *Error = "expected HOST:PORT, got '" + Addr + "'";
    return false;
  }
  std::string PortText = Addr.substr(Colon + 1);
  unsigned long Port = 0;
  char *End = nullptr;
  errno = 0;
  Port = std::strtoul(PortText.c_str(), &End, 10);
  if (errno != 0 || *End != '\0' || Port > 65535) {
    if (Error)
      *Error = "bad port '" + PortText + "' in '" + Addr + "'";
    return false;
  }
  Out.Host = Addr.substr(0, Colon);
  Out.Port = static_cast<uint16_t>(Port);
  return true;
}

static bool resolve(const Endpoint &Ep, sockaddr_in &Out,
                    std::string *Error) {
  std::memset(&Out, 0, sizeof(Out));
  Out.sin_family = AF_INET;
  Out.sin_port = htons(Ep.Port);
  if (inet_pton(AF_INET, Ep.Host.c_str(), &Out.sin_addr) == 1)
    return true;
  addrinfo Hints{};
  Hints.ai_family = AF_INET;
  Hints.ai_socktype = SOCK_STREAM;
  addrinfo *Res = nullptr;
  int Rc = getaddrinfo(Ep.Host.c_str(), nullptr, &Hints, &Res);
  if (Rc != 0 || !Res) {
    if (Error)
      *Error = "cannot resolve '" + Ep.Host + "': " + gai_strerror(Rc);
    return false;
  }
  Out.sin_addr = reinterpret_cast<sockaddr_in *>(Res->ai_addr)->sin_addr;
  freeaddrinfo(Res);
  return true;
}

static void setNoDelay(int Fd) {
  int One = 1;
  setsockopt(Fd, IPPROTO_TCP, TCP_NODELAY, &One, sizeof(One));
}

int listenOn(const Endpoint &Ep, std::string *Error) {
  sockaddr_in Addr;
  if (!resolve(Ep, Addr, Error))
    return -1;
  int Fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (Fd < 0) {
    if (Error)
      *Error = std::string("socket: ") + std::strerror(errno);
    return -1;
  }
  int One = 1;
  setsockopt(Fd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));
  if (bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0 ||
      listen(Fd, 64) != 0) {
    if (Error)
      *Error = "cannot listen on " + Ep.Host + ":" +
               std::to_string(Ep.Port) + ": " + std::strerror(errno);
    close(Fd);
    return -1;
  }
  setNonBlocking(Fd);
  return Fd;
}

uint16_t boundPort(int ListenFd) {
  sockaddr_in Addr;
  socklen_t Len = sizeof(Addr);
  if (getsockname(ListenFd, reinterpret_cast<sockaddr *>(&Addr), &Len) != 0)
    return 0;
  return ntohs(Addr.sin_port);
}

int acceptConn(int ListenFd) {
  int Fd = accept(ListenFd, nullptr, nullptr);
  if (Fd < 0)
    return -1;
  setNoDelay(Fd);
  setNonBlocking(Fd);
  return Fd;
}

int connectTo(const Endpoint &Ep, std::string *Error) {
  sockaddr_in Addr;
  if (!resolve(Ep, Addr, Error))
    return -1;
  int Fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (Fd < 0) {
    if (Error)
      *Error = std::string("socket: ") + std::strerror(errno);
    return -1;
  }
  if (connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0) {
    if (Error)
      *Error = "cannot connect to " + Ep.Host + ":" +
               std::to_string(Ep.Port) + ": " + std::strerror(errno);
    close(Fd);
    return -1;
  }
  setNoDelay(Fd);
  return Fd;
}

bool sendAll(int Fd, const std::string &Bytes) {
  size_t Off = 0;
  while (Off != Bytes.size()) {
    ssize_t N = send(Fd, Bytes.data() + Off, Bytes.size() - Off,
                     MSG_NOSIGNAL);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // Nonblocking coordinator side: wait for writability briefly.
        fd_set W;
        FD_ZERO(&W);
        FD_SET(Fd, &W);
        timeval Tv{1, 0};
        if (select(Fd + 1, nullptr, &W, nullptr, &Tv) > 0)
          continue;
      }
      return false;
    }
    Off += static_cast<size_t>(N);
  }
  return true;
}

bool recvSome(int Fd, std::string &Out) {
  char Buf[16384];
  while (true) {
    ssize_t N = recv(Fd, Buf, sizeof(Buf), 0);
    if (N > 0) {
      Out.append(Buf, static_cast<size_t>(N));
      if (N == static_cast<ssize_t>(sizeof(Buf)))
        continue; // Possibly more already queued.
      return true;
    }
    if (N == 0)
      return false; // Orderly EOF.
    if (errno == EINTR)
      continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK)
      return true;
    return false;
  }
}

void closeFd(int Fd) {
  if (Fd >= 0)
    close(Fd);
}

bool setNonBlocking(int Fd) {
  int Flags = fcntl(Fd, F_GETFL, 0);
  return Flags >= 0 && fcntl(Fd, F_SETFL, Flags | O_NONBLOCK) == 0;
}

} // namespace icb::dist
