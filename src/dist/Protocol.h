//===- dist/Protocol.h - Coordinator/joiner frame vocabulary ----*- C++ -*-===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The message vocabulary of the distributed checking service (DESIGN.md
/// §14). Every frame is a JSON object with a "kind" member, carried over
/// the length-prefixed byte framing of dist/Wire.h:
///
///   joiner -> coordinator        coordinator -> joiner
///   -------------------------    ----------------------------
///   hello {protocol, format}     hello_ok {meta, heartbeat_ms,
///                                          revoke_ms}
///                                refuse {reason}
///   need_work                    lease {id, bound, roots, items}
///   result {id, ...}             done
///   heartbeat
///
/// Payload encodings are the checkpoint dialect (session/Serial.h), so
/// the wire is versioned by exactly two numbers: ProtocolVersion (the
/// frame vocabulary) and the checkpoint format version (the payload
/// encodings). A coordinator refuses a joiner that disagrees on either.
///
/// The lease seam — LeaseRequest in, LeaseResult out — is a plain
/// std::function so the execution side (tools, tests, benches) can plug
/// in either engine, or a hostile fake.
///
//===----------------------------------------------------------------------===//

#ifndef ICB_DIST_PROTOCOL_H
#define ICB_DIST_PROTOCOL_H

#include "obs/Metrics.h"
#include "search/SearchTypes.h"
#include "session/Checkpoint.h"
#include "session/Json.h"
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace icb::dist {

/// The frame vocabulary version. Bump on any incompatible change to the
/// frames below; the payload encodings are versioned separately by the
/// checkpoint format (session::checkpointFormatVersion()).
inline constexpr uint64_t ProtocolVersion = 1;

/// One batch of frontier work handed to a joiner. Roots leases carry no
/// items: the joiner seeds the bound-0 frontier from its own executor
/// (exactly as a local run would) and returns it unexecuted.
struct LeaseRequest {
  bool Roots = false;
  unsigned Bound = 0;
  std::vector<search::SavedWorkItem> Items;
};

/// Everything one executed (or seeded) lease reports back. Digest vectors
/// are the lease-local distinct sets; the coordinator folds them into its
/// authoritative caches to reconstruct the global hit/miss counter split
/// (see dist/Coordinator.cpp).
struct LeaseResult {
  bool Completed = false; ///< The lease ran to exhaustion (no leftovers).
  search::SearchStats Stats;
  std::vector<search::Bug> Bugs;
  std::vector<search::SavedWorkItem> Deferred;  ///< Published for c + 1.
  std::vector<search::SavedWorkItem> Remaining; ///< Unexecuted leftovers.
  std::vector<uint64_t> SeenDigests;
  std::vector<uint64_t> TerminalDigests;
  std::vector<uint64_t> ItemDigests;
  obs::MetricsSnapshot Metrics;
};

/// Executes one lease. The runner owns executor construction (fresh
/// engine, fresh caches, fresh metrics registry per lease).
using LeaseRunner = std::function<LeaseResult(const LeaseRequest &)>;

// --- Frame constructors --------------------------------------------------

/// \p Reconnect marks a joiner re-hello after a connection loss (joiner
/// accounting only — the handshake is otherwise identical).
session::JsonValue helloFrame(uint64_t Protocol, uint64_t Format,
                              bool Reconnect = false);
session::JsonValue helloOkFrame(const session::CheckpointMeta &Meta,
                                uint64_t HeartbeatMillis,
                                uint64_t RevokeMillis);
session::JsonValue refuseFrame(const std::string &Reason);
session::JsonValue needWorkFrame();
session::JsonValue heartbeatFrame();
session::JsonValue doneFrame();
session::JsonValue leaseFrame(uint64_t Id, const LeaseRequest &Req);
session::JsonValue resultFrame(uint64_t Id, const LeaseResult &Res);

// --- Frame decoders ------------------------------------------------------
// Strict: false on any missing or ill-typed field, like the session
// loaders. The caller dispatches on frameKind() first.

/// The "kind" member, or "" when absent/ill-typed.
std::string frameKind(const session::JsonValue &V);

bool helloFromJson(const session::JsonValue &V, uint64_t &Protocol,
                   uint64_t &Format);
bool helloOkFromJson(const session::JsonValue &V,
                     session::CheckpointMeta &Meta,
                     uint64_t &HeartbeatMillis, uint64_t &RevokeMillis);
bool refuseFromJson(const session::JsonValue &V, std::string &Reason);
bool leaseFromJson(const session::JsonValue &V, uint64_t &Id,
                   LeaseRequest &Req);
bool resultFromJson(const session::JsonValue &V, uint64_t &Id,
                    LeaseResult &Res);

} // namespace icb::dist

#endif // ICB_DIST_PROTOCOL_H
