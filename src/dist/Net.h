//===- dist/Net.h - Minimal TCP plumbing ------------------------*- C++ -*-===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The socket layer of the distributed checker: IPv4 TCP only, blocking
/// connects, nonblocking accepted connections driven by the coordinator's
/// poll loop. Loopback is the designed-for deployment (the CI legs and
/// tests bind 127.0.0.1), but nothing below assumes it.
///
//===----------------------------------------------------------------------===//

#ifndef ICB_DIST_NET_H
#define ICB_DIST_NET_H

#include <cstdint>
#include <string>

namespace icb::dist {

/// A parsed "host:port" endpoint. Port 0 asks the kernel for an ephemeral
/// port (coordinator only; Listener::port() reports the choice).
struct Endpoint {
  std::string Host;
  uint16_t Port = 0;
};

/// Parses "HOST:PORT" (numeric IPv4 or a resolvable name). False with
/// \p Error on syntax errors; resolution failures surface at
/// connect/listen time.
bool parseEndpoint(const std::string &Addr, Endpoint &Out,
                   std::string *Error);

/// Binds and listens; returns the fd or -1 with \p Error.
int listenOn(const Endpoint &Ep, std::string *Error);

/// The locally bound port of a listening fd (resolves port 0).
uint16_t boundPort(int ListenFd);

/// Accepts one pending connection (nonblocking listen fd); returns the
/// connection fd with TCP_NODELAY set, or -1 when none is pending.
int acceptConn(int ListenFd);

/// Blocking connect; returns the fd with TCP_NODELAY set, or -1 with
/// \p Error.
int connectTo(const Endpoint &Ep, std::string *Error);

/// Writes all of \p Bytes (retrying short writes); false on any error.
bool sendAll(int Fd, const std::string &Bytes);

/// Reads whatever is available into \p Out (appending). Returns false on
/// EOF or a hard error, true otherwise (including "nothing available").
bool recvSome(int Fd, std::string &Out);

void closeFd(int Fd);

/// Marks \p Fd nonblocking (accepted coordinator connections).
bool setNonBlocking(int Fd);

} // namespace icb::dist

#endif // ICB_DIST_NET_H
