//===- dist/Coordinator.cpp - Frontier-owning checking service ------------===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//

#include "dist/Coordinator.h"
#include "dist/Net.h"
#include "dist/Wire.h"
#include "support/Debug.h"
#include <algorithm>
#include <chrono>
#include <poll.h>

using namespace icb;
using namespace icb::dist;
using search::SavedWorkItem;

//===----------------------------------------------------------------------===//
// Connection and lease bookkeeping
//===----------------------------------------------------------------------===//

struct Coordinator::Conn {
  int Fd = -1;
  FrameReader Reader;
  bool Hello = false;   ///< Handshake complete.
  bool Waiting = false; ///< Has an unanswered need_work.
  uint64_t LeaseId = 0; ///< Nonzero while holding a lease.
  uint64_t LastSeenMs = 0;
  size_t JoinerIndex = ~size_t(0);
  bool Dead = false;
};

struct Coordinator::Lease {
  size_t ConnIndex = ~size_t(0);
  bool Roots = false;
  unsigned Bound = 0;
  std::vector<SavedWorkItem> Items;
};

Coordinator::Coordinator(CoordinatorOptions O) : Opts(std::move(O)) {
  Master.Counters.assign(obs::NumCounters, 0);
  if (Opts.Resume) {
    const search::EngineSnapshot &Snap = *Opts.Resume;
    ICB_ASSERT(!Snap.Final, "serving a finished run");
    Bound = Snap.Bound;
    Current.assign(Snap.CurrentQueue.begin(), Snap.CurrentQueue.end());
    Next.assign(Snap.NextQueue.begin(), Snap.NextQueue.end());
    for (uint64_t D : Snap.SeenDigests)
      Seen.insert(D);
    for (uint64_t D : Snap.TerminalDigests)
      Terminal.insert(D);
    for (uint64_t D : Snap.ItemDigests)
      ItemSet.insert(D);
    Stats = Snap.Stats;
    Stats.Completed = false;
    for (const search::Bug &B : Snap.Bugs)
      search::canonicalMergeBug(Bugs, B);
    Master.merge(Snap.Metrics);
    Seeded = true;
  }
}

Coordinator::~Coordinator() {
  for (Conn &C : Conns)
    closeFd(C.Fd);
  closeFd(ListenFd);
}

bool Coordinator::start(std::string *Error) {
  Endpoint Ep;
  if (!parseEndpoint(Opts.Bind, Ep, Error))
    return false;
  ListenFd = listenOn(Ep, Error);
  return ListenFd >= 0;
}

uint16_t Coordinator::port() const {
  return ListenFd >= 0 ? boundPort(ListenFd) : 0;
}

uint64_t Coordinator::nowMillis() const {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

//===----------------------------------------------------------------------===//
// The serve loop
//===----------------------------------------------------------------------===//

search::SearchResult Coordinator::run() {
  ICB_ASSERT(ListenFd >= 0, "run() before start()");

  // A resumed frontier can already be complete up to the barrier (e.g. a
  // checkpoint taken at the last bound's end never happens — checkpoints
  // are safe points with work left — but a resumed empty current queue
  // must advance immediately rather than wait for a joiner).
  advanceBarrier();

  while (!Finished) {
    if (Opts.Observer && Opts.Observer->stopRequested() && !Interrupted) {
      // Cooperative stop: revoke everything outstanding (unmerged, so
      // exact), flush one resumable checkpoint, and wind down.
      Interrupted = true;
      StopLeasing = true;
      std::vector<SavedWorkItem> Folded;
      foldOutstanding(Folded);
      for (auto It = Leases.begin(); It != Leases.end();) {
        size_t CI = It->second.ConnIndex;
        It = Leases.erase(It);
        if (CI < Conns.size())
          Conns[CI].LeaseId = 0;
      }
      Current.insert(Current.begin(), Folded.begin(), Folded.end());
      if (Opts.Observer)
        emitSnapshot(/*Final=*/false);
      break;
    }
    pollOnce(std::min<uint64_t>(Opts.HeartbeatMillis, 250));

    // Heartbeat-timeout revocation.
    uint64_t Now = nowMillis();
    for (size_t I = 0; I != Conns.size(); ++I) {
      Conn &C = Conns[I];
      if (C.Dead || C.Fd < 0)
        continue;
      if (Now - C.LastSeenMs > Opts.RevokeMillis)
        dropConn(I, /*Revoke=*/true);
    }
    advanceBarrier();
    serveWaiters();
  }

  // Tell every joiner the run is over, then hang up.
  std::string Done = encodeFrame(doneFrame());
  for (Conn &C : Conns) {
    if (!C.Dead && C.Fd >= 0)
      sendAll(C.Fd, Done);
    closeFd(C.Fd);
    C.Fd = -1;
    C.Dead = true;
  }

  search::SearchResult Result;
  Stats.DistinctStates = Seen.size();
  Stats.DistinctTerminalStates = Terminal.size();
  Stats.Completed = FinishedCompleted;
  Result.Stats = Stats;
  Result.Interrupted = Interrupted;
  Result.Bugs = search::takeCanonicalBugs(std::move(Bugs));
  if (!Interrupted && Opts.Observer)
    emitSnapshot(/*Final=*/true);
  if (Opts.Metrics)
    Opts.Metrics->restore(Master);
  return Result;
}

void Coordinator::pollOnce(uint64_t TimeoutMillis) {
  std::vector<pollfd> Fds;
  std::vector<size_t> Index; // pollfd -> Conns index (listen = ~0).
  Fds.push_back({ListenFd, POLLIN, 0});
  Index.push_back(~size_t(0));
  for (size_t I = 0; I != Conns.size(); ++I) {
    if (!Conns[I].Dead && Conns[I].Fd >= 0) {
      Fds.push_back({Conns[I].Fd, POLLIN, 0});
      Index.push_back(I);
    }
  }
  int N = ::poll(Fds.data(), Fds.size(), static_cast<int>(TimeoutMillis));
  if (N <= 0)
    return;

  if (Fds[0].revents & POLLIN) {
    while (true) {
      int Fd = acceptConn(ListenFd);
      if (Fd < 0)
        break;
      Conn C;
      C.Fd = Fd;
      C.LastSeenMs = nowMillis();
      Conns.push_back(std::move(C));
    }
  }

  for (size_t P = 1; P < Fds.size(); ++P) {
    size_t I = Index[P];
    if (I >= Conns.size() || Conns[I].Dead)
      continue;
    if (!(Fds[P].revents & (POLLIN | POLLHUP | POLLERR)))
      continue;
    Conn &C = Conns[I];
    std::string Bytes;
    if (!recvSome(C.Fd, Bytes)) {
      dropConn(I, /*Revoke=*/true);
      continue;
    }
    C.Reader.feed(Bytes.data(), Bytes.size());
    C.LastSeenMs = nowMillis();
    while (true) {
      session::JsonValue Frame;
      std::string Error;
      DecodeStatus S = C.Reader.next(Frame, &Error);
      if (S == DecodeStatus::NeedMore)
        break;
      if (S == DecodeStatus::Error) {
        dropConn(I, /*Revoke=*/true);
        break;
      }
      handleFrame(Conns[I], Frame);
      if (Conns[I].Dead)
        break;
    }
  }

  // Compact fully-dead connection slots from the tail (live indices held
  // by leases stay stable because only the tail is trimmed).
  while (!Conns.empty() && Conns.back().Dead && Conns.back().LeaseId == 0)
    Conns.pop_back();
}

void Coordinator::handleFrame(Conn &C, const session::JsonValue &V) {
  std::string Kind = frameKind(V);

  if (!C.Hello) {
    if (Kind != "hello") {
      C.Dead = true;
      closeFd(C.Fd);
      C.Fd = -1;
      return;
    }
    uint64_t Protocol = 0, Format = 0;
    bool Reconnect = false;
    if (!helloFromJson(V, Protocol, Format) ||
        Protocol != ProtocolVersion ||
        Format != session::checkpointFormatVersion()) {
      std::string Reason =
          "version mismatch: coordinator speaks protocol " +
          std::to_string(ProtocolVersion) + " / format " +
          std::to_string(session::checkpointFormatVersion());
      sendAll(C.Fd, encodeFrame(refuseFrame(Reason)));
      C.Dead = true;
      closeFd(C.Fd);
      C.Fd = -1;
      return;
    }
    V.getBool("reconnect", Reconnect);
    C.Hello = true;
    C.JoinerIndex = Joiners.size();
    Joiners.push_back({});
    Joiners.back().Reconnect = Reconnect;
    if (Reconnect)
      ++Master.Counters[static_cast<size_t>(obs::Counter::DistReconnects)];
    sendAll(C.Fd, encodeFrame(helloOkFrame(Opts.Meta, Opts.HeartbeatMillis,
                                           Opts.RevokeMillis)));
    return;
  }

  if (Kind == "heartbeat")
    return; // LastSeen already refreshed.

  if (Kind == "need_work") {
    if (C.LeaseId != 0) {
      // Protocol violation: asking while holding a lease.
      size_t Self = static_cast<size_t>(&C - Conns.data());
      dropConn(Self, /*Revoke=*/true);
      return;
    }
    C.Waiting = true;
    maybeIssue(C);
    return;
  }

  if (Kind == "result") {
    uint64_t Id = 0;
    LeaseResult Res;
    if (!resultFromJson(V, Id, Res) || Id == 0 || Id != C.LeaseId) {
      // Results are accepted only on the connection holding that lease —
      // a revoked joiner's late result lands on a closed socket, and a
      // confused one is dropped here. Either way exactly-once holds.
      size_t Self = static_cast<size_t>(&C - Conns.data());
      dropConn(Self, /*Revoke=*/true);
      return;
    }
    mergeResult(C, std::move(Res));
    return;
  }

  // Unknown frame kind from a versioned peer: drop it.
  size_t Self = static_cast<size_t>(&C - Conns.data());
  dropConn(Self, /*Revoke=*/true);
}

void Coordinator::dropConn(size_t Index, bool Revoke) {
  Conn &C = Conns[Index];
  if (C.Dead)
    return;
  closeFd(C.Fd);
  C.Fd = -1;
  C.Dead = true;
  C.Waiting = false;
  if (C.LeaseId != 0 && Revoke) {
    auto It = Leases.find(C.LeaseId);
    if (It != Leases.end()) {
      // Unmerged, so re-issuing is exact: the lease's executions never
      // entered the totals. Items return to the front to keep the queue
      // close to FIFO order (order is immaterial to the merged result).
      Lease &L = It->second;
      if (L.Roots)
        Seeded = false; // Re-seed via the next joiner.
      else
        Current.insert(Current.begin(), L.Items.begin(), L.Items.end());
      ++Master.Counters[static_cast<size_t>(obs::Counter::DistLeaseRevoked)];
      if (C.JoinerIndex < Joiners.size())
        ++Joiners[C.JoinerIndex].Revocations;
      Leases.erase(It);
    }
  }
  C.LeaseId = 0;
}

void Coordinator::maybeIssue(Conn &C) {
  if (Finished || StopLeasing || !C.Waiting || C.LeaseId != 0)
    return;
  if (!Seeded) {
    // The frontier bootstrap: a roots lease runs the executor's root
    // seeding (policy charges, estimator mass split, degenerate-program
    // accounting) in a joiner and returns both queues unexecuted. Only
    // one may be outstanding.
    for (const auto &Entry : Leases)
      if (Entry.second.Roots)
        return;
    LeaseRequest Req;
    Req.Roots = true;
    Req.Bound = 0;
    issueLease(C, std::move(Req));
    return;
  }
  if (Current.empty())
    return; // Barrier: wait for outstanding leases of this bound.
  LeaseRequest Req;
  Req.Bound = Bound;
  size_t Take = std::min<size_t>(Opts.LeaseItems ? Opts.LeaseItems : 1,
                                 Current.size());
  Req.Items.assign(Current.begin(), Current.begin() + Take);
  Current.erase(Current.begin(), Current.begin() + Take);
  issueLease(C, std::move(Req));
}

void Coordinator::issueLease(Conn &C, LeaseRequest Req) {
  uint64_t Id = NextLeaseId++;
  Lease L;
  L.ConnIndex = static_cast<size_t>(&C - Conns.data());
  L.Roots = Req.Roots;
  L.Bound = Req.Bound;
  L.Items = Req.Items;
  std::string Frame = encodeFrame(leaseFrame(Id, Req));
  if (!sendAll(C.Fd, Frame)) {
    // Connection already broken: put the items back untouched.
    if (!Req.Roots)
      Current.insert(Current.begin(), L.Items.begin(), L.Items.end());
    dropConn(L.ConnIndex, /*Revoke=*/false);
    return;
  }
  C.Waiting = false;
  C.LeaseId = Id;
  Leases.emplace(Id, std::move(L));
  ++Master.Counters[static_cast<size_t>(obs::Counter::DistLeases)];
  Master.Counters[static_cast<size_t>(obs::Counter::DistLeaseItems)] +=
      Req.Items.size();
  if (C.JoinerIndex < Joiners.size()) {
    ++Joiners[C.JoinerIndex].Leases;
    Joiners[C.JoinerIndex].Items += Req.Items.size();
  }
}

//===----------------------------------------------------------------------===//
// Merging
//===----------------------------------------------------------------------===//

/// Reconstructs the global cache hit/miss split from the lease-local one.
/// Joiners run with fresh caches, so a lease's Hit + Miss is its total
/// probe count P and its digest vector is its distinct set D. Inserting D
/// into the authoritative set yields N globally-new digests; the global
/// counters gain Miss += N and Hit += P - N. Exact in any merge order:
/// the union of the D's is the global distinct set, and the sum of the
/// P's is the global probe total — both independent of how probes were
/// partitioned into leases.
void Coordinator::reconstructCacheCounters(obs::MetricsSnapshot &Delta,
                                           const LeaseResult &Res) {
  Delta.Counters.resize(obs::NumCounters, 0);
  auto Reconstruct = [&Delta](obs::Counter Hit, obs::Counter Miss,
                              const std::vector<uint64_t> &Digests,
                              std::unordered_set<uint64_t> &Global) {
    size_t H = static_cast<size_t>(Hit), M = static_cast<size_t>(Miss);
    uint64_t Probes = Delta.Counters[H] + Delta.Counters[M];
    uint64_t New = 0;
    for (uint64_t D : Digests)
      if (Global.insert(D).second)
        ++New;
    Delta.Counters[M] = New;
    Delta.Counters[H] = Probes - New;
  };
  Reconstruct(obs::Counter::SeenHit, obs::Counter::SeenMiss,
              Res.SeenDigests, Seen);
  Reconstruct(obs::Counter::TerminalHit, obs::Counter::TerminalMiss,
              Res.TerminalDigests, Terminal);
  Reconstruct(obs::Counter::ItemHit, obs::Counter::ItemMiss,
              Res.ItemDigests, ItemSet);
}

void Coordinator::mergeResult(Conn &C, LeaseResult &&Res) {
  auto It = Leases.find(C.LeaseId);
  ICB_ASSERT(It != Leases.end(), "result for an unknown lease");
  Lease L = std::move(It->second);
  Leases.erase(It);
  C.LeaseId = 0;

  if (L.Roots) {
    // Remaining/Deferred are the two seeded queues, unexecuted.
    Seeded = true;
    Current.insert(Current.end(), Res.Remaining.begin(),
                   Res.Remaining.end());
    Next.insert(Next.end(), Res.Deferred.begin(), Res.Deferred.end());
  } else {
    Next.insert(Next.end(), Res.Deferred.begin(), Res.Deferred.end());
    // Leftovers only appear when the joiner stopped early (first bug
    // under StopAtFirstBug); fold them back so a resumable checkpoint
    // stays exact.
    Current.insert(Current.begin(), Res.Remaining.begin(),
                   Res.Remaining.end());
  }

  // Commutative stat folds (the parallel driver's merge, across sockets).
  Stats.Executions += Res.Stats.Executions;
  Stats.TotalSteps += Res.Stats.TotalSteps;
  Stats.StepsPerExecution.merge(Res.Stats.StepsPerExecution);
  Stats.BlockingPerExecution.merge(Res.Stats.BlockingPerExecution);
  Stats.PreemptionsPerExecution.merge(Res.Stats.PreemptionsPerExecution);
  Stats.ThreadsPerExecution.merge(Res.Stats.ThreadsPerExecution);
  Stats.PreemptionHistogram.merge(Res.Stats.PreemptionHistogram);
  for (search::Bug &B : Res.Bugs)
    search::canonicalMergeBug(Bugs, std::move(B));

  obs::MetricsSnapshot Delta = std::move(Res.Metrics);
  reconstructCacheCounters(Delta, Res);
  Master.merge(Delta);

  if (C.JoinerIndex < Joiners.size()) {
    Joiners[C.JoinerIndex].Executions += Res.Stats.Executions;
    Joiners[C.JoinerIndex].Steps += Res.Stats.TotalSteps;
  }

  if (limitHit() ||
      (Opts.Limits.StopAtFirstBug && !Bugs.empty()))
    StopLeasing = true;

  C.Waiting = true; // An idle joiner implicitly wants the next batch.
  advanceBarrier();
  if (!Finished) {
    if (Opts.Observer && Opts.Observer->checkpointDue(Stats.Executions))
      emitSnapshot(/*Final=*/false);
    if (Opts.Observer && Opts.Observer->progressDue()) {
      obs::ProgressSample S;
      S.Bound = Bound;
      S.MaxBound = Opts.FrontierBound;
      S.Executions = Stats.Executions;
      S.TotalSteps = Stats.TotalSteps;
      S.States = Seen.size();
      S.FrontierRemaining = Current.size();
      for (const auto &Entry : Leases)
        S.FrontierRemaining += Entry.second.Items.size();
      S.DeferredNext = Next.size();
      S.Bugs = Bugs.size();
      S.EstMass = Master.estMassTotal();
      Opts.Observer->onProgress(S);
    }
    serveWaiters();
  }
}

bool Coordinator::limitHit() const {
  return Stats.Executions >= Opts.Limits.MaxExecutions ||
         Stats.TotalSteps >= Opts.Limits.MaxSteps ||
         Seen.size() >= Opts.Limits.MaxStates;
}

//===----------------------------------------------------------------------===//
// The bound barrier
//===----------------------------------------------------------------------===//

void Coordinator::recordBoundComplete() {
  Stats.PerBound.push_back({Bound, Seen.size(), Stats.Executions});
  Stats.Coverage.push_back({Stats.Executions, Seen.size()});
  if (Opts.Observer)
    Opts.Observer->onBoundComplete(Stats.PerBound.back());
}

void Coordinator::advanceBarrier() {
  while (!Finished && Seeded && Current.empty() && Leases.empty()) {
    // Bound `Bound` is exhausted — the same quiescent point the drivers'
    // fork/join barrier reaches, with the same per-bound accounting.
    recordBoundComplete();
    if (StopLeasing || Next.empty() || Bound >= Opts.FrontierBound) {
      finish(/*Completed=*/!StopLeasing && Next.empty());
      return;
    }
    ++Bound;
    Current.swap(Next);
    Next.clear();
    if (Opts.Observer && Opts.Observer->checkpointDue(Stats.Executions))
      emitSnapshot(/*Final=*/false);
  }
  // A limit tripped mid-bound: wind down once the in-flight leases have
  // reported (their work predates the stop decision, exactly like the
  // drivers' in-flight chains). The sequential driver records the
  // partially-drained bound's row too, which the loop above covers once
  // outstanding leases drain... but only if Current emptied; with items
  // still queued we finish here.
  if (!Finished && StopLeasing && !Interrupted && Leases.empty() && Seeded &&
      !Current.empty()) {
    recordBoundComplete();
    finish(/*Completed=*/false);
  }
}

void Coordinator::finish(bool Completed) {
  Finished = true;
  FinishedCompleted = Completed;
}

void Coordinator::serveWaiters() {
  if (Finished || StopLeasing)
    return;
  for (Conn &C : Conns) {
    if (!C.Dead && C.Hello && C.Waiting && C.LeaseId == 0)
      maybeIssue(C);
  }
}

//===----------------------------------------------------------------------===//
// Checkpointing
//===----------------------------------------------------------------------===//

void Coordinator::foldOutstanding(std::vector<SavedWorkItem> &Out) const {
  for (const auto &Entry : Leases)
    if (!Entry.second.Roots)
      Out.insert(Out.end(), Entry.second.Items.begin(),
                 Entry.second.Items.end());
}

void Coordinator::emitSnapshot(bool Final) {
  ++Master.Counters[static_cast<size_t>(obs::Counter::Snapshots)];
  search::EngineSnapshot Snap;
  Snap.Bound = Bound;
  Snap.Final = Final;
  Snap.Stats = Stats;
  Snap.Stats.DistinctStates = Seen.size();
  Snap.Stats.DistinctTerminalStates = Terminal.size();
  for (const auto &Entry : Bugs)
    Snap.Bugs.push_back(Entry.second);
  Snap.Metrics = Master;
  if (!Final) {
    // Outstanding leases fold back into the current queue: their results
    // are unmerged, so a resume re-executes them and lands on the same
    // totals an uninterrupted run reaches.
    foldOutstanding(Snap.CurrentQueue);
    Snap.CurrentQueue.insert(Snap.CurrentQueue.end(), Current.begin(),
                             Current.end());
    Snap.NextQueue.assign(Next.begin(), Next.end());
    Snap.SeenDigests.assign(Seen.begin(), Seen.end());
    Snap.TerminalDigests.assign(Terminal.begin(), Terminal.end());
    Snap.ItemDigests.assign(ItemSet.begin(), ItemSet.end());
  }
  Opts.Observer->onCheckpoint(Snap);
}
