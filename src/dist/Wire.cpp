//===- dist/Wire.cpp - Length-prefixed JSON framing -----------------------===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//

#include "dist/Wire.h"

namespace icb::dist {

std::string encodeFrame(const session::JsonValue &V) {
  std::string Payload = session::jsonWrite(V);
  uint32_t N = static_cast<uint32_t>(Payload.size());
  std::string Frame;
  Frame.reserve(4 + Payload.size());
  Frame.push_back(static_cast<char>(N & 0xff));
  Frame.push_back(static_cast<char>((N >> 8) & 0xff));
  Frame.push_back(static_cast<char>((N >> 16) & 0xff));
  Frame.push_back(static_cast<char>((N >> 24) & 0xff));
  Frame += Payload;
  return Frame;
}

DecodeStatus decodeFrame(const std::string &Bytes, size_t &Off,
                         session::JsonValue &Out, std::string *Error) {
  if (Bytes.size() - Off < 4)
    return DecodeStatus::NeedMore;
  uint32_t N = 0;
  for (unsigned I = 0; I != 4; ++I)
    N |= static_cast<uint32_t>(
             static_cast<unsigned char>(Bytes[Off + I]))
         << (8 * I);
  if (N > MaxFrameBytes) {
    if (Error)
      *Error = "frame length " + std::to_string(N) + " exceeds limit";
    return DecodeStatus::Error;
  }
  if (Bytes.size() - Off < 4 + static_cast<size_t>(N))
    return DecodeStatus::NeedMore;
  std::string ParseError;
  if (!session::jsonParse(Bytes.substr(Off + 4, N), Out, &ParseError)) {
    if (Error)
      *Error = "malformed frame payload: " + ParseError;
    return DecodeStatus::Error;
  }
  // Every protocol frame is a JSON object (dist/Protocol.h); a bare
  // scalar or array payload is a broken peer even when it parses.
  if (Out.K != session::JsonValue::Kind::Object) {
    if (Error)
      *Error = "frame payload is not a JSON object";
    return DecodeStatus::Error;
  }
  Off += 4 + static_cast<size_t>(N);
  return DecodeStatus::Ok;
}

DecodeStatus FrameReader::next(session::JsonValue &Out, std::string *Error) {
  if (Poisoned) {
    if (Error)
      *Error = PoisonMsg;
    return DecodeStatus::Error;
  }
  DecodeStatus S = decodeFrame(Buf, Off, Out, &PoisonMsg);
  if (S == DecodeStatus::Error) {
    Poisoned = true;
    if (Error)
      *Error = PoisonMsg;
    return S;
  }
  // Compact the consumed prefix occasionally so a long-lived connection's
  // buffer does not grow without bound.
  if (S == DecodeStatus::Ok && Off > (1u << 16)) {
    Buf.erase(0, Off);
    Off = 0;
  }
  return S;
}

} // namespace icb::dist
