//===- dist/Protocol.cpp - Coordinator/joiner frame vocabulary ------------===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//

#include "dist/Protocol.h"
#include "session/Serial.h"

using icb::session::JsonValue;

namespace icb::dist {

/// Digest sets switch to the sorted-delta compact hex form at the same
/// threshold the checkpoint writer uses.
static constexpr size_t CompactThreshold = 64;

static JsonValue kindFrame(const char *Kind) {
  JsonValue V = JsonValue::object();
  V.set("kind", JsonValue::str(Kind));
  return V;
}

JsonValue helloFrame(uint64_t Protocol, uint64_t Format, bool Reconnect) {
  JsonValue V = kindFrame("hello");
  V.set("protocol", JsonValue::number(Protocol));
  V.set("format", JsonValue::number(Format));
  if (Reconnect)
    V.set("reconnect", JsonValue::boolean(true));
  return V;
}

JsonValue helloOkFrame(const session::CheckpointMeta &Meta,
                       uint64_t HeartbeatMillis, uint64_t RevokeMillis) {
  JsonValue V = kindFrame("hello_ok");
  V.set("meta", session::metaToJson(Meta));
  V.set("heartbeat_ms", JsonValue::number(HeartbeatMillis));
  V.set("revoke_ms", JsonValue::number(RevokeMillis));
  return V;
}

JsonValue refuseFrame(const std::string &Reason) {
  JsonValue V = kindFrame("refuse");
  V.set("reason", JsonValue::str(Reason));
  return V;
}

JsonValue needWorkFrame() { return kindFrame("need_work"); }
JsonValue heartbeatFrame() { return kindFrame("heartbeat"); }
JsonValue doneFrame() { return kindFrame("done"); }

JsonValue leaseFrame(uint64_t Id, const LeaseRequest &Req) {
  JsonValue V = kindFrame("lease");
  V.set("id", JsonValue::number(Id));
  V.set("bound", JsonValue::number(Req.Bound));
  V.set("roots", JsonValue::boolean(Req.Roots));
  V.set("items", session::workItemsToJson(Req.Items));
  return V;
}

JsonValue resultFrame(uint64_t Id, const LeaseResult &Res) {
  JsonValue V = kindFrame("result");
  V.set("id", JsonValue::number(Id));
  V.set("completed", JsonValue::boolean(Res.Completed));
  V.set("stats", session::statsToJson(Res.Stats));
  JsonValue Bugs = JsonValue::array();
  for (const search::Bug &B : Res.Bugs)
    Bugs.Arr.push_back(session::bugToJson(B));
  V.set("bugs", std::move(Bugs));
  V.set("deferred", session::workItemsToJson(Res.Deferred));
  V.set("remaining", session::workItemsToJson(Res.Remaining));
  V.set("seen", JsonValue::str(session::digestsToHexCompact(
                    Res.SeenDigests, CompactThreshold)));
  V.set("terminal", JsonValue::str(session::digestsToHexCompact(
                        Res.TerminalDigests, CompactThreshold)));
  V.set("items_seen", JsonValue::str(session::digestsToHexCompact(
                          Res.ItemDigests, CompactThreshold)));
  V.set("metrics", session::metricsToJson(Res.Metrics));
  return V;
}

std::string frameKind(const JsonValue &V) {
  std::string Kind;
  if (!V.isObject() || !V.getString("kind", Kind))
    return "";
  return Kind;
}

bool helloFromJson(const JsonValue &V, uint64_t &Protocol,
                   uint64_t &Format) {
  return V.isObject() && V.getU64("protocol", Protocol) &&
         V.getU64("format", Format);
}

bool helloOkFromJson(const JsonValue &V, session::CheckpointMeta &Meta,
                     uint64_t &HeartbeatMillis, uint64_t &RevokeMillis) {
  const JsonValue *MetaV = V.isObject() ? V.find("meta") : nullptr;
  return MetaV && session::metaFromJson(*MetaV, Meta) &&
         V.getU64("heartbeat_ms", HeartbeatMillis) &&
         V.getU64("revoke_ms", RevokeMillis);
}

bool refuseFromJson(const JsonValue &V, std::string &Reason) {
  return V.isObject() && V.getString("reason", Reason);
}

bool leaseFromJson(const JsonValue &V, uint64_t &Id, LeaseRequest &Req) {
  uint64_t Bound = 0;
  const JsonValue *Items = V.isObject() ? V.find("items") : nullptr;
  if (!Items || !V.getU64("id", Id) || !V.getU64("bound", Bound) ||
      Bound > ~0u || !V.getBool("roots", Req.Roots))
    return false;
  Req.Bound = static_cast<unsigned>(Bound);
  Req.Items.clear();
  return session::workItemsFromJson(*Items, Req.Items);
}

static bool digestField(const JsonValue &V, const char *Key,
                        std::vector<uint64_t> &Out) {
  std::string Text;
  return V.getString(Key, Text) && session::digestsFromHex(Text, Out);
}

bool resultFromJson(const JsonValue &V, uint64_t &Id, LeaseResult &Res) {
  if (!V.isObject() || !V.getU64("id", Id) ||
      !V.getBool("completed", Res.Completed))
    return false;
  const JsonValue *Stats = V.find("stats");
  const JsonValue *Bugs = V.find("bugs");
  const JsonValue *Deferred = V.find("deferred");
  const JsonValue *Remaining = V.find("remaining");
  const JsonValue *Metrics = V.find("metrics");
  if (!Stats || !session::statsFromJson(*Stats, Res.Stats) || !Bugs ||
      !Bugs->isArray() || !Deferred || !Remaining || !Metrics ||
      !session::metricsFromJson(*Metrics, Res.Metrics))
    return false;
  Res.Bugs.clear();
  for (const JsonValue &BugV : Bugs->Arr) {
    search::Bug B;
    if (!session::bugFromJson(BugV, B))
      return false;
    Res.Bugs.push_back(std::move(B));
  }
  Res.Deferred.clear();
  Res.Remaining.clear();
  return session::workItemsFromJson(*Deferred, Res.Deferred) &&
         session::workItemsFromJson(*Remaining, Res.Remaining) &&
         digestField(V, "seen", Res.SeenDigests) &&
         digestField(V, "terminal", Res.TerminalDigests) &&
         digestField(V, "items_seen", Res.ItemDigests);
}

} // namespace icb::dist
