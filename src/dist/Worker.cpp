//===- dist/Worker.cpp - Joiner protocol loop -----------------------------===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//

#include "dist/Worker.h"
#include "dist/Net.h"
#include "dist/Wire.h"
#include <atomic>
#include <chrono>
#include <poll.h>
#include <thread>

using namespace icb;
using namespace icb::dist;

namespace {

uint64_t nowMillis() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// One live connection to the coordinator.
struct Session {
  int Fd = -1;
  FrameReader Reader;

  ~Session() { closeFd(Fd); }

  bool send(const session::JsonValue &Frame) {
    return sendAll(Fd, encodeFrame(Frame));
  }

  /// Waits up to \p TimeoutMillis for one frame. Returns Ok/NeedMore
  /// (timeout)/Error (EOF or protocol garbage).
  DecodeStatus recvFrame(session::JsonValue &Out, uint64_t TimeoutMillis) {
    uint64_t Deadline = nowMillis() + TimeoutMillis;
    while (true) {
      std::string Error;
      DecodeStatus S = Reader.next(Out, &Error);
      if (S != DecodeStatus::NeedMore)
        return S;
      uint64_t Now = nowMillis();
      if (Now >= Deadline)
        return DecodeStatus::NeedMore;
      pollfd P{Fd, POLLIN, 0};
      int N = ::poll(&P, 1, static_cast<int>(Deadline - Now));
      if (N < 0)
        return DecodeStatus::Error;
      if (N == 0)
        return DecodeStatus::NeedMore;
      std::string Bytes;
      if (!recvSome(Fd, Bytes))
        return DecodeStatus::Error;
      Reader.feed(Bytes.data(), Bytes.size());
    }
  }
};

} // namespace

int Worker::run() {
  bool EverConnected = false;
  unsigned Attempt = 0;
  uint64_t HeartbeatMillis = 1000;

  while (true) {
    // --- Connect (capped exponential backoff) --------------------------
    Endpoint Ep;
    if (!parseEndpoint(Opts.Connect, Ep, &ErrorMsg))
      return WorkerRefused;
    std::string ConnErr;
    Session S;
    S.Fd = connectTo(Ep, &ConnErr);
    if (S.Fd < 0) {
      if (++Attempt >= Opts.MaxConnectAttempts) {
        ErrorMsg = ConnErr + " (after " + std::to_string(Attempt) +
                   " attempts)";
        return WorkerNetFail;
      }
      uint64_t Backoff = Opts.BackoffBaseMillis;
      for (unsigned I = 1; I < Attempt && Backoff < Opts.BackoffCapMillis;
           ++I)
        Backoff *= 2;
      std::this_thread::sleep_for(std::chrono::milliseconds(
          std::min(Backoff, Opts.BackoffCapMillis)));
      continue;
    }
    setNonBlocking(S.Fd);

    // --- Hello ---------------------------------------------------------
    if (!S.send(helloFrame(ProtocolVersion,
                           session::checkpointFormatVersion(),
                           /*Reconnect=*/EverConnected))) {
      ++Attempt;
      continue;
    }
    session::JsonValue Frame;
    DecodeStatus St = S.recvFrame(Frame, 10000);
    if (St != DecodeStatus::Ok) {
      if (++Attempt >= Opts.MaxConnectAttempts) {
        ErrorMsg = "no hello_ok from coordinator";
        return WorkerNetFail;
      }
      continue;
    }
    std::string Kind = frameKind(Frame);
    if (Kind == "refuse") {
      refuseFromJson(Frame, ErrorMsg);
      if (ErrorMsg.empty())
        ErrorMsg = "coordinator refused the hello";
      return WorkerRefused;
    }
    session::CheckpointMeta Meta;
    uint64_t RevokeMillis = 5000;
    if (Kind != "hello_ok" ||
        !helloOkFromJson(Frame, Meta, HeartbeatMillis, RevokeMillis)) {
      ErrorMsg = "malformed handshake from coordinator";
      return WorkerRefused;
    }
    if (Opts.OnAdopt && !Opts.OnAdopt(Meta, &ErrorMsg))
      return WorkerRefused;
    EverConnected = true;
    Attempt = 0;

    // --- Lease loop ----------------------------------------------------
    bool Reconnect = false;
    while (!Reconnect) {
      if (!S.send(needWorkFrame())) {
        Reconnect = true;
        break;
      }

      // Wait for a lease (or done), heartbeating so an idle joiner at the
      // bound barrier is not revoked.
      LeaseRequest Req;
      uint64_t LeaseId = 0;
      bool HaveLease = false;
      while (!HaveLease) {
        DecodeStatus W = S.recvFrame(Frame, HeartbeatMillis);
        if (W == DecodeStatus::Error) {
          Reconnect = true;
          break;
        }
        if (W == DecodeStatus::NeedMore) {
          if (!S.send(heartbeatFrame())) {
            Reconnect = true;
            break;
          }
          continue;
        }
        Kind = frameKind(Frame);
        if (Kind == "done")
          return WorkerDone;
        if (Kind == "lease" && leaseFromJson(Frame, LeaseId, Req)) {
          HaveLease = true;
          break;
        }
        // Anything else is protocol noise; drop the connection.
        Reconnect = true;
        break;
      }
      if (!HaveLease)
        break;

      // Execute on a separate thread; keep the protocol loop heartbeating
      // so a long lease does not look like a dead joiner.
      LeaseResult Res;
      std::atomic<bool> ResultReady{false};
      std::thread Exec([&] {
        Res = Opts.Runner(Req);
        ResultReady.store(true, std::memory_order_release);
      });
      bool Lost = false, DoneSeen = false;
      // Poll short so a fast lease is delivered promptly (the socket is
      // quiet while the lease runs, so the poll timeout is the latency
      // floor); heartbeat on a deadline, not per wakeup.
      uint64_t NextBeat = nowMillis() + HeartbeatMillis / 2;
      while (!ResultReady.load(std::memory_order_acquire)) {
        DecodeStatus W = S.recvFrame(Frame, 5);
        if (W == DecodeStatus::Error) {
          Lost = true;
          break;
        }
        if (W == DecodeStatus::Ok && frameKind(Frame) == "done") {
          DoneSeen = true;
          break;
        }
        uint64_t Now = nowMillis();
        if (Now >= NextBeat) {
          if (!S.send(heartbeatFrame())) {
            Lost = true;
            break;
          }
          NextBeat = Now + HeartbeatMillis / 2;
        }
      }
      Exec.join();
      if (DoneSeen)
        return WorkerDone; // Run ended under us; the result is moot.
      if (Lost) {
        // The coordinator revoked this lease on our EOF — the result must
        // be discarded, never delivered on a new connection.
        Reconnect = true;
        break;
      }
      ++LeaseCount;
      if (!S.send(resultFrame(LeaseId, Res))) {
        Reconnect = true;
        break;
      }
    }
    // Fall through to reconnect (fresh hello, marked as such).
  }
}
