//===- dist/Worker.h - Joiner protocol loop ---------------------*- C++ -*-===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The joiner side of the distributed checker (`icb_check --join`): the
/// connect / hello / need_work / result protocol loop, reconnect with
/// capped exponential backoff, and heartbeats while a lease executes on a
/// separate thread. Execution itself is behind the LeaseRunner seam
/// (dist/Protocol.h) — the tools plug in the real engines, the tests plug
/// in fakes.
///
/// Exactly-once from this side: a result is only ever sent on the
/// connection whose lease it answers. If that connection dies mid-lease,
/// the result is discarded (the coordinator has revoked and re-queued the
/// items) and the joiner reconnects with a fresh hello.
///
//===----------------------------------------------------------------------===//

#ifndef ICB_DIST_WORKER_H
#define ICB_DIST_WORKER_H

#include "dist/Protocol.h"
#include "session/Checkpoint.h"
#include <cstdint>
#include <functional>
#include <string>

namespace icb::dist {

struct WorkerOptions {
  /// Coordinator address, "HOST:PORT".
  std::string Connect;
  /// Reconnect policy: capped exponential backoff, giving up after this
  /// many consecutive failed attempts (exit code 4).
  unsigned MaxConnectAttempts = 8;
  uint64_t BackoffBaseMillis = 100;
  uint64_t BackoffCapMillis = 2000;
  /// Called with the coordinator's meta after every successful hello,
  /// before any lease runs. Returning false (with an explanation in the
  /// string) refuses the configuration — the joiner exits 2, mirroring
  /// the `--resume` conflict rules.
  std::function<bool(const session::CheckpointMeta &, std::string *)>
      OnAdopt;
  /// Executes one lease (fresh engine, fresh caches, fresh metrics
  /// registry — see dist/Protocol.h).
  LeaseRunner Runner;
};

/// Exit codes Worker::run() returns (aligned with the CLI's).
enum WorkerExit : int {
  WorkerDone = 0,    ///< Coordinator sent done.
  WorkerRefused = 2, ///< Version/config refusal (usage-class error).
  WorkerNetFail = 4, ///< Connection attempts exhausted (I/O-class error).
};

class Worker {
public:
  explicit Worker(WorkerOptions Opts) : Opts(std::move(Opts)) {}

  /// Runs the protocol loop to completion; returns a WorkerExit code.
  int run();

  /// Human-readable cause when run() returned nonzero.
  const std::string &error() const { return ErrorMsg; }

  /// Leases executed (for the joiner's own log line).
  uint64_t leasesRun() const { return LeaseCount; }

private:
  WorkerOptions Opts;
  std::string ErrorMsg;
  uint64_t LeaseCount = 0;
};

} // namespace icb::dist

#endif // ICB_DIST_WORKER_H
