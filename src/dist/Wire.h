//===- dist/Wire.h - Length-prefixed JSON framing ---------------*- C++ -*-===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The byte layer of the distributed checking protocol: one frame is a
/// 4-byte little-endian length followed by exactly that many bytes of
/// JSON text (the session dialect — see session/Json.h). The payloads are
/// the existing checkpoint encodings of work items, stats, bugs, and
/// metrics, so the wire format is versioned by the checkpoint format plus
/// one protocol number (dist/Protocol.h), not by a third scheme.
///
/// Decoding is incremental and strict: FrameReader buffers whatever the
/// socket delivered and yields complete frames; a length above
/// MaxFrameBytes or unparseable JSON is a hard protocol error (the peer
/// is broken or hostile — drop the connection, never resynchronize).
///
//===----------------------------------------------------------------------===//

#ifndef ICB_DIST_WIRE_H
#define ICB_DIST_WIRE_H

#include "session/Json.h"
#include <cstddef>
#include <cstdint>
#include <string>

namespace icb::dist {

/// Upper bound on one frame's JSON payload. Generous — a frame carries at
/// most one lease batch or one lease result — but finite, so a corrupt or
/// malicious length prefix cannot make a process attempt a huge
/// allocation.
inline constexpr uint32_t MaxFrameBytes = 1u << 28;

/// Renders \p V as one wire frame (length prefix + JSON text).
std::string encodeFrame(const session::JsonValue &V);

enum class DecodeStatus : uint8_t {
  Ok,       ///< One complete frame decoded.
  NeedMore, ///< The buffer ends mid-frame; feed more bytes.
  Error,    ///< Oversized length or malformed JSON: drop the connection.
};

/// Decodes one frame from \p Bytes starting at \p Off; on Ok advances
/// \p Off past the frame. Exposed for the adversarial decode tests — the
/// sockets go through FrameReader.
DecodeStatus decodeFrame(const std::string &Bytes, size_t &Off,
                         session::JsonValue &Out, std::string *Error);

/// Incremental frame decoder over a byte stream.
class FrameReader {
public:
  /// Appends received bytes.
  void feed(const char *Data, size_t N) { Buf.append(Data, N); }

  /// Pops the next complete frame. NeedMore leaves the buffer untouched;
  /// Error poisons the reader (every later call reports Error too).
  DecodeStatus next(session::JsonValue &Out, std::string *Error);

private:
  std::string Buf;
  size_t Off = 0;
  bool Poisoned = false;
  std::string PoisonMsg;
};

} // namespace icb::dist

#endif // ICB_DIST_WIRE_H
