//===- rt/ReplayExecutor.h - Stateless (CHESS-style) executor ---*- C++ -*-===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The stateless executor for the ICB engine (see search/Executor.h).
/// CHESS caches no states: a work item carries a schedule *prefix*
/// instead of a state, and running a chain means deterministically
/// replaying the prefix on the fiber runtime, forcing one chosen thread
/// at the divergence point, and then following the current thread
/// nonpreemptively — collecting the preempting alternatives for the next
/// bound and the free (blocked/finished/yield) alternatives for this one.
/// Coverage is counted in distinct happens-before fingerprints (Section
/// 4.3's state representation for stateless checking).
///
/// Each ReplayExecutor owns its own Scheduler (and through it, its own
/// fiber contexts and stacks), so one executor per worker thread replays
/// prefixes concurrently with no shared mutable state — the engine's
/// "executor i runs on worker thread i only" contract.
///
//===----------------------------------------------------------------------===//

#ifndef ICB_RT_REPLAYEXECUTOR_H
#define ICB_RT_REPLAYEXECUTOR_H

#include "obs/Metrics.h"
#include "obs/PhaseTimer.h"
#include "rt/ExecutionResult.h"
#include "rt/SchedulePolicy.h"
#include "rt/Scheduler.h"
#include "search/BoundPolicy.h"
#include "search/EngineObserver.h"
#include "search/Executor.h"
#include "search/SearchTypes.h"
#include "support/Debug.h"
#include <algorithm>
#include <vector>

namespace icb::rt {

/// A stateless ICB work item: replay Prefix, then force NextTid.
/// (InvalidThread means "no forced choice" — only the root item.) Under
/// the preemption policy the bound index is implicit: every item queued
/// for bound c replays to an execution with exactly c preemptions.
struct PrefixItem {
  std::vector<ThreadId> Prefix;
  ThreadId NextTid = InvalidThread;
  /// Bounded-POR sleep set at the divergence state (after replaying
  /// Prefix): threads whose continuations from there are covered
  /// elsewhere at no extra preemption cost. Sorted ascending; empty when
  /// POR is off. Same-bound (free-switch) siblings inherit the chain's
  /// set unchanged; a *deferred* (next-bound) item carries the
  /// continuation thread it preempted plus any entries still asleep at
  /// the defer point, and every other inherited entry is woken (dropped)
  /// there — the Coons-style budget correction.
  std::vector<ThreadId> Sleep;
  /// The budget the active BoundPolicy carries on this item; empty for
  /// stateless policies (preemption, delay).
  search::BoundState BState;
  /// Schedule-space mass of this item's subtree (obs::EstimateOne units);
  /// 0 under ICB_NO_METRICS.
  uint64_t Est = 0;
  /// Display name of the preemption site that seeded this subtree (the
  /// preempted thread's pending op detail); free-switch siblings inherit
  /// the chain's site, the root carries "root".
  std::string Site;
  /// Trace flow id linking the publishing branch/defer event to this
  /// item's ExecBegin; in-memory only, never serialized. 0 = no flow.
  uint64_t Flow = 0;
};

/// Maps an error RunStatus onto the shared bug vocabulary.
inline search::BugKind bugKindFromStatus(RunStatus Status) {
  switch (Status) {
  case RunStatus::AssertFailed:
    return search::BugKind::AssertFailure;
  case RunStatus::Deadlock:
    return search::BugKind::Deadlock;
  case RunStatus::DataRace:
    return search::BugKind::DataRace;
  case RunStatus::UseAfterFree:
    return search::BugKind::UseAfterFree;
  case RunStatus::Diverged:
    return search::BugKind::Diverged;
  case RunStatus::Terminated:
  case RunStatus::Aborted:
    break;
  }
  ICB_UNREACHABLE("not an error status");
}

/// Builds the shared bug report from an error execution.
inline search::Bug bugFromResult(const ExecutionResult &R) {
  ICB_ASSERT(isErrorStatus(R.Status), "bugFromResult on a clean execution");
  search::Bug Bug;
  Bug.Kind = bugKindFromStatus(R.Status);
  Bug.Message = R.Message;
  Bug.Preemptions = R.Preemptions;
  Bug.ContextSwitches = R.ContextSwitches;
  Bug.Steps = R.Steps;
  Bug.Schedule.reserve(R.Sched.length());
  for (const trace::ScheduleEntry &E : R.Sched.entries())
    Bug.Schedule.push_back(E.Tid);
  Bug.Sched = R.Sched;
  return Bug;
}

/// The ICB continuation policy (the body of Algorithm 1's Search): follow
/// the prefix, force the chosen thread, then keep running the current
/// thread while it stays enabled. Alternatives at points where the current
/// thread stays enabled cost a preemption (deferred to the next bound);
/// alternatives at yield or blocking points are free (same bound).
class IcbPolicy : public SchedulePolicy {
public:
  explicit IcbPolicy(const PrefixItem &Item, obs::MetricShard *MS = nullptr,
                     bool Por = false,
                     const search::BoundPolicy *BP = nullptr)
      : ChainEst(Item.Est), ChainSite(Item.Site), Prefix(Item.Prefix),
        Forced(Item.NextTid), ChainSleep(Item.Sleep),
        ChainState(Item.BState), Por(Por), BP(BP ? BP : &fallbackPolicy()),
        MS(MS) {
#ifndef ICB_NO_METRICS
    if (MS && !Prefix.empty())
      ReplayStart = obs::nowNanos();
#endif
  }

  /// Records the prefix-replay duration if the execution ended while (or
  /// exactly when) the replay did; called once after the run.
  void flushReplayPhase() {
#ifndef ICB_NO_METRICS
    if (ReplayStart) {
      uint64_t Now = obs::nowNanos();
      uint64_t Elapsed = Now > ReplayStart ? Now - ReplayStart : 0;
      MS->Phases[static_cast<size_t>(obs::Phase::Replay)].observe(Elapsed);
      // Same log2 latency bucket ScopedPhase records, so the replay
      // phase gets percentile estimates like every other phase.
      size_t Bucket =
          Elapsed ? static_cast<size_t>(64 - __builtin_clzll(Elapsed)) : 0;
      MS->PhaseHist[static_cast<size_t>(obs::Phase::Replay)].increment(
          Bucket);
      ReplayStart = 0;
    }
#endif
  }

  ThreadId pick(const SchedPoint &P) override {
#ifndef ICB_NO_METRICS
    // First choice past the prefix: the replay phase of this chain ends.
    if (ReplayStart && P.Index >= Prefix.size())
      flushReplayPhase();
#endif
    // Wake sleepers that depend on the step just executed. Item.Sleep
    // describes the divergence state, so filtering starts with the first
    // step taken past the prefix.
    if (Por && HaveExec)
      filterSleep(P);
    ThreadId Chosen;
    if (P.Index < Prefix.size()) {
      Chosen = Prefix[P.Index];
      ICB_ASSERT(std::find(P.Enabled.begin(), P.Enabled.end(), Chosen) !=
                     P.Enabled.end(),
                 "ICB replay divergence (nondeterministic test?)");
    } else if (P.Index == Prefix.size() && Forced != InvalidThread) {
      Chosen = Forced;
      ICB_ASSERT(std::find(P.Enabled.begin(), P.Enabled.end(), Chosen) !=
                     P.Enabled.end(),
                 "ICB forced thread not enabled (nondeterministic test?)");
      Current = Chosen;
    } else {
      bool CurrentEnabled =
          Current != InvalidThread &&
          std::find(P.Enabled.begin(), P.Enabled.end(), Current) !=
              P.Enabled.end();
      if (CurrentEnabled) {
        // Lines 29-32 / yield handling: alternatives here are
        // preemptions unless the current thread volunteered. The active
        // policy charges the point once — the charge keys on the
        // preempted thread and its pending variable, not on which
        // alternative runs instead — and routes the published items:
        // NextBound defers, SameBound branches at this bound (a
        // thread-policy preemption of an already-budgeted thread), Prune
        // drops the alternatives outright (the variable cap).
        //
        // Each conservatively published item sleeps the continuation
        // thread: the pruned continuation-later traces are covered by
        // this chain itself, which re-publishes the same preemptor one
        // step on, at the published item's own bound. A still-asleep
        // thread is not published at all (covered via its install site,
        // cheaper by one budget unit) but stays asleep for the later
        // siblings. Everything else inherited is conservatively woken
        // (dropped) — the published budget differs from the install-time
        // budget, the Coons-style correction. Unlike the model VM, this
        // executor cannot probe whether a sibling's step would disable
        // it, so awake siblings never sleep each other here.
        bool Free = P.LastYielded && P.Last == Current;
        search::Decision D;
        D.Kind = Free ? search::DecisionKind::FreeSwitch
                      : search::DecisionKind::Preemption;
        D.Preempted = Current;
        if (!Free && BP->kind() == search::BoundKind::ThreadVariable)
          D.Var = P.Sched->pendingOp(Current).VarCode;
        search::BoundState ChildState;
        search::ChargeOutcome O = BP->chargeFor(D, ChainState, ChildState);
        bool Conservative = BP->conservativeWake(D, O);
#ifndef ICB_NO_METRICS
        size_t SB0 = SameBound.size(), NB0 = NextBound.size();
#endif
        std::vector<ThreadId> DeferredSleep;
        bool PublishedConservative = false;
        uint64_t Carried = 0;
        if (Por && Conservative)
          DeferredSleep.push_back(Current);
        for (ThreadId Other : P.Enabled) {
          if (Other == Current)
            continue;
          if (Por && sleeping(Other)) {
            ++SleptTransitions;
            if (Conservative) {
              ++Carried;
              addSorted(DeferredSleep, Other);
            }
            continue;
          }
          if (O == search::ChargeOutcome::Prune)
            continue;
          PrefixItem Item;
          Item.Prefix = Mirror;
          Item.NextTid = Other;
          Item.BState = ChildState;
          // Free-switch siblings share this chain's budget and state, so
          // the chain's sleep set transfers to them unchanged.
          if (Por)
            Item.Sleep = Conservative ? DeferredSleep : ChainSleep;
          PublishedConservative |= Conservative;
          (O == search::ChargeOutcome::NextBound ? NextBound : SameBound)
              .push_back(std::move(Item));
        }
        if (Por && PublishedConservative && ChainSleep.size() > Carried)
          BudgetWoken += ChainSleep.size() - Carried;
#ifndef ICB_NO_METRICS
        stampPublished(SB0, NB0, P, /*Preempt=*/!Free);
#endif
        Chosen = Current;
      } else {
        // Lines 33-37: the current thread blocked or finished; switching
        // is free. Continue with the lowest awake thread; the policy
        // charges the remaining alternatives once (SameBound keeps
        // today's same-bound branch; the delay policy charges every
        // deviation from the default, deferring each alternative with
        // the conservative sleep set {First}). Sleeping threads'
        // subtrees are covered by their install sites at this same
        // budget, so they are skipped; in the SameBound case the chain's
        // sleep set transfers to the awake siblings unchanged (same
        // state, same budget). Awake siblings do not sleep each other —
        // without the VM's lookahead probe, the covering trace could
        // cost an extra preemption and push a bug past its minimal
        // bound.
        search::Decision D;
        search::BoundState ChildState;
        search::ChargeOutcome O = BP->chargeFor(D, ChainState, ChildState);
#ifndef ICB_NO_METRICS
        size_t SB0 = SameBound.size(), NB0 = NextBound.size();
#endif
        ThreadId First = InvalidThread;
        for (ThreadId T : P.Enabled) {
          if (Por && sleeping(T)) {
            ++SleptTransitions;
            continue;
          }
          if (First == InvalidThread) {
            First = T;
            continue;
          }
          if (O == search::ChargeOutcome::Prune)
            continue;
          PrefixItem Item;
          Item.Prefix = Mirror;
          Item.NextTid = T;
          Item.BState = ChildState;
          if (O == search::ChargeOutcome::NextBound) {
            if (Por)
              Item.Sleep = {First};
            NextBound.push_back(std::move(Item));
          } else {
            if (Por)
              Item.Sleep = ChainSleep;
            SameBound.push_back(std::move(Item));
          }
        }
        if (First == InvalidThread) {
          // Every enabled thread is asleep: everything reachable from
          // here is covered by earlier siblings. Prune the chain.
          PrunedBySleep = true;
          return AbortExecution;
        }
#ifndef ICB_NO_METRICS
        stampPublished(SB0, NB0, P, /*Preempt=*/false);
#endif
        Chosen = First;
        Current = Chosen;
      }
    }
    if (P.Index < Prefix.size()) {
      // While replaying, track the running thread so the continuation
      // starts from the right place even for pure-replay items.
      Current = Chosen;
    } else if (Por) {
      // Remember the step about to execute for the next pick's wake pass.
      const PendingOp &Op = P.Sched->pendingOp(Chosen);
      ExecTid = Chosen;
      ExecKind = Op.Kind;
      ExecVar = Op.VarCode;
      HaveExec = true;
    }
    Mirror.push_back(Chosen);
    return Chosen;
  }

  std::vector<PrefixItem> SameBound;
  std::vector<PrefixItem> NextBound;

  // --- Bounded-POR accounting, read by runChain after the run -------------
  uint64_t SleptTransitions = 0; ///< Enabled siblings skipped while asleep.
  uint64_t BudgetWoken = 0;      ///< Sleepers dropped at preemption points.
  bool PrunedBySleep = false;    ///< Chain cut with every thread asleep.

  // --- Estimator accounting, read by runChain after the run ---------------
  /// Remaining schedule-space mass of the chain (the item's mass minus
  /// every published child's share); credited by the driver at chain end.
  uint64_t ChainEst = 0;
  /// Site attribution of the chain itself, inherited by its free-switch
  /// siblings (a free switch is not a preemption point).
  std::string ChainSite;

private:
#ifndef ICB_NO_METRICS
  /// Splits the chain's remaining mass evenly over the items published
  /// since the ([\p S0, \p N0]) size snapshot (SameBound / NextBound
  /// tails) and stamps their site: the preempted thread's pending
  /// operation for a true preemption, the chain's own site otherwise.
  void stampPublished(size_t S0, size_t N0, const SchedPoint &P,
                      bool Preempt) {
    size_t NNew = (SameBound.size() - S0) + (NextBound.size() - N0);
    if (NNew == 0)
      return;
    std::string Site = ChainSite;
    if (Preempt) {
      const PendingOp &Op = P.Sched->pendingOp(Current);
      Site = Op.Detail.empty() ? std::string(opKindName(Op.Kind)) : Op.Detail;
    }
    uint64_t Share = ChainEst / (NNew + 1);
    ChainEst -= Share * static_cast<uint64_t>(NNew);
    for (size_t I = S0; I != SameBound.size(); ++I) {
      SameBound[I].Est = Share;
      SameBound[I].Site = Site;
    }
    for (size_t I = N0; I != NextBound.size(); ++I) {
      NextBound[I].Est = Share;
      NextBound[I].Site = Site;
    }
  }
#endif
  bool sleeping(ThreadId T) const {
    return std::binary_search(ChainSleep.begin(), ChainSleep.end(), T);
  }

  static void addSorted(std::vector<ThreadId> &V, ThreadId T) {
    V.insert(std::lower_bound(V.begin(), V.end(), T), T);
  }

  /// Does the executed step (thread \p ExecTid performing \p ExecKind on
  /// \p ExecVar) depend on sleeper \p B's parked operation? Conservative
  /// wherever the one-var-per-step abstraction leaks:
  ///  * any step of thread t could be t's terminating one, so pending
  ///    joins on t wake on every step t takes;
  ///  * a creation point (Start, VarCode 0) spawns a thread and touches
  ///    its termination event in the trailing slice — always dependent,
  ///    from either side;
  ///  * condvar wait queues are mutated in the slice *before* the
  ///    MutexUnlock point inside wait(), invisible to var codes, so a
  ///    CondSignal commutes with nothing — from either side. A pending
  ///    CondSignal never stays asleep, and an *executed* CondSignal wakes
  ///    every sleeper: a sleeper's next step may run the enqueue slice of
  ///    a wait on the same condvar (its pending op only shows the mutex),
  ///    and signal-before-enqueue loses exactly the wakeup whose loss the
  ///    pruned interleaving would have exposed.
  /// Data accesses inside slices are covered by the data-race-freedom
  /// argument (CHESS Section 3.1): SyncOnly executions are race-checked,
  /// so racy commutations surface as DataRace bugs rather than silently
  /// diverging. Yields touch no shared object and commute with anything.
  static bool dependent(ThreadId ExecTid, OpKind ExecKind, uint64_t ExecVar,
                        const PendingOp &B) {
    if (B.Kind == OpKind::Join)
      return B.JoinTarget == ExecTid;
    if (B.Kind == OpKind::CondSignal || ExecKind == OpKind::CondSignal)
      return true;
    // Modeled io couples objects across var codes: a pipe write is the
    // wakeup edge of every epoll/poll gate watching that pipe, a close
    // retires watches in third-party epolls, and the fd table itself is
    // shared (slot reuse). Two io ops therefore never commute.
    if (isIoOp(B.Kind) && isIoOp(ExecKind))
      return true;
    if (ExecKind == OpKind::Start && ExecVar == 0)
      return true;
    if (B.Kind == OpKind::Start && B.VarCode == 0)
      return true;
    if (ExecKind == OpKind::Yield || B.Kind == OpKind::Yield)
      return false;
    return ExecVar != 0 && ExecVar == B.VarCode;
  }

  /// Drops every sleeper whose parked operation depends on the last
  /// executed step (Godefroid's wake rule, over the runtime's pending-op
  /// independence relation).
  void filterSleep(const SchedPoint &P) {
    if (ChainSleep.empty())
      return;
    obs::ScopedPhase Timer(MS, obs::Phase::Por);
    size_t Kept = 0;
    for (ThreadId U : ChainSleep)
      if (!dependent(ExecTid, ExecKind, ExecVar, P.Sched->pendingOp(U)))
        ChainSleep[Kept++] = U;
    ChainSleep.resize(Kept);
  }

  /// Policy fallback so a bare IcbPolicy (no engine context) behaves as
  /// the classic preemption-bounded continuation.
  static const search::BoundPolicy &fallbackPolicy() {
    static const search::PreemptionBoundPolicy P{~0u};
    return P;
  }

  std::vector<ThreadId> Prefix;
  ThreadId Forced;
  /// Sleep set carried along the chain (sorted ascending). Seeded from the
  /// work item; filtered after every executed step; consulted and extended
  /// when same-bound siblings are published.
  std::vector<ThreadId> ChainSleep;
  /// The item's BoundPolicy budget; the chain itself is never charged, so
  /// this stays constant while published items carry charged successors.
  search::BoundState ChainState;
  bool Por;
  const search::BoundPolicy *BP;
  ThreadId Current = InvalidThread;
  std::vector<ThreadId> Mirror;
  obs::MetricShard *MS;
  uint64_t ReplayStart = 0;
  /// Summary of the last executed (post-prefix) step, for filterSleep.
  bool HaveExec = false;
  ThreadId ExecTid = InvalidThread;
  OpKind ExecKind = OpKind::Yield;
  uint64_t ExecVar = 0;
};

/// Executor advancing the search by replaying schedule prefixes on the
/// fiber runtime.
class ReplayExecutor {
public:
  using WorkItem = PrefixItem;

  ReplayExecutor(const TestCase &Test, const Scheduler::Options &ExecOpts,
                 bool Por = false)
      : Test(Test), Sched(ExecOpts), Por(Por) {}

  template <typename Ctx> std::vector<WorkItem> rootItems(Ctx &) {
    // One root: the empty prefix with a free first choice. The runtime
    // always has a runnable main thread, so there is no degenerate case.
    std::vector<WorkItem> Roots;
    WorkItem Root;
    Root.Site = "root";
    Roots.push_back(std::move(Root));
    return Roots;
  }

  template <typename Ctx> void runChain(WorkItem Item, Ctx &C) {
    obs::MetricShard *MS = C.metrics();
    Sched.setMetricShard(MS);
    IcbPolicy Policy(Item, MS, Por, &C.policy());
    ExecutionResult R = Sched.run(Test, Policy);
    Policy.flushReplayPhase();
    obs::count(MS, obs::Counter::ReplaySteps, Item.Prefix.size());
    ICB_OBS(MS, MS->ReplayDepth.observe(Item.Prefix.size()));
    if (Por) {
      if (Policy.SleptTransitions) {
        obs::count(MS, obs::Counter::TransitionsSlept,
                   Policy.SleptTransitions);
        ICB_OBS(MS, MS->SleepSavedPerBound.increment(C.bound(),
                                                     Policy.SleptTransitions));
      }
      if (Policy.BudgetWoken)
        obs::count(MS, obs::Counter::WokenByBudget, Policy.BudgetWoken);
      if (Policy.PrunedBySleep)
        obs::count(MS, obs::Counter::SleptExecutions);
    }
    // Under the preemption policy the work-queue structure guarantees
    // every execution at bound c has exactly c preemptions; this is
    // Algorithm 1's core invariant. A sleep-pruned chain (Aborted) still
    // replayed its full prefix, so the invariant holds for it too. Other
    // policies budget different resources, so the equality does not hold
    // for them.
    ICB_ASSERT(C.policy().kind() != search::BoundKind::Preemption ||
                   R.Preemptions == C.bound(),
               "ICB invariant violated: unexpected preemption count");
    for (PrefixItem &Branch : Policy.SameBound)
      C.branch(std::move(Branch));
    for (PrefixItem &Deferred : Policy.NextBound)
      C.defer(std::move(Deferred));

    C.countSteps(R.Steps);
    for (uint64_t Digest : R.StepFingerprints)
      C.noteState(Digest);
    C.noteTerminal(R.Fingerprint);
    if (isErrorStatus(R.Status))
      C.recordBug(bugFromResult(R));

    search::ExecutionFacts Facts;
    Facts.Steps = R.Steps;
    Facts.Blocking = R.BlockingOps;
    Facts.ThreadsUsed = R.ThreadsUsed;
    Facts.EstMass = Policy.ChainEst;
    C.endExecution(Facts);
  }

  /// Checkpoint form: a PrefixItem *is* (prefix, next, sleep, budget)
  /// already.
  search::SavedWorkItem saveItem(const WorkItem &W) const {
    search::SavedWorkItem S;
    S.Prefix = W.Prefix;
    S.Next = W.NextTid;
    S.Sleep = W.Sleep;
    S.BoundThreads = W.BState.Threads;
    S.BoundVars = W.BState.Vars;
    S.EstMass = W.Est;
    S.Site = W.Site;
    return S;
  }

  WorkItem loadItem(const search::SavedWorkItem &S) const {
    WorkItem W;
    W.Prefix = S.Prefix;
    W.NextTid = S.Next;
    W.Sleep = S.Sleep;
    W.BState = {S.BoundThreads, S.BoundVars};
    W.Est = S.EstMass;
    W.Site = S.Site;
    return W;
  }

private:
  const TestCase &Test;
  Scheduler Sched;
  bool Por;
};

} // namespace icb::rt

#endif // ICB_RT_REPLAYEXECUTOR_H
