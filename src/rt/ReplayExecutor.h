//===- rt/ReplayExecutor.h - Stateless (CHESS-style) executor ---*- C++ -*-===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The stateless executor for the ICB engine (see search/Executor.h).
/// CHESS caches no states: a work item carries a schedule *prefix*
/// instead of a state, and running a chain means deterministically
/// replaying the prefix on the fiber runtime, forcing one chosen thread
/// at the divergence point, and then following the current thread
/// nonpreemptively — collecting the preempting alternatives for the next
/// bound and the free (blocked/finished/yield) alternatives for this one.
/// Coverage is counted in distinct happens-before fingerprints (Section
/// 4.3's state representation for stateless checking).
///
/// Each ReplayExecutor owns its own Scheduler (and through it, its own
/// fiber contexts and stacks), so one executor per worker thread replays
/// prefixes concurrently with no shared mutable state — the engine's
/// "executor i runs on worker thread i only" contract.
///
//===----------------------------------------------------------------------===//

#ifndef ICB_RT_REPLAYEXECUTOR_H
#define ICB_RT_REPLAYEXECUTOR_H

#include "obs/Metrics.h"
#include "obs/PhaseTimer.h"
#include "rt/ExecutionResult.h"
#include "rt/SchedulePolicy.h"
#include "rt/Scheduler.h"
#include "search/EngineObserver.h"
#include "search/Executor.h"
#include "search/SearchTypes.h"
#include "support/Debug.h"
#include <algorithm>
#include <vector>

namespace icb::rt {

/// A stateless ICB work item: replay Prefix, then force NextTid.
/// (InvalidThread means "no forced choice" — only the root item.) The
/// preemption count is implicit: every item queued for bound c replays to
/// an execution with exactly c preemptions.
struct PrefixItem {
  std::vector<ThreadId> Prefix;
  ThreadId NextTid = InvalidThread;
};

/// Maps an error RunStatus onto the shared bug vocabulary.
inline search::BugKind bugKindFromStatus(RunStatus Status) {
  switch (Status) {
  case RunStatus::AssertFailed:
    return search::BugKind::AssertFailure;
  case RunStatus::Deadlock:
    return search::BugKind::Deadlock;
  case RunStatus::DataRace:
    return search::BugKind::DataRace;
  case RunStatus::UseAfterFree:
    return search::BugKind::UseAfterFree;
  case RunStatus::Diverged:
    return search::BugKind::Diverged;
  case RunStatus::Terminated:
  case RunStatus::Aborted:
    break;
  }
  ICB_UNREACHABLE("not an error status");
}

/// Builds the shared bug report from an error execution.
inline search::Bug bugFromResult(const ExecutionResult &R) {
  ICB_ASSERT(isErrorStatus(R.Status), "bugFromResult on a clean execution");
  search::Bug Bug;
  Bug.Kind = bugKindFromStatus(R.Status);
  Bug.Message = R.Message;
  Bug.Preemptions = R.Preemptions;
  Bug.ContextSwitches = R.ContextSwitches;
  Bug.Steps = R.Steps;
  Bug.Schedule.reserve(R.Sched.length());
  for (const trace::ScheduleEntry &E : R.Sched.entries())
    Bug.Schedule.push_back(E.Tid);
  Bug.Sched = R.Sched;
  return Bug;
}

/// The ICB continuation policy (the body of Algorithm 1's Search): follow
/// the prefix, force the chosen thread, then keep running the current
/// thread while it stays enabled. Alternatives at points where the current
/// thread stays enabled cost a preemption (deferred to the next bound);
/// alternatives at yield or blocking points are free (same bound).
class IcbPolicy : public SchedulePolicy {
public:
  explicit IcbPolicy(const PrefixItem &Item,
                     obs::MetricShard *MS = nullptr)
      : Prefix(Item.Prefix), Forced(Item.NextTid), MS(MS) {
#ifndef ICB_NO_METRICS
    if (MS && !Prefix.empty())
      ReplayStart = obs::nowNanos();
#endif
  }

  /// Records the prefix-replay duration if the execution ended while (or
  /// exactly when) the replay did; called once after the run.
  void flushReplayPhase() {
#ifndef ICB_NO_METRICS
    if (ReplayStart) {
      MS->Phases[static_cast<size_t>(obs::Phase::Replay)].observe(
          obs::nowNanos() - ReplayStart);
      ReplayStart = 0;
    }
#endif
  }

  ThreadId pick(const SchedPoint &P) override {
#ifndef ICB_NO_METRICS
    // First choice past the prefix: the replay phase of this chain ends.
    if (ReplayStart && P.Index >= Prefix.size())
      flushReplayPhase();
#endif
    ThreadId Chosen;
    if (P.Index < Prefix.size()) {
      Chosen = Prefix[P.Index];
      ICB_ASSERT(std::find(P.Enabled.begin(), P.Enabled.end(), Chosen) !=
                     P.Enabled.end(),
                 "ICB replay divergence (nondeterministic test?)");
    } else if (P.Index == Prefix.size() && Forced != InvalidThread) {
      Chosen = Forced;
      ICB_ASSERT(std::find(P.Enabled.begin(), P.Enabled.end(), Chosen) !=
                     P.Enabled.end(),
                 "ICB forced thread not enabled (nondeterministic test?)");
      Current = Chosen;
    } else {
      bool CurrentEnabled =
          Current != InvalidThread &&
          std::find(P.Enabled.begin(), P.Enabled.end(), Current) !=
              P.Enabled.end();
      if (CurrentEnabled) {
        // Lines 29-32 / yield handling: alternatives here are
        // preemptions unless the current thread volunteered.
        bool Free = P.LastYielded && P.Last == Current;
        for (ThreadId Other : P.Enabled) {
          if (Other == Current)
            continue;
          (Free ? SameBound : NextBound).push_back({Mirror, Other});
        }
        Chosen = Current;
      } else {
        // Lines 33-37: the current thread blocked or finished; switching
        // is free. Continue with the lowest-id thread, branch the rest.
        for (size_t I = 1; I < P.Enabled.size(); ++I)
          SameBound.push_back({Mirror, P.Enabled[I]});
        Chosen = P.Enabled.front();
        Current = Chosen;
      }
    }
    if (P.Index < Prefix.size()) {
      // While replaying, track the running thread so the continuation
      // starts from the right place even for pure-replay items.
      Current = Chosen;
    }
    Mirror.push_back(Chosen);
    return Chosen;
  }

  std::vector<PrefixItem> SameBound;
  std::vector<PrefixItem> NextBound;

private:
  std::vector<ThreadId> Prefix;
  ThreadId Forced;
  ThreadId Current = InvalidThread;
  std::vector<ThreadId> Mirror;
  obs::MetricShard *MS;
  uint64_t ReplayStart = 0;
};

/// Executor advancing the search by replaying schedule prefixes on the
/// fiber runtime.
class ReplayExecutor {
public:
  using WorkItem = PrefixItem;

  ReplayExecutor(const TestCase &Test, const Scheduler::Options &ExecOpts)
      : Test(Test), Sched(ExecOpts) {}

  template <typename Ctx> std::vector<WorkItem> rootItems(Ctx &) {
    // One root: the empty prefix with a free first choice. The runtime
    // always has a runnable main thread, so there is no degenerate case.
    std::vector<WorkItem> Roots;
    Roots.push_back({{}, InvalidThread});
    return Roots;
  }

  template <typename Ctx> void runChain(WorkItem Item, Ctx &C) {
    obs::MetricShard *MS = C.metrics();
    Sched.setMetricShard(MS);
    IcbPolicy Policy(Item, MS);
    ExecutionResult R = Sched.run(Test, Policy);
    Policy.flushReplayPhase();
    obs::count(MS, obs::Counter::ReplaySteps, Item.Prefix.size());
    ICB_OBS(MS, MS->ReplayDepth.observe(Item.Prefix.size()));
    // The work-queue structure guarantees every execution at bound c has
    // exactly c preemptions; this is Algorithm 1's core invariant.
    ICB_ASSERT(R.Preemptions == C.bound(),
               "ICB invariant violated: unexpected preemption count");
    for (PrefixItem &Branch : Policy.SameBound)
      C.branch(std::move(Branch));
    for (PrefixItem &Deferred : Policy.NextBound)
      C.defer(std::move(Deferred));

    C.countSteps(R.Steps);
    for (uint64_t Digest : R.StepFingerprints)
      C.noteState(Digest);
    C.noteTerminal(R.Fingerprint);
    if (isErrorStatus(R.Status))
      C.recordBug(bugFromResult(R));

    search::ExecutionFacts Facts;
    Facts.Steps = R.Steps;
    Facts.Blocking = R.BlockingOps;
    Facts.ThreadsUsed = R.ThreadsUsed;
    C.endExecution(Facts);
  }

  /// Checkpoint form: a PrefixItem *is* (prefix, next) already.
  search::SavedWorkItem saveItem(const WorkItem &W) const {
    search::SavedWorkItem S;
    S.Prefix = W.Prefix;
    S.Next = W.NextTid;
    return S;
  }

  WorkItem loadItem(const search::SavedWorkItem &S) const {
    return {S.Prefix, S.Next};
  }

private:
  const TestCase &Test;
  Scheduler Sched;
};

} // namespace icb::rt

#endif // ICB_RT_REPLAYEXECUTOR_H
