//===- rt/Atomic.h - Interlocked variables (sync variables) -----*- C++ -*-===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// `Atomic<T>` models an interlocked/volatile variable: every access is a
/// synchronization operation (a scheduling point that creates
/// happens-before edges), which is how CHESS's dynamic partitioning
/// classifies variables accessed with interlocked instructions. The
/// work-stealing queue's head/tail indices are the canonical users.
///
//===----------------------------------------------------------------------===//

#ifndef ICB_RT_ATOMIC_H
#define ICB_RT_ATOMIC_H

#include "rt/SyncObject.h"

namespace icb::rt {

/// An integral variable whose every access is an atomic synchronization
/// operation under scheduler control.
template <typename T> class Atomic : public SyncObject {
public:
  explicit Atomic(std::string Name = "atomic", T Initial = T())
      : SyncObject("atomic", std::move(Name)), Value(Initial) {}

  /// Atomic read.
  T load() {
    opPoint(OpKind::AtomicAccess, "load");
    return Value;
  }

  /// Atomic write.
  void store(T NewValue) {
    opPoint(OpKind::AtomicAccess, "store");
    Value = NewValue;
  }

  /// Atomic fetch-add; returns the previous value.
  T fetchAdd(T Delta) {
    opPoint(OpKind::AtomicAccess, "fetch_add");
    T Old = Value;
    Value = static_cast<T>(Value + Delta);
    return Old;
  }

  /// Atomic compare-exchange; returns true and installs \p Desired when
  /// the current value equals \p Expected.
  bool compareExchange(T Expected, T Desired) {
    opPoint(OpKind::AtomicAccess, "cas");
    if (Value != Expected)
      return false;
    Value = Desired;
    return true;
  }

  /// Atomic exchange; returns the previous value.
  T exchange(T NewValue) {
    opPoint(OpKind::AtomicAccess, "xchg");
    T Old = Value;
    Value = NewValue;
    return Old;
  }

  /// Unchecked peek for harness code *outside* the controlled execution
  /// or in final-state assertions where no concurrency remains.
  T unsafePeek() const { return Value; }

private:
  T Value;
};

} // namespace icb::rt

#endif // ICB_RT_ATOMIC_H
