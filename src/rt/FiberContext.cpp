//===- rt/FiberContext.cpp - Minimal machine context switching ------------===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//

#include "rt/FiberContext.h"
#include "support/Debug.h"
#include <cstring>

using namespace icb;
using namespace icb::rt;

#if ICB_FIBER_FAST_SWITCH

// The switch saves the SysV callee-saved integer registers (rbx, rbp,
// r12-r15) plus the return address on the current stack, publishes the
// stack pointer, installs the target's, and returns into the target.
// Floating-point registers are caller-saved under SysV and need no
// handling; we never modify mxcsr/x87 control words across switches.
__asm__(
    ".text\n"
    ".align 16\n"
    ".globl icbFiberSwitch\n"
    ".type icbFiberSwitch,@function\n"
    "icbFiberSwitch:\n"
    "  pushq %rbp\n"
    "  pushq %rbx\n"
    "  pushq %r12\n"
    "  pushq %r13\n"
    "  pushq %r14\n"
    "  pushq %r15\n"
    "  movq %rsp, (%rdi)\n" // *SaveSp = rsp
    "  movq %rsi, %rsp\n"   // rsp = LoadSp
    "  popq %r15\n"
    "  popq %r14\n"
    "  popq %r13\n"
    "  popq %r12\n"
    "  popq %rbx\n"
    "  popq %rbp\n"
    "  retq\n"
    ".size icbFiberSwitch,.-icbFiberSwitch\n");

// First activation thunk: the entry function pointer and its argument were
// parked in r12/r13 by makeFiberContext; move them into place and call.
__asm__(
    ".text\n"
    ".align 16\n"
    ".globl icbFiberBegin\n"
    ".type icbFiberBegin,@function\n"
    "icbFiberBegin:\n"
    "  movq %r13, %rdi\n" // Arg
    "  callq *%r12\n"     // Entry(Arg); must never return...
    "  ud2\n"             // ...and traps if it does.
    ".size icbFiberBegin,.-icbFiberBegin\n");

extern "C" void icbFiberBegin();

MachineContext icb::rt::makeFiberContext(void *StackBase, size_t StackSize,
                                         void (*Entry)(void *), void *Arg) {
  ICB_ASSERT(StackSize >= 1024, "fiber stack too small");
  // Highest usable address, 16-byte aligned. Layout (downwards): the
  // return address consumed by icbFiberSwitch's retq, then the six saved
  // register slots it pops (r15 lowest).
  auto Top = reinterpret_cast<uintptr_t>(StackBase) + StackSize;
  Top &= ~static_cast<uintptr_t>(15);
  auto *Slots = reinterpret_cast<uint64_t *>(Top);
  // Slots[-1]: return address -> icbFiberBegin.
  Slots[-1] = reinterpret_cast<uint64_t>(&icbFiberBegin);
  Slots[-2] = 0;                                 // rbp
  Slots[-3] = 0;                                 // rbx
  Slots[-4] = reinterpret_cast<uint64_t>(Entry); // r12
  Slots[-5] = reinterpret_cast<uint64_t>(Arg);   // r13
  Slots[-6] = 0;                                 // r14
  Slots[-7] = 0;                                 // r15
  MachineContext Ctx;
  Ctx.StackPointer = &Slots[-7];
  return Ctx;
}

#else // !ICB_FIBER_FAST_SWITCH

namespace {
struct EntryRecord {
  void (*Entry)(void *);
  void *Arg;
};

// makecontext only passes ints; smuggle the record pointer in two halves.
void trampoline(unsigned Hi, unsigned Lo) {
  auto Ptr = (static_cast<uintptr_t>(Hi) << 32) | static_cast<uintptr_t>(Lo);
  EntryRecord *Rec = reinterpret_cast<EntryRecord *>(Ptr);
  Rec->Entry(Rec->Arg);
}
} // namespace

MachineContext icb::rt::makeFiberContext(void *StackBase, size_t StackSize,
                                         void (*Entry)(void *), void *Arg) {
  // Park the entry record at the bottom of the stack region (the stack
  // grows down from the top and never reaches it).
  auto *Rec = static_cast<EntryRecord *>(StackBase);
  Rec->Entry = Entry;
  Rec->Arg = Arg;
  MachineContext Ctx;
  int Rc = getcontext(&Ctx.Context);
  ICB_ASSERT(Rc == 0, "getcontext failed");
  Ctx.Context.uc_stack.ss_sp = static_cast<char *>(StackBase) + 64;
  Ctx.Context.uc_stack.ss_size = StackSize - 64;
  Ctx.Context.uc_link = nullptr;
  auto Ptr = reinterpret_cast<uintptr_t>(Rec);
  makecontext(&Ctx.Context, reinterpret_cast<void (*)()>(&trampoline), 2,
              static_cast<unsigned>(Ptr >> 32),
              static_cast<unsigned>(Ptr & 0xffffffffu));
  return Ctx;
}

void icb::rt::switchFiberContext(MachineContext &From,
                                 const MachineContext &To) {
  int Rc = swapcontext(&From.Context,
                       const_cast<ucontext_t *>(&To.Context));
  ICB_ASSERT(Rc == 0, "swapcontext failed");
}

#endif
