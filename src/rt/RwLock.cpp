//===- rt/RwLock.cpp - Controlled reader-writer lock -----------------------===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//

#include "rt/RwLock.h"
#include "rt/Scheduler.h"
#include "support/Debug.h"
#include "support/Format.h"

using namespace icb;
using namespace icb::rt;

RwLock::RwLock(std::string Name) : SyncObject("rwlock", std::move(Name)) {}

bool RwLock::canProceed(const PendingOp &Op, ThreadId Tid) const {
  (void)Tid;
  switch (Op.Kind) {
  case OpKind::RwReadLock:
    return Writer == InvalidThread;
  case OpKind::RwWriteLock:
    return Writer == InvalidThread && Readers == 0;
  default:
    return true;
  }
}

void RwLock::lockShared() {
  opPoint(OpKind::RwReadLock, "rdlock");
  ICB_ASSERT(Writer == InvalidThread, "scheduled rdlock under a writer");
  ++Readers;
}

void RwLock::unlockShared() {
  Scheduler *S = Scheduler::current();
  ICB_ASSERT(S, "rwlock unlock outside a controlled execution");
  opPoint(OpKind::RwUnlock, "rdunlock");
  if (Readers == 0)
    S->failExecution(
        RunStatus::AssertFailed,
        strFormat("rwlock '%s': shared unlock without a shared lock",
                  name().c_str()));
  --Readers;
}

void RwLock::lockExclusive() {
  opPoint(OpKind::RwWriteLock, "wrlock");
  ICB_ASSERT(Writer == InvalidThread && Readers == 0,
             "scheduled wrlock on a held rwlock");
  Writer = Scheduler::current()->runningThread();
}

bool RwLock::tryLockShared() {
  // Non-blocking: publish as an unlock-class (never blocks) operation so
  // the scheduler still gets a scheduling point here.
  opPoint(OpKind::RwUnlock, "tryrdlock");
  if (Writer != InvalidThread)
    return false;
  ++Readers;
  return true;
}

bool RwLock::tryLockExclusive() {
  Scheduler *S = Scheduler::current();
  ICB_ASSERT(S, "rwlock tryLockExclusive outside a controlled execution");
  opPoint(OpKind::RwUnlock, "trywrlock");
  if (Writer != InvalidThread || Readers != 0)
    return false;
  Writer = S->runningThread();
  return true;
}

void RwLock::unlockExclusive() {
  Scheduler *S = Scheduler::current();
  ICB_ASSERT(S, "rwlock unlock outside a controlled execution");
  opPoint(OpKind::RwUnlock, "wrunlock");
  if (Writer != S->runningThread())
    S->failExecution(
        RunStatus::AssertFailed,
        strFormat("rwlock '%s': exclusive unlock by a non-owner",
                  name().c_str()));
  Writer = InvalidThread;
}
