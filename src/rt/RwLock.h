//===- rt/RwLock.h - Controlled reader-writer lock --------------*- C++ -*-===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A slim reader-writer lock (Win32 SRWLOCK) under scheduler control: any
/// number of concurrent readers, or one writer. No recursion, no
/// upgrade/downgrade — acquiring twice from the same thread self-blocks
/// (for the writer) or is counted twice (for readers), like the real
/// primitive. Writer-vs-reader fairness is left to the schedule explorer:
/// every admission order is just another schedule.
///
//===----------------------------------------------------------------------===//

#ifndef ICB_RT_RWLOCK_H
#define ICB_RT_RWLOCK_H

#include "rt/SyncObject.h"

namespace icb::rt {

/// Shared/exclusive lock.
class RwLock : public SyncObject {
public:
  explicit RwLock(std::string Name = "rwlock");

  void lockShared();    ///< Blocks while a writer holds the lock.
  void unlockShared();
  void lockExclusive(); ///< Blocks while anyone holds the lock.
  void unlockExclusive();

  /// Non-blocking acquires; return true on success. Still scheduling
  /// points (published as a never-blocking op, like Mutex::tryLock).
  bool tryLockShared();
  bool tryLockExclusive();

  unsigned readerCount() const { return Readers; }
  bool writerHeld() const { return Writer != InvalidThread; }

  bool canProceed(const PendingOp &Op, ThreadId Tid) const override;

private:
  unsigned Readers = 0;
  ThreadId Writer = InvalidThread;
};

} // namespace icb::rt

#endif // ICB_RT_RWLOCK_H
