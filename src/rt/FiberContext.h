//===- rt/FiberContext.h - Minimal machine context switching ---*- C++ -*-===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal cooperative context switch. POSIX ucontext would do the job
/// but swapcontext() saves and restores the signal mask with a syscall on
/// every switch — three orders of magnitude slower than necessary for a
/// scheduler that switches at every synchronization operation of millions
/// of explored executions. On x86-64 we switch with ~10 instructions
/// (save/restore the SysV callee-saved registers and the stack pointer);
/// other architectures fall back to ucontext.
///
//===----------------------------------------------------------------------===//

#ifndef ICB_RT_FIBERCONTEXT_H
#define ICB_RT_FIBERCONTEXT_H

#include <cstddef>
#include <cstdint>

#if defined(__x86_64__)
#define ICB_FIBER_FAST_SWITCH 1
#else
#define ICB_FIBER_FAST_SWITCH 0
#include <ucontext.h>
#endif

namespace icb::rt {

#if ICB_FIBER_FAST_SWITCH

/// Opaque saved machine context: just the stack pointer; everything else
/// lives on the fiber's stack.
struct MachineContext {
  void *StackPointer = nullptr;
};

extern "C" {
/// Saves the callee-saved registers on the current stack, stores the
/// stack pointer to *SaveSp, installs LoadSp, restores registers, returns
/// into the target context. Defined in FiberContext.cpp (assembly).
void icbFiberSwitch(void **SaveSp, void *LoadSp);
}

/// Prepares a fresh context on [StackBase, StackBase+StackSize) that, when
/// first switched to, calls Entry(Arg) on that stack. Entry must never
/// return (it must switch away terminally).
MachineContext makeFiberContext(void *StackBase, size_t StackSize,
                                void (*Entry)(void *), void *Arg);

/// Switches from the current context (saved into From) to To.
inline void switchFiberContext(MachineContext &From,
                               const MachineContext &To) {
  icbFiberSwitch(&From.StackPointer, To.StackPointer);
}

#else // !ICB_FIBER_FAST_SWITCH

struct MachineContext {
  ucontext_t Context;
};

MachineContext makeFiberContext(void *StackBase, size_t StackSize,
                                void (*Entry)(void *), void *Arg);

void switchFiberContext(MachineContext &From, const MachineContext &To);

#endif

} // namespace icb::rt

#endif // ICB_RT_FIBERCONTEXT_H
