//===- rt/Scheduler.h - The controlled CHESS-style scheduler ----*- C++ -*-===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The heart of the stateless checker: a cooperative scheduler that runs a
/// closed multithreaded test (a body function plus the threads it spawns)
/// with every interleaving decision delegated to a SchedulePolicy.
///
/// Protocol: each test thread runs on a fiber. When a thread reaches a
/// synchronization operation it *publishes* the operation (kind + object)
/// and switches to the scheduler. The scheduler computes the enabled set
/// from the published operations — without running anyone — asks the
/// policy to pick, and resumes the chosen fiber, which then performs its
/// operation and runs to its next scheduling point. Data-variable accesses
/// are not scheduling points in the default SyncOnly mode; instead every
/// execution is checked for data races (Section 3.1's sound reduction),
/// with EveryAccess mode available for the ablation experiment.
///
/// The scheduler also maintains, per execution: the annotated schedule
/// (preempting vs nonpreempting switches, Appendix A), the happens-before
/// fingerprint (the stateless coverage metric of Section 4.3), the race
/// detector, and the managed-heap registry for use-after-free detection.
///
//===----------------------------------------------------------------------===//

#ifndef ICB_RT_SCHEDULER_H
#define ICB_RT_SCHEDULER_H

#include "obs/Metrics.h"
#include "race/DynamicPartition.h"
#include "race/RaceDetector.h"
#include "rt/ExecutionResult.h"
#include "rt/Fiber.h"
#include "rt/Ops.h"
#include "rt/SchedulePolicy.h"
#include "trace/Fingerprint.h"
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace icb::rt {

/// Where scheduling points are inserted.
enum class SchedPointMode : uint8_t {
  SyncOnly,    ///< Only at sync operations (plus promoted data variables);
               ///< each execution is race-checked. The sound default.
  EveryAccess, ///< Also before every data access (the unreduced search the
               ///< Section 3.1 ablation compares against).
};

/// Which race detector checks each execution.
enum class DetectorKind : uint8_t {
  VectorClock,
  Goldilocks,
  None, ///< Race checking off (only sensible in EveryAccess mode).
};

/// A closed test: the body runs as thread 0 ("main") and may spawn more
/// threads via rt::Thread.
struct TestCase {
  std::string Name;
  std::function<void()> Body;
};

/// Runs one TestCase execution under full scheduling control.
class Scheduler {
public:
  struct Options {
    SchedPointMode Mode = SchedPointMode::SyncOnly;
    DetectorKind Detector = DetectorKind::VectorClock;
    /// Stop runaway executions (models must terminate; Section 4.1).
    uint64_t MaxSteps = 1u << 20;
    /// Record human-readable per-step text (costly; for trace printing).
    bool CollectStepText = false;
    /// Treat a detected data race as an execution-ending error. When
    /// false the first race is recorded in the result message but the
    /// execution continues (used by the promotion workflow).
    bool StopOnRace = true;
    /// Data variables promoted to synchronization variables (owned by the
    /// caller; persists across executions). May be null.
    race::DynamicPartition *Partition = nullptr;
  };

  explicit Scheduler(Options Opts);
  ~Scheduler();

  Scheduler(const Scheduler &) = delete;
  Scheduler &operator=(const Scheduler &) = delete;

  /// Runs one complete controlled execution of \p Test.
  ExecutionResult run(const TestCase &Test, SchedulePolicy &Policy);

  /// The scheduler controlling the currently running fiber. Non-null only
  /// while run() is live; primitives assert on it.
  static Scheduler *current();

  // --- Called by the runtime primitives (from inside fibers) --------------

  /// Publishes \p Op, parks the calling thread, and returns once the
  /// scheduler picks it again (its operation is then guaranteed enabled).
  void schedulingPoint(PendingOp Op);

  /// Records a data access that is not a scheduling point; may fail the
  /// execution with a DataRace.
  void dataAccess(uint64_t VarCode, bool IsWrite, const char *What);

  /// Routes a data access according to mode/promotion: scheduling point in
  /// EveryAccess mode or for promoted variables, plain record otherwise.
  void sharedAccess(uint64_t VarCode, bool IsWrite, const char *What);

  /// Registers a new test thread; returns its id. Must be called from a
  /// running test thread (usually via rt::Thread).
  ThreadId spawnThread(std::function<void()> Fn, std::string Name);

  /// Blocks the caller until \p Target terminates.
  void joinThread(ThreadId Target);

  /// Ends the execution with an error (assertion failure, UAF, ...).
  /// Does not return.
  [[noreturn]] void failExecution(RunStatus Status, std::string Message);

  /// Explicit yield: a scheduling point where switching away is free.
  void yieldThread();

  /// Id and name of the thread currently executing.
  ThreadId runningThread() const { return Running; }
  const std::string &threadName(ThreadId Tid) const;

  /// The operation thread \p Tid is parked at (published at its last
  /// scheduling point). Policies use it to judge independence between a
  /// chosen step and a parked thread's next step (bounded POR); only
  /// meaningful for live threads.
  const PendingOp &pendingOp(ThreadId Tid) const;

  /// Fresh per-execution identity for a variable created by the running
  /// thread. Stable across interleavings: (creator, per-creator sequence).
  uint64_t allocateVarCode();

  /// Managed-heap hooks (see rt/Managed.h).
  uint32_t registerManaged(void *Mem, std::function<void()> Destructor,
                           const char *TypeName);
  void destroyManaged(uint32_t Slot, const char *What);
  bool isManagedAlive(uint32_t Slot) const;
  /// Fails the execution if \p Slot is dead.
  void checkManagedAccess(uint32_t Slot, const char *What);

  /// True while tearing down an execution (sync-object destructors called
  /// from cleanup must not report bugs).
  bool inTeardown() const { return Teardown; }

  const Options &options() const { return Opts; }

  /// Observability: per-step fingerprint (hash) and race-detector work is
  /// timed into \p MS (see obs/PhaseTimer.h). Null (the default) disables
  /// the timers; ReplayExecutor points this at its worker's shard once per
  /// chain. The shard outlives the run() it is installed for.
  void setMetricShard(obs::MetricShard *MS) { MShard = MS; }

  /// The shard installed by the executor (null when metrics are detached).
  /// The io model counts its deterministic io_block/io_wake/io_spurious
  /// events here without owning any registry plumbing of its own.
  obs::MetricShard *metricShard() const { return MShard; }

private:
  struct ThreadRecord;

  bool isEnabled(const ThreadRecord &T) const;
  std::vector<ThreadId> enabledThreads() const;
  /// Runs the scheduling loop to completion; fills Result.
  void scheduleLoop(SchedulePolicy &Policy);
  /// Records the step about to run for thread \p Tid (schedule entry, HB
  /// fingerprint, race detector).
  void recordStep(ThreadId Tid, bool Switch, bool Preempt);
  /// Appends the current fingerprint digest to the visited-state
  /// trajectory (called after every fingerprint-changing event).
  void noteVisitedState();
  void teardown();

  Options Opts;
  MachineContext SchedulerContext;

  std::vector<std::unique_ptr<ThreadRecord>> Threads;
  ThreadId Running = InvalidThread;
  ThreadId LastScheduled = InvalidThread;
  bool LastYielded = false;

  std::unique_ptr<race::RaceDetector> Detector;
  std::unique_ptr<trace::FingerprintBuilder> Fingerprint;

  struct ManagedSlot {
    void *Mem = nullptr;
    std::function<void()> Destructor;
    const char *TypeName = "";
    bool Alive = false;
  };
  std::vector<ManagedSlot> Managed;

  ExecutionResult Result;
  bool ExecutionOver = false;
  bool Teardown = false;
  obs::MetricShard *MShard = nullptr;

  /// Upper bound on threads per execution (fingerprint width).
  static constexpr unsigned MaxThreads = 32;
};

/// Asserts a condition inside test code; failure ends the execution as an
/// AssertFailed bug with \p Message.
void testAssert(bool Condition, const char *Message);

} // namespace icb::rt

#endif // ICB_RT_SCHEDULER_H
