//===- rt/SyncObject.cpp - Base of controlled sync primitives -------------===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//

#include "rt/SyncObject.h"
#include "rt/Scheduler.h"
#include "support/Debug.h"
#include "support/Format.h"

using namespace icb;
using namespace icb::rt;

SyncObject::SyncObject(const char *Kind, std::string Name)
    : Kind(Kind), Name(std::move(Name)) {
  Scheduler *S = Scheduler::current();
  ICB_ASSERT(S, "sync objects must be created inside a controlled test");
  VarCode = S->allocateVarCode();
  if (Scheduler::current()->options().Partition)
    Scheduler::current()->options().Partition->registerSync(VarCode);
}

SyncObject::~SyncObject() {
  Cookie = DeadCookie;
  // Destroying a sync object while some thread is parked on it is a bug in
  // the program under test (the blocked thread would touch freed memory).
  Scheduler *S = Scheduler::current();
  if (!S || S->inTeardown())
    return;
  // The scan happens via the scheduler so the pending-op pointers are
  // still valid here (we are inside the destructor; memory lives).
}

void SyncObject::checkAlive(const char *OpName) const {
  if (Cookie == AliveCookie)
    return;
  Scheduler *S = Scheduler::current();
  ICB_ASSERT(S, "sync op outside a controlled execution");
  S->failExecution(
      RunStatus::UseAfterFree,
      strFormat("use-after-free: %s on destroyed %s '%s'", OpName, Kind,
                Name.c_str()));
}

bool SyncObject::canProceed(const PendingOp &Op, ThreadId Tid) const {
  (void)Op;
  (void)Tid;
  return true;
}

void SyncObject::opPoint(OpKind K, const char *OpName) {
  Scheduler *S = Scheduler::current();
  ICB_ASSERT(S, "sync op outside a controlled execution");
  checkAlive(OpName);
  PendingOp Op;
  Op.Kind = K;
  Op.Object = this;
  Op.VarCode = VarCode;
  Op.Detail = strFormat("%s %s", OpName, Name.c_str());
  S->schedulingPoint(std::move(Op));
  // The object may have been destroyed while we were parked (the Dryad
  // channel bug does exactly this): re-check before mutating state.
  checkAlive(OpName);
}
