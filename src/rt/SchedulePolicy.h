//===- rt/SchedulePolicy.h - Pluggable scheduling decisions -----*- C++ -*-===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The scheduler consults a SchedulePolicy at every scheduling point; the
/// stateless explorers (ICB work-queue, DFS backtracking, depth-bounded,
/// random) are implemented entirely as policies plus driver loops — the
/// scheduler itself knows nothing about search.
///
//===----------------------------------------------------------------------===//

#ifndef ICB_RT_SCHEDULEPOLICY_H
#define ICB_RT_SCHEDULEPOLICY_H

#include "rt/Ops.h"
#include <vector>

namespace icb::rt {

class Scheduler;

/// Everything a policy may inspect at one scheduling point.
struct SchedPoint {
  /// Enabled threads in ascending id order; never empty when pick() runs.
  const std::vector<ThreadId> &Enabled;
  /// Thread that executed the previous step (InvalidThread at the first).
  ThreadId Last = InvalidThread;
  /// True if Last is in Enabled: switching away would preempt it...
  bool LastEnabled = false;
  /// ...unless it volunteered (explicit yield): then switching is free.
  bool LastYielded = false;
  /// Index of this scheduling point (= steps executed so far).
  uint64_t Index = 0;
  /// The scheduler running the execution, for policies that need more
  /// than the enabled set — e.g. the bounded-POR policy reads parked
  /// threads' pending operations (Scheduler::pendingOp) to decide
  /// independence. Never null when pick() runs.
  const Scheduler *Sched = nullptr;
};

/// Scheduling decisions for one execution. A fresh policy instance (or a
/// reset one) observes each execution from its first point.
class SchedulePolicy {
public:
  virtual ~SchedulePolicy();

  /// Sentinel return value: stop the execution here (depth bounding).
  static constexpr ThreadId AbortExecution = InvalidThread;

  /// Picks a thread from Point.Enabled, or returns AbortExecution.
  virtual ThreadId pick(const SchedPoint &Point) = 0;
};

/// Runs the previous thread for as long as it stays enabled, switching to
/// the lowest-id enabled thread otherwise: the canonical nonpreemptive
/// round-robin completion the paper uses to argue bound-0 executions reach
/// terminal states. Also the building block of replay continuation.
class NonPreemptivePolicy : public SchedulePolicy {
public:
  ThreadId pick(const SchedPoint &Point) override;
};

} // namespace icb::rt

#endif // ICB_RT_SCHEDULEPOLICY_H
