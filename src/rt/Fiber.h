//===- rt/Fiber.h - Cooperative fibers for the scheduler --------*- C++ -*-===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cooperative fibers. The CHESS-style runtime runs every test thread as a
/// fiber so that exactly one thread executes at a time and control returns
/// to the scheduler at every scheduling point — the paper's serialized,
/// fully controlled scheduler, with deterministic replay for free.
///
/// Stateless exploration re-executes the test millions of times, so fiber
/// creation and switching are on the critical path: stacks are pooled
/// across executions and switches use the minimal machine context
/// (FiberContext.h) rather than ucontext's syscall-per-switch.
///
//===----------------------------------------------------------------------===//

#ifndef ICB_RT_FIBER_H
#define ICB_RT_FIBER_H

#include "rt/FiberContext.h"
#include <functional>

namespace icb::rt {

/// One cooperative fiber with its own (pooled) stack. The entry function
/// runs when the fiber is first resumed; when it returns, control
/// transfers back to the context that last resumed the fiber.
class Fiber {
public:
  explicit Fiber(std::function<void()> Entry,
                 size_t StackSize = DefaultStackSize);
  ~Fiber();

  Fiber(const Fiber &) = delete;
  Fiber &operator=(const Fiber &) = delete;

  /// Transfers control into this fiber, saving the caller into \p From.
  /// Returns when the fiber switches back to \p From (or finishes).
  void resume(MachineContext &From);

  /// Switches from this fiber back to \p To. Must be called on the fiber.
  void yieldTo(MachineContext &To);

  /// True once the entry function has returned.
  bool finished() const { return Finished; }

  static constexpr size_t DefaultStackSize = 128 * 1024;

private:
  static void trampoline(void *Self);

  std::function<void()> Entry;
  char *Stack = nullptr;
  size_t StackSize = 0;
  MachineContext Context;
  MachineContext *ReturnTo = nullptr;
  bool Finished = false;
};

} // namespace icb::rt

#endif // ICB_RT_FIBER_H
