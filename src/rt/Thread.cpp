//===- rt/Thread.cpp - Controlled thread handles ---------------------------===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//

#include "rt/Thread.h"
#include "rt/Scheduler.h"
#include "support/Debug.h"

using namespace icb;
using namespace icb::rt;

Thread::Thread(std::function<void()> Fn, std::string Name) {
  Scheduler *S = Scheduler::current();
  ICB_ASSERT(S, "threads must be created inside a controlled test");
  Id = S->spawnThread(std::move(Fn), std::move(Name));
}

void Thread::join() {
  if (Joined)
    return;
  Scheduler *S = Scheduler::current();
  ICB_ASSERT(S, "join outside a controlled execution");
  S->joinThread(Id);
  Joined = true;
}
