//===- rt/Sync.cpp - Controlled Mutex, Event, Semaphore -------------------===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//

#include "rt/Sync.h"
#include "rt/Scheduler.h"
#include "support/Debug.h"
#include "support/Format.h"

using namespace icb;
using namespace icb::rt;

//===----------------------------------------------------------------------===//
// Mutex
//===----------------------------------------------------------------------===//

Mutex::Mutex(std::string Name) : SyncObject("mutex", std::move(Name)) {}

bool Mutex::canProceed(const PendingOp &Op, ThreadId Tid) const {
  if (Op.Kind != OpKind::MutexLock)
    return true;
  // A held lock blocks everyone, including its owner (self-deadlock shows
  // up as a deadlock report, matching non-recursive critical sections).
  (void)Tid;
  return Owner == InvalidThread;
}

void Mutex::lock() {
  opPoint(OpKind::MutexLock, "lock");
  ICB_ASSERT(Owner == InvalidThread, "scheduled lock() on a held mutex");
  Owner = Scheduler::current()->runningThread();
}

void Mutex::unlock() {
  Scheduler *S = Scheduler::current();
  ICB_ASSERT(S, "unlock outside a controlled execution");
  opPoint(OpKind::MutexUnlock, "unlock");
  if (Owner != S->runningThread())
    S->failExecution(
        RunStatus::AssertFailed,
        strFormat("unlock of mutex '%s' not held by the calling thread",
                  name().c_str()));
  Owner = InvalidThread;
}

bool Mutex::tryLock() {
  Scheduler *S = Scheduler::current();
  ICB_ASSERT(S, "tryLock outside a controlled execution");
  // Non-blocking: publish as an unlock-class (never blocks) operation so
  // the scheduler still gets a scheduling point here.
  opPoint(OpKind::MutexUnlock, "trylock");
  if (Owner != InvalidThread)
    return false;
  Owner = S->runningThread();
  return true;
}

bool Mutex::timedLock() {
  Scheduler *S = Scheduler::current();
  ICB_ASSERT(S, "timedLock outside a controlled execution");
  // MutexTimedLock is not a blocking kind: the thread stays enabled, and
  // the schedule decides the outcome — scheduled while free acquires,
  // scheduled while held times out. No clock is consulted, so replay and
  // --jobs determinism are untouched.
  opPoint(OpKind::MutexTimedLock, "timedlock");
  if (Owner != InvalidThread)
    return false;
  Owner = S->runningThread();
  return true;
}

//===----------------------------------------------------------------------===//
// Event
//===----------------------------------------------------------------------===//

Event::Event(std::string Name, bool ManualReset, bool InitiallySet)
    : SyncObject("event", std::move(Name)), ManualReset(ManualReset),
      Signaled(InitiallySet) {}

bool Event::canProceed(const PendingOp &Op, ThreadId Tid) const {
  (void)Tid;
  if (Op.Kind != OpKind::EventWait)
    return true;
  return Signaled;
}

void Event::wait() {
  opPoint(OpKind::EventWait, "wait");
  ICB_ASSERT(Signaled, "scheduled wait() on an unsignaled event");
  if (!ManualReset)
    Signaled = false;
}

void Event::set() {
  opPoint(OpKind::EventSet, "set");
  Signaled = true;
}

void Event::reset() {
  opPoint(OpKind::EventReset, "reset");
  Signaled = false;
}

//===----------------------------------------------------------------------===//
// Semaphore
//===----------------------------------------------------------------------===//

Semaphore::Semaphore(std::string Name, int InitialCount)
    : SyncObject("semaphore", std::move(Name)), Count(InitialCount) {
  ICB_ASSERT(InitialCount >= 0, "negative initial semaphore count");
}

bool Semaphore::canProceed(const PendingOp &Op, ThreadId Tid) const {
  (void)Tid;
  if (Op.Kind != OpKind::SemAcquire)
    return true;
  return Count > 0;
}

void Semaphore::acquire() {
  opPoint(OpKind::SemAcquire, "acquire");
  ICB_ASSERT(Count > 0, "scheduled acquire() on an empty semaphore");
  --Count;
}

void Semaphore::release() {
  opPoint(OpKind::SemRelease, "release");
  ++Count;
}

bool Semaphore::tryAcquire() {
  // Non-blocking: publish as a release-class (never blocks) operation so
  // the scheduler still gets a scheduling point here.
  opPoint(OpKind::SemRelease, "tryacquire");
  if (Count <= 0)
    return false;
  --Count;
  return true;
}

bool Semaphore::timedAcquire() {
  // Always enabled (see Mutex::timedLock): being scheduled at count zero
  // is the modeled expiry branch.
  opPoint(OpKind::SemTimedAcquire, "timedacquire");
  if (Count <= 0)
    return false;
  --Count;
  return true;
}

//===----------------------------------------------------------------------===//
// yield
//===----------------------------------------------------------------------===//

void icb::rt::yield() {
  Scheduler *S = Scheduler::current();
  ICB_ASSERT(S, "yield outside a controlled execution");
  S->yieldThread();
}
