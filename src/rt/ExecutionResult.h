//===- rt/ExecutionResult.h - Outcome of one controlled run -----*- C++ -*-===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//

#ifndef ICB_RT_EXECUTIONRESULT_H
#define ICB_RT_EXECUTIONRESULT_H

#include "rt/Ops.h"
#include "trace/Schedule.h"
#include <string>
#include <vector>

namespace icb::rt {

/// Everything the explorers need to know about one finished execution.
struct ExecutionResult {
  RunStatus Status = RunStatus::Terminated;
  std::string Message; ///< Failure detail when Status is an error.

  /// The complete annotated schedule (replayable).
  trace::Schedule Sched;
  /// Happens-before fingerprint of the complete execution: the paper's
  /// stateless stand-in for the final state.
  uint64_t Fingerprint = 0;
  /// Fingerprint after every step: the trajectory of visited states. The
  /// coverage experiments count distinct entries across executions
  /// ("number of distinct visited states", Section 2.1).
  std::vector<uint64_t> StepFingerprints;
  /// Steps (scheduling points) executed — the K of Table 1.
  uint64_t Steps = 0;
  /// Potentially-blocking operations executed — the B of Table 1.
  uint64_t BlockingOps = 0;
  /// Preempting context switches — the c of Table 1.
  unsigned Preemptions = 0;
  unsigned ContextSwitches = 0;
  /// Threads that existed during the execution.
  unsigned ThreadsUsed = 0;
  /// Per-step human-readable descriptions (filled only when the scheduler
  /// option CollectStepText is on; used for counterexample printing).
  std::vector<std::string> StepText;
  std::vector<std::string> StepThreadNames;
};

} // namespace icb::rt

#endif // ICB_RT_EXECUTIONRESULT_H
