//===- rt/Sync.h - Controlled Mutex, Event, Semaphore -----------*- C++ -*-===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The intercepted synchronization primitives of the CHESS-style runtime,
/// mirroring the Win32 objects the paper's benchmarks use: critical
/// sections (Mutex), auto/manual-reset events, and counting semaphores.
/// Every operation is a scheduling point; blocking operations publish
/// their wait so the scheduler can compute enabledness without running
/// the thread.
///
//===----------------------------------------------------------------------===//

#ifndef ICB_RT_SYNC_H
#define ICB_RT_SYNC_H

#include "rt/SyncObject.h"

namespace icb::rt {

/// A non-recursive mutual-exclusion lock (Win32 CRITICAL_SECTION).
/// Re-acquiring a held lock self-deadlocks, exactly like a slim Win32
/// critical section without the recursion count.
class Mutex : public SyncObject {
public:
  explicit Mutex(std::string Name = "mutex");

  void lock();
  void unlock();

  /// Non-blocking acquire; returns true on success. Still a scheduling
  /// point (TryEnterCriticalSection is an interception point in CHESS).
  bool tryLock();

  /// Timed acquire with a modeled (clock-free) timeout: the thread stays
  /// enabled while parked, and being scheduled while the mutex is still
  /// held IS the expiry branch — returns false (pthread_mutex_timedlock's
  /// ETIMEDOUT). Both outcomes are explored like CondVar::timedWait.
  bool timedLock();

  bool heldBy(ThreadId Tid) const { return Owner == Tid; }
  bool held() const { return Owner != InvalidThread; }

  bool canProceed(const PendingOp &Op, ThreadId Tid) const override;

private:
  ThreadId Owner = InvalidThread;
};

/// Win32-style event: threads wait until it is signaled. An auto-reset
/// event releases exactly one waiter and clears; a manual-reset event
/// stays signaled until reset.
class Event : public SyncObject {
public:
  explicit Event(std::string Name = "event", bool ManualReset = false,
                 bool InitiallySet = false);

  void wait();
  void set();
  void reset();

  bool isSet() const { return Signaled; }

  bool canProceed(const PendingOp &Op, ThreadId Tid) const override;

private:
  bool ManualReset;
  bool Signaled;
};

/// A counting semaphore.
class Semaphore : public SyncObject {
public:
  explicit Semaphore(std::string Name = "semaphore", int InitialCount = 0);

  void acquire(); ///< P: blocks until the count is positive.
  void release(); ///< V.

  /// Non-blocking P; returns true on success. Still a scheduling point.
  bool tryAcquire();

  /// Timed P with a modeled timeout: always enabled while parked; being
  /// scheduled at count zero is the expiry branch (sem_timedwait's
  /// ETIMEDOUT). Returns true iff the count was decremented.
  bool timedAcquire();

  int count() const { return Count; }

  bool canProceed(const PendingOp &Op, ThreadId Tid) const override;

private:
  int Count;
};

/// Alias matching the Win32 vocabulary the paper's benchmarks use.
using CriticalSection = Mutex;

/// Voluntary yield (Sleep(0)): a scheduling point at which switching away
/// is a nonpreempting context switch.
void yield();

} // namespace icb::rt

#endif // ICB_RT_SYNC_H
