//===- rt/SyncObject.h - Base of controlled sync primitives -----*- C++ -*-===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Base class of every synchronization variable the runtime intercepts
/// (mutexes, events, semaphores, atomics). Each instance:
///
///   * registers a stable per-execution variable code with the scheduler
///     (its identity in schedules, happens-before, and the data/sync
///     partition);
///   * answers `canProceed` so the scheduler can compute enabledness
///     without running the blocked thread;
///   * carries a liveness cookie so operations on a destroyed object are
///     reported as use-after-free rather than corrupting the checker (the
///     Dryad Figure 3 bug class).
///
//===----------------------------------------------------------------------===//

#ifndef ICB_RT_SYNCOBJECT_H
#define ICB_RT_SYNCOBJECT_H

#include "rt/Ops.h"
#include <string>

namespace icb::rt {

/// A synchronization variable under scheduler control.
class SyncObject {
public:
  SyncObject(const char *Kind, std::string Name);
  virtual ~SyncObject();

  SyncObject(const SyncObject &) = delete;
  SyncObject &operator=(const SyncObject &) = delete;

  uint64_t varCode() const { return VarCode; }
  const std::string &name() const { return Name; }
  const char *kind() const { return Kind; }

  /// True if \p Op (published by thread \p Tid) can execute now.
  virtual bool canProceed(const PendingOp &Op, ThreadId Tid) const;

  /// Fails the execution if this object has been destroyed. Called at the
  /// top of every operation.
  void checkAlive(const char *OpName) const;

  /// True until the destructor has run. The scheduler polls this for every
  /// parked thread: a thread waiting on a destroyed object is a
  /// use-after-free in the program under test.
  bool alive() const { return Cookie == AliveCookie; }

protected:
  /// Publishes \p OpKind on this object and parks until it is enabled.
  void opPoint(OpKind K, const char *OpName);

private:
  static constexpr uint32_t AliveCookie = 0xA11FEu;
  static constexpr uint32_t DeadCookie = 0xDEAD0BADu;

  const char *Kind;
  std::string Name;
  uint64_t VarCode = 0;
  uint32_t Cookie = AliveCookie;
};

} // namespace icb::rt

#endif // ICB_RT_SYNCOBJECT_H
