//===- rt/Explore.h - Stateless exploration of runtime tests ----*- C++ -*-===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The stateless (CHESS-side) explorers. CHESS caches no states: a work
/// item of the ICB algorithm carries a schedule *prefix* instead of a
/// state, and "Execute(w.tid)" replays the prefix deterministically before
/// continuing. Coverage is counted in distinct happens-before fingerprints
/// (Section 4.3's state representation for stateless checking).
///
/// Results, bugs, limits, and statistics are the shared search vocabulary
/// (search/SearchTypes.h) — one Bug type, one stats block, one limit
/// struct across both engines. The historical rt names remain as aliases.
///
/// Explorers: IcbExplorer (the shared Algorithm 1 engine of
/// search/IcbEngine.h driving an rt::ReplayExecutor — sequential or, with
/// Jobs != 1, work-stealing parallel), DfsExplorer (Verisoft-style
/// backtracking, optionally depth-bounded — "db:N"), RandomExplorer
/// (uniform random walk).
///
//===----------------------------------------------------------------------===//

#ifndef ICB_RT_EXPLORE_H
#define ICB_RT_EXPLORE_H

#include "rt/ExecutionResult.h"
#include "rt/Scheduler.h"
#include "search/BoundPolicy.h"
#include "search/EngineObserver.h"
#include "search/SearchTypes.h"
#include <string>
#include <vector>

namespace icb::rt {

/// A bug found by exploration, with its minimal-known exposure. Shared
/// with the model-VM engine; runtime bugs carry the annotated replayable
/// schedule in Bug::Sched.
using RtBug = search::Bug;

/// Exploration limits (shared with the model-VM engine).
using ExploreLimits = search::SearchLimits;

/// One sample of the fingerprints-vs-executions coverage curve.
using CoveragePoint = search::CoveragePoint;

/// Coverage at the completion of one preemption bound (ICB only).
using BoundCoverage = search::BoundCoverage;

/// Aggregate exploration statistics (Table 1 columns and figure curves).
using ExploreStats = search::SearchStats;

/// Everything an explorer returns.
using ExploreResult = search::SearchResult;

/// Common options for all explorers.
struct ExploreOptions {
  Scheduler::Options Exec;
  ExploreLimits Limits = defaultLimits();
  /// ICB only: worker threads draining each preemption bound. 1 runs the
  /// sequential engine on the calling thread; 0 picks the hardware
  /// concurrency. Each worker owns its own Scheduler (and fiber stacks).
  unsigned Jobs = 1;
  /// ICB only: shards in the concurrent fingerprint caches when Jobs != 1
  /// (0 = auto).
  unsigned Shards = 0;
  /// ICB only: bounded POR — sleep sets composed with the preemption
  /// bound (rt::IcbPolicy). Prunes same-bound siblings covered by
  /// independence without changing which bugs exist at which minimal
  /// bounds; sleep sets travel inside work items, so Jobs does not affect
  /// results.
  bool Por = false;
  /// ICB only: the bound policy (see search/BoundPolicy.h). Null =
  /// preemption bounding at Limits.MaxPreemptionBound. Must outlive the
  /// run.
  const search::BoundPolicy *Policy = nullptr;
  /// ICB only: session hooks and resume snapshot (see EngineObserver.h).
  search::EngineObserver *Observer = nullptr;
  const search::EngineSnapshot *Resume = nullptr;
  /// Observability registry (see obs/Metrics.h), honoured by every
  /// explorer. The ICB engine shards it per worker; the sequential
  /// explorers (dfs, db:N, idfs, random) record into a single shard:
  /// cache probes, chains, per-bound executions, and the Execute /
  /// Hash / RaceDetect phase timers.
  obs::MetricsRegistry *Metrics = nullptr;
  /// ICB only: distributed lease participation (see search::LeaseMode).
  /// Roots leases always run the sequential engine regardless of Jobs.
  search::LeaseMode Lease = search::LeaseMode::Off;

  /// The runtime's historical safety nets: exploration stops after 2^20
  /// executions (the fiber runtime cannot enumerate forever on the larger
  /// benchmarks) and the preemption bound is effectively unbounded.
  static ExploreLimits defaultLimits() {
    ExploreLimits L;
    L.MaxExecutions = 1u << 20;
    L.MaxPreemptionBound = 1u << 20;
    return L;
  }
};

/// A stateless explorer of one TestCase's schedule space.
class Explorer {
public:
  virtual ~Explorer();
  virtual ExploreResult explore(const TestCase &Test) = 0;
  virtual std::string name() const = 0;
};

/// Iterative context bounding, stateless: the shared Algorithm 1 engine
/// (search/IcbEngine.h) driving a ReplayExecutor per worker. Executions
/// are enumerated in nondecreasing preemption order; every execution
/// processed at bound c has exactly c preemptions (asserted internally).
/// Bug reports are canonical (minimal exposure, sorted by kind and
/// message), so a Jobs=1 run and a Jobs=N run produce identical output.
class IcbExplorer final : public Explorer {
public:
  explicit IcbExplorer(ExploreOptions Opts) : Opts(Opts) {}
  ExploreResult explore(const TestCase &Test) override;
  std::string name() const override { return "icb"; }

private:
  ExploreOptions Opts;
};

/// Stateless depth-first search via backtracking and replay; DepthBound 0
/// is the unbounded "dfs" baseline, a nonzero bound is "db:N".
class DfsExplorer final : public Explorer {
public:
  DfsExplorer(ExploreOptions Opts, unsigned DepthBound = 0)
      : Opts(Opts), DepthBound(DepthBound) {}
  ExploreResult explore(const TestCase &Test) override;
  std::string name() const override;

private:
  ExploreOptions Opts;
  unsigned DepthBound;
};

/// Iterative depth-bounding over the stateless DFS ("idfs-N"): rounds at
/// depth N, 2N, 3N, ... accumulate into one coverage curve.
class IdfsExplorer final : public Explorer {
public:
  IdfsExplorer(ExploreOptions Opts, unsigned InitialBound, unsigned Increment)
      : Opts(Opts), InitialBound(InitialBound), Increment(Increment) {}
  ExploreResult explore(const TestCase &Test) override;
  std::string name() const override;

private:
  ExploreOptions Opts;
  unsigned InitialBound;
  unsigned Increment;
};

/// Random scheduling, seeded and reproducible. Two flavours:
///   * uniform — a fresh uniform choice among enabled threads at every
///     scheduling point (the random-walk search of Sivaraj &
///     Gopalakrishnan);
///   * stress-like slices — run the current thread for a geometrically
///     distributed time slice before switching, approximating what
///     stress testing's OS scheduler does (few, coarse preemptions).
class RandomExplorer final : public Explorer {
public:
  RandomExplorer(ExploreOptions Opts, uint64_t Seed, uint64_t Executions,
                 bool StressSlices = false, unsigned MeanSlice = 8)
      : Opts(Opts), Seed(Seed), Executions(Executions),
        StressSlices(StressSlices), MeanSlice(MeanSlice) {}
  ExploreResult explore(const TestCase &Test) override;
  std::string name() const override {
    return StressSlices ? "random-slice" : "random";
  }

private:
  ExploreOptions Opts;
  uint64_t Seed;
  uint64_t Executions;
  bool StressSlices;
  unsigned MeanSlice;
};

/// Replays \p Sched against \p Test (nonpreemptive continuation past the
/// end) and returns the result; used to render bug traces with step text.
ExecutionResult replaySchedule(const TestCase &Test,
                               const trace::Schedule &Sched,
                               Scheduler::Options ExecOpts);

/// Renders a bug as a full counterexample trace by replaying its schedule
/// with step text collection enabled.
std::string renderBugTrace(const TestCase &Test, const RtBug &Bug,
                           Scheduler::Options ExecOpts);

} // namespace icb::rt

#endif // ICB_RT_EXPLORE_H
