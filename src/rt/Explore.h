//===- rt/Explore.h - Stateless exploration of runtime tests ----*- C++ -*-===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The stateless (CHESS-side) explorers. CHESS caches no states: a work
/// item of the ICB algorithm carries a schedule *prefix* instead of a
/// state, and "Execute(w.tid)" replays the prefix deterministically before
/// continuing. Coverage is counted in distinct happens-before fingerprints
/// (Section 4.3's state representation for stateless checking).
///
/// Explorers: IcbExplorer (Algorithm 1 over prefixes), DfsExplorer
/// (Verisoft-style backtracking, optionally depth-bounded — "db:N"),
/// RandomExplorer (uniform random walk).
///
//===----------------------------------------------------------------------===//

#ifndef ICB_RT_EXPLORE_H
#define ICB_RT_EXPLORE_H

#include "rt/ExecutionResult.h"
#include "rt/Scheduler.h"
#include "support/Stats.h"
#include <map>
#include <string>
#include <vector>

namespace icb::rt {

/// A bug found by exploration, with its minimal-known exposure.
struct RtBug {
  RunStatus Kind = RunStatus::AssertFailed;
  std::string Message;
  unsigned Preemptions = 0;
  unsigned ContextSwitches = 0;
  uint64_t Steps = 0;
  trace::Schedule Sched;

  std::string str() const;
};

/// Exploration limits.
struct ExploreLimits {
  uint64_t MaxExecutions = 1u << 20;
  unsigned MaxPreemptionBound = 1u << 20; ///< ICB only.
  bool StopAtFirstBug = false;
};

/// One sample of the fingerprints-vs-executions coverage curve.
struct CoveragePoint {
  uint64_t Executions = 0;
  uint64_t States = 0;
};

/// Coverage at the completion of one preemption bound (ICB only).
struct BoundCoverage {
  unsigned Bound = 0;
  uint64_t States = 0;
  uint64_t Executions = 0;
};

/// Aggregate exploration statistics (Table 1 columns and figure curves).
struct ExploreStats {
  uint64_t Executions = 0;
  uint64_t TotalSteps = 0;
  /// Distinct visited states: distinct happens-before fingerprints over
  /// every execution prefix (the paper's coverage metric).
  uint64_t DistinctStates = 0;
  /// Distinct fingerprints of complete executions (equivalence classes of
  /// terminal states).
  uint64_t DistinctTerminalStates = 0;
  MinMax StepsPerExecution;        ///< K.
  MinMax BlockingPerExecution;     ///< B.
  MinMax PreemptionsPerExecution;  ///< c.
  MinMax ThreadsPerExecution;
  /// Executions per preemption count (equal for ICB and uncached DFS on
  /// the same test; cross-validated by the test suite).
  Histogram PreemptionHistogram;
  std::vector<CoveragePoint> Coverage;
  std::vector<BoundCoverage> PerBound;
  bool Completed = false;
};

struct ExploreResult {
  ExploreStats Stats;
  std::vector<RtBug> Bugs;

  bool foundBug() const { return !Bugs.empty(); }
  const RtBug *simplestBug() const;
};

/// Common options for all explorers.
struct ExploreOptions {
  Scheduler::Options Exec;
  ExploreLimits Limits;
};

/// A stateless explorer of one TestCase's schedule space.
class Explorer {
public:
  virtual ~Explorer();
  virtual ExploreResult explore(const TestCase &Test) = 0;
  virtual std::string name() const = 0;
};

/// Iterative context bounding, stateless (Algorithm 1 with schedule-prefix
/// work items). Executions are enumerated in nondecreasing preemption
/// order; every execution processed at bound c has exactly c preemptions
/// (asserted internally).
class IcbExplorer final : public Explorer {
public:
  explicit IcbExplorer(ExploreOptions Opts) : Opts(Opts) {}
  ExploreResult explore(const TestCase &Test) override;
  std::string name() const override { return "icb"; }

private:
  ExploreOptions Opts;
};

/// Stateless depth-first search via backtracking and replay; DepthBound 0
/// is the unbounded "dfs" baseline, a nonzero bound is "db:N".
class DfsExplorer final : public Explorer {
public:
  DfsExplorer(ExploreOptions Opts, unsigned DepthBound = 0)
      : Opts(Opts), DepthBound(DepthBound) {}
  ExploreResult explore(const TestCase &Test) override;
  std::string name() const override;

private:
  ExploreOptions Opts;
  unsigned DepthBound;
};

/// Iterative depth-bounding over the stateless DFS ("idfs-N"): rounds at
/// depth N, 2N, 3N, ... accumulate into one coverage curve.
class IdfsExplorer final : public Explorer {
public:
  IdfsExplorer(ExploreOptions Opts, unsigned InitialBound, unsigned Increment)
      : Opts(Opts), InitialBound(InitialBound), Increment(Increment) {}
  ExploreResult explore(const TestCase &Test) override;
  std::string name() const override;

private:
  ExploreOptions Opts;
  unsigned InitialBound;
  unsigned Increment;
};

/// Random scheduling, seeded and reproducible. Two flavours:
///   * uniform — a fresh uniform choice among enabled threads at every
///     scheduling point (the random-walk search of Sivaraj &
///     Gopalakrishnan);
///   * stress-like slices — run the current thread for a geometrically
///     distributed time slice before switching, approximating what
///     stress testing's OS scheduler does (few, coarse preemptions).
class RandomExplorer final : public Explorer {
public:
  RandomExplorer(ExploreOptions Opts, uint64_t Seed, uint64_t Executions,
                 bool StressSlices = false, unsigned MeanSlice = 8)
      : Opts(Opts), Seed(Seed), Executions(Executions),
        StressSlices(StressSlices), MeanSlice(MeanSlice) {}
  ExploreResult explore(const TestCase &Test) override;
  std::string name() const override {
    return StressSlices ? "random-slice" : "random";
  }

private:
  ExploreOptions Opts;
  uint64_t Seed;
  uint64_t Executions;
  bool StressSlices;
  unsigned MeanSlice;
};

/// Replays \p Sched against \p Test (nonpreemptive continuation past the
/// end) and returns the result; used to render bug traces with step text.
ExecutionResult replaySchedule(const TestCase &Test,
                               const trace::Schedule &Sched,
                               Scheduler::Options ExecOpts);

/// Renders a bug as a full counterexample trace by replaying its schedule
/// with step text collection enabled.
std::string renderBugTrace(const TestCase &Test, const RtBug &Bug,
                           Scheduler::Options ExecOpts);

} // namespace icb::rt

#endif // ICB_RT_EXPLORE_H
