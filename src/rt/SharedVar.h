//===- rt/SharedVar.h - Race-checked data variables -------------*- C++ -*-===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// `SharedVar<T>` models an ordinary shared memory location: a *data
/// variable* in the paper's partition. In the default SyncOnly mode its
/// accesses are not scheduling points — instead each explored execution
/// verifies that they are ordered by synchronization (Section 3.1); a
/// violation is reported as a data race. In EveryAccess mode (the ablation)
/// every access becomes a scheduling point. A data variable on which racing
/// is intended (lock-free algorithms) can be promoted to a sync variable
/// via the DynamicPartition, after which its accesses behave like
/// Atomic<T>.
///
//===----------------------------------------------------------------------===//

#ifndef ICB_RT_SHAREDVAR_H
#define ICB_RT_SHAREDVAR_H

#include "rt/Scheduler.h"
#include <string>

namespace icb::rt {

/// An ordinary shared variable, instrumented for race detection.
template <typename T> class SharedVar {
public:
  explicit SharedVar(std::string Name = "var", T Initial = T())
      : Name(std::move(Name)), Value(Initial) {
    Scheduler *S = Scheduler::current();
    ICB_ASSERT(S, "shared variables must be created inside a test");
    Code = S->allocateVarCode();
  }

  SharedVar(const SharedVar &) = delete;
  SharedVar &operator=(const SharedVar &) = delete;

  /// Instrumented read.
  T get() {
    Scheduler::current()->sharedAccess(Code, /*IsWrite=*/false,
                                       Name.c_str());
    return Value;
  }

  /// Instrumented write.
  void set(T NewValue) {
    Scheduler::current()->sharedAccess(Code, /*IsWrite=*/true, Name.c_str());
    Value = NewValue;
  }

  /// The variable's identity in the data/sync partition (for promotion).
  uint64_t varCode() const { return Code; }

  /// Unchecked peek for final-state assertions.
  T unsafePeek() const { return Value; }

private:
  std::string Name;
  uint64_t Code = 0;
  T Value;
};

} // namespace icb::rt

#endif // ICB_RT_SHAREDVAR_H
