//===- rt/Thread.h - Controlled thread handles ------------------*- C++ -*-===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// `rt::Thread` is the CreateThread/WaitForSingleObject pair of the
/// intercepted API: creating one registers a new test thread with the
/// scheduler; join() blocks until it terminates (synchronizing on its
/// implicit termination event, Appendix A's e_t).
///
//===----------------------------------------------------------------------===//

#ifndef ICB_RT_THREAD_H
#define ICB_RT_THREAD_H

#include "rt/Ops.h"
#include <functional>
#include <string>

namespace icb::rt {

/// Handle to a spawned test thread.
class Thread {
public:
  /// Spawns \p Fn as a new controlled thread.
  explicit Thread(std::function<void()> Fn, std::string Name = "worker");

  Thread(const Thread &) = delete;
  Thread &operator=(const Thread &) = delete;
  Thread(Thread &&Other) noexcept : Id(Other.Id), Joined(Other.Joined) {
    Other.Id = InvalidThread;
    Other.Joined = true;
  }

  /// Blocks the caller until the thread terminates. Idempotent.
  void join();

  ThreadId id() const { return Id; }

private:
  ThreadId Id = InvalidThread;
  bool Joined = false;
};

} // namespace icb::rt

#endif // ICB_RT_THREAD_H
