//===- rt/Ops.h - Operation kinds and execution outcomes --------*- C++ -*-===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The vocabulary of the CHESS-style runtime: the operation a thread is
/// parked on at a scheduling point, and the ways an execution can end.
///
//===----------------------------------------------------------------------===//

#ifndef ICB_RT_OPS_H
#define ICB_RT_OPS_H

#include <cstdint>
#include <string>

namespace icb::rt {

using ThreadId = uint32_t;
inline constexpr ThreadId InvalidThread = ~0u;

class SyncObject;

/// What a thread is about to do at its current scheduling point. The
/// scheduler evaluates enabledness from this without running the thread.
enum class OpKind : uint8_t {
  Start,      ///< Thread created, has not run yet (always enabled).
  MutexLock,  ///< Blocks while the mutex is held.
  MutexUnlock,
  EventWait,  ///< Blocks until the event is set.
  EventSet,
  EventReset,
  SemAcquire, ///< Blocks until the count is positive.
  SemRelease,
  AtomicAccess, ///< Interlocked or volatile access (a sync variable).
  CondWait,     ///< Blocks until the condition variable signals us.
  CondSignal,   ///< Wakes waiter(s) of a condition variable.
  RwReadLock,   ///< Blocks while a writer holds the lock.
  RwWriteLock,  ///< Blocks while any reader or writer holds the lock.
  RwUnlock,
  DataAccess,   ///< Data-variable access; a scheduling point only in
                ///< EveryAccess mode or after promotion.
  Join,       ///< Blocks until the target thread terminates.
  Yield,      ///< Voluntary yield: switching away is nonpreempting.
  MutexTimedLock,  ///< Timed acquire: always enabled; being scheduled
                   ///< while the mutex is held is the timeout branch.
  SemTimedAcquire, ///< Timed P(): always enabled; being scheduled at
                   ///< count zero is the timeout branch.
  IoWait,     ///< Blocks until the modeled io object is ready for the
              ///< parked direction (IsWrite selects read/write side).
  IoOp,       ///< Modeled-I/O operation that never blocks (nonblocking
              ///< read/write, close, epoll_ctl, timed multiplexer wait).
};

const char *opKindName(OpKind Kind);

/// Returns true if \p Kind can block its thread.
constexpr bool isBlockingOp(OpKind Kind) {
  return Kind == OpKind::MutexLock || Kind == OpKind::EventWait ||
         Kind == OpKind::SemAcquire || Kind == OpKind::Join ||
         Kind == OpKind::CondWait || Kind == OpKind::RwReadLock ||
         Kind == OpKind::RwWriteLock || Kind == OpKind::IoWait;
}

/// True for modeled-I/O operations. A single io op can make several io
/// objects ready at once (a pipe write is the wakeup edge of every epoll
/// watching that pipe), so the POR independence relation never commutes
/// two io ops: their var codes do not capture the cross-object coupling.
constexpr bool isIoOp(OpKind Kind) {
  return Kind == OpKind::IoWait || Kind == OpKind::IoOp;
}

/// The operation a thread is parked on.
struct PendingOp {
  OpKind Kind = OpKind::Start;
  SyncObject *Object = nullptr; ///< Null for Start/Join/Yield/DataAccess.
  uint64_t VarCode = 0;         ///< Stable identity of the touched variable.
  ThreadId JoinTarget = InvalidThread;
  bool IsWrite = false;         ///< For DataAccess and IoWait.
  std::string Detail;           ///< Human-readable ("lock m_baseCS").
};

/// How one controlled execution ended.
enum class RunStatus : uint8_t {
  Terminated,   ///< All threads ran to completion.
  AssertFailed, ///< A test assertion failed.
  Deadlock,     ///< Live threads exist but none is enabled.
  DataRace,     ///< The per-execution race detector fired (Section 3.1).
  UseAfterFree, ///< A managed object was touched after destruction.
  Aborted,      ///< The schedule policy cut the execution short (db:N).
  Diverged,     ///< Replay mismatch: the program is not deterministic.
};

const char *runStatusName(RunStatus Status);

/// True if \p Status is an error the explorers report as a bug.
constexpr bool isErrorStatus(RunStatus Status) {
  return Status == RunStatus::AssertFailed || Status == RunStatus::Deadlock ||
         Status == RunStatus::DataRace || Status == RunStatus::UseAfterFree ||
         Status == RunStatus::Diverged;
}

} // namespace icb::rt

#endif // ICB_RT_OPS_H
