//===- rt/Scheduler.cpp - The controlled CHESS-style scheduler ------------===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//

#include "rt/Scheduler.h"
#include "obs/PhaseTimer.h"
#include "race/Goldilocks.h"
#include "race/VcRaceDetector.h"
#include "rt/SyncObject.h"
#include "support/Debug.h"
#include "support/Format.h"
#include <algorithm>

using namespace icb;
using namespace icb::rt;

SchedulePolicy::~SchedulePolicy() = default;

ThreadId NonPreemptivePolicy::pick(const SchedPoint &Point) {
  if (Point.Last != InvalidThread && Point.LastEnabled)
    return Point.Last;
  return Point.Enabled.front();
}

const char *icb::rt::opKindName(OpKind Kind) {
  switch (Kind) {
  case OpKind::Start:
    return "start";
  case OpKind::MutexLock:
    return "lock";
  case OpKind::MutexUnlock:
    return "unlock";
  case OpKind::EventWait:
    return "wait";
  case OpKind::EventSet:
    return "set";
  case OpKind::EventReset:
    return "reset";
  case OpKind::SemAcquire:
    return "acquire";
  case OpKind::SemRelease:
    return "release";
  case OpKind::AtomicAccess:
    return "atomic";
  case OpKind::CondWait:
    return "condwait";
  case OpKind::CondSignal:
    return "condsignal";
  case OpKind::RwReadLock:
    return "rdlock";
  case OpKind::RwWriteLock:
    return "wrlock";
  case OpKind::RwUnlock:
    return "rwunlock";
  case OpKind::DataAccess:
    return "access";
  case OpKind::Join:
    return "join";
  case OpKind::Yield:
    return "yield";
  case OpKind::MutexTimedLock:
    return "timedlock";
  case OpKind::SemTimedAcquire:
    return "timedacquire";
  case OpKind::IoWait:
    return "iowait";
  case OpKind::IoOp:
    return "io";
  }
  ICB_UNREACHABLE("unknown op kind");
}

const char *icb::rt::runStatusName(RunStatus Status) {
  switch (Status) {
  case RunStatus::Terminated:
    return "terminated";
  case RunStatus::AssertFailed:
    return "assertion failure";
  case RunStatus::Deadlock:
    return "deadlock";
  case RunStatus::DataRace:
    return "data race";
  case RunStatus::UseAfterFree:
    return "use-after-free";
  case RunStatus::Aborted:
    return "aborted";
  case RunStatus::Diverged:
    return "replay divergence";
  }
  ICB_UNREACHABLE("unknown run status");
}

namespace {
/// The scheduler driving the calling thread's execution. Thread-local so
/// that one Scheduler per worker thread can replay tests concurrently —
/// the test-visible API (rt::thread, rt::Mutex, ...) routes through
/// Scheduler::current().
thread_local Scheduler *CurrentScheduler = nullptr;

/// Variable code of the implicit per-thread termination event (Appendix
/// A's e_t); joins and thread start/exit synchronize on it.
uint64_t threadEndCode(ThreadId Tid) { return (1ULL << 62) | Tid; }
} // namespace

struct Scheduler::ThreadRecord {
  ThreadId Id = InvalidThread;
  std::string Name;
  std::unique_ptr<Fiber> Fib;
  PendingOp Op;
  bool Done = false;
  uint64_t NextVarSeq = 0;
};

Scheduler::Scheduler(Options Opts) : Opts(Opts) {}

Scheduler::~Scheduler() = default;

Scheduler *Scheduler::current() { return CurrentScheduler; }

const std::string &Scheduler::threadName(ThreadId Tid) const {
  ICB_ASSERT(Tid < Threads.size(), "thread id out of range");
  return Threads[Tid]->Name;
}

const PendingOp &Scheduler::pendingOp(ThreadId Tid) const {
  ICB_ASSERT(Tid < Threads.size(), "thread id out of range");
  return Threads[Tid]->Op;
}

uint64_t Scheduler::allocateVarCode() {
  ICB_ASSERT(Running != InvalidThread,
             "variable created outside a controlled execution");
  ThreadRecord &Me = *Threads[Running];
  return ((static_cast<uint64_t>(Running) + 1) << 32) | Me.NextVarSeq++;
}

bool Scheduler::isEnabled(const ThreadRecord &T) const {
  if (T.Done)
    return false;
  switch (T.Op.Kind) {
  case OpKind::Join:
    return Threads[T.Op.JoinTarget]->Done;
  case OpKind::MutexLock:
  case OpKind::EventWait:
  case OpKind::SemAcquire:
  case OpKind::CondWait:
  case OpKind::RwReadLock:
  case OpKind::RwWriteLock:
  case OpKind::IoWait:
    ICB_ASSERT(T.Op.Object, "blocking op with no object");
    return T.Op.Object->canProceed(T.Op, T.Id);
  default:
    return true;
  }
}

std::vector<ThreadId> Scheduler::enabledThreads() const {
  std::vector<ThreadId> Enabled;
  for (const auto &T : Threads)
    if (isEnabled(*T))
      Enabled.push_back(T->Id);
  return Enabled;
}

void Scheduler::noteVisitedState() {
  Result.StepFingerprints.push_back(Fingerprint->digest());
}

void Scheduler::recordStep(ThreadId Tid, bool Switch, bool Preempt) {
  ThreadRecord &T = *Threads[Tid];
  Result.Sched.append(Tid, Preempt, Switch);
  ++Result.Steps;
  Result.Preemptions += Preempt ? 1 : 0;
  Result.ContextSwitches += Switch ? 1 : 0;
  Result.BlockingOps += isBlockingOp(T.Op.Kind) ? 1 : 0;
  if (Opts.CollectStepText) {
    Result.StepText.push_back(T.Op.Detail.empty() ? opKindName(T.Op.Kind)
                                                  : T.Op.Detail);
    Result.StepThreadNames.push_back(T.Name);
  }

  switch (T.Op.Kind) {
  case OpKind::Start:
    // A child's first step synchronizes on its termination event, pairing
    // with the creation record the parent emitted (Appendix A: the first
    // operation of t accesses e_t). A creation point itself (VarCode 0)
    // records nothing.
    if (T.Op.VarCode != 0) {
      if (Detector) {
        obs::ScopedPhase RaceTimer(MShard, obs::Phase::RaceDetect);
        Detector->onSyncOp(Tid, T.Op.VarCode);
      }
      obs::ScopedPhase HashTimer(MShard, obs::Phase::Hash);
      Fingerprint->addStep(Tid, T.Op.VarCode, /*IsSync=*/true,
                           static_cast<uint16_t>(T.Op.Kind));
      noteVisitedState();
    }
    break;
  case OpKind::Yield:
    break; // No shared object touched.
  case OpKind::DataAccess: {
    // A data access promoted to a scheduling point by EveryAccess mode
    // still has data-variable happens-before semantics.
    {
      obs::ScopedPhase HashTimer(MShard, obs::Phase::Hash);
      Fingerprint->addStep(Tid, T.Op.VarCode, /*IsSync=*/false,
                           static_cast<uint16_t>(T.Op.IsWrite ? 1 : 0));
      noteVisitedState();
    }
    if (Detector) {
      obs::ScopedPhase RaceTimer(MShard, obs::Phase::RaceDetect);
      if (auto Race = Detector->onDataAccess(Tid, T.Op.VarCode, T.Op.IsWrite);
          Race && Opts.StopOnRace) {
        Result.Status = RunStatus::DataRace;
        Result.Message = Race->str();
        ExecutionOver = true;
      } else if (Race && Result.Message.empty()) {
        Result.Message = Race->str();
      }
    }
    break;
  }
  default: {
    // Every other kind operates on a synchronization variable.
    if (Detector) {
      obs::ScopedPhase RaceTimer(MShard, obs::Phase::RaceDetect);
      Detector->onSyncOp(Tid, T.Op.VarCode);
    }
    obs::ScopedPhase HashTimer(MShard, obs::Phase::Hash);
    Fingerprint->addStep(Tid, T.Op.VarCode, /*IsSync=*/true,
                         static_cast<uint16_t>(T.Op.Kind));
    noteVisitedState();
    break;
  }
  }
}

void Scheduler::scheduleLoop(SchedulePolicy &Policy) {
  while (!ExecutionOver) {
    // A thread parked on a destroyed sync object is a use-after-free in
    // the program under test (its wait references freed memory).
    for (const auto &T : Threads) {
      if (!T->Done && T->Op.Object && !T->Op.Object->alive()) {
        Result.Status = RunStatus::UseAfterFree;
        Result.Message = strFormat(
            "use-after-free: %s waits on a destroyed sync object (%s)",
            T->Name.c_str(), T->Op.Detail.c_str());
        return;
      }
    }
    std::vector<ThreadId> Enabled = enabledThreads();
    if (Enabled.empty()) {
      bool AllDone = true;
      for (const auto &T : Threads)
        AllDone &= T->Done;
      if (AllDone) {
        Result.Status = RunStatus::Terminated;
      } else {
        Result.Status = RunStatus::Deadlock;
        std::string Msg = "deadlock:";
        for (const auto &T : Threads)
          if (!T->Done)
            Msg += strFormat(" [%s blocked at %s]", T->Name.c_str(),
                             T->Op.Detail.empty() ? opKindName(T->Op.Kind)
                                                  : T->Op.Detail.c_str());
        Result.Message = Msg;
      }
      return;
    }
    if (Result.Steps >= Opts.MaxSteps) {
      Result.Status = RunStatus::Aborted;
      Result.Message = "step limit reached (nonterminating test?)";
      return;
    }

    bool LastStillEnabled =
        LastScheduled != InvalidThread &&
        std::find(Enabled.begin(), Enabled.end(), LastScheduled) !=
            Enabled.end();
    bool LastIsYielded =
        LastStillEnabled &&
        Threads[LastScheduled]->Op.Kind == OpKind::Yield;

    SchedPoint Point{Enabled, LastScheduled, LastStillEnabled, LastIsYielded,
                     Result.Steps, this};
    ThreadId Tid = Policy.pick(Point);
    if (Tid == SchedulePolicy::AbortExecution) {
      Result.Status = RunStatus::Aborted;
      return;
    }
    ICB_ASSERT(std::find(Enabled.begin(), Enabled.end(), Tid) != Enabled.end(),
               "policy picked a disabled thread");

    bool Switch = LastScheduled != InvalidThread && Tid != LastScheduled;
    bool Preempt = Switch && LastStillEnabled && !LastIsYielded;
    recordStep(Tid, Switch, Preempt);
    if (ExecutionOver)
      return; // recordStep detected a race.

    LastScheduled = Tid;
    Running = Tid;
    ThreadRecord &T = *Threads[Tid];
    T.Fib->resume(SchedulerContext);
    Running = InvalidThread;

    if (T.Fib->finished() && !T.Done) {
      T.Done = true;
      // The thread's final action signals its termination event so that
      // joiners happen-after everything the thread did.
      if (Detector) {
        obs::ScopedPhase RaceTimer(MShard, obs::Phase::RaceDetect);
        Detector->onSyncOp(Tid, threadEndCode(Tid));
      }
      obs::ScopedPhase HashTimer(MShard, obs::Phase::Hash);
      Fingerprint->addStep(Tid, threadEndCode(Tid), /*IsSync=*/true,
                           /*OpCode=*/0xff);
      noteVisitedState();
    }
  }
}

ExecutionResult Scheduler::run(const TestCase &Test, SchedulePolicy &Policy) {
  ICB_ASSERT(CurrentScheduler == nullptr,
             "nested controlled executions are not supported");
  CurrentScheduler = this;

  Threads.clear();
  Managed.clear();
  Result = ExecutionResult();
  ExecutionOver = false;
  Teardown = false;
  Running = InvalidThread;
  LastScheduled = InvalidThread;

  switch (Opts.Detector) {
  case DetectorKind::VectorClock:
    Detector = std::make_unique<race::VcRaceDetector>(MaxThreads);
    break;
  case DetectorKind::Goldilocks:
    Detector = std::make_unique<race::GoldilocksDetector>(MaxThreads);
    break;
  case DetectorKind::None:
    Detector = nullptr;
    break;
  }
  Fingerprint = std::make_unique<trace::FingerprintBuilder>(MaxThreads);

  auto Main = std::make_unique<ThreadRecord>();
  Main->Id = 0;
  Main->Name = "main";
  Main->Op.Kind = OpKind::Start;
  Main->Op.VarCode = threadEndCode(0);
  Main->Op.Detail = "start main";
  std::function<void()> Body = Test.Body;
  Main->Fib = std::make_unique<Fiber>([Body] { Body(); });
  Threads.push_back(std::move(Main));

  scheduleLoop(Policy);

  Result.Fingerprint = Fingerprint->digest();
  Result.ThreadsUsed = static_cast<unsigned>(Threads.size());
  teardown();
  CurrentScheduler = nullptr;
  return std::move(Result);
}

void Scheduler::teardown() {
  Teardown = true;
  // Destroy still-alive managed objects in reverse creation order, then
  // release their memory.
  for (size_t I = Managed.size(); I != 0; --I) {
    ManagedSlot &Slot = Managed[I - 1];
    if (Slot.Alive && Slot.Destructor)
      Slot.Destructor();
    Slot.Alive = false;
  }
  for (ManagedSlot &Slot : Managed) {
    ::operator delete(Slot.Mem);
    Slot.Mem = nullptr;
  }
  Managed.clear();
  // Fibers that never finished are abandoned: their stacks are freed
  // without unwinding (documented limitation for failing executions).
  Threads.clear();
  Teardown = false;
}

void Scheduler::schedulingPoint(PendingOp Op) {
  ICB_ASSERT(Running != InvalidThread,
             "scheduling point outside a controlled execution");
  ThreadRecord &Me = *Threads[Running];
  Me.Op = std::move(Op);
  Me.Fib->yieldTo(SchedulerContext);
  // Resumed: the published operation is now enabled and the caller
  // performs it atomically (nobody else runs until the next point).
}

void Scheduler::dataAccess(uint64_t VarCode, bool IsWrite, const char *What) {
  ICB_ASSERT(Running != InvalidThread,
             "data access outside a controlled execution");
  {
    obs::ScopedPhase HashTimer(MShard, obs::Phase::Hash);
    Fingerprint->addStep(Running, VarCode, /*IsSync=*/false,
                         static_cast<uint16_t>(IsWrite ? 1 : 0));
    noteVisitedState();
  }
  if (!Detector)
    return;
  obs::ScopedPhase RaceTimer(MShard, obs::Phase::RaceDetect);
  if (auto Race = Detector->onDataAccess(Running, VarCode, IsWrite)) {
    std::string Msg = Race->str();
    if (What && What[0])
      Msg += strFormat(" (%s)", What);
    if (Opts.StopOnRace)
      failExecution(RunStatus::DataRace, Msg);
    if (Result.Message.empty())
      Result.Message = Msg;
  }
}

void Scheduler::sharedAccess(uint64_t VarCode, bool IsWrite,
                             const char *What) {
  bool Promoted = Opts.Partition && Opts.Partition->isSync(VarCode);
  if (Promoted) {
    // A promoted variable is a synchronization variable now: a scheduling
    // point with sync happens-before semantics and no race check.
    PendingOp Op;
    Op.Kind = OpKind::AtomicAccess;
    Op.VarCode = VarCode;
    Op.Detail = strFormat("%s %s (promoted)", IsWrite ? "write" : "read",
                          What);
    schedulingPoint(std::move(Op));
    return;
  }
  if (Opts.Mode == SchedPointMode::EveryAccess) {
    PendingOp Op;
    Op.Kind = OpKind::DataAccess;
    Op.VarCode = VarCode;
    Op.IsWrite = IsWrite;
    Op.Detail = strFormat("%s %s", IsWrite ? "write" : "read", What);
    schedulingPoint(std::move(Op));
    return;
  }
  dataAccess(VarCode, IsWrite, What);
}

ThreadId Scheduler::spawnThread(std::function<void()> Fn, std::string Name) {
  ICB_ASSERT(Running != InvalidThread,
             "thread created outside a controlled execution");
  ICB_ASSERT(Threads.size() < MaxThreads, "too many test threads");

  // Creation is itself a scheduling point (CHESS intercepts CreateThread);
  // the creation record (the parent's access to the child's termination
  // event) is emitted after the point, once the child id is final.
  PendingOp Op;
  Op.Kind = OpKind::Start;
  Op.VarCode = 0; // Marks "creation point": recordStep skips var records.
  Op.Detail = strFormat("create thread '%s'", Name.c_str());
  schedulingPoint(std::move(Op));

  ThreadId Child = static_cast<ThreadId>(Threads.size());
  auto Record = std::make_unique<ThreadRecord>();
  Record->Id = Child;
  Record->Name = std::move(Name);
  Record->Op.Kind = OpKind::Start;
  Record->Op.VarCode = threadEndCode(Child);
  Record->Op.Detail = strFormat("start %s", Record->Name.c_str());
  Record->Fib = std::make_unique<Fiber>(std::move(Fn));
  Threads.push_back(std::move(Record));

  if (Detector) {
    obs::ScopedPhase RaceTimer(MShard, obs::Phase::RaceDetect);
    Detector->onSyncOp(Running, threadEndCode(Child));
  }
  {
    obs::ScopedPhase HashTimer(MShard, obs::Phase::Hash);
    Fingerprint->addStep(Running, threadEndCode(Child), /*IsSync=*/true,
                         /*OpCode=*/0xfe);
    noteVisitedState();
  }
  return Child;
}

void Scheduler::joinThread(ThreadId Target) {
  ICB_ASSERT(Running != InvalidThread,
             "join outside a controlled execution");
  ICB_ASSERT(Target < Threads.size(), "join of unknown thread");
  PendingOp Op;
  Op.Kind = OpKind::Join;
  Op.JoinTarget = Target;
  Op.VarCode = threadEndCode(Target);
  Op.Detail = strFormat("join %s", Threads[Target]->Name.c_str());
  schedulingPoint(std::move(Op));
}

void Scheduler::yieldThread() {
  PendingOp Op;
  Op.Kind = OpKind::Yield;
  Op.Detail = "yield";
  schedulingPoint(std::move(Op));
}

void Scheduler::failExecution(RunStatus Status, std::string Message) {
  ICB_ASSERT(Running != InvalidThread,
             "failExecution outside a controlled execution");
  Result.Status = Status;
  Result.Message = std::move(Message);
  ExecutionOver = true;
  ThreadRecord &Me = *Threads[Running];
  Me.Fib->yieldTo(SchedulerContext);
  ICB_UNREACHABLE("failed execution resumed a dead thread");
}

uint32_t Scheduler::registerManaged(void *Mem,
                                    std::function<void()> Destructor,
                                    const char *TypeName) {
  ManagedSlot Slot;
  Slot.Mem = Mem;
  Slot.Destructor = std::move(Destructor);
  Slot.TypeName = TypeName;
  Slot.Alive = true;
  Managed.push_back(std::move(Slot));
  return static_cast<uint32_t>(Managed.size() - 1);
}

void Scheduler::destroyManaged(uint32_t Slot, const char *What) {
  ICB_ASSERT(Slot < Managed.size(), "bad managed slot");
  ManagedSlot &S = Managed[Slot];
  if (!S.Alive)
    failExecution(RunStatus::UseAfterFree,
                  strFormat("double free of %s", What));
  S.Alive = false;
  if (S.Destructor)
    S.Destructor();
  // Memory stays tombstoned until teardown so later UAF checks are safe.
}

bool Scheduler::isManagedAlive(uint32_t Slot) const {
  ICB_ASSERT(Slot < Managed.size(), "bad managed slot");
  return Managed[Slot].Alive;
}

void Scheduler::checkManagedAccess(uint32_t Slot, const char *What) {
  ICB_ASSERT(Slot < Managed.size(), "bad managed slot");
  if (!Managed[Slot].Alive)
    failExecution(RunStatus::UseAfterFree,
                  strFormat("use-after-free: access to %s", What));
}

void icb::rt::testAssert(bool Condition, const char *Message) {
  if (Condition)
    return;
  Scheduler *S = Scheduler::current();
  ICB_ASSERT(S, "testAssert outside a controlled execution");
  S->failExecution(RunStatus::AssertFailed, Message);
}
