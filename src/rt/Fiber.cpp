//===- rt/Fiber.cpp - Cooperative fibers for the scheduler ----------------===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//

#include "rt/Fiber.h"
#include "support/Debug.h"
#include <vector>

using namespace icb;
using namespace icb::rt;

namespace {

/// Pool of default-sized stacks, reused across executions. Thread-local:
/// each worker thread (each Scheduler instance) recycles its own stacks,
/// so parallel exploration needs no synchronization here. The pool is
/// bounded by the maximum number of simultaneously live fibers.
std::vector<char *> &stackPool() {
  thread_local std::vector<char *> Pool;
  return Pool;
}

char *acquireStack(size_t Size) {
  if (Size == Fiber::DefaultStackSize && !stackPool().empty()) {
    char *Stack = stackPool().back();
    stackPool().pop_back();
    return Stack;
  }
  return new char[Size];
}

void releaseStack(char *Stack, size_t Size) {
  if (Size == Fiber::DefaultStackSize && stackPool().size() < 64) {
    stackPool().push_back(Stack);
    return;
  }
  delete[] Stack;
}

} // namespace

Fiber::Fiber(std::function<void()> EntryFn, size_t StackSizeBytes)
    : Entry(std::move(EntryFn)), Stack(acquireStack(StackSizeBytes)),
      StackSize(StackSizeBytes) {
  Context = makeFiberContext(Stack, StackSize, &Fiber::trampoline, this);
}

Fiber::~Fiber() { releaseStack(Stack, StackSize); }

void Fiber::trampoline(void *SelfPtr) {
  Fiber *Self = static_cast<Fiber *>(SelfPtr);
  Self->Entry();
  Self->Finished = true;
  // Return control to whoever resumed us last; this context is dead, so
  // the save slot is a throwaway.
  ICB_ASSERT(Self->ReturnTo, "fiber finished with no return context");
  MachineContext Dead;
  switchFiberContext(Dead, *Self->ReturnTo);
  ICB_UNREACHABLE("switched back into a finished fiber");
}

void Fiber::resume(MachineContext &From) {
  ICB_ASSERT(!Finished, "resume of a finished fiber");
  ReturnTo = &From;
  switchFiberContext(From, Context);
}

void Fiber::yieldTo(MachineContext &To) { switchFiberContext(Context, To); }
