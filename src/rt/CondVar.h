//===- rt/CondVar.h - Controlled condition variables ------------*- C++ -*-===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Win32 CONDITION_VARIABLE / pthread_cond_t model under scheduler
/// control. `wait(M)` atomically releases the mutex and parks the thread
/// on the condition's wait queue; `signal()` releases one waiter,
/// `broadcast()` all of them; woken threads re-acquire the mutex before
/// returning. For plain wait() spurious wakeups are *not* modeled (every
/// wakeup is caused by a signal), which keeps the schedule space faithful
/// to what a signal delivery can do; user code should still use the
/// standard wait-in-a-loop idiom, and the checker will find the bugs when
/// it does not (lost wakeups, signal-before-wait, ...).
///
/// `timedWait(M)` is the timed variant: the waiter stays *enabled* at its
/// park point, so the explorer can schedule it before any signal arrives —
/// that branch models the timeout (equivalently a spurious wakeup) and
/// returns false; being scheduled after a signal returns true. No clock is
/// involved, so replay stays deterministic and the schedule space contains
/// both outcomes of every real race between signal delivery and expiry.
///
//===----------------------------------------------------------------------===//

#ifndef ICB_RT_CONDVAR_H
#define ICB_RT_CONDVAR_H

#include "rt/Sync.h"
#include <vector>

namespace icb::rt {

/// A condition variable tied to caller-supplied mutexes.
class CondVar : public SyncObject {
public:
  explicit CondVar(std::string Name = "condvar");

  /// Atomically releases \p M and waits to be signaled; re-acquires \p M
  /// before returning. \p M must be held by the caller.
  void wait(Mutex &M);

  /// Timed wait: like wait(), but the parked thread remains enabled, so
  /// the scheduler may wake it without a signal — that schedule is the
  /// timeout/spurious-wakeup outcome. Returns true when the wakeup
  /// consumed a signal, false on the modeled timeout. Re-acquires \p M
  /// before returning either way.
  bool timedWait(Mutex &M);

  /// Wakes one waiter (no-op when none).
  void signal();

  /// Wakes every waiter.
  void broadcast();

  /// Waiters currently parked (for assertions in tests).
  size_t waiterCount() const { return Waiters.size(); }

  /// Whether \p Tid is a parked waiter with a pending signal (for
  /// assertions in tests).
  bool hasSignalFor(ThreadId Tid) const;

  bool canProceed(const PendingOp &Op, ThreadId Tid) const override;

private:
  /// Threads parked in wait(); Signaled[i] and Timed[i] parallel
  /// Waiters[i]. Timed waiters are always enabled (see timedWait()).
  std::vector<ThreadId> Waiters;
  std::vector<bool> Signaled;
  std::vector<bool> Timed;
};

} // namespace icb::rt

#endif // ICB_RT_CONDVAR_H
