//===- rt/CondVar.h - Controlled condition variables ------------*- C++ -*-===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Win32 CONDITION_VARIABLE / pthread_cond_t model under scheduler
/// control. `wait(M)` atomically releases the mutex and parks the thread
/// on the condition's wait queue; `signal()` releases one waiter,
/// `broadcast()` all of them; woken threads re-acquire the mutex before
/// returning. Spurious wakeups are *not* modeled (every wakeup is caused
/// by a signal), which keeps the schedule space faithful to what a signal
/// delivery can do; user code should still use the standard
/// wait-in-a-loop idiom, and the checker will find the bugs when it does
/// not (lost wakeups, signal-before-wait, ...).
///
//===----------------------------------------------------------------------===//

#ifndef ICB_RT_CONDVAR_H
#define ICB_RT_CONDVAR_H

#include "rt/Sync.h"
#include <vector>

namespace icb::rt {

/// A condition variable tied to caller-supplied mutexes.
class CondVar : public SyncObject {
public:
  explicit CondVar(std::string Name = "condvar");

  /// Atomically releases \p M and waits to be signaled; re-acquires \p M
  /// before returning. \p M must be held by the caller.
  void wait(Mutex &M);

  /// Wakes one waiter (no-op when none).
  void signal();

  /// Wakes every waiter.
  void broadcast();

  /// Waiters currently parked (for assertions in tests).
  size_t waiterCount() const { return Waiters.size(); }

  bool canProceed(const PendingOp &Op, ThreadId Tid) const override;

private:
  /// Threads parked in wait(); Signaled[i] parallels Waiters[i].
  std::vector<ThreadId> Waiters;
  std::vector<bool> Signaled;
};

} // namespace icb::rt

#endif // ICB_RT_CONDVAR_H
