//===- rt/Managed.h - Use-after-free-checked heap objects -------*- C++ -*-===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Managed heap objects for the test runtime. `makeManaged<T>` allocates an
/// object whose memory stays tombstoned (allocated but flagged dead) until
/// the end of the execution, so any access after `destroy()` is detected
/// and reported as a use-after-free — the bug class of the paper's Dryad
/// Figure 3 ("deleting the channel when worker threads still have a valid
/// reference"). Double destroys are detected too. Objects still alive when
/// the execution ends are destroyed automatically by the scheduler.
///
//===----------------------------------------------------------------------===//

#ifndef ICB_RT_MANAGED_H
#define ICB_RT_MANAGED_H

#include "rt/Scheduler.h"
#include <new>
#include <utility>

namespace icb::rt {

/// A checked handle to a scheduler-managed heap object. Copies share the
/// underlying object (plain aliasing, like the raw pointers the modeled
/// code uses); `destroy()` through any copy kills them all.
template <typename T> class ManagedPtr {
public:
  ManagedPtr() = default;

  /// True if the object has not been destroyed.
  bool alive() const {
    return Obj && Scheduler::current()->isManagedAlive(Slot);
  }

  /// Checked access: reports a use-after-free if destroyed.
  T *operator->() const {
    Scheduler::current()->checkManagedAccess(Slot, TypeName);
    return Obj;
  }

  T &operator*() const {
    Scheduler::current()->checkManagedAccess(Slot, TypeName);
    return *Obj;
  }

  /// Runs the destructor now; later accesses are use-after-free, a second
  /// destroy is a double free.
  void destroy() const {
    Scheduler::current()->destroyManaged(Slot, TypeName);
  }

  /// Unchecked escape hatch (modeled code that deliberately holds a stale
  /// reference uses the checked operators instead; this is for harness
  /// teardown assertions).
  T *unsafeGet() const { return Obj; }

  explicit operator bool() const { return Obj != nullptr; }

private:
  template <typename U, typename... Args>
  friend ManagedPtr<U> makeManaged(const char *, Args &&...);

  T *Obj = nullptr;
  uint32_t Slot = 0;
  const char *TypeName = "object";
};

/// Allocates a managed \p T; \p TypeName appears in bug reports.
template <typename T, typename... Args>
ManagedPtr<T> makeManaged(const char *TypeName, Args &&...CtorArgs) {
  Scheduler *S = Scheduler::current();
  ICB_ASSERT(S, "managed objects must be created inside a test");
  void *Mem = ::operator new(sizeof(T));
  T *Obj = new (Mem) T(std::forward<Args>(CtorArgs)...);
  ManagedPtr<T> Ptr;
  Ptr.Obj = Obj;
  Ptr.TypeName = TypeName;
  Ptr.Slot = S->registerManaged(
      Mem, [Obj] { Obj->~T(); }, TypeName);
  return Ptr;
}

} // namespace icb::rt

#endif // ICB_RT_MANAGED_H
