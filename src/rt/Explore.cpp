//===- rt/Explore.cpp - Stateless exploration of runtime tests ------------===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//

#include "rt/Explore.h"
#include "support/Debug.h"
#include "support/Format.h"
#include "support/Prng.h"
#include "trace/TraceWriter.h"
#include <algorithm>
#include <deque>
#include <unordered_set>

using namespace icb;
using namespace icb::rt;

Explorer::~Explorer() = default;

std::string RtBug::str() const {
  return strFormat(
      "%s: %s (exposed with %u preemptions, %u context switches, %llu "
      "steps)",
      runStatusName(Kind), Message.c_str(), Preemptions, ContextSwitches,
      static_cast<unsigned long long>(Steps));
}

const RtBug *ExploreResult::simplestBug() const {
  const RtBug *Best = nullptr;
  for (const RtBug &B : Bugs)
    if (!Best || B.Preemptions < Best->Preemptions)
      Best = &B;
  return Best;
}

namespace {

/// Shared per-explorer accounting: stats, fingerprint coverage, bug
/// deduplication (keyed by kind+message, keeping the fewest-preemption
/// exposure).
class ExploreAccounting {
public:
  explicit ExploreAccounting(const ExploreLimits &Limits) : Limits(Limits) {}

  /// Folds one finished execution in; returns true when a limit was hit.
  bool onExecution(const ExecutionResult &R) {
    ++Stats.Executions;
    Stats.TotalSteps += R.Steps;
    Stats.StepsPerExecution.observe(R.Steps);
    Stats.BlockingPerExecution.observe(R.BlockingOps);
    Stats.PreemptionsPerExecution.observe(R.Preemptions);
    Stats.PreemptionHistogram.increment(R.Preemptions);
    Stats.ThreadsPerExecution.observe(R.ThreadsUsed);
    for (uint64_t Digest : R.StepFingerprints)
      Visited.insert(Digest);
    Terminal.insert(R.Fingerprint);
    Sampler.observe(Stats.Coverage, Stats.Executions, Visited.size());

    if (isErrorStatus(R.Status)) {
      RtBug Bug;
      Bug.Kind = R.Status;
      Bug.Message = R.Message;
      Bug.Preemptions = R.Preemptions;
      Bug.ContextSwitches = R.ContextSwitches;
      Bug.Steps = R.Steps;
      Bug.Sched = R.Sched;
      addBug(std::move(Bug));
      if (Limits.StopAtFirstBug)
        LimitHit = true;
    }
    if (Stats.Executions >= Limits.MaxExecutions)
      LimitHit = true;
    return LimitHit;
  }

  bool limitHit() const { return LimitHit; }
  uint64_t distinctStates() const { return Visited.size(); }

  ExploreResult finish(bool Completed) {
    Sampler.finish(Stats.Coverage);
    Stats.DistinctStates = Visited.size();
    Stats.DistinctTerminalStates = Terminal.size();
    Stats.Completed = Completed && !LimitHit;
    ExploreResult Result;
    Result.Stats = std::move(Stats);
    Result.Bugs = std::move(Bugs);
    return Result;
  }

  ExploreStats Stats;

private:
  void addBug(RtBug Bug) {
    auto Key = std::make_pair(Bug.Kind, Bug.Message);
    auto It = Index.find(Key);
    if (It == Index.end()) {
      Index.emplace(std::move(Key), Bugs.size());
      Bugs.push_back(std::move(Bug));
      return;
    }
    if (Bug.Preemptions < Bugs[It->second].Preemptions)
      Bugs[It->second] = std::move(Bug);
  }

  ExploreLimits Limits;
  CoverageSampler<CoveragePoint> Sampler;
  std::unordered_set<uint64_t> Visited;
  std::unordered_set<uint64_t> Terminal;
  std::vector<RtBug> Bugs;
  std::map<std::pair<RunStatus, std::string>, size_t> Index;
  bool LimitHit = false;
};

/// Forces a recorded prefix, then runs the canonical nonpreemptive
/// continuation. The base of the replay and ICB policies.
class ReplayPolicy : public SchedulePolicy {
public:
  explicit ReplayPolicy(std::vector<ThreadId> Prefix)
      : Prefix(std::move(Prefix)) {}

  ThreadId pick(const SchedPoint &P) override {
    if (P.Index < Prefix.size()) {
      ThreadId Tid = Prefix[P.Index];
      ICB_ASSERT(std::find(P.Enabled.begin(), P.Enabled.end(), Tid) !=
                     P.Enabled.end(),
                 "replay divergence: recorded thread not enabled (the test "
                 "is nondeterministic)");
      return Tid;
    }
    return Fallback.pick(P);
  }

private:
  std::vector<ThreadId> Prefix;
  NonPreemptivePolicy Fallback;
};

/// A stateless ICB work item: replay Prefix, then force NextTid.
struct PrefixItem {
  std::vector<ThreadId> Prefix;
  ThreadId NextTid = InvalidThread;
};

/// The ICB continuation policy (the body of Algorithm 1's Search): follow
/// the prefix, force the chosen thread, then keep running the current
/// thread while it stays enabled. Alternatives at points where the current
/// thread stays enabled cost a preemption (deferred to the next bound);
/// alternatives at yield or blocking points are free (same bound).
class IcbPolicy : public SchedulePolicy {
public:
  explicit IcbPolicy(const PrefixItem &Item)
      : Prefix(Item.Prefix), Forced(Item.NextTid) {}

  ThreadId pick(const SchedPoint &P) override {
    ThreadId Chosen;
    if (P.Index < Prefix.size()) {
      Chosen = Prefix[P.Index];
      ICB_ASSERT(std::find(P.Enabled.begin(), P.Enabled.end(), Chosen) !=
                     P.Enabled.end(),
                 "ICB replay divergence (nondeterministic test?)");
    } else if (P.Index == Prefix.size() && Forced != InvalidThread) {
      Chosen = Forced;
      ICB_ASSERT(std::find(P.Enabled.begin(), P.Enabled.end(), Chosen) !=
                     P.Enabled.end(),
                 "ICB forced thread not enabled (nondeterministic test?)");
      Current = Chosen;
    } else {
      bool CurrentEnabled =
          Current != InvalidThread &&
          std::find(P.Enabled.begin(), P.Enabled.end(), Current) !=
              P.Enabled.end();
      if (CurrentEnabled) {
        // Lines 29-32 / yield handling: alternatives here are
        // preemptions unless the current thread volunteered.
        bool Free = P.LastYielded && P.Last == Current;
        for (ThreadId Other : P.Enabled) {
          if (Other == Current)
            continue;
          (Free ? SameBound : NextBound).push_back({Mirror, Other});
        }
        Chosen = Current;
      } else {
        // Lines 33-37: the current thread blocked or finished; switching
        // is free. Continue with the lowest-id thread, branch the rest.
        for (size_t I = 1; I < P.Enabled.size(); ++I)
          SameBound.push_back({Mirror, P.Enabled[I]});
        Chosen = P.Enabled.front();
        Current = Chosen;
      }
    }
    if (P.Index < Prefix.size()) {
      // While replaying, track the running thread so the continuation
      // starts from the right place even for pure-replay items.
      Current = Chosen;
    }
    Mirror.push_back(Chosen);
    return Chosen;
  }

  std::vector<PrefixItem> SameBound;
  std::vector<PrefixItem> NextBound;

private:
  std::vector<ThreadId> Prefix;
  ThreadId Forced;
  ThreadId Current = InvalidThread;
  std::vector<ThreadId> Mirror;
};

} // namespace

//===----------------------------------------------------------------------===//
// IcbExplorer
//===----------------------------------------------------------------------===//

ExploreResult IcbExplorer::explore(const TestCase &Test) {
  ExploreAccounting Acct(Opts.Limits);
  Scheduler Sched(Opts.Exec);

  std::deque<PrefixItem> WorkQueue;
  std::deque<PrefixItem> NextQueue;
  WorkQueue.push_back({{}, InvalidThread}); // Empty prefix, free start.
  unsigned CurrBound = 0;

  // Every queued item produces at least one execution, so items beyond the
  // execution budget can never be processed; dropping them bounds queue
  // memory without changing any observable result.
  auto RoomFor = [&](size_t Queued) {
    return Acct.Stats.Executions + Queued < Opts.Limits.MaxExecutions;
  };

  while (true) {
    while (!WorkQueue.empty() && !Acct.limitHit()) {
      PrefixItem Item = std::move(WorkQueue.front());
      WorkQueue.pop_front();

      IcbPolicy Policy(Item);
      ExecutionResult R = Sched.run(Test, Policy);
      // The work-queue structure guarantees every execution at bound c has
      // exactly c preemptions; this is Algorithm 1's core invariant.
      ICB_ASSERT(R.Preemptions == CurrBound,
                 "ICB invariant violated: unexpected preemption count");
      for (PrefixItem &Branch : Policy.SameBound)
        if (RoomFor(WorkQueue.size()))
          WorkQueue.push_back(std::move(Branch));
      for (PrefixItem &Deferred : Policy.NextBound)
        if (RoomFor(WorkQueue.size() + NextQueue.size()))
          NextQueue.push_back(std::move(Deferred));
      Acct.onExecution(R);
    }
    Acct.Stats.PerBound.push_back(
        {CurrBound, Acct.distinctStates(), Acct.Stats.Executions});
    if (Acct.limitHit() || NextQueue.empty() ||
        CurrBound >= Opts.Limits.MaxPreemptionBound)
      break;
    ++CurrBound;
    std::swap(WorkQueue, NextQueue);
    NextQueue.clear();
  }
  return Acct.finish(WorkQueue.empty() && NextQueue.empty());
}

//===----------------------------------------------------------------------===//
// DfsExplorer / IdfsExplorer
//===----------------------------------------------------------------------===//

namespace {

/// One backtracking point of the stateless DFS.
struct PathEntry {
  std::vector<ThreadId> Enabled;
  size_t Chosen = 0;
};

/// Follows the recorded path; beyond it, picks the first enabled thread
/// and records a new backtracking point. Aborts at the depth bound.
class DfsPolicy : public SchedulePolicy {
public:
  DfsPolicy(std::vector<PathEntry> &Path, unsigned DepthBound)
      : Path(Path), DepthBound(DepthBound) {}

  ThreadId pick(const SchedPoint &P) override {
    if (DepthBound != 0 && P.Index >= DepthBound) {
      Truncated = true;
      return AbortExecution;
    }
    if (P.Index < Path.size()) {
      const PathEntry &E = Path[P.Index];
      ICB_ASSERT(E.Enabled == P.Enabled,
                 "DFS replay divergence (nondeterministic test?)");
      return E.Enabled[E.Chosen];
    }
    Path.push_back({P.Enabled, 0});
    return P.Enabled.front();
  }

  bool Truncated = false;

private:
  std::vector<PathEntry> &Path;
  unsigned DepthBound;
};

/// Runs one complete DFS round; returns true if any execution hit the
/// depth bound (i.e. the bound actually truncated the space).
bool runDfsRound(const TestCase &Test, Scheduler &Sched,
                 ExploreAccounting &Acct, unsigned DepthBound) {
  std::vector<PathEntry> Path;
  bool AnyTruncated = false;
  while (!Acct.limitHit()) {
    DfsPolicy Policy(Path, DepthBound);
    ExecutionResult R = Sched.run(Test, Policy);
    AnyTruncated |= Policy.Truncated;
    Acct.onExecution(R);
    // Backtrack: advance the deepest entry with an untried alternative.
    while (!Path.empty()) {
      PathEntry &E = Path.back();
      if (E.Chosen + 1 < E.Enabled.size()) {
        ++E.Chosen;
        break;
      }
      Path.pop_back();
    }
    if (Path.empty())
      break;
  }
  return AnyTruncated;
}

} // namespace

ExploreResult DfsExplorer::explore(const TestCase &Test) {
  ExploreAccounting Acct(Opts.Limits);
  Scheduler Sched(Opts.Exec);
  bool Truncated = runDfsRound(Test, Sched, Acct, DepthBound);
  return Acct.finish(!Truncated);
}

std::string DfsExplorer::name() const {
  if (DepthBound != 0)
    return strFormat("db:%u", DepthBound);
  return "dfs";
}

ExploreResult IdfsExplorer::explore(const TestCase &Test) {
  ExploreAccounting Acct(Opts.Limits);
  Scheduler Sched(Opts.Exec);
  unsigned Bound = InitialBound;
  bool Completed = false;
  while (!Acct.limitHit()) {
    bool Truncated = runDfsRound(Test, Sched, Acct, Bound);
    if (!Truncated) {
      Completed = true; // The whole space fit inside the bound.
      break;
    }
    ICB_ASSERT(Increment > 0, "idfs increment must be positive");
    Bound += Increment;
  }
  return Acct.finish(Completed);
}

std::string IdfsExplorer::name() const {
  return strFormat("idfs-%u", InitialBound);
}

//===----------------------------------------------------------------------===//
// RandomExplorer
//===----------------------------------------------------------------------===//

namespace {

class RandomPolicy : public SchedulePolicy {
public:
  explicit RandomPolicy(Xoshiro256 &Rng) : Rng(Rng) {}

  ThreadId pick(const SchedPoint &P) override {
    return P.Enabled[Rng.pickIndex(P.Enabled.size())];
  }

private:
  Xoshiro256 &Rng;
};

/// Stress-like scheduling: keep running the previous thread until its
/// geometric time slice expires or it blocks, then pick uniformly. This
/// is what an OS scheduler under stress load approximates: long slices,
/// occasional coarse preemptions.
class RandomSlicePolicy : public SchedulePolicy {
public:
  RandomSlicePolicy(Xoshiro256 &Rng, unsigned MeanSlice)
      : Rng(Rng), MeanSlice(MeanSlice) {}

  ThreadId pick(const SchedPoint &P) override {
    bool SliceExpired = Rng.nextBounded(MeanSlice) == 0;
    if (P.Last != InvalidThread && P.LastEnabled && !SliceExpired)
      return P.Last;
    return P.Enabled[Rng.pickIndex(P.Enabled.size())];
  }

private:
  Xoshiro256 &Rng;
  unsigned MeanSlice;
};

} // namespace

ExploreResult RandomExplorer::explore(const TestCase &Test) {
  ExploreAccounting Acct(Opts.Limits);
  Scheduler Sched(Opts.Exec);
  Xoshiro256 Rng(Seed);
  for (uint64_t I = 0; I != Executions && !Acct.limitHit(); ++I) {
    ExecutionResult R;
    if (StressSlices) {
      RandomSlicePolicy Policy(Rng, MeanSlice);
      R = Sched.run(Test, Policy);
    } else {
      RandomPolicy Policy(Rng);
      R = Sched.run(Test, Policy);
    }
    Acct.onExecution(R);
  }
  return Acct.finish(/*Completed=*/false);
}

//===----------------------------------------------------------------------===//
// Replay helpers
//===----------------------------------------------------------------------===//

ExecutionResult icb::rt::replaySchedule(const TestCase &Test,
                                        const trace::Schedule &Sched,
                                        Scheduler::Options ExecOpts) {
  std::vector<ThreadId> Prefix;
  Prefix.reserve(Sched.length());
  for (const trace::ScheduleEntry &E : Sched.entries())
    Prefix.push_back(E.Tid);
  ReplayPolicy Policy(std::move(Prefix));
  Scheduler S(ExecOpts);
  return S.run(Test, Policy);
}

std::string icb::rt::renderBugTrace(const TestCase &Test, const RtBug &Bug,
                                    Scheduler::Options ExecOpts) {
  ExecOpts.CollectStepText = true;
  ExecutionResult R = replaySchedule(Test, Bug.Sched, ExecOpts);
  std::vector<trace::TraceStep> Steps;
  Steps.reserve(R.StepText.size());
  for (size_t I = 0; I != R.StepText.size(); ++I) {
    trace::TraceStep Step;
    const trace::ScheduleEntry &E = R.Sched.entry(I);
    Step.Tid = E.Tid;
    Step.ThreadName = R.StepThreadNames[I];
    Step.Description = R.StepText[I];
    Step.Preemption = E.Preemption;
    Step.ContextSwitch = E.ContextSwitch;
    Steps.push_back(std::move(Step));
  }
  std::string Title = strFormat("%s: %s", runStatusName(R.Status),
                                R.Message.c_str());
  return trace::TraceWriter::render(Title, Steps);
}
