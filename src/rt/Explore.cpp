//===- rt/Explore.cpp - Stateless exploration of runtime tests ------------===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//

#include "rt/Explore.h"
#include "obs/PhaseTimer.h"
#include "rt/ReplayExecutor.h"
#include "search/IcbEngine.h"
#include "search/StateCache.h"
#include "support/Debug.h"
#include "support/Format.h"
#include "support/Prng.h"
#include "support/WorkerPool.h"
#include "trace/TraceWriter.h"
#include <algorithm>
#include <memory>

using namespace icb;
using namespace icb::rt;

Explorer::~Explorer() = default;

namespace {

/// Shared accounting of the non-ICB explorers (DFS, idfs, random): stats,
/// fingerprint coverage, bug deduplication (keyed by kind+message,
/// keeping the fewest-preemption exposure), and — when a registry is
/// passed through ExploreOptions — the same observability counters the
/// ICB engine records (single shard; these explorers are sequential).
class ExploreAccounting {
public:
  ExploreAccounting(const ExploreLimits &Limits, obs::MetricShard *Shard)
      : Limits(Limits), Shard(Shard) {}

  /// Folds one finished execution in; returns true when a limit was hit.
  bool onExecution(const ExecutionResult &R) {
    ++Stats.Executions;
    Stats.TotalSteps += R.Steps;
    Stats.StepsPerExecution.observe(R.Steps);
    Stats.BlockingPerExecution.observe(R.BlockingOps);
    Stats.PreemptionsPerExecution.observe(R.Preemptions);
    Stats.PreemptionHistogram.increment(R.Preemptions);
    Stats.ThreadsPerExecution.observe(R.ThreadsUsed);
    uint64_t NewDigests = 0;
    for (uint64_t Digest : R.StepFingerprints)
      NewDigests += Visited.insert(Digest);
    obs::count(Shard, obs::Counter::SeenMiss, NewDigests);
    obs::count(Shard, obs::Counter::SeenHit,
               R.StepFingerprints.size() - NewDigests);
    if (Terminal.insert(R.Fingerprint))
      obs::count(Shard, obs::Counter::TerminalMiss);
    else
      obs::count(Shard, obs::Counter::TerminalHit);
    // Every execution of these explorers is one complete chain starting
    // from the root (no prefix replay), so Chains mirrors Executions.
    obs::count(Shard, obs::Counter::Chains);
    ICB_OBS(Shard, Shard->ExecutionsPerBound.increment(R.Preemptions));
    Sampler.observe(Stats.Coverage, Stats.Executions, Visited.size());

    if (isErrorStatus(R.Status)) {
      Bugs.add(bugFromResult(R));
      if (Limits.StopAtFirstBug)
        LimitHit = true;
    }
    if (Stats.Executions >= Limits.MaxExecutions)
      LimitHit = true;
    return LimitHit;
  }

  bool limitHit() const { return LimitHit; }
  obs::MetricShard *shard() const { return Shard; }

  ExploreResult finish(bool Completed) {
    Sampler.finish(Stats.Coverage);
    Stats.DistinctStates = Visited.size();
    Stats.DistinctTerminalStates = Terminal.size();
    Stats.Completed = Completed && !LimitHit;
    ExploreResult Result;
    Result.Stats = std::move(Stats);
    Result.Bugs = Bugs.take();
    return Result;
  }

  ExploreStats Stats;

private:
  ExploreLimits Limits;
  obs::MetricShard *Shard;
  CoverageSampler<CoveragePoint> Sampler;
  search::StateCache Visited;
  search::StateCache Terminal;
  search::BugCollector Bugs;
  bool LimitHit = false;
};

/// Forces a recorded prefix, then runs the canonical nonpreemptive
/// continuation. Used by replaySchedule/renderBugTrace.
class ReplayPolicy : public SchedulePolicy {
public:
  explicit ReplayPolicy(std::vector<ThreadId> Prefix)
      : Prefix(std::move(Prefix)) {}

  ThreadId pick(const SchedPoint &P) override {
    if (P.Index < Prefix.size()) {
      ThreadId Tid = Prefix[P.Index];
      ICB_ASSERT(std::find(P.Enabled.begin(), P.Enabled.end(), Tid) !=
                     P.Enabled.end(),
                 "replay divergence: recorded thread not enabled (the test "
                 "is nondeterministic)");
      return Tid;
    }
    return Fallback.pick(P);
  }

private:
  std::vector<ThreadId> Prefix;
  NonPreemptivePolicy Fallback;
};

/// The single metric shard of a sequential explorer (these explorers run
/// on the calling thread), or null when no registry was supplied.
obs::MetricShard *singleShard(const ExploreOptions &Opts) {
  if (!Opts.Metrics)
    return nullptr;
  Opts.Metrics->ensureShards(1);
  return &Opts.Metrics->shard(0);
}

} // namespace

//===----------------------------------------------------------------------===//
// IcbExplorer
//===----------------------------------------------------------------------===//

ExploreResult IcbExplorer::explore(const TestCase &Test) {
  search::IcbEngineOptions EngineOpts;
  EngineOpts.Limits = Opts.Limits;
  EngineOpts.Policy = Opts.Policy;
  EngineOpts.Shards = Opts.Shards;
  // Canonical bug reports make a Jobs=1 run byte-comparable to a Jobs=N
  // run of the same test.
  EngineOpts.CanonicalBugs = true;
  EngineOpts.Observer = Opts.Observer;
  EngineOpts.Resume = Opts.Resume;
  EngineOpts.Metrics = Opts.Metrics;
  EngineOpts.Lease = Opts.Lease;

  if (Opts.Jobs == 1 || Opts.Lease == search::LeaseMode::Roots) {
    ReplayExecutor Executor(Test, Opts.Exec, Opts.Por);
    return search::runSequentialIcbEngine(Executor, EngineOpts);
  }

  unsigned Jobs = Opts.Jobs ? Opts.Jobs : WorkerPool::defaultWorkers();
  std::vector<std::unique_ptr<ReplayExecutor>> Executors;
  Executors.reserve(Jobs);
  for (unsigned I = 0; I != Jobs; ++I)
    Executors.push_back(
        std::make_unique<ReplayExecutor>(Test, Opts.Exec, Opts.Por));
  return search::runParallelIcbEngine(Executors, EngineOpts);
}

//===----------------------------------------------------------------------===//
// DfsExplorer / IdfsExplorer
//===----------------------------------------------------------------------===//

namespace {

/// One backtracking point of the stateless DFS.
struct PathEntry {
  std::vector<ThreadId> Enabled;
  size_t Chosen = 0;
};

/// Follows the recorded path; beyond it, picks the first enabled thread
/// and records a new backtracking point. Aborts at the depth bound.
class DfsPolicy : public SchedulePolicy {
public:
  DfsPolicy(std::vector<PathEntry> &Path, unsigned DepthBound)
      : Path(Path), DepthBound(DepthBound) {}

  ThreadId pick(const SchedPoint &P) override {
    if (DepthBound != 0 && P.Index >= DepthBound) {
      Truncated = true;
      return AbortExecution;
    }
    if (P.Index < Path.size()) {
      const PathEntry &E = Path[P.Index];
      ICB_ASSERT(E.Enabled == P.Enabled,
                 "DFS replay divergence (nondeterministic test?)");
      return E.Enabled[E.Chosen];
    }
    Path.push_back({P.Enabled, 0});
    return P.Enabled.front();
  }

  bool Truncated = false;

private:
  std::vector<PathEntry> &Path;
  unsigned DepthBound;
};

/// Runs one complete DFS round; returns true if any execution hit the
/// depth bound (i.e. the bound actually truncated the space).
bool runDfsRound(const TestCase &Test, Scheduler &Sched,
                 ExploreAccounting &Acct, unsigned DepthBound) {
  std::vector<PathEntry> Path;
  bool AnyTruncated = false;
  while (!Acct.limitHit()) {
    DfsPolicy Policy(Path, DepthBound);
    ExecutionResult R;
    {
      obs::ScopedPhase Timer(Acct.shard(), obs::Phase::Execute);
      R = Sched.run(Test, Policy);
    }
    AnyTruncated |= Policy.Truncated;
    Acct.onExecution(R);
    // Backtrack: advance the deepest entry with an untried alternative.
    while (!Path.empty()) {
      PathEntry &E = Path.back();
      if (E.Chosen + 1 < E.Enabled.size()) {
        ++E.Chosen;
        break;
      }
      Path.pop_back();
    }
    if (Path.empty())
      break;
  }
  return AnyTruncated;
}

} // namespace

ExploreResult DfsExplorer::explore(const TestCase &Test) {
  ExploreAccounting Acct(Opts.Limits, singleShard(Opts));
  Scheduler Sched(Opts.Exec);
  Sched.setMetricShard(Acct.shard());
  bool Truncated = runDfsRound(Test, Sched, Acct, DepthBound);
  return Acct.finish(!Truncated);
}

std::string DfsExplorer::name() const {
  if (DepthBound != 0)
    return strFormat("db:%u", DepthBound);
  return "dfs";
}

ExploreResult IdfsExplorer::explore(const TestCase &Test) {
  ExploreAccounting Acct(Opts.Limits, singleShard(Opts));
  Scheduler Sched(Opts.Exec);
  Sched.setMetricShard(Acct.shard());
  unsigned Bound = InitialBound;
  bool Completed = false;
  while (!Acct.limitHit()) {
    bool Truncated = runDfsRound(Test, Sched, Acct, Bound);
    if (!Truncated) {
      Completed = true; // The whole space fit inside the bound.
      break;
    }
    ICB_ASSERT(Increment > 0, "idfs increment must be positive");
    Bound += Increment;
  }
  return Acct.finish(Completed);
}

std::string IdfsExplorer::name() const {
  return strFormat("idfs-%u", InitialBound);
}

//===----------------------------------------------------------------------===//
// RandomExplorer
//===----------------------------------------------------------------------===//

namespace {

class RandomPolicy : public SchedulePolicy {
public:
  explicit RandomPolicy(Xoshiro256 &Rng) : Rng(Rng) {}

  ThreadId pick(const SchedPoint &P) override {
    return P.Enabled[Rng.pickIndex(P.Enabled.size())];
  }

private:
  Xoshiro256 &Rng;
};

/// Stress-like scheduling: keep running the previous thread until its
/// geometric time slice expires or it blocks, then pick uniformly. This
/// is what an OS scheduler under stress load approximates: long slices,
/// occasional coarse preemptions.
class RandomSlicePolicy : public SchedulePolicy {
public:
  RandomSlicePolicy(Xoshiro256 &Rng, unsigned MeanSlice)
      : Rng(Rng), MeanSlice(MeanSlice) {}

  ThreadId pick(const SchedPoint &P) override {
    bool SliceExpired = Rng.nextBounded(MeanSlice) == 0;
    if (P.Last != InvalidThread && P.LastEnabled && !SliceExpired)
      return P.Last;
    return P.Enabled[Rng.pickIndex(P.Enabled.size())];
  }

private:
  Xoshiro256 &Rng;
  unsigned MeanSlice;
};

} // namespace

ExploreResult RandomExplorer::explore(const TestCase &Test) {
  ExploreAccounting Acct(Opts.Limits, singleShard(Opts));
  Scheduler Sched(Opts.Exec);
  Sched.setMetricShard(Acct.shard());
  Xoshiro256 Rng(Seed);
  for (uint64_t I = 0; I != Executions && !Acct.limitHit(); ++I) {
    ExecutionResult R;
    {
      obs::ScopedPhase Timer(Acct.shard(), obs::Phase::Execute);
      if (StressSlices) {
        RandomSlicePolicy Policy(Rng, MeanSlice);
        R = Sched.run(Test, Policy);
      } else {
        RandomPolicy Policy(Rng);
        R = Sched.run(Test, Policy);
      }
    }
    Acct.onExecution(R);
  }
  return Acct.finish(/*Completed=*/false);
}

//===----------------------------------------------------------------------===//
// Replay helpers
//===----------------------------------------------------------------------===//

ExecutionResult icb::rt::replaySchedule(const TestCase &Test,
                                        const trace::Schedule &Sched,
                                        Scheduler::Options ExecOpts) {
  std::vector<ThreadId> Prefix;
  Prefix.reserve(Sched.length());
  for (const trace::ScheduleEntry &E : Sched.entries())
    Prefix.push_back(E.Tid);
  ReplayPolicy Policy(std::move(Prefix));
  Scheduler S(ExecOpts);
  return S.run(Test, Policy);
}

std::string icb::rt::renderBugTrace(const TestCase &Test, const RtBug &Bug,
                                    Scheduler::Options ExecOpts) {
  ExecOpts.CollectStepText = true;
  ExecutionResult R = replaySchedule(Test, Bug.Sched, ExecOpts);
  std::vector<trace::TraceStep> Steps;
  Steps.reserve(R.StepText.size());
  for (size_t I = 0; I != R.StepText.size(); ++I) {
    trace::TraceStep Step;
    const trace::ScheduleEntry &E = R.Sched.entry(I);
    Step.Tid = E.Tid;
    Step.ThreadName = R.StepThreadNames[I];
    Step.Description = R.StepText[I];
    Step.Preemption = E.Preemption;
    Step.ContextSwitch = E.ContextSwitch;
    Steps.push_back(std::move(Step));
  }
  std::string Title = strFormat("%s: %s", runStatusName(R.Status),
                                R.Message.c_str());
  return trace::TraceWriter::render(Title, Steps);
}
