//===- rt/CondVar.cpp - Controlled condition variables ---------------------===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//

#include "rt/CondVar.h"
#include "rt/Scheduler.h"
#include "support/Debug.h"
#include "support/Format.h"
#include <algorithm>

using namespace icb;
using namespace icb::rt;

CondVar::CondVar(std::string Name) : SyncObject("condvar", std::move(Name)) {}

bool CondVar::canProceed(const PendingOp &Op, ThreadId Tid) const {
  if (Op.Kind != OpKind::CondWait)
    return true;
  for (size_t I = 0; I != Waiters.size(); ++I)
    if (Waiters[I] == Tid)
      // A timed waiter is always eligible: scheduling it before a signal
      // arrives is the timeout/spurious-wakeup branch of the schedule.
      return Signaled[I] || Timed[I];
  // Not registered (already dequeued): runnable.
  return true;
}

void CondVar::wait(Mutex &M) {
  Scheduler *S = Scheduler::current();
  ICB_ASSERT(S, "condvar wait outside a controlled execution");
  checkAlive("wait");
  ThreadId Me = S->runningThread();
  if (!M.heldBy(Me))
    S->failExecution(RunStatus::AssertFailed,
                     strFormat("condvar '%s': wait() without holding the "
                               "mutex '%s'",
                               name().c_str(), M.name().c_str()));
  // Register on the wait queue *before* releasing the mutex: a signal
  // delivered between the unlock and our park must not be lost.
  Waiters.push_back(Me);
  Signaled.push_back(false);
  Timed.push_back(false);
  M.unlock();
  opPoint(OpKind::CondWait, "condwait");
  // Signaled: dequeue ourselves and re-acquire the mutex.
  for (size_t I = 0; I != Waiters.size(); ++I)
    if (Waiters[I] == Me) {
      Waiters.erase(Waiters.begin() + static_cast<ptrdiff_t>(I));
      Signaled.erase(Signaled.begin() + static_cast<ptrdiff_t>(I));
      Timed.erase(Timed.begin() + static_cast<ptrdiff_t>(I));
      break;
    }
  M.lock();
}

bool CondVar::timedWait(Mutex &M) {
  Scheduler *S = Scheduler::current();
  ICB_ASSERT(S, "condvar timedWait outside a controlled execution");
  checkAlive("timedWait");
  ThreadId Me = S->runningThread();
  if (!M.heldBy(Me))
    S->failExecution(RunStatus::AssertFailed,
                     strFormat("condvar '%s': timedWait() without holding "
                               "the mutex '%s'",
                               name().c_str(), M.name().c_str()));
  Waiters.push_back(Me);
  Signaled.push_back(false);
  Timed.push_back(true);
  M.unlock();
  opPoint(OpKind::CondWait, "condtimedwait");
  // Woken either by a signal or by the modeled timeout (the scheduler
  // picked us while unsignaled — timed waiters are always enabled).
  bool ConsumedSignal = false;
  for (size_t I = 0; I != Waiters.size(); ++I)
    if (Waiters[I] == Me) {
      ConsumedSignal = Signaled[I];
      Waiters.erase(Waiters.begin() + static_cast<ptrdiff_t>(I));
      Signaled.erase(Signaled.begin() + static_cast<ptrdiff_t>(I));
      Timed.erase(Timed.begin() + static_cast<ptrdiff_t>(I));
      break;
    }
  M.lock();
  return ConsumedSignal;
}

void CondVar::signal() {
  opPoint(OpKind::CondSignal, "signal");
  // Wake the first still-unsignaled waiter (FIFO, like a fair queue; the
  // schedule explorer varies who *runs* first anyway).
  for (size_t I = 0; I != Waiters.size(); ++I)
    if (!Signaled[I]) {
      Signaled[I] = true;
      return;
    }
  // No waiter: the signal is lost (condition variables have no memory) —
  // exactly the semantics whose misuse the checker is meant to catch.
}

void CondVar::broadcast() {
  opPoint(OpKind::CondSignal, "broadcast");
  for (size_t I = 0; I != Waiters.size(); ++I)
    Signaled[I] = true;
}

bool CondVar::hasSignalFor(ThreadId Tid) const {
  for (size_t I = 0; I != Waiters.size(); ++I)
    if (Waiters[I] == Tid)
      return Signaled[I];
  return false;
}
