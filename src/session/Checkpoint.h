//===- session/Checkpoint.h - Durable checkpoint / resume -------*- C++ -*-===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Durable snapshots of an ICB run. A checkpoint file carries
///
///   * CheckpointMeta — enough of the invocation (benchmark, bug, executor
///     form, strategy, jobs, detector configuration, limits) to refuse a
///     `--resume` under a different configuration, and to let unset flags
///     adopt the recorded values;
///   * the engine's safe-point EngineSnapshot (frontier queues, stats,
///     digest sets, sampler cursor, bugs so far);
///   * accumulated wall-clock across all segments of the run.
///
/// Writes are atomic (write-tmp, fsync, rename), so a SIGKILL at any
/// instant leaves either the previous checkpoint or the new one — never a
/// torn file. CheckpointSink is the search::EngineObserver implementation
/// the drivers talk to: it fires every N executions, flushes a final
/// snapshot on SIGINT/SIGTERM via SignalGuard's cooperative-stop flag, and
/// owns all file I/O so the engine never blocks on persistence decisions.
///
//===----------------------------------------------------------------------===//

#ifndef ICB_SESSION_CHECKPOINT_H
#define ICB_SESSION_CHECKPOINT_H

#include "search/EngineObserver.h"
#include "search/SearchTypes.h"
#include "session/Json.h"
#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

namespace icb::session {

/// The invocation identity a checkpoint was taken under. Resuming under a
/// conflicting identity is a hard CLI error (the search spaces would
/// differ and "resume" would be a lie).
struct CheckpointMeta {
  std::string Benchmark;
  std::string Bug;      ///< Bug variant label, or "default".
  std::string Form;     ///< "rt" (stateless) or "vm" (model VM).
  std::string Strategy; ///< Search strategy name (must be an ICB one).
  unsigned Jobs = 1;
  unsigned Shards = 0; ///< 0 = driver default.
  uint64_t Seed = 0;
  bool EveryAccess = false;  ///< rt: schedule points at every access.
  std::string Detector;      ///< rt: race detector name.
  /// Bounded POR (sleep sets). Changes which items exist in the frontier
  /// queues, so resuming with the other setting is a conflict.
  bool Por = false;
  /// Bound policy family name ("preemption", "delay", "thread") and the
  /// thread policy's variable cap (0 = off). The policy decides how items
  /// are charged across bounds, so resuming under a different policy is a
  /// conflict. Checkpoint format v4; v1-v3 files imply "preemption".
  std::string Bound = "preemption";
  unsigned VarBound = 0;
  search::SearchLimits Limits;
};

/// Everything in one checkpoint file.
struct CheckpointData {
  CheckpointMeta Meta;
  search::EngineSnapshot Snap;
  uint64_t WallMillis = 0; ///< Accumulated across all resumed segments.
};

/// Meta (de)serialization, shared with the distributed hello handshake:
/// a coordinator sends its CheckpointMeta to every joiner so unset joiner
/// flags adopt the coordinator's configuration (the `--resume` rules).
JsonValue metaToJson(const CheckpointMeta &Meta);
bool metaFromJson(const JsonValue &V, CheckpointMeta &Out);

/// The checkpoint file format version (distributed hellos are versioned
/// against it: a coordinator refuses joiners speaking another format).
uint64_t checkpointFormatVersion();

/// The single checkpoint file inside a `--checkpoint-dir`.
std::string checkpointPath(const std::string &Dir);

bool saveCheckpoint(const std::string &Path, const CheckpointData &Data,
                    std::string *Error);
bool loadCheckpoint(const std::string &Path, CheckpointData &Out,
                    std::string *Error);

/// Scoped SIGINT/SIGTERM trap. While alive, the first signal only raises a
/// flag — the drivers poll it via EngineObserver::stopRequested(), finish
/// in-flight work, and flush a resumable checkpoint before exiting; a
/// second signal falls through to the restored default disposition so a
/// wedged run can still be killed.
class SignalGuard {
public:
  SignalGuard();
  ~SignalGuard();

  SignalGuard(const SignalGuard &) = delete;
  SignalGuard &operator=(const SignalGuard &) = delete;

  static bool triggered();

private:
  void (*PrevInt)(int);
  void (*PrevTerm)(int);
};

/// The drivers' persistence observer: periodic + stop-triggered + final
/// checkpoints into one file, wall-clock accounting across segments.
class CheckpointSink : public search::EngineObserver {
public:
  /// \p Every is the checkpoint period in executions (0 = only on stop and
  /// completion). \p StartExecutions / \p PriorWallMillis carry the
  /// restored totals when this segment resumes an earlier one.
  CheckpointSink(std::string Dir, uint64_t Every, CheckpointMeta Meta,
                 uint64_t StartExecutions = 0, uint64_t PriorWallMillis = 0);

  bool checkpointDue(uint64_t Executions) override;
  bool stopRequested() override { return SignalGuard::triggered(); }
  void onCheckpoint(const search::EngineSnapshot &Snap) override;

  /// Wall-clock of the whole run so far: prior segments + this one.
  uint64_t wallMillis() const;

  /// False once any checkpoint write failed; the first error sticks.
  bool ok() const { return ErrorMsg.empty(); }
  const std::string &error() const { return ErrorMsg; }

private:
  std::string Dir;
  uint64_t Every;
  CheckpointMeta Meta;
  uint64_t PriorWallMillis;
  std::chrono::steady_clock::time_point SegmentStart;
  std::atomic<uint64_t> LastSnapExecutions;
  std::string ErrorMsg;
};

} // namespace icb::session

#endif // ICB_SESSION_CHECKPOINT_H
