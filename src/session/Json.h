//===- session/Json.h - Minimal JSON value, writer, parser ------*- C++ -*-===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The session subsystem's JSON layer: one value type, a deterministic
/// pretty-printer, a strict recursive-descent parser, and the atomic file
/// helpers every session artifact (manifest, checkpoint, repro) goes
/// through. Deliberately minimal — no external dependency, no DOM tricks:
///
///   * objects preserve insertion order, so a written file is stable and
///     diffable across runs;
///   * numbers are unsigned 64-bit integers only. Every numeric field in
///     our formats is a count; refusing doubles means no value is ever
///     silently rounded through a double (state digests would lose bits
///     past 2^53). Digest arrays are additionally stored as hex strings so
///     generic tools (jq, python) read them losslessly too;
///   * the parser rejects anything it does not understand — loading a
///     corrupt checkpoint or repro must fail cleanly, never misparse.
///
//===----------------------------------------------------------------------===//

#ifndef ICB_SESSION_JSON_H
#define ICB_SESSION_JSON_H

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace icb::session {

/// One JSON value. A small tagged struct rather than a variant: the
/// session formats are tiny and the flat layout keeps the code obvious.
struct JsonValue {
  enum class Kind : uint8_t { Null, Bool, Number, String, Array, Object };
  using Member = std::pair<std::string, JsonValue>;

  Kind K = Kind::Null;
  bool B = false;
  uint64_t U = 0;
  std::string S;
  std::vector<JsonValue> Arr;
  std::vector<Member> Obj; ///< Insertion order preserved.

  static JsonValue null() { return {}; }
  static JsonValue boolean(bool Value) {
    JsonValue V;
    V.K = Kind::Bool;
    V.B = Value;
    return V;
  }
  static JsonValue number(uint64_t Value) {
    JsonValue V;
    V.K = Kind::Number;
    V.U = Value;
    return V;
  }
  static JsonValue str(std::string Value) {
    JsonValue V;
    V.K = Kind::String;
    V.S = std::move(Value);
    return V;
  }
  static JsonValue array() {
    JsonValue V;
    V.K = Kind::Array;
    return V;
  }
  static JsonValue object() {
    JsonValue V;
    V.K = Kind::Object;
    return V;
  }

  bool isNull() const { return K == Kind::Null; }
  bool isObject() const { return K == Kind::Object; }
  bool isArray() const { return K == Kind::Array; }

  /// Object member lookup; null when absent or not an object.
  const JsonValue *find(const std::string &Key) const;

  /// Appends/overwrites an object member (lookup is linear — fine at our
  /// member counts).
  JsonValue &set(const std::string &Key, JsonValue Value);

  // Typed getters: false (and untouched Out) when the member is missing
  // or has the wrong kind. Loaders use these to validate field-by-field.
  bool getU64(const std::string &Key, uint64_t &Out) const;
  bool getU32(const std::string &Key, uint32_t &Out) const;
  bool getBool(const std::string &Key, bool &Out) const;
  bool getString(const std::string &Key, std::string &Out) const;
};

/// Renders \p V as pretty-printed JSON (2-space indent, trailing newline
/// at top level is the caller's business).
std::string jsonWrite(const JsonValue &V);

/// Parses strict JSON (unsigned-integer numbers only); on failure returns
/// false and describes the problem in \p Error (if non-null).
bool jsonParse(const std::string &Text, JsonValue &Out, std::string *Error);

/// Encodes digests as a space-separated hex string ("a1b2 0 ff…"), the
/// lossless-in-every-tool representation of 64-bit values.
std::string digestsToHex(const std::vector<uint64_t> &Digests);

/// Like digestsToHex, but once \p CompactThreshold entries are reached
/// switches to the compact form "* base d1 d2 …": the digests sorted
/// ascending and delta-encoded (value_i = value_{i-1} + d_i), marked by
/// the leading "*". Digest fields are sets — their order is unspecified —
/// so sorting is lossless, and deltas between sorted uniform 64-bit
/// hashes are short: large visited sections shrink roughly 3x (checkpoint
/// format v3).
std::string digestsToHexCompact(const std::vector<uint64_t> &Digests,
                                size_t CompactThreshold);

/// Decodes either hex form (plain or "*"-compact).
bool digestsFromHex(const std::string &Text, std::vector<uint64_t> &Out);

/// Durably replaces \p Path: writes Path.tmp, flushes it to disk, then
/// renames over Path — a reader (or a resume after SIGKILL) sees either
/// the old complete file or the new complete file, never a torn one.
bool atomicWriteFile(const std::string &Path, const std::string &Content,
                     std::string *Error);

/// Reads a whole file; false (with \p Error) when unreadable.
bool readFile(const std::string &Path, std::string &Out, std::string *Error);

/// Creates \p Dir if it does not exist yet (one level, not recursive).
bool ensureDir(const std::string &Dir, std::string *Error);

} // namespace icb::session

#endif // ICB_SESSION_JSON_H
