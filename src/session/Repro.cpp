//===- session/Repro.cpp - Replayable bug-repro artifacts -----------------===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//

#include "session/Repro.h"
#include "rt/Explore.h"
#include "rt/ReplayExecutor.h"
#include "search/IcbCore.h"
#include "session/Json.h"
#include "session/Serial.h"
#include "support/Format.h"
#include <algorithm>
#include <cctype>

namespace icb::session {

//===----------------------------------------------------------------------===//
// File format
//===----------------------------------------------------------------------===//

static constexpr uint64_t ReproFormatVersion = 1;

std::string reproFileName(const ReproArtifact &A) {
  std::string Raw =
      A.Benchmark + "-" + A.Bug + "-" + search::bugKindName(A.Found.Kind);
  std::string Name;
  bool LastDash = true; // Suppress a leading dash too.
  for (char C : Raw) {
    if (std::isalnum(static_cast<unsigned char>(C))) {
      Name += static_cast<char>(std::tolower(static_cast<unsigned char>(C)));
      LastDash = false;
    } else if (!LastDash) {
      Name += '-';
      LastDash = true;
    }
  }
  while (!Name.empty() && Name.back() == '-')
    Name.pop_back();
  if (Name.empty())
    Name = "bug";
  return Name + ".icbrepro";
}

bool saveRepro(const std::string &Path, const ReproArtifact &A,
               std::string *Error) {
  JsonValue Doc = JsonValue::object();
  Doc.set("icb_repro", JsonValue::number(ReproFormatVersion));
  Doc.set("benchmark", JsonValue::str(A.Benchmark));
  Doc.set("bug", JsonValue::str(A.Bug));
  Doc.set("form", JsonValue::str(A.Form));
  Doc.set("every_access", JsonValue::boolean(A.EveryAccess));
  Doc.set("detector", JsonValue::str(A.Detector));
  // Optional: omitted for default preemption runs, so those artifacts
  // stay byte-identical to pre-policy-seam ones.
  if (!A.Bound.empty())
    Doc.set("bound", JsonValue::str(A.Bound));
  Doc.set("found", bugToJson(A.Found));
  return atomicWriteFile(Path, jsonWrite(Doc) + "\n", Error);
}

bool loadRepro(const std::string &Path, ReproArtifact &Out,
               std::string *Error) {
  std::string Text;
  if (!readFile(Path, Text, Error))
    return false;
  JsonValue Doc;
  if (!jsonParse(Text, Doc, Error))
    return false;
  uint64_t Version = 0;
  if (!Doc.getU64("icb_repro", Version) || Version != ReproFormatVersion) {
    if (Error)
      *Error = "not an icb repro artifact (or unsupported version)";
    return false;
  }
  const JsonValue *Found = Doc.find("found");
  if (!Doc.getString("benchmark", Out.Benchmark) ||
      !Doc.getString("bug", Out.Bug) || !Doc.getString("form", Out.Form) ||
      !Doc.getBool("every_access", Out.EveryAccess) ||
      !Doc.getString("detector", Out.Detector) || !Found ||
      !bugFromJson(*Found, Out.Found)) {
    if (Error)
      *Error = "malformed repro artifact: " + Path;
    return false;
  }
  // Optional: absent in artifacts from default preemption runs.
  if (Doc.find("bound") && !Doc.getString("bound", Out.Bound)) {
    if (Error)
      *Error = "malformed repro artifact: " + Path;
    return false;
  }
  if (Out.Form != "rt" && Out.Form != "vm") {
    if (Error)
      *Error = "repro artifact names unknown form '" + Out.Form + "'";
    return false;
  }
  return true;
}

bool reproBoundCompatible(const ReproArtifact &A,
                          const std::string &RequestedName,
                          std::string *Error) {
  if (RequestedName.empty())
    return true; // No explicit request: replay under any recorded policy.
  std::string Recorded = A.Bound.substr(0, A.Bound.find(':'));
  if (Recorded.empty())
    Recorded = "preemption";
  if (Recorded == RequestedName)
    return true;
  if (Error)
    *Error = strFormat("repro artifact was recorded under the '%s' bound "
                       "policy but --bound requests '%s'",
                       Recorded.c_str(), RequestedName.c_str());
  return false;
}

rt::Scheduler::Options reproExecOptions(const ReproArtifact &A) {
  rt::Scheduler::Options Opts;
  Opts.Mode = A.EveryAccess ? rt::SchedPointMode::EveryAccess
                            : rt::SchedPointMode::SyncOnly;
  if (A.Detector == "goldilocks")
    Opts.Detector = rt::DetectorKind::Goldilocks;
  else if (A.Detector == "none")
    Opts.Detector = rt::DetectorKind::None;
  else
    Opts.Detector = rt::DetectorKind::VectorClock;
  return Opts;
}

//===----------------------------------------------------------------------===//
// Replay
//===----------------------------------------------------------------------===//

static ReplayOutcome verdict(const ReproArtifact &A, bool BugFired,
                             search::Bug Observed, std::string Infeasible) {
  ReplayOutcome Out;
  if (!Infeasible.empty()) {
    Out.Detail = "schedule diverged: " + Infeasible;
    return Out;
  }
  Out.BugFired = BugFired;
  if (!BugFired) {
    Out.Detail = "replay completed without any bug";
    return Out;
  }
  Out.Observed = std::move(Observed);
  if (Out.Observed.Kind == A.Found.Kind &&
      Out.Observed.Message == A.Found.Message) {
    Out.Reproduced = true;
    Out.Detail = strFormat("reproduced: %s", Out.Observed.str().c_str());
  } else {
    Out.Detail =
        strFormat("different bug fired: expected {%s: %s}, got {%s: %s}",
                  search::bugKindName(A.Found.Kind), A.Found.Message.c_str(),
                  search::bugKindName(Out.Observed.Kind),
                  Out.Observed.Message.c_str());
  }
  return Out;
}

ReplayOutcome replayArtifactRt(const ReproArtifact &A,
                               const rt::TestCase &Test) {
  rt::ExecutionResult R =
      rt::replaySchedule(Test, A.Found.Sched, reproExecOptions(A));
  bool Fired = rt::isErrorStatus(R.Status);
  return verdict(A, Fired, Fired ? rt::bugFromResult(R) : search::Bug(), "");
}

ReplayOutcome replayArtifactVm(const ReproArtifact &A,
                               const vm::Program &Prog) {
  vm::Interp VM(Prog);
  vm::State S = VM.initialState();
  search::Bug Observed;
  vm::ThreadId Last = vm::InvalidThread;

  const std::vector<vm::ThreadId> &Sched = A.Found.Schedule;
  for (size_t I = 0; I < Sched.size(); ++I) {
    vm::ThreadId Tid = Sched[I];
    if (Tid >= Prog.Threads.size())
      return verdict(A, false, {},
                     strFormat("step %zu schedules unknown thread %u", I,
                               Tid));
    if (!VM.isEnabled(S, Tid))
      return verdict(A, false, {},
                     strFormat("step %zu: thread %u is not enabled", I, Tid));
    if (Last != vm::InvalidThread && Tid != Last && VM.isEnabled(S, Last))
      ++Observed.Preemptions;
    vm::StepResult R = VM.step(S, Tid);
    Observed.Schedule.push_back(Tid);
    Last = Tid;

    if (R.Status == vm::StepStatus::AssertFailed ||
        R.Status == vm::StepStatus::ModelError) {
      Observed.Kind = R.Status == vm::StepStatus::AssertFailed
                          ? search::BugKind::AssertFailure
                          : search::BugKind::ModelError;
      Observed.Message = R.Status == vm::StepStatus::AssertFailed
                             ? Prog.Messages[R.MsgId]
                             : R.ModelErrorText;
      Observed.Steps = Observed.Schedule.size();
      if (I + 1 != Sched.size())
        return verdict(A, false, {},
                       strFormat("bug fired early at step %zu of %zu: %s", I,
                                 Sched.size(), Observed.Message.c_str()));
      return verdict(A, true, std::move(Observed), "");
    }
  }

  // The schedule is exhausted without an error step: the only bug that can
  // legitimately end a schedule this way is a deadlock at its final state.
  Observed.Steps = Observed.Schedule.size();
  if (VM.enabledThreads(S).empty() && !S.allDone()) {
    Observed.Kind = search::BugKind::Deadlock;
    Observed.Message = search::detail::describeDeadlock(VM, S);
    return verdict(A, true, std::move(Observed), "");
  }
  return verdict(A, false, {}, "");
}

} // namespace icb::session
