//===- session/Manifest.h - Machine-readable run manifest -------*- C++ -*-===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The JSON run manifest: the single machine-readable summary of an
/// icb_check (or bench harness) invocation — configuration, one record per
/// executed run (stats, per-bound coverage, coverage curve, bugs, repro
/// artifact paths, wall-clock), written incrementally. "Incrementally"
/// means the whole document is atomically rewritten at every progress
/// point (run start, bound completion, run end); since writes go through
/// the write-tmp-fsync-rename path, a reader — or a post-crash inspection
/// — always sees a complete, valid document describing progress so far.
///
//===----------------------------------------------------------------------===//

#ifndef ICB_SESSION_MANIFEST_H
#define ICB_SESSION_MANIFEST_H

#include "search/SearchTypes.h"
#include "session/Json.h"
#include <string>

namespace icb::session {

/// Builds one run record for the manifest's "runs" array. \p WallMillis
/// is the run's wall-clock in milliseconds (integral — millisecond
/// resolution keeps the number format uniform).
JsonValue runRecord(const std::string &Benchmark, const std::string &BugLabel,
                    const std::string &Form, const std::string &Strategy,
                    unsigned Jobs, const search::SearchResult &Result,
                    uint64_t WallMillis);

/// An incrementally (re)written manifest document.
class Manifest {
public:
  explicit Manifest(std::string Tool);

  /// Records the invocation configuration (flag name -> value object).
  void setConfig(JsonValue Config);

  /// Appends a run record and returns its index.
  size_t addRun(JsonValue Run);

  /// Replaces the record at \p Index (progress updates of a live run).
  void updateRun(size_t Index, JsonValue Run);

  /// Renders the whole document.
  std::string str() const;

  /// Atomically (re)writes the document to \p Path.
  bool writeTo(const std::string &Path, std::string *Error) const;

private:
  JsonValue Root;
};

} // namespace icb::session

#endif // ICB_SESSION_MANIFEST_H
