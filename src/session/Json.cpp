//===- session/Json.cpp - Minimal JSON value, writer, parser --------------===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//

#include "session/Json.h"
#include "support/Format.h"
#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#ifdef _WIN32
#include <direct.h>
#else
#include <sys/stat.h>
#include <unistd.h>
#endif

using namespace icb;
using namespace icb::session;

//===----------------------------------------------------------------------===//
// JsonValue accessors
//===----------------------------------------------------------------------===//

const JsonValue *JsonValue::find(const std::string &Key) const {
  if (K != Kind::Object)
    return nullptr;
  for (const Member &M : Obj)
    if (M.first == Key)
      return &M.second;
  return nullptr;
}

JsonValue &JsonValue::set(const std::string &Key, JsonValue Value) {
  K = Kind::Object;
  for (Member &M : Obj)
    if (M.first == Key) {
      M.second = std::move(Value);
      return M.second;
    }
  Obj.emplace_back(Key, std::move(Value));
  return Obj.back().second;
}

bool JsonValue::getU64(const std::string &Key, uint64_t &Out) const {
  const JsonValue *V = find(Key);
  if (!V || V->K != Kind::Number)
    return false;
  Out = V->U;
  return true;
}

bool JsonValue::getU32(const std::string &Key, uint32_t &Out) const {
  uint64_t Wide = 0;
  if (!getU64(Key, Wide) || Wide > UINT32_MAX)
    return false;
  Out = static_cast<uint32_t>(Wide);
  return true;
}

bool JsonValue::getBool(const std::string &Key, bool &Out) const {
  const JsonValue *V = find(Key);
  if (!V || V->K != Kind::Bool)
    return false;
  Out = V->B;
  return true;
}

bool JsonValue::getString(const std::string &Key, std::string &Out) const {
  const JsonValue *V = find(Key);
  if (!V || V->K != Kind::String)
    return false;
  Out = V->S;
  return true;
}

//===----------------------------------------------------------------------===//
// Writer
//===----------------------------------------------------------------------===//

namespace {

void appendEscaped(std::string &Out, const std::string &S) {
  Out += '"';
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20)
        Out += strFormat("\\u%04x", C);
      else
        Out += C;
    }
  }
  Out += '"';
}

void writeValue(std::string &Out, const JsonValue &V, unsigned Depth) {
  auto Indent = [&](unsigned D) { Out.append(2 * D, ' '); };
  switch (V.K) {
  case JsonValue::Kind::Null:
    Out += "null";
    return;
  case JsonValue::Kind::Bool:
    Out += V.B ? "true" : "false";
    return;
  case JsonValue::Kind::Number:
    Out += std::to_string(V.U);
    return;
  case JsonValue::Kind::String:
    appendEscaped(Out, V.S);
    return;
  case JsonValue::Kind::Array: {
    if (V.Arr.empty()) {
      Out += "[]";
      return;
    }
    // Arrays of scalars stay on one line (digit-heavy coverage curves
    // would otherwise dominate the file); arrays of containers nest.
    bool Nested = false;
    for (const JsonValue &E : V.Arr)
      Nested |= E.K == JsonValue::Kind::Array || E.isObject();
    Out += '[';
    for (size_t I = 0; I != V.Arr.size(); ++I) {
      if (I)
        Out += ',';
      if (Nested) {
        Out += '\n';
        Indent(Depth + 1);
      } else if (I) {
        Out += ' ';
      }
      writeValue(Out, V.Arr[I], Depth + 1);
    }
    if (Nested) {
      Out += '\n';
      Indent(Depth);
    }
    Out += ']';
    return;
  }
  case JsonValue::Kind::Object: {
    if (V.Obj.empty()) {
      Out += "{}";
      return;
    }
    Out += '{';
    for (size_t I = 0; I != V.Obj.size(); ++I) {
      if (I)
        Out += ',';
      Out += '\n';
      Indent(Depth + 1);
      appendEscaped(Out, V.Obj[I].first);
      Out += ": ";
      writeValue(Out, V.Obj[I].second, Depth + 1);
    }
    Out += '\n';
    Indent(Depth);
    Out += '}';
    return;
  }
  }
}

} // namespace

std::string icb::session::jsonWrite(const JsonValue &V) {
  std::string Out;
  writeValue(Out, V, 0);
  Out += '\n';
  return Out;
}

//===----------------------------------------------------------------------===//
// Parser
//===----------------------------------------------------------------------===//

namespace {

class Parser {
public:
  Parser(const std::string &Text, std::string *Error)
      : Text(Text), Error(Error) {}

  bool parseTop(JsonValue &Out) {
    skipWs();
    if (!parseValue(Out, 0))
      return false;
    skipWs();
    if (Pos != Text.size())
      return fail("trailing garbage after JSON value");
    return true;
  }

private:
  static constexpr unsigned MaxDepth = 64;

  bool fail(const char *Msg) {
    if (Error)
      *Error = strFormat("JSON parse error at offset %zu: %s", Pos, Msg);
    return false;
  }

  void skipWs() {
    while (Pos < Text.size() &&
           (Text[Pos] == ' ' || Text[Pos] == '\t' || Text[Pos] == '\n' ||
            Text[Pos] == '\r'))
      ++Pos;
  }

  bool literal(const char *Word) {
    size_t Len = std::strlen(Word);
    if (Text.compare(Pos, Len, Word) != 0)
      return false;
    Pos += Len;
    return true;
  }

  bool parseString(std::string &Out) {
    if (Pos >= Text.size() || Text[Pos] != '"')
      return fail("expected string");
    ++Pos;
    Out.clear();
    while (true) {
      if (Pos >= Text.size())
        return fail("unterminated string");
      char C = Text[Pos++];
      if (C == '"')
        return true;
      if (C != '\\') {
        Out += C;
        continue;
      }
      if (Pos >= Text.size())
        return fail("unterminated escape");
      char E = Text[Pos++];
      switch (E) {
      case '"':
        Out += '"';
        break;
      case '\\':
        Out += '\\';
        break;
      case '/':
        Out += '/';
        break;
      case 'b':
        Out += '\b';
        break;
      case 'f':
        Out += '\f';
        break;
      case 'n':
        Out += '\n';
        break;
      case 'r':
        Out += '\r';
        break;
      case 't':
        Out += '\t';
        break;
      case 'u': {
        if (Pos + 4 > Text.size())
          return fail("truncated \\u escape");
        unsigned Code = 0;
        for (int I = 0; I != 4; ++I) {
          char H = Text[Pos++];
          Code <<= 4;
          if (H >= '0' && H <= '9')
            Code |= static_cast<unsigned>(H - '0');
          else if (H >= 'a' && H <= 'f')
            Code |= static_cast<unsigned>(H - 'a' + 10);
          else if (H >= 'A' && H <= 'F')
            Code |= static_cast<unsigned>(H - 'A' + 10);
          else
            return fail("bad \\u escape digit");
        }
        // Our writer only emits \u00xx control escapes; decode the BMP
        // as UTF-8 for good measure.
        if (Code < 0x80) {
          Out += static_cast<char>(Code);
        } else if (Code < 0x800) {
          Out += static_cast<char>(0xC0 | (Code >> 6));
          Out += static_cast<char>(0x80 | (Code & 0x3F));
        } else {
          Out += static_cast<char>(0xE0 | (Code >> 12));
          Out += static_cast<char>(0x80 | ((Code >> 6) & 0x3F));
          Out += static_cast<char>(0x80 | (Code & 0x3F));
        }
        break;
      }
      default:
        return fail("unknown escape");
      }
    }
  }

  bool parseValue(JsonValue &Out, unsigned Depth) {
    if (Depth > MaxDepth)
      return fail("nesting too deep");
    if (Pos >= Text.size())
      return fail("unexpected end of input");
    char C = Text[Pos];
    if (C == 'n') {
      if (!literal("null"))
        return fail("bad literal");
      Out = JsonValue::null();
      return true;
    }
    if (C == 't') {
      if (!literal("true"))
        return fail("bad literal");
      Out = JsonValue::boolean(true);
      return true;
    }
    if (C == 'f') {
      if (!literal("false"))
        return fail("bad literal");
      Out = JsonValue::boolean(false);
      return true;
    }
    if (C == '"') {
      std::string S;
      if (!parseString(S))
        return false;
      Out = JsonValue::str(std::move(S));
      return true;
    }
    if (C >= '0' && C <= '9') {
      uint64_t U = 0;
      size_t Start = Pos;
      while (Pos < Text.size() && Text[Pos] >= '0' && Text[Pos] <= '9') {
        uint64_t Digit = static_cast<uint64_t>(Text[Pos] - '0');
        if (U > (UINT64_MAX - Digit) / 10)
          return fail("number out of range");
        U = U * 10 + Digit;
        ++Pos;
      }
      if (Pos < Text.size() &&
          (Text[Pos] == '.' || Text[Pos] == 'e' || Text[Pos] == 'E'))
        return fail("non-integer numbers are not supported");
      if (Pos == Start)
        return fail("expected number");
      Out = JsonValue::number(U);
      return true;
    }
    if (C == '-')
      return fail("negative numbers are not supported");
    if (C == '[') {
      ++Pos;
      Out = JsonValue::array();
      skipWs();
      if (Pos < Text.size() && Text[Pos] == ']') {
        ++Pos;
        return true;
      }
      while (true) {
        JsonValue Elem;
        skipWs();
        if (!parseValue(Elem, Depth + 1))
          return false;
        Out.Arr.push_back(std::move(Elem));
        skipWs();
        if (Pos >= Text.size())
          return fail("unterminated array");
        if (Text[Pos] == ',') {
          ++Pos;
          continue;
        }
        if (Text[Pos] == ']') {
          ++Pos;
          return true;
        }
        return fail("expected ',' or ']'");
      }
    }
    if (C == '{') {
      ++Pos;
      Out = JsonValue::object();
      skipWs();
      if (Pos < Text.size() && Text[Pos] == '}') {
        ++Pos;
        return true;
      }
      while (true) {
        skipWs();
        std::string Key;
        if (!parseString(Key))
          return false;
        skipWs();
        if (Pos >= Text.size() || Text[Pos] != ':')
          return fail("expected ':'");
        ++Pos;
        skipWs();
        JsonValue Value;
        if (!parseValue(Value, Depth + 1))
          return false;
        Out.Obj.emplace_back(std::move(Key), std::move(Value));
        skipWs();
        if (Pos >= Text.size())
          return fail("unterminated object");
        if (Text[Pos] == ',') {
          ++Pos;
          continue;
        }
        if (Text[Pos] == '}') {
          ++Pos;
          return true;
        }
        return fail("expected ',' or '}'");
      }
    }
    return fail("unexpected character");
  }

  const std::string &Text;
  std::string *Error;
  size_t Pos = 0;
};

} // namespace

bool icb::session::jsonParse(const std::string &Text, JsonValue &Out,
                             std::string *Error) {
  return Parser(Text, Error).parseTop(Out);
}

//===----------------------------------------------------------------------===//
// Digest hex encoding
//===----------------------------------------------------------------------===//

std::string icb::session::digestsToHex(const std::vector<uint64_t> &Digests) {
  std::string Out;
  Out.reserve(Digests.size() * 17);
  char Buf[17];
  for (size_t I = 0; I != Digests.size(); ++I) {
    if (I)
      Out += ' ';
    std::snprintf(Buf, sizeof(Buf), "%llx",
                  static_cast<unsigned long long>(Digests[I]));
    Out += Buf;
  }
  return Out;
}

std::string
icb::session::digestsToHexCompact(const std::vector<uint64_t> &Digests,
                                  size_t CompactThreshold) {
  // Sorting and deduplicating on write (format v4) makes the section
  // deterministic whatever order the (possibly sharded) caches drained
  // in; the loader accepts any order in either encoding.
  std::vector<uint64_t> Sorted = Digests;
  std::sort(Sorted.begin(), Sorted.end());
  Sorted.erase(std::unique(Sorted.begin(), Sorted.end()), Sorted.end());
  if (Sorted.size() < CompactThreshold)
    return digestsToHex(Sorted);
  std::string Out;
  Out.reserve(Sorted.size() * 6 + 2);
  Out += '*';
  char Buf[17];
  uint64_t Prev = 0;
  for (uint64_t D : Sorted) {
    Out += ' ';
    std::snprintf(Buf, sizeof(Buf), "%llx",
                  static_cast<unsigned long long>(D - Prev));
    Out += Buf;
    Prev = D;
  }
  return Out;
}

bool icb::session::digestsFromHex(const std::string &Text,
                                  std::vector<uint64_t> &Out) {
  Out.clear();
  size_t Pos = 0;
  while (Pos < Text.size() && Text[Pos] == ' ')
    ++Pos;
  // "*" marks the compact (sorted, delta-encoded) form.
  bool Delta = false;
  if (Pos < Text.size() && Text[Pos] == '*') {
    Delta = true;
    ++Pos;
    if (Pos < Text.size() && Text[Pos] != ' ')
      return false;
  }
  uint64_t Prev = 0;
  while (Pos < Text.size()) {
    if (Text[Pos] == ' ') {
      ++Pos;
      continue;
    }
    uint64_t Value = 0;
    size_t Digits = 0;
    while (Pos < Text.size() && Text[Pos] != ' ') {
      char C = Text[Pos];
      uint64_t Nibble;
      if (C >= '0' && C <= '9')
        Nibble = static_cast<uint64_t>(C - '0');
      else if (C >= 'a' && C <= 'f')
        Nibble = static_cast<uint64_t>(C - 'a' + 10);
      else
        return false;
      if (++Digits > 16)
        return false; // More than 64 bits.
      Value = (Value << 4) | Nibble;
      ++Pos;
    }
    if (Delta) {
      Value += Prev;
      Prev = Value;
    }
    Out.push_back(Value);
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Atomic file I/O
//===----------------------------------------------------------------------===//

bool icb::session::atomicWriteFile(const std::string &Path,
                                   const std::string &Content,
                                   std::string *Error) {
  std::string Tmp = Path + ".tmp";
  std::FILE *F = std::fopen(Tmp.c_str(), "wb");
  if (!F) {
    if (Error)
      *Error = strFormat("cannot open '%s' for writing", Tmp.c_str());
    return false;
  }
  bool Ok = std::fwrite(Content.data(), 1, Content.size(), F) ==
            Content.size();
  Ok = std::fflush(F) == 0 && Ok;
#ifndef _WIN32
  Ok = fsync(fileno(F)) == 0 && Ok;
#endif
  Ok = std::fclose(F) == 0 && Ok;
  if (!Ok) {
    if (Error)
      *Error = strFormat("write to '%s' failed", Tmp.c_str());
    std::remove(Tmp.c_str());
    return false;
  }
  if (std::rename(Tmp.c_str(), Path.c_str()) != 0) {
    if (Error)
      *Error = strFormat("rename '%s' -> '%s' failed", Tmp.c_str(),
                         Path.c_str());
    std::remove(Tmp.c_str());
    return false;
  }
  return true;
}

bool icb::session::readFile(const std::string &Path, std::string &Out,
                            std::string *Error) {
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F) {
    if (Error)
      *Error = strFormat("cannot open '%s'", Path.c_str());
    return false;
  }
  Out.clear();
  char Buf[1 << 16];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Out.append(Buf, N);
  bool Ok = !std::ferror(F);
  std::fclose(F);
  if (!Ok && Error)
    *Error = strFormat("read from '%s' failed", Path.c_str());
  return Ok;
}

bool icb::session::ensureDir(const std::string &Dir, std::string *Error) {
#ifdef _WIN32
  if (_mkdir(Dir.c_str()) == 0 || errno == EEXIST)
    return true;
#else
  if (mkdir(Dir.c_str(), 0777) == 0 || errno == EEXIST)
    return true;
#endif
  if (Error)
    *Error = strFormat("cannot create directory '%s'", Dir.c_str());
  return false;
}
