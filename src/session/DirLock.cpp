//===- session/DirLock.cpp - Advisory checkpoint-dir lock -----------------===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//

#include "session/DirLock.h"
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

namespace icb::session {

DirLock &DirLock::operator=(DirLock &&O) noexcept {
  if (this != &O) {
    release();
    Fd = O.Fd;
    O.Fd = -1;
  }
  return *this;
}

bool DirLock::acquire(const std::string &Dir, std::string *Error) {
  release();
  std::string Path = Dir + "/.lock";
  int NewFd = ::open(Path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (NewFd < 0) {
    if (Error)
      *Error = "cannot open lock file " + Path + ": " + std::strerror(errno);
    return false;
  }
  if (::flock(NewFd, LOCK_EX | LOCK_NB) != 0) {
    if (Error) {
      *Error = errno == EWOULDBLOCK
                   ? "checkpoint dir is locked by another run: " + Dir
                   : "cannot lock " + Path + ": " + std::strerror(errno);
    }
    ::close(NewFd);
    return false;
  }
  Fd = NewFd;
  return true;
}

void DirLock::release() {
  if (Fd >= 0) {
    // Closing drops the flock; the .lock file itself stays (harmless, and
    // unlinking would race a concurrent acquirer onto a different inode).
    ::close(Fd);
    Fd = -1;
  }
}

} // namespace icb::session
