//===- session/Manifest.cpp - Machine-readable run manifest ---------------===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//

#include "session/Manifest.h"
#include "session/Serial.h"

namespace icb::session {

JsonValue runRecord(const std::string &Benchmark, const std::string &BugLabel,
                    const std::string &Form, const std::string &Strategy,
                    unsigned Jobs, const search::SearchResult &Result,
                    uint64_t WallMillis) {
  JsonValue Run = JsonValue::object();
  Run.set("benchmark", JsonValue::str(Benchmark));
  Run.set("bug", JsonValue::str(BugLabel));
  Run.set("form", JsonValue::str(Form));
  Run.set("strategy", JsonValue::str(Strategy));
  Run.set("jobs", JsonValue::number(Jobs));
  Run.set("wall_ms", JsonValue::number(WallMillis));
  Run.set("interrupted", JsonValue::boolean(Result.Interrupted));
  Run.set("stats", statsToJson(Result.Stats));
  JsonValue Bugs = JsonValue::array();
  for (const search::Bug &B : Result.Bugs)
    Bugs.Arr.push_back(bugToJson(B));
  Run.set("bugs", std::move(Bugs));
  return Run;
}

Manifest::Manifest(std::string Tool) : Root(JsonValue::object()) {
  Root.set("tool", JsonValue::str(std::move(Tool)));
  Root.set("config", JsonValue::object());
  Root.set("runs", JsonValue::array());
}

void Manifest::setConfig(JsonValue Config) {
  Root.set("config", std::move(Config));
}

size_t Manifest::addRun(JsonValue Run) {
  JsonValue &Runs = *const_cast<JsonValue *>(Root.find("runs"));
  Runs.Arr.push_back(std::move(Run));
  return Runs.Arr.size() - 1;
}

void Manifest::updateRun(size_t Index, JsonValue Run) {
  JsonValue &Runs = *const_cast<JsonValue *>(Root.find("runs"));
  Runs.Arr.at(Index) = std::move(Run);
}

std::string Manifest::str() const { return jsonWrite(Root) + "\n"; }

bool Manifest::writeTo(const std::string &Path, std::string *Error) const {
  return atomicWriteFile(Path, str(), Error);
}

} // namespace icb::session
