//===- session/Repro.h - Replayable bug-repro artifacts ---------*- C++ -*-===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The `.icbrepro` artifact: a self-contained description of one exposed
/// bug — which benchmark and bug variant, which executor form, the
/// detector configuration, and the full exposing schedule — everything
/// needed to deterministically re-execute the interleaving later (on
/// another machine, in CI, after a bisect) and verify the same bug fires.
///
/// Replay is strict: the artifact's recorded bug kind and message must
/// match what the re-execution produces, a divergence (schedule no longer
/// feasible, different bug, no bug) is reported with detail, never papered
/// over. The replay helpers take the already-constructed test closure /
/// model program so this library stays independent of the benchmark
/// registry; resolving names to factories is the caller's (icb_check's)
/// job.
///
//===----------------------------------------------------------------------===//

#ifndef ICB_SESSION_REPRO_H
#define ICB_SESSION_REPRO_H

#include "rt/Scheduler.h"
#include "search/SearchTypes.h"
#include "vm/Interp.h"
#include <string>

namespace icb::session {

/// One self-contained bug reproduction.
struct ReproArtifact {
  std::string Benchmark;
  std::string Bug;  ///< Bug variant label, or "default".
  std::string Form; ///< "rt" (stateless) or "vm" (model VM).
  /// Runtime-form detector configuration the bug was found under (replay
  /// must re-check with the same instrumentation or a DataRace repro could
  /// silently pass).
  bool EveryAccess = false;
  std::string Detector; ///< "vc", "goldilocks", or "none".
  /// Bound-policy spec the bug was found under (e.g. "delay:3"), or empty
  /// when not recorded — artifacts predating the policy seam, and
  /// artifacts from default preemption runs, omit the field and imply
  /// preemption bounding.
  std::string Bound;
  /// The exposed bug with its full schedule (annotated for rt, thread-id
  /// list for vm).
  search::Bug Found;
};

/// Canonical file name for an artifact: benchmark + bug label + kind,
/// sanitized to [a-z0-9-], with the ".icbrepro" extension.
std::string reproFileName(const ReproArtifact &A);

bool saveRepro(const std::string &Path, const ReproArtifact &A,
               std::string *Error);
bool loadRepro(const std::string &Path, ReproArtifact &Out,
               std::string *Error);

/// Scheduler options matching the artifact's recorded detector
/// configuration (runtime form).
rt::Scheduler::Options reproExecOptions(const ReproArtifact &A);

/// Replay policy-compatibility check. A replay re-executes the recorded
/// schedule verbatim, so the bound policy does not affect the re-execution
/// itself — but an explicit `--bound` naming a *different* policy family
/// than the artifact recorded is a contradiction the tool refuses (exit
/// code 3) rather than silently ignoring. \p RequestedName is the
/// requested policy family ("preemption", "delay", "thread"), or empty
/// when the user did not pass --bound; an empty / absent artifact field
/// means preemption. Returns false and fills \p Error on a mismatch.
bool reproBoundCompatible(const ReproArtifact &A,
                          const std::string &RequestedName,
                          std::string *Error);

/// What a replay did.
struct ReplayOutcome {
  bool Reproduced = false; ///< Same (kind, message) fired.
  bool BugFired = false;   ///< Some bug fired (maybe a different one).
  search::Bug Observed;    ///< Valid when BugFired.
  std::string Detail;      ///< Human-readable verdict / divergence text.
};

/// Replays a runtime-form artifact against \p Test (which must be the
/// benchmark/bug variant the artifact names).
ReplayOutcome replayArtifactRt(const ReproArtifact &A,
                               const rt::TestCase &Test);

/// Replays a model-VM artifact by stepping \p Prog's interpreter through
/// the recorded thread sequence.
ReplayOutcome replayArtifactVm(const ReproArtifact &A,
                               const vm::Program &Prog);

} // namespace icb::session

#endif // ICB_SESSION_REPRO_H
