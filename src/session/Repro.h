//===- session/Repro.h - Replayable bug-repro artifacts ---------*- C++ -*-===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The `.icbrepro` artifact: a self-contained description of one exposed
/// bug — which benchmark and bug variant, which executor form, the
/// detector configuration, and the full exposing schedule — everything
/// needed to deterministically re-execute the interleaving later (on
/// another machine, in CI, after a bisect) and verify the same bug fires.
///
/// Replay is strict: the artifact's recorded bug kind and message must
/// match what the re-execution produces, a divergence (schedule no longer
/// feasible, different bug, no bug) is reported with detail, never papered
/// over. The replay helpers take the already-constructed test closure /
/// model program so this library stays independent of the benchmark
/// registry; resolving names to factories is the caller's (icb_check's)
/// job.
///
//===----------------------------------------------------------------------===//

#ifndef ICB_SESSION_REPRO_H
#define ICB_SESSION_REPRO_H

#include "rt/Scheduler.h"
#include "search/SearchTypes.h"
#include "vm/Interp.h"
#include <string>

namespace icb::session {

/// One self-contained bug reproduction.
struct ReproArtifact {
  std::string Benchmark;
  std::string Bug;  ///< Bug variant label, or "default".
  std::string Form; ///< "rt" (stateless) or "vm" (model VM).
  /// Runtime-form detector configuration the bug was found under (replay
  /// must re-check with the same instrumentation or a DataRace repro could
  /// silently pass).
  bool EveryAccess = false;
  std::string Detector; ///< "vc", "goldilocks", or "none".
  /// The exposed bug with its full schedule (annotated for rt, thread-id
  /// list for vm).
  search::Bug Found;
};

/// Canonical file name for an artifact: benchmark + bug label + kind,
/// sanitized to [a-z0-9-], with the ".icbrepro" extension.
std::string reproFileName(const ReproArtifact &A);

bool saveRepro(const std::string &Path, const ReproArtifact &A,
               std::string *Error);
bool loadRepro(const std::string &Path, ReproArtifact &Out,
               std::string *Error);

/// Scheduler options matching the artifact's recorded detector
/// configuration (runtime form).
rt::Scheduler::Options reproExecOptions(const ReproArtifact &A);

/// What a replay did.
struct ReplayOutcome {
  bool Reproduced = false; ///< Same (kind, message) fired.
  bool BugFired = false;   ///< Some bug fired (maybe a different one).
  search::Bug Observed;    ///< Valid when BugFired.
  std::string Detail;      ///< Human-readable verdict / divergence text.
};

/// Replays a runtime-form artifact against \p Test (which must be the
/// benchmark/bug variant the artifact names).
ReplayOutcome replayArtifactRt(const ReproArtifact &A,
                               const rt::TestCase &Test);

/// Replays a model-VM artifact by stepping \p Prog's interpreter through
/// the recorded thread sequence.
ReplayOutcome replayArtifactVm(const ReproArtifact &A,
                               const vm::Program &Prog);

} // namespace icb::session

#endif // ICB_SESSION_REPRO_H
