//===- session/Checkpoint.cpp - Durable checkpoint / resume ---------------===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//

#include "session/Checkpoint.h"
#include "session/Json.h"
#include "session/Serial.h"
#include "support/Debug.h"
#include <csignal>
#include <utility>

namespace icb::session {

//===----------------------------------------------------------------------===//
// File format
//===----------------------------------------------------------------------===//

/// Version 2 added the optional `metrics` block to snapshots (and
/// `mean_milli` to every MinMax object). Version 3 added bounded POR
/// (optional `por` meta field, optional `sleep` on saved work items, POR
/// counters in the metrics block) and the "*"-compact digest encoding.
/// Version 4 added the bound policy (optional `bound`/`var_bound` meta
/// fields, optional `bound_threads`/`bound_vars` on saved work items) and
/// deduplicates digest sets on write. Version 5 added the exploration
/// telemetry (optional `est_mass_per_bound`/`sites` metrics fields,
/// optional `site_new_states` in the timing block, optional
/// `est_mass`/`site` on saved work items). Loaders accept all five: every
/// later-version field is optional with a backward-compatible default
/// (missing policy fields imply preemption bounding, missing telemetry
/// resumes with the estimator uncredited), and the digest decoder reads
/// both hex forms.
static constexpr uint64_t CheckpointFormatVersion = 5;
static constexpr uint64_t MinCheckpointFormatVersion = 1;

uint64_t checkpointFormatVersion() { return CheckpointFormatVersion; }

JsonValue metaToJson(const CheckpointMeta &Meta) {
  JsonValue V = JsonValue::object();
  V.set("benchmark", JsonValue::str(Meta.Benchmark));
  V.set("bug", JsonValue::str(Meta.Bug));
  V.set("form", JsonValue::str(Meta.Form));
  V.set("strategy", JsonValue::str(Meta.Strategy));
  V.set("jobs", JsonValue::number(Meta.Jobs));
  V.set("shards", JsonValue::number(Meta.Shards));
  V.set("seed", JsonValue::number(Meta.Seed));
  V.set("every_access", JsonValue::boolean(Meta.EveryAccess));
  V.set("detector", JsonValue::str(Meta.Detector));
  V.set("por", JsonValue::boolean(Meta.Por));
  V.set("bound", JsonValue::str(Meta.Bound));
  V.set("var_bound", JsonValue::number(Meta.VarBound));
  V.set("limits", limitsToJson(Meta.Limits));
  return V;
}

bool metaFromJson(const JsonValue &V, CheckpointMeta &Out) {
  if (!V.isObject())
    return false;
  uint64_t Jobs = 0, Shards = 0;
  const JsonValue *Limits = V.find("limits");
  if (!V.getString("benchmark", Out.Benchmark) ||
      !V.getString("bug", Out.Bug) || !V.getString("form", Out.Form) ||
      !V.getString("strategy", Out.Strategy) || !V.getU64("jobs", Jobs) ||
      !V.getU64("shards", Shards) || !V.getU64("seed", Out.Seed) ||
      !V.getBool("every_access", Out.EveryAccess) ||
      !V.getString("detector", Out.Detector) || !Limits ||
      !limitsFromJson(*Limits, Out.Limits))
    return false;
  // Absent in format v2 and earlier (POR did not exist): defaults false.
  if (V.find("por") && !V.getBool("por", Out.Por))
    return false;
  // Absent in format v3 and earlier (one hard-wired bound policy):
  // defaults to preemption bounding with no variable cap.
  if (V.find("bound") && !V.getString("bound", Out.Bound))
    return false;
  uint64_t VarBound = 0;
  if (V.find("var_bound")) {
    if (!V.getU64("var_bound", VarBound) || VarBound > ~0u)
      return false;
    Out.VarBound = static_cast<unsigned>(VarBound);
  }
  if (Jobs > ~0u || Shards > ~0u)
    return false;
  Out.Jobs = static_cast<unsigned>(Jobs);
  Out.Shards = static_cast<unsigned>(Shards);
  return true;
}

std::string checkpointPath(const std::string &Dir) {
  return Dir + "/checkpoint.json";
}

bool saveCheckpoint(const std::string &Path, const CheckpointData &Data,
                    std::string *Error) {
  JsonValue Doc = JsonValue::object();
  Doc.set("icb_checkpoint", JsonValue::number(CheckpointFormatVersion));
  Doc.set("meta", metaToJson(Data.Meta));
  Doc.set("wall_ms", JsonValue::number(Data.WallMillis));
  Doc.set("snapshot", snapshotToJson(Data.Snap));
  return atomicWriteFile(Path, jsonWrite(Doc) + "\n", Error);
}

bool loadCheckpoint(const std::string &Path, CheckpointData &Out,
                    std::string *Error) {
  std::string Text;
  if (!readFile(Path, Text, Error))
    return false;
  JsonValue Doc;
  if (!jsonParse(Text, Doc, Error))
    return false;
  uint64_t Version = 0;
  if (!Doc.getU64("icb_checkpoint", Version) ||
      Version < MinCheckpointFormatVersion ||
      Version > CheckpointFormatVersion) {
    if (Error)
      *Error = "not an icb checkpoint (or unsupported version)";
    return false;
  }
  const JsonValue *Meta = Doc.find("meta");
  const JsonValue *Snap = Doc.find("snapshot");
  if (!Meta || !metaFromJson(*Meta, Out.Meta) ||
      !Doc.getU64("wall_ms", Out.WallMillis) || !Snap ||
      !snapshotFromJson(*Snap, Out.Snap)) {
    if (Error)
      *Error = "malformed checkpoint: " + Path;
    return false;
  }
  return true;
}

//===----------------------------------------------------------------------===//
// SignalGuard
//===----------------------------------------------------------------------===//

namespace {
volatile std::sig_atomic_t StopFlag = 0;

void onStopSignal(int Sig) {
  StopFlag = 1;
  // One chance to stop cooperatively; a second signal must be able to kill
  // a wedged run, so fall back to the default disposition now.
  std::signal(Sig, SIG_DFL);
}
} // namespace

SignalGuard::SignalGuard() {
  StopFlag = 0;
  PrevInt = std::signal(SIGINT, onStopSignal);
  PrevTerm = std::signal(SIGTERM, onStopSignal);
}

SignalGuard::~SignalGuard() {
  std::signal(SIGINT, PrevInt);
  std::signal(SIGTERM, PrevTerm);
}

bool SignalGuard::triggered() { return StopFlag != 0; }

//===----------------------------------------------------------------------===//
// CheckpointSink
//===----------------------------------------------------------------------===//

CheckpointSink::CheckpointSink(std::string Dir, uint64_t Every,
                               CheckpointMeta Meta, uint64_t StartExecutions,
                               uint64_t PriorWallMillis)
    : Dir(std::move(Dir)), Every(Every), Meta(std::move(Meta)),
      PriorWallMillis(PriorWallMillis),
      SegmentStart(std::chrono::steady_clock::now()),
      LastSnapExecutions(StartExecutions) {}

bool CheckpointSink::checkpointDue(uint64_t Executions) {
  if (Every == 0)
    return false;
  return Executions >= LastSnapExecutions.load(std::memory_order_relaxed) +
                           Every;
}

void CheckpointSink::onCheckpoint(const search::EngineSnapshot &Snap) {
  LastSnapExecutions.store(Snap.Stats.Executions, std::memory_order_relaxed);
  CheckpointData Data;
  Data.Meta = Meta;
  Data.Snap = Snap;
  Data.WallMillis = wallMillis();
  std::string Error;
  if (!saveCheckpoint(checkpointPath(Dir), Data, &Error) && ErrorMsg.empty())
    ErrorMsg = Error;
}

uint64_t CheckpointSink::wallMillis() const {
  auto Elapsed = std::chrono::steady_clock::now() - SegmentStart;
  return PriorWallMillis +
         static_cast<uint64_t>(
             std::chrono::duration_cast<std::chrono::milliseconds>(Elapsed)
                 .count());
}

} // namespace icb::session
