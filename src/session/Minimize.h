//===- session/Minimize.h - Delta-debugging schedule shrinker --*- C++ -*-===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shrinks a repro's schedule by delta debugging over its *scheduling
/// directives*. A recorded schedule is first decomposed into the set of
/// points where it departs from the canonical nonpreemptive default (run
/// the previous thread while it stays enabled, else the lowest-id enabled
/// thread) — every preemption is such a directive, as is every non-default
/// nonpreempting switch. ddmin then searches for a 1-minimal directive
/// subset that still makes the same (kind, message) bug fire; everything
/// between directives regenerates from the default policy, so removing a
/// directive removes its whole scheduling consequence, not just one token.
///
/// The result is the ICB story replayed in miniature: the minimized repro
/// carries the fewest preemptions this reduction can certify (removing any
/// single remaining directive loses the bug), which for ICB-found bugs
/// typically just confirms the bound the search already guaranteed — and
/// strips the incidental nonpreempting noise a long exposing schedule
/// accumulates.
///
//===----------------------------------------------------------------------===//

#ifndef ICB_SESSION_MINIMIZE_H
#define ICB_SESSION_MINIMIZE_H

#include "session/Repro.h"

namespace icb::session {

/// Outcome of one minimization.
struct MinimizeResult {
  /// False when the artifact's schedule does not reproduce its bug in the
  /// first place (nothing was minimized).
  bool Reproduced = false;
  /// True when the minimized schedule differs from the recorded one.
  bool Improved = false;
  /// Executions spent probing candidates (the minimization budget used).
  unsigned Replays = 0;
  unsigned DirectivesBefore = 0;
  unsigned DirectivesAfter = 0;
  unsigned PreemptionsBefore = 0;
  unsigned PreemptionsAfter = 0;
  /// The minimized bug: same (kind, message), 1-minimal schedule.
  search::Bug Minimized;
};

/// Minimizes a runtime-form artifact against \p Test.
MinimizeResult minimizeRt(const ReproArtifact &A, const rt::TestCase &Test);

/// Minimizes a model-VM artifact against \p Prog.
MinimizeResult minimizeVm(const ReproArtifact &A, const vm::Program &Prog);

} // namespace icb::session

#endif // ICB_SESSION_MINIMIZE_H
