//===- session/Serial.h - Search types <-> JSON conversions ----*- C++ -*-===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared (de)serialization between the search vocabulary (SearchTypes.h,
/// EngineObserver.h) and session JSON. One code path feeds the manifest,
/// the checkpoint, and the repro artifact, so all three speak the same
/// dialect: bug kinds by their human name, schedules in the
/// `trace::Schedule` text form, digests as hex strings.
///
/// Every `fromJson` validates strictly and returns false on any missing or
/// ill-typed field — corrupted session files must be reported, never
/// half-loaded.
///
//===----------------------------------------------------------------------===//

#ifndef ICB_SESSION_SERIAL_H
#define ICB_SESSION_SERIAL_H

#include "search/EngineObserver.h"
#include "search/SearchTypes.h"
#include "session/Json.h"

namespace icb::session {

JsonValue statsToJson(const search::SearchStats &Stats);
bool statsFromJson(const JsonValue &V, search::SearchStats &Out);

/// The `metrics` block of manifests and checkpoints. Two sections:
/// `counters` / `replay_depth` / `executions_per_bound` are work-derived
/// and byte-identical across worker counts; everything under `timing`
/// (phase durations, steal counters, per-worker busy/idle) describes one
/// particular run. Tests and CI compare only the deterministic section.
/// All fields are uint64; means are exported scaled (`mean_milli`).
JsonValue metricsToJson(const obs::MetricsSnapshot &M);
bool metricsFromJson(const JsonValue &V, obs::MetricsSnapshot &Out);

JsonValue bugToJson(const search::Bug &B);
bool bugFromJson(const JsonValue &V, search::Bug &Out);

JsonValue snapshotToJson(const search::EngineSnapshot &Snap);
bool snapshotFromJson(const JsonValue &V, search::EngineSnapshot &Out);

/// Saved work items in the checkpoint dialect (prefix/sleep/bound-budget/
/// est-mass rows). The distributed wire frames (dist/Protocol.h) lease and
/// return frontier slices in exactly this encoding, so a coordinator
/// checkpoint and a lease frame are interchangeable representations.
JsonValue workItemsToJson(const std::vector<search::SavedWorkItem> &Items);
bool workItemsFromJson(const JsonValue &V,
                       std::vector<search::SavedWorkItem> &Out);

JsonValue limitsToJson(const search::SearchLimits &Limits);
bool limitsFromJson(const JsonValue &V, search::SearchLimits &Out);

} // namespace icb::session

#endif // ICB_SESSION_SERIAL_H
