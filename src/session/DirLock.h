//===- session/DirLock.h - Advisory checkpoint-dir lock ---------*- C++ -*-===//
//
// Part of the ICB project (PLDI'07 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An advisory `flock(2)` on a `--checkpoint-dir`. Two concurrent runs
/// writing the same checkpoint file would silently corrupt each other's
/// resume state (last-writer-wins on every period), so the session layer
/// takes an exclusive non-blocking lock on `<dir>/.lock` for the lifetime
/// of the run; the loser reports the conflict and exits with the I/O
/// error code (4) instead of racing.
///
/// The lock is advisory and crash-safe: the kernel drops it when the
/// owning process dies (SIGKILL included), so a stale `.lock` file never
/// wedges a later run — `--serve --resume` after a kill just reacquires.
///
//===----------------------------------------------------------------------===//

#ifndef ICB_SESSION_DIRLOCK_H
#define ICB_SESSION_DIRLOCK_H

#include <string>

namespace icb::session {

/// Scoped exclusive lock on a directory. Default-constructed = not held.
class DirLock {
public:
  DirLock() = default;
  ~DirLock() { release(); }

  DirLock(const DirLock &) = delete;
  DirLock &operator=(const DirLock &) = delete;
  DirLock(DirLock &&O) noexcept : Fd(O.Fd) { O.Fd = -1; }
  DirLock &operator=(DirLock &&O) noexcept;

  /// Takes the exclusive lock on `<dir>/.lock`, non-blocking. Returns
  /// false with \p Error set when another live process holds it (or the
  /// directory is unusable); true when the lock is held.
  bool acquire(const std::string &Dir, std::string *Error);

  bool held() const { return Fd >= 0; }
  void release();

private:
  int Fd = -1;
};

} // namespace icb::session

#endif // ICB_SESSION_DIRLOCK_H
